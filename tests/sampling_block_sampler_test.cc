#include "sampling/block_sampler.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "data/distribution.h"
#include "data/generator.h"
#include "storage/table.h"

namespace equihist {
namespace {

// A table whose page contents are identifiable: page p holds values
// p*B .. p*B + B-1.
Table MakePageTaggedTable(std::uint64_t pages, std::uint32_t per_page) {
  std::vector<Value> values;
  for (std::uint64_t p = 0; p < pages; ++p) {
    for (std::uint32_t i = 0; i < per_page; ++i) {
      values.push_back(static_cast<Value>(p * per_page + i));
    }
  }
  return Table::CreateFromValues(values,
                                 PageConfig{per_page * 8, 8})
      .value();
}

std::set<std::uint64_t> PagesOf(const std::vector<Value>& sample,
                                std::uint32_t per_page) {
  std::set<std::uint64_t> pages;
  for (Value v : sample) pages.insert(static_cast<std::uint64_t>(v) / per_page);
  return pages;
}

TEST(BlockSamplerTest, WithoutReplacementDrawsWholeDistinctPages) {
  Table table = MakePageTaggedTable(20, 16);
  Rng rng(1);
  IoStats stats;
  const auto sample = SampleBlocksWithoutReplacement(table, 5, rng, &stats);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->size(), 5u * 16u);
  EXPECT_EQ(stats.pages_read, 5u);
  EXPECT_EQ(stats.tuples_read, 80u);
  EXPECT_EQ(PagesOf(*sample, 16).size(), 5u);  // distinct pages
}

TEST(BlockSamplerTest, WithoutReplacementAllPagesIsFullScan) {
  Table table = MakePageTaggedTable(10, 4);
  Rng rng(2);
  auto sample = SampleBlocksWithoutReplacement(table, 10, rng, nullptr);
  ASSERT_TRUE(sample.ok());
  std::sort(sample->begin(), sample->end());
  EXPECT_EQ(sample->size(), 40u);
  EXPECT_EQ(sample->front(), 0);
  EXPECT_EQ(sample->back(), 39);
}

TEST(BlockSamplerTest, WithoutReplacementRejectsOversample) {
  Table table = MakePageTaggedTable(10, 4);
  Rng rng(3);
  EXPECT_FALSE(SampleBlocksWithoutReplacement(table, 11, rng, nullptr).ok());
}

TEST(BlockSamplerTest, WithReplacementMayRepeatPages) {
  Table table = MakePageTaggedTable(4, 8);
  Rng rng(4);
  IoStats stats;
  const auto sample = SampleBlocksWithReplacement(table, 64, rng, &stats);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->size(), 64u * 8u);
  EXPECT_EQ(stats.pages_read, 64u);
  // Only 4 physical pages exist, so repetitions are certain.
  EXPECT_LE(PagesOf(*sample, 8).size(), 4u);
}

TEST(IncrementalBlockSamplerTest, BatchesNeverRepeatPages) {
  Table table = MakePageTaggedTable(32, 4);
  IncrementalBlockSampler sampler(&table, 5);
  std::set<std::uint64_t> seen;
  for (int batch = 0; batch < 4; ++batch) {
    const auto values = sampler.NextBatch(8, nullptr);
    const auto pages = PagesOf(values, 4);
    EXPECT_EQ(pages.size(), 8u);
    for (std::uint64_t p : pages) {
      EXPECT_TRUE(seen.insert(p).second) << "page repeated across batches";
    }
  }
  EXPECT_EQ(seen.size(), 32u);
  EXPECT_EQ(sampler.pages_remaining(), 0u);
}

TEST(IncrementalBlockSamplerTest, ExhaustionReturnsEmpty) {
  Table table = MakePageTaggedTable(3, 4);
  IncrementalBlockSampler sampler(&table, 6);
  EXPECT_EQ(sampler.NextBatch(2, nullptr).size(), 8u);
  // Asks for 5 but only 1 page remains.
  EXPECT_EQ(sampler.NextBatch(5, nullptr).size(), 4u);
  EXPECT_TRUE(sampler.NextBatch(1, nullptr).empty());
  EXPECT_EQ(sampler.pages_consumed(), 3u);
}

TEST(IncrementalBlockSamplerTest, PageOffsetsMarkBlockBoundaries) {
  Table table = MakePageTaggedTable(6, 4);
  IncrementalBlockSampler sampler(&table, 7);
  std::vector<std::size_t> offsets;
  const auto values = sampler.NextBatch(3, nullptr, &offsets);
  ASSERT_EQ(offsets.size(), 3u);
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[1], 4u);
  EXPECT_EQ(offsets[2], 8u);
  // Each chunk is one physical page.
  for (std::size_t p = 0; p < offsets.size(); ++p) {
    const std::size_t begin = offsets[p];
    const std::size_t end = p + 1 < offsets.size() ? offsets[p + 1] : values.size();
    const auto pages = PagesOf({values.begin() + begin, values.begin() + end}, 4);
    EXPECT_EQ(pages.size(), 1u);
  }
}

TEST(IncrementalBlockSamplerTest, DeterministicInSeed) {
  Table table = MakePageTaggedTable(16, 4);
  IncrementalBlockSampler a(&table, 9);
  IncrementalBlockSampler b(&table, 9);
  EXPECT_EQ(a.NextBatch(5, nullptr), b.NextBatch(5, nullptr));
  IncrementalBlockSampler c(&table, 10);
  EXPECT_NE(a.NextBatch(5, nullptr), c.NextBatch(5, nullptr));
}

TEST(IncrementalBlockSamplerTest, ChargesIoPerPage) {
  Table table = MakePageTaggedTable(8, 4);
  IncrementalBlockSampler sampler(&table, 11);
  IoStats stats;
  sampler.NextBatch(3, &stats);
  EXPECT_EQ(stats.pages_read, 3u);
  EXPECT_EQ(stats.tuples_read, 12u);
}

}  // namespace
}  // namespace equihist
