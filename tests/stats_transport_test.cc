// Fleet transport tests (DESIGN.md §17): bitwise parity of the in-process
// and socket paths with ServeFrame, the envelope checksum, server-side
// load shedding with typed kResourceExhausted rejections, client retries
// with jittered backoff, per-peer circuit breakers, hedged reads, deadline
// propagation (a slow server handler costs no retry), and the bounded
// coalescer follower wait. Runs under TSan and ASan/UBSan in CI (label
// `transport`).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/status.h"
#include "data/distribution.h"
#include "stats/fleet_wire.h"
#include "stats/histogram_model.h"
#include "stats/link_fault_injection.h"
#include "stats/statistics_fleet.h"
#include "stats/transport.h"
#include "stats/transport_client.h"
#include "storage/table.h"

namespace equihist {
namespace {

using transport::Endpoint;
using transport::InProcessTransport;
using transport::LinkDirection;
using transport::LinkFaultInjector;
using transport::LinkFaultKind;
using transport::LinkFaultSpec;
using transport::LinkFaultTrigger;
using transport::SocketTransport;
using transport::SocketTransportServer;
using transport::Transport;
using transport::TransportClient;

constexpr PageConfig kPage{8192, 64};

Table SmallTable(std::uint64_t n = 40000, std::uint64_t seed = 3) {
  const auto freq =
      MakeZipf({.n = n, .domain_size = n / 50, .skew = 1.2, .seed = seed});
  return Table::Create(*freq, kPage,
                       {.kind = LayoutKind::kRandom, .seed = seed})
      .value();
}

StatisticsFleet::Options FleetOptions() {
  StatisticsFleet::Options options;
  options.shards = 2;
  options.shard = {.buckets = 32, .f = 0.25, .seed = 17, .threads = 1};
  return options;
}

std::vector<BatchEstimateRequest> EstimateRequests(const Table& table) {
  std::vector<BatchEstimateRequest> requests;
  const auto domain = static_cast<Value>(table.tuple_count() / 50);
  for (std::size_t q = 0; q < 6; ++q) {
    const Value lo = static_cast<Value>(q) * domain / 8;
    requests.push_back({q % 2 == 0 ? "t.a" : "t.b", {lo, lo + domain / 4}});
  }
  return requests;
}

// A per-test unix socket path (pid + counter keep parallel tests apart).
std::string UnixSocketPath() {
  static std::atomic<int> counter{0};
  char buf[96];
  std::snprintf(buf, sizeof(buf), "/tmp/equihist_tr_%d_%d.sock", getpid(),
                counter.fetch_add(1));
  return buf;
}

// Builds "t.a"/"t.b" and returns the fleet ready to serve.
void BuildFleet(StatisticsFleet& fleet, const Table& table) {
  const auto result = fleet.BuildAll({"t.a", "t.b"}, table);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

// -- Bitwise parity -----------------------------------------------------------

TEST(TransportTest, InProcessAndSocketMatchServeFrameBitwise) {
  Table table = SmallTable();
  StatisticsFleet fleet(FleetOptions());
  BuildFleet(fleet, table);

  const auto estimate_frame =
      fleetwire::Encode(fleetwire::EstimateBatchRequestFrame{
          EstimateRequests(table)});
  fleetwire::BuildControlRequestFrame build;
  build.op = fleetwire::BuildOp::kEnsureFresh;
  build.column = "t.a";
  const auto build_frame = fleetwire::Encode(build);

  const auto expected_estimate = fleet.ServeFrame(estimate_frame, table);
  const auto expected_build = fleet.ServeFrame(build_frame, table);
  ASSERT_TRUE(expected_estimate.ok());
  ASSERT_TRUE(expected_build.ok());

  // Serve the same frames through every transport; bytes must be
  // identical to the direct ServeFrame call.
  const auto check = [&](Transport& via, const char* label) {
    const auto estimate = via.RoundTrip(estimate_frame, 5'000'000);
    ASSERT_TRUE(estimate.ok()) << label << ": " << estimate.status().ToString();
    EXPECT_EQ(*estimate, *expected_estimate) << label;
    const auto built = via.RoundTrip(build_frame, 5'000'000);
    ASSERT_TRUE(built.ok()) << label << ": " << built.status().ToString();
    EXPECT_EQ(*built, *expected_build) << label;
    // Metrics responses carry live counters, so only the shape is stable.
    const auto metrics_reply =
        via.RoundTrip(fleetwire::EncodeMetricsRequest(), 5'000'000);
    ASSERT_TRUE(metrics_reply.ok()) << label;
    const auto decoded = fleetwire::DecodeMetricsResponse(*metrics_reply);
    ASSERT_TRUE(decoded.ok()) << label;
    EXPECT_NE(decoded->json.find("fleet"), std::string::npos) << label;
  };

  InProcessTransport in_process(&fleet, &table);
  check(in_process, "in-process");

  {
    SocketTransportServer::Options server_options;
    server_options.endpoint = {Endpoint::Kind::kUnix, UnixSocketPath(), 0};
    SocketTransportServer server(&fleet, &table, server_options);
    ASSERT_TRUE(server.Start().ok());
    auto conn = SocketTransport::Connect(server.endpoint(), 2'000'000);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    check(**conn, "unix socket");
    server.Stop();
  }
  {
    SocketTransportServer::Options server_options;
    server_options.endpoint = {Endpoint::Kind::kTcp, "", 0};  // ephemeral
    SocketTransportServer server(&fleet, &table, server_options);
    ASSERT_TRUE(server.Start().ok());
    ASSERT_NE(server.endpoint().port, 0);
    auto conn = SocketTransport::Connect(server.endpoint(), 2'000'000);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    check(**conn, "tcp socket");
    server.Stop();
  }
}

// -- Typed client wrappers over a real socket ---------------------------------

TEST(TransportTest, TypedClientWrappersOverUnixSocket) {
  Table table = SmallTable();
  StatisticsFleet fleet(FleetOptions());
  BuildFleet(fleet, table);

  SocketTransportServer::Options server_options;
  server_options.endpoint = {Endpoint::Kind::kUnix, UnixSocketPath(), 0};
  SocketTransportServer server(&fleet, &table, server_options);
  ASSERT_TRUE(server.Start().ok());

  metrics::MetricsPlane plane;
  TransportClient::Options client_options;
  client_options.metrics = &plane;
  TransportClient client(client_options);
  std::atomic<std::uint64_t> next_connection{1};
  client.AddPeer({"local", [&](std::uint64_t budget)
                               -> Result<std::unique_ptr<Transport>> {
                    EQUIHIST_ASSIGN_OR_RETURN(
                        std::unique_ptr<SocketTransport> conn,
                        SocketTransport::Connect(server.endpoint(), budget,
                                                 nullptr,
                                                 next_connection.fetch_add(1)));
                    return std::unique_ptr<Transport>(std::move(conn));
                  }});

  const auto requests = EstimateRequests(table);
  BatchEstimateResult direct;
  ASSERT_TRUE(fleet.EstimateBatch(table, requests, &direct).ok());

  const auto estimates = client.EstimateBatch(requests, 5'000'000);
  ASSERT_TRUE(estimates.ok()) << estimates.status().ToString();
  ASSERT_EQ(estimates->size(), direct.estimates.size());
  for (std::size_t i = 0; i < direct.estimates.size(); ++i) {
    EXPECT_EQ((*estimates)[i], direct.estimates[i]) << i;  // bitwise
  }

  EXPECT_TRUE(client
                  .BuildControl(fleetwire::BuildOp::kEnsureFresh, "t.a",
                                /*count=*/0, 5'000'000)
                  .ok());
  const auto json = client.FetchMetricsJson(5'000'000);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_NE(json->find("fleet"), std::string::npos);

  EXPECT_EQ(plane.counter(metrics::Counter::kTransportRequests), 3u);
  EXPECT_EQ(plane.counter(metrics::Counter::kTransportErrors), 0u);
  EXPECT_EQ(plane.hist_count(metrics::Hist::kTransportRoundTripMicros), 3u);
  server.Stop();
}

// -- Load shedding ------------------------------------------------------------

TEST(TransportTest, OverloadedServerShedsWithTypedRejection) {
  Table table = SmallTable();
  StatisticsFleet fleet(FleetOptions());
  BuildFleet(fleet, table);

  // Every serve stalls 400ms (kServe delay on frame 0 of every
  // connection), one worker, a 2-deep queue: flooding 6 one-shot
  // connections must shed some of them with kResourceExhausted.
  LinkFaultSpec spec;
  spec.delay_micros = 400'000;
  spec.triggers.push_back({transport::kAnyConnection, 0, LinkDirection::kServe,
                           LinkFaultKind::kDelay});
  LinkFaultInjector injector(spec);

  metrics::MetricsPlane plane;
  SocketTransportServer::Options server_options;
  server_options.endpoint = {Endpoint::Kind::kUnix, UnixSocketPath(), 0};
  server_options.workers = 1;
  server_options.queue_capacity = 2;
  server_options.injector = &injector;
  server_options.metrics = &plane;
  SocketTransportServer server(&fleet, &table, server_options);
  ASSERT_TRUE(server.Start().ok());

  const auto frame = fleetwire::Encode(
      fleetwire::EstimateBatchRequestFrame{EstimateRequests(table)});

  constexpr int kClients = 6;
  std::atomic<int> served{0};
  std::atomic<int> shed{0};
  std::atomic<int> other{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      auto conn = SocketTransport::Connect(server.endpoint(), 2'000'000);
      ASSERT_TRUE(conn.ok()) << conn.status().ToString();
      const auto reply = (*conn)->RoundTrip(frame, 5'000'000);
      if (!reply.ok()) {
        ++other;
        return;
      }
      const auto type = fleetwire::PeekType(*reply);
      ASSERT_TRUE(type.ok());
      if (*type == fleetwire::FrameType::kRejection) {
        const auto rejection = fleetwire::DecodeRejection(*reply);
        ASSERT_TRUE(rejection.ok());
        EXPECT_EQ(rejection->code, StatusCode::kResourceExhausted);
        ++shed;
      } else {
        EXPECT_EQ(*type, fleetwire::FrameType::kEstimateBatchResponse);
        ++served;
      }
    });
  }
  for (auto& t : clients) t.join();
  server.Stop();

  EXPECT_EQ(served + shed + other, kClients);
  EXPECT_GE(served.load(), 1);
  EXPECT_GE(shed.load(), 1);
  EXPECT_EQ(other.load(), 0);
  // The shed drops are visible in the server's metrics JSON.
  EXPECT_EQ(plane.counter(metrics::Counter::kServerShedDrops),
            static_cast<std::uint64_t>(shed.load()));
  EXPECT_NE(plane.ToJson().find("\"server_shed_drops\":"), std::string::npos);
}

// -- Client resilience over fake transports -----------------------------------

// A scriptable Transport: returns the queued results in order, repeating
// the last one; counts round-trips; optional per-call stall.
class FakeTransport final : public Transport {
 public:
  explicit FakeTransport(std::vector<Result<std::vector<std::uint8_t>>> script,
                         std::uint64_t stall_micros = 0,
                         std::atomic<int>* calls = nullptr)
      : script_(std::move(script)), stall_micros_(stall_micros),
        calls_(calls) {}

  Result<std::vector<std::uint8_t>> RoundTrip(
      std::span<const std::uint8_t>, std::uint64_t budget_micros) override {
    if (calls_ != nullptr) calls_->fetch_add(1);
    if (stall_micros_ > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(std::min(stall_micros_, budget_micros)));
      if (stall_micros_ >= budget_micros) {
        return Status::DeadlineExceeded("transport budget exhausted");
      }
    }
    const std::size_t index = std::min(next_++, script_.size() - 1);
    return script_[index];
  }

 private:
  std::vector<Result<std::vector<std::uint8_t>>> script_;
  std::uint64_t stall_micros_;
  std::atomic<int>* calls_;
  std::size_t next_ = 0;
};

std::vector<std::uint8_t> MetricsReply(const std::string& json) {
  return fleetwire::Encode(fleetwire::MetricsResponseFrame{json});
}

TransportClient::Peer SharedPeer(const char* name,
                                 std::shared_ptr<Transport> transport) {
  // The connect fn hands out non-owning wrappers around one shared fake,
  // so scripted state survives pooling and reconnects.
  class Wrapper final : public Transport {
   public:
    explicit Wrapper(std::shared_ptr<Transport> inner)
        : inner_(std::move(inner)) {}
    Result<std::vector<std::uint8_t>> RoundTrip(
        std::span<const std::uint8_t> frame,
        std::uint64_t budget_micros) override {
      return inner_->RoundTrip(frame, budget_micros);
    }

   private:
    std::shared_ptr<Transport> inner_;
  };
  return {name, [transport = std::move(transport)](std::uint64_t)
                    -> Result<std::unique_ptr<Transport>> {
            return std::unique_ptr<Transport>(
                std::make_unique<Wrapper>(transport));
          }};
}

TEST(TransportClientTest, RetriesTransientFailureWithBackoff) {
  metrics::MetricsPlane plane;
  auto fake = std::make_shared<FakeTransport>(
      std::vector<Result<std::vector<std::uint8_t>>>{
          Status::Unavailable("flaky link"), MetricsReply("ok")});
  TransportClient::Options options;
  options.retry = {.max_attempts = 3, .base_backoff_micros = 200};
  options.metrics = &plane;
  TransportClient client(options);
  client.AddPeer(SharedPeer("flaky", fake));

  const auto reply = client.Call(fleetwire::EncodeMetricsRequest(),
                                 /*idempotent=*/true, 2'000'000);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(plane.counter(metrics::Counter::kTransportRetries), 1u);
  EXPECT_EQ(plane.counter(metrics::Counter::kTransportErrors), 0u);
}

TEST(TransportClientTest, NonIdempotentCallsAreNeverRetried) {
  metrics::MetricsPlane plane;
  auto fake = std::make_shared<FakeTransport>(
      std::vector<Result<std::vector<std::uint8_t>>>{
          Status::Unavailable("flaky link"), MetricsReply("ok")});
  TransportClient::Options options;
  options.retry = {.max_attempts = 4, .base_backoff_micros = 100};
  options.metrics = &plane;
  TransportClient client(options);
  client.AddPeer(SharedPeer("flaky", fake));

  const auto reply = client.Call(fleetwire::EncodeMetricsRequest(),
                                 /*idempotent=*/false, 2'000'000);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(plane.counter(metrics::Counter::kTransportRetries), 0u);
}

TEST(TransportClientTest, BackpressureRejectionIsNeverRetried) {
  metrics::MetricsPlane plane;
  auto fake = std::make_shared<FakeTransport>(
      std::vector<Result<std::vector<std::uint8_t>>>{
          fleetwire::Encode(fleetwire::RejectionFrame{
              StatusCode::kResourceExhausted, "server work queue full"}),
          MetricsReply("would have succeeded")});
  TransportClient::Options options;
  options.retry = {.max_attempts = 5, .base_backoff_micros = 100};
  options.metrics = &plane;
  TransportClient client(options);
  client.AddPeer(SharedPeer("overloaded", fake));

  const auto reply = client.Call(fleetwire::EncodeMetricsRequest(),
                                 /*idempotent=*/true, 2'000'000);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kResourceExhausted);
  // Backpressure is terminal: counted, not retried.
  EXPECT_EQ(plane.counter(metrics::Counter::kTransportBackpressure), 1u);
  EXPECT_EQ(plane.counter(metrics::Counter::kTransportRetries), 0u);
}

TEST(TransportClientTest, RetryableRejectionFrameIsRetried) {
  metrics::MetricsPlane plane;
  auto fake = std::make_shared<FakeTransport>(
      std::vector<Result<std::vector<std::uint8_t>>>{
          fleetwire::Encode(fleetwire::RejectionFrame{
              StatusCode::kUnavailable, "transient wire damage"}),
          MetricsReply("ok")});
  TransportClient::Options options;
  options.retry = {.max_attempts = 3, .base_backoff_micros = 100};
  options.metrics = &plane;
  TransportClient client(options);
  client.AddPeer(SharedPeer("damaged", fake));

  const auto reply = client.Call(fleetwire::EncodeMetricsRequest(),
                                 /*idempotent=*/true, 2'000'000);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(plane.counter(metrics::Counter::kTransportRetries), 1u);
}

TEST(TransportClientTest, BreakerOpensFastFailsAndRecovers) {
  metrics::MetricsPlane plane;
  std::atomic<int> calls{0};
  auto failing = std::make_shared<FakeTransport>(
      std::vector<Result<std::vector<std::uint8_t>>>{
          Status::Unavailable("peer down"), Status::Unavailable("peer down"),
          Status::Unavailable("peer down"), MetricsReply("recovered")},
      /*stall_micros=*/0, &calls);
  std::uint64_t now = 1'000'000;
  TransportClient::Options options;
  options.retry = {.max_attempts = 1};  // isolate the breaker
  options.breaker_failure_threshold = 3;
  options.breaker_cooldown_micros = 500'000;
  options.clock = [&now] { return now; };
  options.metrics = &plane;
  TransportClient client(options);
  client.AddPeer(SharedPeer("down", failing));

  const auto frame = fleetwire::EncodeMetricsRequest();
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(client.Call(frame, true, 100'000).ok());
  }
  EXPECT_EQ(plane.counter(metrics::Counter::kTransportBreakerOpens), 1u);
  EXPECT_EQ(calls.load(), 3);

  // Open: fast-fail without touching the transport.
  const auto rejected = client.Call(frame, true, 100'000);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(plane.counter(metrics::Counter::kTransportBreakerFastFails), 1u);
  EXPECT_EQ(calls.load(), 3);

  // Cooldown passes: the half-open probe goes through and closes it.
  now += 500'001;
  const auto recovered = client.Call(frame, true, 100'000);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(calls.load(), 4);
  const auto again = client.Call(frame, true, 100'000);
  EXPECT_TRUE(again.ok());
  EXPECT_EQ(plane.counter(metrics::Counter::kTransportBreakerOpens), 1u);
}

TEST(TransportClientTest, HedgedReadOvertakesStalledPrimary) {
  metrics::MetricsPlane plane;
  auto slow = std::make_shared<FakeTransport>(
      std::vector<Result<std::vector<std::uint8_t>>>{MetricsReply("slow")},
      /*stall_micros=*/250'000);
  auto fast = std::make_shared<FakeTransport>(
      std::vector<Result<std::vector<std::uint8_t>>>{MetricsReply("fast")});
  TransportClient::Options options;
  options.retry = {.max_attempts = 1};
  options.enable_hedging = true;
  options.hedge_initial_delay_micros = 20'000;
  options.metrics = &plane;
  TransportClient client(options);
  client.AddPeer(SharedPeer("slow", slow));
  client.AddPeer(SharedPeer("fast", fast));

  const auto reply = client.Call(fleetwire::EncodeMetricsRequest(),
                                 /*idempotent=*/true, 2'000'000);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  const auto decoded = fleetwire::DecodeMetricsResponse(*reply);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->json, "fast");  // the hedge won
  EXPECT_EQ(plane.counter(metrics::Counter::kTransportHedges), 1u);
  EXPECT_EQ(plane.counter(metrics::Counter::kTransportHedgeWins), 1u);
}

// -- Deadline propagation (satellite): slow handler costs no retry ------------

TEST(TransportTest, ServerSleepingPastDeadlineCostsNoRetryAndTripsBreaker) {
  Table table = SmallTable();
  StatisticsFleet fleet(FleetOptions());
  BuildFleet(fleet, table);

  // The handler sleeps 600ms on every frame; the client's budget is
  // 150ms. The call must come back kDeadlineExceeded WITHOUT consuming a
  // retry (the overall budget is spent — a retry could never fit), and
  // the breaker must count the failure.
  LinkFaultSpec server_spec;
  server_spec.delay_micros = 600'000;
  server_spec.triggers.push_back({transport::kAnyConnection, 0,
                                  LinkDirection::kServe,
                                  LinkFaultKind::kDelay});
  LinkFaultInjector server_injector(server_spec);

  SocketTransportServer::Options server_options;
  server_options.endpoint = {Endpoint::Kind::kUnix, UnixSocketPath(), 0};
  server_options.injector = &server_injector;
  SocketTransportServer server(&fleet, &table, server_options);
  ASSERT_TRUE(server.Start().ok());

  metrics::MetricsPlane plane;
  TransportClient::Options client_options;
  client_options.retry = {.max_attempts = 3, .base_backoff_micros = 1'000};
  client_options.breaker_failure_threshold = 1;
  client_options.metrics = &plane;
  TransportClient client(client_options);
  client.AddPeer({"slow", [&](std::uint64_t budget)
                              -> Result<std::unique_ptr<Transport>> {
                    EQUIHIST_ASSIGN_OR_RETURN(
                        std::unique_ptr<SocketTransport> conn,
                        SocketTransport::Connect(server.endpoint(), budget));
                    return std::unique_ptr<Transport>(std::move(conn));
                  }});

  const auto start = std::chrono::steady_clock::now();
  const auto estimates =
      client.EstimateBatch(EstimateRequests(table), /*deadline=*/150'000);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_FALSE(estimates.ok());
  EXPECT_EQ(estimates.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed.count(), 500);  // returned at its deadline, not 600ms
  EXPECT_EQ(plane.counter(metrics::Counter::kTransportRetries), 0u);
  EXPECT_EQ(plane.counter(metrics::Counter::kTransportDeadlineExceeded), 1u);
  // breaker_failure_threshold = 1: the deadline failure tripped it.
  EXPECT_EQ(plane.counter(metrics::Counter::kTransportBreakerOpens), 1u);
  server.Stop();
}

// -- Expired-at-admission rejections ------------------------------------------

TEST(TransportTest, ServerDropsWorkWhoseDeadlineExpiredInQueue) {
  Table table = SmallTable();
  StatisticsFleet fleet(FleetOptions());
  BuildFleet(fleet, table);

  // One worker stalled 300ms on its first serve; a second request with an
  // 80ms budget expires while queued and must be answered with a
  // kDeadlineExceeded rejection at admission, not served late.
  LinkFaultSpec server_spec;
  server_spec.delay_micros = 300'000;
  server_spec.triggers.push_back(
      {1, 0, LinkDirection::kServe, LinkFaultKind::kDelay});
  LinkFaultInjector server_injector(server_spec);

  metrics::MetricsPlane plane;
  SocketTransportServer::Options server_options;
  server_options.endpoint = {Endpoint::Kind::kUnix, UnixSocketPath(), 0};
  server_options.workers = 1;
  server_options.injector = &server_injector;
  server_options.metrics = &plane;
  SocketTransportServer server(&fleet, &table, server_options);
  ASSERT_TRUE(server.Start().ok());

  const auto frame = fleetwire::Encode(
      fleetwire::EstimateBatchRequestFrame{EstimateRequests(table)});

  auto first = SocketTransport::Connect(server.endpoint(), 2'000'000);
  auto second = SocketTransport::Connect(server.endpoint(), 2'000'000);
  ASSERT_TRUE(first.ok() && second.ok());

  std::thread blocked([&] {
    const auto reply = (*first)->RoundTrip(frame, 2'000'000);
    EXPECT_TRUE(reply.ok());  // served after the injected stall
  });
  // Wait until the worker has dequeued the first frame (queue-wait sample
  // recorded) and sits in its 300ms stall, then race the second frame with
  // a budget that cannot survive the queue wait. A flat sleep here flakes
  // on a loaded host: the second frame could win the worker instead.
  for (int i = 0;
       i < 500 && plane.hist_count(metrics::Hist::kServerQueueWaitMicros) < 1;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(plane.hist_count(metrics::Hist::kServerQueueWaitMicros), 1u);
  const auto reply = (*second)->RoundTrip(frame, 80'000);
  blocked.join();
  // The expired drop is counted when the worker dequeues the second item
  // after finishing the stalled first one — give it a bounded moment
  // before Stop() tears the workers down mid-loop.
  for (int i = 0;
       i < 500 && plane.counter(metrics::Counter::kServerExpiredDrops) == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  server.Stop();

  // Client side: its deadline fired (the rejection may arrive after the
  // client gave up — either way it is typed, never a late answer).
  if (reply.ok()) {
    const auto rejection = fleetwire::DecodeRejection(*reply);
    ASSERT_TRUE(rejection.ok());
    EXPECT_EQ(rejection->code, StatusCode::kDeadlineExceeded);
  } else {
    EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded);
  }
  EXPECT_EQ(plane.counter(metrics::Counter::kServerExpiredDrops), 1u);
}

// -- Bounded coalescer follower wait (satellite) ------------------------------

// A backend whose build blocks on a test-controlled gate: lets the test
// wedge a coalescer leader mid-wave at an exact point (same pattern as the
// mid-build hook in stats_test.cc; external id from the >= 128 range).
constexpr auto kGatedBackendId = static_cast<HistogramBackendId>(202);

std::atomic<bool>& GateEntered() {
  static std::atomic<bool> entered{false};
  return entered;
}
std::atomic<bool>& GateReleased() {
  static std::atomic<bool> released{false};
  return released;
}

class GatedModel final : public HistogramModel {
 public:
  GatedModel(std::uint64_t total, Value lo, Value hi)
      : total_(total), lo_(lo), hi_(hi) {}
  HistogramBackendId backend_id() const override { return kGatedBackendId; }
  double EstimateRangeCount(const RangeQuery& query) const override {
    return (query.hi > lo_ && query.lo < hi_) ? static_cast<double>(total_)
                                              : 0.0;
  }
  std::uint64_t bucket_count() const override { return 1; }
  std::uint64_t total() const override { return total_; }
  Value lower_fence() const override { return lo_; }
  Value upper_fence() const override { return hi_; }
  std::size_t MemoryBytes() const override { return sizeof(*this); }
  std::string Describe() const override { return "Gated"; }
  void SerializePayload(std::vector<std::uint8_t>*) const override {}

 private:
  std::uint64_t total_;
  Value lo_;
  Value hi_;
};

void RegisterGatedBackendOnce() {
  static const bool registered = [] {
    HistogramBackendRegistry::Backend backend;
    backend.name = "gated";
    backend.build_from_sample =
        [](std::span<const Value> sample, std::uint64_t,
           std::uint64_t population_size) -> Result<HistogramModelPtr> {
      if (sample.empty()) {
        return Status::InvalidArgument("gated backend needs a sample");
      }
      GateEntered().store(true);
      while (!GateReleased().load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return HistogramModelPtr(std::make_shared<GatedModel>(
          population_size, sample.front() - 1, sample.back()));
    };
    backend.deserialize_payload =
        [](std::span<const std::uint8_t>,
           std::size_t* consumed) -> Result<HistogramModelPtr> {
      *consumed = 0;
      return HistogramModelPtr(std::make_shared<GatedModel>(0, 0, 1));
    };
    const Status status = HistogramBackendRegistry::Global().Register(
        kGatedBackendId, std::move(backend));
    EXPECT_TRUE(status.ok()) << status.ToString();
    return true;
  }();
  (void)registered;
}

TEST(BatchCoalescerTest, FollowerTimesOutWhenLeaderWedges) {
  RegisterGatedBackendOnce();
  GateEntered().store(false);
  GateReleased().store(false);

  Table table = SmallTable();
  StatisticsFleet::Options options;
  options.shards = 1;
  options.shard = {.buckets = 32, .f = 0.25, .seed = 17, .threads = 1};
  options.shard.column_backends["t.w"] = kGatedBackendId;
  options.coalesce = true;
  options.coalesce_wait_micros = 50'000;  // followers give up after 50ms
  StatisticsFleet fleet(options);

  const std::vector<BatchEstimateRequest> requests{
      {"t.w", {0, static_cast<Value>(table.tuple_count())}}};

  // Leader: first submitter; its wave wedges inside the gated build.
  Status leader_status = Status::Internal("unset");
  std::thread leader([&] {
    BatchEstimateResult result;
    leader_status = fleet.EstimateBatch(table, requests, &result);
  });
  while (!GateEntered().load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Follower: sees leader_active_, waits its bound, abandons with a typed
  // kDeadlineExceeded instead of hanging on the wedged leader.
  const auto start = std::chrono::steady_clock::now();
  BatchEstimateResult follower_result;
  const Status follower_status =
      fleet.EstimateBatch(table, requests, &follower_result);
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(follower_status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(waited.count(), 45);
  EXPECT_LT(waited.count(), 5'000);  // bounded, not wedged

  // Unwedge: the leader completes normally, unharmed by the abandonment.
  GateReleased().store(true);
  leader.join();
  EXPECT_TRUE(leader_status.ok()) << leader_status.ToString();
}

}  // namespace
}  // namespace equihist
