// Concurrency tests for StatisticsManager: many threads hammering
// GetOrBuild/RecordModifications/EnsureFresh/IsStale at once, plus the
// BuildAll fan-out. Run under -fsanitize=thread in CI (the ci.yml tsan
// job) to prove the locking discipline.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/distribution.h"
#include "stats/statistics_manager.h"
#include "storage/table.h"

namespace equihist {
namespace {

constexpr PageConfig kPage{8192, 64};

Table SmallTable(std::uint64_t n = 60000, std::uint64_t seed = 3) {
  const auto freq =
      MakeZipf({.n = n, .domain_size = n / 50, .skew = 1.2, .seed = seed});
  return Table::Create(*freq, kPage, {.kind = LayoutKind::kRandom, .seed = seed})
      .value();
}

TEST(StatsConcurrencyTest, ConcurrentGetOrBuildBuildsOncePerColumn) {
  Table table = SmallTable();
  StatisticsManager manager({.buckets = 40, .f = 0.25, .threads = 2});
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&manager, &table, &failures]() {
      for (int i = 0; i < 5; ++i) {
        const auto stats = manager.GetOrBuildShared("t.x", table);
        if (!stats.ok() || (*stats)->row_count != table.tuple_count()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // All 40 concurrent lookups collapsed to a single build.
  EXPECT_EQ(manager.rebuild_count(), 1u);
  EXPECT_EQ(manager.size(), 1u);
}

TEST(StatsConcurrencyTest, MixedReadersWritersAndRebuilds) {
  Table table = SmallTable();
  StatisticsManager manager(
      {.buckets = 40, .f = 0.25, .staleness_threshold = 0.2, .threads = 2});
  const std::vector<std::string> columns = {"a", "b", "c"};
  for (const auto& c : columns) {
    ASSERT_TRUE(manager.GetOrBuildShared(c, table).ok());
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  // Readers: hold snapshots and use them while rebuilds happen underneath.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < 30; ++i) {
        const auto stats =
            manager.GetOrBuildShared(columns[(t + i) % columns.size()], table);
        if (!stats.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // Touch the snapshot: safe even if the entry is rebuilt right now.
        if ((*stats)->histogram.bucket_count() == 0) failures.fetch_add(1);
        (void)manager.IsStale(columns[i % columns.size()]);
      }
    });
  }
  // Writers: report DML, forcing staleness.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 30; ++i) {
        manager.RecordModifications(columns[i % columns.size()],
                                    table.tuple_count() / 8);
      }
    });
  }
  // Refreshers: rebuild whatever went stale.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < 15; ++i) {
        const auto stats =
            manager.EnsureFreshShared(columns[(t + i) % columns.size()], table);
        if (!stats.ok() || (*stats)->row_count != table.tuple_count()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(manager.size(), columns.size());
  EXPECT_GE(manager.rebuild_count(), columns.size());
  EXPECT_GT(manager.total_build_cost().pages_read, 0u);
}

TEST(StatsConcurrencyTest, ConcurrentDropAndBuild) {
  Table table = SmallTable();
  StatisticsManager manager({.buckets = 30, .f = 0.3, .threads = 2});
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 10; ++i) {
        const auto stats = manager.GetOrBuildShared("col", table);
        if (stats.ok() && (*stats)->row_count != table.tuple_count()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&]() {
    for (int i = 0; i < 10; ++i) manager.Drop("col");
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(StatsConcurrencyTest, BuildAllBuildsEveryColumn) {
  Table table = SmallTable();
  StatisticsManager manager({.buckets = 40, .f = 0.25, .threads = 4});
  const std::vector<std::string> columns = {"c0", "c1", "c2", "c3", "c4"};
  ASSERT_TRUE(manager.BuildAll(columns, table).ok());
  EXPECT_EQ(manager.size(), columns.size());
  EXPECT_EQ(manager.rebuild_count(), columns.size());
  for (const auto& c : columns) EXPECT_TRUE(manager.Has(c));
  // Already fresh: a second sweep is a no-op.
  ASSERT_TRUE(manager.BuildAll(columns, table).ok());
  EXPECT_EQ(manager.rebuild_count(), columns.size());
}

TEST(StatsConcurrencyTest, BuildAllMatchesSerialBuilds) {
  // Per-column seed streams make the fan-out order irrelevant: a BuildAll
  // sweep produces the same statistics as serial first accesses.
  Table table = SmallTable();
  const std::vector<std::string> columns = {"x", "y", "z"};
  StatisticsManager parallel({.buckets = 40, .f = 0.25, .threads = 4});
  ASSERT_TRUE(parallel.BuildAll(columns, table).ok());
  StatisticsManager serial({.buckets = 40, .f = 0.25, .threads = 1});
  for (const auto& c : columns) {
    const auto from_serial = serial.GetOrBuildShared(c, table);
    const auto from_parallel = parallel.GetOrBuildShared(c, table);
    ASSERT_TRUE(from_serial.ok());
    ASSERT_TRUE(from_parallel.ok());
    EXPECT_EQ((*from_serial)->histogram.separators(),
              (*from_parallel)->histogram.separators())
        << "column " << c;
    EXPECT_EQ((*from_serial)->histogram.counts(),
              (*from_parallel)->histogram.counts());
    EXPECT_EQ((*from_serial)->sample_size, (*from_parallel)->sample_size);
  }
}

TEST(StatsConcurrencyTest, SnapshotOutlivesDropAndRebuild) {
  Table table = SmallTable();
  StatisticsManager manager({.buckets = 30, .f = 0.3, .threads = 1});
  auto snapshot = manager.GetOrBuildShared("col", table);
  ASSERT_TRUE(snapshot.ok());
  const std::uint64_t rows = (*snapshot)->row_count;
  manager.RecordModifications("col", table.tuple_count() * 2);
  ASSERT_TRUE(manager.EnsureFreshShared("col", table).ok());  // rebuild
  EXPECT_TRUE(manager.Drop("col"));
  // The old snapshot is still safely readable.
  EXPECT_EQ((*snapshot)->row_count, rows);
}

}  // namespace
}  // namespace equihist
