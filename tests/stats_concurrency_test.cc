// Concurrency tests for StatisticsManager: many threads hammering
// GetOrBuild/RecordModifications/EnsureFresh/IsStale at once, plus the
// BuildAll fan-out. Run under -fsanitize=thread in CI (the ci.yml tsan
// job) to prove the locking discipline.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/distribution.h"
#include "stats/statistics_manager.h"
#include "storage/fault_injection.h"
#include "storage/table.h"

namespace equihist {
namespace {

constexpr PageConfig kPage{8192, 64};

Table SmallTable(std::uint64_t n = 60000, std::uint64_t seed = 3) {
  const auto freq =
      MakeZipf({.n = n, .domain_size = n / 50, .skew = 1.2, .seed = seed});
  return Table::Create(*freq, kPage, {.kind = LayoutKind::kRandom, .seed = seed})
      .value();
}

TEST(StatsConcurrencyTest, ConcurrentGetOrBuildBuildsOncePerColumn) {
  Table table = SmallTable();
  StatisticsManager manager({.buckets = 40, .f = 0.25, .threads = 2});
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&manager, &table, &failures]() {
      for (int i = 0; i < 5; ++i) {
        const auto stats = manager.GetOrBuildShared("t.x", table);
        if (!stats.ok() || (*stats)->row_count != table.tuple_count()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // All 40 concurrent lookups collapsed to a single build.
  EXPECT_EQ(manager.rebuild_count(), 1u);
  EXPECT_EQ(manager.size(), 1u);
}

TEST(StatsConcurrencyTest, MixedReadersWritersAndRebuilds) {
  Table table = SmallTable();
  StatisticsManager manager(
      {.buckets = 40, .f = 0.25, .staleness_threshold = 0.2, .threads = 2});
  const std::vector<std::string> columns = {"a", "b", "c"};
  for (const auto& c : columns) {
    ASSERT_TRUE(manager.GetOrBuildShared(c, table).ok());
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  // Readers: hold snapshots and use them while rebuilds happen underneath.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < 30; ++i) {
        const auto stats =
            manager.GetOrBuildShared(columns[(t + i) % columns.size()], table);
        if (!stats.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // Touch the snapshot: safe even if the entry is rebuilt right now.
        if ((*stats)->histogram().bucket_count() == 0) failures.fetch_add(1);
        (void)manager.IsStale(columns[i % columns.size()]);
      }
    });
  }
  // Writers: report DML, forcing staleness.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 30; ++i) {
        manager.RecordModifications(columns[i % columns.size()],
                                    table.tuple_count() / 8);
      }
    });
  }
  // Refreshers: rebuild whatever went stale.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < 15; ++i) {
        const auto stats =
            manager.EnsureFreshShared(columns[(t + i) % columns.size()], table);
        if (!stats.ok() || (*stats)->row_count != table.tuple_count()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(manager.size(), columns.size());
  EXPECT_GE(manager.rebuild_count(), columns.size());
  EXPECT_GT(manager.total_build_cost().pages_read, 0u);
}

TEST(StatsConcurrencyTest, ConcurrentDropAndBuild) {
  Table table = SmallTable();
  StatisticsManager manager({.buckets = 30, .f = 0.3, .threads = 2});
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 10; ++i) {
        const auto stats = manager.GetOrBuildShared("col", table);
        if (stats.ok() && (*stats)->row_count != table.tuple_count()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&]() {
    for (int i = 0; i < 10; ++i) manager.Drop("col");
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(StatsConcurrencyTest, BuildAllBuildsEveryColumn) {
  Table table = SmallTable();
  StatisticsManager manager({.buckets = 40, .f = 0.25, .threads = 4});
  const std::vector<std::string> columns = {"c0", "c1", "c2", "c3", "c4"};
  ASSERT_TRUE(manager.BuildAll(columns, table).ok());
  EXPECT_EQ(manager.size(), columns.size());
  EXPECT_EQ(manager.rebuild_count(), columns.size());
  for (const auto& c : columns) EXPECT_TRUE(manager.Has(c));
  // Already fresh: a second sweep is a no-op.
  ASSERT_TRUE(manager.BuildAll(columns, table).ok());
  EXPECT_EQ(manager.rebuild_count(), columns.size());
}

TEST(StatsConcurrencyTest, BuildAllMatchesSerialBuilds) {
  // Per-column seed streams make the fan-out order irrelevant: a BuildAll
  // sweep produces the same statistics as serial first accesses.
  Table table = SmallTable();
  const std::vector<std::string> columns = {"x", "y", "z"};
  StatisticsManager parallel({.buckets = 40, .f = 0.25, .threads = 4});
  ASSERT_TRUE(parallel.BuildAll(columns, table).ok());
  StatisticsManager serial({.buckets = 40, .f = 0.25, .threads = 1});
  for (const auto& c : columns) {
    const auto from_serial = serial.GetOrBuildShared(c, table);
    const auto from_parallel = parallel.GetOrBuildShared(c, table);
    ASSERT_TRUE(from_serial.ok());
    ASSERT_TRUE(from_parallel.ok());
    EXPECT_EQ((*from_serial)->histogram().separators(),
              (*from_parallel)->histogram().separators())
        << "column " << c;
    EXPECT_EQ((*from_serial)->histogram().counts(),
              (*from_parallel)->histogram().counts());
    EXPECT_EQ((*from_serial)->sample_size, (*from_parallel)->sample_size);
  }
}

TEST(StatsConcurrencyTest, ServingPathMatchesSnapshotEstimates) {
  Table table = SmallTable();
  StatisticsManager manager({.buckets = 40, .f = 0.25, .threads = 1});
  const RangeQuery query{100, 5000};
  const auto estimate = manager.EstimateRange("col", table, query);
  ASSERT_TRUE(estimate.ok());
  // The serving path must answer from exactly the published snapshot.
  const auto snapshot = manager.GetOrBuildShared("col", table);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(*estimate, (*snapshot)->EstimateRangeCount(query));
  // Repeat calls hit the thread cache and stay bitwise identical.
  for (int i = 0; i < 10; ++i) {
    const auto again = manager.EstimateRange("col", table, query);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, *estimate);
  }
  EXPECT_EQ(manager.rebuild_count(), 1u);  // one build served everything
}

TEST(StatsConcurrencyTest, ServingCacheInvalidatesOnRebuildAndDrop) {
  Table table = SmallTable();
  StatisticsManager manager(
      {.buckets = 40, .f = 0.25, .staleness_threshold = 0.1, .threads = 1});
  const RangeQuery query{0, 100000};
  ASSERT_TRUE(manager.EstimateRange("col", table, query).ok());
  EXPECT_EQ(manager.rebuild_count(), 1u);

  // A rebuild publishes a new snapshot; the cached serving slot must miss
  // and re-resolve to the new statistics.
  manager.RecordModifications("col", table.tuple_count());
  ASSERT_TRUE(manager.EnsureFreshShared("col", table).ok());
  EXPECT_EQ(manager.rebuild_count(), 2u);
  const auto fresh = manager.GetOrBuildShared("col", table);
  ASSERT_TRUE(fresh.ok());
  const auto estimate = manager.EstimateRange("col", table, query);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(*estimate, (*fresh)->EstimateRangeCount(query));

  // Dropping invalidates too: the next estimate triggers a fresh build
  // rather than serving the dropped snapshot.
  EXPECT_TRUE(manager.Drop("col"));
  ASSERT_TRUE(manager.EstimateRange("col", table, query).ok());
  EXPECT_EQ(manager.rebuild_count(), 3u);
}

TEST(StatsConcurrencyTest, BatchServingMatchesScalarAtAnyThreadCount) {
  Table table = SmallTable();
  StatisticsManager manager({.buckets = 40, .f = 0.25, .threads = 4});
  std::vector<RangeQuery> queries;
  for (int i = 0; i < 2000; ++i) {
    queries.push_back({i * 13 % 40000, i * 13 % 40000 + 500 + i});
  }
  std::vector<double> scalar(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto estimate = manager.EstimateRange("col", table, queries[i]);
    ASSERT_TRUE(estimate.ok());
    scalar[i] = *estimate;
  }
  // Sequential and pooled batch paths agree with the scalar path bitwise.
  std::vector<double> batch(queries.size(), -1.0);
  ASSERT_TRUE(manager
                  .EstimateRanges("col", table, queries, batch,
                                  /*use_pool=*/false)
                  .ok());
  EXPECT_EQ(batch, scalar);
  std::fill(batch.begin(), batch.end(), -1.0);
  ASSERT_TRUE(manager
                  .EstimateRanges("col", table, queries, batch,
                                  /*use_pool=*/true)
                  .ok());
  EXPECT_EQ(batch, scalar);
  // An undersized output span is rejected, not overrun.
  std::vector<double> small(queries.size() - 1);
  EXPECT_FALSE(manager.EstimateRanges("col", table, queries, small).ok());
}

TEST(StatsConcurrencyTest, ConcurrentServingDuringRebuildsAndDrops) {
  // Readers estimate through the lock-free path while writers force
  // rebuilds and drops underneath — under TSan this proves the
  // publication-counter protocol. Estimates must always come from *some*
  // complete snapshot: positive row counts, finite values, no errors.
  Table table = SmallTable();
  StatisticsManager manager(
      {.buckets = 30, .f = 0.3, .staleness_threshold = 0.05, .threads = 2});
  const std::vector<std::string> columns = {"a", "b"};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < 200; ++i) {
        const std::string& column = columns[(t + i) % columns.size()];
        const auto estimate =
            manager.EstimateRange(column, table, {100, 30000 + i});
        if (!estimate.ok() || !(*estimate >= 0.0) ||
            *estimate > static_cast<double>(table.tuple_count())) {
          failures.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&]() {
    for (int i = 0; i < 20; ++i) {
      manager.RecordModifications(columns[i % columns.size()],
                                  table.tuple_count() / 4);
      (void)manager.EnsureFreshShared(columns[i % columns.size()], table);
    }
  });
  threads.emplace_back([&]() {
    for (int i = 0; i < 10; ++i) manager.Drop(columns[i % columns.size()]);
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(StatsConcurrencyTest, MixedBackendServingDuringRebuildsAndDrops) {
  // Same race as above, but every column is served by a different histogram
  // backend: the snapshot-cache protocol must be family-agnostic. Under
  // TSan this proves the serving path never mixes a column's old model with
  // a new snapshot while Drop/rebuild swap entries underneath.
  Table table = SmallTable();
  StatisticsManager::Options options;
  options.buckets = 24;
  options.f = 0.3;
  options.staleness_threshold = 0.05;
  options.threads = 2;
  options.column_backends["eh"] = HistogramBackendId::kEquiHeight;
  options.column_backends["ew"] = HistogramBackendId::kEquiWidth;
  options.column_backends["cp"] = HistogramBackendId::kCompressed;
  options.column_backends["gm"] = HistogramBackendId::kGmpIncremental;
  StatisticsManager manager(options);
  const std::vector<std::string> columns = {"eh", "ew", "cp", "gm"};

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < 150; ++i) {
        const std::string& column = columns[(t + i) % columns.size()];
        const auto estimate =
            manager.EstimateRange(column, table, {100, 30000 + i});
        if (!estimate.ok() || !(*estimate >= 0.0) ||
            *estimate > static_cast<double>(table.tuple_count()) + 1.0) {
          failures.fetch_add(1);
          continue;
        }
        // A served snapshot must carry the column's configured family.
        const auto snapshot = manager.GetOrBuildShared(column, table);
        if (!snapshot.ok() || (*snapshot)->model == nullptr ||
            (*snapshot)->model->backend_id() !=
                options.column_backends.at(column)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&]() {
    for (int i = 0; i < 20; ++i) {
      manager.RecordModifications(columns[i % columns.size()],
                                  table.tuple_count() / 4);
      (void)manager.EnsureFreshShared(columns[i % columns.size()], table);
    }
  });
  threads.emplace_back([&]() {
    for (int i = 0; i < 12; ++i) manager.Drop(columns[i % columns.size()]);
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(StatsConcurrencyTest, ReadersServeStaleWhileBuildsFailAndRecover) {
  // Degraded serving under contention (DESIGN.md §11): storage starts
  // failing every read a bounded number of times, so rebuild attempts keep
  // failing and are absorbed (stale-while-error) while reader threads
  // estimate through the lock-free path the whole time. Once the injected
  // outage wears off, a rebuild succeeds and readers switch to the fresh
  // snapshot. Under TSan this proves the degraded-state bookkeeping never
  // races with serving.
  Table table = SmallTable(20000);
  StatisticsManager::Options options;
  options.buckets = 24;
  options.f = 0.25;
  options.threads = 2;
  options.retry.max_attempts = 2;
  options.breaker_failure_threshold = 1'000'000;  // no cooldown stalls here
  StatisticsManager manager(options);
  ASSERT_TRUE(manager.GetOrBuildShared("t.x", table).ok());

  // Every page fails 8 read attempts before healing; rebuilds consume two
  // attempts per page, so several rebuilds fail before one succeeds. The
  // injector's per-page counters are internally synchronized.
  FaultSpec spec;
  spec.transient_probability = 1.0;
  spec.transient_failures_per_page = 8;
  FaultInjector injector(spec);
  table.set_fault_injector(&injector);

  std::atomic<int> failures{0};
  std::atomic<bool> recovered{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < 300 && !recovered.load(); ++i) {
        const auto estimate =
            manager.EstimateRange("t.x", table, {100, 5000 + t * 100 + i});
        if (!estimate.ok() || !(*estimate >= 0.0) ||
            *estimate > static_cast<double>(table.tuple_count())) {
          failures.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&]() {
    manager.RecordModifications("t.x", table.tuple_count());
    // Failed rebuilds are absorbed: EnsureFresh keeps returning the stale
    // snapshot, and the staleness persists until a rebuild succeeds.
    for (int i = 0; i < 50; ++i) {
      const auto result = manager.EnsureFreshShared("t.x", table);
      if (!result.ok()) {
        failures.fetch_add(1);
        break;
      }
      if (manager.Health("t.x").health == ColumnHealth::kFresh) {
        recovered.store(true);
        break;
      }
    }
    recovered.store(true);  // release the readers either way
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // The outage was long enough that at least one rebuild failed and was
  // absorbed, and short enough that the column recovered.
  const auto health = manager.Health("t.x");
  EXPECT_GT(health.total_build_failures, 0u);
  EXPECT_EQ(health.health, ColumnHealth::kFresh);
  EXPECT_EQ(health.consecutive_build_failures, 0u);
  EXPECT_GE(manager.rebuild_count(), 2u);
}

TEST(StatsConcurrencyTest, EstimateBatchMultiColumnMatchesPerRequest) {
  // The multi-column batch API answers an interleaved predicate list with
  // exactly the per-request serving-path estimates, in request order,
  // with or without the pool.
  Table table = SmallTable();
  StatisticsManager::Options options;
  options.buckets = 40;
  options.f = 0.25;
  options.threads = 4;
  options.column_backends["ew"] = HistogramBackendId::kEquiWidth;
  StatisticsManager manager(options);
  const std::vector<std::string> columns = {"a", "b", "ew"};
  std::vector<BatchEstimateRequest> requests;
  for (int i = 0; i < 900; ++i) {
    requests.push_back({columns[i % columns.size()],
                        {i * 17 % 40000, i * 17 % 40000 + 300 + i}});
  }
  BatchEstimateResult batch;
  ASSERT_TRUE(
      manager.EstimateBatch(table, requests, &batch, /*use_pool=*/false).ok());
  ASSERT_EQ(batch.estimates.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto single =
        manager.EstimateRange(requests[i].column, table, requests[i].query);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batch.estimates[i], *single) << "request " << i;
  }
  // Pool-sharded: bitwise the same answers.
  BatchEstimateResult pooled;
  ASSERT_TRUE(
      manager.EstimateBatch(table, requests, &pooled, /*use_pool=*/true).ok());
  EXPECT_EQ(pooled.estimates, batch.estimates);
  // Each distinct column built exactly once — the whole batch rode the
  // snapshot cache.
  EXPECT_EQ(manager.rebuild_count(), columns.size());
  // A null result slot is rejected outright.
  EXPECT_FALSE(manager.EstimateBatch(table, requests, nullptr).ok());
  // An empty batch is a clean no-op.
  BatchEstimateResult empty;
  ASSERT_TRUE(manager.EstimateBatch(table, {}, &empty).ok());
  EXPECT_TRUE(empty.estimates.empty());
}

TEST(StatsConcurrencyTest, ConcurrentBatchServingDuringRebuildsAndDrops) {
  // The multi-column batch path under fire: reader threads push interleaved
  // batches through EstimateBatch (pinning several snapshots per call)
  // while writers force rebuilds and drops underneath. Under TSan this
  // proves the batch path's snapshot pinning obeys the same
  // publication-counter protocol as single-query serving.
  Table table = SmallTable();
  StatisticsManager manager(
      {.buckets = 30, .f = 0.3, .staleness_threshold = 0.05, .threads = 2});
  const std::vector<std::string> columns = {"a", "b"};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t]() {
      std::vector<BatchEstimateRequest> requests;
      for (int j = 0; j < 32; ++j) {
        requests.push_back(
            {columns[(t + j) % columns.size()], {100 + j, 30000 + j * 7}});
      }
      BatchEstimateResult result;
      for (int i = 0; i < 60; ++i) {
        const Status status = manager.EstimateBatch(
            table, requests, &result, /*use_pool=*/(i % 2) == 0);
        if (!status.ok() || result.estimates.size() != requests.size()) {
          failures.fetch_add(1);
          continue;
        }
        for (const double estimate : result.estimates) {
          if (!(estimate >= 0.0) ||
              estimate > static_cast<double>(table.tuple_count())) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  threads.emplace_back([&]() {
    for (int i = 0; i < 20; ++i) {
      manager.RecordModifications(columns[i % columns.size()],
                                  table.tuple_count() / 4);
      (void)manager.EnsureFreshShared(columns[i % columns.size()], table);
    }
  });
  threads.emplace_back([&]() {
    for (int i = 0; i < 10; ++i) manager.Drop(columns[i % columns.size()]);
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(StatsConcurrencyTest, EstimateBatchDuplicateColumnsResolveOnce) {
  Table table = SmallTable();
  StatisticsManager manager({.buckets = 40, .f = 0.25, .threads = 1});
  // The same column repeated across the batch: one snapshot resolution
  // and one build serve all of its queries, and every duplicate request
  // with an identical range gets a bitwise-identical answer.
  const auto domain = static_cast<Value>(table.tuple_count() / 50);
  std::vector<BatchEstimateRequest> requests;
  for (int i = 0; i < 4; ++i) {
    requests.push_back({"dup", {0, domain / 2}});
    requests.push_back({"other", {domain / 4, domain}});
    requests.push_back({"dup", {0, domain / 2}});
  }
  BatchEstimateResult result;
  ASSERT_TRUE(manager.EstimateBatch(table, requests, &result).ok());
  ASSERT_EQ(result.estimates.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].column == "dup") {
      EXPECT_EQ(result.estimates[i], result.estimates[0]) << i;
    }
  }
  // Two distinct columns → exactly two builds, duplicates notwithstanding.
  EXPECT_EQ(manager.rebuild_count(), 2u);
  EXPECT_EQ(manager.size(), 2u);
}

TEST(StatsConcurrencyTest, EstimateBatchUnknownColumnMixedWithHealthy) {
  Table table = SmallTable();
  StatisticsManager manager({.buckets = 40,
                             .f = 0.25,
                             .threads = 1,
                             .retry = {.max_attempts = 1},
                             .fallback_on_unbuilt = false});
  ASSERT_TRUE(manager.GetOrBuildShared("healthy", table).ok());

  // Storage goes dark: a never-built column mixed into the batch cannot
  // build, and with the fallback disabled its error must surface as the
  // batch's result — never a fabricated estimate. The healthy column's
  // snapshot is unaffected.
  FaultInjector blackout(FaultSpec{.lost_probability = 1.0, .seed = 7});
  table.set_fault_injector(&blackout);
  const auto domain = static_cast<Value>(table.tuple_count() / 50);
  const std::vector<BatchEstimateRequest> requests = {
      {"healthy", {0, domain}},
      {"never_built", {0, domain}},
      {"healthy", {domain / 2, domain}},
  };
  BatchEstimateResult result;
  const Status status = manager.EstimateBatch(table, requests, &result);
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(manager.Has("never_built"));

  // Healthy-only batches keep serving from the snapshot, blackout or not.
  const std::vector<BatchEstimateRequest> healthy_only = {
      {"healthy", {0, domain}}};
  ASSERT_TRUE(manager.EstimateBatch(table, healthy_only, &result).ok());
  ASSERT_EQ(result.estimates.size(), 1u);
  EXPECT_GE(result.estimates[0], 0.0);

  // Storage recovers: the same mixed batch now builds and answers fully.
  table.set_fault_injector(nullptr);
  ASSERT_TRUE(manager.EstimateBatch(table, requests, &result).ok());
  ASSERT_EQ(result.estimates.size(), requests.size());
  EXPECT_TRUE(manager.Has("never_built"));
}

TEST(StatsConcurrencyTest, EstimateBatchRacingDropsNeverCorruptsAnswers) {
  Table table = SmallTable();
  StatisticsManager manager({.buckets = 30, .f = 0.3, .threads = 2});
  const std::vector<std::string> columns = {"d0", "d1", "d2"};
  for (const auto& c : columns) {
    ASSERT_TRUE(manager.GetOrBuildShared(c, table).ok());
  }
  const auto domain = static_cast<Value>(table.tuple_count() / 50);
  std::vector<BatchEstimateRequest> requests;
  for (const auto& c : columns) {
    requests.push_back({c, {0, domain}});
    requests.push_back({c, {domain / 2, 2 * domain}});
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 40; ++i) {
        BatchEstimateResult result;
        // A Drop racing the batch either rebuilds transparently (first
        // access semantics) or the batch fails cleanly; both are fine,
        // a torn or out-of-range answer is not.
        if (!manager.EstimateBatch(table, requests, &result).ok()) continue;
        if (result.estimates.size() != requests.size()) {
          failures.fetch_add(1);
          continue;
        }
        for (const double estimate : result.estimates) {
          if (!(estimate >= 0.0) ||
              estimate > static_cast<double>(table.tuple_count())) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  threads.emplace_back([&]() {
    for (int i = 0; i < 60; ++i) {
      manager.Drop(columns[i % columns.size()]);
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(StatsConcurrencyTest, SnapshotOutlivesDropAndRebuild) {
  Table table = SmallTable();
  StatisticsManager manager({.buckets = 30, .f = 0.3, .threads = 1});
  auto snapshot = manager.GetOrBuildShared("col", table);
  ASSERT_TRUE(snapshot.ok());
  const std::uint64_t rows = (*snapshot)->row_count;
  manager.RecordModifications("col", table.tuple_count() * 2);
  ASSERT_TRUE(manager.EnsureFreshShared("col", table).ok());  // rebuild
  EXPECT_TRUE(manager.Drop("col"));
  // The old snapshot is still safely readable.
  EXPECT_EQ((*snapshot)->row_count, rows);
}

}  // namespace
}  // namespace equihist
