// Varint boundary tests for the wire::Reader primitives every decoder in
// the tree is built on (stats/wire_format.h): maximal 10-byte encodings,
// continuation-bit overflow past bit 63, truncation at every byte, and
// length prefixes that over-claim the remaining buffer. The fuzz target
// fuzz_wire_reader drives the same properties with mutated inputs; these
// are the pinned deterministic cases.

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "stats/wire_format.h"

namespace equihist::wire {
namespace {

using Bytes = std::vector<std::uint8_t>;

TEST(WireVarintTest, MaximalTenByteEncodingRoundTrips) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  Bytes buf;
  PutVarint(max, &buf);
  ASSERT_EQ(buf.size(), 10u);  // 64 bits / 7 bits per byte, rounded up
  for (std::size_t i = 0; i + 1 < buf.size(); ++i) {
    EXPECT_EQ(buf[i] & 0x80, 0x80) << "byte " << i << " lost continuation";
  }
  EXPECT_EQ(buf.back(), 0x01);  // the top bit of the value, alone

  Reader reader(buf);
  const auto decoded = reader.Varint();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, max);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(WireVarintTest, EveryPowerOfTwoBoundaryRoundTrips) {
  // 2^(7k) - 1 / 2^(7k) straddle every encoding-length boundary.
  for (int shift = 7; shift < 64; shift += 7) {
    for (const std::uint64_t v : {(std::uint64_t{1} << shift) - 1,
                                  std::uint64_t{1} << shift}) {
      Bytes buf;
      PutVarint(v, &buf);
      Reader reader(buf);
      const auto decoded = reader.Varint();
      ASSERT_TRUE(decoded.ok()) << v;
      EXPECT_EQ(*decoded, v);
      EXPECT_EQ(reader.remaining(), 0u) << v;
    }
  }
}

TEST(WireVarintTest, ContinuationBitsPastBit63AreRejected) {
  // Eleven continuation bytes: the value would need bit 70. The reader
  // must reject via its shift guard, not wrap or read on.
  const Bytes overlong(11, 0x80);
  Reader reader(overlong);
  const auto decoded = reader.Varint();
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireVarintTest, TenContinuationBytesOverflow) {
  // Exactly 10 bytes, all with the continuation bit: byte 10 would start
  // at shift 70 > 63, so this cannot encode any uint64.
  const Bytes overlong(10, 0xFF);
  Reader reader(overlong);
  EXPECT_FALSE(reader.Varint().ok());
}

TEST(WireVarintTest, TruncationAtEveryByteIsRejected) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  Bytes buf;
  PutVarint(max, &buf);
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    Reader reader(std::span<const std::uint8_t>(buf.data(), cut));
    const auto decoded = reader.Varint();
    ASSERT_FALSE(decoded.ok()) << "accepted a " << cut << "-byte prefix";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(WireVarintTest, NonMinimalEncodingsStillDecode) {
  // 0 padded with continuation zeros: wasteful but unambiguous; the
  // reader accepts it (decoders canonicalize on re-serialization).
  const Bytes padded{0x80, 0x80, 0x00};
  Reader reader(padded);
  const auto decoded = reader.Varint();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, 0u);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(WireLengthPrefixTest, OverClaimingPrefixIsRejectedUpFront) {
  // Claims 100 elements of 1 byte with 2 bytes remaining.
  Bytes buf;
  PutVarint(100, &buf);
  buf.push_back(0xAA);
  buf.push_back(0xBB);
  Reader reader(buf);
  const auto count = reader.LengthPrefixedCount();
  ASSERT_FALSE(count.ok());
  EXPECT_EQ(count.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireLengthPrefixTest, PerElementSizeTightensTheBound) {
  // 4 elements of 8 bytes need 32; 31 remain -> reject. The same count
  // with per_element 1 fits.
  Bytes buf;
  PutVarint(4, &buf);
  buf.resize(buf.size() + 31, 0);
  {
    Reader reader(buf);
    EXPECT_FALSE(reader.LengthPrefixedCount(8).ok());
  }
  {
    Reader reader(buf);
    const auto count = reader.LengthPrefixedCount(1);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, 4u);
  }
}

TEST(WireLengthPrefixTest, HugeCountCannotOverflowTheAdmissionCheck) {
  // A count near 2^64 times any per-element size must not wrap the
  // multiplication into something that passes; the check divides instead.
  Bytes buf;
  PutVarint(std::numeric_limits<std::uint64_t>::max(), &buf);
  buf.resize(buf.size() + 64, 0);
  Reader reader(buf);
  EXPECT_FALSE(reader.LengthPrefixedCount(8).ok());
}

TEST(WireLengthPrefixTest, ZeroPerElementIsTreatedAsOne) {
  Bytes buf;
  PutVarint(3, &buf);
  buf.resize(buf.size() + 3, 0);
  Reader reader(buf);
  const auto count = reader.LengthPrefixedCount(0);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3u);
}

TEST(WireSignedTest, ZigZagExtremesRoundTrip) {
  for (const std::int64_t v : {std::numeric_limits<std::int64_t>::min(),
                               std::numeric_limits<std::int64_t>::min() + 1,
                               std::int64_t{-1}, std::int64_t{0},
                               std::int64_t{1},
                               std::numeric_limits<std::int64_t>::max()}) {
    Bytes buf;
    PutSigned(v, &buf);
    Reader reader(buf);
    const auto decoded = reader.Signed();
    ASSERT_TRUE(decoded.ok()) << v;
    EXPECT_EQ(*decoded, v);
    EXPECT_EQ(UnZigZag(ZigZag(v)), v);
  }
}

TEST(WireF64Test, TruncatedDoubleIsRejected) {
  Bytes buf;
  PutF64(1.5, &buf);
  ASSERT_EQ(buf.size(), 8u);
  for (std::size_t cut = 0; cut < 8; ++cut) {
    Reader reader(std::span<const std::uint8_t>(buf.data(), cut));
    EXPECT_FALSE(reader.F64().ok()) << cut;
  }
}

TEST(WireReaderTest, PositionAndRemainingStayCoherentAcrossFailures) {
  const Bytes buf{0x80};  // truncated varint
  Reader reader(buf);
  EXPECT_FALSE(reader.Varint().ok());
  // A failed read may consume bytes, but never past the buffer.
  EXPECT_LE(reader.position(), buf.size());
  EXPECT_EQ(reader.position() + reader.remaining(), buf.size());
}

}  // namespace
}  // namespace equihist::wire
