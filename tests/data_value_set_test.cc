#include "data/value_set.h"

#include <vector>

#include <gtest/gtest.h>

#include "data/distribution.h"
#include "data/generator.h"

namespace equihist {
namespace {

TEST(ValueSetTest, SortsUnsortedInput) {
  ValueSet set({5, 1, 3, 2, 4});
  EXPECT_EQ(set.size(), 5u);
  EXPECT_EQ(set.ValueAtRank(0), 1);
  EXPECT_EQ(set.ValueAtRank(4), 5);
  EXPECT_EQ(set.min(), 1);
  EXPECT_EQ(set.max(), 5);
}

TEST(ValueSetTest, FromFrequenciesAvoidsSortAndMatches) {
  FrequencyVector fv({{2, 3}, {7, 2}});
  const ValueSet set = ValueSet::FromFrequencies(fv);
  EXPECT_EQ(set.size(), 5u);
  EXPECT_EQ(set.sorted_values(), (std::vector<Value>{2, 2, 2, 7, 7}));
}

TEST(ValueSetTest, CountLessEqualAndLess) {
  ValueSet set({1, 2, 2, 2, 5, 9});
  EXPECT_EQ(set.CountLessEqual(0), 0u);
  EXPECT_EQ(set.CountLessEqual(1), 1u);
  EXPECT_EQ(set.CountLessEqual(2), 4u);
  EXPECT_EQ(set.CountLessEqual(8), 5u);
  EXPECT_EQ(set.CountLessEqual(9), 6u);
  EXPECT_EQ(set.CountLess(2), 1u);
  EXPECT_EQ(set.CountLess(10), 6u);
}

TEST(ValueSetTest, CountInRangeHalfOpenSemantics) {
  ValueSet set({1, 2, 2, 2, 5, 9});
  // (1, 5] -> {2,2,2,5}
  EXPECT_EQ(set.CountInRange(1, 5), 4u);
  // (2, 2] empty
  EXPECT_EQ(set.CountInRange(2, 2), 0u);
  // reversed range empty
  EXPECT_EQ(set.CountInRange(5, 1), 0u);
  // full cover
  EXPECT_EQ(set.CountInRange(0, 9), 6u);
  // excludes lower endpoint
  EXPECT_EQ(set.CountInRange(2, 9), 2u);
}

TEST(ValueSetTest, DistinctCountWithDuplicates) {
  ValueSet set({4, 4, 4, 4});
  EXPECT_EQ(set.DistinctCount(), 1u);
  ValueSet set2({1, 2, 3});
  EXPECT_EQ(set2.DistinctCount(), 3u);
  ValueSet set3({1, 1, 2, 3, 3, 3});
  EXPECT_EQ(set3.DistinctCount(), 3u);
}

TEST(ValueSetTest, DistinctCountIsCachedButConsistent) {
  ValueSet set({1, 1, 2});
  EXPECT_EQ(set.DistinctCount(), 2u);
  EXPECT_EQ(set.DistinctCount(), 2u);
}

TEST(ValueSetTest, MatchesFrequencyVectorDistinct) {
  const auto fv = MakeZipf({.n = 20000, .domain_size = 300, .skew = 1.0});
  ASSERT_TRUE(fv.ok());
  const ValueSet set = ValueSet::FromFrequencies(*fv);
  EXPECT_EQ(set.DistinctCount(), fv->distinct_count());
  EXPECT_EQ(set.size(), fv->total_count());
}

TEST(ExpandTest, SortedExpansionMatchesFrequencies) {
  FrequencyVector fv({{1, 2}, {3, 1}});
  EXPECT_EQ(ExpandSorted(fv), (std::vector<Value>{1, 1, 3}));
}

TEST(ExpandTest, ShuffledExpansionIsPermutation) {
  const auto fv = MakeZipf({.n = 5000, .domain_size = 100, .skew = 1.0});
  ASSERT_TRUE(fv.ok());
  std::vector<Value> sorted = ExpandSorted(*fv);
  std::vector<Value> shuffled = ExpandShuffled(*fv, 77);
  EXPECT_NE(sorted, shuffled);  // astronomically unlikely to be equal
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(sorted, shuffled);
}

TEST(ExpandTest, ShuffleDeterministicInSeed) {
  const auto fv = MakeZipf({.n = 1000, .domain_size = 50, .skew = 0.5});
  ASSERT_TRUE(fv.ok());
  EXPECT_EQ(ExpandShuffled(*fv, 1), ExpandShuffled(*fv, 1));
  EXPECT_NE(ExpandShuffled(*fv, 1), ExpandShuffled(*fv, 2));
}

}  // namespace
}  // namespace equihist
