#include "common/string_util.h"

#include <gtest/gtest.h>

namespace equihist {
namespace {

TEST(FormatWithThousandsTest, GroupsDigits) {
  EXPECT_EQ(FormatWithThousands(0), "0");
  EXPECT_EQ(FormatWithThousands(999), "999");
  EXPECT_EQ(FormatWithThousands(1000), "1,000");
  EXPECT_EQ(FormatWithThousands(1234567), "1,234,567");
  EXPECT_EQ(FormatWithThousands(10000000), "10,000,000");
}

TEST(FormatFixedTest, RoundsToDigits) {
  EXPECT_EQ(FormatFixed(0.12345, 3), "0.123");
  EXPECT_EQ(FormatFixed(2.0, 1), "2.0");
  EXPECT_EQ(FormatFixed(-1.25, 1), "-1.2");  // banker-ish via printf
}

TEST(FormatCountTest, UsesSuffixes) {
  EXPECT_EQ(FormatCount(512), "512");
  EXPECT_EQ(FormatCount(1500), "1.50K");
  EXPECT_EQ(FormatCount(2500000), "2.50M");
  EXPECT_EQ(FormatCount(3000000000.0), "3.00G");
}

TEST(FormatPercentTest, ScalesFraction) {
  EXPECT_EQ(FormatPercent(0.125, 1), "12.5%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

TEST(RenderTableTest, AlignsColumns) {
  const std::string table =
      RenderTable({"name", "count"}, {{"a", "1"}, {"long-name", "22"}});
  // Header, separator, two rows.
  EXPECT_NE(table.find("| name"), std::string::npos);
  EXPECT_NE(table.find("| long-name"), std::string::npos);
  const auto lines = [&] {
    int count = 0;
    for (char c : table) {
      if (c == '\n') ++count;
    }
    return count;
  }();
  EXPECT_EQ(lines, 4);
}

TEST(RenderTableTest, EmptyRowsStillRendersHeader) {
  const std::string table = RenderTable({"x"}, {});
  EXPECT_NE(table.find("| x"), std::string::npos);
}

}  // namespace
}  // namespace equihist
