#include "data/workload.h"

#include <gtest/gtest.h>

#include "data/distribution.h"
#include "data/value_set.h"

namespace equihist {
namespace {

ValueSet MakeTestData() {
  const auto fv = MakeAllDistinct(1000);
  return ValueSet::FromFrequencies(*fv);
}

TEST(RangeWorkloadTest, UniformRangesAreWellFormed) {
  ValueSet data = MakeTestData();
  RangeWorkloadGenerator gen(&data, 42);
  const auto queries = gen.UniformRanges(500);
  EXPECT_EQ(queries.size(), 500u);
  for (const RangeQuery& q : queries) {
    EXPECT_LT(q.lo, q.hi);
    EXPECT_GE(q.lo, data.min() - 1);
    EXPECT_LE(q.hi, data.max() + 1);
  }
}

TEST(RangeWorkloadTest, UniformRangesDeterministicInSeed) {
  ValueSet data = MakeTestData();
  RangeWorkloadGenerator a(&data, 7);
  RangeWorkloadGenerator b(&data, 7);
  EXPECT_EQ(a.UniformRanges(50), b.UniformRanges(50));
}

TEST(RangeWorkloadTest, FixedSelectivityIsExactOnDistinctData) {
  ValueSet data = MakeTestData();
  RangeWorkloadGenerator gen(&data, 11);
  const auto queries = gen.FixedSelectivityRanges(200, 37);
  ASSERT_TRUE(queries.ok());
  for (const RangeQuery& q : *queries) {
    EXPECT_EQ(data.CountInRange(q.lo, q.hi), 37u);
  }
}

TEST(RangeWorkloadTest, FixedSelectivityFullTable) {
  ValueSet data = MakeTestData();
  RangeWorkloadGenerator gen(&data, 11);
  const auto queries = gen.FixedSelectivityRanges(5, 1000);
  ASSERT_TRUE(queries.ok());
  for (const RangeQuery& q : *queries) {
    EXPECT_EQ(data.CountInRange(q.lo, q.hi), 1000u);
  }
}

TEST(RangeWorkloadTest, FixedSelectivityValidatesTarget) {
  ValueSet data = MakeTestData();
  RangeWorkloadGenerator gen(&data, 3);
  EXPECT_FALSE(gen.FixedSelectivityRanges(1, 0).ok());
  EXPECT_FALSE(gen.FixedSelectivityRanges(1, 1001).ok());
}

TEST(RangeWorkloadTest, PrefixRangesStartBelowDomain) {
  ValueSet data = MakeTestData();
  RangeWorkloadGenerator gen(&data, 13);
  const auto queries = gen.PrefixRanges(100);
  for (const RangeQuery& q : queries) {
    EXPECT_EQ(q.lo, data.min() - 1);
    EXPECT_GE(q.hi, data.min());
    EXPECT_LE(q.hi, data.max());
  }
}

TEST(RangeWorkloadTest, WorksWithDuplicatedData) {
  const auto fv = MakeUniformDup(1000, 10);  // 10 values x 100
  ValueSet data = ValueSet::FromFrequencies(*fv);
  RangeWorkloadGenerator gen(&data, 5);
  const auto queries = gen.FixedSelectivityRanges(50, 100);
  ASSERT_TRUE(queries.ok());
  for (const RangeQuery& q : *queries) {
    // On duplicated data rank windows can only be approximated by value
    // boundaries; the count is a multiple of the multiplicity and >= target.
    EXPECT_GE(data.CountInRange(q.lo, q.hi), 100u);
    EXPECT_EQ(data.CountInRange(q.lo, q.hi) % 100, 0u);
  }
}

}  // namespace
}  // namespace equihist
