#include "core/compressed_histogram.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/distribution.h"
#include "data/value_set.h"
#include "sampling/row_sampler.h"

namespace equihist {
namespace {

// A column with two heavy hitters and a uniform tail.
ValueSet SkewedData() {
  FrequencyVector fv({{5, 4000}, {10, 1}, {11, 1}, {12, 1}, {13, 1},
                      {20, 3000}, {30, 1}, {31, 1}, {32, 1}, {33, 1},
                      {40, 992}});
  return ValueSet::FromFrequencies(fv);
}

TEST(CompressedHistogramTest, PerfectPullsOutHeavyHitters) {
  const ValueSet data = SkewedData();  // n = 8000
  const auto ch = CompressedHistogram::BuildPerfect(data, 10);
  ASSERT_TRUE(ch.ok());
  // Ideal bucket = 800: values 5 (4000), 20 (3000) and 40 (990) qualify.
  ASSERT_EQ(ch->singletons().size(), 3u);
  EXPECT_EQ(ch->singletons()[0].value, 5);
  EXPECT_EQ(ch->singletons()[0].count, 4000u);
  EXPECT_EQ(ch->singletons()[1].value, 20);
  EXPECT_EQ(ch->singletons()[1].count, 3000u);
  EXPECT_EQ(ch->singletons()[2].value, 40);
  EXPECT_EQ(ch->singletons()[2].count, 992u);
  ASSERT_NE(ch->equi_height_part(), nullptr);
  EXPECT_EQ(ch->equi_height_part()->bucket_count(), 7u);
  EXPECT_EQ(ch->equi_height_part()->total(), 8u);  // the 8 tail values
}

TEST(CompressedHistogramTest, NoHeavyHittersMeansNoSingletons) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(1000));
  const auto ch = CompressedHistogram::BuildPerfect(data, 10);
  ASSERT_TRUE(ch.ok());
  EXPECT_TRUE(ch->singletons().empty());
  ASSERT_NE(ch->equi_height_part(), nullptr);
  EXPECT_EQ(ch->equi_height_part()->bucket_count(), 10u);
}

TEST(CompressedHistogramTest, AllDataInOneValue) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeConstant(1000, 9));
  const auto ch = CompressedHistogram::BuildPerfect(data, 5);
  ASSERT_TRUE(ch.ok());
  ASSERT_EQ(ch->singletons().size(), 1u);
  EXPECT_EQ(ch->singletons()[0].count, 1000u);
  EXPECT_EQ(ch->equi_height_part(), nullptr);
}

TEST(CompressedHistogramTest, RangeEstimationCountsSingletonsExactly) {
  const ValueSet data = SkewedData();
  const auto ch = CompressedHistogram::BuildPerfect(data, 10);
  ASSERT_TRUE(ch.ok());
  // (4, 5] hits exactly the value-5 singleton.
  EXPECT_NEAR(ch->EstimateRangeCount({4, 5}), 4000.0, 1e-9);
  // (5, 20]: value-20 singleton plus tail values 10..13.
  EXPECT_NEAR(ch->EstimateRangeCount({5, 20}), 3004.0, 1.0);
  // Full domain.
  EXPECT_NEAR(ch->EstimateRangeCount({0, 40}), 8000.0, 1.0);
}

TEST(CompressedHistogramTest, FromSampleFindsHeavyHitters) {
  const ValueSet data = SkewedData();
  Rng rng(3);
  auto sample =
      SampleRowsWithoutReplacement(data.sorted_values(), 800, rng);
  ASSERT_TRUE(sample.ok());
  std::sort(sample->begin(), sample->end());
  const auto ch = CompressedHistogram::BuildFromSample(*sample, 10, 8000);
  ASSERT_TRUE(ch.ok());
  // The two dominant values must be detected from a 10% sample.
  const auto& singles = ch->singletons();
  const bool found5 = std::any_of(singles.begin(), singles.end(),
                                  [](const auto& s) { return s.value == 5; });
  const bool found20 = std::any_of(singles.begin(), singles.end(),
                                   [](const auto& s) { return s.value == 20; });
  EXPECT_TRUE(found5);
  EXPECT_TRUE(found20);
  // Scaled counts should be near the truth.
  for (const auto& s : singles) {
    if (s.value == 5) {
      EXPECT_NEAR(static_cast<double>(s.count), 4000.0, 600.0);
    }
    if (s.value == 20) {
      EXPECT_NEAR(static_cast<double>(s.count), 3000.0, 600.0);
    }
  }
}

TEST(CompressedHistogramTest, CompareReportsAgreement) {
  const ValueSet data = SkewedData();
  Rng rng(5);
  auto sample =
      SampleRowsWithoutReplacement(data.sorted_values(), 1600, rng);
  ASSERT_TRUE(sample.ok());
  std::sort(sample->begin(), sample->end());
  const auto perfect = CompressedHistogram::BuildPerfect(data, 10);
  const auto approx = CompressedHistogram::BuildFromSample(*sample, 10, 8000);
  ASSERT_TRUE(perfect.ok());
  ASSERT_TRUE(approx.ok());
  const auto report = CompareCompressed(*perfect, *approx, data);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->perfect_singletons, 3u);
  EXPECT_GE(report->matched_singletons, 2u);
  EXPECT_LT(report->max_singleton_count_rel_error, 0.3);
}

TEST(CompressedHistogramTest, Validation) {
  const ValueSet data = SkewedData();
  EXPECT_FALSE(CompressedHistogram::BuildPerfect(data, 0).ok());
  EXPECT_FALSE(CompressedHistogram::BuildPerfect(ValueSet(), 5).ok());
  EXPECT_FALSE(
      CompressedHistogram::BuildFromSample(std::vector<Value>{}, 5, 100).ok());
  EXPECT_FALSE(
      CompressedHistogram::BuildFromSample(std::vector<Value>{1}, 5, 0).ok());
}

TEST(CompressedHistogramTest, RangeEstimationIsStableAtHighBucketCounts) {
  // Kahan-summation regression at a high bucket count: thousands of
  // singletons with multiplicities of very different magnitudes summed
  // over a wide range. Every count and every prefix total is exactly
  // representable in a double here, so compensated accumulation must
  // recover the truth exactly — naive left-to-right accumulation of
  // mixed-magnitude terms is what the KahanSum in EstimateRangeCount
  // protects against.
  std::vector<Value> data;
  std::uint64_t heavy_total = 0;
  std::uint64_t light_total = 0;
  constexpr int kHeavy = 1500;
  for (int i = 0; i < kHeavy; ++i) {
    // Heavy values (each far above the n/k threshold) on the positive
    // axis, light residual values on the negative axis, so range queries
    // over the positive half are answered purely from singleton sums and
    // their exact integer truths are known.
    data.insert(data.end(), 100000, static_cast<Value>(i * 10));
    heavy_total += 100000;
    data.insert(data.end(), 3, static_cast<Value>(-(i * 10) - 5));
    light_total += 3;
  }
  const ValueSet population(std::move(data));
  const auto ch = CompressedHistogram::BuildPerfect(population, 5000);
  ASSERT_TRUE(ch.ok());
  ASSERT_GE(ch->singletons().size(), 1000u);  // genuinely singleton-heavy
  // Whole domain: every singleton plus the fully covered equi part, all
  // exact integers — any deviation is accumulation error.
  EXPECT_DOUBLE_EQ(
      ch->EstimateRangeCount({-100000, static_cast<Value>(kHeavy * 10)}),
      static_cast<double>(heavy_total + light_total));
  // A wide sub-range over 756 singletons; the equi part lies entirely
  // below the range and contributes exactly zero.
  std::uint64_t sub = 0;
  for (int i = 0; i < kHeavy; ++i) {
    const Value v = static_cast<Value>(i * 10);
    if (-1 < v && v <= 7550) sub += 100000;
  }
  EXPECT_DOUBLE_EQ(ch->EstimateRangeCount({-1, 7550}),
                   static_cast<double>(sub));
}

TEST(CompressedHistogramTest, ToStringMentionsSingletons) {
  const ValueSet data = SkewedData();
  const auto ch = CompressedHistogram::BuildPerfect(data, 10);
  ASSERT_TRUE(ch.ok());
  const std::string text = ch->ToString();
  EXPECT_NE(text.find("singletons=3"), std::string::npos);
}

}  // namespace
}  // namespace equihist
