#include "common/rng.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/math.h"

namespace equihist {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  // xoshiro with all-zero state would be degenerate; splitmix seeding must
  // avoid it.
  std::uint64_t x = rng.Next();
  std::uint64_t y = rng.Next();
  EXPECT_FALSE(x == 0 && y == 0);
  EXPECT_NE(x, y);
}

TEST(RngTest, NextBoundedStaysInBound) {
  Rng rng(99);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || (v == -3);
    saw_hi = saw_hi || (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextInRangeSingleton) {
  Rng rng(8);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.NextInRange(42, 42), 42);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double min_seen = 1.0;
  double max_seen = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    min_seen = std::min(min_seen, x);
    max_seen = std::max(max_seen, x);
  }
  EXPECT_LT(min_seen, 0.01);
  EXPECT_GT(max_seen, 0.99);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(RngTest, BernoulliRateRoughlyCorrect) {
  Rng rng(17);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BoundedUniformityChiSquare) {
  // 16 cells, 64k draws: chi-square should be below the 0.999 critical
  // value for 15 dof with overwhelming probability under uniformity.
  Rng rng(31);
  constexpr std::uint64_t kCells = 16;
  constexpr std::uint64_t kDraws = 1 << 16;
  std::vector<std::uint64_t> observed(kCells, 0);
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    ++observed[rng.NextBounded(kCells)];
  }
  std::vector<double> expected(kCells,
                               static_cast<double>(kDraws) / kCells);
  const double stat = ChiSquareStatistic(observed, expected);
  const double critical = ChiSquareCriticalValue(kCells - 1, 0.001);
  EXPECT_LT(stat, critical);
}

TEST(RngTest, WorksWithStdShuffleRequirements) {
  // UniformRandomBitGenerator interface sanity.
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~0ULL);
  Rng rng(3);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace equihist
