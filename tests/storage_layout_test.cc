#include "storage/layout.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "data/distribution.h"
#include "data/generator.h"

namespace equihist {
namespace {

FrequencyVector TestFrequencies() {
  // 40 distinct values, 50 duplicates each.
  return MakeUniformDup(2000, 40).value();
}

// Counts adjacent pairs with equal values: a crude clustering measure.
std::size_t AdjacentEqualPairs(const std::vector<Value>& values) {
  std::size_t pairs = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] == values[i - 1]) ++pairs;
  }
  return pairs;
}

TEST(LayoutTest, SortedLayoutIsSorted) {
  const auto values =
      ApplyLayout(TestFrequencies(), {.kind = LayoutKind::kSorted});
  ASSERT_TRUE(values.ok());
  EXPECT_TRUE(std::is_sorted(values->begin(), values->end()));
}

TEST(LayoutTest, AllLayoutsPreserveTheMultiset) {
  const FrequencyVector freq = TestFrequencies();
  const std::vector<Value> reference = ExpandSorted(freq);
  for (LayoutKind kind : {LayoutKind::kRandom, LayoutKind::kSorted,
                          LayoutKind::kPartiallyClustered}) {
    auto values = ApplyLayout(freq, {.kind = kind, .seed = 3});
    ASSERT_TRUE(values.ok());
    std::sort(values->begin(), values->end());
    EXPECT_EQ(*values, reference) << LayoutKindToString(kind);
  }
}

TEST(LayoutTest, RandomLayoutHasLittleClustering) {
  const auto values =
      ApplyLayout(TestFrequencies(), {.kind = LayoutKind::kRandom, .seed = 3});
  ASSERT_TRUE(values.ok());
  // Expected adjacent-equal pairs for random order: (n-1) * (c-1)/(n-1) ~ 49
  // for multiplicity 50 over 2000 tuples. Allow generous slack.
  EXPECT_LT(AdjacentEqualPairs(*values), 200u);
}

TEST(LayoutTest, PartiallyClusteredSitsBetweenRandomAndSorted) {
  const FrequencyVector freq = TestFrequencies();
  const auto random =
      ApplyLayout(freq, {.kind = LayoutKind::kRandom, .seed = 3});
  const auto partial = ApplyLayout(
      freq, {.kind = LayoutKind::kPartiallyClustered,
             .clustered_fraction = 0.2, .seed = 3});
  const auto sorted = ApplyLayout(freq, {.kind = LayoutKind::kSorted});
  ASSERT_TRUE(random.ok());
  ASSERT_TRUE(partial.ok());
  ASSERT_TRUE(sorted.ok());
  const std::size_t random_pairs = AdjacentEqualPairs(*random);
  const std::size_t partial_pairs = AdjacentEqualPairs(*partial);
  const std::size_t sorted_pairs = AdjacentEqualPairs(*sorted);
  EXPECT_GT(partial_pairs, random_pairs);
  EXPECT_LT(partial_pairs, sorted_pairs);
  // 20% of each value's 50 duplicates (10 tuples) co-located contributes
  // ~9 adjacent pairs per value: ~360 for 40 values, plus random noise.
  EXPECT_GT(partial_pairs, 300u);
}

TEST(LayoutTest, ClusteredFractionOneIsFullyClusteredPerValue) {
  const auto values = ApplyLayout(
      TestFrequencies(), {.kind = LayoutKind::kPartiallyClustered,
                          .clustered_fraction = 1.0, .seed = 5});
  ASSERT_TRUE(values.ok());
  // Every value's duplicates are contiguous: 49 adjacent pairs per value.
  EXPECT_EQ(AdjacentEqualPairs(*values), 40u * 49u);
}

TEST(LayoutTest, ClusteredFractionZeroEqualsRandomBehaviour) {
  const auto values = ApplyLayout(
      TestFrequencies(), {.kind = LayoutKind::kPartiallyClustered,
                          .clustered_fraction = 0.0, .seed = 5});
  ASSERT_TRUE(values.ok());
  EXPECT_LT(AdjacentEqualPairs(*values), 200u);
}

TEST(LayoutTest, DeterministicInSeed) {
  const FrequencyVector freq = TestFrequencies();
  const LayoutSpec spec{.kind = LayoutKind::kPartiallyClustered,
                        .clustered_fraction = 0.2, .seed = 9};
  EXPECT_EQ(*ApplyLayout(freq, spec), *ApplyLayout(freq, spec));
}

TEST(LayoutTest, RejectsBadArguments) {
  EXPECT_FALSE(ApplyLayout(FrequencyVector(), {}).ok());
  EXPECT_FALSE(ApplyLayout(TestFrequencies(),
                           {.kind = LayoutKind::kPartiallyClustered,
                            .clustered_fraction = 1.5})
                   .ok());
  EXPECT_FALSE(ApplyLayout(TestFrequencies(),
                           {.kind = LayoutKind::kPartiallyClustered,
                            .clustered_fraction = -0.1})
                   .ok());
}

TEST(LayoutTest, KindNames) {
  EXPECT_EQ(LayoutKindToString(LayoutKind::kRandom), "random");
  EXPECT_EQ(LayoutKindToString(LayoutKind::kSorted), "sorted");
  EXPECT_EQ(LayoutKindToString(LayoutKind::kPartiallyClustered),
            "partially-clustered");
}

}  // namespace
}  // namespace equihist
