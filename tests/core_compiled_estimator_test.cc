#include "core/compiled_estimator.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/histogram.h"
#include "core/histogram_builder.h"
#include "core/range_estimator.h"
#include "data/distribution.h"
#include "data/value_set.h"
#include "data/workload.h"

namespace equihist {
namespace {

constexpr Value kValueMin = std::numeric_limits<Value>::min();
constexpr Value kValueMax = std::numeric_limits<Value>::max();

// The documented numerical contract: compiled estimates agree with the
// reference loop within a handful of ulps of the largest bucket count.
double Tolerance(const Histogram& histogram) {
  std::uint64_t max_count = 0;
  for (const std::uint64_t c : histogram.counts()) {
    max_count = std::max(max_count, c);
  }
  return 1e-10 * (1.0 + static_cast<double>(max_count));
}

// Asserts the compiled estimator matches the reference on `query`.
void ExpectAgreement(const Histogram& histogram,
                     const CompiledEstimator& compiled,
                     const RangeQuery& query) {
  const double reference = EstimateRangeCount(histogram, query);
  const double fast = compiled.EstimateRangeCount(query);
  ASSERT_NEAR(fast, reference, Tolerance(histogram))
      << "query (" << query.lo << ", " << query.hi << "] over k="
      << histogram.bucket_count() << " fences [" << histogram.lower_fence()
      << ", " << histogram.upper_fence() << "]";
}

// A random histogram with optional duplicated-separator runs: random
// non-decreasing separators (repetition probability `dup_prob`) between
// random fences, random counts.
Histogram RandomHistogram(Rng& rng, std::uint64_t k, Value lower, Value upper,
                          double dup_prob) {
  std::vector<Value> separators;
  separators.reserve(k - 1);
  Value prev = lower;
  for (std::uint64_t j = 0; j + 1 < k; ++j) {
    if (!separators.empty() && rng.NextDouble() < dup_prob) {
      separators.push_back(prev);  // extend a duplicated run
      continue;
    }
    // Keep separators strictly inside the fences so buckets of genuine
    // width exist alongside the spikes.
    const Value lo = prev;
    const Value hi = upper - 1;
    separators.push_back(lo >= hi ? lo : rng.NextInRange(lo, hi));
    prev = separators.back();
  }
  std::vector<std::uint64_t> counts;
  counts.reserve(k);
  for (std::uint64_t j = 0; j < k; ++j) {
    counts.push_back(static_cast<std::uint64_t>(rng.NextInRange(0, 5000)));
  }
  if (std::all_of(counts.begin(), counts.end(),
                  [](std::uint64_t c) { return c == 0; })) {
    counts[0] = 1;  // keep the histogram non-degenerate
  }
  return Histogram::Create(std::move(separators), std::move(counts), lower,
                           upper)
      .value();
}

// A query generator that mixes in-domain, boundary-aligned, out-of-domain,
// empty and reversed ranges.
RangeQuery RandomQuery(Rng& rng, const Histogram& histogram) {
  const Value lf = histogram.lower_fence();
  const Value uf = histogram.upper_fence();
  switch (rng.NextInRange(0, 5)) {
    case 0: {  // separator-aligned: exact agreement expected
      const auto& seps = histogram.separators();
      if (!seps.empty()) {
        const Value a = seps[static_cast<std::size_t>(
            rng.NextInRange(0, static_cast<std::int64_t>(seps.size()) - 1))];
        const Value b = seps[static_cast<std::size_t>(
            rng.NextInRange(0, static_cast<std::int64_t>(seps.size()) - 1))];
        return {std::min(a, b), std::max(a, b)};
      }
      return {lf, uf};
    }
    case 1:  // wide, overshooting both fences
      return {lf == kValueMin ? kValueMin : lf - 1,
              uf == kValueMax ? kValueMax : uf + 1};
    case 2: {  // empty / reversed
      const Value v = rng.NextInRange(lf, uf);
      return rng.NextDouble() < 0.5
                 ? RangeQuery{v, v}
                 : RangeQuery{std::max(v, lf + 1), std::max(v, lf + 1) - 1};
    }
    case 3: {  // entirely out of domain
      return rng.NextDouble() < 0.5
                 ? RangeQuery{uf, uf == kValueMax ? kValueMax : uf + 100}
                 : RangeQuery{lf == kValueMin ? kValueMin : lf - 100, lf};
    }
    default: {  // general in-domain range
      const Value a = rng.NextInRange(lf, uf);
      const Value b = rng.NextInRange(lf, uf);
      return {std::min(a, b), std::max(a, b)};
    }
  }
}

TEST(CompiledEstimatorTest, DifferentialAgainstReferenceOnRandomHistograms) {
  Rng rng(20260806);
  int cases = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const std::uint64_t k =
        static_cast<std::uint64_t>(rng.NextInRange(1, 300));
    const Value lower = rng.NextInRange(-1000000, 999999);
    const Value upper = rng.NextInRange(lower + 1, 1000000);
    const double dup_prob = (trial % 3 == 0) ? 0.4 : 0.0;
    const Histogram histogram = RandomHistogram(rng, k, lower, upper, dup_prob);
    const CompiledEstimator compiled(histogram);
    ASSERT_EQ(compiled.bucket_count(), histogram.bucket_count());
    ASSERT_DOUBLE_EQ(compiled.total(),
                     static_cast<double>(histogram.total()));
    for (int q = 0; q < 80; ++q) {
      ExpectAgreement(histogram, compiled, RandomQuery(rng, histogram));
      ++cases;
    }
  }
  // Thousands of randomized cases, per the differential-test contract.
  EXPECT_GE(cases, 4000);
}

TEST(CompiledEstimatorTest, DifferentialWithExtremeFences) {
  // Buckets spanning more than half the int64 domain: interpolation must
  // not overflow (this is what ValueDistance exists for).
  Rng rng(7);
  const Histogram histogram =
      RandomHistogram(rng, 17, kValueMin, kValueMax, 0.25);
  const CompiledEstimator compiled(histogram);
  ExpectAgreement(histogram, compiled, {kValueMin, kValueMax});
  ExpectAgreement(histogram, compiled, {kValueMin, 0});
  ExpectAgreement(histogram, compiled, {0, kValueMax});
  ExpectAgreement(histogram, compiled, {kValueMin, kValueMin});
  ExpectAgreement(histogram, compiled, {kValueMax, kValueMax});
  for (int q = 0; q < 500; ++q) {
    ExpectAgreement(histogram, compiled, RandomQuery(rng, histogram));
  }
}

TEST(CompiledEstimatorTest, DifferentialOnBuiltHistograms) {
  // Histograms produced by the real builder over skewed data, where heavy
  // values become genuine duplicated-separator runs.
  Rng rng(99);
  for (const double skew : {0.0, 1.0, 2.0}) {
    const auto freqs = MakeZipf({.n = 20000,
                                 .domain_size = 500,
                                 .skew = skew,
                                 .seed = 5});
    ASSERT_TRUE(freqs.ok());
    const ValueSet data = ValueSet::FromFrequencies(*freqs);
    const Histogram histogram = BuildPerfectHistogram(data, 50).value();
    const CompiledEstimator compiled(histogram);
    for (int q = 0; q < 400; ++q) {
      ExpectAgreement(histogram, compiled, RandomQuery(rng, histogram));
    }
  }
}

TEST(CompiledEstimatorTest, ExactOnSeparatorAlignedQueries) {
  // Aligned queries touch no partial bucket, so agreement is bit-for-bit.
  const auto h =
      Histogram::Create({100, 200, 300}, {10, 20, 30, 40}, 0, 400).value();
  const CompiledEstimator compiled(h);
  for (const Value lo : {0, 100, 200, 300}) {
    for (const Value hi : {0, 100, 200, 300, 400}) {
      EXPECT_EQ(compiled.EstimateRangeCount({lo, hi}),
                EstimateRangeCount(h, {lo, hi}))
          << lo << " " << hi;
    }
  }
}

TEST(CompiledEstimatorTest, SpikeSemanticsMatchReferenceExactly) {
  // The reference test's spike fixture: bucket (5,5] holds a 400-tuple
  // spike at value 5 (Section 5 duplicated-separator representation).
  const auto h =
      Histogram::Create({5, 5, 10}, {100, 400, 100, 100}, 0, 20).value();
  const CompiledEstimator compiled(h);
  EXPECT_DOUBLE_EQ(compiled.EstimateRangeCount({4, 5}),
                   100.0 / 5.0 * 1.0 + 400.0);
  EXPECT_DOUBLE_EQ(compiled.EstimateRangeCount({5, 20}), 200.0);
  EXPECT_DOUBLE_EQ(compiled.EstimateRangeCount({0, 20}), 700.0);
  EXPECT_DOUBLE_EQ(compiled.SpikeMassAt(5), 400.0);
  EXPECT_DOUBLE_EQ(compiled.SpikeMassAt(10), 0.0);
  EXPECT_DOUBLE_EQ(compiled.SpikeMassAt(4), 0.0);
}

TEST(CompiledEstimatorTest, SpikeMassOnLeadingRun) {
  // A duplicated run at the very first separator, and a triple run: the
  // spike buckets are every zero-width bucket of the run.
  const auto h =
      Histogram::Create({1, 1, 7, 7, 7}, {50, 60, 10, 70, 80, 5}, 1, 9)
          .value();
  const CompiledEstimator compiled(h);
  // Bucket 0 = (1,1] zero-width (lower fence == separator), bucket 1 =
  // (1,1] zero-width: the run at value 1 pins 50 + 60.
  EXPECT_DOUBLE_EQ(compiled.SpikeMassAt(1), 110.0);
  EXPECT_DOUBLE_EQ(compiled.SpikeMassAt(7), 150.0);  // buckets (7,7] twice
  EXPECT_DOUBLE_EQ(compiled.SpikeMassAt(9), 0.0);
}

TEST(CompiledEstimatorTest, BucketIndexMatchesHistogram) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t k =
        static_cast<std::uint64_t>(rng.NextInRange(1, 60));
    const Histogram histogram = RandomHistogram(rng, k, -500, 500, 0.3);
    const CompiledEstimator compiled(histogram);
    for (Value v = histogram.lower_fence();
         v <= histogram.upper_fence(); ++v) {
      ASSERT_EQ(compiled.BucketIndexForValue(v),
                histogram.BucketIndexForValue(v))
          << "value " << v << " trial " << trial;
    }
  }
}

TEST(CompiledEstimatorTest, CountAtMostIsAMonotoneCdf) {
  Rng rng(55);
  const Histogram histogram = RandomHistogram(rng, 40, 0, 10000, 0.2);
  const CompiledEstimator compiled(histogram);
  EXPECT_DOUBLE_EQ(compiled.EstimateCountAtMost(histogram.lower_fence()), 0.0);
  EXPECT_DOUBLE_EQ(compiled.EstimateCountAtMost(histogram.upper_fence()),
                   static_cast<double>(histogram.total()));
  EXPECT_DOUBLE_EQ(compiled.EstimateCountAtMost(kValueMax),
                   static_cast<double>(histogram.total()));
  EXPECT_DOUBLE_EQ(compiled.EstimateCountAtMost(kValueMin), 0.0);
  double prev = 0.0;
  for (Value x = 0; x <= 10000; x += 13) {
    const double f = compiled.EstimateCountAtMost(x);
    EXPECT_GE(f, prev) << "CDF must be monotone at x=" << x;
    prev = f;
  }
}

TEST(CompiledEstimatorTest, DegenerateSingleBucketAndPointDomain) {
  // k = 1: no separators at all.
  const auto single = Histogram::Create({}, {42}, 0, 100).value();
  const CompiledEstimator one(single);
  EXPECT_DOUBLE_EQ(one.EstimateRangeCount({0, 100}), 42.0);
  EXPECT_DOUBLE_EQ(one.EstimateRangeCount({0, 50}), 21.0);
  EXPECT_DOUBLE_EQ(one.EstimateRangeCount({200, 300}), 0.0);
  EXPECT_EQ(one.BucketIndexForValue(50), single.BucketIndexForValue(50));

  // lower fence == upper fence: the whole domain is one point.
  const auto point = Histogram::Create({}, {7}, 5, 5).value();
  const CompiledEstimator pt(point);
  EXPECT_DOUBLE_EQ(pt.EstimateRangeCount({4, 5}),
                   EstimateRangeCount(point, {4, 5}));
  EXPECT_DOUBLE_EQ(pt.EstimateRangeCount({5, 6}),
                   EstimateRangeCount(point, {5, 6}));
  EXPECT_DOUBLE_EQ(pt.EstimateRangeCount({0, 10}),
                   EstimateRangeCount(point, {0, 10}));
}

TEST(CompiledEstimatorTest, SelectivityNormalizes) {
  const auto h =
      Histogram::Create({100, 200, 300}, {10, 20, 30, 40}, 0, 400).value();
  const CompiledEstimator compiled(h);
  EXPECT_DOUBLE_EQ(compiled.EstimateRangeSelectivity({0, 400}), 1.0);
  EXPECT_DOUBLE_EQ(compiled.EstimateRangeSelectivity({0, 100}), 0.1);
  EXPECT_DOUBLE_EQ(compiled.EstimateRangeSelectivity({500, 600}), 0.0);
}

TEST(CompiledEstimatorTest, BatchMatchesSequentialBitwise) {
  Rng rng(777);
  const Histogram histogram = RandomHistogram(rng, 200, -100000, 100000, 0.1);
  const CompiledEstimator compiled(histogram);
  std::vector<RangeQuery> queries;
  queries.reserve(5000);
  for (int q = 0; q < 5000; ++q) {
    queries.push_back(RandomQuery(rng, histogram));
  }
  std::vector<double> expected(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expected[i] = compiled.EstimateRangeCount(queries[i]);
  }
  // Null pool (sequential), then pools of 2 and 8 threads: all bitwise
  // identical, since the batch path only shards independent queries.
  std::vector<double> out(queries.size(), -1.0);
  compiled.EstimateRangeCounts(queries, out, nullptr);
  EXPECT_EQ(out, expected);
  for (const std::size_t threads : {2ul, 8ul}) {
    ThreadPool pool(threads);
    std::fill(out.begin(), out.end(), -1.0);
    compiled.EstimateRangeCounts(queries, out, &pool);
    EXPECT_EQ(out, expected) << threads << " threads";
  }
}

TEST(CompiledEstimatorTest, SmallBatchSkipsThePool) {
  // Below the parallel threshold the pool must not be touched; results
  // are still correct.
  const auto h = Histogram::Create({10}, {5, 5}, 0, 20).value();
  const CompiledEstimator compiled(h);
  ThreadPool pool(2);
  const std::vector<RangeQuery> queries = {{0, 10}, {10, 20}, {0, 20}};
  std::vector<double> out(queries.size());
  compiled.EstimateRangeCounts(queries, out, &pool);
  EXPECT_DOUBLE_EQ(out[0], 5.0);
  EXPECT_DOUBLE_EQ(out[1], 5.0);
  EXPECT_DOUBLE_EQ(out[2], 10.0);
}

}  // namespace
}  // namespace equihist
