#include "distinct/frequency_profile.h"

#include <vector>

#include <gtest/gtest.h>

namespace equihist {
namespace {

TEST(FrequencyProfileTest, EmptySample) {
  const auto profile = FrequencyProfile::FromSorted({});
  EXPECT_EQ(profile.sample_size(), 0u);
  EXPECT_EQ(profile.distinct_in_sample(), 0u);
  EXPECT_EQ(profile.max_multiplicity(), 0u);
  EXPECT_EQ(profile.f(1), 0u);
}

TEST(FrequencyProfileTest, AllSingletons) {
  const std::vector<Value> sample = {1, 2, 3, 4};
  const auto profile = FrequencyProfile::FromSorted(sample);
  EXPECT_EQ(profile.sample_size(), 4u);
  EXPECT_EQ(profile.distinct_in_sample(), 4u);
  EXPECT_EQ(profile.f(1), 4u);
  EXPECT_EQ(profile.f(2), 0u);
  EXPECT_EQ(profile.max_multiplicity(), 1u);
}

TEST(FrequencyProfileTest, MixedMultiplicities) {
  // 1 appears 3x, 2 appears 1x, 5 appears 2x, 9 appears 2x.
  const std::vector<Value> sample = {1, 1, 1, 2, 5, 5, 9, 9};
  const auto profile = FrequencyProfile::FromSorted(sample);
  EXPECT_EQ(profile.sample_size(), 8u);
  EXPECT_EQ(profile.distinct_in_sample(), 4u);
  EXPECT_EQ(profile.f(1), 1u);
  EXPECT_EQ(profile.f(2), 2u);
  EXPECT_EQ(profile.f(3), 1u);
  EXPECT_EQ(profile.f(4), 0u);
  EXPECT_EQ(profile.max_multiplicity(), 3u);
}

TEST(FrequencyProfileTest, IdentitySums) {
  const std::vector<Value> sample = {1, 1, 2, 3, 3, 3, 3, 8, 8, 8};
  const auto profile = FrequencyProfile::FromSorted(sample);
  std::uint64_t weighted = 0;
  std::uint64_t distinct = 0;
  for (std::uint64_t j = 1; j <= profile.max_multiplicity(); ++j) {
    weighted += j * profile.f(j);
    distinct += profile.f(j);
  }
  EXPECT_EQ(weighted, profile.sample_size());
  EXPECT_EQ(distinct, profile.distinct_in_sample());
}

TEST(FrequencyProfileTest, FromUnsortedSortsFirst) {
  const auto a = FrequencyProfile::FromUnsorted({5, 1, 5, 2, 1, 5});
  const std::vector<Value> sorted = {1, 1, 2, 5, 5, 5};
  const auto b = FrequencyProfile::FromSorted(sorted);
  EXPECT_EQ(a.sample_size(), b.sample_size());
  EXPECT_EQ(a.distinct_in_sample(), b.distinct_in_sample());
  for (std::uint64_t j = 1; j <= 3; ++j) EXPECT_EQ(a.f(j), b.f(j));
}

TEST(FrequencyProfileTest, OutOfRangeQueriesReturnZero) {
  const std::vector<Value> sample = {1, 1};
  const auto profile = FrequencyProfile::FromSorted(sample);
  EXPECT_EQ(profile.f(0), 0u);
  EXPECT_EQ(profile.f(99), 0u);
}

TEST(FrequencyProfileTest, DenseSpanMatchesAccessors) {
  const std::vector<Value> sample = {1, 2, 2, 3, 3, 3};
  const auto profile = FrequencyProfile::FromSorted(sample);
  const auto dense = profile.dense();
  ASSERT_EQ(dense.size(), 4u);  // indices 0..3
  EXPECT_EQ(dense[1], profile.f(1));
  EXPECT_EQ(dense[2], profile.f(2));
  EXPECT_EQ(dense[3], profile.f(3));
}

}  // namespace
}  // namespace equihist
