// Randomized cross-module property tests: invariants that must hold for
// *any* inputs, checked over seeded random instances. These complement the
// per-module unit tests with the "for all" style guarantees the library's
// algebra relies on.

#include <algorithm>
#include <array>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/equi_width.h"
#include "baseline/serial_histograms.h"
#include "common/math.h"
#include "common/rng.h"
#include "core/bounds.h"
#include "core/compressed_histogram.h"
#include "core/cvb.h"
#include "core/error_metrics.h"
#include "core/histogram_builder.h"
#include "core/range_estimator.h"
#include "data/distribution.h"
#include "data/value_set.h"
#include "sampling/row_sampler.h"
#include "stats/serialization.h"
#include "storage/table.h"

namespace equihist {
namespace {

// A random histogram with duplicated separators and arbitrary counts.
Histogram RandomHistogram(Rng& rng) {
  const std::uint64_t k = 1 + rng.NextBounded(30);
  std::vector<Value> separators;
  Value v = -static_cast<Value>(rng.NextBounded(50));
  for (std::uint64_t j = 0; j + 1 < k; ++j) {
    v += static_cast<Value>(rng.NextBounded(4));  // 0 => duplicated separator
    separators.push_back(v);
  }
  std::vector<std::uint64_t> counts(k);
  for (auto& c : counts) c = rng.NextBounded(1000);
  const Value lower = separators.empty()
                          ? -100
                          : std::min<Value>(separators.front(), -100);
  const Value upper =
      (separators.empty() ? Value{100} : separators.back()) +
      static_cast<Value>(1 + rng.NextBounded(50));
  return Histogram::Create(std::move(separators), std::move(counts), lower,
                           upper)
      .value();
}

// A random multiset over a small domain.
ValueSet RandomPopulation(Rng& rng) {
  const std::uint64_t n = 1 + rng.NextBounded(2000);
  std::vector<Value> values(n);
  for (auto& v : values) {
    v = static_cast<Value>(rng.NextBounded(200)) - 50;
  }
  return ValueSet(std::move(values));
}

class RandomizedPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Rng rng_{GetParam()};
};

TEST_P(RandomizedPropertyTest, PartitionAgreesWithBucketIndex) {
  for (int trial = 0; trial < 20; ++trial) {
    const Histogram h = RandomHistogram(rng_);
    const ValueSet population = RandomPopulation(rng_);
    const auto counts = h.PartitionCounts(population);
    std::vector<std::uint64_t> by_index(h.bucket_count(), 0);
    for (Value v : population.sorted_values()) {
      ++by_index[h.BucketIndexForValue(v)];
    }
    EXPECT_EQ(counts, by_index);
    std::uint64_t sum = 0;
    for (auto c : counts) sum += c;
    EXPECT_EQ(sum, population.size());
    EXPECT_EQ(counts, h.PartitionSorted(population.sorted_values()));
  }
}

TEST_P(RandomizedPropertyTest, RangeEstimateIsAdditiveAndComplete) {
  for (int trial = 0; trial < 20; ++trial) {
    const Histogram h = RandomHistogram(rng_);
    // Splitting a range at any midpoint must preserve the estimate.
    const Value lo = h.lower_fence() - 5;
    const Value hi = h.upper_fence() + 5;
    const Value mid =
        lo + static_cast<Value>(rng_.NextBounded(
                 static_cast<std::uint64_t>(hi - lo) + 1));
    const double whole = EstimateRangeCount(h, {lo, hi});
    const double parts =
        EstimateRangeCount(h, {lo, mid}) + EstimateRangeCount(h, {mid, hi});
    EXPECT_NEAR(whole, parts, 1e-6 * std::max(1.0, whole));
    // The full-domain estimate equals the claimed total.
    EXPECT_NEAR(whole, static_cast<double>(h.total()),
                1e-6 * std::max<double>(1.0, static_cast<double>(h.total())));
    // Estimates are monotone in the upper bound.
    double prev = 0.0;
    for (Value x = lo; x <= hi; x += std::max<Value>(1, (hi - lo) / 17)) {
      const double est = EstimateRangeCount(h, {lo, x});
      EXPECT_GE(est, prev - 1e-9);
      prev = est;
    }
  }
}

TEST_P(RandomizedPropertyTest, SerializationRoundTripsRandomHistograms) {
  for (int trial = 0; trial < 20; ++trial) {
    const Histogram h = RandomHistogram(rng_);
    std::vector<std::uint8_t> bytes;
    SerializeHistogram(h, &bytes);
    const auto restored = DeserializeHistogram(bytes);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored->separators(), h.separators());
    EXPECT_EQ(restored->counts(), h.counts());
    EXPECT_EQ(restored->lower_fence(), h.lower_fence());
    EXPECT_EQ(restored->upper_fence(), h.upper_fence());
  }
}

TEST_P(RandomizedPropertyTest, SampleBuiltHistogramClaimsSumToPopulation) {
  for (int trial = 0; trial < 10; ++trial) {
    const ValueSet population = RandomPopulation(rng_);
    const std::uint64_t r =
        1 + rng_.NextBounded(population.size());
    auto sample =
        SampleRowsWithoutReplacement(population.sorted_values(), r, rng_);
    ASSERT_TRUE(sample.ok());
    std::sort(sample->begin(), sample->end());
    const std::uint64_t k = 1 + rng_.NextBounded(20);
    const auto h = BuildHistogramFromSample(*sample, k, population.size());
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->total(), population.size());
    EXPECT_TRUE(std::is_sorted(h->separators().begin(),
                               h->separators().end()));
  }
}

TEST_P(RandomizedPropertyTest, MetricsOrderingHoldsOnRealPartitions) {
  for (int trial = 0; trial < 10; ++trial) {
    const Histogram h = RandomHistogram(rng_);
    const ValueSet population = RandomPopulation(rng_);
    const auto report = ComputeHistogramErrors(h, population);
    ASSERT_TRUE(report.ok());
    EXPECT_LE(report->delta_avg, report->delta_var + 1e-9);
    EXPECT_LE(report->delta_var, report->delta_max + 1e-9);
    EXPECT_GE(report->delta_avg, 0.0);
  }
}

TEST_P(RandomizedPropertyTest, AllHistogramFamiliesCoverAllMass) {
  const std::uint64_t n = 2000 + rng_.NextBounded(8000);
  const auto freq = MakeZipf({.n = n,
                              .domain_size = 50 + rng_.NextBounded(200),
                              .skew = static_cast<double>(rng_.NextBounded(30)) / 10.0,
                              .seed = rng_.Next()});
  ASSERT_TRUE(freq.ok());
  const ValueSet data = ValueSet::FromFrequencies(*freq);
  const std::uint64_t k = 2 + rng_.NextBounded(30);
  const Value lo = data.min() - 10;
  const Value hi = data.max() + 10;
  const double expected = static_cast<double>(n);

  const auto equi_height = BuildPerfectHistogram(data, k);
  ASSERT_TRUE(equi_height.ok());
  EXPECT_NEAR(EstimateRangeCount(*equi_height, {lo, hi}), expected, 1.0);

  const auto equi_width = EquiWidthHistogram::Build(data, k);
  ASSERT_TRUE(equi_width.ok());
  EXPECT_NEAR(equi_width->EstimateRangeCount({lo, hi}), expected, 1.0);

  const auto compressed = CompressedHistogram::BuildPerfect(data, k);
  ASSERT_TRUE(compressed.ok());
  EXPECT_NEAR(compressed->EstimateRangeCount({lo, hi}), expected,
              expected * 0.01 + 1.0);

  const auto maxdiff = BuildMaxDiffHistogram(*freq, k);
  ASSERT_TRUE(maxdiff.ok());
  EXPECT_NEAR(EstimateRangeCount(*maxdiff, {lo, hi}), expected, 1.0);
}

TEST_P(RandomizedPropertyTest, BoundsRoundTripAcrossRandomParameters) {
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t n = 1000 + rng_.NextBounded(100000000);
    const std::uint64_t k = 1 + rng_.NextBounded(1000);
    const double f = 0.01 + 0.99 * rng_.NextDouble();
    const double gamma = 0.001 + 0.5 * rng_.NextDouble();
    const auto r = DeviationSampleSize(n, k, f, gamma);
    ASSERT_TRUE(r.ok());
    // Solving back for the error at that sample size returns ~f.
    const auto f_back = DeviationErrorForSampleSize(n, k, *r, gamma);
    ASSERT_TRUE(f_back.ok());
    EXPECT_LE(*f_back, f + 1e-6);
    EXPECT_GT(*f_back, f * 0.9);
    // And the failure probability at (r, f) is <= gamma.
    const auto gamma_back = DeviationFailureProbability(n, k, f, *r);
    ASSERT_TRUE(gamma_back.ok());
    EXPECT_LE(*gamma_back, gamma * 1.001);
  }
}

TEST_P(RandomizedPropertyTest, CvbConvergesAcrossDistributionsAndLayouts) {
  // One random configuration per seed (kept light: this runs under the
  // full parameter sweep).
  const double skew = static_cast<double>(rng_.NextBounded(25)) / 10.0;
  const LayoutKind layout =
      std::array<LayoutKind, 3>{LayoutKind::kRandom, LayoutKind::kSorted,
                                LayoutKind::kPartiallyClustered}
          [rng_.NextBounded(3)];
  const std::uint64_t n = 30000 + rng_.NextBounded(70000);
  const auto freq = MakeZipf({.n = n,
                              .domain_size = std::max<std::uint64_t>(n / 20, 2),
                              .skew = skew,
                              .seed = rng_.Next()});
  ASSERT_TRUE(freq.ok());
  auto table = Table::Create(*freq, PageConfig{8192, 64},
                             {.kind = layout, .seed = rng_.Next()});
  ASSERT_TRUE(table.ok());
  CvbOptions options;
  options.k = 20 + rng_.NextBounded(80);
  options.f = 0.15 + 0.2 * rng_.NextDouble();
  options.seed = rng_.Next();
  const auto result = RunCvb(*table, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged || result->exhausted_table);
  EXPECT_LE(result->tuples_sampled, n);
  EXPECT_EQ(result->histogram.total(), n);
  EXPECT_GE(result->sample_distinct, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace equihist
