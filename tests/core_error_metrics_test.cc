#include "core/error_metrics.h"

#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/histogram_builder.h"
#include "data/distribution.h"
#include "data/value_set.h"
#include "sampling/row_sampler.h"

namespace equihist {
namespace {

TEST(BucketErrorTest, PaperExample2Numbers) {
  // Section 2.3, Example 2: k=10 buckets of sizes below, n=1000.
  const std::vector<std::uint64_t> sizes = {88, 101, 87, 88, 89,
                                            180, 90, 88, 103, 86};
  const auto report = ComputeBucketErrors(sizes);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->delta_avg, 16.8, 1e-9);
  EXPECT_NEAR(report->delta_var, 27.5, 0.3);  // paper rounds to 27.5
  EXPECT_NEAR(report->delta_max, 80.0, 1e-9);
  // In f units (ideal bucket 100).
  EXPECT_NEAR(report->f_avg, 0.168, 1e-9);
  EXPECT_NEAR(report->f_max, 0.80, 1e-9);
}

TEST(BucketErrorTest, PerfectBucketsHaveZeroError) {
  const std::vector<std::uint64_t> sizes(10, 100);
  const auto report = ComputeBucketErrors(sizes);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->delta_avg, 0.0);
  EXPECT_EQ(report->delta_var, 0.0);
  EXPECT_EQ(report->delta_max, 0.0);
}

TEST(BucketErrorTest, RejectsEmpty) {
  EXPECT_FALSE(ComputeBucketErrors(std::vector<std::uint64_t>{}).ok());
}

TEST(BucketErrorTest, SingleBucketAlwaysPerfect) {
  const auto report = ComputeBucketErrors(std::vector<std::uint64_t>{1234});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->delta_max, 0.0);
}

// Theorem 2 property: delta_avg <= delta_var <= delta_max on random
// bucket-size vectors.
class Theorem2PropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem2PropertyTest, MetricOrdering) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t k = 2 + rng.NextBounded(50);
    std::vector<std::uint64_t> sizes(k);
    for (auto& s : sizes) s = rng.NextBounded(1000);
    const auto report = ComputeBucketErrors(sizes);
    ASSERT_TRUE(report.ok());
    EXPECT_LE(report->delta_avg, report->delta_var + 1e-9);
    EXPECT_LE(report->delta_var, report->delta_max + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem2PropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(HistogramErrorTest, PerfectHistogramHasTinyError) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(1000));
  const auto h = BuildPerfectHistogram(data, 10);
  ASSERT_TRUE(h.ok());
  const auto report = ComputeHistogramErrors(*h, data);
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->delta_max, 1.0);
}

TEST(HistogramErrorTest, SampledHistogramErrorShrinksWithSampleSize) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(100000));
  Rng rng(42);
  double previous_error = 1e18;
  for (std::uint64_t r : {200u, 2000u, 20000u}) {
    const auto sample = SampleRowsWithoutReplacement(
        data.sorted_values(), r, rng);
    ASSERT_TRUE(sample.ok());
    std::vector<Value> sorted = *sample;
    std::sort(sorted.begin(), sorted.end());
    const auto h = BuildHistogramFromSample(sorted, 20, data.size());
    ASSERT_TRUE(h.ok());
    const auto report = ComputeHistogramErrors(*h, data);
    ASSERT_TRUE(report.ok());
    EXPECT_LT(report->delta_max, previous_error);
    previous_error = report->delta_max;
  }
}

TEST(SeparationErrorTest, IdenticalHistogramsHaveZeroSeparation) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(1000));
  const auto h = BuildPerfectHistogram(data, 10);
  ASSERT_TRUE(h.ok());
  const auto sep = SeparationError(*h, *h, data);
  ASSERT_TRUE(sep.ok());
  EXPECT_EQ(*sep, 0u);
}

TEST(SeparationErrorTest, ShiftedSeparatorsGiveSymmetricDifference) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(100));
  // Buckets (0,50], (50,100] vs (0,60], (60,100]: symmetric difference of
  // the first buckets is (50,60] = 10 values; same for the second buckets.
  const auto a = Histogram::Create({50}, {50, 50}, 0, 100);
  const auto b = Histogram::Create({60}, {60, 40}, 0, 100);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const auto sep = SeparationError(*a, *b, data);
  ASSERT_TRUE(sep.ok());
  EXPECT_EQ(*sep, 10u);
}

TEST(SeparationErrorTest, RequiresMatchingK) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(10));
  const auto a = Histogram::Create({5}, {5, 5}, 0, 10);
  const auto b = Histogram::Create({3, 7}, {3, 4, 3}, 0, 10);
  EXPECT_FALSE(SeparationError(*a, *b, data).ok());
}

TEST(SeparationErrorTest, DominatesMaxErrorDifference) {
  // delta-separation >= max bucket size difference, because the symmetric
  // difference is at least the size difference.
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(1000));
  Rng rng(5);
  const auto sample =
      SampleRowsWithoutReplacement(data.sorted_values(), 100, rng);
  std::vector<Value> sorted = *sample;
  std::sort(sorted.begin(), sorted.end());
  const auto perfect = BuildPerfectHistogram(data, 10);
  const auto approx = BuildHistogramFromSample(sorted, 10, data.size());
  ASSERT_TRUE(perfect.ok());
  ASSERT_TRUE(approx.ok());
  const auto sep = SeparationError(*perfect, *approx, data);
  const auto errors = ComputeHistogramErrors(*approx, data);
  ASSERT_TRUE(sep.ok());
  ASSERT_TRUE(errors.ok());
  EXPECT_GE(static_cast<double>(*sep) + 1.0, errors->delta_max);
}

TEST(RelativeDeviationTest, ZeroWhenSampleMatchesHistogram) {
  // Histogram with separators 25,50,75 over sample 1..100: each bucket gets
  // exactly 25 values.
  std::vector<Value> sample(100);
  std::iota(sample.begin(), sample.end(), 1);
  const auto h = Histogram::Create({25, 50, 75}, {25, 25, 25, 25}, 0, 100);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(RelativeDeviation(*h, sample), 0.0);
}

TEST(RelativeDeviationTest, DetectsSkewedSample) {
  // All sample mass below the first separator.
  std::vector<Value> sample(100, 1);
  const auto h = Histogram::Create({25, 50, 75}, {25, 25, 25, 25}, 0, 100);
  ASSERT_TRUE(h.ok());
  // First bucket holds 100, ideal is 25: deviation 75.
  EXPECT_DOUBLE_EQ(RelativeDeviation(*h, sample), 75.0);
}

TEST(FractionalMaxErrorTest, ZeroForIdenticalSamples) {
  std::vector<Value> sample(100);
  std::iota(sample.begin(), sample.end(), 1);
  const auto h = BuildHistogramFromSample(sample, 4, 1000);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(FractionalMaxError(*h, sample, sample), 0.0, 1e-12);
}

TEST(FractionalMaxErrorTest, ReducesToNormalizedDeviationWhenDistinct) {
  // Reference: uniform 1..100; validation skewed low.
  std::vector<Value> reference(100);
  std::iota(reference.begin(), reference.end(), 1);
  std::vector<Value> validation;
  for (Value v = 1; v <= 50; ++v) {
    validation.push_back(v);
    validation.push_back(v);
  }
  const auto h = BuildHistogramFromSample(reference, 4, 1000);
  ASSERT_TRUE(h.ok());
  const double f_prime = FractionalMaxError(*h, reference, validation);
  const double ideal = static_cast<double>(validation.size()) / 4.0;
  const double normalized = RelativeDeviation(*h, validation) / ideal;
  EXPECT_NEAR(f_prime, normalized, 1e-9);
}

TEST(FractionalMaxErrorTest, HandlesDuplicatedSeparators) {
  // 90% of the reference is one value: separators collapse.
  std::vector<Value> reference(90, 5);
  for (Value v = 0; v < 10; ++v) reference.push_back(100 + v);
  std::sort(reference.begin(), reference.end());
  const auto h = BuildHistogramFromSample(reference, 10, 1000);
  ASSERT_TRUE(h.ok());
  // A validation sample with the same shape scores ~0.
  EXPECT_NEAR(FractionalMaxError(*h, reference, reference), 0.0, 1e-12);
  // A validation sample missing the heavy value scores high.
  std::vector<Value> validation;
  for (Value v = 0; v < 100; ++v) validation.push_back(100 + (v % 10));
  std::sort(validation.begin(), validation.end());
  EXPECT_GT(FractionalMaxError(*h, reference, validation), 0.5);
}

TEST(FractionalMaxErrorTest, EmptyInputsAreZero) {
  const auto h = Histogram::Create({5}, {1, 1}, 0, 10);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(FractionalMaxError(*h, {}, {}), 0.0);
}

}  // namespace
}  // namespace equihist
