// End-to-end tests tying the full pipeline together: data generation ->
// paged storage -> sampling -> histogram construction -> error measurement
// -> optimizer usage. These are the "does the paper's story actually hold
// on this implementation" checks, run at reduced scale.

#include <algorithm>
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/bounds.h"
#include "core/cvb.h"
#include "core/density.h"
#include "core/error_metrics.h"
#include "core/histogram_builder.h"
#include "core/range_estimator.h"
#include "data/distribution.h"
#include "data/value_set.h"
#include "data/workload.h"
#include "distinct/error.h"
#include "distinct/estimators.h"
#include "sampling/block_sampler.h"
#include "sampling/row_sampler.h"
#include "storage/table.h"

namespace equihist {
namespace {

// Theorem 4 / Corollary 1 empirical check: sampling the bound's r yields a
// delta-deviant histogram across seeds and distributions. gamma = 0.05 and
// 8 (distribution x seed) runs: all should pass comfortably since the
// bound is conservative.
class Theorem4EmpiricalTest
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(Theorem4EmpiricalTest, SampleOfBoundSizeMeetsErrorTarget) {
  const auto [skew, seed] = GetParam();
  const std::uint64_t n = 300000;
  const std::uint64_t k = 40;
  const double f = 0.25;
  const auto freq =
      MakeZipf({.n = n, .domain_size = n, .skew = skew, .seed = seed});
  ASSERT_TRUE(freq.ok());
  const ValueSet data = ValueSet::FromFrequencies(*freq);

  const auto r = DeviationSampleSize(n, k, f, 0.05);
  ASSERT_TRUE(r.ok());
  // At this scale the bound may exceed n; sampling with replacement keeps
  // the analysis model intact.
  Rng rng(seed * 7919 + 13);
  auto sample = SampleRowsWithReplacement(data.sorted_values(), *r, rng);
  std::sort(sample.begin(), sample.end());
  const auto h = BuildHistogramFromSample(sample, k, n);
  ASSERT_TRUE(h.ok());
  // Theorem 4 speaks about bucket counts on duplicate-free data; under
  // heavy duplication (high skew concentrates multiplicity above n/k) the
  // transferable form of its guarantee is that the claimed per-bucket
  // counts track the true ones within delta = f*n/k.
  const auto claimed = ComputeClaimedErrors(*h, data);
  ASSERT_TRUE(claimed.ok());
  EXPECT_LT(claimed->f_max, f) << "skew=" << skew << " seed=" << seed;
  if (skew == 0.0) {
    // Duplicate-free (domain_size == n): the raw bucket-count guarantee
    // itself must hold.
    const auto errors = ComputeHistogramErrors(*h, data);
    ASSERT_TRUE(errors.ok());
    EXPECT_LT(errors->f_max, f) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SkewsAndSeeds, Theorem4EmpiricalTest,
    ::testing::Combine(::testing::Values(0.0, 1.0, 2.0, 4.0),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2})));

TEST(EndToEndTest, AnalyzePipelineOverPagedTable) {
  // The analyze_tool scenario: Zipf(1) column, random layout, CVB with
  // k = 80 and f = 0.15, then validate everything the tool reports.
  const std::uint64_t n = 400000;
  const auto freq =
      MakeZipf({.n = n, .domain_size = 20000, .skew = 1.0, .seed = 3});
  ASSERT_TRUE(freq.ok());
  const ValueSet truth = ValueSet::FromFrequencies(*freq);
  auto table = Table::Create(*freq, PageConfig{8192, 64},
                             {.kind = LayoutKind::kRandom, .seed = 3});
  ASSERT_TRUE(table.ok());

  CvbOptions options;
  options.k = 50;
  options.f = 0.2;
  const auto result = RunCvb(*table, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->converged || result->exhausted_table);

  // Histogram quality: within 2x of the target (Theorem 7 gap), measured
  // with the duplicate-aware claimed-count metric since Zipf(1) carries
  // values heavier than n/k.
  const auto claimed_errors = ComputeClaimedErrors(result->histogram, truth);
  ASSERT_TRUE(claimed_errors.ok());
  EXPECT_LT(claimed_errors->f_max, 0.30);
  const auto errors = ComputeHistogramErrors(result->histogram, truth);
  ASSERT_TRUE(errors.ok());

  // I/O economy: block sampling must touch far fewer pages than a scan
  // when the layout is random.
  EXPECT_LT(result->blocks_sampled, table->page_count());

  // Density from the sample tracks the true density.
  const double true_density = ComputeDensity(truth.sorted_values());
  EXPECT_NEAR(result->density_estimate, true_density,
              std::max(0.2 * true_density, 1e-4));

  // The histogram serves range queries within the Theorem 3 regime.
  RangeWorkloadGenerator gen(&truth, 5);
  const auto queries = gen.UniformRanges(200);
  const auto report =
      EvaluateRangeWorkload(result->histogram, queries, truth);
  ASSERT_TRUE(report.ok());
  const double bound = MaxErrorHistogramAbsoluteErrorBound(
      n, options.k, std::max(errors->f_max, options.f));
  EXPECT_LE(report->max_absolute_error, bound * 1.2);
}

TEST(EndToEndTest, ClusteringIsDetectedAndPaidFor) {
  // Figure 7's claim end-to-end: identical data, identical options; the
  // partially clustered layout forces more sampling for the same target.
  const std::uint64_t n = 200000;
  const auto freq =
      MakeZipf({.n = n, .domain_size = 500, .skew = 2.0, .seed = 9});
  ASSERT_TRUE(freq.ok());
  CvbOptions options;
  options.k = 60;
  options.f = 0.2;
  options.seed = 17;

  auto random_table = Table::Create(*freq, PageConfig{8192, 64},
                                    {.kind = LayoutKind::kRandom, .seed = 9});
  auto clustered_table = Table::Create(
      *freq, PageConfig{8192, 64},
      {.kind = LayoutKind::kPartiallyClustered, .clustered_fraction = 0.5,
       .seed = 9});
  ASSERT_TRUE(random_table.ok());
  ASSERT_TRUE(clustered_table.ok());
  const auto random_run = RunCvb(*random_table, options);
  const auto clustered_run = RunCvb(*clustered_table, options);
  ASSERT_TRUE(random_run.ok());
  ASSERT_TRUE(clustered_run.ok());
  EXPECT_GE(clustered_run->blocks_sampled, random_run->blocks_sampled);
}

TEST(EndToEndTest, DistinctValueReportMatchesFigure9Story) {
  // Zipf(2): d is small and the paper estimator nails "d << n" via
  // rel-error even from a 2% sample; the naive sample count is far below d
  // only when d is large relative to the sample — here it should be close.
  const std::uint64_t n = 500000;
  const auto freq =
      MakeZipf({.n = n, .domain_size = 50000, .skew = 2.0, .seed = 21});
  ASSERT_TRUE(freq.ok());
  const ValueSet data = ValueSet::FromFrequencies(*freq);
  const std::uint64_t d = data.DistinctCount();

  Rng rng(23);
  auto sample = SampleRowsWithoutReplacement(data.sorted_values(),
                                             n / 50, rng);
  ASSERT_TRUE(sample.ok());
  const auto profile = FrequencyProfile::FromUnsorted(*sample);
  const auto estimate = PaperEstimator(profile, n);
  ASSERT_TRUE(estimate.ok());

  const auto rel = AbsRelError(*estimate, d, n);
  ASSERT_TRUE(rel.ok());
  EXPECT_LT(*rel, 0.02);

  // And the Theorem 8 floor is respected by construction: the observed
  // ratio error can exceed it, but the bound itself is sane.
  const auto floor = DistinctValueErrorLowerBound(n, n / 50, 0.5);
  ASSERT_TRUE(floor.ok());
  EXPECT_GT(*floor, 1.0);
}

TEST(EndToEndTest, BlockSamplingMatchesRecordLevelOnRandomLayout) {
  // Section 4.1 scenario (a): with uncorrelated blocks, a block sample of
  // g = r/b pages is as good as r record-level samples.
  const std::uint64_t n = 300000;
  const std::uint64_t k = 50;
  const auto freq =
      MakeZipf({.n = n, .domain_size = 10000, .skew = 1.0, .seed = 31});
  ASSERT_TRUE(freq.ok());
  const ValueSet truth = ValueSet::FromFrequencies(*freq);
  auto table = Table::Create(*freq, PageConfig{8192, 64},
                             {.kind = LayoutKind::kRandom, .seed = 31});
  ASSERT_TRUE(table.ok());

  const std::uint64_t r = 30000;
  // Record-level baseline.
  Rng rng(37);
  auto record_sample =
      SampleRowsWithoutReplacement(truth.sorted_values(), r, rng);
  ASSERT_TRUE(record_sample.ok());
  std::sort(record_sample->begin(), record_sample->end());
  const auto record_hist = BuildHistogramFromSample(*record_sample, k, n);
  ASSERT_TRUE(record_hist.ok());
  const auto record_errors = ComputeHistogramErrors(*record_hist, truth);
  ASSERT_TRUE(record_errors.ok());

  // Block-level with the same tuple budget.
  IncrementalBlockSampler sampler(&*table, 41);
  std::vector<Value> block_sample =
      sampler.NextBatch(r / table->tuples_per_page(), nullptr);
  std::sort(block_sample.begin(), block_sample.end());
  const auto block_hist = BuildHistogramFromSample(block_sample, k, n);
  ASSERT_TRUE(block_hist.ok());
  const auto block_errors = ComputeHistogramErrors(*block_hist, truth);
  ASSERT_TRUE(block_errors.ok());

  // Same ballpark: block error within 2x of record error (both are noisy).
  EXPECT_LT(block_errors->f_max, std::max(2.0 * record_errors->f_max, 0.15));
}

}  // namespace
}  // namespace equihist
