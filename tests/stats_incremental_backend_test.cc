#include "stats/incremental_backend.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/gmp_incremental.h"
#include "common/rng.h"
#include "core/histogram_builder.h"
#include "core/range_estimator.h"
#include "data/distribution.h"
#include "data/generator.h"
#include "data/workload.h"
#include "sampling/reservoir.h"
#include "stats/histogram_backends.h"
#include "stats/serialization.h"
#include "stats/statistics_manager.h"
#include "storage/table.h"

namespace equihist {
namespace {

constexpr PageConfig kPage{8192, 64};

Table MakeTable(std::uint64_t n = 60000, std::uint64_t seed = 3) {
  const auto freq =
      MakeZipf({.n = n, .domain_size = n / 20, .skew = 1.0, .seed = seed});
  return Table::Create(*freq, kPage,
                       {.kind = LayoutKind::kRandom, .seed = seed})
      .value();
}

StatisticsManager::Options IncrementalOptions() {
  StatisticsManager::Options options;
  options.buckets = 32;
  options.default_backend = HistogramBackendId::kIncrementalEquiDepth;
  // Make any recorded DML cross the staleness threshold so EnsureFresh
  // actually refreshes in these tests.
  options.staleness_threshold = 1e-12;
  options.threads = 1;
  options.reservoir_capacity = 2048;
  return options;
}

TEST(IncrementalBackendTest, RegisteredInTheGlobalRegistry) {
  const auto backend = HistogramBackendRegistry::Global().Find(
      HistogramBackendId::kIncrementalEquiDepth);
  ASSERT_TRUE(backend.ok());
  EXPECT_EQ(backend->name, "incremental-equi-depth");
}

// The ISSUE acceptance differential: after a long mixed DML stream, range
// estimates from the incrementally maintained histogram must stay within
// the configured Δmax bound of a from-scratch equi-depth build over the
// *same* backing reservoir — split/merge repair may lag a rebuild by
// bucket-granularity error, never by more.
TEST(IncrementalBackendTest, DifferentialDeltaMaxVsFromScratchBuild) {
  constexpr std::uint64_t kBuckets = 32;
  constexpr double kGamma = 0.5;
  auto maintained = IncrementalEquiDepth::Create({.buckets = kBuckets,
                                                  .gamma = kGamma,
                                                  .reservoir_capacity = 2048,
                                                  .seed = 5});
  ASSERT_TRUE(maintained.ok());

  // Seed phase: a Zipf stream, then a churn phase of mixed DML with a
  // drifting domain so splits, merges and recomputes all fire.
  const auto freq = MakeZipf({.n = 50000, .domain_size = 2500, .skew = 1.0});
  const auto values = ExpandShuffled(*freq, 11);
  for (Value v : values) maintained->Insert(v);
  Rng rng(77);
  for (int i = 0; i < 20000; ++i) {
    if (rng.NextBounded(2) == 0) {
      maintained->Insert(static_cast<Value>(2500 + rng.NextBounded(2500)));
    } else {
      maintained->Delete(static_cast<Value>(1 + rng.NextBounded(2500)));
    }
  }

  const auto snapshot = maintained->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  const std::uint64_t n = snapshot->total();
  ASSERT_GT(n, 0u);

  const std::vector<Value> sample =
      maintained->backing_sample().SortedSample();
  const auto scratch = BuildHistogramFromSample(
      sample, kBuckets, maintained->backing_sample().population());
  ASSERT_TRUE(scratch.ok());

  // Δmax: one over-full bucket of the GMP invariant, (2+gamma)N/B. Range
  // estimates can disagree by at most ~2 buckets' mass on each side of the
  // range (boundary interpolation), hence the factor 2 slack.
  const double delta_max =
      (2.0 + kGamma) * static_cast<double>(n) / static_cast<double>(kBuckets);
  const Value lo = snapshot->lower_fence();
  const Value hi = snapshot->upper_fence();
  const Value span = std::max<Value>(hi - lo, 1);
  for (int q = 0; q < 200; ++q) {
    const Value a = lo + (span * q) / 200;
    const Value b = lo + (span * (q + 37)) / 200;
    const RangeQuery query{std::min(a, b), std::max(a, b) + 1};
    const double inc = EstimateRangeCount(*snapshot, query);
    const double ref = EstimateRangeCount(*scratch, query);
    EXPECT_LE(std::abs(inc - ref), 2.0 * delta_max)
        << "query (" << query.lo << ", " << query.hi << "]";
  }
}

TEST(IncrementalBackendTest, StatisticsRoundTripCarriesReservoir) {
  Table table = MakeTable();
  StatisticsManager manager(IncrementalOptions());
  const auto built = manager.GetOrBuildShared("t.x", table);
  ASSERT_TRUE(built.ok());
  const auto* model =
      dynamic_cast<const IncrementalEquiDepthModel*>((*built)->model.get());
  ASSERT_NE(model, nullptr);

  std::vector<std::uint8_t> bytes;
  SerializeColumnStatistics(**built, &bytes);
  const auto restored = DeserializeColumnStatistics(bytes);
  ASSERT_TRUE(restored.ok());
  const auto* restored_model =
      dynamic_cast<const IncrementalEquiDepthModel*>(restored->model.get());
  ASSERT_NE(restored_model, nullptr);
  EXPECT_EQ(restored_model->reservoir().sample(),
            model->reservoir().sample());
  EXPECT_EQ(restored_model->reservoir().population(),
            model->reservoir().population());
  EXPECT_EQ(restored_model->histogram().counts(),
            model->histogram().counts());
}

// -- StatisticsManager O(Δ) refresh path -------------------------------------

TEST(IncrementalManagerTest, ValueDmlRefreshesWithoutRebuilding) {
  Table table = MakeTable();
  StatisticsManager manager(IncrementalOptions());
  ASSERT_TRUE(manager.GetOrBuild("t.x", table).ok());
  EXPECT_EQ(manager.rebuild_count(), 1u);
  EXPECT_EQ(manager.incremental_refresh_count(), 0u);
  const IoStats cost_after_build = manager.total_build_cost();

  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    manager.RecordInsert("t.x", static_cast<Value>(1 + rng.NextBounded(3000)));
  }
  for (int i = 0; i < 200; ++i) {
    manager.RecordDelete("t.x", static_cast<Value>(1 + rng.NextBounded(3000)));
  }
  EXPECT_TRUE(manager.IsStale("t.x"));

  const auto fresh = manager.EnsureFresh("t.x", table);
  ASSERT_TRUE(fresh.ok());
  // The refresh was incremental: no table rebuild, zero additional I/O,
  // and the published row count tracks the DML (+500 - 200).
  EXPECT_EQ(manager.rebuild_count(), 1u);
  EXPECT_EQ(manager.incremental_refresh_count(), 1u);
  EXPECT_EQ((*fresh)->row_count, table.tuple_count() + 300);
  EXPECT_EQ(manager.total_build_cost().pages_read,
            cost_after_build.pages_read);
  EXPECT_EQ((*fresh)->model->backend_id(),
            HistogramBackendId::kIncrementalEquiDepth);
  EXPECT_FALSE(manager.IsStale("t.x"));
  EXPECT_EQ(manager.Health("t.x").health, ColumnHealth::kFresh);

  // And the refreshed snapshot serves: a full-domain range estimates ~n.
  const auto estimate = manager.EstimateRange(
      "t.x", table, RangeQuery{0, std::numeric_limits<Value>::max()});
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(*estimate, static_cast<double>(table.tuple_count() + 300),
              static_cast<double>(table.tuple_count()) * 0.05);
}

TEST(IncrementalManagerTest, CountOnlyModificationsForceFullRebuild) {
  Table table = MakeTable();
  StatisticsManager manager(IncrementalOptions());
  ASSERT_TRUE(manager.GetOrBuild("t.x", table).ok());
  // Count-only DML carries no values: the reservoir cannot represent it,
  // so EnsureFresh must take the full-rebuild path.
  manager.RecordModifications("t.x", 1000);
  ASSERT_TRUE(manager.EnsureFresh("t.x", table).ok());
  EXPECT_EQ(manager.rebuild_count(), 2u);
  EXPECT_EQ(manager.incremental_refresh_count(), 0u);

  // The rebuild reseeded everything, so value-carrying DML afterwards
  // refreshes incrementally again.
  manager.RecordInsert("t.x", 17);
  ASSERT_TRUE(manager.EnsureFresh("t.x", table).ok());
  EXPECT_EQ(manager.rebuild_count(), 2u);
  EXPECT_EQ(manager.incremental_refresh_count(), 1u);
}

TEST(IncrementalManagerTest, RepairBudgetForcesFullRebuild) {
  Table table = MakeTable(/*n=*/20000);
  StatisticsManager::Options options = IncrementalOptions();
  options.incremental_repair_budget = 0.01;  // 1% of the live row count
  StatisticsManager manager(options);
  ASSERT_TRUE(manager.GetOrBuild("t.x", table).ok());
  // 5% churn blows the 1% budget: drift wins, the manager reseeds.
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    manager.RecordInsert("t.x", static_cast<Value>(1 + rng.NextBounded(1000)));
  }
  ASSERT_TRUE(manager.EnsureFresh("t.x", table).ok());
  EXPECT_EQ(manager.rebuild_count(), 2u);
  EXPECT_EQ(manager.incremental_refresh_count(), 0u);
}

TEST(IncrementalManagerTest, NonIncrementalBackendIgnoresValueDml) {
  Table table = MakeTable();
  StatisticsManager::Options options = IncrementalOptions();
  options.default_backend = HistogramBackendId::kEquiHeight;
  StatisticsManager manager(options);
  ASSERT_TRUE(manager.GetOrBuild("t.x", table).ok());
  manager.RecordInsert("t.x", 42);
  ASSERT_TRUE(manager.EnsureFresh("t.x", table).ok());
  // Equi-height has no live maintenance state: staleness still resolves by
  // rebuild, exactly as before this subsystem existed.
  EXPECT_EQ(manager.rebuild_count(), 2u);
  EXPECT_EQ(manager.incremental_refresh_count(), 0u);
}

TEST(IncrementalManagerTest, RefreshIsDeterministicAcrossThreadCounts) {
  Table table = MakeTable();
  const auto run = [&table](std::uint64_t threads) {
    StatisticsManager::Options options = IncrementalOptions();
    options.threads = threads;
    StatisticsManager manager(options);
    EXPECT_TRUE(manager.GetOrBuild("t.x", table).ok());
    Rng rng(21);
    for (int i = 0; i < 400; ++i) {
      if (rng.NextBounded(3) == 0) {
        manager.RecordDelete("t.x",
                             static_cast<Value>(1 + rng.NextBounded(3000)));
      } else {
        manager.RecordInsert("t.x",
                             static_cast<Value>(1 + rng.NextBounded(3000)));
      }
    }
    const auto fresh = manager.EnsureFreshShared("t.x", table);
    EXPECT_TRUE(fresh.ok());
    EXPECT_EQ(manager.incremental_refresh_count(), 1u);
    const auto* model = dynamic_cast<const IncrementalEquiDepthModel*>(
        (*fresh)->model.get());
    EXPECT_NE(model, nullptr);
    return model->histogram();
  };
  const Histogram one = run(1);
  const Histogram four = run(4);
  EXPECT_EQ(one.separators(), four.separators());
  EXPECT_EQ(one.counts(), four.counts());
}

TEST(IncrementalManagerTest, InstallSerializedRearmsMaintenance) {
  Table table = MakeTable();
  StatisticsManager source(IncrementalOptions());
  const auto built = source.GetOrBuildShared("t.x", table);
  ASSERT_TRUE(built.ok());
  std::vector<std::uint8_t> bytes;
  SerializeColumnStatistics(**built, &bytes);

  // A fresh manager restored from the catalog never touches the table:
  // the blob's reservoir re-arms maintenance, so DML + EnsureFresh go
  // through the O(Δ) path with zero builds.
  StatisticsManager restored(IncrementalOptions());
  ASSERT_TRUE(restored.InstallSerializedStatistics("t.x", bytes).ok());
  restored.RecordInsert("t.x", 123);
  ASSERT_TRUE(restored.EnsureFresh("t.x", table).ok());
  EXPECT_EQ(restored.rebuild_count(), 0u);
  EXPECT_EQ(restored.incremental_refresh_count(), 1u);
}

TEST(IncrementalManagerTest, DropClearsMaintenanceState) {
  Table table = MakeTable();
  StatisticsManager manager(IncrementalOptions());
  ASSERT_TRUE(manager.GetOrBuild("t.x", table).ok());
  EXPECT_TRUE(manager.Drop("t.x"));
  // DML against the dropped column is ignored; the next access is a
  // plain first build.
  manager.RecordInsert("t.x", 1);
  ASSERT_TRUE(manager.GetOrBuild("t.x", table).ok());
  EXPECT_EQ(manager.rebuild_count(), 2u);
}

}  // namespace
}  // namespace equihist
