// Cross-backend agreement properties: every backend registered in
// HistogramBackendRegistry::Global() — built-ins and externals alike — is
// built from the same sorted sample and must tell the same story: identical
// totals, exact answers on degenerate/full-domain/boundary-aligned queries,
// and interior estimates within the classical k-bucket tolerance. New
// backends inherit these checks for free by registering.

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/distribution.h"
#include "data/value_set.h"
#include "stats/histogram_model.h"

namespace equihist {
namespace {

constexpr std::uint64_t kN = 10000;
constexpr std::uint64_t kBuckets = 20;

// All-distinct uniform data 1..n: every family's linear interpolation is
// near-exact here, so the backends must agree with the truth and with each
// other up to count-apportioning rounding.
std::map<HistogramBackendId, HistogramModelPtr> BuildAllBackends(
    const ValueSet& data) {
  std::map<HistogramBackendId, HistogramModelPtr> models;
  auto& registry = HistogramBackendRegistry::Global();
  const std::vector<Value> sample = {data.sorted_values().begin(),
                                     data.sorted_values().end()};
  for (const HistogramBackendId id : registry.Ids()) {
    const auto backend = registry.Find(id);
    EXPECT_TRUE(backend.ok());
    const auto model = backend->build_from_sample(sample, kBuckets, data.size());
    EXPECT_TRUE(model.ok())
        << backend->name << ": " << model.status().ToString();
    if (model.ok()) models[id] = *model;
  }
  return models;
}

TEST(BackendPropertyTest, AllBackendsReportTheSameTotal) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(kN));
  for (const auto& [id, model] : BuildAllBackends(data)) {
    EXPECT_EQ(model->total(), kN) << static_cast<int>(id);
    EXPECT_GE(model->bucket_count(), 1u) << static_cast<int>(id);
    EXPECT_LT(model->lower_fence(), model->upper_fence())
        << static_cast<int>(id);
  }
}

TEST(BackendPropertyTest, DegenerateQueriesAreExactlyZeroEverywhere) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(kN));
  for (const auto& [id, model] : BuildAllBackends(data)) {
    // hi <= lo and fully out-of-domain queries: exactly zero, any backend.
    EXPECT_EQ(model->EstimateRangeCount({50, 50}), 0.0)
        << static_cast<int>(id);
    EXPECT_EQ(model->EstimateRangeCount({900, 100}), 0.0)
        << static_cast<int>(id);
    EXPECT_EQ(model->EstimateRangeCount(
                  {model->upper_fence() + 1, model->upper_fence() + 500}),
              0.0)
        << static_cast<int>(id);
    EXPECT_EQ(model->EstimateRangeCount(
                  {model->lower_fence() - 500, model->lower_fence()}),
              0.0)
        << static_cast<int>(id);
  }
}

TEST(BackendPropertyTest, FullDomainQueryRecoversTheTotalExactly) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(kN));
  for (const auto& [id, model] : BuildAllBackends(data)) {
    const RangeQuery everything{model->lower_fence(), model->upper_fence()};
    EXPECT_NEAR(model->EstimateRangeCount(everything),
                static_cast<double>(model->total()), 1e-6)
        << static_cast<int>(id);
    EXPECT_NEAR(model->EstimateSelectivity(everything), 1.0, 1e-9)
        << static_cast<int>(id);
  }
}

TEST(BackendPropertyTest, BoundaryAlignedQueriesAgreeAcrossBackends) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(kN));
  const auto models = BuildAllBackends(data);
  // Queries aligned to multiples of n/k land on every family's bucket
  // boundaries for this data; interpolation error vanishes and the only
  // slack left is count-apportioning rounding (≤ 1 tuple per bucket).
  const std::uint64_t step = kN / kBuckets;
  for (std::uint64_t a = 0; a < kN; a += step) {
    for (std::uint64_t b = a + step; b <= kN; b += 5 * step) {
      const RangeQuery q{static_cast<Value>(a), static_cast<Value>(b)};
      const double truth =
          static_cast<double>(data.CountInRange(q.lo, q.hi));
      for (const auto& [id, model] : models) {
        EXPECT_NEAR(model->EstimateRangeCount(q), truth, kBuckets)
            << static_cast<int>(id) << " (" << q.lo << ", " << q.hi << "]";
      }
    }
  }
}

TEST(BackendPropertyTest, InteriorQueriesStayWithinTheBucketTolerance) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(kN));
  const auto models = BuildAllBackends(data);
  // Arbitrary interior endpoints: linear interpolation on uniform data is
  // still near-exact; allow the classical few-buckets-of-slack bound that
  // holds for every family (4n/k is loose even for the incremental GMP
  // snapshot).
  const double tolerance = 4.0 * static_cast<double>(kN) / kBuckets;
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    Value a = rng.NextInRange(1, kN);
    Value b = rng.NextInRange(1, kN);
    if (a > b) std::swap(a, b);
    if (a == b) continue;
    const RangeQuery q{a, b};
    const double truth = static_cast<double>(data.CountInRange(a, b));
    for (const auto& [id, model] : models) {
      EXPECT_NEAR(model->EstimateRangeCount(q), truth, tolerance)
          << static_cast<int>(id) << " (" << a << ", " << b << "]";
    }
  }
}

TEST(BackendPropertyTest, SkewedDataStillSumsAndBounds) {
  // On skewed data the families genuinely differ bucket by bucket, but the
  // global invariants hold for all of them.
  const auto freq = MakeZipf({.n = 50000, .domain_size = 2000, .skew = 1.5});
  const ValueSet data = ValueSet::FromFrequencies(*freq);
  for (const auto& [id, model] : BuildAllBackends(data)) {
    EXPECT_EQ(model->total(), data.size()) << static_cast<int>(id);
    const RangeQuery everything{model->lower_fence(), model->upper_fence()};
    EXPECT_NEAR(model->EstimateRangeCount(everything),
                static_cast<double>(data.size()), 1e-6)
        << static_cast<int>(id);
    // Estimates are never negative and never exceed the total.
    Rng rng(23);
    for (int i = 0; i < 200; ++i) {
      const Value a = rng.NextInRange(-100, 2100);
      const Value b = rng.NextInRange(-100, 2100);
      const double estimate = model->EstimateRangeCount({a, b});
      EXPECT_GE(estimate, 0.0) << static_cast<int>(id);
      EXPECT_LE(estimate, static_cast<double>(data.size()) + 1e-6)
          << static_cast<int>(id);
    }
  }
}

}  // namespace
}  // namespace equihist
