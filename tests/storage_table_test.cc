#include "storage/table.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "data/distribution.h"
#include "data/generator.h"
#include "storage/scan.h"

namespace equihist {
namespace {

TEST(TableTest, CreateFromValuesPacksPages) {
  auto table = Table::CreateFromValues({1, 2, 3, 4, 5}, PageConfig{32, 16});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->tuple_count(), 5u);
  EXPECT_EQ(table->tuples_per_page(), 2u);
  EXPECT_EQ(table->page_count(), 3u);
}

TEST(TableTest, CreateValidatesInput) {
  EXPECT_FALSE(Table::CreateFromValues({}, PageConfig{32, 16}).ok());
  EXPECT_FALSE(Table::CreateFromValues({1}, PageConfig{0, 16}).ok());
  EXPECT_FALSE(Table::CreateFromValues({1}, PageConfig{16, 32}).ok());
}

TEST(TableTest, CreateFromFrequenciesAppliesLayout) {
  const auto freq = MakeUniformDup(100, 10);
  ASSERT_TRUE(freq.ok());
  auto table = Table::Create(*freq, PageConfig{80, 8},
                             {.kind = LayoutKind::kSorted});
  ASSERT_TRUE(table.ok());
  IoStats stats;
  const std::vector<Value> scanned = FullScan(*table, &stats);
  EXPECT_TRUE(std::is_sorted(scanned.begin(), scanned.end()));
  EXPECT_EQ(scanned.size(), 100u);
}

TEST(TableTest, FullScanReadsEveryPageOnce) {
  auto table = Table::CreateFromValues(ExpandSorted(*MakeAllDistinct(1000)),
                                       PageConfig{8192, 64});
  ASSERT_TRUE(table.ok());
  IoStats stats;
  const std::vector<Value> scanned = FullScan(*table, &stats);
  EXPECT_EQ(scanned.size(), 1000u);
  EXPECT_EQ(stats.pages_read, table->page_count());
  EXPECT_EQ(stats.tuples_read, 1000u);
}

TEST(TableTest, FullScanPreservesLayoutOrder) {
  const std::vector<Value> values = {9, 1, 8, 2, 7, 3};
  auto table = Table::CreateFromValues(values, PageConfig{32, 8});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(FullScan(*table, nullptr), values);
}

TEST(TableTest, MoveSemantics) {
  auto table = Table::CreateFromValues({1, 2, 3}, PageConfig{32, 8});
  ASSERT_TRUE(table.ok());
  Table moved = std::move(table).value();
  EXPECT_EQ(moved.tuple_count(), 3u);
}

}  // namespace
}  // namespace equihist
