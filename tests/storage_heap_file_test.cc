#include "storage/heap_file.h"

#include <gtest/gtest.h>

#include "storage/page.h"

namespace equihist {
namespace {

TEST(PageConfigTest, TuplesPerPage) {
  EXPECT_EQ((PageConfig{8192, 64}).TuplesPerPage(), 128u);
  EXPECT_EQ((PageConfig{8192, 16}).TuplesPerPage(), 512u);
  EXPECT_EQ((PageConfig{8192, 128}).TuplesPerPage(), 64u);
  EXPECT_EQ((PageConfig{8192, 100}).TuplesPerPage(), 81u);  // floor division
  EXPECT_EQ((PageConfig{8192, 0}).TuplesPerPage(), 0u);
}

TEST(PageConfigTest, Validation) {
  EXPECT_TRUE(ValidatePageConfig({8192, 64}).ok());
  EXPECT_FALSE(ValidatePageConfig({0, 64}).ok());
  EXPECT_FALSE(ValidatePageConfig({8192, 0}).ok());
  EXPECT_FALSE(ValidatePageConfig({64, 8192}).ok());
  EXPECT_TRUE(ValidatePageConfig({64, 64}).ok());  // one tuple per page
}

TEST(PageTest, AppendUntilFull) {
  Page page(3);
  EXPECT_TRUE(page.empty());
  EXPECT_TRUE(page.Append(1));
  EXPECT_TRUE(page.Append(2));
  EXPECT_TRUE(page.Append(3));
  EXPECT_TRUE(page.full());
  EXPECT_FALSE(page.Append(4));
  EXPECT_EQ(page.size(), 3u);
  EXPECT_EQ(page.at(0), 1);
  EXPECT_EQ(page.at(2), 3);
}

TEST(HeapFileTest, PacksTuplesDensely) {
  HeapFile file(PageConfig{64, 8});  // 8 tuples per page
  for (int i = 0; i < 20; ++i) file.Append(i);
  EXPECT_EQ(file.tuple_count(), 20u);
  EXPECT_EQ(file.page_count(), 3u);  // 8 + 8 + 4
  EXPECT_EQ(file.page(0).size(), 8u);
  EXPECT_EQ(file.page(1).size(), 8u);
  EXPECT_EQ(file.page(2).size(), 4u);
}

TEST(HeapFileTest, PreservesAppendOrder) {
  HeapFile file(PageConfig{32, 8});  // 4 per page
  file.AppendAll({10, 20, 30, 40, 50});
  EXPECT_EQ(file.page(0).at(0), 10);
  EXPECT_EQ(file.page(0).at(3), 40);
  EXPECT_EQ(file.page(1).at(0), 50);
}

TEST(HeapFileTest, ReadPageChargesIo) {
  HeapFile file(PageConfig{32, 8});
  file.AppendAll({1, 2, 3, 4, 5, 6});
  IoStats stats;
  auto page = file.ReadPage(0, &stats);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(stats.pages_read, 1u);
  EXPECT_EQ(stats.tuples_read, 4u);
  page = file.ReadPage(1, &stats);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(stats.pages_read, 2u);
  EXPECT_EQ(stats.tuples_read, 6u);
}

TEST(HeapFileTest, ReadPageNullStatsIsAllowed) {
  HeapFile file(PageConfig{32, 8});
  file.Append(7);
  EXPECT_TRUE(file.ReadPage(0, nullptr).ok());
}

TEST(HeapFileTest, ReadPageOutOfRangeIsNotFound) {
  HeapFile file(PageConfig{32, 8});
  file.Append(7);
  IoStats stats;
  const auto result = file.ReadPage(5, &stats);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(stats.pages_read, 0u);  // failed reads are not charged
}

TEST(IoStatsTest, AccumulateAndReset) {
  IoStats a{2, 10};
  IoStats b{3, 7};
  a += b;
  EXPECT_EQ(a.pages_read, 5u);
  EXPECT_EQ(a.tuples_read, 17u);
  a.Reset();
  EXPECT_EQ(a.pages_read, 0u);
  EXPECT_EQ(a.tuples_read, 0u);
}

}  // namespace
}  // namespace equihist
