// StatisticsFleet tests (DESIGN.md §16): shard routing, the cross-shard
// batch front-end and its group-commit coalescer, bitwise identity with a
// single StatisticsManager, the fleetwire frame protocol (round-trips and
// the byte-level corruption matrix), ServeFrame dispatch, and the metrics
// plane. The concurrency cases run under TSan in CI (label `fleet`).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "data/distribution.h"
#include "query/planner.h"
#include "stats/fleet_wire.h"
#include "stats/statistics_fleet.h"
#include "stats/statistics_manager.h"
#include "storage/fault_injection.h"
#include "storage/table.h"

namespace equihist {
namespace {

constexpr PageConfig kPage{8192, 64};

Table SmallTable(std::uint64_t n = 60000, std::uint64_t seed = 3) {
  const auto freq =
      MakeZipf({.n = n, .domain_size = n / 50, .skew = 1.2, .seed = seed});
  return Table::Create(*freq, kPage,
                       {.kind = LayoutKind::kRandom, .seed = seed})
      .value();
}

StatisticsShard::Options ShardOptions() {
  return {.buckets = 40, .f = 0.25, .seed = 17, .threads = 1};
}

std::vector<std::string> Columns(std::size_t n) {
  std::vector<std::string> columns;
  columns.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    columns.push_back("t.c" + std::to_string(i));
  }
  return columns;
}

std::vector<BatchEstimateRequest> MixedBatch(
    const std::vector<std::string>& columns, const Table& table,
    std::size_t queries_per_column) {
  std::vector<BatchEstimateRequest> requests;
  const auto domain = static_cast<Value>(table.tuple_count() / 50);
  for (std::size_t q = 0; q < queries_per_column; ++q) {
    for (const std::string& column : columns) {  // columns interleaved
      const Value lo = static_cast<Value>(q) * domain / 8;
      requests.push_back({column, {lo, lo + domain / 4}});
    }
  }
  return requests;
}

// -- Routing & bitwise identity ----------------------------------------------

TEST(StatisticsFleetTest, RoutingPartitionsColumnsByFnv1a) {
  StatisticsFleet fleet({.shards = 4, .shard = ShardOptions()});
  ASSERT_EQ(fleet.shard_count(), 4u);
  Table table = SmallTable();
  const auto columns = Columns(16);
  for (const std::string& column : columns) {
    const std::size_t owner = fleet.ShardIndex(column);
    EXPECT_EQ(owner, HashColumnName(column) % 4);
    ASSERT_TRUE(fleet.EnsureFresh(column, table).ok()) << column;
    // The column lives exactly on its owning shard.
    for (std::size_t s = 0; s < fleet.shard_count(); ++s) {
      EXPECT_EQ(fleet.shard(s).Has(column), s == owner) << column;
    }
  }
  EXPECT_EQ(fleet.size(), columns.size());
}

TEST(StatisticsFleetTest, FleetMatchesSingleManagerBitwise) {
  Table table = SmallTable();
  const auto columns = Columns(8);
  const auto requests = MixedBatch(columns, table, 6);

  StatisticsManager manager(ShardOptions());
  ASSERT_TRUE(manager.BuildAll(columns, table).ok());
  BatchEstimateResult expected;
  ASSERT_TRUE(manager.EstimateBatch(table, requests, &expected).ok());

  for (const std::uint64_t shards : {1u, 3u, 4u, 7u}) {
    for (const bool coalesce : {false, true}) {
      StatisticsFleet fleet(
          {.shards = shards, .shard = ShardOptions(), .coalesce = coalesce});
      ASSERT_TRUE(fleet.BuildAll(columns, table).ok());
      BatchEstimateResult got;
      ASSERT_TRUE(fleet.EstimateBatch(table, requests, &got).ok());
      ASSERT_EQ(got.estimates.size(), expected.estimates.size());
      for (std::size_t i = 0; i < expected.estimates.size(); ++i) {
        // Bitwise: build seeds depend only on (seed, column, generation),
        // never on shard placement.
        EXPECT_EQ(got.estimates[i], expected.estimates[i])
            << "shards=" << shards << " coalesce=" << coalesce << " i=" << i;
      }
      // Scalar path agrees too.
      for (const std::string& column : columns) {
        const RangeQuery query{0, static_cast<Value>(table.tuple_count())};
        EXPECT_EQ(*fleet.EstimateRange(column, table, query),
                  *manager.EstimateRange(column, table, query));
      }
    }
  }
}

TEST(StatisticsFleetTest, PlannerFleetOverloadMatchesShardOverload) {
  Table table = SmallTable();
  const auto columns = Columns(5);
  const auto requests = MixedBatch(columns, table, 4);

  StatisticsManager manager(ShardOptions());
  ASSERT_TRUE(manager.BuildAll(columns, table).ok());
  const auto via_shard = ChooseAccessPaths(manager, table, requests,
                                           table.tuples_per_page());
  ASSERT_TRUE(via_shard.ok());

  StatisticsFleet fleet({.shards = 4, .shard = ShardOptions()});
  ASSERT_TRUE(fleet.BuildAll(columns, table).ok());
  const auto via_fleet =
      ChooseAccessPaths(fleet, table, requests, table.tuples_per_page());
  ASSERT_TRUE(via_fleet.ok());

  ASSERT_EQ(via_fleet->size(), via_shard->size());
  for (std::size_t i = 0; i < via_shard->size(); ++i) {
    EXPECT_EQ((*via_fleet)[i].path, (*via_shard)[i].path) << i;
    EXPECT_EQ((*via_fleet)[i].estimated_rows, (*via_shard)[i].estimated_rows)
        << i;
  }
}

TEST(StatisticsFleetTest, BuildAllAggregatesAcrossShardsInInputOrder) {
  Table table = SmallTable();
  StatisticsFleet fleet({.shards = 3, .shard = ShardOptions()});
  const auto columns = Columns(9);
  const auto sweep = fleet.BuildAll(columns, table);
  EXPECT_EQ(sweep.attempted, columns.size());
  EXPECT_EQ(sweep.succeeded, columns.size());
  EXPECT_TRUE(sweep.ok());
  EXPECT_EQ(fleet.size(), columns.size());
  for (const std::string& column : columns) {
    EXPECT_TRUE(fleet.Has(column));
    EXPECT_EQ(fleet.Health(column).health, ColumnHealth::kFresh);
  }
}

// -- Batch edge cases --------------------------------------------------------

TEST(StatisticsFleetTest, EmptyBatchIsOkAndNullResultRejected) {
  Table table = SmallTable();
  StatisticsFleet fleet({.shards = 2, .shard = ShardOptions()});
  BatchEstimateResult result;
  result.estimates = {1.0, 2.0};  // stale contents must be cleared
  EXPECT_TRUE(fleet.EstimateBatch(table, {}, &result).ok());
  EXPECT_TRUE(result.estimates.empty());
  EXPECT_EQ(fleet.EstimateBatch(table, {}, nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(StatisticsFleetTest, NeverBuiltColumnsBuildOnFirstBatch) {
  Table table = SmallTable();
  StatisticsFleet fleet({.shards = 4, .shard = ShardOptions()});
  // Nothing pre-built: the batch itself triggers first-access builds on
  // every owning shard, exactly like EstimateRange would.
  const auto columns = Columns(6);
  const auto requests = MixedBatch(columns, table, 2);
  BatchEstimateResult result;
  ASSERT_TRUE(fleet.EstimateBatch(table, requests, &result).ok());
  ASSERT_EQ(result.estimates.size(), requests.size());
  for (const double estimate : result.estimates) {
    EXPECT_GE(estimate, 0.0);
  }
  EXPECT_EQ(fleet.size(), columns.size());
}

// -- Coalescer ---------------------------------------------------------------

TEST(StatisticsFleetTest, ConcurrentBatchesThroughCoalescerStayCorrect) {
  Table table = SmallTable();
  const auto columns = Columns(6);
  StatisticsFleet fleet({.shards = 2, .shard = ShardOptions()});
  ASSERT_TRUE(fleet.BuildAll(columns, table).ok());

  // Serial ground truth per thread's batch.
  StatisticsManager manager(ShardOptions());
  ASSERT_TRUE(manager.BuildAll(columns, table).ok());

  constexpr int kThreads = 8;
  constexpr int kRounds = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      // Each thread's batch starts at a different column rotation so
      // coalesced waves genuinely mix distinct requests.
      std::vector<std::string> rotated(columns.begin() + t % columns.size(),
                                       columns.end());
      rotated.insert(rotated.end(), columns.begin(),
                     columns.begin() + t % columns.size());
      const auto requests = MixedBatch(rotated, table, 3);
      BatchEstimateResult expected;
      if (!manager.EstimateBatch(table, requests, &expected).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        BatchEstimateResult got;
        if (!fleet.EstimateBatch(table, requests, &got).ok() ||
            got.estimates != expected.estimates) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // Every query was served (coalesced or not — scheduling-dependent).
  EXPECT_GE(fleet.fleet_metrics().counter(metrics::Counter::kEstimateQueries),
            static_cast<std::uint64_t>(kThreads) * kRounds *
                columns.size() * 3);
}

// -- Wire protocol -----------------------------------------------------------

TEST(FleetWireTest, EstimateBatchFramesRoundTrip) {
  fleetwire::EstimateBatchRequestFrame request;
  request.requests = {{"t.a", {-5, 10}},
                      {"t.b", {0, 0}},
                      {"weird \"name\"", {-1000000, 1000000}}};
  const auto bytes = fleetwire::Encode(request);
  ASSERT_EQ(*fleetwire::PeekType(bytes),
            fleetwire::FrameType::kEstimateBatchRequest);
  const auto decoded = fleetwire::DecodeEstimateBatchRequest(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->requests.size(), request.requests.size());
  for (std::size_t i = 0; i < request.requests.size(); ++i) {
    EXPECT_EQ(decoded->requests[i].column, request.requests[i].column);
    EXPECT_EQ(decoded->requests[i].query.lo, request.requests[i].query.lo);
    EXPECT_EQ(decoded->requests[i].query.hi, request.requests[i].query.hi);
  }

  fleetwire::EstimateBatchResponseFrame response;
  response.estimates = {0.0, 123.456, -1.0, 1e18};
  const auto response_bytes = fleetwire::Encode(response);
  const auto response_decoded =
      fleetwire::DecodeEstimateBatchResponse(response_bytes);
  ASSERT_TRUE(response_decoded.ok());
  EXPECT_EQ(response_decoded->estimates, response.estimates);
}

TEST(FleetWireTest, BuildControlAndMetricsFramesRoundTrip) {
  for (const auto op :
       {fleetwire::BuildOp::kEnsureFresh, fleetwire::BuildOp::kDrop,
        fleetwire::BuildOp::kRecordModifications}) {
    fleetwire::BuildControlRequestFrame request{op, "t.col", 4242};
    const auto bytes = fleetwire::Encode(request);
    const auto decoded = fleetwire::DecodeBuildControlRequest(bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->op, op);
    EXPECT_EQ(decoded->column, "t.col");
    if (op == fleetwire::BuildOp::kRecordModifications) {
      EXPECT_EQ(decoded->count, 4242u);
    }
  }

  fleetwire::BuildControlResponseFrame response{StatusCode::kUnavailable,
                                                "page 7 lost"};
  const auto response_bytes = fleetwire::Encode(response);
  const auto response_decoded =
      fleetwire::DecodeBuildControlResponse(response_bytes);
  ASSERT_TRUE(response_decoded.ok());
  EXPECT_EQ(response_decoded->code, StatusCode::kUnavailable);
  EXPECT_EQ(response_decoded->message, "page 7 lost");

  EXPECT_TRUE(
      fleetwire::DecodeMetricsRequest(fleetwire::EncodeMetricsRequest()).ok());
  fleetwire::MetricsResponseFrame metrics{R"({"counters":{}})"};
  const auto metrics_decoded =
      fleetwire::DecodeMetricsResponse(fleetwire::Encode(metrics));
  ASSERT_TRUE(metrics_decoded.ok());
  EXPECT_EQ(metrics_decoded->json, metrics.json);
}

TEST(FleetWireTest, MalformedHeadersAreRejected) {
  const auto good = fleetwire::Encode(fleetwire::EstimateBatchRequestFrame{
      {{"t.a", {0, 5}}}});
  EXPECT_FALSE(fleetwire::PeekType({}).ok());
  auto bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(fleetwire::PeekType(bad_magic).ok());
  auto bad_version = good;
  bad_version[2] = 0x7F;
  EXPECT_FALSE(fleetwire::PeekType(bad_version).ok());
  auto bad_type = good;
  bad_type[3] = 0x63;
  EXPECT_FALSE(fleetwire::PeekType(bad_type).ok());
  // Type confusion: a request decoded as another frame type fails.
  EXPECT_FALSE(fleetwire::DecodeEstimateBatchResponse(good).ok());
  EXPECT_FALSE(fleetwire::DecodeBuildControlRequest(good).ok());
  // Trailing garbage after a complete frame fails.
  auto trailing = good;
  trailing.push_back(0x00);
  EXPECT_FALSE(fleetwire::DecodeEstimateBatchRequest(trailing).ok());
}

TEST(FleetWireTest, CorruptionMatrixNeverCrashesAndTruncationAlwaysFails) {
  fleetwire::EstimateBatchRequestFrame request;
  request.requests = {{"orders.total", {-100, 100}},
                      {"orders.qty", {3, 900000}}};
  const auto frame = fleetwire::Encode(request);

  // Every strict prefix must fail: a frame consumes its buffer exactly.
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(frame.data(), cut);
    const auto decoded = fleetwire::DecodeEstimateBatchRequest(prefix);
    EXPECT_FALSE(decoded.ok()) << "prefix of " << cut << " bytes decoded";
  }

  // Every single-byte mutation either fails cleanly or yields a valid
  // frame (bit flips inside a column name are legitimately undetectable);
  // what it must never do is crash, hang, or read out of bounds — ASan/
  // UBSan in CI give this loop teeth.
  for (std::size_t i = 0; i < frame.size(); ++i) {
    for (const std::uint8_t mutation :
         {static_cast<std::uint8_t>(frame[i] ^ 0x01),
          static_cast<std::uint8_t>(frame[i] ^ 0x80),
          static_cast<std::uint8_t>(frame[i] + 1),
          static_cast<std::uint8_t>(0x00),
          static_cast<std::uint8_t>(0xFF)}) {
      auto mutated = frame;
      mutated[i] = mutation;
      const auto decoded = fleetwire::DecodeEstimateBatchRequest(mutated);
      if (decoded.ok()) {
        EXPECT_LE(decoded->requests.size(), 1000u);  // sane, bounded result
      } else {
        EXPECT_FALSE(decoded.status().message().empty());
      }
    }
  }
}

TEST(FleetWireTest, SeededRandomFuzzSweepOverEveryFrameType) {
  // The systematic matrix above flips one byte at a time; this sweep
  // layers seeded random MULTI-byte mutations over every frame type —
  // the damage a real flaky link inflicts is rarely a single bit. CI
  // drives it with a randomized EQUIHIST_CHAOS_SEED; the seed is printed
  // so any failure replays exactly. ASan/UBSan give the loop teeth.
  std::uint64_t seed = 0xF022ED2026ULL;
  if (const char* env = std::getenv("EQUIHIST_CHAOS_SEED");
      env != nullptr && *env != '\0') {
    seed = std::strtoull(env, nullptr, 10);
  }
  std::cout << "[fuzz] EQUIHIST_CHAOS_SEED=" << seed << std::endl;
  SCOPED_TRACE("EQUIHIST_CHAOS_SEED=" + std::to_string(seed));
  Rng rng(seed);

  // One exemplar frame per type, plus a decoder that must never crash on
  // its mangled bytes (success is fine — some mutations are semantically
  // invisible — but an OK decode must still be internally sane).
  struct FuzzTarget {
    const char* name;
    std::vector<std::uint8_t> frame;
    std::function<Status(std::span<const std::uint8_t>)> decode;
  };
  const std::vector<FuzzTarget> targets = {
      {"estimate-request",
       fleetwire::Encode(fleetwire::EstimateBatchRequestFrame{
           {{"orders.total", {-100, 100}}, {"orders.qty", {3, 900000}}}}),
       [](std::span<const std::uint8_t> b) {
         return fleetwire::DecodeEstimateBatchRequest(b).status();
       }},
      {"estimate-response",
       fleetwire::Encode(
           fleetwire::EstimateBatchResponseFrame{{0.0, 123.456, -1.0, 1e18}}),
       [](std::span<const std::uint8_t> b) {
         return fleetwire::DecodeEstimateBatchResponse(b).status();
       }},
      {"build-request",
       fleetwire::Encode(fleetwire::BuildControlRequestFrame{
           fleetwire::BuildOp::kRecordModifications, "t.col", 4242}),
       [](std::span<const std::uint8_t> b) {
         return fleetwire::DecodeBuildControlRequest(b).status();
       }},
      {"build-response",
       fleetwire::Encode(fleetwire::BuildControlResponseFrame{
           StatusCode::kUnavailable, "page 7 lost"}),
       [](std::span<const std::uint8_t> b) {
         return fleetwire::DecodeBuildControlResponse(b).status();
       }},
      {"metrics-request", fleetwire::EncodeMetricsRequest(),
       [](std::span<const std::uint8_t> b) {
         return fleetwire::DecodeMetricsRequest(b);
       }},
      {"metrics-response",
       fleetwire::Encode(
           fleetwire::MetricsResponseFrame{R"({"counters":{}})"}),
       [](std::span<const std::uint8_t> b) {
         return fleetwire::DecodeMetricsResponse(b).status();
       }},
      {"rejection",
       fleetwire::Encode(fleetwire::RejectionFrame{
           StatusCode::kResourceExhausted, "server work queue full"}),
       [](std::span<const std::uint8_t> b) {
         return fleetwire::DecodeRejection(b).status();
       }},
  };

  constexpr int kMutationsPerFrame = 64;
  for (const FuzzTarget& target : targets) {
    SCOPED_TRACE(target.name);
    for (int round = 0; round < kMutationsPerFrame; ++round) {
      auto mutated = target.frame;
      // 1-4 random positions, each XORed with a random nonzero byte.
      const std::size_t hits = 1 + rng.Next() % 4;
      for (std::size_t h = 0; h < hits; ++h) {
        const std::size_t pos = rng.Next() % mutated.size();
        mutated[pos] ^= static_cast<std::uint8_t>(rng.Next() % 255 + 1);
      }
      // Neither the type peek nor the full decode may crash, hang, or
      // read out of bounds; an error must carry a message.
      const auto peeked = fleetwire::PeekType(mutated);
      const Status decoded = target.decode(mutated);
      if (!decoded.ok()) {
        EXPECT_FALSE(decoded.message().empty())
            << "round " << round << " seed " << seed;
      }
      (void)peeked;
    }
  }
}

// -- ServeFrame --------------------------------------------------------------

TEST(StatisticsFleetTest, ServeFrameAnswersEstimateBatches) {
  Table table = SmallTable();
  const auto columns = Columns(4);
  StatisticsFleet fleet({.shards = 3, .shard = ShardOptions()});
  ASSERT_TRUE(fleet.BuildAll(columns, table).ok());

  fleetwire::EstimateBatchRequestFrame request;
  request.requests = MixedBatch(columns, table, 3);
  const auto reply_bytes =
      fleet.ServeFrame(fleetwire::Encode(request), table);
  ASSERT_TRUE(reply_bytes.ok()) << reply_bytes.status();
  const auto reply = fleetwire::DecodeEstimateBatchResponse(*reply_bytes);
  ASSERT_TRUE(reply.ok());

  BatchEstimateResult direct;
  ASSERT_TRUE(fleet.EstimateBatch(table, request.requests, &direct).ok());
  EXPECT_EQ(reply->estimates, direct.estimates);
  EXPECT_GE(fleet.fleet_metrics().counter(
                metrics::Counter::kWireFramesServed),
            1u);
}

TEST(StatisticsFleetTest, ServeFrameBuildControlOps) {
  Table table = SmallTable();
  StatisticsFleet fleet({.shards = 2, .shard = ShardOptions()});

  // EnsureFresh over the wire builds the column.
  auto reply = fleet.ServeFrame(
      fleetwire::Encode(fleetwire::BuildControlRequestFrame{
          fleetwire::BuildOp::kEnsureFresh, "t.w", 0}),
      table);
  ASSERT_TRUE(reply.ok());
  auto outcome = fleetwire::DecodeBuildControlResponse(*reply);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->code, StatusCode::kOk);
  EXPECT_TRUE(fleet.Has("t.w"));

  // RecordModifications over the wire moves the staleness needle.
  reply = fleet.ServeFrame(
      fleetwire::Encode(fleetwire::BuildControlRequestFrame{
          fleetwire::BuildOp::kRecordModifications, "t.w",
          table.tuple_count()}),
      table);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(fleet.Health("t.w").health, ColumnHealth::kStale);

  // Drop over the wire; dropping again reports kNotFound *inside* the
  // response frame, not as a transport error.
  reply = fleet.ServeFrame(
      fleetwire::Encode(fleetwire::BuildControlRequestFrame{
          fleetwire::BuildOp::kDrop, "t.w", 0}),
      table);
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(fleet.Has("t.w"));
  reply = fleet.ServeFrame(
      fleetwire::Encode(fleetwire::BuildControlRequestFrame{
          fleetwire::BuildOp::kDrop, "t.w", 0}),
      table);
  ASSERT_TRUE(reply.ok());
  outcome = fleetwire::DecodeBuildControlResponse(*reply);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->code, StatusCode::kNotFound);
}

TEST(StatisticsFleetTest, ServeFrameRejectsGarbageAndResponseFrames) {
  Table table = SmallTable();
  StatisticsFleet fleet({.shards = 2, .shard = ShardOptions()});
  const std::vector<std::uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_FALSE(fleet.ServeFrame(garbage, table).ok());
  EXPECT_FALSE(
      fleet
          .ServeFrame(fleetwire::Encode(
                          fleetwire::EstimateBatchResponseFrame{{1.0}}),
                      table)
          .ok());
  EXPECT_GE(fleet.fleet_metrics().counter(
                metrics::Counter::kWireFrameErrors),
            2u);

  // Metrics over the wire still works after errors.
  const auto reply =
      fleet.ServeFrame(fleetwire::EncodeMetricsRequest(), table);
  ASSERT_TRUE(reply.ok());
  const auto metrics_frame = fleetwire::DecodeMetricsResponse(*reply);
  ASSERT_TRUE(metrics_frame.ok());
  EXPECT_NE(metrics_frame->json.find("\"wire_frame_errors\""),
            std::string::npos);
}

// -- Metrics plane -----------------------------------------------------------

TEST(MetricsPlaneTest, BucketsCountersAndJsonShape) {
  metrics::MetricsPlane plane;
  EXPECT_EQ(metrics::MetricsPlane::BucketOf(0), 0u);
  EXPECT_EQ(metrics::MetricsPlane::BucketOf(1), 0u);
  EXPECT_EQ(metrics::MetricsPlane::BucketOf(2), 1u);
  EXPECT_EQ(metrics::MetricsPlane::BucketOf(3), 2u);
  EXPECT_EQ(metrics::MetricsPlane::BucketOf(1'000'000'000),
            metrics::kHistBuckets - 1);

  plane.Increment(metrics::Counter::kEstimateQueries, 5);
  plane.GaugeSet(metrics::Gauge::kQueueDepth, 7);
  plane.Observe(metrics::Hist::kEstimateBatchSize, 3);
  plane.Observe(metrics::Hist::kEstimateBatchSize, 100);
  EXPECT_EQ(plane.counter(metrics::Counter::kEstimateQueries), 5u);
  EXPECT_EQ(plane.gauge(metrics::Gauge::kQueueDepth), 7u);
  EXPECT_EQ(plane.hist_count(metrics::Hist::kEstimateBatchSize), 2u);
  EXPECT_EQ(plane.hist_sum(metrics::Hist::kEstimateBatchSize), 103u);

  const std::string json = plane.ToJson();
  EXPECT_NE(json.find("\"estimate_queries\":5"), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\":7"), std::string::npos);
  EXPECT_NE(json.find("\"estimate_batch_size\":{\"count\":2,\"sum\":103"),
            std::string::npos);
}

TEST(MetricsPlaneTest, ConcurrentUpdatesAreLockFreeAndLossless) {
  metrics::MetricsPlane plane;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&plane]() {
      for (int i = 0; i < kPerThread; ++i) {
        plane.Increment(metrics::Counter::kEstimateQueries);
        plane.Observe(metrics::Hist::kEstimateBatchSize,
                      static_cast<std::uint64_t>(i % 64));
        plane.GaugeAdd(metrics::Gauge::kQueueDepth, 1);
        plane.GaugeAdd(metrics::Gauge::kQueueDepth, -1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(plane.counter(metrics::Counter::kEstimateQueries),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(plane.hist_count(metrics::Hist::kEstimateBatchSize),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(plane.gauge(metrics::Gauge::kQueueDepth), 0u);
}

TEST(StatisticsFleetTest, MetricsJsonCoversFleetAndEveryShard) {
  Table table = SmallTable();
  StatisticsFleet fleet({.shards = 3, .shard = ShardOptions()});
  const auto columns = Columns(6);
  ASSERT_TRUE(fleet.BuildAll(columns, table).ok());
  BatchEstimateResult result;
  ASSERT_TRUE(
      fleet.EstimateBatch(table, MixedBatch(columns, table, 2), &result)
          .ok());
  const std::string json = fleet.MetricsJson();
  EXPECT_NE(json.find("\"fleet\":"), std::string::npos);
  EXPECT_NE(json.find("\"shards\":["), std::string::npos);
  EXPECT_NE(json.find("\"stale\":"), std::string::npos);
  // Shard planes saw the builds the sweep fanned out.
  std::uint64_t builds = 0;
  for (std::size_t s = 0; s < fleet.shard_count(); ++s) {
    builds +=
        fleet.shard(s).metrics().counter(metrics::Counter::kBuildsCompleted);
  }
  EXPECT_EQ(builds, columns.size());
}

// -- Chaos: fleet under injected storage faults ------------------------------

TEST(StatisticsFleetTest, ChaosBuildStormStaysServable) {
  std::uint64_t seed = 0x5EED2026;
  if (const char* env = std::getenv("EQUIHIST_CHAOS_SEED");
      env != nullptr && *env != '\0') {
    seed = std::strtoull(env, nullptr, 10);
  }
  SCOPED_TRACE("EQUIHIST_CHAOS_SEED=" + std::to_string(seed));

  Table table = SmallTable(40000, seed ^ 0x9E3779B9);
  FaultSpec spec;
  spec.transient_probability = 0.15;
  spec.lost_probability = 0.05;
  spec.corrupt_probability = 0.05;
  spec.seed = seed;
  FaultInjector injector(spec);
  table.set_fault_injector(&injector);

  auto shard_options = ShardOptions();
  shard_options.seed = seed;
  StatisticsFleet fleet({.shards = 3,
                         .shard = shard_options,
                         .scheduler = {.max_inflight = 2, .threads = 2}});
  const auto columns = Columns(9);
  for (int wave = 0; wave < 3; ++wave) {
    for (const std::string& column : columns) {
      fleet.RecordModifications(column, 1000);
      fleet.ScheduleBuild("t", column, table);
    }
  }
  fleet.DrainBuilds();

  // Whatever storage did: typed errors only, and every column servable
  // (snapshot, stale snapshot, or the uniform fallback).
  for (const auto& [key, status] : fleet.scheduler().TakeFailures()) {
    EXPECT_TRUE(status.code() == StatusCode::kUnavailable ||
                status.code() == StatusCode::kDataLoss ||
                status.code() == StatusCode::kResourceExhausted)
        << key << ": " << status;
  }
  for (const std::string& column : columns) {
    const auto estimate = fleet.EstimateRange(
        column, table,
        {.lo = 0, .hi = static_cast<Value>(table.tuple_count())});
    ASSERT_TRUE(estimate.ok()) << column;
    EXPECT_GE(*estimate, 0.0);
  }
}

}  // namespace
}  // namespace equihist
