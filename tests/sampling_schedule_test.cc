#include "sampling/schedule.h"

#include <gtest/gtest.h>

namespace equihist {
namespace {

TEST(StepScheduleTest, DoublingMatchesPaperSequence) {
  // Paper 4.2: g_0 = g, g_1 = g, g_2 = 2g, g_3 = 4g, ..., g_i = 2^{i-1} g,
  // i.e. each batch equals the total sampled so far.
  const auto schedule =
      StepSchedule::Create({.kind = ScheduleKind::kDoubling}, 10);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->BatchSize(0), 10u);
  EXPECT_EQ(schedule->BatchSize(1), 10u);
  EXPECT_EQ(schedule->BatchSize(2), 20u);
  EXPECT_EQ(schedule->BatchSize(3), 40u);
  EXPECT_EQ(schedule->BatchSize(10), 10u * 512u);
}

TEST(StepScheduleTest, DoublingBatchEqualsAccumulatedPrefix) {
  const auto schedule =
      StepSchedule::Create({.kind = ScheduleKind::kDoubling}, 7);
  ASSERT_TRUE(schedule.ok());
  std::uint64_t accumulated = schedule->BatchSize(0);
  for (std::uint64_t i = 1; i <= 12; ++i) {
    EXPECT_EQ(schedule->BatchSize(i), accumulated);
    accumulated += schedule->BatchSize(i);
  }
}

TEST(StepScheduleTest, DoublingSaturatesInsteadOfOverflowing) {
  const auto schedule =
      StepSchedule::Create({.kind = ScheduleKind::kDoubling}, 1ULL << 60);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->BatchSize(80), ~0ULL);
}

TEST(StepScheduleTest, LinearIsConstant) {
  const auto schedule =
      StepSchedule::Create({.kind = ScheduleKind::kLinear}, 25);
  ASSERT_TRUE(schedule.ok());
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(schedule->BatchSize(i), 25u);
  }
}

TEST(StepScheduleTest, GeometricGrows) {
  const auto schedule = StepSchedule::Create(
      {.kind = ScheduleKind::kGeometric, .geometric_ratio = 2.0}, 3);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->BatchSize(0), 3u);
  EXPECT_EQ(schedule->BatchSize(1), 6u);
  EXPECT_EQ(schedule->BatchSize(2), 12u);
}

TEST(StepScheduleTest, GeometricNeverReturnsZero) {
  const auto schedule = StepSchedule::Create(
      {.kind = ScheduleKind::kGeometric, .geometric_ratio = 1.1}, 1);
  ASSERT_TRUE(schedule.ok());
  EXPECT_GE(schedule->BatchSize(0), 1u);
  EXPECT_GE(schedule->BatchSize(1), 1u);
}

TEST(StepScheduleTest, Validation) {
  EXPECT_FALSE(StepSchedule::Create({.kind = ScheduleKind::kDoubling}, 0).ok());
  EXPECT_FALSE(
      StepSchedule::Create(
          {.kind = ScheduleKind::kGeometric, .geometric_ratio = 1.0}, 5)
          .ok());
  EXPECT_FALSE(
      StepSchedule::Create(
          {.kind = ScheduleKind::kGeometric, .geometric_ratio = 0.5}, 5)
          .ok());
}

TEST(StepScheduleTest, KindNames) {
  EXPECT_EQ(ScheduleKindToString(ScheduleKind::kDoubling), "doubling");
  EXPECT_EQ(ScheduleKindToString(ScheduleKind::kLinear), "linear");
  EXPECT_EQ(ScheduleKindToString(ScheduleKind::kGeometric), "geometric");
}

TEST(PaperSqrtNTest, MatchesFormula) {
  // 5*sqrt(1,000,000) = 5000 tuples; at 100 tuples/page that is 50 blocks.
  EXPECT_EQ(PaperSqrtNInitialBatchBlocks(1000000, 100), 50u);
  // Rounds up and never returns zero.
  EXPECT_EQ(PaperSqrtNInitialBatchBlocks(100, 1000), 1u);
  EXPECT_EQ(PaperSqrtNInitialBatchBlocks(1000000, 0), 1u);
}

}  // namespace
}  // namespace equihist
