#include "baseline/serial_histograms.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/histogram_builder.h"
#include "data/distribution.h"
#include "data/generator.h"
#include "data/value_set.h"
#include "sampling/row_sampler.h"

namespace equihist {
namespace {

// Brute-force minimum of the V-optimal objective over all partitions of d
// entries into at most k contiguous groups (exponential; tiny inputs only).
double BruteForceVOptimal(const FrequencyVector& freq, std::uint64_t k) {
  const auto& entries = freq.entries();
  const std::size_t d = entries.size();
  double best = 1e300;
  // Each of the d-1 gaps is either a boundary or not; count subsets with
  // at most k-1 boundaries.
  const std::uint32_t masks = 1u << (d - 1);
  for (std::uint32_t mask = 0; mask < masks; ++mask) {
    if (static_cast<std::uint64_t>(__builtin_popcount(mask)) > k - 1) continue;
    double cost = 0.0;
    std::size_t begin = 0;
    for (std::size_t i = 0; i < d; ++i) {
      const bool boundary = (i + 1 == d) || ((mask >> i) & 1u);
      if (!boundary) continue;
      // group [begin..i]
      double sum = 0.0;
      double sq = 0.0;
      for (std::size_t j = begin; j <= i; ++j) {
        const auto f = static_cast<double>(entries[j].count);
        sum += f;
        sq += f * f;
      }
      const double len = static_cast<double>(i - begin + 1);
      cost += sq - sum * sum / len;
      begin = i + 1;
    }
    best = std::min(best, cost);
  }
  return best;
}

TEST(VOptimalTest, MatchesBruteForceOnSmallInputs) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t d = 3 + rng.NextBounded(8);  // 3..10 distinct values
    std::vector<FrequencyEntry> entries;
    for (std::size_t i = 0; i < d; ++i) {
      entries.push_back(FrequencyEntry{static_cast<Value>(i * 3 + 1),
                                       1 + rng.NextBounded(50)});
    }
    FrequencyVector freq(entries);
    const std::uint64_t k = 2 + rng.NextBounded(4);  // 2..5 buckets
    const auto h = BuildVOptimalHistogram(freq, k);
    ASSERT_TRUE(h.ok());
    const double dp_cost = FrequencyVarianceObjective(*h, freq);
    const double brute = BruteForceVOptimal(freq, k);
    EXPECT_NEAR(dp_cost, brute, 1e-6) << "trial " << trial;
  }
}

TEST(VOptimalTest, IsolatesAnOutlierFrequency) {
  // One value is vastly more frequent: with k >= 2 the optimum puts it in
  // its own bucket (within-group variance drops to ~0).
  FrequencyVector freq({{1, 10}, {2, 10}, {3, 10000}, {4, 10}, {5, 10}});
  const auto h = BuildVOptimalHistogram(freq, 3);
  ASSERT_TRUE(h.ok());
  const double objective = FrequencyVarianceObjective(*h, freq);
  EXPECT_LT(objective, 1.0);  // all groups internally uniform
}

TEST(VOptimalTest, CountsSumToN) {
  const auto freq = MakeZipf({.n = 20000, .domain_size = 200, .skew = 1.5});
  const auto h = BuildVOptimalHistogram(*freq, 20);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->total(), 20000u);
  EXPECT_EQ(h->bucket_count(), 20u);
}

TEST(VOptimalTest, KLargerThanDistinctGivesPerBucketValues) {
  FrequencyVector freq({{1, 5}, {9, 7}, {20, 3}});
  const auto h = BuildVOptimalHistogram(freq, 8);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->bucket_count(), 8u);
  std::uint64_t total = 0;
  for (std::uint64_t c : h->counts()) total += c;
  EXPECT_EQ(total, 15u);
  EXPECT_NEAR(FrequencyVarianceObjective(*h, freq), 0.0, 1e-12);
}

TEST(VOptimalTest, ObjectiveNeverWorseThanEquiHeight) {
  const auto freq = MakeZipf({.n = 30000, .domain_size = 300, .skew = 2.0});
  const ValueSet data = ValueSet::FromFrequencies(*freq);
  const std::uint64_t k = 15;
  const auto voptimal = BuildVOptimalHistogram(*freq, k);
  const auto equi_height = BuildPerfectHistogram(data, k);
  ASSERT_TRUE(voptimal.ok());
  ASSERT_TRUE(equi_height.ok());
  EXPECT_LE(FrequencyVarianceObjective(*voptimal, *freq),
            FrequencyVarianceObjective(*equi_height, *freq) + 1e-9);
}

TEST(VOptimalTest, FromSampleScalesToPopulation) {
  const auto freq = MakeZipf({.n = 50000, .domain_size = 200, .skew = 1.0});
  const ValueSet data = ValueSet::FromFrequencies(*freq);
  Rng rng(11);
  auto sample = SampleRowsWithoutReplacement(data.sorted_values(), 5000, rng);
  std::sort(sample->begin(), sample->end());
  const auto h = BuildVOptimalFromSample(*sample, 15, data.size());
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->total(), data.size());
}

TEST(VOptimalTest, Validation) {
  FrequencyVector freq({{1, 5}});
  EXPECT_FALSE(BuildVOptimalHistogram(freq, 0).ok());
  EXPECT_FALSE(BuildVOptimalHistogram(FrequencyVector(), 5).ok());
  EXPECT_FALSE(
      BuildVOptimalFromSample(std::vector<Value>{}, 5, 100).ok());
  EXPECT_FALSE(
      BuildVOptimalFromSample(std::vector<Value>{1}, 5, 0).ok());
}

TEST(MaxDiffTest, BoundariesAtLargestFrequencyJumps) {
  // Frequencies: 10,10,10,500,10,10 -> the two largest diffs straddle the
  // spike, so with k=3 the spike gets its own bucket.
  FrequencyVector freq(
      {{1, 10}, {2, 10}, {3, 10}, {4, 500}, {5, 10}, {6, 10}});
  const auto h = BuildMaxDiffHistogram(freq, 3);
  ASSERT_TRUE(h.ok());
  ASSERT_EQ(h->separators().size(), 2u);
  EXPECT_EQ(h->separators()[0], 3);  // boundary after value 3
  EXPECT_EQ(h->separators()[1], 4);  // boundary after the spike
  EXPECT_EQ(h->counts()[1], 500u);
}

TEST(MaxDiffTest, CountsSumToN) {
  const auto freq = MakeZipf({.n = 20000, .domain_size = 400, .skew = 2.0});
  const auto h = BuildMaxDiffHistogram(*freq, 25);
  ASSERT_TRUE(h.ok());
  std::uint64_t total = 0;
  for (std::uint64_t c : h->counts()) total += c;
  EXPECT_EQ(total, 20000u);
  EXPECT_EQ(h->bucket_count(), 25u);
}

TEST(MaxDiffTest, UniformFrequenciesDegradeGracefully) {
  // All diffs are zero: boundaries are arbitrary but the structure must be
  // valid and complete.
  const auto freq = MakeUniformDup(1000, 20);
  const auto h = BuildMaxDiffHistogram(*freq, 5);
  ASSERT_TRUE(h.ok());
  std::uint64_t total = 0;
  for (std::uint64_t c : h->counts()) total += c;
  EXPECT_EQ(total, 1000u);
}

TEST(MaxDiffTest, FromSampleWorks) {
  const auto freq = MakeZipf({.n = 50000, .domain_size = 300, .skew = 2.0});
  const ValueSet data = ValueSet::FromFrequencies(*freq);
  Rng rng(13);
  auto sample = SampleRowsWithoutReplacement(data.sorted_values(), 5000, rng);
  std::sort(sample->begin(), sample->end());
  const auto h = BuildMaxDiffFromSample(*sample, 20, data.size());
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->total(), data.size());
}

TEST(MaxDiffTest, Validation) {
  EXPECT_FALSE(BuildMaxDiffHistogram(FrequencyVector(), 5).ok());
  FrequencyVector freq({{1, 5}});
  EXPECT_FALSE(BuildMaxDiffHistogram(freq, 0).ok());
}

// Property sweep: both families produce valid histograms whose claimed
// counts sum to n across distributions and bucket counts.
class SerialHistogramPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(SerialHistogramPropertyTest, ValidAndComplete) {
  const auto [skew, k] = GetParam();
  const auto freq =
      MakeZipf({.n = 10000, .domain_size = 150, .skew = skew, .seed = 3});
  for (const auto& h :
       {BuildVOptimalHistogram(*freq, k), BuildMaxDiffHistogram(*freq, k)}) {
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->bucket_count(), k);
    EXPECT_TRUE(std::is_sorted(h->separators().begin(),
                               h->separators().end()));
    std::uint64_t total = 0;
    for (std::uint64_t c : h->counts()) total += c;
    EXPECT_EQ(total, 10000u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SkewsAndBuckets, SerialHistogramPropertyTest,
    ::testing::Combine(::testing::Values(0.0, 1.0, 2.0),
                       ::testing::Values(std::uint64_t{2}, std::uint64_t{10},
                                         std::uint64_t{64})));

}  // namespace
}  // namespace equihist
