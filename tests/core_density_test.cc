#include "core/density.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/distribution.h"
#include "data/generator.h"
#include "data/value_set.h"
#include "sampling/row_sampler.h"

namespace equihist {
namespace {

TEST(DensityTest, AllDistinctIsZero) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(1000));
  EXPECT_DOUBLE_EQ(ComputeDensity(data.sorted_values()), 0.0);
}

TEST(DensityTest, AllIdenticalIsOne) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeConstant(1000, 5));
  EXPECT_DOUBLE_EQ(ComputeDensity(data.sorted_values()), 1.0);
}

TEST(DensityTest, DegenerateSizes) {
  EXPECT_EQ(ComputeDensity({}), 0.0);
  EXPECT_EQ(ComputeDensity(std::vector<Value>{42}), 0.0);
}

TEST(DensityTest, TwoValueExample) {
  // {1, 1, 2, 2}: P(equal pair) = (2*1 + 2*1) / (4*3) = 1/3.
  EXPECT_NEAR(ComputeDensity(std::vector<Value>{1, 1, 2, 2}), 1.0 / 3.0,
              1e-12);
}

TEST(DensityTest, UniformDupMatchesClosedForm) {
  // d values, multiplicity m: density = d*m*(m-1) / (n*(n-1)).
  const std::uint64_t d = 50;
  const std::uint64_t m = 20;
  const std::uint64_t n = d * m;
  const ValueSet data = ValueSet::FromFrequencies(*MakeUniformDup(n, d));
  const double expected = static_cast<double>(d * m * (m - 1)) /
                          static_cast<double>(n * (n - 1));
  EXPECT_NEAR(ComputeDensity(data.sorted_values()), expected, 1e-12);
}

TEST(DensityTest, MoreSkewMeansMoreDensity) {
  auto density_of = [](double skew) {
    const auto freq =
        MakeZipf({.n = 100000, .domain_size = 1000, .skew = skew});
    const ValueSet data = ValueSet::FromFrequencies(*freq);
    return ComputeDensity(data.sorted_values());
  };
  EXPECT_LT(density_of(0.0), density_of(1.0));
  EXPECT_LT(density_of(1.0), density_of(2.0));
  EXPECT_LT(density_of(2.0), density_of(4.0));
}

TEST(DensityTest, SampleEstimateTracksTruth) {
  const auto freq = MakeZipf({.n = 200000, .domain_size = 2000, .skew = 2.0});
  const ValueSet data = ValueSet::FromFrequencies(*freq);
  const double truth = ComputeDensity(data.sorted_values());
  Rng rng(5);
  auto sample =
      SampleRowsWithoutReplacement(data.sorted_values(), 10000, rng);
  ASSERT_TRUE(sample.ok());
  std::sort(sample->begin(), sample->end());
  const double estimate = EstimateDensityFromSample(*sample);
  EXPECT_NEAR(estimate, truth, truth * 0.1);  // within 10% relative
}

}  // namespace
}  // namespace equihist
