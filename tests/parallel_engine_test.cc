// Tests for the parallel histogram-construction engine: the thread pool,
// the parallel sort/merge primitives, and — the load-bearing property —
// bit-identical results at every thread count for a fixed seed.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel_sort.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/cvb.h"
#include "data/distribution.h"
#include "sampling/block_sampler.h"
#include "sampling/sample.h"
#include "stats/column_statistics.h"
#include "storage/scan.h"
#include "storage/table.h"

namespace equihist {
namespace {

constexpr PageConfig kPage{8192, 64};  // 128 tuples per page

Table MakeTable(std::uint64_t n, double skew = 1.0,
                LayoutKind layout = LayoutKind::kRandom,
                std::uint64_t seed = 7) {
  const auto freq =
      MakeZipf({.n = n, .domain_size = n / 20, .skew = skew, .seed = seed});
  return Table::Create(*freq, kPage, {.kind = layout, .seed = seed}).value();
}

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPoolTest, SizeCountsTheCallingThread) {
  ThreadPool solo(1);
  EXPECT_EQ(solo.size(), 1u);
  ThreadPool four(4);
  EXPECT_EQ(four.size(), 4u);
  ThreadPool clamped(0);
  EXPECT_EQ(clamped.size(), 1u);
}

TEST(ThreadPoolTest, SubmitReturnsValues) {
  ThreadPool pool(4);
  auto a = pool.Submit([]() { return 41 + 1; });
  auto b = pool.Submit([]() { return std::string("ok"); });
  EXPECT_EQ(a.get(), 42);
  EXPECT_EQ(b.get(), "ok");
}

TEST(ThreadPoolTest, SubmitRunsInlineOnSizeOnePool) {
  ThreadPool pool(1);
  bool ran = false;
  pool.Submit([&ran]() { ran = true; }).get();
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(0, hits.size(), 64,
                   [&](std::size_t lo, std::size_t hi, std::size_t) {
                     for (std::size_t i = lo; i < hi; ++i) hits[i]++;
                   });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForShardLayoutIndependentOfThreads) {
  // The (lo, hi, shard) triples must depend only on (range, num_shards).
  auto layout_with = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<std::pair<std::size_t, std::size_t>> shards(7);
    pool.ParallelFor(3, 1000, 7,
                     [&](std::size_t lo, std::size_t hi, std::size_t s) {
                       shards[s] = {lo, hi};
                     });
    return shards;
  };
  EXPECT_EQ(layout_with(1), layout_with(4));
  EXPECT_EQ(layout_with(2), layout_with(8));
}

TEST(ThreadPoolTest, ParallelForMoreShardsThanElements) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(0, hits.size(), 16,
                   [&](std::size_t lo, std::size_t hi, std::size_t) {
                     for (std::size_t i = lo; i < hi; ++i) hits[i]++;
                   });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(0, 8, 8, [&](std::size_t lo, std::size_t hi, std::size_t) {
    for (std::size_t i = lo; i < hi; ++i) {
      pool.ParallelFor(0, 16, 4,
                       [&](std::size_t l2, std::size_t h2, std::size_t) {
                         total.fetch_add(static_cast<int>(h2 - l2));
                       });
    }
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ResolveThreadCount(3), 3u);
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_GE(ResolveThreadCount(0), 1u);
}

// --- Parallel sort / merge -------------------------------------------------

std::vector<Value> RandomValues(std::size_t n, std::uint64_t seed,
                                std::uint64_t domain) {
  Rng rng(seed);
  std::vector<Value> v(n);
  for (auto& x : v) {
    x = static_cast<Value>(rng.NextBounded(domain)) - 500;
  }
  return v;
}

TEST(ParallelSortTest, MatchesStdSort) {
  ThreadPool pool(4);
  for (const std::size_t n : {0ul, 1ul, 100ul, 40000ul, 100001ul}) {
    // Heavy duplication (domain 1000) exercises tie handling in the
    // merge-path splits.
    std::vector<Value> a = RandomValues(n, 11 + n, 1000);
    std::vector<Value> b = a;
    std::sort(a.begin(), a.end());
    ParallelSort(b, &pool);
    EXPECT_EQ(a, b) << "n=" << n;
  }
}

TEST(ParallelSortTest, NullPoolFallsBackToSequential) {
  std::vector<Value> v = RandomValues(50000, 3, 1u << 30);
  std::vector<Value> expected = v;
  std::sort(expected.begin(), expected.end());
  ParallelSort(v, nullptr);
  EXPECT_EQ(v, expected);
}

TEST(ParallelMergeTest, MatchesStdMerge) {
  ThreadPool pool(4);
  std::vector<Value> a = RandomValues(60000, 5, 200);
  std::vector<Value> b = RandomValues(35000, 6, 200);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<Value> expected(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
  std::vector<Value> actual(a.size() + b.size());
  ParallelMergeSorted(a.data(), a.size(), b.data(), b.size(), actual.data(),
                      &pool);
  EXPECT_EQ(actual, expected);
}

TEST(ParallelMergeTest, EmptySides) {
  ThreadPool pool(2);
  std::vector<Value> a = {1, 2, 3};
  std::vector<Value> out(3);
  ParallelMergeSorted(a.data(), a.size(), a.data(), 0, out.data(), &pool);
  EXPECT_EQ(out, a);
  ParallelMergeSorted(a.data(), 0, a.data(), a.size(), out.data(), &pool);
  EXPECT_EQ(out, a);
}

TEST(ParallelSortTest, CountDistinctSortedMatchesScan) {
  ThreadPool pool(4);
  std::vector<Value> v = RandomValues(80000, 9, 500);
  std::sort(v.begin(), v.end());
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i == 0 || v[i] != v[i - 1]) ++expected;
  }
  EXPECT_EQ(CountDistinctSorted(v.data(), v.size(), &pool), expected);
  EXPECT_EQ(CountDistinctSorted(v.data(), v.size(), nullptr), expected);
  EXPECT_EQ(CountDistinctSorted(v.data(), 0, &pool), 0u);
}

// --- Deterministic parallel sampling --------------------------------------

TEST(ParallelSamplingTest, IncrementalBatchesIdenticalWithAndWithoutPool) {
  Table table = MakeTable(100000);
  ThreadPool pool(4);
  IncrementalBlockSampler serial(&table, 42);
  IncrementalBlockSampler parallel(&table, 42, &pool);
  IoStats serial_io, parallel_io;
  std::vector<std::size_t> serial_offsets, parallel_offsets;
  for (int round = 0; round < 3; ++round) {
    const auto a = serial.NextBatch(37, &serial_io, &serial_offsets);
    const auto b = parallel.NextBatch(37, &parallel_io, &parallel_offsets);
    EXPECT_EQ(a, b);
    EXPECT_EQ(serial_offsets, parallel_offsets);
  }
  EXPECT_EQ(serial_io.pages_read, parallel_io.pages_read);
  EXPECT_EQ(serial_io.tuples_read, parallel_io.tuples_read);
}

TEST(ParallelSamplingTest, SeededWithReplacementIdenticalAcrossThreadCounts) {
  Table table = MakeTable(80000);
  IoStats io1;
  const auto serial = SampleBlocksWithReplacement(table, 700, /*seed=*/5,
                                                  &io1, nullptr);
  ASSERT_TRUE(serial.ok());
  for (const std::size_t threads : {2ul, 8ul}) {
    ThreadPool pool(threads);
    IoStats io;
    const auto parallel =
        SampleBlocksWithReplacement(table, 700, /*seed=*/5, &io, &pool);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(*serial, *parallel) << "threads=" << threads;
    EXPECT_EQ(io.pages_read, io1.pages_read);
    EXPECT_EQ(io.tuples_read, io1.tuples_read);
  }
}

TEST(ParallelSamplingTest, ParallelFullScanMatchesSequential) {
  Table table = MakeTable(60000);
  ThreadPool pool(4);
  IoStats serial_io, parallel_io;
  const auto serial = FullScan(table, &serial_io);
  const auto parallel = FullScan(table, &parallel_io, &pool);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial_io.pages_read, parallel_io.pages_read);
  EXPECT_EQ(serial_io.tuples_read, parallel_io.tuples_read);
}

TEST(ParallelSamplingTest, DeriveStreamSeedIsStable) {
  EXPECT_EQ(DeriveStreamSeed(1, 0), DeriveStreamSeed(1, 0));
  EXPECT_NE(DeriveStreamSeed(1, 0), DeriveStreamSeed(1, 1));
  EXPECT_NE(DeriveStreamSeed(1, 0), DeriveStreamSeed(2, 0));
}

// --- Sample with pool ------------------------------------------------------

TEST(ParallelSampleTest, PoolSortAndMergeMatchSequential) {
  ThreadPool pool(4);
  std::vector<Value> init = RandomValues(50000, 21, 3000);
  std::vector<Value> batch = RandomValues(30000, 22, 3000);
  Sample serial(init);
  Sample parallel(init, &pool);
  EXPECT_EQ(serial.sorted_values(), parallel.sorted_values());
  serial.Merge(batch);
  parallel.Merge(batch, &pool);
  EXPECT_EQ(serial.sorted_values(), parallel.sorted_values());
  EXPECT_EQ(serial.DistinctCount(), parallel.DistinctCount());
}

// --- End-to-end determinism ------------------------------------------------

// The acceptance property of the parallel engine: same seed => bit-identical
// histogram (separators, counts, fences) and identical sampling trajectory
// at 1, 2, and 8 threads.
TEST(ParallelCvbTest, BitIdenticalAcrossThreadCounts) {
  for (const LayoutKind layout : {LayoutKind::kRandom, LayoutKind::kSorted}) {
    Table table = MakeTable(150000, 1.0, layout);
    CvbOptions options;
    options.k = 64;
    options.f = 0.2;
    options.seed = 99;
    options.threads = 1;
    const auto baseline = RunCvb(table, options);
    ASSERT_TRUE(baseline.ok());
    for (const std::uint64_t threads : {2ull, 8ull}) {
      options.threads = threads;
      const auto result = RunCvb(table, options);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->histogram.separators(),
                baseline->histogram.separators())
          << "threads=" << threads;
      EXPECT_EQ(result->histogram.counts(), baseline->histogram.counts());
      EXPECT_EQ(result->histogram.lower_fence(),
                baseline->histogram.lower_fence());
      EXPECT_EQ(result->histogram.upper_fence(),
                baseline->histogram.upper_fence());
      EXPECT_EQ(result->tuples_sampled, baseline->tuples_sampled);
      EXPECT_EQ(result->blocks_sampled, baseline->blocks_sampled);
      EXPECT_EQ(result->iterations, baseline->iterations);
      EXPECT_EQ(result->sample_distinct, baseline->sample_distinct);
    }
  }
}

TEST(ParallelCvbTest, OneTuplePerBlockAlsoDeterministic) {
  Table table = MakeTable(100000);
  CvbOptions options;
  options.k = 50;
  options.f = 0.25;
  options.style = CvbValidationStyle::kOneTuplePerBlock;
  options.threads = 1;
  const auto a = RunCvb(table, options);
  options.threads = 4;
  const auto b = RunCvb(table, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->histogram.separators(), b->histogram.separators());
  EXPECT_EQ(a->histogram.counts(), b->histogram.counts());
  EXPECT_EQ(a->tuples_sampled, b->tuples_sampled);
}

TEST(ParallelCvbTest, ExternalPoolMatchesOwnedPool) {
  Table table = MakeTable(80000);
  CvbOptions options;
  options.k = 40;
  options.f = 0.25;
  options.threads = 3;
  const auto owned = RunCvb(table, options);
  ThreadPool pool(3);
  const auto external = RunCvb(table, options, &pool);
  ASSERT_TRUE(owned.ok());
  ASSERT_TRUE(external.ok());
  EXPECT_EQ(owned->histogram.separators(), external->histogram.separators());
  EXPECT_EQ(owned->histogram.counts(), external->histogram.counts());
}

TEST(ParallelStatsBuildTest, FullScanBuildIdenticalAcrossThreadCounts) {
  Table table = MakeTable(120000, 1.5);
  const auto serial = BuildStatisticsFullScan(table, 64);
  ASSERT_TRUE(serial.ok());
  for (const std::size_t threads : {2ul, 8ul}) {
    ThreadPool pool(threads);
    const auto parallel = BuildStatisticsFullScan(table, 64, &pool);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->histogram().separators(),
              serial->histogram().separators());
    EXPECT_EQ(parallel->histogram().counts(), serial->histogram().counts());
    EXPECT_EQ(parallel->row_count, serial->row_count);
    EXPECT_DOUBLE_EQ(parallel->distinct_estimate, serial->distinct_estimate);
    EXPECT_EQ(parallel->build_cost.pages_read, serial->build_cost.pages_read);
  }
}

}  // namespace
}  // namespace equihist
