#include "core/range_estimator.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/error_metrics.h"
#include "core/histogram_builder.h"
#include "data/distribution.h"
#include "data/value_set.h"
#include "data/workload.h"
#include "sampling/row_sampler.h"

namespace equihist {
namespace {

// Uniform data 1..1000 with a perfect 10-bucket histogram: buckets (0,100],
// (100,200], ... with exact counts.
struct UniformFixture {
  UniformFixture()
      : data(ValueSet::FromFrequencies(*MakeAllDistinct(1000))),
        histogram(BuildPerfectHistogram(data, 10).value()) {}
  ValueSet data;
  Histogram histogram;
};

TEST(RangeEstimatorTest, ExactOnBucketAlignedQueries) {
  UniformFixture fx;
  // (100, 300] covers buckets 2 and 3 exactly: 200 tuples.
  EXPECT_DOUBLE_EQ(EstimateRangeCount(fx.histogram, {100, 300}), 200.0);
  // Whole domain.
  EXPECT_DOUBLE_EQ(EstimateRangeCount(fx.histogram, {0, 1000}), 1000.0);
}

TEST(RangeEstimatorTest, InterpolatesPartialBuckets) {
  UniformFixture fx;
  // (150, 250]: half of bucket 2 (50) + half of bucket 3 (50).
  EXPECT_NEAR(EstimateRangeCount(fx.histogram, {150, 250}), 100.0, 1e-9);
  // (120, 130]: a tenth of one bucket.
  EXPECT_NEAR(EstimateRangeCount(fx.histogram, {120, 130}), 10.0, 1e-9);
}

TEST(RangeEstimatorTest, UniformDataInterpolationIsNearExact) {
  UniformFixture fx;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const Value lo = rng.NextInRange(0, 999);
    const Value hi = rng.NextInRange(static_cast<std::int64_t>(lo) + 1, 1000);
    const double estimate = EstimateRangeCount(fx.histogram, {lo, hi});
    const double actual = static_cast<double>(fx.data.CountInRange(lo, hi));
    EXPECT_NEAR(estimate, actual, 1.0) << lo << " " << hi;
  }
}

TEST(RangeEstimatorTest, ClampsQueriesOutsideDomain) {
  UniformFixture fx;
  EXPECT_DOUBLE_EQ(EstimateRangeCount(fx.histogram, {-500, 2000}), 1000.0);
  EXPECT_DOUBLE_EQ(EstimateRangeCount(fx.histogram, {2000, 3000}), 0.0);
  EXPECT_DOUBLE_EQ(EstimateRangeCount(fx.histogram, {-10, -5}), 0.0);
}

TEST(RangeEstimatorTest, EmptyAndReversedRanges) {
  UniformFixture fx;
  EXPECT_DOUBLE_EQ(EstimateRangeCount(fx.histogram, {500, 500}), 0.0);
  EXPECT_DOUBLE_EQ(EstimateRangeCount(fx.histogram, {600, 400}), 0.0);
}

TEST(RangeEstimatorTest, ZeroWidthBucketsContributeAllOrNothing) {
  // Bucket (5,5] holds a 400-tuple spike at value 5.
  const auto h =
      Histogram::Create({5, 5, 10}, {100, 400, 100, 100}, 0, 20).value();
  EXPECT_DOUBLE_EQ(EstimateRangeCount(h, {4, 5}),
                   100.0 / 5.0 * 1.0 + 400.0);  // part of (0,5] + spike
  EXPECT_DOUBLE_EQ(EstimateRangeCount(h, {5, 20}), 200.0);  // excludes spike
  EXPECT_DOUBLE_EQ(EstimateRangeCount(h, {0, 20}), 700.0);
}

TEST(RangeEstimatorTest, SelectivityNormalizes) {
  UniformFixture fx;
  EXPECT_NEAR(EstimateRangeSelectivity(fx.histogram, {0, 500}), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(EstimateRangeSelectivity(fx.histogram, {0, 1000}), 1.0);
}

TEST(RangeEstimatorTest, TheoremBoundFormulas) {
  EXPECT_DOUBLE_EQ(PerfectHistogramAbsoluteErrorBound(1000, 10), 200.0);
  EXPECT_DOUBLE_EQ(MaxErrorHistogramAbsoluteErrorBound(1000, 10, 0.5), 300.0);
  // Theorem 1.2 with f = 0.05, k = 1000: factor 1 + 0.05*250 = 13.5 — the
  // Example 1 multiplicative blow-up.
  EXPECT_NEAR(AvgErrorHistogramAbsoluteErrorFloor(1000000, 1000, 0.05) /
                  PerfectHistogramAbsoluteErrorBound(1000000, 1000),
              13.5, 1e-9);
  // Theorem 1.3 with f = 0.05, k = 1000, t = 10: factor 1 + 0.05*sqrt(1250)
  // ~= 2.77 — Example 1's 2.8.
  EXPECT_NEAR(VarErrorHistogramAbsoluteErrorFloor(1000000, 1000, 0.05, 10.0) /
                  PerfectHistogramAbsoluteErrorBound(1000000, 1000),
              2.77, 0.05);
}

TEST(RangeEstimatorTest, PerfectHistogramRespectsTheorem1Bound) {
  // Empirical check of Theorem 1.1/3: with a perfect histogram the absolute
  // estimation error never exceeds 2n/k (+1 for integer-boundary slack) on
  // uniform data.
  UniformFixture fx;
  ValueSet& data = fx.data;
  RangeWorkloadGenerator gen(&data, 17);
  const auto queries = gen.UniformRanges(500);
  const auto report = EvaluateRangeWorkload(fx.histogram, queries, data);
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->max_absolute_error,
            PerfectHistogramAbsoluteErrorBound(1000, 10) + 1.0);
}

TEST(RangeEstimatorTest, SampledHistogramRespectsTheorem3BoundOnZipf) {
  // Build an approximate histogram from a sample of Zipf data and check
  // Theorem 3's guarantee using the measured f_max.
  const auto freq = MakeZipf({.n = 100000, .domain_size = 2000, .skew = 1.0});
  ASSERT_TRUE(freq.ok());
  ValueSet data = ValueSet::FromFrequencies(*freq);
  Rng rng(7);
  auto sample = SampleRowsWithoutReplacement(data.sorted_values(), 20000, rng);
  ASSERT_TRUE(sample.ok());
  std::sort(sample->begin(), sample->end());
  const std::uint64_t k = 50;
  const auto approx = BuildHistogramFromSample(*sample, k, data.size());
  ASSERT_TRUE(approx.ok());

  // Measured max error of the approximate histogram.
  const auto counts = approx->PartitionCounts(data);
  double f_max = 0.0;
  const double ideal = static_cast<double>(data.size()) / static_cast<double>(k);
  for (auto c : counts) {
    f_max = std::max(f_max, std::abs(static_cast<double>(c) - ideal) / ideal);
  }

  RangeWorkloadGenerator gen(&data, 23);
  const auto queries = gen.UniformRanges(300);
  const auto report = EvaluateRangeWorkload(*approx, queries, data);
  ASSERT_TRUE(report.ok());
  // Theorem 3: absolute error <= (1 + f) * 2n/k. Interpolation inside
  // buckets assumes uniform spread, which Zipf data violates; allow the
  // bound itself (no slack needed empirically, but keep 5%).
  const double bound =
      MaxErrorHistogramAbsoluteErrorBound(data.size(), k, f_max);
  EXPECT_LE(report->max_absolute_error, bound * 1.05);
}

// Theorem 3, literally: for a histogram with measured max error f = fn/k,
// every range query of output size s = t*n/k is estimated within
// (1+f)*2n/k absolute and (1+f)*2/t relative. Swept over output sizes t
// and sample sizes.
class Theorem3SweepTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(Theorem3SweepTest, BoundHoldsForAllOutputSizes) {
  const auto [t, r] = GetParam();
  const std::uint64_t n = 100000;
  const std::uint64_t k = 40;
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(n));
  Rng rng(101 + static_cast<std::uint64_t>(t) + r);
  auto sample = SampleRowsWithoutReplacement(data.sorted_values(), r, rng);
  ASSERT_TRUE(sample.ok());
  std::sort(sample->begin(), sample->end());
  const auto h = BuildHistogramFromSample(*sample, k, n);
  ASSERT_TRUE(h.ok());
  const auto errors = ComputeHistogramErrors(*h, data);
  ASSERT_TRUE(errors.ok());
  const double f = errors->f_max;

  RangeWorkloadGenerator gen(&data, 7);
  const std::uint64_t s = static_cast<std::uint64_t>(t) * n / k;
  const auto queries = gen.FixedSelectivityRanges(100, s);
  ASSERT_TRUE(queries.ok());
  const double abs_bound = MaxErrorHistogramAbsoluteErrorBound(n, k, f);
  const double rel_bound = (1.0 + f) * 2.0 / static_cast<double>(t);
  for (const RangeQuery& q : *queries) {
    const double estimate = EstimateRangeCount(*h, q);
    const auto actual = static_cast<double>(data.CountInRange(q.lo, q.hi));
    const double abs_err = std::abs(estimate - actual);
    EXPECT_LE(abs_err, abs_bound + 1.0) << "t=" << t << " r=" << r;
    EXPECT_LE(abs_err / actual, rel_bound + 1e-3) << "t=" << t << " r=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OutputSizesAndSamples, Theorem3SweepTest,
    ::testing::Combine(::testing::Values(1, 2, 5, 10),
                       ::testing::Values(std::uint64_t{2000},
                                         std::uint64_t{10000},
                                         std::uint64_t{50000})));

TEST(EvaluateRangeWorkloadTest, ReportsMeansAndMaxima) {
  UniformFixture fx;
  const std::vector<RangeQuery> queries = {{0, 100}, {0, 150}, {100, 101}};
  const auto report = EvaluateRangeWorkload(fx.histogram, queries, fx.data);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->query_count, 3u);
  EXPECT_EQ(report->relative_query_count, 3u);
  EXPECT_GE(report->max_absolute_error, report->mean_absolute_error);
  EXPECT_GE(report->max_relative_error, report->mean_relative_error);
}

TEST(EvaluateRangeWorkloadTest, SkipsZeroOutputQueriesForRelativeError) {
  UniformFixture fx;
  const std::vector<RangeQuery> queries = {{5000, 6000}};
  const auto report = EvaluateRangeWorkload(fx.histogram, queries, fx.data);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->query_count, 1u);
  EXPECT_EQ(report->relative_query_count, 0u);
}

TEST(EvaluateRangeWorkloadTest, RejectsEmptyTruth) {
  UniformFixture fx;
  EXPECT_FALSE(
      EvaluateRangeWorkload(fx.histogram, std::vector<RangeQuery>{}, ValueSet())
          .ok());
}

}  // namespace
}  // namespace equihist
