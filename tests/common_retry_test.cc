#include "common/retry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace equihist {
namespace {

TEST(RetryPolicyTest, BackoffDoublesAndSaturates) {
  RetryPolicy policy;
  policy.base_backoff_micros = 100;
  policy.max_backoff_micros = 1'000;
  // base << (retry - 1), capped: 100, 200, 400, 800, 1000, 1000, ...
  EXPECT_EQ(policy.BackoffMicros(1), 100u);
  EXPECT_EQ(policy.BackoffMicros(2), 200u);
  EXPECT_EQ(policy.BackoffMicros(3), 400u);
  EXPECT_EQ(policy.BackoffMicros(4), 800u);
  EXPECT_EQ(policy.BackoffMicros(5), 1'000u);
  EXPECT_EQ(policy.BackoffMicros(6), 1'000u);
}

TEST(RetryPolicyTest, ZeroBaseMeansImmediateRetries) {
  RetryPolicy policy;  // base_backoff_micros = 0 by default
  for (std::uint32_t retry = 0; retry < 10; ++retry) {
    EXPECT_EQ(policy.BackoffMicros(retry), 0u);
  }
}

TEST(RetryPolicyTest, BackoffIsDeterministic) {
  RetryPolicy policy;
  policy.base_backoff_micros = 7;
  policy.max_backoff_micros = 10'000;
  std::vector<std::uint64_t> first, second;
  for (std::uint32_t retry = 1; retry <= 16; ++retry) {
    first.push_back(policy.BackoffMicros(retry));
    second.push_back(policy.BackoffMicros(retry));
  }
  EXPECT_EQ(first, second);  // pure function of the attempt number
}

TEST(RetryPolicyTest, HugeShiftSaturatesWithoutOverflow) {
  RetryPolicy policy;
  policy.base_backoff_micros = 1;
  policy.max_backoff_micros = 5'000;
  EXPECT_EQ(policy.BackoffMicros(64), 5'000u);
  EXPECT_EQ(policy.BackoffMicros(200), 5'000u);
}

TEST(RetryPolicyTest, ZeroAttemptsBehavesAsOne) {
  RetryPolicy policy;
  policy.max_attempts = 0;
  EXPECT_EQ(policy.EffectiveAttempts(), 1u);
}

TEST(RetryTransientTest, RetriesTransientUntilSuccess) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  int calls = 0;
  std::uint64_t retries = 0;
  const Status result = RetryTransient(
      policy,
      [&]() -> Status {
        ++calls;
        return calls < 3 ? Status::Unavailable("blip") : Status::OK();
      },
      &retries);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
}

TEST(RetryTransientTest, StopsAtAttemptBudget) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  std::uint64_t retries = 0;
  const Status result = RetryTransient(
      policy, [&]() -> Status { ++calls; return Status::Unavailable("down"); },
      &retries);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
}

TEST(RetryTransientTest, PermanentErrorsAreNotRetried) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  int calls = 0;
  std::uint64_t retries = 0;
  const Status result = RetryTransient(
      policy, [&]() -> Status { ++calls; return Status::DataLoss("gone"); },
      &retries);
  EXPECT_EQ(result.code(), StatusCode::kDataLoss);
  EXPECT_EQ(calls, 1);  // kDataLoss fails immediately
  EXPECT_EQ(retries, 0u);
}

TEST(RetryTransientTest, WorksWithResultValues) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  int calls = 0;
  const Result<int> result = RetryTransient(policy, [&]() -> Result<int> {
    ++calls;
    if (calls < 2) return Status::Unavailable("blip");
    return 42;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(calls, 2);
}

TEST(RetryTransientTest, SingleAttemptDisablesRetrying) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  int calls = 0;
  const Status result = RetryTransient(
      policy, [&]() -> Status { ++calls; return Status::Unavailable("down"); });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTransientTest, NullRetryCounterIsAllowed) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  int calls = 0;
  const Status result = RetryTransient(policy, [&]() -> Status {
    ++calls;
    return calls < 2 ? Status::Unavailable("blip") : Status::OK();
  });
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace equihist
