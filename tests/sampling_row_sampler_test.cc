#include "sampling/row_sampler.h"

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/math.h"
#include "data/distribution.h"
#include "data/generator.h"
#include "storage/table.h"

namespace equihist {
namespace {

std::vector<Value> Iota(std::uint64_t n) {
  std::vector<Value> values(n);
  for (std::uint64_t i = 0; i < n; ++i) values[i] = static_cast<Value>(i);
  return values;
}

TEST(RowSamplerTest, WithReplacementSizeAndMembership) {
  const std::vector<Value> population = Iota(100);
  Rng rng(1);
  const auto sample = SampleRowsWithReplacement(population, 250, rng);
  EXPECT_EQ(sample.size(), 250u);
  for (Value v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RowSamplerTest, WithReplacementCanExceedPopulation) {
  const std::vector<Value> population = Iota(10);
  Rng rng(2);
  EXPECT_EQ(SampleRowsWithReplacement(population, 100, rng).size(), 100u);
}

TEST(RowSamplerTest, WithoutReplacementIsSubMultiset) {
  const std::vector<Value> population = Iota(1000);
  Rng rng(3);
  const auto sample = SampleRowsWithoutReplacement(population, 100, rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->size(), 100u);
  // Distinct population => sample has no repeats.
  std::vector<Value> sorted = *sample;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(RowSamplerTest, WithoutReplacementLargeFractionUsesSequentialPath) {
  const std::vector<Value> population = Iota(100);
  Rng rng(4);
  const auto sample = SampleRowsWithoutReplacement(population, 90, rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->size(), 90u);
  std::vector<Value> sorted = *sample;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(RowSamplerTest, WithoutReplacementFullPopulation) {
  const std::vector<Value> population = Iota(50);
  Rng rng(5);
  auto sample = SampleRowsWithoutReplacement(population, 50, rng);
  ASSERT_TRUE(sample.ok());
  std::sort(sample->begin(), sample->end());
  EXPECT_EQ(*sample, population);
}

TEST(RowSamplerTest, WithoutReplacementZero) {
  const std::vector<Value> population = Iota(50);
  Rng rng(6);
  const auto sample = SampleRowsWithoutReplacement(population, 0, rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_TRUE(sample->empty());
}

TEST(RowSamplerTest, WithoutReplacementRejectsOversample) {
  const std::vector<Value> population = Iota(10);
  Rng rng(7);
  EXPECT_FALSE(SampleRowsWithoutReplacement(population, 11, rng).ok());
}

TEST(RowSamplerTest, WithoutReplacementUniformityChiSquare) {
  // Each of 20 elements should appear in a 5-element sample with p=1/4.
  const std::vector<Value> population = Iota(20);
  std::map<Value, std::uint64_t> hits;
  Rng rng(8);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    const auto sample = SampleRowsWithoutReplacement(population, 5, rng);
    ASSERT_TRUE(sample.ok());
    for (Value v : *sample) ++hits[v];
  }
  std::vector<std::uint64_t> observed;
  std::vector<double> expected;
  for (Value v = 0; v < 20; ++v) {
    observed.push_back(hits[v]);
    expected.push_back(trials * 5.0 / 20.0);
  }
  const double stat = ChiSquareStatistic(observed, expected);
  EXPECT_LT(stat, ChiSquareCriticalValue(19.0, 0.001));
}

TEST(RowSamplerTest, BernoulliRespectsRate) {
  const std::vector<Value> population = Iota(20000);
  Rng rng(9);
  const auto sample = SampleRowsBernoulli(population, 0.1, rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_NEAR(static_cast<double>(sample->size()), 2000.0, 200.0);
}

TEST(RowSamplerTest, BernoulliEdgeRates) {
  const std::vector<Value> population = Iota(100);
  Rng rng(10);
  EXPECT_EQ(SampleRowsBernoulli(population, 0.0, rng)->size(), 0u);
  EXPECT_EQ(SampleRowsBernoulli(population, 1.0, rng)->size(), 100u);
  EXPECT_FALSE(SampleRowsBernoulli(population, 1.5, rng).ok());
  EXPECT_FALSE(SampleRowsBernoulli(population, -0.5, rng).ok());
}

TEST(RowSamplerTest, FromTableChargesOnePagePerTuple) {
  auto table = Table::CreateFromValues(Iota(1000), PageConfig{8192, 64});
  ASSERT_TRUE(table.ok());
  Rng rng(11);
  IoStats stats;
  const auto sample = SampleRowsFromTable(*table, 50, rng, &stats);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->size(), 50u);
  // Record-level sampling against pages is the expensive path: at least one
  // page read per tuple (rejection on the ragged last page may add a few).
  EXPECT_GE(stats.pages_read, 50u);
  EXPECT_LE(stats.pages_read, 60u);
}

TEST(ReservoirSamplerTest, KeepsEverythingUnderCapacity) {
  ReservoirSampler sampler(10, 1);
  for (Value v = 0; v < 5; ++v) sampler.Add(v);
  EXPECT_EQ(sampler.sample().size(), 5u);
  EXPECT_EQ(sampler.seen(), 5u);
}

TEST(ReservoirSamplerTest, CapsAtCapacity) {
  ReservoirSampler sampler(10, 2);
  for (Value v = 0; v < 1000; ++v) sampler.Add(v);
  EXPECT_EQ(sampler.sample().size(), 10u);
  EXPECT_EQ(sampler.seen(), 1000u);
}

TEST(ReservoirSamplerTest, UniformInclusionProbability) {
  // Every element of a 40-element stream should end up in a 10-slot
  // reservoir with probability 1/4.
  std::map<Value, std::uint64_t> hits;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    ReservoirSampler sampler(10, 100 + t);
    for (Value v = 0; v < 40; ++v) sampler.Add(v);
    for (Value v : sampler.sample()) ++hits[v];
  }
  std::vector<std::uint64_t> observed;
  std::vector<double> expected;
  for (Value v = 0; v < 40; ++v) {
    observed.push_back(hits[v]);
    expected.push_back(trials * 0.25);
  }
  EXPECT_LT(ChiSquareStatistic(observed, expected),
            ChiSquareCriticalValue(39.0, 0.001));
}

}  // namespace
}  // namespace equihist
