// End-to-end fault-tolerance tests (DESIGN.md §11): the fault matrix
// {transient, lost, corrupt, latency} x {CVB build, BuildAll fan-out,
// EnsureFresh rebuild, deserialize-then-serve}, the CVB fault budget and
// exhaustion errors, degraded serving (stale-while-error, uniform
// fallback, circuit breaker, quarantine), and a randomized chaos run
// driven by EQUIHIST_CHAOS_SEED. Everything runs with pinned seeds; the
// chaos test prints its seed so any failure is reproducible.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/cvb.h"
#include "data/distribution.h"
#include "stats/histogram_backends.h"
#include "stats/serialization.h"
#include "stats/statistics_manager.h"
#include "storage/fault_injection.h"
#include "storage/table.h"

namespace equihist {
namespace {

// 16 tuples per page: enough pages that probabilistic fault specs hit a
// healthy share of any sampled batch.
constexpr PageConfig kPage{1024, 64};

Table MakeTable(std::uint64_t n = 60000, std::uint64_t seed = 5,
                LayoutKind layout = LayoutKind::kRandom) {
  const auto freq =
      MakeZipf({.n = n, .domain_size = n / 30, .skew = 1.2, .seed = seed});
  return Table::Create(*freq, kPage, {.kind = layout, .seed = seed}).value();
}

// -- Fault matrix -------------------------------------------------------------

enum class FaultFlavor { kTransient, kLost, kCorrupt, kLatency };
enum class FaultScenario {
  kCvbBuild,
  kBuildAllFanOut,
  kEnsureFreshRebuild,
  kDeserializeThenServe,
};

const char* FlavorName(FaultFlavor flavor) {
  switch (flavor) {
    case FaultFlavor::kTransient: return "Transient";
    case FaultFlavor::kLost: return "Lost";
    case FaultFlavor::kCorrupt: return "Corrupt";
    case FaultFlavor::kLatency: return "Latency";
  }
  return "?";
}

const char* ScenarioName(FaultScenario scenario) {
  switch (scenario) {
    case FaultScenario::kCvbBuild: return "CvbBuild";
    case FaultScenario::kBuildAllFanOut: return "BuildAllFanOut";
    case FaultScenario::kEnsureFreshRebuild: return "EnsureFreshRebuild";
    case FaultScenario::kDeserializeThenServe: return "DeserializeThenServe";
  }
  return "?";
}

FaultSpec MatrixSpec(FaultFlavor flavor, std::uint64_t seed) {
  FaultSpec spec;
  spec.seed = seed;
  switch (flavor) {
    case FaultFlavor::kTransient:
      spec.transient_probability = 0.25;
      spec.transient_failures_per_page = 1;
      break;
    case FaultFlavor::kLost:
      // Low enough that a full CVB run (~1200 blocks at these options)
      // stays inside the default 64-block fault budget.
      spec.lost_probability = 0.03;
      break;
    case FaultFlavor::kCorrupt:
      spec.corrupt_probability = 0.03;
      break;
    case FaultFlavor::kLatency:
      spec.latency_probability = 0.5;
      spec.latency_micros = 1;
      break;
  }
  return spec;
}

class FaultMatrixTest
    : public ::testing::TestWithParam<std::tuple<FaultFlavor, FaultScenario>> {
};

TEST_P(FaultMatrixTest, BuildsAndServesThroughInjectedFaults) {
  const auto [flavor, scenario] = GetParam();
  Table table = MakeTable();
  FaultInjector injector(MatrixSpec(flavor, /*seed=*/41));

  switch (scenario) {
    case FaultScenario::kCvbBuild: {
      // Reference run on healthy storage, then the same pinned-seed run
      // with faults injected.
      CvbOptions options;
      options.k = 40;
      options.f = 0.15;
      options.seed = 11;
      options.threads = 1;
      // A faulty run reads a few thousand blocks (skips are replaced with
      // fresh draws); give the budget the same headroom a deployment
      // tolerating ~3% bad media would.
      options.max_skipped_blocks = 256;
      const auto clean = RunCvb(table, options);
      ASSERT_TRUE(clean.ok());
      table.set_fault_injector(&injector);
      const auto faulty = RunCvb(table, options);
      ASSERT_TRUE(faulty.ok()) << faulty.status();
      EXPECT_EQ(faulty->histogram.bucket_count(), 40u);
      EXPECT_GT(faulty->tuples_sampled, 0u);
      EXPECT_EQ(faulty->blocks_skipped, faulty->io.pages_skipped);
      switch (flavor) {
        case FaultFlavor::kTransient:
          // Every fault was retried away: no page was replaced, so the
          // sample — and the histogram — is identical to the clean run.
          EXPECT_GT(faulty->io.transient_retries, 0u);
          EXPECT_EQ(faulty->io.pages_skipped, 0u);
          EXPECT_EQ(faulty->histogram.separators(),
                    clean->histogram.separators());
          break;
        case FaultFlavor::kLost:
          EXPECT_GT(faulty->io.pages_skipped, 0u);
          break;
        case FaultFlavor::kCorrupt:
          EXPECT_GT(faulty->io.pages_corrupt, 0u);
          EXPECT_GE(faulty->io.pages_skipped, faulty->io.pages_corrupt);
          break;
        case FaultFlavor::kLatency:
          EXPECT_GT(injector.latency_injected(), 0u);
          EXPECT_EQ(faulty->io.pages_skipped, 0u);
          EXPECT_EQ(faulty->histogram.separators(),
                    clean->histogram.separators());
          break;
      }
      break;
    }

    case FaultScenario::kBuildAllFanOut: {
      table.set_fault_injector(&injector);
      StatisticsManager manager(
          {.buckets = 30, .f = 0.2, .seed = 9, .threads = 2});
      const std::vector<std::string> columns = {"a", "b", "c"};
      const auto result = manager.BuildAll(columns, table);
      EXPECT_TRUE(result.ok()) << result.status();
      EXPECT_EQ(result.succeeded, columns.size());
      for (const auto& column : columns) {
        EXPECT_EQ(manager.Health(column).health, ColumnHealth::kFresh);
      }
      if (flavor == FaultFlavor::kLost) {
        EXPECT_GT(manager.total_build_cost().pages_skipped, 0u);
      }
      if (flavor == FaultFlavor::kTransient) {
        EXPECT_GT(manager.total_build_cost().transient_retries, 0u);
      }
      break;
    }

    case FaultScenario::kEnsureFreshRebuild: {
      StatisticsManager manager(
          {.buckets = 30, .f = 0.2, .seed = 9, .threads = 1});
      ASSERT_TRUE(manager.GetOrBuild("t.x", table).ok());
      manager.RecordModifications("t.x", table.tuple_count());
      ASSERT_TRUE(manager.IsStale("t.x"));
      table.set_fault_injector(&injector);
      const auto fresh = manager.EnsureFresh("t.x", table);
      ASSERT_TRUE(fresh.ok()) << fresh.status();
      EXPECT_EQ(manager.rebuild_count(), 2u);
      EXPECT_EQ(manager.Health("t.x").health, ColumnHealth::kFresh);
      EXPECT_FALSE(manager.IsStale("t.x"));
      break;
    }

    case FaultScenario::kDeserializeThenServe: {
      // Statistics restored from a catalog blob serve without ever
      // touching the (faulty) storage: estimation is immune to the disk.
      CvbOptions cvb;
      cvb.k = 30;
      cvb.f = 0.2;
      cvb.seed = 7;
      cvb.threads = 1;
      const auto built = BuildStatisticsSampled(table, cvb);
      ASSERT_TRUE(built.ok());
      std::vector<std::uint8_t> blob;
      SerializeColumnStatistics(*built, &blob);
      table.set_fault_injector(&injector);
      StatisticsManager manager({.buckets = 30, .f = 0.2, .threads = 1});
      ASSERT_TRUE(manager.InstallSerializedStatistics("t.x", blob).ok());
      EXPECT_EQ(manager.Health("t.x").health, ColumnHealth::kFresh);
      const auto estimate = manager.EstimateRange(
          "t.x", table, {.lo = 0, .hi = static_cast<Value>(table.tuple_count())});
      ASSERT_TRUE(estimate.ok());
      EXPECT_GT(*estimate, 0.0);
      // Serving never issued a page read, so no fault ever fired.
      EXPECT_EQ(injector.transient_injected(), 0u);
      EXPECT_EQ(injector.lost_injected(), 0u);
      EXPECT_EQ(injector.corrupt_injected(), 0u);
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultsAllPaths, FaultMatrixTest,
    ::testing::Combine(::testing::Values(FaultFlavor::kTransient,
                                         FaultFlavor::kLost,
                                         FaultFlavor::kCorrupt,
                                         FaultFlavor::kLatency),
                       ::testing::Values(FaultScenario::kCvbBuild,
                                         FaultScenario::kBuildAllFanOut,
                                         FaultScenario::kEnsureFreshRebuild,
                                         FaultScenario::kDeserializeThenServe)),
    [](const ::testing::TestParamInfo<FaultMatrixTest::ParamType>& info) {
      return std::string(FlavorName(std::get<0>(info.param))) + "x" +
             ScenarioName(std::get<1>(info.param));
    });

// -- CVB typed errors ---------------------------------------------------------

TEST(CvbFaultTest, ExhaustionWithSkipsIsResourceExhausted) {
  // A sorted layout is maximally correlated, so with a tiny f the
  // validation cannot pass before the table is exhausted — and one page is
  // permanently lost, so the "exact histogram" fallback is off the table.
  Table table = MakeTable(4000, /*seed=*/3, LayoutKind::kSorted);
  FaultSpec spec;
  spec.lost_pages = {5};
  FaultInjector injector(spec);
  table.set_fault_injector(&injector);
  CvbOptions options;
  options.k = 20;
  options.f = 0.01;
  options.seed = 3;
  options.threads = 1;
  const auto result = RunCvb(table, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  // The message carries the blocks-read / blocks-skipped accounting.
  EXPECT_NE(result.status().message().find("read"), std::string::npos);
  EXPECT_NE(result.status().message().find("skipped 1 unreadable"),
            std::string::npos)
      << result.status();
}

TEST(CvbFaultTest, CleanExhaustionWithoutFallbackIsResourceExhausted) {
  Table table = MakeTable(4000, /*seed=*/3, LayoutKind::kSorted);
  CvbOptions options;
  options.k = 20;
  options.f = 0.01;
  options.seed = 3;
  options.threads = 1;
  options.allow_exhaustive_fallback = false;
  const auto result = RunCvb(table, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("skipped 0 unreadable"),
            std::string::npos)
      << result.status();
  // The default keeps the historical behavior: exhaustion on healthy
  // storage returns the exact histogram.
  options.allow_exhaustive_fallback = true;
  const auto exact = RunCvb(table, options);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(exact->exhausted_table);
  EXPECT_EQ(exact->blocks_skipped, 0u);
}

TEST(CvbFaultTest, FaultBudgetExhaustionIsDataLoss) {
  Table table = MakeTable(20000);
  FaultSpec spec;
  spec.lost_probability = 1.0;
  FaultInjector injector(spec);
  table.set_fault_injector(&injector);
  CvbOptions options;
  options.k = 20;
  options.f = 0.2;
  options.seed = 3;
  options.threads = 1;
  options.max_skipped_blocks = 4;
  const auto result = RunCvb(table, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(result.status().message().find("fault budget exhausted"),
            std::string::npos)
      << result.status();
}

// -- BuildAll aggregation -----------------------------------------------------

TEST(BuildAllTest, PartialFailureIsAggregatedPerColumn) {
  Table table = MakeTable(30000);
  StatisticsManager::Options options;
  options.buckets = 30;
  options.f = 0.2;
  options.threads = 1;
  // An unregistered backend id: this column's build fails with a non-fault
  // error that degraded serving must NOT absorb.
  options.column_backends["t.bad"] = static_cast<HistogramBackendId>(250);
  StatisticsManager manager(options);
  const auto result =
      manager.BuildAll({"t.good", "t.bad", "t.also_good"}, table);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.attempted, 3u);
  EXPECT_EQ(result.succeeded, 2u);
  ASSERT_EQ(result.failed.size(), 1u);
  EXPECT_EQ(result.failed[0].first, "t.bad");
  EXPECT_EQ(result.failed[0].second.code(), StatusCode::kNotFound);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  // The sweep never gave up early: the healthy columns are fresh.
  EXPECT_TRUE(manager.Has("t.good"));
  EXPECT_TRUE(manager.Has("t.also_good"));
  EXPECT_FALSE(manager.Has("t.bad"));
  const auto health = manager.Health("t.bad");
  EXPECT_TRUE(health.exists);
  EXPECT_EQ(health.health, ColumnHealth::kDegraded);
}

TEST(BuildAllTest, AbsorbedFaultFailuresStillShowInTheAggregation) {
  // All storage lost and the column has never built: degraded serving
  // publishes the fallback (BuildAll's result is still usable for
  // estimation), but the sweep must report the underlying fault.
  Table table = MakeTable(20000);
  FaultSpec spec;
  spec.lost_probability = 1.0;
  FaultInjector injector(spec);
  table.set_fault_injector(&injector);
  StatisticsManager manager({.buckets = 20, .f = 0.2, .threads = 1});
  const auto result = manager.BuildAll({"t.x"}, table);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.failed.size(), 1u);
  EXPECT_EQ(result.failed[0].second.code(), StatusCode::kDataLoss);
  const auto health = manager.Health("t.x");
  EXPECT_TRUE(health.serving_fallback);
  EXPECT_EQ(health.health, ColumnHealth::kDegraded);
}

// -- Degraded serving ---------------------------------------------------------

TEST(DegradedServingTest, StaleWhileErrorKeepsServingPreviousSnapshot) {
  Table table = MakeTable(30000);
  StatisticsManager manager({.buckets = 30, .f = 0.2, .threads = 1});
  ASSERT_TRUE(manager.GetOrBuild("t.x", table).ok());
  const RangeQuery query{.lo = 0, .hi = 1000};
  const auto before = manager.EstimateRange("t.x", table, query);
  ASSERT_TRUE(before.ok());
  manager.RecordModifications("t.x", table.tuple_count());
  ASSERT_TRUE(manager.IsStale("t.x"));

  FaultSpec spec;
  spec.lost_probability = 1.0;
  FaultInjector injector(spec);
  table.set_fault_injector(&injector);
  // The rebuild fails on dead storage, but EnsureFresh still returns the
  // previous snapshot — stale-while-error.
  const auto stale = manager.EnsureFresh("t.x", table);
  ASSERT_TRUE(stale.ok());
  const auto health = manager.Health("t.x");
  EXPECT_EQ(health.health, ColumnHealth::kStale);
  EXPECT_EQ(health.consecutive_build_failures, 1u);
  EXPECT_EQ(health.last_error.code(), StatusCode::kDataLoss);
  // The lock-free serving path is untouched by the failed rebuild.
  const auto after = manager.EstimateRange("t.x", table, query);
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(*after, *before);
  // The staleness persists, so the next EnsureFresh tries again — and
  // succeeds once storage heals, clearing the failure state.
  EXPECT_TRUE(manager.IsStale("t.x"));
  table.set_fault_injector(nullptr);
  ASSERT_TRUE(manager.EnsureFresh("t.x", table).ok());
  EXPECT_EQ(manager.Health("t.x").health, ColumnHealth::kFresh);
  EXPECT_FALSE(manager.IsStale("t.x"));
}

TEST(DegradedServingTest, UnbuiltColumnFallsBackToUniformModel) {
  Table table = MakeTable(24000);
  FaultSpec spec;
  spec.lost_probability = 1.0;
  FaultInjector injector(spec);
  table.set_fault_injector(&injector);
  StatisticsManager manager({.buckets = 20, .f = 0.2, .threads = 1});
  const auto stats = manager.GetOrBuildShared("t.x", table);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ((*stats)->row_count, table.tuple_count());
  const auto health = manager.Health("t.x");
  EXPECT_EQ(health.health, ColumnHealth::kDegraded);
  EXPECT_TRUE(health.serving_fallback);
  EXPECT_EQ(health.last_error.code(), StatusCode::kDataLoss);
  // Unknown domain: any non-degenerate range gets the System-R magic
  // selectivity of 1/3.
  const auto estimate =
      manager.EstimateRange("t.x", table, {.lo = 10, .hi = 20});
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(*estimate,
                   static_cast<double>(table.tuple_count()) / 3.0);
  const auto empty = manager.EstimateRange("t.x", table, {.lo = 20, .hi = 10});
  ASSERT_TRUE(empty.ok());
  EXPECT_DOUBLE_EQ(*empty, 0.0);
  // Storage heals: the next access replaces the fallback with a real build.
  table.set_fault_injector(nullptr);
  ASSERT_TRUE(manager.GetOrBuildShared("t.x", table).ok());
  EXPECT_EQ(manager.Health("t.x").health, ColumnHealth::kFresh);
  EXPECT_FALSE(manager.Health("t.x").serving_fallback);
}

TEST(DegradedServingTest, NonFaultErrorsAreNeverAbsorbed) {
  // Invalid build options fail with InvalidArgument — a caller bug, not a
  // storage fault. No fallback, no breaker, the error propagates.
  Table table = MakeTable(8000);
  StatisticsManager manager({.buckets = 0, .f = 0.2, .threads = 1});
  const auto result = manager.GetOrBuild("t.x", table);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  const auto health = manager.Health("t.x");
  EXPECT_FALSE(health.serving_fallback);
  EXPECT_EQ(health.consecutive_build_failures, 0u);
}

TEST(DegradedServingTest, TransientOutageHealsAcrossRebuildAttempts) {
  // Every page fails 6 attempts before healing; each build retries each
  // page twice. Builds 1-3 exhaust the fault budget, the 4th finds fully
  // healed storage — deterministic recovery, no wall clock involved.
  Table table = MakeTable(2400);
  FaultSpec spec;
  spec.transient_probability = 1.0;
  spec.transient_failures_per_page = 6;
  FaultInjector injector(spec);
  table.set_fault_injector(&injector);
  StatisticsManager::Options options;
  options.buckets = 16;
  options.f = 0.2;
  options.threads = 1;
  options.retry.max_attempts = 2;
  options.breaker_failure_threshold = 100;  // let every attempt through
  StatisticsManager manager(options);
  int failed_builds = 0;
  for (; failed_builds < 10; ++failed_builds) {
    ASSERT_TRUE(manager.GetOrBuildShared("t.x", table).ok());
    if (!manager.Health("t.x").serving_fallback) break;
  }
  EXPECT_EQ(failed_builds, 3);
  EXPECT_EQ(manager.Health("t.x").health, ColumnHealth::kFresh);
  EXPECT_EQ(manager.Health("t.x").consecutive_build_failures, 0u);
}

// -- Incremental maintenance under faults (DESIGN.md §15) ---------------------

StatisticsManager::Options IncrementalFaultOptions() {
  StatisticsManager::Options options;
  options.buckets = 30;
  options.f = 0.2;
  options.threads = 1;
  options.default_backend = HistogramBackendId::kIncrementalEquiDepth;
  options.staleness_threshold = 1e-12;  // any DML forces a refresh
  return options;
}

TEST(IncrementalFaultTest, RefreshSucceedsOnDeadStorage) {
  // An O(Δ) refresh publishes from the live reservoir-backed state and
  // reads zero storage pages — so it works, and keeps the column fresh,
  // while the table is completely unreadable.
  Table table = MakeTable(30000);
  StatisticsManager manager(IncrementalFaultOptions());
  ASSERT_TRUE(manager.GetOrBuild("t.x", table).ok());

  FaultSpec spec;
  spec.lost_probability = 1.0;
  FaultInjector injector(spec);
  table.set_fault_injector(&injector);
  for (Value v = 1; v <= 200; ++v) manager.RecordInsert("t.x", v);
  ASSERT_TRUE(manager.IsStale("t.x"));
  const auto fresh = manager.EnsureFreshShared("t.x", table);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(manager.incremental_refresh_count(), 1u);
  EXPECT_EQ(manager.rebuild_count(), 1u);
  EXPECT_EQ((*fresh)->row_count, table.tuple_count() + 200);
  const auto health = manager.Health("t.x");
  EXPECT_EQ(health.health, ColumnHealth::kFresh);
  EXPECT_EQ(health.consecutive_build_failures, 0u);
  EXPECT_FALSE(manager.IsStale("t.x"));
}

TEST(IncrementalFaultTest, BudgetFallbackOnDeadStorageIsStaleWhileError) {
  // Count-only modifications disqualify the incremental path (the values
  // never reached the reservoir), so EnsureFresh must attempt a full
  // rebuild. On dead storage that fails — and the column degrades to
  // stale-while-error serving the *previous complete snapshot*, never a
  // half-repaired one: estimates are bit-identical to before the outage,
  // and no incremental refresh is counted.
  Table table = MakeTable(30000);
  StatisticsManager manager(IncrementalFaultOptions());
  ASSERT_TRUE(manager.GetOrBuild("t.x", table).ok());
  const RangeQuery query{.lo = 0, .hi = 900};
  const auto before = manager.EstimateRange("t.x", table, query);
  ASSERT_TRUE(before.ok());

  manager.RecordModifications("t.x", 5000);
  FaultSpec spec;
  spec.lost_probability = 1.0;
  FaultInjector injector(spec);
  table.set_fault_injector(&injector);
  const auto stale = manager.EnsureFresh("t.x", table);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(manager.incremental_refresh_count(), 0u);
  EXPECT_EQ(manager.rebuild_count(), 1u);  // the initial build only
  const auto health = manager.Health("t.x");
  EXPECT_EQ(health.health, ColumnHealth::kStale);
  EXPECT_EQ(health.last_error.code(), StatusCode::kDataLoss);
  const auto during = manager.EstimateRange("t.x", table, query);
  ASSERT_TRUE(during.ok());
  EXPECT_DOUBLE_EQ(*during, *before);

  // Storage heals: the rebuild goes through, reseeds the reservoir, and
  // value-carrying DML afterwards refreshes incrementally again.
  table.set_fault_injector(nullptr);
  ASSERT_TRUE(manager.EnsureFresh("t.x", table).ok());
  EXPECT_EQ(manager.rebuild_count(), 2u);
  EXPECT_EQ(manager.Health("t.x").health, ColumnHealth::kFresh);
  manager.RecordInsert("t.x", 11);
  ASSERT_TRUE(manager.EnsureFresh("t.x", table).ok());
  EXPECT_EQ(manager.incremental_refresh_count(), 1u);
  EXPECT_EQ(manager.rebuild_count(), 2u);
}

TEST(CircuitBreakerTest, OpensAfterThresholdAndRecoversAfterCooldown) {
  Table table = MakeTable(8000);
  auto now = std::make_shared<std::uint64_t>(0);
  StatisticsManager::Options options;
  options.buckets = 16;
  options.f = 0.2;
  options.threads = 1;
  options.breaker_failure_threshold = 2;
  options.breaker_cooldown_micros = 1'000;
  options.clock = [now]() { return *now; };
  StatisticsManager manager(options);
  FaultSpec spec;
  spec.lost_probability = 1.0;
  FaultInjector injector(spec);
  table.set_fault_injector(&injector);

  // Failure 1: below the threshold, fallback published, breaker closed.
  ASSERT_TRUE(manager.GetOrBuild("t.x", table).ok());
  auto health = manager.Health("t.x");
  EXPECT_EQ(health.consecutive_build_failures, 1u);
  EXPECT_FALSE(health.breaker_open);
  // Failure 2: threshold reached, breaker opens.
  ASSERT_TRUE(manager.GetOrBuild("t.x", table).ok());
  health = manager.Health("t.x");
  EXPECT_EQ(health.consecutive_build_failures, 2u);
  EXPECT_TRUE(health.breaker_open);
  // While open, no build is even attempted: the injector sees no reads.
  const std::uint64_t lost_before = injector.lost_injected();
  ASSERT_TRUE(manager.GetOrBuild("t.x", table).ok());
  EXPECT_EQ(injector.lost_injected(), lost_before);
  // Past the cooldown one attempt is let through (half-open); storage is
  // still dead, so it fails and the breaker re-opens with a new deadline.
  *now = 1'500;
  ASSERT_TRUE(manager.GetOrBuild("t.x", table).ok());
  health = manager.Health("t.x");
  EXPECT_EQ(health.consecutive_build_failures, 3u);
  EXPECT_TRUE(health.breaker_open);
  EXPECT_GT(injector.lost_injected(), lost_before);
  // Cooldown elapses again and storage has healed: the half-open attempt
  // succeeds, closing the breaker and replacing the fallback.
  *now = 3'000;
  table.set_fault_injector(nullptr);
  ASSERT_TRUE(manager.GetOrBuild("t.x", table).ok());
  health = manager.Health("t.x");
  EXPECT_EQ(health.health, ColumnHealth::kFresh);
  EXPECT_FALSE(health.breaker_open);
  EXPECT_EQ(health.consecutive_build_failures, 0u);
  EXPECT_FALSE(health.serving_fallback);
  EXPECT_GT(health.total_build_failures, 0u);  // history is preserved
}

TEST(QuarantineTest, BadBlobQuarantinesAndOldSnapshotKeepsServing) {
  Table table = MakeTable(20000);
  StatisticsManager manager({.buckets = 20, .f = 0.2, .threads = 1});
  const auto built = manager.GetOrBuildShared("t.x", table);
  ASSERT_TRUE(built.ok());
  const RangeQuery query{.lo = 0, .hi = 500};
  const auto before = manager.EstimateRange("t.x", table, query);
  ASSERT_TRUE(before.ok());

  const std::vector<std::uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3};
  const Status install = manager.InstallSerializedStatistics("t.x", garbage);
  EXPECT_FALSE(install.ok());
  auto health = manager.Health("t.x");
  EXPECT_TRUE(health.quarantined);
  EXPECT_EQ(health.health, ColumnHealth::kDegraded);
  EXPECT_FALSE(health.last_error.ok());
  // The previous snapshot keeps serving, bit-identically.
  const auto after = manager.EstimateRange("t.x", table, query);
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(*after, *before);

  // A valid blob clears the quarantine.
  std::vector<std::uint8_t> blob;
  SerializeColumnStatistics(**built, &blob);
  ASSERT_TRUE(manager.InstallSerializedStatistics("t.x", blob).ok());
  health = manager.Health("t.x");
  EXPECT_FALSE(health.quarantined);
  EXPECT_EQ(health.health, ColumnHealth::kFresh);
}

TEST(QuarantineTest, LiveBuildClearsQuarantine) {
  Table table = MakeTable(20000);
  StatisticsManager manager({.buckets = 20, .f = 0.2, .threads = 1});
  const std::vector<std::uint8_t> garbage = {9, 9, 9, 9};
  EXPECT_FALSE(manager.InstallSerializedStatistics("t.x", garbage).ok());
  EXPECT_TRUE(manager.Health("t.x").quarantined);
  // A never-built quarantined column builds through the normal path.
  ASSERT_TRUE(manager.GetOrBuild("t.x", table).ok());
  EXPECT_FALSE(manager.Health("t.x").quarantined);
  EXPECT_EQ(manager.Health("t.x").health, ColumnHealth::kFresh);
}

TEST(HealthTest, UnknownColumnReportsDegradedNonexistent) {
  StatisticsManager manager({.buckets = 20});
  const auto health = manager.Health("nope");
  EXPECT_FALSE(health.exists);
  EXPECT_EQ(health.health, ColumnHealth::kDegraded);
}

// -- Fallback model semantics -------------------------------------------------

TEST(FallbackUniformModelTest, KnownDomainInterpolatesUniformly) {
  FallbackUniformModel model(1000, 0, 100);  // uniform over (0, 100]
  EXPECT_TRUE(model.domain_known());
  EXPECT_DOUBLE_EQ(model.EstimateRangeCount({.lo = 0, .hi = 50}), 500.0);
  EXPECT_DOUBLE_EQ(model.EstimateRangeCount({.lo = 25, .hi = 75}), 500.0);
  // Out-of-domain ends clip to the fences.
  EXPECT_DOUBLE_EQ(model.EstimateRangeCount({.lo = -100, .hi = 200}), 1000.0);
  EXPECT_DOUBLE_EQ(model.EstimateRangeCount({.lo = 200, .hi = 300}), 0.0);
  EXPECT_DOUBLE_EQ(model.EstimateRangeCount({.lo = 50, .hi = 50}), 0.0);
}

TEST(FallbackUniformModelTest, UnknownDomainUsesMagicSelectivity) {
  FallbackUniformModel model(900, 0, 0);
  EXPECT_FALSE(model.domain_known());
  EXPECT_DOUBLE_EQ(model.EstimateRangeCount({.lo = 1, .hi = 2}),
                   900.0 * FallbackUniformModel::kMagicRangeSelectivity);
  EXPECT_DOUBLE_EQ(model.EstimateRangeCount({.lo = 2, .hi = 1}), 0.0);
  EXPECT_NE(model.Describe().find("unknown"), std::string::npos);
}

TEST(FallbackUniformModelTest, RoundTripsThroughTheContainer) {
  const FallbackUniformModel model(12345, -50, 700);
  std::vector<std::uint8_t> bytes;
  SerializeHistogramModel(model, &bytes);
  const auto restored = DeserializeHistogramModel(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->backend_id(), HistogramBackendId::kFallbackUniform);
  EXPECT_EQ((*restored)->total(), 12345u);
  EXPECT_DOUBLE_EQ((*restored)->EstimateRangeCount({.lo = -50, .hi = 325}),
                   model.EstimateRangeCount({.lo = -50, .hi = 325}));
}

// -- Chaos runs ---------------------------------------------------------------

TEST(ChaosTest, PinnedSeedMixedFaultBuildStaysUniform) {
  // All four fault kinds at once with a pinned seed: the build must
  // either survive (skips within budget, counters consistent) and produce
  // a histogram covering the whole table, or fail with a typed fault.
  Table table = MakeTable(60000, /*seed=*/12);
  FaultSpec spec;
  spec.transient_probability = 0.1;
  spec.lost_probability = 0.04;
  spec.corrupt_probability = 0.04;
  spec.latency_probability = 0.1;
  spec.latency_micros = 1;
  spec.seed = 20260806;
  FaultInjector injector(spec);
  table.set_fault_injector(&injector);
  CvbOptions options;
  options.k = 40;
  options.f = 0.15;
  options.seed = 13;
  options.threads = 1;
  // 8% of pages are unreadable and a full run reads over a thousand
  // blocks; budget accordingly.
  options.max_skipped_blocks = 256;
  const auto result = RunCvb(table, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->io.transient_retries, 0u);
  EXPECT_GT(result->io.pages_skipped, 0u);
  EXPECT_GE(result->io.pages_skipped, result->io.pages_corrupt);
  EXPECT_EQ(result->blocks_skipped, result->io.pages_skipped);
  EXPECT_LE(result->blocks_skipped, options.max_skipped_blocks);
  EXPECT_EQ(result->histogram.bucket_count(), 40u);
  EXPECT_EQ(result->histogram.total(), table.tuple_count());
}

TEST(ChaosTest, RandomizedSeedChaosSweepPrintsItsSeed) {
  // CI drives this with a randomized EQUIHIST_CHAOS_SEED; the seed is
  // always printed so any failure can be replayed exactly.
  std::uint64_t seed = 0x5EED2026;
  if (const char* env = std::getenv("EQUIHIST_CHAOS_SEED");
      env != nullptr && *env != '\0') {
    seed = std::strtoull(env, nullptr, 10);
  }
  std::cout << "[chaos] EQUIHIST_CHAOS_SEED=" << seed << std::endl;
  SCOPED_TRACE("EQUIHIST_CHAOS_SEED=" + std::to_string(seed));

  Table table = MakeTable(40000, /*seed=*/seed ^ 0x9E3779B9);
  FaultSpec spec;
  spec.transient_probability = 0.15;
  spec.lost_probability = 0.05;
  spec.corrupt_probability = 0.05;
  spec.latency_probability = 0.05;
  spec.latency_micros = 1;
  spec.seed = seed;
  FaultInjector injector(spec);
  table.set_fault_injector(&injector);

  StatisticsManager manager(
      {.buckets = 30, .f = 0.2, .seed = seed, .threads = 2});
  const std::vector<std::string> columns = {"c0", "c1", "c2"};
  const auto sweep = manager.BuildAll(columns, table);
  EXPECT_EQ(sweep.attempted, columns.size());
  // Whatever storage did, every failure must be a typed fault error —
  // never a crash, never a silent wrong answer.
  for (const auto& [column, status] : sweep.failed) {
    EXPECT_TRUE(status.code() == StatusCode::kUnavailable ||
                status.code() == StatusCode::kDataLoss ||
                status.code() == StatusCode::kResourceExhausted)
        << column << ": " << status;
  }
  // Every column stays servable: a real snapshot or the uniform fallback.
  const double n = static_cast<double>(table.tuple_count());
  for (const auto& column : columns) {
    const auto estimate = manager.EstimateRange(
        column, table, {.lo = 0, .hi = static_cast<Value>(table.tuple_count())});
    ASSERT_TRUE(estimate.ok()) << column;
    EXPECT_GE(*estimate, 0.0);
    EXPECT_LE(*estimate, 1.5 * n);
    const auto health = manager.Health(column);
    EXPECT_TRUE(health.exists);
  }
}

}  // namespace
}  // namespace equihist
