// Tests for the pluggable HistogramModel backend layer: golden-blob
// compatibility with serialization format v1, per-backend container
// round-trips, a byte-level corruption matrix over the wire format, and the
// end-to-end acceptance check that an externally registered backend serves
// through StatisticsManager, the planner, and serialization without any
// change to those components.

#include "stats/histogram_model.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/histogram.h"
#include "data/distribution.h"
#include "data/value_set.h"
#include "query/planner.h"
#include "sampling/reservoir.h"
#include "stats/column_statistics.h"
#include "stats/histogram_backends.h"
#include "stats/incremental_backend.h"
#include "stats/serialization.h"
#include "stats/statistics_manager.h"
#include "stats/wire_format.h"
#include "storage/table.h"

namespace equihist {
namespace {

// -- Golden v1 blobs ---------------------------------------------------------
//
// Captured from the format-v1 writer before the tagged-container change, so
// these bytes are frozen history: the v2 reader must keep decoding them
// identically forever. Source objects:
//   histogram  = Histogram::Create({-50,-50,0,7}, {3,0,10,2,5}, -100, 100)
//   statistics = {histogram, density=0.125, distinct=17.0, row_count=20,
//                 heavy_hitters={{-50,6},{7,4}}, from_full_scan=true,
//                 sample_size=20}

constexpr std::uint8_t kGoldenV1Histogram[] = {
    0xC5, 0xA2, 0xA1, 0x9A, 0x05, 0x01, 0x05, 0x14, 0xC7, 0x01, 0xC8,
    0x01, 0x64, 0x00, 0x64, 0x0E, 0x03, 0x00, 0x0A, 0x02, 0x05};

constexpr std::uint8_t kGoldenV1Statistics[] = {
    0xC5, 0xA2, 0xA1, 0x9A, 0x05, 0x01, 0x05, 0x14, 0xC7, 0x01, 0xC8,
    0x01, 0x64, 0x00, 0x64, 0x0E, 0x03, 0x00, 0x0A, 0x02, 0x05, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0xC0, 0x3F, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x31, 0x40, 0x02, 0x64, 0x06, 0x72, 0x04, 0x01, 0x14,
    0x14};

Histogram GoldenHistogram() {
  return Histogram::Create({-50, -50, 0, 7}, {3, 0, 10, 2, 5}, -100, 100)
      .value();
}

TEST(HistogramModelGoldenTest, V1HistogramBlobDecodesIdentically) {
  const Histogram reference = GoldenHistogram();
  std::size_t consumed = 0;
  const auto restored = DeserializeHistogram(kGoldenV1Histogram, &consumed);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(consumed, sizeof(kGoldenV1Histogram));
  EXPECT_EQ(restored->separators(), reference.separators());
  EXPECT_EQ(restored->counts(), reference.counts());
  EXPECT_EQ(restored->lower_fence(), reference.lower_fence());
  EXPECT_EQ(restored->upper_fence(), reference.upper_fence());
  EXPECT_EQ(restored->total(), reference.total());
}

TEST(HistogramModelGoldenTest, V1HistogramBlobDecodesAsEquiHeightModel) {
  const auto model = DeserializeHistogramModel(kGoldenV1Histogram);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ((*model)->backend_id(), HistogramBackendId::kEquiHeight);
  EXPECT_EQ((*model)->total(), 20u);
  EXPECT_EQ((*model)->bucket_count(), 5u);
  EXPECT_EQ((*model)->lower_fence(), -100);
  EXPECT_EQ((*model)->upper_fence(), 100);
  // The model estimates through the compiled read path; it must agree
  // bit-for-bit with the reference estimator over the golden histogram.
  const Histogram reference = GoldenHistogram();
  for (const RangeQuery& q :
       {RangeQuery{-100, 100}, RangeQuery{-60, -40}, RangeQuery{-50, 7},
        RangeQuery{0, 0}, RangeQuery{50, -50}}) {
    EXPECT_DOUBLE_EQ((*model)->EstimateRangeCount(q),
                     EstimateRangeCount(reference, q))
        << "(" << q.lo << ", " << q.hi << "]";
  }
}

TEST(HistogramModelGoldenTest, V1StatisticsBlobDecodesIdentically) {
  const auto restored = DeserializeColumnStatistics(kGoldenV1Statistics);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const Histogram reference = GoldenHistogram();
  EXPECT_EQ(restored->histogram().separators(), reference.separators());
  EXPECT_EQ(restored->histogram().counts(), reference.counts());
  EXPECT_DOUBLE_EQ(restored->density, 0.125);
  EXPECT_DOUBLE_EQ(restored->distinct_estimate, 17.0);
  EXPECT_EQ(restored->row_count, 20u);
  ASSERT_EQ(restored->heavy_hitters.size(), 2u);
  EXPECT_EQ(restored->heavy_hitters[0].value, -50);
  EXPECT_EQ(restored->heavy_hitters[0].count, 6u);
  EXPECT_EQ(restored->heavy_hitters[1].value, 7);
  EXPECT_EQ(restored->heavy_hitters[1].count, 4u);
  EXPECT_TRUE(restored->from_full_scan);
  EXPECT_EQ(restored->sample_size, 20u);
}

TEST(HistogramModelGoldenTest, V2HistogramEncodingAddsOneTagByte) {
  // Same payload, one extra backend-id byte in the container header.
  std::vector<std::uint8_t> v2;
  SerializeHistogram(GoldenHistogram(), &v2);
  ASSERT_EQ(v2.size(), sizeof(kGoldenV1Histogram) + 1);
  // Header: varint magic (5 bytes) | version | backend id.
  EXPECT_EQ(v2[5], 2u);  // version
  EXPECT_EQ(v2[6], 0u);  // kEquiHeight
  // Payload is byte-identical to the v1 body.
  EXPECT_TRUE(std::equal(v2.begin() + 7, v2.end(),
                         std::begin(kGoldenV1Histogram) + 6));
}

// -- Golden v2 incremental blob (backend id 5) --------------------------------
//
// Frozen from the format-v2 writer when the incremental-equi-depth backend
// was introduced: the container header tags backend id 5, then the
// equi-height payload (byte-identical to the v1 body) followed by the
// BackingReservoir payload. Source object: GoldenHistogram() plus a
// deterministic reservoir — capacity 8, seed 2, seeded from
// {-50,-50,-7,0,3,7,11,42} with population 20, then Add(9) and Delete(3).

constexpr std::uint8_t kGoldenV2Incremental[] = {
    0xC5, 0xA2, 0xA1, 0x9A, 0x05, 0x02, 0x05, 0x05, 0x14, 0xC7,
    0x01, 0xC8, 0x01, 0x64, 0x00, 0x64, 0x0E, 0x03, 0x00, 0x0A,
    0x02, 0x05, 0x08, 0x02, 0x14, 0x15, 0x02, 0x02, 0x01, 0x00,
    0x07, 0x63, 0x63, 0x0D, 0x00, 0x54, 0x12, 0x16};

IncrementalEquiDepthModel GoldenIncrementalModel() {
  BackingReservoir reservoir = BackingReservoir::Create(8, 2).value();
  const std::vector<Value> sample = {-50, -50, -7, 0, 3, 7, 11, 42};
  EXPECT_TRUE(reservoir.SeedFromSample(sample, 20).ok());
  reservoir.Add(9);
  reservoir.Delete(3);
  return {GoldenHistogram(), std::move(reservoir)};
}

TEST(HistogramModelGoldenTest, V2IncrementalBlobDecodesIdentically) {
  const IncrementalEquiDepthModel reference = GoldenIncrementalModel();
  // The writer still emits these exact bytes...
  std::vector<std::uint8_t> bytes;
  SerializeHistogramModel(reference, &bytes);
  ASSERT_EQ(bytes.size(), sizeof(kGoldenV2Incremental));
  EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(),
                         std::begin(kGoldenV2Incremental)));
  // ...and the reader decodes the frozen bytes back to the source object,
  // reservoir state included (the resume path depends on the counters).
  std::size_t consumed = 0;
  const auto restored =
      DeserializeHistogramModel(kGoldenV2Incremental, &consumed);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(consumed, sizeof(kGoldenV2Incremental));
  EXPECT_EQ((*restored)->backend_id(),
            HistogramBackendId::kIncrementalEquiDepth);
  const auto* model =
      dynamic_cast<const IncrementalEquiDepthModel*>(restored->get());
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->histogram().separators(),
            reference.histogram().separators());
  EXPECT_EQ(model->histogram().counts(), reference.histogram().counts());
  EXPECT_EQ(model->reservoir().sample(), reference.reservoir().sample());
  EXPECT_EQ(model->reservoir().population(),
            reference.reservoir().population());
  EXPECT_EQ(model->reservoir().ops_since_seed(),
            reference.reservoir().ops_since_seed());
  EXPECT_EQ(model->reservoir().delete_hits(),
            reference.reservoir().delete_hits());
  EXPECT_EQ(model->reservoir().delete_misses(),
            reference.reservoir().delete_misses());
}

// -- Per-backend container round-trips ---------------------------------------

std::vector<Value> SortedSample(std::uint64_t n, std::uint64_t seed) {
  const auto freq =
      MakeZipf({.n = n, .domain_size = n / 10, .skew = 1.3, .seed = seed});
  const ValueSet data = ValueSet::FromFrequencies(*freq);
  return {data.sorted_values().begin(), data.sorted_values().end()};
}

TEST(HistogramModelRegistryTest, BuiltinsAreRegistered) {
  auto& registry = HistogramBackendRegistry::Global();
  for (const HistogramBackendId id :
       {HistogramBackendId::kEquiHeight, HistogramBackendId::kEquiWidth,
        HistogramBackendId::kCompressed,
        HistogramBackendId::kGmpIncremental}) {
    EXPECT_TRUE(registry.Has(id));
  }
  EXPECT_EQ(registry.IdForName("equi-height").value(),
            HistogramBackendId::kEquiHeight);
  EXPECT_EQ(registry.IdForName("compressed").value(),
            HistogramBackendId::kCompressed);
  EXPECT_FALSE(registry.IdForName("no-such-backend").ok());
}

TEST(HistogramModelRegistryTest, DuplicateRegistrationIsRejected) {
  auto& registry = HistogramBackendRegistry::Global();
  HistogramBackendRegistry::Backend clone;
  clone.name = "equi-height-imposter";
  clone.build_from_sample = [](std::span<const Value>, std::uint64_t,
                               std::uint64_t) -> Result<HistogramModelPtr> {
    return Status::Internal("never called");
  };
  clone.deserialize_payload =
      [](std::span<const std::uint8_t>,
         std::size_t*) -> Result<HistogramModelPtr> {
    return Status::Internal("never called");
  };
  EXPECT_FALSE(
      registry.Register(HistogramBackendId::kEquiHeight, clone).ok());
}

TEST(HistogramModelRoundTripTest, EveryRegisteredBackendRoundTrips) {
  auto& registry = HistogramBackendRegistry::Global();
  const std::vector<Value> sample = SortedSample(20000, 7);
  for (const HistogramBackendId id : registry.Ids()) {
    const auto backend = registry.Find(id);
    ASSERT_TRUE(backend.ok());
    const auto model = backend->build_from_sample(sample, 32, 100000);
    ASSERT_TRUE(model.ok())
        << backend->name << ": " << model.status().ToString();

    std::vector<std::uint8_t> bytes;
    SerializeHistogramModel(**model, &bytes);
    std::size_t consumed = 0;
    const auto restored = DeserializeHistogramModel(bytes, &consumed);
    ASSERT_TRUE(restored.ok())
        << backend->name << ": " << restored.status().ToString();
    EXPECT_EQ(consumed, bytes.size()) << backend->name;
    EXPECT_EQ((*restored)->backend_id(), id) << backend->name;
    EXPECT_EQ((*restored)->total(), (*model)->total()) << backend->name;
    EXPECT_EQ((*restored)->bucket_count(), (*model)->bucket_count())
        << backend->name;
    EXPECT_EQ((*restored)->lower_fence(), (*model)->lower_fence())
        << backend->name;
    EXPECT_EQ((*restored)->upper_fence(), (*model)->upper_fence())
        << backend->name;

    Rng rng(13);
    for (int i = 0; i < 200; ++i) {
      Value a = rng.NextInRange((*model)->lower_fence() - 10,
                                (*model)->upper_fence() + 10);
      Value b = rng.NextInRange((*model)->lower_fence() - 10,
                                (*model)->upper_fence() + 10);
      const RangeQuery q{a, b};
      EXPECT_DOUBLE_EQ((*restored)->EstimateRangeCount(q),
                       (*model)->EstimateRangeCount(q))
          << backend->name << " (" << a << ", " << b << "]";
    }
  }
}

TEST(HistogramModelRoundTripTest, TrailingGarbageIsRejected) {
  const auto freq = MakeZipf({.n = 5000, .domain_size = 500, .skew = 1.0});
  const ValueSet data = ValueSet::FromFrequencies(*freq);
  auto& registry = HistogramBackendRegistry::Global();
  const std::vector<Value> sample = {data.sorted_values().begin(),
                                     data.sorted_values().end()};
  for (const HistogramBackendId id : registry.Ids()) {
    const auto backend = registry.Find(id);
    ASSERT_TRUE(backend.ok());
    const auto model = backend->build_from_sample(sample, 8, 5000);
    ASSERT_TRUE(model.ok());
    std::vector<std::uint8_t> bytes;
    SerializeHistogramModel(**model, &bytes);
    bytes.push_back(0x00);
    // Whole-buffer parse must reject the extra byte...
    EXPECT_FALSE(DeserializeHistogramModel(bytes).ok()) << backend->name;
    // ...while the consumed-reporting parse accepts the valid prefix.
    std::size_t consumed = 0;
    EXPECT_TRUE(DeserializeHistogramModel(bytes, &consumed).ok())
        << backend->name;
    EXPECT_EQ(consumed, bytes.size() - 1) << backend->name;
  }
}

// -- Corruption matrix -------------------------------------------------------
//
// Satellite hardening check: every single-byte corruption (all 255 non-zero
// XOR masks... reduced to all 8 single-bit flips plus 0xFF to keep runtime
// sane) and every truncation of a golden encoding must come back as a clean
// Status or a structurally valid object — never UB, never a crash. Run
// under ASan/UBSan in CI.

void ExpectParsesCleanly(std::span<const std::uint8_t> bytes) {
  const auto histogram = DeserializeHistogram(bytes);
  if (histogram.ok()) {
    std::uint64_t sum = 0;
    for (std::uint64_t c : histogram->counts()) sum += c;
    EXPECT_EQ(sum, histogram->total());
    EXPECT_TRUE(std::is_sorted(histogram->separators().begin(),
                               histogram->separators().end()));
  }
  const auto model = DeserializeHistogramModel(bytes);
  if (model.ok()) {
    EXPECT_GE((*model)->bucket_count(), 1u);
    EXPECT_LE((*model)->lower_fence(), (*model)->upper_fence());
  }
  const auto stats = DeserializeColumnStatistics(bytes);
  if (stats.ok()) {
    EXPECT_NE(stats->model, nullptr);
  }
}

void RunCorruptionMatrix(std::span<const std::uint8_t> golden) {
  // Truncation at every length.
  for (std::size_t len = 0; len < golden.size(); ++len) {
    ExpectParsesCleanly(golden.subspan(0, len));
  }
  // Every byte, every single-bit flip plus full inversion.
  std::vector<std::uint8_t> mutated(golden.begin(), golden.end());
  for (std::size_t i = 0; i < mutated.size(); ++i) {
    for (int bit = 0; bit < 9; ++bit) {
      const std::uint8_t mask =
          bit == 8 ? 0xFF : static_cast<std::uint8_t>(1u << bit);
      mutated[i] ^= mask;
      ExpectParsesCleanly(mutated);
      mutated[i] ^= mask;  // restore
    }
  }
}

TEST(SerializationCorruptionTest, GoldenV1HistogramMatrix) {
  RunCorruptionMatrix(kGoldenV1Histogram);
}

TEST(SerializationCorruptionTest, GoldenV1StatisticsMatrix) {
  RunCorruptionMatrix(kGoldenV1Statistics);
}

TEST(SerializationCorruptionTest, GoldenV2IncrementalMatrix) {
  RunCorruptionMatrix(kGoldenV2Incremental);
}

TEST(SerializationCorruptionTest, V2StatisticsMatrixPerBackend) {
  // A fresh v2 statistics blob for every registered backend family: the
  // container tag byte and each backend's payload parser all get the same
  // treatment.
  const auto freq = MakeZipf({.n = 4000, .domain_size = 400, .skew = 1.4});
  Table table =
      Table::Create(*freq, PageConfig{8192, 64}, {.kind = LayoutKind::kRandom})
          .value();
  for (const HistogramBackendId id :
       HistogramBackendRegistry::Global().Ids()) {
    BackendBuildOptions options;
    options.backend = id;
    options.buckets = 12;
    options.prefer_sampling = false;
    const auto stats = BuildStatisticsWithBackend(table, options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    std::vector<std::uint8_t> bytes;
    SerializeColumnStatistics(*stats, &bytes);
    RunCorruptionMatrix(bytes);
  }
}

// -- External backend, end to end --------------------------------------------
//
// The acceptance check for the backend layer: a trivial uniform-assumption
// backend with an id from the external range (>= 128) registers from test
// code and is then built, served lock-free, costed by the planner, and
// round-tripped through serialization — all through code paths that know
// nothing about it.

constexpr auto kUniformStubId = static_cast<HistogramBackendId>(200);

class UniformStubModel final : public HistogramModel {
 public:
  UniformStubModel(std::uint64_t total, Value lo, Value hi)
      : total_(total), lo_(lo), hi_(hi) {}

  HistogramBackendId backend_id() const override { return kUniformStubId; }

  double EstimateRangeCount(const RangeQuery& query) const override {
    const Value lo = std::max(query.lo, lo_);
    const Value hi = std::min(query.hi, hi_);
    if (hi <= lo) return 0.0;
    const double width = ValueDistance(lo_, hi_);
    if (width <= 0.0) return static_cast<double>(total_);
    return static_cast<double>(total_) * ValueDistance(lo, hi) / width;
  }

  std::uint64_t bucket_count() const override { return 1; }
  std::uint64_t total() const override { return total_; }
  Value lower_fence() const override { return lo_; }
  Value upper_fence() const override { return hi_; }
  std::size_t MemoryBytes() const override { return sizeof(*this); }
  std::string Describe() const override { return "UniformStub"; }

  void SerializePayload(std::vector<std::uint8_t>* out) const override {
    wire::PutVarint(total_, out);
    wire::PutSigned(lo_, out);
    wire::PutSigned(hi_, out);
  }

 private:
  std::uint64_t total_;
  Value lo_;
  Value hi_;
};

void RegisterUniformStubOnce() {
  static const bool registered = [] {
    HistogramBackendRegistry::Backend backend;
    backend.name = "uniform-stub";
    backend.build_from_sample =
        [](std::span<const Value> sample, std::uint64_t,
           std::uint64_t population_size) -> Result<HistogramModelPtr> {
      if (sample.empty()) {
        return Status::InvalidArgument("uniform stub needs a sample");
      }
      return HistogramModelPtr(std::make_shared<UniformStubModel>(
          population_size, sample.front() - 1, sample.back()));
    };
    backend.deserialize_payload =
        [](std::span<const std::uint8_t> payload,
           std::size_t* consumed) -> Result<HistogramModelPtr> {
      wire::Reader reader(payload);
      EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t total, reader.Varint());
      EQUIHIST_ASSIGN_OR_RETURN(const std::int64_t lo, reader.Signed());
      EQUIHIST_ASSIGN_OR_RETURN(const std::int64_t hi, reader.Signed());
      if (hi < lo) {
        return Status::InvalidArgument("uniform stub fences are inverted");
      }
      *consumed = reader.position();
      return HistogramModelPtr(
          std::make_shared<UniformStubModel>(total, lo, hi));
    };
    const Status status = HistogramBackendRegistry::Global().Register(
        kUniformStubId, std::move(backend));
    EXPECT_TRUE(status.ok()) << status.ToString();
    return true;
  }();
  (void)registered;
}

TEST(ExternalBackendTest, ServesEndToEndWithoutConsumerChanges) {
  RegisterUniformStubOnce();

  const auto freq = MakeUniformDup(20000, 5000);  // values 1..5000, x4 each
  Table table =
      Table::Create(*freq, PageConfig{8192, 64}, {.kind = LayoutKind::kRandom})
          .value();

  // Built and served through StatisticsManager via per-column backend
  // choice — the manager code has no mention of the stub.
  StatisticsManager::Options options;
  options.buckets = 16;
  options.prefer_sampling = false;
  options.column_backends["t.stub"] = kUniformStubId;
  StatisticsManager manager(options);

  const auto stats = manager.GetOrBuildShared("t.stub", table);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_NE((*stats)->model, nullptr);
  EXPECT_EQ((*stats)->model->backend_id(), kUniformStubId);

  // Lock-free serving path.
  const auto estimate = manager.EstimateRange("t.stub", table, {-1000, 1000000});
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(*estimate, static_cast<double>(table.tuple_count()));

  // A sibling column on the default backend coexists in the same manager.
  const auto default_stats = manager.GetOrBuildShared("t.default", table);
  ASSERT_TRUE(default_stats.ok());
  EXPECT_EQ((*default_stats)->model->backend_id(),
            HistogramBackendId::kEquiHeight);

  // Planner costs straight through the interface.
  const PlanChoice narrow = ChooseAccessPath(
      *(*stats)->model, {0, 10}, table.page_count(), 64);
  const PlanChoice wide = ChooseAccessPath(
      *(*stats)->model, {-1000, 1000000}, table.page_count(), 64);
  EXPECT_EQ(narrow.path, AccessPath::kIndexRangeScan);
  EXPECT_EQ(wide.path, AccessPath::kFullScan);

  // Serialization container frames the stub payload untouched.
  std::vector<std::uint8_t> bytes;
  SerializeColumnStatistics(**stats, &bytes);
  const auto restored = DeserializeColumnStatistics(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_NE(restored->model, nullptr);
  EXPECT_EQ(restored->model->backend_id(), kUniformStubId);
  EXPECT_DOUBLE_EQ(restored->EstimateRangeCount({0, 5000}),
                   (*stats)->EstimateRangeCount({0, 5000}));

  // The typed equi-height accessors refuse politely.
  EXPECT_EQ((*stats)->equi_height(), nullptr);
  EXPECT_EQ((*stats)->compiled(), nullptr);
}

TEST(ExternalBackendTest, WorkloadEvaluationGoesThroughTheInterface) {
  RegisterUniformStubOnce();
  const auto freq = MakeAllDistinct(10000);
  const ValueSet data = ValueSet::FromFrequencies(*freq);
  const auto backend =
      HistogramBackendRegistry::Global().Find(kUniformStubId);
  ASSERT_TRUE(backend.ok());
  const std::vector<Value> sample = {data.sorted_values().begin(),
                                     data.sorted_values().end()};
  const auto model = backend->build_from_sample(sample, 1, data.size());
  ASSERT_TRUE(model.ok());

  std::vector<RangeQuery> queries;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    Value a = rng.NextInRange(0, 10000);
    Value b = rng.NextInRange(0, 10000);
    if (a > b) std::swap(a, b);
    if (a == b) continue;
    queries.push_back({a, b});
  }
  const auto report = EvaluateRangeWorkload(**model, queries, data);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Uniform assumption on all-distinct uniform data: near-exact.
  EXPECT_LT(report->max_absolute_error, 2.0);
}

}  // namespace
}  // namespace equihist
