#include "sampling/sample.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace equihist {
namespace {

TEST(SampleTest, ConstructionSorts) {
  Sample sample({5, 1, 3, 3, 2});
  EXPECT_EQ(sample.size(), 5u);
  EXPECT_EQ(sample.sorted_values(), (std::vector<Value>{1, 2, 3, 3, 5}));
}

TEST(SampleTest, DefaultIsEmpty) {
  Sample sample;
  EXPECT_TRUE(sample.empty());
  EXPECT_EQ(sample.size(), 0u);
}

TEST(SampleTest, MergeKeepsSortedMultiset) {
  Sample sample({4, 2, 9});
  sample.Merge({3, 10, 2});
  EXPECT_EQ(sample.sorted_values(), (std::vector<Value>{2, 2, 3, 4, 9, 10}));
}

TEST(SampleTest, MergeIntoEmpty) {
  Sample sample;
  sample.Merge({7, 1});
  EXPECT_EQ(sample.sorted_values(), (std::vector<Value>{1, 7}));
}

TEST(SampleTest, MergeEmptyBatchIsNoop) {
  Sample sample({1, 2});
  sample.Merge({});
  EXPECT_EQ(sample.size(), 2u);
}

TEST(SampleTest, CountLessEqual) {
  Sample sample({1, 3, 3, 7});
  EXPECT_EQ(sample.CountLessEqual(0), 0u);
  EXPECT_EQ(sample.CountLessEqual(3), 3u);
  EXPECT_EQ(sample.CountLessEqual(7), 4u);
}

TEST(SampleTest, ValueAtRank) {
  Sample sample({9, 5, 5, 1});
  EXPECT_EQ(sample.ValueAtRank(0), 1);
  EXPECT_EQ(sample.ValueAtRank(1), 5);
  EXPECT_EQ(sample.ValueAtRank(3), 9);
}

TEST(SampleTest, DistinctCount) {
  Sample sample({2, 2, 2, 5, 5, 8});
  EXPECT_EQ(sample.DistinctCount(), 3u);
  Sample empty;
  EXPECT_EQ(empty.DistinctCount(), 0u);
}

TEST(SampleTest, DistinctCountCacheTracksMerges) {
  // DistinctCount is maintained incrementally during construction and
  // Merge (no per-call rescan); verify the cache against a recount of the
  // sorted values after every batch.
  Sample sample({4, 4, 1});
  EXPECT_EQ(sample.DistinctCount(), 2u);
  sample.Merge({4, 9, 9, 1});
  EXPECT_EQ(sample.DistinctCount(), 3u);  // {1, 4, 9}
  sample.Merge({});
  EXPECT_EQ(sample.DistinctCount(), 3u);
  sample.Merge({-5, 9, 12});
  const auto& sorted = sample.sorted_values();
  std::uint64_t recount = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i == 0 || sorted[i] != sorted[i - 1]) ++recount;
  }
  EXPECT_EQ(sample.DistinctCount(), recount);
  EXPECT_EQ(sample.DistinctCount(), 5u);  // {-5, 1, 4, 9, 12}
}

TEST(SampleTest, ManyMergesStaySorted) {
  Sample sample;
  for (int i = 0; i < 20; ++i) {
    sample.Merge({static_cast<Value>(100 - i), static_cast<Value>(i)});
  }
  EXPECT_EQ(sample.size(), 40u);
  EXPECT_TRUE(std::is_sorted(sample.sorted_values().begin(),
                             sample.sorted_values().end()));
}

}  // namespace
}  // namespace equihist
