#include "core/histogram.h"

#include <vector>

#include <gtest/gtest.h>

#include "data/value_set.h"

namespace equihist {
namespace {

Histogram MakeSimpleHistogram() {
  // 4 buckets over (0, 40]: (0,10], (10,20], (20,30], (30,40].
  return Histogram::Create({10, 20, 30}, {5, 5, 5, 5}, 0, 40).value();
}

TEST(HistogramTest, CreateValidatesShape) {
  EXPECT_FALSE(Histogram::Create({}, {}, 0, 1).ok());
  EXPECT_FALSE(Histogram::Create({1, 2}, {3, 4}, 0, 5).ok());  // k-1 mismatch
  EXPECT_FALSE(Histogram::Create({5, 2}, {1, 1, 1}, 0, 9).ok());  // unsorted
  EXPECT_FALSE(Histogram::Create({}, {1}, 5, 2).ok());  // fences reversed
  EXPECT_FALSE(Histogram::Create({9}, {1, 1}, 0, 5).ok());  // sep > fence
  EXPECT_TRUE(Histogram::Create({2, 2}, {1, 1, 1}, 0, 5).ok());  // dup sep ok
}

TEST(HistogramTest, SingleBucketHistogram) {
  const auto h = Histogram::Create({}, {42}, 0, 100);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->bucket_count(), 1u);
  EXPECT_EQ(h->total(), 42u);
  EXPECT_EQ(h->BucketIndexForValue(50), 0u);
  EXPECT_EQ(h->BucketLowerBound(0), 0);
  EXPECT_EQ(h->BucketUpperBound(0), 100);
}

TEST(HistogramTest, TotalSumsCounts) {
  EXPECT_EQ(MakeSimpleHistogram().total(), 20u);
}

TEST(HistogramTest, BucketIndexForValue) {
  const Histogram h = MakeSimpleHistogram();
  EXPECT_EQ(h.BucketIndexForValue(1), 0u);
  EXPECT_EQ(h.BucketIndexForValue(10), 0u);   // boundary belongs below
  EXPECT_EQ(h.BucketIndexForValue(11), 1u);
  EXPECT_EQ(h.BucketIndexForValue(20), 1u);
  EXPECT_EQ(h.BucketIndexForValue(35), 3u);
  EXPECT_EQ(h.BucketIndexForValue(1000), 3u);  // beyond last separator
  EXPECT_EQ(h.BucketIndexForValue(-5), 0u);
}

TEST(HistogramTest, BucketBoundsUseFences) {
  const Histogram h = MakeSimpleHistogram();
  EXPECT_EQ(h.BucketLowerBound(0), 0);
  EXPECT_EQ(h.BucketUpperBound(0), 10);
  EXPECT_EQ(h.BucketLowerBound(3), 30);
  EXPECT_EQ(h.BucketUpperBound(3), 40);
}

TEST(HistogramTest, PartitionCountsMatchesBruteForce) {
  const Histogram h = MakeSimpleHistogram();
  std::vector<Value> values = {1, 5, 10, 11, 20, 21, 25, 30, 31, 40, 40};
  ValueSet population(values);
  const auto counts = h.PartitionCounts(population);
  ASSERT_EQ(counts.size(), 4u);
  // Brute force with the same (lo, hi] rule.
  std::vector<std::uint64_t> expected(4, 0);
  for (Value v : values) ++expected[h.BucketIndexForValue(v)];
  EXPECT_EQ(counts, expected);
}

TEST(HistogramTest, PartitionCountsSumToPopulation) {
  const Histogram h = MakeSimpleHistogram();
  ValueSet population({-100, 0, 10, 20, 30, 40, 100, 200});
  const auto counts = h.PartitionCounts(population);
  std::uint64_t sum = 0;
  for (auto c : counts) sum += c;
  EXPECT_EQ(sum, population.size());
}

TEST(HistogramTest, PartitionSortedMatchesPartitionCounts) {
  const Histogram h = MakeSimpleHistogram();
  std::vector<Value> values = {3, 9, 14, 22, 22, 37};
  ValueSet population(values);
  EXPECT_EQ(h.PartitionSorted(population.sorted_values()),
            h.PartitionCounts(population));
}

TEST(HistogramTest, DuplicatedSeparatorsPinTheValueInTheRunsLastBucket) {
  // Separators 5,5: bucket 0 is (0,5) effectively (the value 5 itself
  // belongs to the run's last bucket, the zero-width spike (5,5]).
  const auto h = Histogram::Create({5, 5}, {2, 2, 2}, 0, 10);
  ASSERT_TRUE(h.ok());
  ValueSet population({1, 2, 5, 5, 6, 9});
  const auto counts = h->PartitionCounts(population);
  EXPECT_EQ(counts, (std::vector<std::uint64_t>{2, 2, 2}));
  EXPECT_EQ(h->BucketIndexForValue(5), 1u);  // the spike bucket
  EXPECT_EQ(h->BucketIndexForValue(4), 0u);
  EXPECT_EQ(h->BucketIndexForValue(6), 2u);
}

TEST(HistogramTest, MeasuredAgainstReplacesCounts) {
  const Histogram h = MakeSimpleHistogram();
  ValueSet population({1, 2, 3, 15, 35, 35});
  const Histogram measured = h.MeasuredAgainst(population);
  EXPECT_EQ(measured.counts(), (std::vector<std::uint64_t>{3, 1, 0, 2}));
  EXPECT_EQ(measured.total(), 6u);
  EXPECT_EQ(measured.separators(), h.separators());
}

TEST(HistogramTest, ToStringShowsBucketsAndTruncates) {
  const Histogram h = MakeSimpleHistogram();
  const std::string full = h.ToString();
  EXPECT_NE(full.find("k=4"), std::string::npos);
  EXPECT_NE(full.find("B1"), std::string::npos);
  const std::string truncated = h.ToString(2);
  EXPECT_NE(truncated.find("2 more buckets"), std::string::npos);
}

}  // namespace
}  // namespace equihist
