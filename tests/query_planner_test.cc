#include "query/planner.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "data/distribution.h"
#include "data/value_set.h"
#include "stats/column_statistics.h"
#include "storage/fault_injection.h"
#include "storage/table.h"

namespace equihist {
namespace {

constexpr PageConfig kPage{8192, 64};  // 128 tuples per page

struct Fixture {
  Fixture()
      : freq(MakeAllDistinct(100000).value()),
        truth(ValueSet::FromFrequencies(freq)),
        table(Table::Create(freq, kPage, {.kind = LayoutKind::kRandom,
                                          .seed = 5})
                  .value()),
        index(OrderedIndex::Build(table).value()),
        stats(BuildStatisticsFullScan(table, 100).value()) {}

  FrequencyVector freq;
  ValueSet truth;
  Table table;
  OrderedIndex index;
  ColumnStatistics stats;
};

TEST(YaoTest, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(YaoPagesTouched(100, 10, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(YaoPagesTouched(0, 10, 5.0), 0.0);
  // All tuples -> all pages.
  EXPECT_NEAR(YaoPagesTouched(100, 10, 1000.0), 100.0, 1e-9);
  // One tuple -> ~one page.
  EXPECT_NEAR(YaoPagesTouched(100, 10, 1.0), 1.0, 0.05);
}

TEST(YaoTest, MonotoneInMatches) {
  double prev = 0.0;
  for (double m = 0.0; m <= 1000.0; m += 50.0) {
    const double pages = YaoPagesTouched(100, 10, m);
    EXPECT_GE(pages, prev);
    EXPECT_LE(pages, 100.0 + 1e-9);
    prev = pages;
  }
}

TEST(PlannerTest, NarrowQueryChoosesIndex) {
  Fixture fx;
  const auto choice = ChooseAccessPath(fx.stats, {100, 200},
                                       fx.table.page_count(),
                                       fx.table.tuples_per_page());
  EXPECT_EQ(choice.path, AccessPath::kIndexRangeScan);
  EXPECT_LT(choice.index_scan_cost, choice.full_scan_cost);
  EXPECT_NEAR(choice.estimated_rows, 100.0, 10.0);
}

TEST(PlannerTest, WideQueryChoosesFullScan) {
  Fixture fx;
  const auto choice = ChooseAccessPath(fx.stats, {0, 90000},
                                       fx.table.page_count(),
                                       fx.table.tuples_per_page());
  EXPECT_EQ(choice.path, AccessPath::kFullScan);
  EXPECT_GE(choice.index_scan_cost, choice.full_scan_cost);
}

TEST(PlannerTest, ChoiceMatchesTrueOptimumAcrossSelectivities) {
  // With exact statistics the planner's choice must agree with the
  // measured cheaper plan (same cost weights applied to the measured page
  // reads) except in a narrow indifference band around the crossover.
  Fixture fx;
  const CostModel cost_model;
  int disagreements = 0;
  int decided = 0;
  for (std::uint64_t width : {100u, 500u, 1000u, 2000u, 5000u, 10000u,
                              20000u, 50000u, 90000u}) {
    const RangeQuery q{1000, static_cast<Value>(1000 + width)};
    const auto choice = ChooseAccessPath(fx.stats, q, fx.table.page_count(),
                                         fx.table.tuples_per_page());
    const auto via_index =
        ExecutePlan(fx.table, fx.index, q, AccessPath::kIndexRangeScan);
    const auto via_scan =
        ExecutePlan(fx.table, fx.index, q, AccessPath::kFullScan);
    EXPECT_EQ(via_index.rows, via_scan.rows);
    const double index_cost = static_cast<double>(via_index.io.pages_read) *
                              cost_model.random_page_cost;
    const double scan_cost = static_cast<double>(via_scan.io.pages_read) *
                             cost_model.sequential_page_cost;
    const AccessPath truly_cheaper = (index_cost < scan_cost)
                                         ? AccessPath::kIndexRangeScan
                                         : AccessPath::kFullScan;
    // Skip queries within 25% of the crossover: either answer is fine.
    const double ratio = index_cost / scan_cost;
    if (ratio > 0.8 && ratio < 1.25) continue;
    ++decided;
    if (choice.path != truly_cheaper) ++disagreements;
  }
  EXPECT_GT(decided, 4);
  EXPECT_EQ(disagreements, 0);
}

TEST(PlannerTest, ExecuteFullScanCountsExactly) {
  Fixture fx;
  const RangeQuery q{500, 700};
  const auto result =
      ExecutePlan(fx.table, fx.index, q, AccessPath::kFullScan);
  EXPECT_EQ(result.rows, fx.truth.CountInRange(q.lo, q.hi));
  EXPECT_EQ(result.io.pages_read, fx.table.page_count());
}

TEST(PlannerTest, ExecutePlanCheckedMatchesExecutePlanWhenFaultFree) {
  Fixture fx;
  const RangeQuery q{500, 700};
  for (const AccessPath path :
       {AccessPath::kIndexRangeScan, AccessPath::kFullScan}) {
    const auto unchecked = ExecutePlan(fx.table, fx.index, q, path);
    const auto checked = ExecutePlanChecked(fx.table, fx.index, q, path);
    ASSERT_TRUE(checked.ok());
    EXPECT_EQ(checked->rows, unchecked.rows);
    EXPECT_EQ(checked->io.pages_read, unchecked.io.pages_read);
  }
}

TEST(PlannerTest, ExecutePlanCheckedPropagatesLostPageOnBothArms) {
  Fixture fx;
  FaultSpec spec;
  spec.lost_pages = {0};
  FaultInjector injector(spec);
  fx.table.set_fault_injector(&injector);
  const RangeQuery everything{-5, 1000000};
  for (const AccessPath path :
       {AccessPath::kIndexRangeScan, AccessPath::kFullScan}) {
    const auto result = ExecutePlanChecked(fx.table, fx.index, everything,
                                           path);
    ASSERT_FALSE(result.ok()) << AccessPathToString(path);
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  }
}

TEST(PlannerTest, BatchChoicesMatchPerQueryChoices) {
  // The batch planner is the per-query planner, fused: every PlanChoice
  // field (including the costs, which feed the decision) is bitwise what
  // the scalar entry point computes.
  Fixture fx;
  std::vector<RangeQuery> queries;
  for (std::uint64_t width : {10u, 100u, 1000u, 20000u, 90000u}) {
    for (Value lo : {0, 5000, 50000}) {
      queries.push_back({lo, lo + static_cast<Value>(width)});
    }
  }
  const auto batch =
      ChooseAccessPaths(*fx.stats.model, queries, fx.table.page_count(),
                        fx.table.tuples_per_page());
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto single =
        ChooseAccessPath(*fx.stats.model, queries[i], fx.table.page_count(),
                         fx.table.tuples_per_page());
    EXPECT_EQ(batch[i].path, single.path) << "query " << i;
    EXPECT_EQ(batch[i].estimated_rows, single.estimated_rows);
    EXPECT_EQ(batch[i].full_scan_cost, single.full_scan_cost);
    EXPECT_EQ(batch[i].index_scan_cost, single.index_scan_cost);
  }
}

TEST(PlannerTest, ManagerBatchPlansWholePredicateList) {
  // Multi-column planning goes through StatisticsManager::EstimateBatch:
  // one call costs the whole predicate list, and the decisions land where
  // the per-query planner would put them (narrow -> index, wide -> scan).
  Fixture fx;
  StatisticsManager manager({.buckets = 100, .f = 0.1});
  std::vector<BatchEstimateRequest> requests = {
      {"x", {100, 200}},    // narrow
      {"x", {0, 90000}},    // wide
      {"x", {5000, 5100}},  // narrow
  };
  const auto choices =
      ChooseAccessPaths(manager, fx.table, requests,
                        fx.table.tuples_per_page());
  ASSERT_TRUE(choices.ok());
  ASSERT_EQ(choices->size(), requests.size());
  EXPECT_EQ((*choices)[0].path, AccessPath::kIndexRangeScan);
  EXPECT_EQ((*choices)[1].path, AccessPath::kFullScan);
  EXPECT_EQ((*choices)[2].path, AccessPath::kIndexRangeScan);
}

TEST(PlannerTest, BatchFullScanAnswersAllQueriesWithOneScan) {
  // The batch full-scan arm reads the table exactly once and still
  // returns every query's true row count — including reversed and empty
  // ranges, which count zero rows.
  Fixture fx;
  const std::vector<RangeQuery> queries = {
      {500, 700}, {0, 90000}, {99999, 200000}, {700, 500}, {42, 42}};
  const auto batch = ExecutePlansChecked(fx.table, fx.index, queries,
                                         AccessPath::kFullScan);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->rows.size(), queries.size());
  EXPECT_EQ(batch->io.pages_read, fx.table.page_count());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batch->rows[i],
              fx.truth.CountInRange(queries[i].lo, queries[i].hi))
        << "query " << i;
    const auto single = ExecutePlanChecked(fx.table, fx.index, queries[i],
                                           AccessPath::kFullScan);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batch->rows[i], single->rows);
  }
}

TEST(PlannerTest, BatchIndexArmMatchesPerQueryScans) {
  Fixture fx;
  const std::vector<RangeQuery> queries = {{100, 200}, {5000, 5400},
                                           {800, 1600}};
  const auto batch = ExecutePlansChecked(fx.table, fx.index, queries,
                                         AccessPath::kIndexRangeScan);
  ASSERT_TRUE(batch.ok());
  std::uint64_t per_query_pages = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto single = ExecutePlanChecked(fx.table, fx.index, queries[i],
                                           AccessPath::kIndexRangeScan);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batch->rows[i], single->rows) << "query " << i;
    per_query_pages += single->io.pages_read;
  }
  // The batch I/O bill is the sum of the individual scans — no hidden
  // discount on the index arm.
  EXPECT_EQ(batch->io.pages_read, per_query_pages);
}

TEST(PlannerTest, PathNames) {
  EXPECT_EQ(AccessPathToString(AccessPath::kFullScan), "full-scan");
  EXPECT_EQ(AccessPathToString(AccessPath::kIndexRangeScan),
            "index-range-scan");
}

}  // namespace
}  // namespace equihist
