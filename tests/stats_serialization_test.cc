#include "stats/serialization.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/histogram_builder.h"
#include "data/distribution.h"
#include "data/value_set.h"
#include "storage/table.h"

namespace equihist {
namespace {

Histogram SampleHistogram(std::uint64_t n = 100000, std::uint64_t k = 100) {
  const auto freq = MakeZipf({.n = n, .domain_size = n / 10, .skew = 1.0});
  const ValueSet data = ValueSet::FromFrequencies(*freq);
  return BuildPerfectHistogram(data, k).value();
}

TEST(HistogramSerializationTest, RoundTripPreservesEverything) {
  const Histogram original = SampleHistogram();
  std::vector<std::uint8_t> bytes;
  SerializeHistogram(original, &bytes);
  std::size_t consumed = 0;
  const auto restored = DeserializeHistogram(bytes, &consumed);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(restored->separators(), original.separators());
  EXPECT_EQ(restored->counts(), original.counts());
  EXPECT_EQ(restored->lower_fence(), original.lower_fence());
  EXPECT_EQ(restored->upper_fence(), original.upper_fence());
  EXPECT_EQ(restored->total(), original.total());
}

TEST(HistogramSerializationTest, RoundTripWithNegativeValuesAndDuplicates) {
  const auto h =
      Histogram::Create({-50, -50, 0, 7}, {3, 0, 10, 2, 5}, -100, 100);
  ASSERT_TRUE(h.ok());
  std::vector<std::uint8_t> bytes;
  SerializeHistogram(*h, &bytes);
  const auto restored = DeserializeHistogram(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->separators(), h->separators());
  EXPECT_EQ(restored->counts(), h->counts());
}

TEST(HistogramSerializationTest, SixHundredBinsFitOnePage) {
  // Section 7.1 note 5: SQL Server stores a histogram in one page — 600
  // bins for an integer column. Our encoding honours the same budget.
  const Histogram h = SampleHistogram(1000000, 600);
  EXPECT_TRUE(HistogramFitsInPage(h, 8192));
  std::vector<std::uint8_t> bytes;
  SerializeHistogram(h, &bytes);
  EXPECT_LE(bytes.size(), 8192u);
  EXPECT_GT(MaxBucketsForPage(h, 8192), 600u);
}

TEST(HistogramSerializationTest, RejectsCorruptedBytes) {
  const Histogram h = SampleHistogram(10000, 20);
  std::vector<std::uint8_t> bytes;
  SerializeHistogram(h, &bytes);

  // Truncations at every prefix must fail cleanly, never crash.
  for (std::size_t len = 0; len < bytes.size(); len += 7) {
    const auto result = DeserializeHistogram(
        std::span<const std::uint8_t>(bytes.data(), len));
    EXPECT_FALSE(result.ok()) << "prefix " << len;
  }

  // Bad magic.
  std::vector<std::uint8_t> bad = bytes;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(DeserializeHistogram(bad).ok());

  // Random single-byte corruption either fails or yields a structurally
  // valid histogram (sum check and Create() validation guard the rest).
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> mutated = bytes;
    mutated[rng.NextBounded(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.NextBounded(255));
    const auto result = DeserializeHistogram(mutated);
    if (result.ok()) {
      std::uint64_t sum = 0;
      for (std::uint64_t c : result->counts()) sum += c;
      EXPECT_EQ(sum, result->total());
      EXPECT_TRUE(std::is_sorted(result->separators().begin(),
                                 result->separators().end()));
    }
  }
}

TEST(HistogramSerializationTest, EmptyInputFails) {
  EXPECT_FALSE(DeserializeHistogram({}).ok());
}

TEST(ColumnStatisticsSerializationTest, RoundTrip) {
  const auto freq = MakeZipf({.n = 100000, .domain_size = 1000, .skew = 2.0});
  Table table =
      Table::Create(*freq, PageConfig{8192, 64}, {.kind = LayoutKind::kRandom})
          .value();
  const auto stats = BuildStatisticsFullScan(table, 50);
  ASSERT_TRUE(stats.ok());

  std::vector<std::uint8_t> bytes;
  SerializeColumnStatistics(*stats, &bytes);
  const auto restored = DeserializeColumnStatistics(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->histogram().separators(), stats->histogram().separators());
  EXPECT_EQ(restored->histogram().counts(), stats->histogram().counts());
  EXPECT_DOUBLE_EQ(restored->density, stats->density);
  EXPECT_DOUBLE_EQ(restored->distinct_estimate, stats->distinct_estimate);
  EXPECT_EQ(restored->heavy_hitters, stats->heavy_hitters);
  EXPECT_EQ(restored->from_full_scan, stats->from_full_scan);
  EXPECT_EQ(restored->sample_size, stats->sample_size);
  EXPECT_EQ(restored->row_count, stats->row_count);
}

TEST(ColumnStatisticsSerializationTest, RestoredStatsEstimateIdentically) {
  const auto freq = MakeZipf({.n = 50000, .domain_size = 500, .skew = 1.5});
  Table table =
      Table::Create(*freq, PageConfig{8192, 64}, {.kind = LayoutKind::kRandom})
          .value();
  const auto stats = BuildStatisticsFullScan(table, 40);
  ASSERT_TRUE(stats.ok());
  std::vector<std::uint8_t> bytes;
  SerializeColumnStatistics(*stats, &bytes);
  const auto restored = DeserializeColumnStatistics(bytes);
  ASSERT_TRUE(restored.ok());
  for (const RangeQuery& q :
       {RangeQuery{0, 100}, RangeQuery{50, 450}, RangeQuery{-10, 10000}}) {
    EXPECT_DOUBLE_EQ(restored->EstimateRangeCount(q),
                     stats->EstimateRangeCount(q));
  }
  for (Value v : {Value{1}, Value{17}, Value{499}}) {
    EXPECT_DOUBLE_EQ(restored->EstimateEqualityCount(v),
                     stats->EstimateEqualityCount(v));
  }
}

TEST(ColumnStatisticsSerializationTest, TruncationFailsCleanly) {
  const auto freq = MakeUniformDup(1000, 10);
  Table table =
      Table::Create(*freq, PageConfig{8192, 64}, {.kind = LayoutKind::kRandom})
          .value();
  const auto stats = BuildStatisticsFullScan(table, 5);
  ASSERT_TRUE(stats.ok());
  std::vector<std::uint8_t> bytes;
  SerializeColumnStatistics(*stats, &bytes);
  for (std::size_t len = 0; len + 1 < bytes.size(); len += 3) {
    EXPECT_FALSE(DeserializeColumnStatistics(
                     std::span<const std::uint8_t>(bytes.data(), len))
                     .ok());
  }
}

}  // namespace
}  // namespace equihist
