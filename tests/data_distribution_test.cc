#include "data/distribution.h"

#include <algorithm>
#include <cstdint>
#include <tuple>

#include <gtest/gtest.h>

namespace equihist {
namespace {

TEST(FrequencyVectorTest, TotalsAndDistinct) {
  FrequencyVector fv({{1, 3}, {5, 2}, {9, 1}});
  EXPECT_EQ(fv.total_count(), 6u);
  EXPECT_EQ(fv.distinct_count(), 3u);
  EXPECT_FALSE(fv.empty());
}

TEST(FrequencyVectorTest, DefaultIsEmpty) {
  FrequencyVector fv;
  EXPECT_TRUE(fv.empty());
  EXPECT_EQ(fv.total_count(), 0u);
}

TEST(MakeZipfTest, CountsSumExactlyToN) {
  for (double skew : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    const auto fv =
        MakeZipf({.n = 10000, .domain_size = 500, .skew = skew, .seed = 1});
    ASSERT_TRUE(fv.ok()) << skew;
    EXPECT_EQ(fv->total_count(), 10000u) << skew;
  }
}

TEST(MakeZipfTest, ZeroSkewIsUniform) {
  const auto fv = MakeZipf({.n = 1000, .domain_size = 100, .skew = 0.0});
  ASSERT_TRUE(fv.ok());
  EXPECT_EQ(fv->distinct_count(), 100u);
  for (const auto& entry : fv->entries()) {
    EXPECT_EQ(entry.count, 10u);
  }
}

TEST(MakeZipfTest, HighSkewConcentratesMass) {
  ZipfSpec spec{.n = 100000, .domain_size = 1000, .skew = 2.0,
                .placement = FrequencyPlacement::kDecreasing};
  const auto fv = MakeZipf(spec);
  ASSERT_TRUE(fv.ok());
  // With decreasing placement the first entry carries the largest count:
  // about n / zeta(2) = 60.8% of the data.
  EXPECT_GT(fv->entries().front().count, 55000u);
  // High skew drops most of the tail below one tuple.
  EXPECT_LT(fv->distinct_count(), 1000u);
}

TEST(MakeZipfTest, DecreasingPlacementIsSortedByCount) {
  ZipfSpec spec{.n = 5000, .domain_size = 50, .skew = 1.0,
                .placement = FrequencyPlacement::kDecreasing};
  const auto fv = MakeZipf(spec);
  ASSERT_TRUE(fv.ok());
  for (std::size_t i = 1; i < fv->entries().size(); ++i) {
    EXPECT_GE(fv->entries()[i - 1].count, fv->entries()[i].count);
  }
}

TEST(MakeZipfTest, ShuffledPlacementPreservesMultiset) {
  ZipfSpec dec{.n = 5000, .domain_size = 50, .skew = 1.5,
               .placement = FrequencyPlacement::kDecreasing};
  ZipfSpec shuf = dec;
  shuf.placement = FrequencyPlacement::kShuffled;
  shuf.seed = 99;
  const auto a = MakeZipf(dec);
  const auto b = MakeZipf(shuf);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto counts_of = [](const FrequencyVector& fv) {
    std::vector<std::uint64_t> counts;
    for (const auto& e : fv.entries()) counts.push_back(e.count);
    std::sort(counts.begin(), counts.end());
    return counts;
  };
  EXPECT_EQ(counts_of(*a), counts_of(*b));
}

TEST(MakeZipfTest, ShuffleIsDeterministicInSeed) {
  ZipfSpec spec{.n = 2000, .domain_size = 64, .skew = 1.0, .seed = 5};
  const auto a = MakeZipf(spec);
  const auto b = MakeZipf(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->entries(), b->entries());

  spec.seed = 6;
  const auto c = MakeZipf(spec);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->entries(), c->entries());
}

TEST(MakeZipfTest, ValueStrideSpacesValues) {
  ZipfSpec spec{.n = 100, .domain_size = 10, .skew = 0.0, .value_stride = 7};
  const auto fv = MakeZipf(spec);
  ASSERT_TRUE(fv.ok());
  for (const auto& entry : fv->entries()) {
    EXPECT_EQ(entry.value % 7, 0);
  }
}

TEST(MakeZipfTest, RejectsBadArguments) {
  EXPECT_FALSE(MakeZipf({.n = 0, .domain_size = 10}).ok());
  EXPECT_FALSE(MakeZipf({.n = 10, .domain_size = 0}).ok());
  EXPECT_FALSE(MakeZipf({.n = 10, .domain_size = 5, .skew = -1.0}).ok());
  EXPECT_FALSE(
      MakeZipf({.n = 10, .domain_size = 5, .skew = 1.0, .value_stride = 0})
          .ok());
}

TEST(MakeAllDistinctTest, EveryValueOnce) {
  const auto fv = MakeAllDistinct(100);
  ASSERT_TRUE(fv.ok());
  EXPECT_EQ(fv->total_count(), 100u);
  EXPECT_EQ(fv->distinct_count(), 100u);
  for (const auto& entry : fv->entries()) EXPECT_EQ(entry.count, 1u);
}

TEST(MakeUniformDupTest, ExactMultiplicities) {
  const auto fv = MakeUniformDup(1000, 50);
  ASSERT_TRUE(fv.ok());
  EXPECT_EQ(fv->distinct_count(), 50u);
  for (const auto& entry : fv->entries()) EXPECT_EQ(entry.count, 20u);
}

TEST(MakeUniformDupTest, RequiresDivisibility) {
  EXPECT_FALSE(MakeUniformDup(1000, 3).ok());
  EXPECT_TRUE(MakeUniformDup(999, 3).ok());
}

TEST(MakeConstantTest, SingleEntry) {
  const auto fv = MakeConstant(500, 7);
  ASSERT_TRUE(fv.ok());
  EXPECT_EQ(fv->distinct_count(), 1u);
  EXPECT_EQ(fv->entries().front().value, 7);
  EXPECT_EQ(fv->entries().front().count, 500u);
}

TEST(MakeSelfSimilarTest, FirstHalfGetsHFraction) {
  SelfSimilarSpec spec{.n = 100000, .domain_size = 64, .h = 0.8};
  const auto fv = MakeSelfSimilar(spec);
  ASSERT_TRUE(fv.ok());
  EXPECT_EQ(fv->total_count(), 100000u);
  std::uint64_t first_half = 0;
  for (const auto& entry : fv->entries()) {
    if (entry.value <= 32) first_half += entry.count;
  }
  EXPECT_NEAR(static_cast<double>(first_half) / 100000.0, 0.8, 0.01);
}

TEST(MakeSelfSimilarTest, RejectsBadH) {
  EXPECT_FALSE(MakeSelfSimilar({.n = 10, .domain_size = 4, .h = 0.5}).ok());
  EXPECT_FALSE(MakeSelfSimilar({.n = 10, .domain_size = 4, .h = 1.0}).ok());
}

TEST(MakeNormalTest, MassPeaksAtCenter) {
  NormalSpec spec{.n = 100000, .domain_size = 101, .sigma_fraction = 0.1};
  const auto fv = MakeNormal(spec);
  ASSERT_TRUE(fv.ok());
  EXPECT_EQ(fv->total_count(), 100000u);
  std::uint64_t center_count = 0;
  std::uint64_t edge_count = 0;
  for (const auto& entry : fv->entries()) {
    if (entry.value == 51) center_count = entry.count;
    if (entry.value == 1) edge_count = entry.count;
  }
  EXPECT_GT(center_count, edge_count * 10);
}

TEST(MakeNormalTest, RejectsBadSigma) {
  EXPECT_FALSE(
      MakeNormal({.n = 10, .domain_size = 4, .sigma_fraction = 0.0}).ok());
}

// Property sweep: every distribution produces sorted, unique values and
// positive counts that sum to n.
class DistributionInvariantTest
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(DistributionInvariantTest, SortedUniquePositiveSumsToN) {
  const auto [skew, n] = GetParam();
  const auto fv = MakeZipf({.n = n, .domain_size = 200, .skew = skew});
  ASSERT_TRUE(fv.ok());
  EXPECT_EQ(fv->total_count(), n);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < fv->entries().size(); ++i) {
    const auto& entry = fv->entries()[i];
    EXPECT_GT(entry.count, 0u);
    sum += entry.count;
    if (i > 0) {
      EXPECT_LT(fv->entries()[i - 1].value, entry.value);
    }
  }
  EXPECT_EQ(sum, n);
}

INSTANTIATE_TEST_SUITE_P(
    SkewAndSize, DistributionInvariantTest,
    ::testing::Combine(::testing::Values(0.0, 0.5, 1.0, 2.0, 3.0, 4.0),
                       ::testing::Values(std::uint64_t{100},
                                         std::uint64_t{1777},
                                         std::uint64_t{100000})));

}  // namespace
}  // namespace equihist
