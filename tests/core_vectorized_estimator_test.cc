// Differential property tests for the vectorized serving core (DESIGN.md
// section 14): the Eytzinger and SIMD kernels must agree *bitwise* — not
// within a tolerance — with the scalar compiled estimator, over the
// Section-5 corpus of spike-heavy histograms, extreme fences, and
// degenerate shapes, at every batch layout (single query, sequential
// batch, pool-sharded batch, every explicit kernel). The backend sweep at
// the bottom extends the same bitwise batch-vs-loop contract to every
// registered histogram family.

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/compiled_estimator.h"
#include "core/histogram.h"
#include "core/histogram_builder.h"
#include "data/distribution.h"
#include "data/value_set.h"
#include "data/workload.h"
#include "stats/histogram_model.h"

namespace equihist {
namespace {

constexpr Value kValueMin = std::numeric_limits<Value>::min();
constexpr Value kValueMax = std::numeric_limits<Value>::max();

// Bit-level comparison: catches sign-of-zero and NaN-payload divergence
// that operator== would wave through.
::testing::AssertionResult BitEqual(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " (0x" << std::hex << std::bit_cast<std::uint64_t>(a)
         << ") != " << std::dec << b << " (0x" << std::hex
         << std::bit_cast<std::uint64_t>(b) << ")";
}

// Same generator family as core_compiled_estimator_test: random
// non-decreasing separators with duplicated runs (probability `dup_prob`)
// between the given fences, random counts (zeros allowed).
Histogram RandomHistogram(Rng& rng, std::uint64_t k, Value lower, Value upper,
                          double dup_prob) {
  std::vector<Value> separators;
  separators.reserve(k - 1);
  Value prev = lower;
  for (std::uint64_t j = 0; j + 1 < k; ++j) {
    if (!separators.empty() && rng.NextDouble() < dup_prob) {
      separators.push_back(prev);
      continue;
    }
    const Value lo = prev;
    const Value hi = upper - 1;
    separators.push_back(lo >= hi ? lo : rng.NextInRange(lo, hi));
    prev = separators.back();
  }
  std::vector<std::uint64_t> counts;
  counts.reserve(k);
  for (std::uint64_t j = 0; j < k; ++j) {
    counts.push_back(static_cast<std::uint64_t>(rng.NextInRange(0, 5000)));
  }
  if (std::all_of(counts.begin(), counts.end(),
                  [](std::uint64_t c) { return c == 0; })) {
    counts[0] = 1;
  }
  return Histogram::Create(std::move(separators), std::move(counts), lower,
                           upper)
      .value();
}

// In-domain, separator-aligned, fence-overshooting, empty, reversed and
// out-of-domain queries — the full mix every kernel must agree on.
RangeQuery RandomQuery(Rng& rng, Value lf, Value uf,
                       const std::vector<Value>& seps) {
  switch (rng.NextInRange(0, 5)) {
    case 0: {
      if (!seps.empty()) {
        const Value a = seps[static_cast<std::size_t>(
            rng.NextInRange(0, static_cast<std::int64_t>(seps.size()) - 1))];
        const Value b = seps[static_cast<std::size_t>(
            rng.NextInRange(0, static_cast<std::int64_t>(seps.size()) - 1))];
        return {std::min(a, b), std::max(a, b)};
      }
      return {lf, uf};
    }
    case 1:
      return {lf == kValueMin ? kValueMin : lf - 1,
              uf == kValueMax ? kValueMax : uf + 1};
    case 2: {
      const Value v = rng.NextInRange(lf, uf);
      return rng.NextDouble() < 0.5
                 ? RangeQuery{v, v}
                 : RangeQuery{std::max(v, lf + 1), std::max(v, lf + 1) - 1};
    }
    case 3: {
      return rng.NextDouble() < 0.5
                 ? RangeQuery{uf, uf == kValueMax ? kValueMax : uf + 100}
                 : RangeQuery{lf == kValueMin ? kValueMin : lf - 100, lf};
    }
    default: {
      const Value a = rng.NextInRange(lf, uf);
      const Value b = rng.NextInRange(lf, uf);
      return {std::min(a, b), std::max(a, b)};
    }
  }
}

std::vector<RangeQuery> MakeQueries(Rng& rng, const Histogram& histogram,
                                    std::size_t n) {
  std::vector<RangeQuery> queries;
  queries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queries.push_back(RandomQuery(rng, histogram.lower_fence(),
                                  histogram.upper_fence(),
                                  histogram.separators()));
  }
  return queries;
}

// The core assertion: every kernel, every call shape, one bit pattern.
void ExpectKernelsBitwiseIdentical(const CompiledEstimator& compiled,
                                   std::span<const RangeQuery> queries,
                                   ThreadPool* pool) {
  const std::size_t n = queries.size();
  std::vector<double> scalar(n), eytzinger(n), simd(n), automatic(n),
      sharded(n);
  compiled.EstimateRangeCounts(queries, scalar, nullptr,
                               EstimatorKernel::kScalar);
  compiled.EstimateRangeCounts(queries, eytzinger, nullptr,
                               EstimatorKernel::kEytzinger);
  compiled.EstimateRangeCounts(queries, simd, nullptr, EstimatorKernel::kSimd);
  compiled.EstimateRangeCounts(queries, automatic, nullptr,
                               EstimatorKernel::kAuto);
  compiled.EstimateRangeCounts(queries, sharded, pool, EstimatorKernel::kAuto);
  for (std::size_t i = 0; i < n; ++i) {
    const double single = compiled.EstimateRangeCount(queries[i]);
    ASSERT_TRUE(BitEqual(scalar[i], single))
        << "batch kScalar vs single-query at " << i;
    ASSERT_TRUE(BitEqual(eytzinger[i], single))
        << "kEytzinger vs scalar at " << i << " query (" << queries[i].lo
        << ", " << queries[i].hi << "]";
    ASSERT_TRUE(
        BitEqual(compiled.EstimateRangeCountEytzinger(queries[i]), single))
        << "single-query Eytzinger vs scalar at " << i;
    ASSERT_TRUE(BitEqual(simd[i], single))
        << "kSimd vs scalar at " << i << " query (" << queries[i].lo << ", "
        << queries[i].hi << "]";
    ASSERT_TRUE(BitEqual(automatic[i], single)) << "kAuto vs scalar at " << i;
    ASSERT_TRUE(BitEqual(sharded[i], single))
        << "pool-sharded vs scalar at " << i;
  }
}

TEST(VectorizedEstimatorTest, KernelsBitwiseIdenticalOnRandomHistograms) {
  Rng rng(20260808);
  ThreadPool pool(4);
  for (int trial = 0; trial < 40; ++trial) {
    // Log-spread k up to the full 10000 so both cache-resident and
    // cache-busting separator arrays are exercised.
    const double log_k = rng.NextDouble() * 4.0;  // 10^0 .. 10^4
    const std::uint64_t k = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::pow(10.0, log_k)));
    const Value lower = rng.NextInRange(-1000000, 999999);
    const Value upper = rng.NextInRange(lower + 1, 1000000);
    const double dup_prob = (trial % 3 == 0) ? 0.4 : 0.0;
    const Histogram histogram =
        RandomHistogram(rng, k, lower, upper, dup_prob);
    const CompiledEstimator compiled(histogram);
    // 600 queries crosses the pool-sharding threshold, so the sharded run
    // above genuinely fans out.
    const std::vector<RangeQuery> queries = MakeQueries(rng, histogram, 600);
    ExpectKernelsBitwiseIdentical(compiled, queries, &pool);
  }
}

TEST(VectorizedEstimatorTest, KernelsBitwiseIdenticalWithExtremeFences) {
  Rng rng(71);
  ThreadPool pool(3);
  // Fences at the int64 extremes: bucket widths beyond 2^63 exercise the
  // unsigned-wraparound distance and the exact u64->f64 conversion.
  for (const auto& [lower, upper] :
       std::vector<std::pair<Value, Value>>{{kValueMin, kValueMax},
                                            {kValueMin, kValueMin + 2},
                                            {kValueMax - 2, kValueMax},
                                            {-1, 1}}) {
    for (const std::uint64_t k : {std::uint64_t{1}, std::uint64_t{2},
                                  std::uint64_t{17}, std::uint64_t{257}}) {
      const std::uint64_t usable = std::min<std::uint64_t>(
          k, static_cast<std::uint64_t>(ValueDistance(lower, upper)) + 1);
      const Histogram histogram =
          RandomHistogram(rng, usable, lower, upper, 0.25);
      const CompiledEstimator compiled(histogram);
      const std::vector<RangeQuery> queries =
          MakeQueries(rng, histogram, 640);
      ExpectKernelsBitwiseIdentical(compiled, queries, &pool);
    }
  }
}

TEST(VectorizedEstimatorTest, KernelsBitwiseIdenticalOnDegenerateShapes) {
  ThreadPool pool(2);
  Rng rng(9001);
  // Single bucket (no separators at all) — the Eytzinger descent's empty
  // tree and the SIMD search's zero-length loop.
  {
    const Histogram histogram =
        Histogram::Create({}, {5}, -10, 10).value();
    const CompiledEstimator compiled(histogram);
    const std::vector<RangeQuery> queries = MakeQueries(rng, histogram, 64);
    ExpectKernelsBitwiseIdentical(compiled, queries, &pool);
  }
  // All separators duplicated at one value: one giant spike run.
  {
    const Histogram histogram =
        Histogram::Create({0, 0, 0, 0, 0, 0, 0}, {1, 9, 9, 9, 9, 9, 9, 3},
                          -100, 100)
            .value();
    const CompiledEstimator compiled(histogram);
    const std::vector<RangeQuery> queries = MakeQueries(rng, histogram, 64);
    ExpectKernelsBitwiseIdentical(compiled, queries, &pool);
  }
  // Minimal domain: every bucket is a spike or width-1.
  {
    const Histogram histogram =
        Histogram::Create({1, 1, 2}, {4, 7, 0, 2}, 0, 2).value();
    const CompiledEstimator compiled(histogram);
    const std::vector<RangeQuery> queries = MakeQueries(rng, histogram, 64);
    ExpectKernelsBitwiseIdentical(compiled, queries, &pool);
  }
  // Zero-mass buckets everywhere except one.
  {
    const Histogram histogram =
        Histogram::Create({10, 20, 30}, {0, 0, 11, 0}, 0, 40).value();
    const CompiledEstimator compiled(histogram);
    const std::vector<RangeQuery> queries = MakeQueries(rng, histogram, 64);
    ExpectKernelsBitwiseIdentical(compiled, queries, &pool);
  }
}

TEST(VectorizedEstimatorTest, TailAndSeamLayoutsAreInvariant) {
  // Batch sizes around the SIMD group width: 0..17 covers "all tail",
  // "one full group", and "group + ragged tail" seams.
  Rng rng(424242);
  const Histogram histogram = RandomHistogram(rng, 100, -5000, 5000, 0.3);
  const CompiledEstimator compiled(histogram);
  const std::vector<RangeQuery> all = MakeQueries(rng, histogram, 17);
  for (std::size_t n = 0; n <= all.size(); ++n) {
    const std::span<const RangeQuery> queries(all.data(), n);
    std::vector<double> simd(n, -1.0), scalar(n, -1.0);
    compiled.EstimateRangeCounts(queries, simd, nullptr,
                                 EstimatorKernel::kSimd);
    compiled.EstimateRangeCounts(queries, scalar, nullptr,
                                 EstimatorKernel::kScalar);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(BitEqual(simd[i], scalar[i])) << "n=" << n << " i=" << i;
    }
  }
}

TEST(VectorizedEstimatorTest, KernelResolutionDegradesGracefully) {
  Rng rng(31);
  const Histogram histogram = RandomHistogram(rng, 64, -5000, 5000, 0.2);
  const CompiledEstimator small(histogram);
  EXPECT_EQ(small.ResolveKernel(EstimatorKernel::kScalar),
            EstimatorKernel::kScalar);
  EXPECT_EQ(small.ResolveKernel(EstimatorKernel::kEytzinger),
            EstimatorKernel::kEytzinger);
  // A cache-resident separator array auto-dispatches to the flat scalar
  // search — the measured winner below kAutoVectorThreshold.
  EXPECT_EQ(small.ResolveKernel(EstimatorKernel::kAuto),
            EstimatorKernel::kScalar);
  if (CompiledEstimator::SimdAvailable()) {
    EXPECT_EQ(small.ResolveKernel(EstimatorKernel::kSimd),
              EstimatorKernel::kSimd);
  } else {
    // No AVX2: an explicit SIMD request falls back to the Eytzinger
    // layout instead of failing.
    EXPECT_EQ(small.ResolveKernel(EstimatorKernel::kSimd),
              EstimatorKernel::kEytzinger);
  }
}

TEST(VectorizedEstimatorTest, AutoDispatchGoesVectorizedPastThreshold) {
  // Past kAutoVectorThreshold separators the array has spilled L2 and
  // kAuto switches to the cache-optimal kernels: SIMD with AVX2, the
  // Eytzinger layout without.
  const std::uint64_t n =
      static_cast<std::uint64_t>(CompiledEstimator::kAutoVectorThreshold) + 64;
  const auto freq = MakeAllDistinct(2 * n);
  ASSERT_TRUE(freq.ok());
  const ValueSet data = ValueSet::FromFrequencies(*freq);
  const auto histogram = BuildPerfectHistogram(data, n);
  ASSERT_TRUE(histogram.ok());
  const CompiledEstimator large(*histogram);
  const EstimatorKernel resolved = large.ResolveKernel(EstimatorKernel::kAuto);
  if (CompiledEstimator::SimdAvailable()) {
    EXPECT_EQ(resolved, EstimatorKernel::kSimd);
  } else {
    EXPECT_EQ(resolved, EstimatorKernel::kEytzinger);
  }
  // And the dispatch stays bitwise-invisible: spot-check the large
  // estimator's kernels against each other.
  Rng rng(77);
  const std::vector<RangeQuery> queries = MakeQueries(rng, *histogram, 512);
  ExpectKernelsBitwiseIdentical(large, queries, nullptr);
}

// Every registered backend (built-ins and whatever else the process added)
// honours the batch contract bitwise: EstimateRangeCounts over any pool
// equals the per-query loop. Non-equi-height families run the scalar
// batched form; equi-height runs the vectorized core.
TEST(VectorizedEstimatorTest, AllBackendsBatchBitwiseEqualsLoop) {
  Rng rng(1337);
  ThreadPool pool(3);
  std::vector<Value> sample;
  for (int i = 0; i < 4000; ++i) {
    sample.push_back(rng.NextInRange(-100000, 100000));
  }
  // A heavy duplicated run so the compressed backend has a singleton.
  for (int i = 0; i < 800; ++i) sample.push_back(777);
  std::sort(sample.begin(), sample.end());

  for (const HistogramBackendId id : HistogramBackendRegistry::Global().Ids()) {
    const auto backend = HistogramBackendRegistry::Global().Find(id).value();
    const auto built = backend.build_from_sample(sample, 50, 48000);
    ASSERT_TRUE(built.ok()) << backend.name << ": " << built.status();
    const HistogramModelPtr model = built.value();
    std::vector<RangeQuery> queries;
    for (int i = 0; i < 600; ++i) {
      queries.push_back(RandomQuery(rng, model->lower_fence(),
                                    model->upper_fence(), {}));
    }
    std::vector<double> batch(queries.size()), pooled(queries.size());
    model->EstimateRangeCounts(queries, batch, nullptr);
    model->EstimateRangeCounts(queries, pooled, &pool);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const double single = model->EstimateRangeCount(queries[i]);
      ASSERT_TRUE(BitEqual(batch[i], single))
          << backend.name << " batch vs loop at " << i;
      ASSERT_TRUE(BitEqual(pooled[i], single))
          << backend.name << " pooled batch vs loop at " << i;
    }
  }
}

}  // namespace
}  // namespace equihist
