#include "storage/fault_injection.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "storage/heap_file.h"
#include "storage/page.h"

namespace equihist {
namespace {

HeapFile SmallFile(std::uint64_t tuples = 64) {
  HeapFile file(PageConfig{64, 8});  // 8 tuples per page
  for (std::uint64_t i = 0; i < tuples; ++i) {
    file.Append(static_cast<Value>(i));
  }
  return file;
}

TEST(FaultInjectorTest, LostTriggerPageAlwaysFails) {
  FaultSpec spec;
  spec.lost_pages = {2};
  FaultInjector injector(spec);
  EXPECT_EQ(injector.Decide(2), FaultKind::kLost);
  EXPECT_EQ(injector.Decide(2), FaultKind::kLost);  // lost stays lost
  EXPECT_EQ(injector.Decide(0), FaultKind::kNone);
  EXPECT_EQ(injector.lost_injected(), 2u);
}

TEST(FaultInjectorTest, TransientTriggerHealsAfterConfiguredFailures) {
  FaultSpec spec;
  spec.transient_pages = {1};
  spec.transient_failures_per_page = 3;
  FaultInjector injector(spec);
  EXPECT_EQ(injector.Decide(1), FaultKind::kTransient);
  EXPECT_EQ(injector.Decide(1), FaultKind::kTransient);
  EXPECT_EQ(injector.Decide(1), FaultKind::kTransient);
  EXPECT_EQ(injector.Decide(1), FaultKind::kNone);  // healed
  EXPECT_EQ(injector.Decide(1), FaultKind::kNone);
  EXPECT_EQ(injector.transient_injected(), 3u);
}

TEST(FaultInjectorTest, PrecedenceIsLostOverCorruptOverTransient) {
  FaultSpec spec;
  spec.lost_pages = {5};
  spec.corrupt_pages = {5, 6};
  spec.transient_pages = {5, 6, 7};
  FaultInjector injector(spec);
  EXPECT_EQ(injector.Decide(5), FaultKind::kLost);
  EXPECT_EQ(injector.Decide(6), FaultKind::kCorrupt);
  EXPECT_EQ(injector.Decide(7), FaultKind::kTransient);
}

TEST(FaultInjectorTest, ProbabilisticDecisionsAreSeedDeterministic) {
  FaultSpec spec;
  spec.lost_probability = 0.3;
  spec.corrupt_probability = 0.3;
  spec.seed = 77;
  FaultInjector a(spec);
  FaultInjector b(spec);
  for (std::uint64_t page = 0; page < 500; ++page) {
    EXPECT_EQ(a.Decide(page), b.Decide(page)) << "page " << page;
  }
  // The decisions hash (seed, page_id, kind), so a different seed gives a
  // different fault set.
  spec.seed = 78;
  FaultInjector c(spec);
  bool any_difference = false;
  for (std::uint64_t page = 0; page < 500 && !any_difference; ++page) {
    any_difference = a.Decide(page) != c.Decide(page);
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultInjectorTest, ProbabilityExtremesSelectAllOrNothing) {
  FaultSpec all;
  all.lost_probability = 1.0;
  FaultInjector everything(all);
  FaultSpec none;
  none.lost_probability = 0.0;
  none.corrupt_probability = 0.0;
  none.transient_probability = 0.0;
  FaultInjector nothing(none);
  for (std::uint64_t page = 0; page < 100; ++page) {
    EXPECT_EQ(everything.Decide(page), FaultKind::kLost);
    EXPECT_EQ(nothing.Decide(page), FaultKind::kNone);
  }
}

TEST(FaultInjectorTest, CorruptedCopyIsStableAndFailsChecksum) {
  HeapFile file = SmallFile();
  FaultSpec spec;
  spec.corrupt_pages = {0};
  FaultInjector injector(spec);
  const Page& original = file.page(0);
  ASSERT_TRUE(original.ChecksumOk());
  const Page* corrupted = injector.CorruptedCopy(0, original);
  ASSERT_NE(corrupted, nullptr);
  EXPECT_FALSE(corrupted->ChecksumOk());
  // The copy is cached: repeated reads of the page observe the same
  // corrupted bytes, like a real medium would behave.
  EXPECT_EQ(corrupted, injector.CorruptedCopy(0, original));
  // The original is untouched.
  EXPECT_TRUE(original.ChecksumOk());
}

TEST(FaultInjectorTest, LatencySelectionIsDeterministicAndCounted) {
  FaultSpec spec;
  spec.latency_probability = 1.0;
  spec.latency_micros = 1;
  FaultInjector injector(spec);
  EXPECT_TRUE(injector.InjectsLatency(0));
  EXPECT_TRUE(injector.InjectsLatency(9));
  EXPECT_EQ(injector.latency_micros(), 1u);
  injector.RecordLatencyInjected();
  EXPECT_EQ(injector.latency_injected(), 1u);
}

// -- HeapFile integration -----------------------------------------------------

TEST(HeapFileFaultTest, LostPageReadsAsDataLoss) {
  HeapFile file = SmallFile();
  FaultSpec spec;
  spec.lost_pages = {1};
  FaultInjector injector(spec);
  file.set_fault_injector(&injector);
  IoStats stats;
  const auto lost = file.ReadPage(1, &stats);
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(stats.pages_read, 0u);  // failed reads are not charged
  // Healthy pages still read fine through the same injector.
  EXPECT_TRUE(file.ReadPage(0, &stats).ok());
  EXPECT_EQ(stats.pages_read, 1u);
}

TEST(HeapFileFaultTest, TransientPageFailsThenHeals) {
  HeapFile file = SmallFile();
  FaultSpec spec;
  spec.transient_pages = {0};
  spec.transient_failures_per_page = 2;
  FaultInjector injector(spec);
  file.set_fault_injector(&injector);
  IoStats stats;
  auto read = file.ReadPage(0, &stats);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kUnavailable);
  read = file.ReadPage(0, &stats);
  ASSERT_FALSE(read.ok());
  read = file.ReadPage(0, &stats);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(stats.pages_read, 1u);
}

TEST(HeapFileFaultTest, CorruptPageIsCaughtByChecksum) {
  HeapFile file = SmallFile();
  FaultSpec spec;
  spec.corrupt_pages = {3};
  FaultInjector injector(spec);
  file.set_fault_injector(&injector);
  IoStats stats;
  const auto read = file.ReadPage(3, &stats);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(read.status().message().find("checksum"), std::string::npos);
  EXPECT_GE(injector.corrupt_injected(), 1u);
}

TEST(HeapFileFaultTest, LatencyPagesStillReadCorrectly) {
  HeapFile file = SmallFile();
  FaultSpec spec;
  spec.latency_probability = 1.0;
  spec.latency_micros = 1;
  FaultInjector injector(spec);
  file.set_fault_injector(&injector);
  IoStats stats;
  const auto read = file.ReadPage(0, &stats);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ((*read)->at(0), 0);
  EXPECT_GE(injector.latency_injected(), 1u);
}

TEST(HeapFileFaultTest, DetachRestoresFaultFreeReads) {
  HeapFile file = SmallFile();
  FaultSpec spec;
  spec.lost_probability = 1.0;
  FaultInjector injector(spec);
  file.set_fault_injector(&injector);
  EXPECT_FALSE(file.ReadPage(0, nullptr).ok());
  file.set_fault_injector(nullptr);
  EXPECT_TRUE(file.ReadPage(0, nullptr).ok());
}

TEST(HeapFileFaultTest, ReadPageRetryingClearsTransientsAndCountsRetries) {
  HeapFile file = SmallFile();
  FaultSpec spec;
  spec.transient_pages = {0};
  spec.transient_failures_per_page = 3;
  FaultInjector injector(spec);
  file.set_fault_injector(&injector);
  RetryPolicy policy;
  policy.max_attempts = 4;
  IoStats stats;
  const auto read = file.ReadPageRetrying(0, policy, &stats);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(stats.transient_retries, 3u);
  EXPECT_EQ(stats.pages_read, 1u);
}

TEST(HeapFileFaultTest, ReadPageRetryingGivesUpPastTheBudget) {
  HeapFile file = SmallFile();
  FaultSpec spec;
  spec.transient_pages = {0};
  spec.transient_failures_per_page = 10;
  FaultInjector injector(spec);
  file.set_fault_injector(&injector);
  RetryPolicy policy;
  policy.max_attempts = 3;
  IoStats stats;
  const auto read = file.ReadPageRetrying(0, policy, &stats);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(stats.transient_retries, 2u);
  EXPECT_EQ(stats.pages_read, 0u);
}

TEST(HeapFileFaultTest, ReadPageRetryingDoesNotRetryLostPages) {
  HeapFile file = SmallFile();
  FaultSpec spec;
  spec.lost_pages = {0};
  FaultInjector injector(spec);
  file.set_fault_injector(&injector);
  RetryPolicy policy;
  policy.max_attempts = 5;
  IoStats stats;
  const auto read = file.ReadPageRetrying(0, policy, &stats);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(stats.transient_retries, 0u);
  EXPECT_EQ(injector.lost_injected(), 1u);
}

}  // namespace
}  // namespace equihist
