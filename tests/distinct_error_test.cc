#include "distinct/error.h"

#include <gtest/gtest.h>

namespace equihist {
namespace {

TEST(RatioErrorTest, SymmetricAndAtLeastOne) {
  EXPECT_DOUBLE_EQ(*RatioError(100.0, 100), 1.0);
  EXPECT_DOUBLE_EQ(*RatioError(200.0, 100), 2.0);
  EXPECT_DOUBLE_EQ(*RatioError(50.0, 100), 2.0);
  EXPECT_DOUBLE_EQ(*RatioError(10.0, 1000), 100.0);
}

TEST(RatioErrorTest, PaperSection62Example) {
  // n = 100,000, d = 500, e = 5000: off by a factor of 10...
  EXPECT_DOUBLE_EQ(*RatioError(5000.0, 500), 10.0);
}

TEST(RatioErrorTest, Validation) {
  EXPECT_FALSE(RatioError(10.0, 0).ok());
  EXPECT_FALSE(RatioError(0.0, 10).ok());
  EXPECT_FALSE(RatioError(-5.0, 10).ok());
}

TEST(RelErrorTest, PaperSection62Example) {
  // ...but rel-error = (500 - 5000)/100000 = -0.045: the paper reports the
  // magnitude 0.045 as "indicating d << n correctly".
  EXPECT_DOUBLE_EQ(*RelError(5000.0, 500, 100000), -0.045);
  EXPECT_DOUBLE_EQ(*AbsRelError(5000.0, 500, 100000), 0.045);
}

TEST(RelErrorTest, SignConvention) {
  // Positive = under-estimate.
  EXPECT_GT(*RelError(100.0, 500, 1000), 0.0);
  EXPECT_LT(*RelError(900.0, 500, 1000), 0.0);
  EXPECT_DOUBLE_EQ(*RelError(500.0, 500, 1000), 0.0);
}

TEST(RelErrorTest, Validation) {
  EXPECT_FALSE(RelError(10.0, 5, 0).ok());
  EXPECT_FALSE(AbsRelError(10.0, 5, 0).ok());
}

}  // namespace
}  // namespace equihist
