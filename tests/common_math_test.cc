#include "common/math.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace equihist {
namespace {

TEST(KahanSumTest, SumsExactlyRepresentableValues) {
  KahanSum sum;
  for (int i = 1; i <= 100; ++i) sum.Add(i);
  EXPECT_DOUBLE_EQ(sum.Value(), 5050.0);
}

TEST(KahanSumTest, CompensatesSmallTermsAgainstLargeBase) {
  // Naive summation of 1e16 + 1.0 * 1000 - 1e16 loses the ones entirely;
  // Neumaier compensation keeps them.
  KahanSum sum;
  sum.Add(1e16);
  for (int i = 0; i < 1000; ++i) sum.Add(1.0);
  sum.Add(-1e16);
  EXPECT_NEAR(sum.Value(), 1000.0, 1e-6);
}

TEST(StableSumTest, MatchesKahan) {
  const std::vector<double> values = {0.1, 0.2, 0.3, 0.4};
  EXPECT_NEAR(StableSum(values), 1.0, 1e-12);
}

TEST(MeanVarianceTest, BasicMoments) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(values), 5.0);
  EXPECT_DOUBLE_EQ(Variance(values), 4.0);
}

TEST(MeanVarianceTest, EmptySpanIsZero) {
  const std::vector<double> empty;
  EXPECT_EQ(Mean(empty), 0.0);
  EXPECT_EQ(Variance(empty), 0.0);
}

TEST(GeneralizedHarmonicTest, OrdinaryHarmonicNumbers) {
  EXPECT_DOUBLE_EQ(GeneralizedHarmonic(1, 1.0), 1.0);
  EXPECT_NEAR(GeneralizedHarmonic(4, 1.0), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
  // H_n ~ ln n + gamma.
  EXPECT_NEAR(GeneralizedHarmonic(100000, 1.0),
              std::log(100000.0) + 0.5772156649, 1e-4);
}

TEST(GeneralizedHarmonicTest, ConvergesForSGreaterThanOne) {
  // H_{inf,2} = pi^2/6.
  EXPECT_NEAR(GeneralizedHarmonic(1000000, 2.0), 1.6449340668, 1e-5);
}

TEST(GeneralizedHarmonicTest, ZeroTermsIsZero) {
  EXPECT_EQ(GeneralizedHarmonic(0, 2.0), 0.0);
}

TEST(LogBinomialTest, SmallCases) {
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(LogBinomial(10, 0), 0.0, 1e-12);
  EXPECT_NEAR(LogBinomial(10, 10), 0.0, 1e-12);
  EXPECT_NEAR(LogBinomial(52, 5), std::log(2598960.0), 1e-9);
}

TEST(HoeffdingTest, TailDecreasesWithThreshold) {
  const double loose = HoeffdingTwoSidedTail(1000.0, 10.0);
  const double tight = HoeffdingTwoSidedTail(1000.0, 100.0);
  EXPECT_GT(loose, tight);
  EXPECT_LE(loose, 1.0);
  EXPECT_GE(tight, 0.0);
}

TEST(HoeffdingTest, KnownValue) {
  // 2 exp(-2 * 50^2 / 1000) = 2 exp(-5).
  EXPECT_NEAR(HoeffdingTwoSidedTail(1000.0, 50.0), 2.0 * std::exp(-5.0),
              1e-12);
}

TEST(HoeffdingTest, DegenerateInputsClampToOne) {
  EXPECT_EQ(HoeffdingTwoSidedTail(0.0, 1.0), 1.0);
  EXPECT_EQ(HoeffdingTwoSidedTail(100.0, 0.0), 1.0);
}

TEST(BinarySearchFirstTrueTest, FindsThreshold) {
  auto pred = [](std::int64_t x) { return x * x >= 1000; };
  EXPECT_EQ(BinarySearchFirstTrue(0, 1000, pred), 32);
}

TEST(BinarySearchFirstTrueTest, AllFalseReturnsHiPlusOne) {
  auto never = [](std::int64_t) { return false; };
  EXPECT_EQ(BinarySearchFirstTrue(0, 10, never), 11);
}

TEST(BinarySearchFirstTrueTest, AllTrueReturnsLo) {
  auto always = [](std::int64_t) { return true; };
  EXPECT_EQ(BinarySearchFirstTrue(-5, 10, always), -5);
}

TEST(BinarySearchFirstTrueTest, EmptyRange) {
  auto always = [](std::int64_t) { return true; };
  EXPECT_EQ(BinarySearchFirstTrue(10, 5, always), 6);
}

TEST(ChiSquareStatisticTest, PerfectFitIsZero) {
  const std::vector<std::uint64_t> observed = {10, 10, 10};
  const std::vector<double> expected = {10.0, 10.0, 10.0};
  EXPECT_DOUBLE_EQ(ChiSquareStatistic(observed, expected), 0.0);
}

TEST(ChiSquareStatisticTest, KnownValue) {
  const std::vector<std::uint64_t> observed = {12, 8};
  const std::vector<double> expected = {10.0, 10.0};
  // (2^2)/10 + (2^2)/10 = 0.8
  EXPECT_NEAR(ChiSquareStatistic(observed, expected), 0.8, 1e-12);
}

TEST(ChiSquareStatisticTest, SkipsZeroExpectedCells) {
  const std::vector<std::uint64_t> observed = {5, 0};
  const std::vector<double> expected = {5.0, 0.0};
  EXPECT_DOUBLE_EQ(ChiSquareStatistic(observed, expected), 0.0);
}

TEST(NormalQuantileTest, KnownQuantiles) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-8);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959963985, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.8413447461), 1.0, 1e-5);
}

TEST(NormalQuantileTest, TailsAreMonotone) {
  double prev = NormalQuantile(0.001);
  for (double p = 0.01; p < 1.0; p += 0.01) {
    const double q = NormalQuantile(p);
    EXPECT_GT(q, prev);
    prev = q;
  }
}

TEST(ChiSquareCriticalValueTest, MatchesTables) {
  // chi^2_{0.05, 10} = 18.307; Wilson-Hilferty is good to ~1%.
  EXPECT_NEAR(ChiSquareCriticalValue(10.0, 0.05), 18.307, 0.2);
  // chi^2_{0.01, 5} = 15.086.
  EXPECT_NEAR(ChiSquareCriticalValue(5.0, 0.01), 15.086, 0.3);
  // chi^2_{0.05, 100} = 124.342.
  EXPECT_NEAR(ChiSquareCriticalValue(100.0, 0.05), 124.342, 0.6);
}

}  // namespace
}  // namespace equihist
