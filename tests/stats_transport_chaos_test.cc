// Transport link-chaos suite (DESIGN.md §17): a pinned-seed fault matrix
// ({drop, delay, truncate, corrupt, duplicate, partition} x {estimate,
// build-control}) over the real socket transport, the same matrix over the
// in-process transport, and a randomized mixed-fault sweep driven by
// EQUIHIST_CHAOS_SEED (seed printed for replay). The invariant under every
// fault class is degraded-but-correct: each call returns a typed Status
// within its deadline — no wedged threads — and every success is bitwise
// identical to fault-free serving. Label `transport`; CI runs this under
// TSan and ASan/UBSan with a fresh random seed.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/status.h"
#include "data/distribution.h"
#include "stats/fleet_wire.h"
#include "stats/link_fault_injection.h"
#include "stats/statistics_fleet.h"
#include "stats/transport.h"
#include "stats/transport_client.h"
#include "storage/table.h"

namespace equihist {
namespace {

using transport::Endpoint;
using transport::InProcessTransport;
using transport::LinkFaultInjector;
using transport::LinkFaultSpec;
using transport::SocketTransport;
using transport::SocketTransportServer;
using transport::Transport;
using transport::TransportClient;

constexpr PageConfig kPage{8192, 64};

Table ChaosTable(std::uint64_t seed) {
  const auto freq =
      MakeZipf({.n = 30000, .domain_size = 600, .skew = 1.2, .seed = seed});
  return Table::Create(*freq, kPage,
                       {.kind = LayoutKind::kRandom, .seed = seed})
      .value();
}

StatisticsFleet::Options FleetOptions() {
  StatisticsFleet::Options options;
  options.shards = 2;
  options.shard = {.buckets = 32, .f = 0.25, .seed = 17, .threads = 1};
  return options;
}

std::string UnixSocketPath() {
  static std::atomic<int> counter{0};
  char buf[96];
  std::snprintf(buf, sizeof(buf), "/tmp/equihist_chaos_%d_%d.sock", getpid(),
                counter.fetch_add(1));
  return buf;
}

// One named single-fault configuration of the matrix.
struct FaultCase {
  const char* name;
  LinkFaultSpec spec;
};

std::vector<FaultCase> FaultMatrix(std::uint64_t seed) {
  std::vector<FaultCase> cases;
  const auto base = [seed] {
    LinkFaultSpec spec;
    spec.seed = seed;
    return spec;
  };
  {
    auto spec = base();
    spec.drop_probability = 0.3;
    cases.push_back({"drop", spec});
  }
  {
    auto spec = base();
    spec.delay_probability = 0.4;
    spec.delay_micros = 3'000;
    cases.push_back({"delay", spec});
  }
  {
    auto spec = base();
    spec.truncate_probability = 0.3;
    cases.push_back({"truncate", spec});
  }
  {
    auto spec = base();
    spec.corrupt_probability = 0.3;
    cases.push_back({"corrupt", spec});
  }
  {
    auto spec = base();
    spec.duplicate_probability = 0.4;
    cases.push_back({"duplicate", spec});
  }
  {
    auto spec = base();
    spec.partition_probability = 0.5;
    // The first connection is severed for sure: a healthy pooled link
    // would otherwise serve every call and the cell would test nothing.
    spec.partitioned_connections = {1};
    cases.push_back({"partition", spec});
  }
  return cases;
}

// Statuses a faulted transport call may legitimately return. Anything else
// (wrong code, or a hang that trips the per-call deadline assert) fails.
void ExpectTypedOutcome(const Status& status, const char* context) {
  EXPECT_TRUE(status.code() == StatusCode::kOk ||
              status.code() == StatusCode::kUnavailable ||
              status.code() == StatusCode::kDeadlineExceeded ||
              status.code() == StatusCode::kResourceExhausted)
      << context << ": " << status.ToString();
}

// Drives `calls` estimate + build-control calls through `client`,
// asserting the chaos invariant against `expected` fault-free estimates.
// Returns how many estimate calls succeeded.
int DriveCalls(TransportClient& client,
               const std::vector<BatchEstimateRequest>& requests,
               const std::vector<double>& expected, int calls,
               const char* context) {
  int successes = 0;
  for (int i = 0; i < calls; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const auto estimates = client.EstimateBatch(requests, 400'000);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    // Deadline discipline: the call returned within its budget plus
    // scheduling slack — a wedge would blow far past this.
    EXPECT_LT(elapsed.count(), 3'000) << context << " call " << i;
    if (estimates.ok()) {
      ++successes;
      EXPECT_EQ(estimates->size(), expected.size()) << context;
      if (estimates->size() == expected.size()) {
        for (std::size_t j = 0; j < expected.size(); ++j) {
          // Degraded-but-CORRECT: a success is bitwise the fault-free
          // answer, never a half-served or corrupted one.
          EXPECT_EQ((*estimates)[j], expected[j])
              << context << " call " << i << " estimate " << j;
        }
      }
    } else {
      ExpectTypedOutcome(estimates.status(), context);
    }
    // Build-control rides the same link without retries or hedges.
    const Status build = client.BuildControl(fleetwire::BuildOp::kEnsureFresh,
                                             "t.a", 0, 400'000);
    ExpectTypedOutcome(build, context);
  }
  return successes;
}

TransportClient::Options ChaosClientOptions(std::uint64_t seed) {
  TransportClient::Options options;
  options.retry = {.max_attempts = 4, .base_backoff_micros = 500};
  options.jitter_seed = seed;
  options.attempt_timeout_micros = 60'000;  // drop/truncate cost 60ms, not
                                            // the whole call budget
  return options;
}

TEST(TransportChaosTest, PinnedSeedFaultMatrixOverSocket) {
  constexpr std::uint64_t kSeed = 0xC0FFEE2026ULL;
  Table table = ChaosTable(kSeed & 0xFFFF);
  StatisticsFleet fleet(FleetOptions());
  ASSERT_TRUE(fleet.BuildAll({"t.a", "t.b"}, table).ok());

  const std::vector<BatchEstimateRequest> requests{
      {"t.a", {10, 200}}, {"t.b", {50, 400}}, {"t.a", {0, 600}}};
  BatchEstimateResult direct;
  ASSERT_TRUE(fleet.EstimateBatch(table, requests, &direct).ok());

  for (const FaultCase& fault : FaultMatrix(kSeed)) {
    SCOPED_TRACE(fault.name);
    LinkFaultInjector injector(fault.spec);

    SocketTransportServer::Options server_options;
    server_options.endpoint = {Endpoint::Kind::kUnix, UnixSocketPath(), 0};
    // Server-side chaos only mangles the receive/serve legs it owns; the
    // client injector handles the send leg — sharing one injector keeps
    // the decision stream consistent across both ends.
    server_options.injector = &injector;
    SocketTransportServer server(&fleet, &table, server_options);
    ASSERT_TRUE(server.Start().ok());

    TransportClient client(ChaosClientOptions(kSeed));
    std::atomic<std::uint64_t> next_connection{1};
    client.AddPeer({"chaos", [&](std::uint64_t budget)
                                 -> Result<std::unique_ptr<Transport>> {
                      EQUIHIST_ASSIGN_OR_RETURN(
                          std::unique_ptr<SocketTransport> conn,
                          SocketTransport::Connect(
                              server.endpoint(), budget, &injector,
                              next_connection.fetch_add(1)));
                      return std::unique_ptr<Transport>(std::move(conn));
                    }});

    DriveCalls(client, requests, direct.estimates, 10, fault.name);
    server.Stop();
    // The fault class actually fired (the matrix is not vacuous).
    EXPECT_GT(injector.total_injected(), 0u) << fault.name;
  }
}

TEST(TransportChaosTest, PinnedSeedFaultMatrixInProcess) {
  constexpr std::uint64_t kSeed = 0xBEEF2026ULL;
  Table table = ChaosTable(kSeed & 0xFFFF);
  StatisticsFleet fleet(FleetOptions());
  ASSERT_TRUE(fleet.BuildAll({"t.a", "t.b"}, table).ok());

  const std::vector<BatchEstimateRequest> requests{
      {"t.a", {10, 200}}, {"t.b", {50, 400}}, {"t.a", {0, 600}}};
  BatchEstimateResult direct;
  ASSERT_TRUE(fleet.EstimateBatch(table, requests, &direct).ok());

  for (const FaultCase& fault : FaultMatrix(kSeed)) {
    SCOPED_TRACE(fault.name);
    LinkFaultInjector injector(fault.spec);
    TransportClient client(ChaosClientOptions(kSeed));
    std::atomic<std::uint64_t> next_connection{1};
    client.AddPeer({"chaos", [&](std::uint64_t)
                                 -> Result<std::unique_ptr<Transport>> {
                      return std::unique_ptr<Transport>(
                          std::make_unique<InProcessTransport>(
                              &fleet, &table, &injector,
                              next_connection.fetch_add(1)));
                    }});
    DriveCalls(client, requests, direct.estimates, 10, fault.name);
    EXPECT_GT(injector.total_injected(), 0u) << fault.name;
  }
}

TEST(TransportChaosTest, RandomizedMixedFaultSweepPrintsItsSeed) {
  // CI drives this with a randomized EQUIHIST_CHAOS_SEED; the seed is
  // always printed so any failure can be replayed exactly.
  std::uint64_t seed = 0x5EED2026;
  if (const char* env = std::getenv("EQUIHIST_CHAOS_SEED");
      env != nullptr && *env != '\0') {
    seed = std::strtoull(env, nullptr, 10);
  }
  std::cout << "[chaos] EQUIHIST_CHAOS_SEED=" << seed << std::endl;
  SCOPED_TRACE("EQUIHIST_CHAOS_SEED=" + std::to_string(seed));

  Table table = ChaosTable(seed ^ 0x9E3779B9);
  StatisticsFleet fleet(FleetOptions());
  ASSERT_TRUE(fleet.BuildAll({"t.a", "t.b"}, table).ok());

  const std::vector<BatchEstimateRequest> requests{
      {"t.a", {10, 200}}, {"t.b", {50, 400}}, {"t.a", {0, 600}}};
  BatchEstimateResult direct;
  ASSERT_TRUE(fleet.EstimateBatch(table, requests, &direct).ok());

  // Every fault class at once, at lower rates: the mixed storm a real
  // flaky network produces.
  LinkFaultSpec spec;
  spec.seed = seed;
  spec.drop_probability = 0.08;
  spec.delay_probability = 0.15;
  spec.delay_micros = 2'000;
  spec.truncate_probability = 0.08;
  spec.corrupt_probability = 0.10;
  spec.duplicate_probability = 0.10;
  spec.partition_probability = 0.15;
  LinkFaultInjector injector(spec);

  metrics::MetricsPlane plane;
  SocketTransportServer::Options server_options;
  server_options.endpoint = {Endpoint::Kind::kUnix, UnixSocketPath(), 0};
  server_options.injector = &injector;
  server_options.metrics = &plane;
  SocketTransportServer server(&fleet, &table, server_options);
  ASSERT_TRUE(server.Start().ok());

  auto client_options = ChaosClientOptions(seed);
  client_options.metrics = &plane;
  TransportClient client(client_options);
  std::atomic<std::uint64_t> next_connection{1};
  client.AddPeer({"storm", [&](std::uint64_t budget)
                               -> Result<std::unique_ptr<Transport>> {
                    EQUIHIST_ASSIGN_OR_RETURN(
                        std::unique_ptr<SocketTransport> conn,
                        SocketTransport::Connect(server.endpoint(), budget,
                                                 &injector,
                                                 next_connection.fetch_add(1)));
                    return std::unique_ptr<Transport>(std::move(conn));
                  }});

  DriveCalls(client, requests, direct.estimates, 15, "mixed storm");
  server.Stop();
  EXPECT_GT(injector.total_injected(), 0u);
  // The resilience counters and the injector agree that chaos happened,
  // and the metrics JSON carries the whole story.
  const std::string json = plane.ToJson();
  EXPECT_NE(json.find("\"transport_requests\":"), std::string::npos);
  EXPECT_NE(json.find("\"transport_retries\":"), std::string::npos);
  EXPECT_NE(json.find("\"transport_breaker_opens\":"), std::string::npos);
}

}  // namespace
}  // namespace equihist
