#include "common/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

namespace equihist {
namespace {

// Functional coverage of the annotated lock wrappers (DESIGN.md §13).
// The multi-threaded cases double as TSan probes: the suite runs under
// -fsanitize=thread in CI, so a wrapper that failed to actually lock, or
// a CondVar wait that dropped mutual exclusion, shows up as a data race
// here even though every assertion still passes.

TEST(MutexTest, LockUnlockAndTryLock) {
  Mutex mu;
  mu.Lock();
  EXPECT_FALSE(mu.TryLock());  // non-recursive: a held lock is busy
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, ScopedLockExcludesWriters) {
  Mutex mu;
  std::int64_t counter = 0 /* GUARDED_BY(mu) in spirit */;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexTest, SatisfiesStdLockable) {
  // The lowercase spellings keep the wrappers usable with std facilities.
  Mutex mu;
  {
    std::lock_guard<Mutex> guard(mu);
    EXPECT_FALSE(mu.try_lock());
  }
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SharedMutexTest, ManyReadersOneWriter) {
  SharedMutex mu;
  std::int64_t value = 0;
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> torn_reads{0};
  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        ReaderMutexLock lock(mu);
        // Writers always bump by 2, so an odd observation means the
        // reader saw a half-applied update.
        if (value % 2 != 0) torn_reads.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 5000; ++i) {
    WriterMutexLock lock(mu);
    ++value;  // transiently odd while exclusively held
    ++value;
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_EQ(value, 10000);
}

TEST(SharedMutexTest, ReaderTryLockReflectsWriterHold) {
  SharedMutex mu;
  EXPECT_TRUE(mu.ReaderTryLock());
  EXPECT_TRUE(mu.ReaderTryLock());  // shared: concurrent readers fine
  mu.ReaderUnlock();
  mu.ReaderUnlock();
  mu.Lock();
  EXPECT_FALSE(mu.ReaderTryLock());
  EXPECT_FALSE(mu.TryLock());
  mu.Unlock();
}

TEST(SharedMutexTest, SatisfiesStdSharedLockable) {
  SharedMutex mu;
  {
    std::shared_lock<SharedMutex> reader(mu);
    EXPECT_TRUE(mu.try_lock_shared());
    mu.unlock_shared();
    EXPECT_FALSE(mu.try_lock());
  }
  std::unique_lock<SharedMutex> writer(mu);
  EXPECT_FALSE(mu.try_lock_shared());
}

TEST(CondVarTest, WaitReleasesAndReacquiresTheMutex) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::int64_t observed = -1;
  std::thread waiter([&] {
    MutexLock lock(mu);
    cv.Wait(mu, [&]() REQUIRES(mu) { return ready; });
    // The mutex is held again here: reading the flag is race-free.
    observed = ready ? 1 : 0;
  });
  {
    // If Wait failed to release the std::mutex underneath, this Lock
    // would deadlock against the sleeping waiter.
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_EQ(observed, 1);
}

TEST(CondVarTest, PlainWaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  int generation = 0;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (generation == 0) cv.Wait(mu);
    generation = 2;
  });
  {
    MutexLock lock(mu);
    generation = 1;
  }
  // Notify until the waiter observes the change (spurious-wakeup-proof
  // on both sides).
  for (;;) {
    cv.NotifyAll();
    MutexLock lock(mu);
    if (generation == 2) break;
  }
  waiter.join();
  EXPECT_EQ(generation, 2);
}

TEST(CondVarTest, WaitForTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto status = cv.WaitFor(mu, std::chrono::milliseconds(1));
  EXPECT_EQ(status, std::cv_status::timeout);
}

TEST(CondVarTest, ProducerConsumerHandshake) {
  Mutex mu;
  CondVar cv;
  std::vector<int> queue;
  bool done = false;
  std::int64_t consumed = 0;
  constexpr int kItems = 1000;
  std::thread consumer([&] {
    for (;;) {
      MutexLock lock(mu);
      cv.Wait(mu, [&]() REQUIRES(mu) { return done || !queue.empty(); });
      if (!queue.empty()) {
        consumed += queue.back();
        queue.pop_back();
      } else if (done) {
        return;
      }
    }
  });
  for (int i = 0; i < kItems; ++i) {
    {
      MutexLock lock(mu);
      queue.push_back(1);
    }
    cv.NotifyOne();
  }
  {
    MutexLock lock(mu);
    done = true;
  }
  cv.NotifyAll();
  consumer.join();
  EXPECT_EQ(consumed, kItems);
}

#if defined(EQUIHIST_LOCK_RANK_CHECK) && EQUIHIST_LOCK_RANK_CHECK

// The runtime lock-rank checker (DESIGN.md §18): blocking acquisitions
// must strictly outrank every ranked lock the thread already holds, and a
// leaf-ranked lock admits no further ranked acquisitions at all. The
// negative cases are death tests — an inversion aborts the process,
// naming both locks — so the checker's abort path is itself pinned.

// Test-local ranks, spaced away from the production table in
// common/mutex.h (orders 10-140).
constexpr lockrank::Rank kRankLowTest{"test_low", 1000};
constexpr lockrank::Rank kRankHighTest{"test_high", 1010};
constexpr lockrank::Rank kRankLeafTest{"test_leaf", 1020, /*leaf=*/true};

TEST(LockRankTest, AscendingOrderIsAccepted) {
  Mutex low(kRankLowTest);
  Mutex high(kRankHighTest);
  low.Lock();
  high.Lock();  // 1000 -> 1010: strictly increasing, fine
  high.Unlock();
  low.Unlock();
  // Sequential (non-nested) acquisition in any order is fine too.
  high.Lock();
  high.Unlock();
  low.Lock();
  low.Unlock();
}

TEST(LockRankTest, UnrankedMutexesAreExempt) {
  Mutex unranked;  // the documented exemption: default-constructed locks
  Mutex high(kRankHighTest);
  high.Lock();
  unranked.Lock();  // invisible to the checker in both directions
  high.Unlock();
  unranked.Unlock();
}

TEST(LockRankTest, TryLockIsExemptFromTheOrderCheck) {
  // A non-blocking acquisition cannot participate in a deadlock cycle, so
  // TryLock records the hold but skips the order check.
  Mutex low(kRankLowTest);
  Mutex high(kRankHighTest);
  high.Lock();
  ASSERT_TRUE(low.TryLock());  // descending, but non-blocking
  low.Unlock();
  high.Unlock();
}

TEST(LockRankTest, NonLifoReleaseIsTracked) {
  Mutex low(kRankLowTest);
  Mutex high(kRankHighTest);
  Mutex leaf(kRankLeafTest);
  low.Lock();
  high.Lock();
  low.Unlock();  // release out of LIFO order
  leaf.Lock();   // only `high` (1010) is held; 1020 outranks it
  leaf.Unlock();
  high.Unlock();
}

TEST(LockRankTest, SharedAcquisitionsCarryTheRank) {
  SharedMutex low(kRankLowTest);
  SharedMutex high(kRankHighTest);
  low.ReaderLock();
  high.ReaderLock();  // ascending reader-side nesting is fine
  high.ReaderUnlock();
  low.ReaderUnlock();
}

TEST(LockRankDeathTest, DescendingAcquisitionAbortsWithBothNames) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex low(kRankLowTest);
  Mutex high(kRankHighTest);
  EXPECT_DEATH(
      {
        high.Lock();
        low.Lock();  // 1010 -> 1000: inversion
      },
      "test_low.*test_high");
}

TEST(LockRankDeathTest, EqualRankAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex a(kRankLowTest);
  Mutex b(kRankLowTest);
  EXPECT_DEATH(
      {
        a.Lock();
        b.Lock();  // equal ranks cannot nest: no order between them
      },
      "test_low.*test_low");
}

TEST(LockRankDeathTest, LeafAdmitsNoFurtherRankedLocks) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex leaf(kRankLeafTest);
  Mutex low(kRankLowTest);
  Mutex high(kRankHighTest);
  // Either direction past a held leaf aborts — even ascending order.
  EXPECT_DEATH(
      {
        leaf.Lock();
        high.Lock();
      },
      "test_high.*test_leaf");
  EXPECT_DEATH(
      {
        leaf.Lock();
        low.Lock();
      },
      "test_low.*test_leaf");
}

TEST(LockRankDeathTest, SharedAcquisitionInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SharedMutex low(kRankLowTest);
  SharedMutex high(kRankHighTest);
  EXPECT_DEATH(
      {
        high.ReaderLock();
        low.ReaderLock();
      },
      "test_low.*test_high");
}

#endif  // EQUIHIST_LOCK_RANK_CHECK

}  // namespace
}  // namespace equihist
