#include "distinct/estimators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/math.h"
#include "common/rng.h"
#include "data/distribution.h"
#include "data/generator.h"
#include "data/value_set.h"
#include "sampling/row_sampler.h"

namespace equihist {
namespace {

FrequencyProfile ProfileOf(std::vector<Value> sample) {
  return FrequencyProfile::FromUnsorted(std::move(sample));
}

TEST(PaperEstimatorTest, FormulaOnKnownProfile) {
  // Sample: 4 singletons + 2 values seen twice -> r = 8, f1 = 4, D = 6.
  const auto profile = ProfileOf({1, 2, 3, 4, 5, 5, 6, 6});
  const std::uint64_t n = 800;  // n/r = 100
  const auto e = PaperEstimator(profile, n);
  ASSERT_TRUE(e.ok());
  // sqrt(100) * 4 + 2 = 42.
  EXPECT_DOUBLE_EQ(*e, 42.0);
}

TEST(PaperEstimatorTest, F1PlusIsAtLeastOne) {
  // No singletons at all: f1+ = max(f1, 1) = 1 still contributes sqrt(n/r).
  const auto profile = ProfileOf({7, 7, 8, 8});
  const auto e = PaperEstimator(profile, 400);  // sqrt(100)*1 + 2 = 12
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 12.0);
}

TEST(PaperEstimatorTest, NearExactWhenSampleIsWholeTable) {
  // r = n: sqrt(n/r) = 1, so e = f1+ + (D - f1). With no singletons the
  // f1+ = max(f1, 1) floor still contributes 1, giving d + 1.
  const auto freq = MakeUniformDup(1000, 100);
  const ValueSet data = ValueSet::FromFrequencies(*freq);
  const auto profile = FrequencyProfile::FromSorted(data.sorted_values());
  const auto e = PaperEstimator(profile, data.size());
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 101.0);
  // With singletons present (all-distinct data) it is exact.
  const ValueSet distinct = ValueSet::FromFrequencies(*MakeAllDistinct(500));
  const auto dp = FrequencyProfile::FromSorted(distinct.sorted_values());
  const auto de = PaperEstimator(dp, distinct.size());
  ASSERT_TRUE(de.ok());
  EXPECT_DOUBLE_EQ(*de, 500.0);
}

TEST(PaperEstimatorTest, ClampsToN) {
  // Absurdly large n/r would push the estimate over n without clamping...
  const auto profile = ProfileOf({1, 2, 3});
  const auto e = PaperEstimator(profile, 4);
  ASSERT_TRUE(e.ok());
  EXPECT_LE(*e, 4.0);
  EXPECT_GE(*e, 3.0);  // at least D
}

TEST(SampleDistinctTest, ReturnsD) {
  const auto profile = ProfileOf({1, 1, 2, 3});
  const auto e = SampleDistinctCount(profile, 100);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 3.0);
}

TEST(NaiveScaleUpTest, ScalesLinearly) {
  const auto profile = ProfileOf({1, 2, 3, 4});  // D = 4, r = 4
  const auto e = NaiveScaleUp(profile, 100);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 100.0);  // 4 * 25, clamped to n anyway
}

TEST(GoodmanTest, ExactWhenSampleIsWholeTable) {
  const auto profile = ProfileOf({1, 1, 2, 3, 3});
  const auto e = GoodmanEstimator(profile, 5);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 3.0);
}

TEST(GoodmanTest, ExactOnAllDistinctPopulations) {
  // All-distinct population: every sample has only singletons, and the
  // series reduces to D + [(n-r)/r] * f1 = D * n/r = exactly d, every
  // time. (n=30, r=12: coefficient (n-r)/r = 1.5, D = f1 = 12.)
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(30));
  Rng rng(3);
  for (int t = 0; t < 50; ++t) {
    auto sample = SampleRowsWithoutReplacement(data.sorted_values(), 12, rng);
    const auto profile = FrequencyProfile::FromUnsorted(std::move(*sample));
    const auto e = GoodmanEstimator(profile, 30);
    ASSERT_TRUE(e.ok());
    EXPECT_NEAR(*e, 30.0, 1e-9);
  }
}

TEST(GoodmanTest, HugeVarianceIsThePapersPoint) {
  // On a duplicated population the alternating coefficients reach ~33x a
  // single f_j, so individual estimates swing across the whole feasible
  // range [D, n] -- the "exceedingly large errors" the paper cites. The
  // clamped mean lands above d (clamping is asymmetric) and the spread is
  // far wider than the paper estimator's on the same samples.
  const std::uint64_t d = 6;
  const auto freq = MakeUniformDup(30, d);  // 6 values x 5 copies
  const ValueSet data = ValueSet::FromFrequencies(*freq);
  Rng rng(3);
  std::vector<double> goodman;
  std::vector<double> paper;
  for (int t = 0; t < 1000; ++t) {
    auto sample = SampleRowsWithoutReplacement(data.sorted_values(), 12, rng);
    const auto profile = FrequencyProfile::FromUnsorted(std::move(*sample));
    goodman.push_back(*GoodmanEstimator(profile, 30));
    paper.push_back(*PaperEstimator(profile, 30));
  }
  EXPECT_GT(Variance(goodman), 4.0 * Variance(paper));
  // Despite the variance, the estimate stays feasible by construction.
  for (double g : goodman) {
    EXPECT_GE(g, 1.0);
    EXPECT_LE(g, 30.0);
  }
}

TEST(GoodmanTest, DegradesToSampleCountWhenSeriesExplodes) {
  // Large n, small r, high multiplicities: the alternating series
  // overflows and the implementation must fall back to D, not UB/inf.
  std::vector<Value> sample;
  for (Value v = 0; v < 10; ++v) sample.insert(sample.end(), 40, v);
  const auto profile = ProfileOf(std::move(sample));
  const auto e = GoodmanEstimator(profile, 100000000);
  ASSERT_TRUE(e.ok());
  EXPECT_GE(*e, 10.0);
  EXPECT_LE(*e, 100000000.0);
  EXPECT_TRUE(std::isfinite(*e));
}

TEST(ChaoTest, UsesF1SquaredOverTwoF2) {
  // f1 = 2 (values 1,2), f2 = 1 (value 3): D + f1^2/(2 f2) = 3 + 2 = 5.
  const auto profile = ProfileOf({1, 2, 3, 3});
  const auto e = ChaoEstimator(profile, 1000);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 5.0);
}

TEST(ChaoTest, BiasCorrectedFormWhenNoF2) {
  // f1 = 3, f2 = 0: D + f1(f1-1)/2 = 3 + 3 = 6.
  const auto profile = ProfileOf({1, 2, 3});
  const auto e = ChaoEstimator(profile, 1000);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 6.0);
}

TEST(JackknifeTest, FirstOrderFormula) {
  // D = 3, f1 = 2, r = 4: 3 + 2*(3/4) = 4.5.
  const auto profile = ProfileOf({1, 2, 3, 3});
  const auto e = JackknifeEstimator(profile, 1000);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 4.5);
}

TEST(SecondOrderJackknifeTest, Formula) {
  // D = 3, f1 = 2, f2 = 1, r = 4:
  // 3 + (5/4)*2 - (4/12)*1 = 3 + 2.5 - 1/3.
  const auto profile = ProfileOf({1, 2, 3, 3});
  const auto e = SecondOrderJackknifeEstimator(profile, 1000);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(*e, 3.0 + 2.5 - 1.0 / 3.0, 1e-12);
}

TEST(ShlosserTest, DegeneratesGracefullyAtFullSample) {
  const auto profile = ProfileOf({1, 2, 3, 3});
  const auto e = ShlosserEstimator(profile, 4);  // q = 1
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 3.0);
}

TEST(ShlosserTest, ReasonableOnUniformDup) {
  // Shlosser is known-good for low-skew data: 1000 values x 100 dup, 5%
  // Bernoulli-ish sample.
  const auto freq = MakeUniformDup(100000, 1000);
  const ValueSet data = ValueSet::FromFrequencies(*freq);
  Rng rng(3);
  const auto sample = SampleRowsBernoulli(data.sorted_values(), 0.05, rng);
  ASSERT_TRUE(sample.ok());
  const auto profile = FrequencyProfile::FromUnsorted(*sample);
  const auto e = ShlosserEstimator(profile, data.size());
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(*e, 1000.0, 200.0);
}

TEST(HybridTest, SwitchesOnCoverage) {
  // High-coverage profile (few singletons): hybrid = Chao-Lee.
  std::vector<Value> covered;
  for (Value v = 0; v < 20; ++v) {
    covered.insert(covered.end(), 10, v);  // every value seen 10x
  }
  const auto covered_profile = ProfileOf(covered);
  const auto hybrid_covered = HybridEstimator(covered_profile, 10000);
  const auto chao_lee = ChaoLeeEstimator(covered_profile, 10000);
  ASSERT_TRUE(hybrid_covered.ok());
  EXPECT_DOUBLE_EQ(*hybrid_covered, *chao_lee);

  // Low-coverage profile (all singletons): hybrid = paper estimator.
  const auto sparse_profile = ProfileOf({1, 2, 3, 4, 5});
  const auto hybrid_sparse = HybridEstimator(sparse_profile, 10000);
  const auto paper = PaperEstimator(sparse_profile, 10000);
  ASSERT_TRUE(hybrid_sparse.ok());
  EXPECT_DOUBLE_EQ(*hybrid_sparse, *paper);
}

TEST(EstimatorsTest, AllValidateEmptySampleAndZeroN) {
  const FrequencyProfile empty;
  const auto profile = ProfileOf({1, 2});
  for (auto kind : {DistinctEstimatorKind::kPaper,
                    DistinctEstimatorKind::kSampleDistinct,
                    DistinctEstimatorKind::kNaiveScaleUp,
                    DistinctEstimatorKind::kGoodman,
                    DistinctEstimatorKind::kChao,
                    DistinctEstimatorKind::kChaoLee,
                    DistinctEstimatorKind::kJackknife,
                    DistinctEstimatorKind::kSecondOrderJackknife,
                    DistinctEstimatorKind::kShlosser,
                    DistinctEstimatorKind::kHybrid}) {
    EXPECT_FALSE(EstimateDistinct(kind, empty, 100).ok())
        << DistinctEstimatorKindToString(kind);
    EXPECT_FALSE(EstimateDistinct(kind, profile, 0).ok())
        << DistinctEstimatorKindToString(kind);
  }
}

TEST(EstimatorsTest, NamesAreUniqueAndStable) {
  EXPECT_EQ(DistinctEstimatorKindToString(DistinctEstimatorKind::kPaper),
            "paper-gee");
  EXPECT_EQ(DistinctEstimatorKindToString(DistinctEstimatorKind::kShlosser),
            "shlosser");
}

// Property sweep: on real distributions every estimator stays within
// [D, n] and the dispatch function agrees with the direct call.
class EstimatorFeasibilityTest
    : public ::testing::TestWithParam<
          std::tuple<DistinctEstimatorKind, double>> {};

TEST_P(EstimatorFeasibilityTest, EstimatesAreFeasible) {
  const auto [kind, skew] = GetParam();
  const auto freq =
      MakeZipf({.n = 50000, .domain_size = 2000, .skew = skew});
  const ValueSet data = ValueSet::FromFrequencies(*freq);
  Rng rng(11);
  auto sample =
      SampleRowsWithoutReplacement(data.sorted_values(), 2500, rng);
  ASSERT_TRUE(sample.ok());
  const auto profile = FrequencyProfile::FromUnsorted(*sample);
  const auto e = EstimateDistinct(kind, profile, data.size());
  ASSERT_TRUE(e.ok());
  EXPECT_GE(*e, static_cast<double>(profile.distinct_in_sample()));
  EXPECT_LE(*e, static_cast<double>(data.size()));
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSkews, EstimatorFeasibilityTest,
    ::testing::Combine(
        ::testing::Values(DistinctEstimatorKind::kPaper,
                          DistinctEstimatorKind::kSampleDistinct,
                          DistinctEstimatorKind::kNaiveScaleUp,
                          DistinctEstimatorKind::kGoodman,
                          DistinctEstimatorKind::kChao,
                          DistinctEstimatorKind::kChaoLee,
                          DistinctEstimatorKind::kJackknife,
                          DistinctEstimatorKind::kSecondOrderJackknife,
                          DistinctEstimatorKind::kShlosser,
                          DistinctEstimatorKind::kHybrid),
        ::testing::Values(0.0, 1.0, 2.0, 4.0)));

TEST(PaperEstimatorQualityTest, TracksTruthOnZipf) {
  // The Figure 9 scenario in miniature: Zipf(2) has few distinct values,
  // detectable from a small sample.
  const auto freq = MakeZipf({.n = 200000, .domain_size = 5000, .skew = 2.0});
  const ValueSet data = ValueSet::FromFrequencies(*freq);
  const double d = static_cast<double>(data.DistinctCount());
  Rng rng(13);
  auto sample =
      SampleRowsWithoutReplacement(data.sorted_values(), 20000, rng);
  ASSERT_TRUE(sample.ok());
  const auto profile = FrequencyProfile::FromUnsorted(*sample);
  const auto e = PaperEstimator(profile, data.size());
  ASSERT_TRUE(e.ok());
  // rel-error must be small even if ratio error is not.
  EXPECT_LT(std::abs(d - *e) / static_cast<double>(data.size()), 0.02);
}

}  // namespace
}  // namespace equihist
