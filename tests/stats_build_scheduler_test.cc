// BuildScheduler tests: deterministic priority admission (degraded >
// stale > fresh, per-table round-robin, DML pressure), request
// coalescing, the max-inflight budget under a real pool, failure
// aggregation, and shutdown discipline. Determinism comes from
// {threads = 1, start_paused = true}: dispatch happens inline on the
// resuming thread, so execution order IS the queue's priority order.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "stats/build_scheduler.h"

namespace equihist {
namespace {

// Records execution order; builds are closures appending to `order`.
struct OrderLog {
  std::mutex mu;
  std::vector<std::string> order;

  std::function<Status()> Build(std::string key) {
    return [this, key = std::move(key)]() {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(key);
      return Status::OK();
    };
  }
};

BuildScheduler::Options Inline() {
  return {.max_inflight = 1, .threads = 1, .start_paused = true};
}

TEST(BuildSchedulerTest, DegradedBeatsStaleBeatsFreshDeterministically) {
  OrderLog log;
  BuildScheduler scheduler(Inline());
  // Enqueued deliberately in worst-case order: fresh first.
  scheduler.Enqueue({"t", "fresh1", ColumnHealth::kFresh, 0.0,
                     log.Build("fresh1")});
  scheduler.Enqueue({"t", "fresh2", ColumnHealth::kFresh, 0.9,
                     log.Build("fresh2")});
  scheduler.Enqueue({"t", "stale1", ColumnHealth::kStale, 0.3,
                     log.Build("stale1")});
  scheduler.Enqueue({"t", "degraded1", ColumnHealth::kDegraded, 0.0,
                     log.Build("degraded1")});
  scheduler.Enqueue({"t", "stale2", ColumnHealth::kStale, 0.7,
                     log.Build("stale2")});
  scheduler.Resume();
  scheduler.Drain();
  // Degraded first; stales by descending pressure; freshes by descending
  // pressure.
  const std::vector<std::string> expected = {"degraded1", "stale2", "stale1",
                                             "fresh2", "fresh1"};
  EXPECT_EQ(log.order, expected);
  const auto counts = scheduler.counts();
  EXPECT_EQ(counts.enqueued, 5u);
  EXPECT_EQ(counts.completed, 5u);
  EXPECT_EQ(counts.queued, 0u);
  EXPECT_EQ(counts.inflight, 0u);
}

TEST(BuildSchedulerTest, TablesTakeRoundRobinTurnsWithinAClass) {
  OrderLog log;
  BuildScheduler scheduler(Inline());
  // Three stale requests for table A, then two for B: strict FIFO would
  // starve B behind A; round-robin alternates turns.
  scheduler.Enqueue({"A", "a1", ColumnHealth::kStale, 0.0, log.Build("a1")});
  scheduler.Enqueue({"A", "a2", ColumnHealth::kStale, 0.0, log.Build("a2")});
  scheduler.Enqueue({"A", "a3", ColumnHealth::kStale, 0.0, log.Build("a3")});
  scheduler.Enqueue({"B", "b1", ColumnHealth::kStale, 0.0, log.Build("b1")});
  scheduler.Enqueue({"B", "b2", ColumnHealth::kStale, 0.0, log.Build("b2")});
  scheduler.Resume();
  scheduler.Drain();
  const std::vector<std::string> expected = {"a1", "b1", "a2", "b2", "a3"};
  EXPECT_EQ(log.order, expected);
}

TEST(BuildSchedulerTest, RequeueCoalescesAndUpgradesSeverity) {
  OrderLog log;
  metrics::MetricsPlane plane;
  BuildScheduler scheduler(Inline(), &plane);
  scheduler.Enqueue({"t", "x", ColumnHealth::kFresh, 0.1, log.Build("x-old")});
  scheduler.Enqueue({"t", "y", ColumnHealth::kStale, 0.0, log.Build("y")});
  // Re-request of the queued x: upgrades fresh → degraded, so x now beats
  // y, and only the newest closure runs.
  scheduler.Enqueue(
      {"t", "x", ColumnHealth::kDegraded, 0.05, log.Build("x-new")});
  scheduler.Resume();
  scheduler.Drain();
  const std::vector<std::string> expected = {"x-new", "y"};
  EXPECT_EQ(log.order, expected);
  const auto counts = scheduler.counts();
  EXPECT_EQ(counts.enqueued, 3u);
  EXPECT_EQ(counts.coalesced, 1u);
  EXPECT_EQ(counts.completed, 2u);
  EXPECT_EQ(plane.counter(metrics::Counter::kSchedulerCoalesced), 1u);
  EXPECT_EQ(plane.counter(metrics::Counter::kSchedulerCompleted), 2u);
}

TEST(BuildSchedulerTest, MaxInflightBoundsConcurrencyUnderAPool) {
  std::atomic<int> running{0};
  std::atomic<int> high_water{0};
  std::atomic<int> completed{0};
  {
    BuildScheduler scheduler({.max_inflight = 2, .threads = 4});
    for (int i = 0; i < 12; ++i) {
      scheduler.Enqueue(
          {"t", "c" + std::to_string(i), ColumnHealth::kStale, 0.0,
           [&running, &high_water, &completed]() {
             const int now = running.fetch_add(1) + 1;
             int seen = high_water.load();
             while (now > seen &&
                    !high_water.compare_exchange_weak(seen, now)) {
             }
             std::this_thread::sleep_for(std::chrono::milliseconds(2));
             running.fetch_sub(1);
             completed.fetch_add(1);
             return Status::OK();
           }});
    }
    scheduler.Drain();
  }
  EXPECT_EQ(completed.load(), 12);
  EXPECT_LE(high_water.load(), 2);
  EXPECT_GE(high_water.load(), 1);
}

TEST(BuildSchedulerTest, FailuresAreCountedAndTakeable) {
  metrics::MetricsPlane plane;
  BuildScheduler scheduler(Inline(), &plane);
  scheduler.Enqueue({"t", "good", ColumnHealth::kStale, 0.0,
                     []() { return Status::OK(); }});
  scheduler.Enqueue({"t", "bad", ColumnHealth::kStale, 0.0, []() {
                       return Status::Unavailable("page lost");
                     }});
  scheduler.Resume();
  scheduler.Drain();
  const auto counts = scheduler.counts();
  EXPECT_EQ(counts.completed, 1u);
  EXPECT_EQ(counts.failed, 1u);
  EXPECT_EQ(plane.counter(metrics::Counter::kSchedulerFailed), 1u);
  const auto failures = scheduler.TakeFailures();
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].first, "t.bad");
  EXPECT_EQ(failures[0].second.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(scheduler.TakeFailures().empty());  // cleared on take
}

TEST(BuildSchedulerTest, DestructorDiscardsQueuedWorkButFinishesInflight) {
  std::atomic<int> ran{0};
  {
    BuildScheduler scheduler(
        {.max_inflight = 1, .threads = 1, .start_paused = true});
    for (int i = 0; i < 5; ++i) {
      scheduler.Enqueue({"t", "c" + std::to_string(i), ColumnHealth::kFresh,
                         0.0, [&ran]() {
                           ran.fetch_add(1);
                           return Status::OK();
                         }});
    }
    // Never resumed: destruction discards the queue without running it.
  }
  EXPECT_EQ(ran.load(), 0);
}

TEST(BuildSchedulerTest, ConcurrentEnqueuersAllGetServed) {
  std::atomic<int> ran{0};
  BuildScheduler scheduler({.max_inflight = 2, .threads = 2});
  constexpr int kThreads = 6;
  constexpr int kPerThread = 25;
  std::vector<std::thread> enqueuers;
  enqueuers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    enqueuers.emplace_back([&scheduler, &ran, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        // Distinct (table, column) keys so nothing coalesces: every
        // request must execute exactly once.
        scheduler.Enqueue({"t" + std::to_string(t),
                           "c" + std::to_string(i),
                           static_cast<ColumnHealth>(i % 3), 0.01 * i,
                           [&ran]() {
                             ran.fetch_add(1);
                             return Status::OK();
                           }});
      }
    });
  }
  for (auto& thread : enqueuers) thread.join();
  scheduler.Drain();
  EXPECT_EQ(ran.load(), kThreads * kPerThread);
  const auto counts = scheduler.counts();
  EXPECT_EQ(counts.completed, static_cast<std::uint64_t>(kThreads) *
                                  kPerThread);
  EXPECT_EQ(counts.coalesced, 0u);
}

TEST(BuildSchedulerTest, PauseHoldsAdmissionResumeReleasesIt) {
  std::atomic<int> ran{0};
  BuildScheduler scheduler({.max_inflight = 1, .threads = 1});
  scheduler.Pause();
  scheduler.Enqueue({"t", "x", ColumnHealth::kStale, 0.0, [&ran]() {
                       ran.fetch_add(1);
                       return Status::OK();
                     }});
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(scheduler.counts().queued, 1u);
  scheduler.Resume();
  scheduler.Drain();
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace equihist
