#include "sampling/design_effect.h"

#include <gtest/gtest.h>

#include "core/cvb.h"
#include "data/distribution.h"
#include "storage/table.h"

namespace equihist {
namespace {

constexpr PageConfig kPage{8192, 64};  // 128 tuples/page

Table MakeTable(double skew, LayoutKind layout, double clustered = 0.2,
                std::uint64_t n = 200000) {
  const auto freq =
      MakeZipf({.n = n, .domain_size = n / 10, .skew = skew, .seed = 5});
  return Table::Create(*freq, kPage,
                       {.kind = layout, .clustered_fraction = clustered,
                        .seed = 5})
      .value();
}

TEST(DesignEffectTest, RandomLayoutHasNoClusterPenalty) {
  Table table = MakeTable(1.0, LayoutKind::kRandom);
  const auto deff = EstimateDesignEffect(table, 64, 7);
  ASSERT_TRUE(deff.ok());
  EXPECT_LT(deff->rho, 0.05);
  EXPECT_LT(deff->design_effect, 1.0 + 0.05 * 127);
}

TEST(DesignEffectTest, SortedLayoutApproachesBlockSize) {
  Table table = MakeTable(0.0, LayoutKind::kSorted);
  const auto deff = EstimateDesignEffect(table, 64, 7);
  ASSERT_TRUE(deff.ok());
  // Scenario (b): rho ~ 1, deff ~ b = 128.
  EXPECT_GT(deff->rho, 0.9);
  EXPECT_GT(deff->design_effect, 100.0);
  EXPECT_LE(deff->design_effect, 128.0 + 1e-9);
}

TEST(DesignEffectTest, PartialClusteringSitsBetween) {
  Table random_table = MakeTable(1.0, LayoutKind::kRandom);
  Table partial_table =
      MakeTable(1.0, LayoutKind::kPartiallyClustered, 0.5);
  Table sorted_table = MakeTable(1.0, LayoutKind::kSorted);
  const auto r = EstimateDesignEffect(random_table, 64, 7);
  const auto p = EstimateDesignEffect(partial_table, 64, 7);
  const auto s = EstimateDesignEffect(sorted_table, 64, 7);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(s.ok());
  EXPECT_GT(p->design_effect, r->design_effect);
  EXPECT_LT(p->design_effect, s->design_effect);
}

TEST(DesignEffectTest, ConstantColumnIsDegenerateButSafe) {
  const auto freq = MakeConstant(50000, 9);
  Table table =
      Table::Create(*freq, kPage, {.kind = LayoutKind::kRandom}).value();
  const auto deff = EstimateDesignEffect(table, 32, 3);
  ASSERT_TRUE(deff.ok());
  EXPECT_DOUBLE_EQ(deff->rho, 0.0);
  EXPECT_DOUBLE_EQ(deff->design_effect, 1.0);
}

TEST(DesignEffectTest, ChargesProbeIo) {
  Table table = MakeTable(1.0, LayoutKind::kRandom);
  IoStats stats;
  const auto deff = EstimateDesignEffect(table, 32, 3, &stats);
  ASSERT_TRUE(deff.ok());
  EXPECT_EQ(stats.pages_read, 32u);
  EXPECT_EQ(deff->blocks_probed, 32u);
  EXPECT_EQ(deff->tuples_probed, stats.tuples_read);
}

TEST(DesignEffectTest, ClampsProbeCountToPageCount) {
  const auto freq = MakeAllDistinct(1000);
  Table table =
      Table::Create(*freq, kPage, {.kind = LayoutKind::kRandom}).value();
  const auto deff = EstimateDesignEffect(table, 10000, 3);
  ASSERT_TRUE(deff.ok());
  EXPECT_EQ(deff->blocks_probed, table.page_count());
}

TEST(DesignEffectTest, PredictsCvbSpendMultiplier) {
  // The measured design effect should explain (to first order) why CVB
  // spends more blocks on the clustered layout than on the random one.
  Table random_table = MakeTable(2.0, LayoutKind::kRandom);
  Table partial_table =
      MakeTable(2.0, LayoutKind::kPartiallyClustered, 0.5);
  const auto r_deff = EstimateDesignEffect(random_table, 64, 11);
  const auto p_deff = EstimateDesignEffect(partial_table, 64, 11);
  ASSERT_TRUE(r_deff.ok());
  ASSERT_TRUE(p_deff.ok());

  CvbOptions options;
  options.k = 50;
  options.f = 0.25;
  options.seed = 13;
  const auto r_run = RunCvb(random_table, options);
  const auto p_run = RunCvb(partial_table, options);
  ASSERT_TRUE(r_run.ok());
  ASSERT_TRUE(p_run.ok());

  const double measured_ratio =
      static_cast<double>(p_run->blocks_sampled) /
      static_cast<double>(r_run->blocks_sampled);
  const double predicted_ratio =
      p_deff->design_effect / r_deff->design_effect;
  // Same direction, same order of magnitude (doubling-schedule
  // quantization and exhaustion capping prevent a tight match).
  EXPECT_GT(measured_ratio, 1.0);
  EXPECT_GT(predicted_ratio, 1.0);
  EXPECT_LT(measured_ratio / predicted_ratio, 8.0);
  EXPECT_GT(measured_ratio / predicted_ratio, 1.0 / 8.0);
}

}  // namespace
}  // namespace equihist
