#include "baseline/gmp_incremental.h"

#include <gtest/gtest.h>

#include "core/error_metrics.h"
#include "data/distribution.h"
#include "data/generator.h"
#include "data/value_set.h"

namespace equihist {
namespace {

TEST(GmpIncrementalTest, CreateValidatesOptions) {
  EXPECT_FALSE(IncrementalEquiDepth::Create({.buckets = 0}).ok());
  EXPECT_FALSE(IncrementalEquiDepth::Create({.gamma = 0.0}).ok());
  EXPECT_FALSE(IncrementalEquiDepth::Create(
                   {.buckets = 100, .reservoir_capacity = 10})
                   .ok());
  EXPECT_TRUE(IncrementalEquiDepth::Create({}).ok());
}

TEST(GmpIncrementalTest, SnapshotBeforeInsertFails) {
  auto maintained = IncrementalEquiDepth::Create({.buckets = 10});
  ASSERT_TRUE(maintained.ok());
  EXPECT_FALSE(maintained->Snapshot().ok());
}

TEST(GmpIncrementalTest, CountsAlwaysSumToN) {
  auto maintained = IncrementalEquiDepth::Create(
      {.buckets = 10, .reservoir_capacity = 500, .seed = 3});
  ASSERT_TRUE(maintained.ok());
  const auto values = ExpandShuffled(*MakeAllDistinct(5000), 7);
  std::uint64_t inserted = 0;
  for (Value v : values) {
    maintained->Insert(v);
    ++inserted;
    if (inserted % 1000 == 0) {
      const auto snapshot = maintained->Snapshot();
      ASSERT_TRUE(snapshot.ok());
      EXPECT_EQ(snapshot->total(), inserted);
      EXPECT_EQ(maintained->size(), inserted);
    }
  }
}

TEST(GmpIncrementalTest, MaintainsReasonableErrorOnRandomStream) {
  const std::uint64_t n = 50000;
  const std::uint64_t k = 20;
  auto maintained = IncrementalEquiDepth::Create(
      {.buckets = k, .gamma = 0.5, .reservoir_capacity = 2000, .seed = 5});
  ASSERT_TRUE(maintained.ok());
  const auto freq = MakeZipf({.n = n, .domain_size = n / 2, .skew = 0.5});
  const auto values = ExpandShuffled(*freq, 11);
  for (Value v : values) maintained->Insert(v);

  const auto snapshot = maintained->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  const ValueSet truth = ValueSet::FromFrequencies(*freq);
  const auto errors = ComputeHistogramErrors(*snapshot, truth);
  ASSERT_TRUE(errors.ok());
  // The GMP guarantee is loose (f ~ 0.5-1 regimes, Section 3.4); we only
  // require that maintenance tracked the distribution at all: every bucket
  // within 2x the ideal size.
  EXPECT_LT(errors->f_max, 2.0);
}

TEST(GmpIncrementalTest, SplitsFireOnSkewedInsertions) {
  auto maintained = IncrementalEquiDepth::Create(
      {.buckets = 8, .reservoir_capacity = 400, .seed = 9});
  ASSERT_TRUE(maintained.ok());
  // Ascending inserts continually overflow the last bucket.
  for (Value v = 0; v < 20000; ++v) maintained->Insert(v);
  EXPECT_GT(maintained->split_count() + maintained->recompute_count(), 0u);
  const auto snapshot = maintained->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  // The sorted stream must not leave everything in one bucket.
  std::uint64_t max_count = 0;
  for (std::uint64_t c : snapshot->counts()) {
    max_count = std::max(max_count, c);
  }
  EXPECT_LT(max_count, 20000u / 2);
}

TEST(GmpIncrementalTest, ConstantStreamDegradesGracefully) {
  auto maintained = IncrementalEquiDepth::Create(
      {.buckets = 4, .reservoir_capacity = 100, .seed = 13});
  ASSERT_TRUE(maintained.ok());
  for (int i = 0; i < 10000; ++i) maintained->Insert(42);
  const auto snapshot = maintained->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->total(), 10000u);
  // All mass on one value: splits are impossible, so recomputes are the
  // only escape valve and the structure must not blow up.
  EXPECT_EQ(snapshot->bucket_count(), 4u);
}

TEST(GmpIncrementalTest, BackingSampleTracksStream) {
  auto maintained = IncrementalEquiDepth::Create(
      {.buckets = 4, .reservoir_capacity = 128, .seed = 17});
  ASSERT_TRUE(maintained.ok());
  for (Value v = 0; v < 1000; ++v) maintained->Insert(v);
  EXPECT_EQ(maintained->backing_sample().seen(), 1000u);
  EXPECT_EQ(maintained->backing_sample().sample().size(), 128u);
}

}  // namespace
}  // namespace equihist
