#include "core/cvb.h"

#include <gtest/gtest.h>

#include "core/error_metrics.h"
#include "data/distribution.h"
#include "data/value_set.h"
#include "storage/table.h"

namespace equihist {
namespace {

constexpr PageConfig kPage{8192, 64};  // 128 tuples per page

Table MakeZipfTable(std::uint64_t n, double skew, LayoutKind layout,
                    std::uint64_t seed = 7) {
  const auto freq = MakeZipf(
      {.n = n, .domain_size = n / 20, .skew = skew, .seed = seed});
  return Table::Create(*freq, kPage, {.kind = layout, .seed = seed}).value();
}

ValueSet GroundTruth(std::uint64_t n, double skew, std::uint64_t seed = 7) {
  const auto freq = MakeZipf(
      {.n = n, .domain_size = n / 20, .skew = skew, .seed = seed});
  return ValueSet::FromFrequencies(*freq);
}

TEST(CvbTest, ConvergesOnRandomLayout) {
  Table table = MakeZipfTable(200000, 1.0, LayoutKind::kRandom);
  CvbOptions options;
  options.k = 100;
  options.f = 0.2;
  const auto result = RunCvb(table, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged || result->exhausted_table);
  EXPECT_GT(result->tuples_sampled, 0u);
  EXPECT_EQ(result->io.pages_read, result->blocks_sampled);
}

TEST(CvbTest, ResultHistogramMeetsErrorTargetOnRandomLayout) {
  const std::uint64_t n = 200000;
  Table table = MakeZipfTable(n, 1.0, LayoutKind::kRandom);
  ValueSet truth = GroundTruth(n, 1.0);
  CvbOptions options;
  options.k = 100;
  options.f = 0.2;
  const auto result = RunCvb(table, options);
  ASSERT_TRUE(result.ok());
  // Zipf(1) at this scale has heavy values above n/k, so the raw
  // bucket-count error is unavoidably large; the duplicate-aware
  // claimed-count error is what the stopping rule controls. Allow 2x slack
  // for cross-validation noise (Theorem 7 distinguishes f/2 from 2f).
  const auto claimed = ComputeClaimedErrors(result->histogram, truth);
  ASSERT_TRUE(claimed.ok());
  EXPECT_LT(claimed->f_max, 2.0 * options.f);
}

TEST(CvbTest, SortedLayoutSamplesMoreThanRandom) {
  // With the default 5*sqrt(n) initial budget (~25 pages of ~3125) the
  // random layout converges quickly while the sorted layout's
  // block-correlated samples keep failing validation (scenario (b) of
  // Section 4.1).
  const std::uint64_t n = 400000;
  Table random_table = MakeZipfTable(n, 1.0, LayoutKind::kRandom);
  Table sorted_table = MakeZipfTable(n, 1.0, LayoutKind::kSorted);
  CvbOptions options;
  options.k = 50;
  options.f = 0.3;
  const auto random_result = RunCvb(random_table, options);
  const auto sorted_result = RunCvb(sorted_table, options);
  ASSERT_TRUE(random_result.ok());
  ASSERT_TRUE(sorted_result.ok());
  EXPECT_GT(sorted_result->blocks_sampled, random_result->blocks_sampled);
}

TEST(CvbTest, ExhaustsTinyTableAndIsExact) {
  const auto freq = MakeAllDistinct(1000);
  Table table =
      Table::Create(*freq, kPage, {.kind = LayoutKind::kRandom}).value();
  ValueSet truth = ValueSet::FromFrequencies(*freq);
  CvbOptions options;
  options.k = 10;
  options.f = 0.01;  // unreachable before the 8-page table is exhausted
  const auto result = RunCvb(table, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exhausted_table);
  EXPECT_EQ(result->tuples_sampled, 1000u);
  const auto errors = ComputeHistogramErrors(result->histogram, truth);
  ASSERT_TRUE(errors.ok());
  EXPECT_LE(errors->delta_max, 1.0);  // exact up to integer rounding
}

TEST(CvbTest, IterationLogIsCoherent) {
  Table table = MakeZipfTable(100000, 2.0, LayoutKind::kRandom);
  CvbOptions options;
  options.k = 50;
  options.f = 0.25;
  const auto result = RunCvb(table, options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->log.empty());
  std::uint64_t prev_accumulated = 0;
  for (const auto& entry : result->log) {
    EXPECT_GT(entry.fresh_blocks, 0u);
    EXPECT_GT(entry.fresh_tuples, 0u);
    EXPECT_GT(entry.accumulated_tuples, prev_accumulated);
    prev_accumulated = entry.accumulated_tuples;
    EXPECT_EQ(entry.threshold, options.f);
  }
  if (result->converged) {
    EXPECT_TRUE(result->log.back().passed);
    EXPECT_LT(result->log.back().validation_error, options.f);
  }
}

TEST(CvbTest, DeterministicInSeed) {
  Table table = MakeZipfTable(50000, 1.0, LayoutKind::kRandom);
  CvbOptions options;
  options.k = 50;
  options.f = 0.3;
  options.seed = 99;
  const auto a = RunCvb(table, options);
  const auto b = RunCvb(table, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->tuples_sampled, b->tuples_sampled);
  EXPECT_EQ(a->histogram.separators(), b->histogram.separators());
}

TEST(CvbTest, AllValidationMetricsConvergeOrExhaust) {
  Table table = MakeZipfTable(100000, 0.0, LayoutKind::kRandom);
  for (auto metric : {CvbValidationMetric::kClaimedDeviation,
                      CvbValidationMetric::kFractionalMaxError,
                      CvbValidationMetric::kRelativeDeviation}) {
    CvbOptions options;
    options.k = 50;
    options.f = 0.25;
    options.metric = metric;
    const auto result = RunCvb(table, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->converged || result->exhausted_table);
  }
}

TEST(CvbTest, ClaimedDeviationMeetsTargetOnDistinctData) {
  // On duplicate-free data the claimed-deviation metric equals the paper's
  // Definition 3 statistic, and the resulting histogram's claimed-count
  // error against the truth should respect the target (2x Theorem 7 gap).
  const auto freq = MakeAllDistinct(200000);
  Table table =
      Table::Create(*freq, kPage, {.kind = LayoutKind::kRandom}).value();
  ValueSet truth = ValueSet::FromFrequencies(*freq);
  CvbOptions options;
  options.k = 50;
  options.f = 0.25;
  options.metric = CvbValidationMetric::kClaimedDeviation;
  const auto result = RunCvb(table, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->converged || result->exhausted_table);
  const auto claimed = ComputeClaimedErrors(result->histogram, truth);
  ASSERT_TRUE(claimed.ok());
  EXPECT_LT(claimed->f_max, 2.0 * options.f);
}

TEST(CvbTest, OneTuplePerBlockValidationStillWorks) {
  Table table = MakeZipfTable(100000, 1.0, LayoutKind::kRandom);
  CvbOptions options;
  options.k = 50;
  options.f = 0.25;
  options.style = CvbValidationStyle::kOneTuplePerBlock;
  const auto result = RunCvb(table, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged || result->exhausted_table);
}

TEST(CvbTest, InitialBlocksOverrideIsHonored) {
  Table table = MakeZipfTable(100000, 1.0, LayoutKind::kRandom);
  CvbOptions options;
  options.k = 50;
  options.f = 0.25;
  options.initial_blocks_override = 3;
  options.schedule.kind = ScheduleKind::kLinear;
  const auto result = RunCvb(table, options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->log.empty());
  // Linear schedule: every fresh batch is 3 blocks.
  EXPECT_EQ(result->log.front().fresh_blocks, 3u);
}

TEST(CvbTest, ReportsSampleStatistics) {
  Table table = MakeZipfTable(100000, 2.0, LayoutKind::kRandom);
  CvbOptions options;
  options.k = 50;
  options.f = 0.3;
  const auto result = RunCvb(table, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->sample_distinct, 0u);
  EXPECT_GT(result->density_estimate, 0.0);  // Zipf(2) is heavily duplicated
  EXPECT_GT(result->sampling_fraction, 0.0);
  EXPECT_LE(result->sampling_fraction, 1.0);
}

TEST(CvbTest, ValidatesOptions) {
  Table table = MakeZipfTable(10000, 0.0, LayoutKind::kRandom);
  CvbOptions bad;
  bad.k = 0;
  EXPECT_FALSE(RunCvb(table, bad).ok());
  bad = CvbOptions{};
  bad.f = 0.0;
  EXPECT_FALSE(RunCvb(table, bad).ok());
  bad = CvbOptions{};
  bad.f = 2.0;
  EXPECT_FALSE(RunCvb(table, bad).ok());
  bad = CvbOptions{};
  bad.gamma = 0.0;
  EXPECT_FALSE(RunCvb(table, bad).ok());
  bad = CvbOptions{};
  bad.max_iterations = 0;
  EXPECT_FALSE(RunCvb(table, bad).ok());
}

TEST(CvbTest, ErrorAdaptiveSteppingConverges) {
  Table table = MakeZipfTable(200000, 1.0, LayoutKind::kRandom);
  CvbOptions options;
  options.k = 50;
  options.f = 0.2;
  options.error_adaptive_stepping = true;
  const auto adaptive = RunCvb(table, options);
  ASSERT_TRUE(adaptive.ok());
  EXPECT_TRUE(adaptive->converged || adaptive->exhausted_table);
  // Batch sizes after the first validation must follow the error feedback,
  // not the doubling schedule: at least one batch differs from doubling.
  options.error_adaptive_stepping = false;
  const auto fixed = RunCvb(table, options);
  ASSERT_TRUE(fixed.ok());
  EXPECT_TRUE(fixed->converged || fixed->exhausted_table);
}

TEST(CvbTest, SampleProfileAndHeavyHittersAreReported) {
  Table table = MakeZipfTable(100000, 2.0, LayoutKind::kRandom);
  CvbOptions options;
  options.k = 50;
  options.f = 0.25;
  const auto result = RunCvb(table, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sample_profile.sample_size(), result->tuples_sampled);
  EXPECT_EQ(result->sample_profile.distinct_in_sample(),
            result->sample_distinct);
  // Zipf(2): the dominant value (~60% of tuples) must be flagged heavy with
  // a count in the right ballpark.
  ASSERT_FALSE(result->heavy_hitters.empty());
  std::uint64_t max_count = 0;
  for (const auto& h : result->heavy_hitters) {
    max_count = std::max(max_count, h.count);
  }
  EXPECT_GT(max_count, 100000u / 3);
  EXPECT_LT(max_count, 100000u);
}

TEST(CvbTest, ConstantColumnConvergesImmediately) {
  // Every tuple identical: any histogram is "right"; the fractional metric
  // sees matching fractions and stops at the first validation.
  const auto freq = MakeConstant(50000, 7);
  Table table =
      Table::Create(*freq, kPage, {.kind = LayoutKind::kRandom}).value();
  CvbOptions options;
  options.k = 10;
  options.f = 0.2;
  const auto result = RunCvb(table, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged || result->exhausted_table);
}

}  // namespace
}  // namespace equihist
