#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

#include "common/result.h"

namespace equihist {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::FailedPrecondition("no").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("out").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::NotFound("where").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("bug").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status status = Status::InvalidArgument("k must be positive");
  EXPECT_EQ(status.ToString(), "InvalidArgument: k must be positive");
}

TEST(StatusTest, StreamInsertionMatchesToString) {
  std::ostringstream os;
  os << Status::NotFound("page 9");
  EXPECT_EQ(os.str(), "NotFound: page 9");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  EQUIHIST_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("gone");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> good = 7;
  Result<int> bad = Status::Internal("x");
  EXPECT_EQ(good.value_or(9), 7);
  EXPECT_EQ(bad.value_or(9), 9);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result = std::string("histogram");
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "histogram");
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  EQUIHIST_ASSIGN_OR_RETURN(const int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> ok = QuarterViaMacro(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);

  Result<int> inner_fail = QuarterViaMacro(6);  // 6/2=3 is odd
  EXPECT_FALSE(inner_fail.ok());
  Result<int> outer_fail = QuarterViaMacro(5);
  EXPECT_FALSE(outer_fail.ok());
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> result = std::string("abc");
  EXPECT_EQ(result->size(), 3u);
}

}  // namespace
}  // namespace equihist
