#include "stats/join_estimator.h"

#include <gtest/gtest.h>

#include "data/distribution.h"
#include "data/value_set.h"
#include "storage/table.h"

namespace equihist {
namespace {

constexpr PageConfig kPage{8192, 64};

ColumnStatistics StatsOf(const FrequencyVector& freq, std::uint64_t k = 40) {
  Table table =
      Table::Create(freq, kPage, {.kind = LayoutKind::kRandom}).value();
  return BuildStatisticsFullScan(table, k).value();
}

// True equi-join size of two frequency vectors.
double TrueJoinSize(const FrequencyVector& a, const FrequencyVector& b) {
  double total = 0.0;
  auto it = b.entries().begin();
  for (const auto& ea : a.entries()) {
    while (it != b.entries().end() && it->value < ea.value) ++it;
    if (it != b.entries().end() && it->value == ea.value) {
      total += static_cast<double>(ea.count) * static_cast<double>(it->count);
    }
  }
  return total;
}

TEST(SystemRJoinTest, ExactOnMatchingUniformColumns) {
  // Both sides: 100 values x 50 each over the same domain. True join:
  // 100 * 50 * 50 = 250000; System R: 5000*5000/100 = 250000.
  const auto freq = MakeUniformDup(5000, 100);
  const auto left = StatsOf(*freq);
  const auto right = StatsOf(*freq);
  const auto estimate = SystemRJoinEstimate(left, right);
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(*estimate, 250000.0);
  EXPECT_DOUBLE_EQ(TrueJoinSize(*freq, *freq), 250000.0);
}

TEST(SystemRJoinTest, UsesMaxOfDistincts) {
  const auto narrow = MakeUniformDup(1000, 10);   // d = 10
  const auto wide = MakeUniformDup(1000, 100);    // d = 100
  const auto estimate = SystemRJoinEstimate(StatsOf(*narrow), StatsOf(*wide));
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(*estimate, 1000.0 * 1000.0 / 100.0);
}

TEST(SystemRJoinTest, Validation) {
  const auto freq = MakeUniformDup(1000, 10);
  ColumnStatistics good = StatsOf(*freq);
  ColumnStatistics bad = good;
  bad.row_count = 0;
  EXPECT_FALSE(SystemRJoinEstimate(bad, good).ok());
  bad = good;
  bad.distinct_estimate = 0.0;
  EXPECT_FALSE(SystemRJoinEstimate(good, bad).ok());
}

TEST(HistogramJoinTest, MatchesSystemROnUniformColumns) {
  const auto freq = MakeUniformDup(5000, 100);
  const auto left = StatsOf(*freq);
  const auto right = StatsOf(*freq);
  const auto refined = HistogramJoinEstimate(left, right);
  const auto classic = SystemRJoinEstimate(left, right);
  ASSERT_TRUE(refined.ok());
  ASSERT_TRUE(classic.ok());
  EXPECT_NEAR(*refined, *classic, *classic * 0.01);
}

TEST(HistogramJoinTest, HeavyHittersJoinExactly) {
  // Left: one dominant value 7 (60%), uniform tail. Right: same dominant
  // value with a different weight. The heavy x heavy term dominates the
  // true join size; System R (which averages everything) misses it badly.
  FrequencyVector left_freq({{7, 6000}, {10, 40}, {11, 40}, {12, 40},
                             {13, 40}, {14, 40}, {15, 40}, {16, 40},
                             {17, 40}, {18, 40}, {19, 40}, {20, 3600}});
  FrequencyVector right_freq({{7, 3000}, {10, 50}, {11, 50}, {12, 50},
                              {13, 50}, {14, 50}, {15, 50}, {16, 50},
                              {17, 50}, {18, 50}, {19, 50}, {20, 6500}});
  const auto left = StatsOf(left_freq, 5);
  const auto right = StatsOf(right_freq, 5);
  const double truth = TrueJoinSize(left_freq, right_freq);

  const auto refined = HistogramJoinEstimate(left, right);
  const auto classic = SystemRJoinEstimate(left, right);
  ASSERT_TRUE(refined.ok());
  ASSERT_TRUE(classic.ok());
  const double refined_err = std::abs(*refined - truth) / truth;
  const double classic_err = std::abs(*classic - truth) / truth;
  EXPECT_LT(refined_err, 0.15);
  EXPECT_LT(refined_err, classic_err);
}

TEST(HistogramJoinTest, DisjointDomainsEstimateNearZero) {
  FrequencyVector left_freq({{1, 100}, {2, 100}, {3, 100}});
  FrequencyVector right_freq({{1000, 100}, {2000, 100}, {3000, 100}});
  const auto estimate =
      HistogramJoinEstimate(StatsOf(left_freq, 3), StatsOf(right_freq, 3));
  ASSERT_TRUE(estimate.ok());
  EXPECT_LT(*estimate, 1.0);
  EXPECT_DOUBLE_EQ(TrueJoinSize(left_freq, right_freq), 0.0);
}

TEST(HistogramJoinTest, SampledStatisticsStillUsable) {
  const auto freq = MakeZipf({.n = 200000, .domain_size = 2000, .skew = 1.5,
                              .seed = 7});
  Table table =
      Table::Create(*freq, kPage, {.kind = LayoutKind::kRandom}).value();
  CvbOptions options;
  options.k = 40;
  options.f = 0.2;
  const auto sampled = BuildStatisticsSampled(table, options);
  ASSERT_TRUE(sampled.ok());
  const double truth = TrueJoinSize(*freq, *freq);
  const auto refined = HistogramJoinEstimate(*sampled, *sampled);
  ASSERT_TRUE(refined.ok());
  // Self-join of skewed data: the heavy-hitter terms carry most of the
  // mass; sampled statistics should land within a small factor.
  EXPECT_GT(*refined, truth / 3.0);
  EXPECT_LT(*refined, truth * 3.0);
}

}  // namespace
}  // namespace equihist
