#include "stats/column_statistics.h"
#include "stats/statistics_manager.h"

#include <gtest/gtest.h>

#include "core/density.h"
#include "data/distribution.h"
#include "data/value_set.h"

namespace equihist {
namespace {

constexpr PageConfig kPage{8192, 64};

Table SkewedTable(std::uint64_t n = 200000, std::uint64_t seed = 3) {
  const auto freq =
      MakeZipf({.n = n, .domain_size = n / 50, .skew = 1.5, .seed = seed});
  return Table::Create(*freq, kPage, {.kind = LayoutKind::kRandom, .seed = seed})
      .value();
}

ValueSet SkewedTruth(std::uint64_t n = 200000, std::uint64_t seed = 3) {
  const auto freq =
      MakeZipf({.n = n, .domain_size = n / 50, .skew = 1.5, .seed = seed});
  return ValueSet::FromFrequencies(*freq);
}

TEST(ColumnStatisticsTest, FullScanIsExact) {
  Table table = SkewedTable();
  ValueSet truth = SkewedTruth();
  const auto stats = BuildStatisticsFullScan(table, 50);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->from_full_scan);
  EXPECT_EQ(stats->row_count, truth.size());
  EXPECT_DOUBLE_EQ(stats->distinct_estimate,
                   static_cast<double>(truth.DistinctCount()));
  EXPECT_EQ(stats->build_cost.pages_read, table.page_count());
  EXPECT_EQ(stats->sample_size, truth.size());
}

TEST(ColumnStatisticsTest, SampledCostsLessThanFullScan) {
  Table table = SkewedTable();
  CvbOptions options;
  options.k = 50;
  options.f = 0.2;
  const auto sampled = BuildStatisticsSampled(table, options);
  const auto full = BuildStatisticsFullScan(table, 50);
  ASSERT_TRUE(sampled.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(sampled->from_full_scan);
  EXPECT_LT(sampled->build_cost.pages_read, full->build_cost.pages_read);
}

TEST(ColumnStatisticsTest, SampledStatisticsTrackTruth) {
  Table table = SkewedTable();
  ValueSet truth = SkewedTruth();
  CvbOptions options;
  options.k = 50;
  options.f = 0.15;
  const auto stats = BuildStatisticsSampled(table, options);
  ASSERT_TRUE(stats.ok());

  const double true_density = ComputeDensity(truth.sorted_values());
  EXPECT_NEAR(stats->density, true_density, 0.25 * true_density);

  // rel-error of the distinct estimate is small even if the ratio is not.
  const double d = static_cast<double>(truth.DistinctCount());
  EXPECT_LT(std::abs(d - stats->distinct_estimate) /
                static_cast<double>(truth.size()),
            0.05);
}

TEST(ColumnStatisticsTest, EqualityEstimatePinsHeavyHitters) {
  // One value holds 40% of the table.
  FrequencyVector fv({{100, 40000}, {200, 30000}, {300, 30000}});
  ValueSet truth = ValueSet::FromFrequencies(fv);
  Table table = Table::Create(fv, kPage, {.kind = LayoutKind::kRandom}).value();
  const auto stats = BuildStatisticsFullScan(table, 10);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->heavy_hitters.size(), 3u);
  EXPECT_DOUBLE_EQ(stats->EstimateEqualityCount(100), 40000.0);
  EXPECT_DOUBLE_EQ(stats->EstimateEqualityCount(200), 30000.0);
  // Out-of-domain probes estimate zero.
  EXPECT_DOUBLE_EQ(stats->EstimateEqualityCount(-5), 0.0);
  EXPECT_DOUBLE_EQ(stats->EstimateEqualityCount(9999), 0.0);
}

TEST(ColumnStatisticsTest, EqualityEstimateFallsBackForLightValues) {
  Table table = SkewedTable();
  ValueSet truth = SkewedTruth();
  const auto stats = BuildStatisticsFullScan(table, 50);
  ASSERT_TRUE(stats.ok());
  // Pick a light (non-heavy) value: the largest value in the domain is in
  // the Zipf tail with overwhelming probability under shuffled placement.
  const Value probe = truth.max();
  const double estimate = stats->EstimateEqualityCount(probe);
  const double actual =
      static_cast<double>(truth.CountInRange(probe - 1, probe));
  // The fallback is the average light multiplicity: same order, not exact.
  EXPECT_GT(estimate, 0.0);
  EXPECT_LT(estimate, 50.0 * std::max(actual, 1.0));
}

TEST(ColumnStatisticsTest, DistinctFractionAndToString) {
  Table table = SkewedTable();
  const auto stats = BuildStatisticsFullScan(table, 50);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->EstimateDistinctFraction(), 0.0);
  EXPECT_LE(stats->EstimateDistinctFraction(), 1.0);
  EXPECT_NE(stats->ToString().find("full scan"), std::string::npos);
}

TEST(StatisticsManagerTest, BuildsOnFirstAccessAndCaches) {
  Table table = SkewedTable();
  StatisticsManager manager({.buckets = 50, .f = 0.2});
  const auto first = manager.GetOrBuild("t.x", table);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(manager.rebuild_count(), 1u);
  const auto second = manager.GetOrBuild("t.x", table);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);  // same cached pointer
  EXPECT_EQ(manager.rebuild_count(), 1u);
  EXPECT_TRUE(manager.Has("t.x"));
  EXPECT_EQ(manager.size(), 1u);
}

TEST(StatisticsManagerTest, StalenessFollowsModificationCounter) {
  Table table = SkewedTable();
  StatisticsManager manager(
      {.buckets = 50, .f = 0.2, .staleness_threshold = 0.2});
  ASSERT_TRUE(manager.GetOrBuild("t.x", table).ok());
  EXPECT_FALSE(manager.IsStale("t.x"));
  manager.RecordModifications("t.x", table.tuple_count() / 10);  // 10%
  EXPECT_FALSE(manager.IsStale("t.x"));
  manager.RecordModifications("t.x", table.tuple_count() / 4);  // +25%
  EXPECT_TRUE(manager.IsStale("t.x"));
}

TEST(StatisticsManagerTest, EnsureFreshRebuildsWhenStale) {
  Table table = SkewedTable();
  StatisticsManager manager({.buckets = 50, .f = 0.2});
  ASSERT_TRUE(manager.GetOrBuild("t.x", table).ok());
  manager.RecordModifications("t.x", table.tuple_count());  // 100% modified
  const auto fresh = manager.EnsureFresh("t.x", table);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(manager.rebuild_count(), 2u);
  EXPECT_FALSE(manager.IsStale("t.x"));
}

TEST(StatisticsManagerTest, EnsureFreshNoopWhenFresh) {
  Table table = SkewedTable();
  StatisticsManager manager({.buckets = 50, .f = 0.2});
  ASSERT_TRUE(manager.EnsureFresh("t.x", table).ok());
  ASSERT_TRUE(manager.EnsureFresh("t.x", table).ok());
  EXPECT_EQ(manager.rebuild_count(), 1u);
}

TEST(StatisticsManagerTest, DropForgetsColumn) {
  Table table = SkewedTable();
  StatisticsManager manager({.buckets = 50, .f = 0.2});
  ASSERT_TRUE(manager.GetOrBuild("t.x", table).ok());
  EXPECT_TRUE(manager.Drop("t.x"));
  EXPECT_FALSE(manager.Drop("t.x"));
  EXPECT_FALSE(manager.Has("t.x"));
}

TEST(StatisticsManagerTest, TracksCumulativeBuildCost) {
  Table table = SkewedTable();
  StatisticsManager manager({.buckets = 50, .f = 0.2});
  ASSERT_TRUE(manager.GetOrBuild("a", table).ok());
  const std::uint64_t after_one = manager.total_build_cost().pages_read;
  EXPECT_GT(after_one, 0u);
  ASSERT_TRUE(manager.GetOrBuild("b", table).ok());
  EXPECT_GT(manager.total_build_cost().pages_read, after_one);
}

TEST(StatisticsManagerTest, FullScanModeIsExact) {
  Table table = SkewedTable();
  StatisticsManager manager(
      {.buckets = 50, .f = 0.2, .prefer_sampling = false});
  const auto stats = manager.GetOrBuild("t.x", table);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE((*stats)->from_full_scan);
}

// -- Modification accounting across a build -----------------------------------
//
// A deterministic mid-build hook: an external backend (id from the >= 128
// range) whose build step runs a test-settable callback before returning a
// trivial model. Lets a single-threaded test interleave DML with a build
// at an exact point.

constexpr auto kMidBuildHookId = static_cast<HistogramBackendId>(201);

std::function<void()>& MidBuildHook() {
  static std::function<void()> hook;
  return hook;
}

class MidBuildHookModel final : public HistogramModel {
 public:
  MidBuildHookModel(std::uint64_t total, Value lo, Value hi)
      : total_(total), lo_(lo), hi_(hi) {}

  HistogramBackendId backend_id() const override { return kMidBuildHookId; }
  double EstimateRangeCount(const RangeQuery& query) const override {
    return (query.hi > lo_ && query.lo < hi_) ? static_cast<double>(total_)
                                              : 0.0;
  }
  std::uint64_t bucket_count() const override { return 1; }
  std::uint64_t total() const override { return total_; }
  Value lower_fence() const override { return lo_; }
  Value upper_fence() const override { return hi_; }
  std::size_t MemoryBytes() const override { return sizeof(*this); }
  std::string Describe() const override { return "MidBuildHook"; }
  void SerializePayload(std::vector<std::uint8_t>*) const override {}

 private:
  std::uint64_t total_;
  Value lo_;
  Value hi_;
};

void RegisterMidBuildHookBackendOnce() {
  static const bool registered = [] {
    HistogramBackendRegistry::Backend backend;
    backend.name = "mid-build-hook";
    backend.build_from_sample =
        [](std::span<const Value> sample, std::uint64_t,
           std::uint64_t population_size) -> Result<HistogramModelPtr> {
      if (sample.empty()) {
        return Status::InvalidArgument("mid-build hook needs a sample");
      }
      if (MidBuildHook()) MidBuildHook()();
      return HistogramModelPtr(std::make_shared<MidBuildHookModel>(
          population_size, sample.front() - 1, sample.back()));
    };
    backend.deserialize_payload =
        [](std::span<const std::uint8_t>,
           std::size_t* consumed) -> Result<HistogramModelPtr> {
      *consumed = 0;
      return HistogramModelPtr(std::make_shared<MidBuildHookModel>(0, 0, 1));
    };
    const Status status = HistogramBackendRegistry::Global().Register(
        kMidBuildHookId, std::move(backend));
    EXPECT_TRUE(status.ok()) << status.ToString();
    return true;
  }();
  (void)registered;
}

// Regression: publishing a build used to reset the modification counter to
// zero wholesale — erasing DML recorded while the build was running, so a
// column modified during its own rebuild looked fresh. The publish now
// subtracts only the modifications the build actually observed at capture
// time.
TEST(StatisticsManagerTest, ModificationsDuringBuildSurviveThePublish) {
  RegisterMidBuildHookBackendOnce();
  Table table = SkewedTable();
  StatisticsManager::Options options;
  options.buckets = 16;
  options.f = 0.2;
  options.staleness_threshold = 0.2;
  options.threads = 1;
  options.column_backends["t.x"] = kMidBuildHookId;
  StatisticsManager manager(options);
  MidBuildHook() = [&manager, &table] {
    manager.RecordModifications("t.x", table.tuple_count());
  };
  ASSERT_TRUE(manager.GetOrBuild("t.x", table).ok());
  MidBuildHook() = nullptr;
  // 100% of the rows changed while the build ran: the snapshot just
  // published is already stale and the next EnsureFresh must rebuild.
  EXPECT_TRUE(manager.IsStale("t.x"));
  ASSERT_TRUE(manager.EnsureFresh("t.x", table).ok());
  EXPECT_EQ(manager.rebuild_count(), 2u);
  EXPECT_FALSE(manager.IsStale("t.x"));
}

// The complementary direction: modifications recorded *before* a build
// starts are consumed by the publish (exactly those, no more).
TEST(StatisticsManagerTest, PublishConsumesOnlyCapturedModifications) {
  RegisterMidBuildHookBackendOnce();
  Table table = SkewedTable();
  StatisticsManager::Options options;
  options.buckets = 16;
  options.f = 0.2;
  options.staleness_threshold = 0.2;
  options.threads = 1;
  options.column_backends["t.x"] = kMidBuildHookId;
  StatisticsManager manager(options);
  ASSERT_TRUE(manager.GetOrBuild("t.x", table).ok());
  manager.RecordModifications("t.x", table.tuple_count());
  ASSERT_TRUE(manager.IsStale("t.x"));
  ASSERT_TRUE(manager.EnsureFresh("t.x", table).ok());
  EXPECT_FALSE(manager.IsStale("t.x"));
}

}  // namespace
}  // namespace equihist
