#include "baseline/equi_width.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/histogram_builder.h"
#include "core/range_estimator.h"
#include "data/distribution.h"
#include "data/value_set.h"
#include "sampling/row_sampler.h"

namespace equihist {
namespace {

TEST(EquiWidthTest, UniformDataGivesUniformCounts) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(1000));
  const auto h = EquiWidthHistogram::Build(data, 10);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->bucket_count(), 10u);
  EXPECT_EQ(h->total(), 1000u);
  for (std::uint64_t c : h->counts()) {
    EXPECT_EQ(c, 100u);
  }
}

TEST(EquiWidthTest, CountsSumToPopulation) {
  const auto freq = MakeZipf({.n = 50000, .domain_size = 700, .skew = 2.0});
  const ValueSet data = ValueSet::FromFrequencies(*freq);
  const auto h = EquiWidthHistogram::Build(data, 37);
  ASSERT_TRUE(h.ok());
  std::uint64_t sum = 0;
  for (std::uint64_t c : h->counts()) sum += c;
  EXPECT_EQ(sum, data.size());
}

TEST(EquiWidthTest, BucketBoundsPartitionTheDomain) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(1000));
  const auto h = EquiWidthHistogram::Build(data, 8);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->BucketLowerBound(0), h->lo());
  EXPECT_EQ(h->BucketUpperBound(7), h->hi());
  for (std::uint64_t j = 0; j + 1 < 8; ++j) {
    EXPECT_EQ(h->BucketUpperBound(j), h->BucketLowerBound(j + 1));
  }
}

TEST(EquiWidthTest, BucketIndexConsistentWithBounds) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(997));
  const auto h = EquiWidthHistogram::Build(data, 7);
  ASSERT_TRUE(h.ok());
  for (Value v = 1; v <= 997; v += 13) {
    const std::uint64_t j = h->BucketIndexForValue(v);
    EXPECT_GT(v, h->BucketLowerBound(j)) << v;
    EXPECT_LE(v, h->BucketUpperBound(j)) << v;
  }
}

TEST(EquiWidthTest, SkewedDataOverloadsOneBucket) {
  // All the mass near the low end of a wide domain: the equi-width
  // histogram parks almost everything in bucket 0 — the failure mode that
  // motivates equi-height histograms.
  FrequencyVector fv({{1, 9990}, {1000000, 10}});
  const ValueSet data = ValueSet::FromFrequencies(fv);
  const auto h = EquiWidthHistogram::Build(data, 10);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->counts()[0], 9990u);
}

TEST(EquiWidthTest, RangeEstimationExactOnUniformData) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(1000));
  const auto h = EquiWidthHistogram::Build(data, 10);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(h->EstimateRangeCount({0, 1000}), 1000.0, 1e-9);
  EXPECT_NEAR(h->EstimateRangeCount({100, 300}), 200.0, 1.0);
  EXPECT_NEAR(h->EstimateRangeCount({150, 250}), 100.0, 1.0);
  EXPECT_EQ(h->EstimateRangeCount({2000, 3000}), 0.0);
  EXPECT_EQ(h->EstimateRangeCount({500, 500}), 0.0);
}

TEST(EquiWidthTest, BuildFromSampleScalesCounts) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(10000));
  Rng rng(3);
  auto sample = SampleRowsWithoutReplacement(data.sorted_values(), 1000, rng);
  std::sort(sample->begin(), sample->end());
  const auto h = EquiWidthHistogram::BuildFromSample(*sample, 10, 10000);
  ASSERT_TRUE(h.ok());
  std::uint64_t sum = 0;
  for (std::uint64_t c : h->counts()) {
    sum += c;
    EXPECT_NEAR(static_cast<double>(c), 1000.0, 250.0);
  }
  EXPECT_EQ(sum, 10000u);
}

TEST(EquiWidthTest, WorseThanEquiHeightOnSkewedRangeWorkload) {
  // The headline comparison: same bucket budget, same skewed data; the
  // equi-height histogram's worst-case range error is far smaller.
  const auto freq = MakeZipf({.n = 100000,
                              .domain_size = 5000,
                              .skew = 1.5,
                              .placement = FrequencyPlacement::kDecreasing});
  const ValueSet data = ValueSet::FromFrequencies(*freq);
  const std::uint64_t k = 20;
  const auto width = EquiWidthHistogram::Build(data, k);
  const auto height = BuildPerfectHistogram(data, k);
  ASSERT_TRUE(width.ok());
  ASSERT_TRUE(height.ok());

  Rng rng(5);
  double width_worst = 0.0;
  double height_worst = 0.0;
  for (int i = 0; i < 500; ++i) {
    Value a = rng.NextInRange(0, 5000);
    Value b = rng.NextInRange(0, 5000);
    if (a > b) std::swap(a, b);
    if (a == b) continue;
    const double actual = static_cast<double>(data.CountInRange(a, b));
    width_worst = std::max(
        width_worst, std::abs(width->EstimateRangeCount({a, b}) - actual));
    height_worst = std::max(
        height_worst,
        std::abs(EstimateRangeCount(*height, {a, b}) - actual));
  }
  EXPECT_GT(width_worst, 2.0 * height_worst);
}

TEST(EquiWidthTest, DifferentialAgainstCoreEstimatorOnSameBuckets) {
  // An equi-width histogram is structurally an equi-height histogram whose
  // separators happen to be width-derived. On identical buckets the two
  // estimators must agree bit for bit: same fence clamping, same
  // degenerate-range rules, same interpolation, same accumulation order.
  const auto freq = MakeZipf({.n = 60000, .domain_size = 3000, .skew = 1.2});
  const ValueSet data = ValueSet::FromFrequencies(*freq);
  for (const std::uint64_t k : {1u, 7u, 32u, 200u}) {
    const auto width = EquiWidthHistogram::Build(data, k);
    ASSERT_TRUE(width.ok());
    std::vector<Value> separators;
    for (std::uint64_t j = 0; j + 1 < k; ++j) {
      separators.push_back(width->BucketUpperBound(j));
    }
    const auto core = Histogram::Create(separators, width->counts(),
                                        width->lo(), width->hi());
    ASSERT_TRUE(core.ok());
    Rng rng(11 + k);
    for (int i = 0; i < 2000; ++i) {
      // Endpoints beyond the fences and inverted/empty ranges included on
      // purpose: the clamping and hi <= lo paths must match too.
      const Value a = rng.NextInRange(width->lo() - 100, width->hi() + 100);
      const Value b = rng.NextInRange(width->lo() - 100, width->hi() + 100);
      const RangeQuery q{a, b};
      EXPECT_DOUBLE_EQ(width->EstimateRangeCount(q),
                       EstimateRangeCount(*core, q))
          << "k=" << k << " lo=" << a << " hi=" << b;
    }
  }
}

TEST(EquiWidthTest, DegenerateRangesMatchCoreSemantics) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(1000));
  const auto h = EquiWidthHistogram::Build(data, 10);
  ASSERT_TRUE(h.ok());
  // hi <= lo is empty under the half-open (lo, hi] convention.
  EXPECT_EQ(h->EstimateRangeCount({500, 500}), 0.0);
  EXPECT_EQ(h->EstimateRangeCount({700, 300}), 0.0);
  // Entirely outside the fences.
  EXPECT_EQ(h->EstimateRangeCount({-500, -100}), 0.0);
  EXPECT_EQ(h->EstimateRangeCount({2000, 3000}), 0.0);
  // Straddling a fence clamps to it rather than extrapolating.
  EXPECT_DOUBLE_EQ(h->EstimateRangeCount({-500, 1500}),
                   h->EstimateRangeCount({h->lo(), h->hi()}));
}

TEST(EquiWidthTest, Validation) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(10));
  EXPECT_FALSE(EquiWidthHistogram::Build(data, 0).ok());
  EXPECT_FALSE(EquiWidthHistogram::Build(ValueSet(), 4).ok());
  EXPECT_FALSE(
      EquiWidthHistogram::BuildFromSample(std::vector<Value>{}, 4, 100).ok());
  EXPECT_FALSE(
      EquiWidthHistogram::BuildFromSample(std::vector<Value>{1}, 4, 0).ok());
}

TEST(EquiWidthTest, ToStringRendersBuckets) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(100));
  const auto h = EquiWidthHistogram::Build(data, 4);
  ASSERT_TRUE(h.ok());
  EXPECT_NE(h->ToString().find("EquiWidthHistogram{k=4"), std::string::npos);
}

}  // namespace
}  // namespace equihist
