#include "core/histogram_builder.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "data/distribution.h"
#include "data/value_set.h"
#include "sampling/sample.h"

namespace equihist {
namespace {

TEST(PerfectHistogramTest, EquiHeightOnDistinctData) {
  const ValueSet data =
      ValueSet::FromFrequencies(*MakeAllDistinct(1000));
  const auto h = BuildPerfectHistogram(data, 10);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->bucket_count(), 10u);
  EXPECT_EQ(h->total(), 1000u);
  for (std::uint64_t c : h->counts()) {
    EXPECT_EQ(c, 100u);
  }
}

TEST(PerfectHistogramTest, NonDivisibleSizesStayWithinOne) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(1003));
  const auto h = BuildPerfectHistogram(data, 10);
  ASSERT_TRUE(h.ok());
  std::uint64_t total = 0;
  for (std::uint64_t c : h->counts()) {
    EXPECT_GE(c, 100u);
    EXPECT_LE(c, 101u);
    total += c;
  }
  EXPECT_EQ(total, 1003u);
}

TEST(PerfectHistogramTest, SeparatorsAreSortedDataValues) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(100));
  const auto h = BuildPerfectHistogram(data, 4);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->separators(), (std::vector<Value>{25, 50, 75}));
}

TEST(PerfectHistogramTest, KLargerThanNLeavesEmptyBuckets) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(3));
  const auto h = BuildPerfectHistogram(data, 8);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->bucket_count(), 8u);
  std::uint64_t total = 0;
  for (std::uint64_t c : h->counts()) total += c;
  EXPECT_EQ(total, 3u);
}

TEST(PerfectHistogramTest, HeavyDuplicatesProduceRepeatedSeparators) {
  // One value holds 60% of the data: with k=10 several separators coincide.
  FrequencyVector fv({{1, 600}, {2, 100}, {3, 100}, {4, 100}, {5, 100}});
  const ValueSet data = ValueSet::FromFrequencies(fv);
  const auto h = BuildPerfectHistogram(data, 10);
  ASSERT_TRUE(h.ok());
  const auto& seps = h->separators();
  EXPECT_GT(std::count(seps.begin(), seps.end(), 1), 1);
  EXPECT_TRUE(std::is_sorted(seps.begin(), seps.end()));
}

TEST(PerfectHistogramTest, Validation) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(10));
  EXPECT_FALSE(BuildPerfectHistogram(data, 0).ok());
  EXPECT_FALSE(BuildPerfectHistogram(ValueSet(), 4).ok());
}

TEST(SampleHistogramTest, ClaimedCountsAreEvenSplit) {
  const std::vector<Value> sample = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto h = BuildHistogramFromSample(sample, 4, 1000);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->total(), 1000u);
  EXPECT_EQ(h->counts(), (std::vector<std::uint64_t>{250, 250, 250, 250}));
}

TEST(SampleHistogramTest, ClaimedCountsSumExactlyWithRemainder) {
  const std::vector<Value> sample = {1, 2, 3};
  const auto h = BuildHistogramFromSample(sample, 3, 1000);
  ASSERT_TRUE(h.ok());
  std::uint64_t total = 0;
  for (std::uint64_t c : h->counts()) total += c;
  EXPECT_EQ(total, 1000u);
  // 1000 = 334 + 333 + 333.
  EXPECT_EQ(h->counts()[0], 334u);
}

TEST(SampleHistogramTest, SeparatorsAreSampleQuantiles) {
  std::vector<Value> sample(100);
  std::iota(sample.begin(), sample.end(), 1);  // 1..100
  const auto h = BuildHistogramFromSample(sample, 4, 100000);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->separators(), (std::vector<Value>{25, 50, 75}));
  EXPECT_EQ(h->lower_fence(), 0);
  EXPECT_EQ(h->upper_fence(), 100);
}

TEST(SampleHistogramTest, SampleOverloadMatchesSpanOverload) {
  Sample sample({9, 3, 7, 1, 5});
  const auto a = BuildHistogramFromSample(sample, 2, 50);
  const auto b = BuildHistogramFromSample(
      std::span<const Value>(sample.sorted_values()), 2, 50);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->separators(), b->separators());
  EXPECT_EQ(a->counts(), b->counts());
}

TEST(SampleHistogramTest, Validation) {
  const std::vector<Value> sample = {1, 2, 3};
  EXPECT_FALSE(BuildHistogramFromSample(sample, 0, 100).ok());
  EXPECT_FALSE(BuildHistogramFromSample(sample, 2, 0).ok());
  EXPECT_FALSE(
      BuildHistogramFromSample(std::span<const Value>{}, 2, 100).ok());
}

// Regression: a population whose minimum is INT64_MIN used to compute the
// lower fence as min - 1, which is signed overflow (UB). The fence now
// saturates at INT64_MIN, which still classifies every real value
// correctly because no value can be strictly below it.
TEST(PerfectHistogramTest, MinimumAtInt64MinDoesNotOverflow) {
  constexpr Value kMin = std::numeric_limits<Value>::min();
  const ValueSet data({kMin, kMin + 1, 0, 5, 10});
  const auto h = BuildPerfectHistogram(data, 2);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->lower_fence(), kMin);
  EXPECT_EQ(h->total(), 5u);
}

TEST(SampleHistogramTest, SampleFrontAtInt64MinDoesNotOverflow) {
  constexpr Value kMin = std::numeric_limits<Value>::min();
  const std::vector<Value> sorted_sample = {kMin, -7, 0, 3, 9, 12};
  const auto h = BuildHistogramFromSample(sorted_sample, 3, 600);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->lower_fence(), kMin);
  std::uint64_t total = 0;
  for (std::uint64_t c : h->counts()) total += c;
  EXPECT_EQ(total, 600u);
}

// Property: across sizes and bucket counts the perfect histogram on
// distinct data is equi-height to within one tuple, sums to n, and its
// separators are non-decreasing.
class PerfectHistogramPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {
};

TEST_P(PerfectHistogramPropertyTest, EquiHeightInvariants) {
  const auto [n, k] = GetParam();
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(n));
  const auto h = BuildPerfectHistogram(data, k);
  ASSERT_TRUE(h.ok());
  const std::uint64_t q = n / k;
  std::uint64_t total = 0;
  for (std::uint64_t c : h->counts()) {
    EXPECT_GE(c + 1, q);      // c >= q-1 in unsigned-safe form
    EXPECT_LE(c, q + 1);
    total += c;
  }
  EXPECT_EQ(total, n);
  EXPECT_TRUE(std::is_sorted(h->separators().begin(), h->separators().end()));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBuckets, PerfectHistogramPropertyTest,
    ::testing::Combine(::testing::Values(std::uint64_t{97}, std::uint64_t{1000},
                                         std::uint64_t{12345}),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{7},
                                         std::uint64_t{50},
                                         std::uint64_t{96})));

}  // namespace
}  // namespace equihist
