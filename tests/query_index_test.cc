#include "query/index.h"

#include <gtest/gtest.h>

#include "data/distribution.h"
#include "data/value_set.h"
#include "storage/fault_injection.h"
#include "storage/table.h"

namespace equihist {
namespace {

constexpr PageConfig kPage{512, 64};  // 8 tuples per page

struct Fixture {
  Fixture()
      : freq(MakeZipf({.n = 5000, .domain_size = 500, .skew = 1.0, .seed = 3})
                 .value()),
        truth(ValueSet::FromFrequencies(freq)),
        table(Table::Create(freq, kPage, {.kind = LayoutKind::kRandom,
                                          .seed = 3})
                  .value()),
        index(OrderedIndex::Build(table, nullptr, 64).value()) {}

  FrequencyVector freq;
  ValueSet truth;
  Table table;
  OrderedIndex index;
};

TEST(OrderedIndexTest, BuildIndexesEveryTuple) {
  Fixture fx;
  EXPECT_EQ(fx.index.entry_count(), fx.table.tuple_count());
  EXPECT_EQ(fx.index.leaf_count(), (5000 + 63) / 64);
}

TEST(OrderedIndexTest, BuildChargesOneScan) {
  const auto freq = MakeAllDistinct(100);
  Table table = Table::Create(*freq, kPage, {.kind = LayoutKind::kRandom})
                    .value();
  IoStats stats;
  const auto index = OrderedIndex::Build(table, &stats);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(stats.pages_read, table.page_count());
}

TEST(OrderedIndexTest, RangeCountMatchesGroundTruth) {
  Fixture fx;
  for (const RangeQuery& q :
       {RangeQuery{0, 100}, RangeQuery{50, 51}, RangeQuery{-5, 10000},
        RangeQuery{499, 500}, RangeQuery{200, 200}}) {
    EXPECT_EQ(fx.index.RangeCount(q, nullptr),
              fx.truth.CountInRange(q.lo, q.hi))
        << q.lo << " " << q.hi;
  }
}

TEST(OrderedIndexTest, RangeScanMatchesCountAndChargesPages) {
  Fixture fx;
  const RangeQuery q{100, 200};
  IoStats stats;
  const std::uint64_t rows = fx.index.RangeScan(fx.table, q, &stats);
  EXPECT_EQ(rows, fx.truth.CountInRange(q.lo, q.hi));
  EXPECT_EQ(stats.tuples_read, rows);
  // Pages touched: at most one table page per match plus the leaves, and
  // at least ceil(rows / tuples_per_page).
  EXPECT_GE(stats.pages_read, rows / 8);
  EXPECT_LE(stats.pages_read, rows + fx.index.leaf_count());
}

TEST(OrderedIndexTest, EmptyRangeTouchesNothing) {
  Fixture fx;
  IoStats stats;
  EXPECT_EQ(fx.index.RangeScan(fx.table, {10000, 20000}, &stats), 0u);
  EXPECT_EQ(stats.pages_read, 0u);
  EXPECT_EQ(stats.tuples_read, 0u);
}

TEST(OrderedIndexTest, NarrowRangeIsFarCheaperThanScan) {
  Fixture fx;
  IoStats index_io;
  fx.index.RangeScan(fx.table, {100, 102}, &index_io);
  EXPECT_LT(index_io.pages_read, fx.table.page_count() / 4);
}

// Regression: Build and RangeScan used to check ReadPage results only
// with assert(), so on faulty storage a release build dereferenced an
// empty Result. Both now retry transient faults and propagate permanent
// ones (RangeScan through RangeScanChecked).

TEST(OrderedIndexFaultTest, BuildPropagatesLostPage) {
  const auto freq = MakeAllDistinct(100);
  Table table = Table::Create(*freq, kPage, {.kind = LayoutKind::kRandom})
                    .value();
  FaultSpec spec;
  spec.lost_pages = {3};
  FaultInjector injector(spec);
  table.set_fault_injector(&injector);
  const auto index = OrderedIndex::Build(table);
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), StatusCode::kDataLoss);
}

TEST(OrderedIndexFaultTest, BuildRetriesTransientFaultsAndCharges) {
  const auto freq = MakeAllDistinct(100);
  Table table = Table::Create(*freq, kPage, {.kind = LayoutKind::kRandom})
                    .value();
  FaultSpec spec;
  spec.transient_pages = {2};
  spec.transient_failures_per_page = 2;  // heals within the default 3 tries
  FaultInjector injector(spec);
  table.set_fault_injector(&injector);
  IoStats stats;
  const auto index = OrderedIndex::Build(table, &stats);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->entry_count(), table.tuple_count());
  EXPECT_EQ(stats.transient_retries, 2u);
}

TEST(OrderedIndexFaultTest, RangeScanCheckedPropagatesLostPage) {
  Fixture fx;
  FaultSpec spec;
  spec.lost_pages = {0};
  FaultInjector injector(spec);
  fx.table.set_fault_injector(&injector);
  IoStats stats;
  // The full-domain scan must fetch every page, page 0 included.
  const Result<std::uint64_t> rows =
      fx.index.RangeScanChecked(fx.table, {-5, 10000}, &stats);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kDataLoss);
}

TEST(OrderedIndexFaultTest, RangeScanCheckedMatchesRangeScanWhenFaultFree) {
  Fixture fx;
  const RangeQuery q{100, 200};
  IoStats unchecked_io;
  const std::uint64_t unchecked = fx.index.RangeScan(fx.table, q,
                                                     &unchecked_io);
  IoStats checked_io;
  const Result<std::uint64_t> checked =
      fx.index.RangeScanChecked(fx.table, q, &checked_io);
  ASSERT_TRUE(checked.ok());
  EXPECT_EQ(*checked, unchecked);
  EXPECT_EQ(checked_io.pages_read, unchecked_io.pages_read);
  EXPECT_EQ(checked_io.tuples_read, unchecked_io.tuples_read);
}

TEST(OrderedIndexTest, Validation) {
  EXPECT_FALSE(OrderedIndex::Build(
                   Table::CreateFromValues({1}, kPage).value(), nullptr, 0)
                   .ok());
}

}  // namespace
}  // namespace equihist
