// Edge-case and failure-injection tests across the stack: degenerate
// sizes, domain extremes, and pathological-but-legal inputs that a
// production statistics subsystem must survive.

#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/math.h"
#include "core/compressed_histogram.h"
#include "core/cvb.h"
#include "core/error_metrics.h"
#include "core/histogram_builder.h"
#include "core/range_estimator.h"
#include "data/distribution.h"
#include "data/value_set.h"
#include "query/index.h"
#include "query/planner.h"
#include "sampling/design_effect.h"
#include "stats/column_statistics.h"
#include "stats/serialization.h"
#include "stats/statistics_manager.h"
#include "storage/table.h"

namespace equihist {
namespace {

constexpr PageConfig kPage{8192, 64};

TEST(EdgeCaseTest, SingleTupleTableEndToEnd) {
  auto table = Table::CreateFromValues({42}, kPage);
  ASSERT_TRUE(table.ok());
  const auto stats = BuildStatisticsFullScan(*table, 10);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->row_count, 1u);
  EXPECT_DOUBLE_EQ(stats->distinct_estimate, 1.0);
  EXPECT_DOUBLE_EQ(stats->EstimateRangeCount({41, 42}), 1.0);
  EXPECT_DOUBLE_EQ(stats->EstimateRangeCount({42, 50}), 0.0);

  CvbOptions options;
  options.k = 4;
  options.f = 0.5;
  const auto cvb = RunCvb(*table, options);
  ASSERT_TRUE(cvb.ok());
  EXPECT_EQ(cvb->histogram.total(), 1u);
}

TEST(EdgeCaseTest, SinglePageTableCvbExhaustsCleanly) {
  const auto freq = MakeAllDistinct(100);
  auto table = Table::Create(*freq, kPage, {.kind = LayoutKind::kRandom});
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->page_count(), 1u);
  CvbOptions options;
  options.k = 10;
  options.f = 0.01;
  const auto result = RunCvb(*table, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exhausted_table);
  EXPECT_EQ(result->tuples_sampled, 100u);
}

TEST(EdgeCaseTest, KEqualsOneEverywhere) {
  const auto freq = MakeZipf({.n = 5000, .domain_size = 100, .skew = 1.0});
  const ValueSet data = ValueSet::FromFrequencies(*freq);
  const auto h = BuildPerfectHistogram(data, 1);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->bucket_count(), 1u);
  EXPECT_TRUE(h->separators().empty());
  EXPECT_DOUBLE_EQ(
      EstimateRangeCount(*h, {data.min() - 1, data.max()}), 5000.0);
  const auto errors = ComputeHistogramErrors(*h, data);
  ASSERT_TRUE(errors.ok());
  EXPECT_DOUBLE_EQ(errors->delta_max, 0.0);  // one bucket is always perfect

  const auto compressed = CompressedHistogram::BuildPerfect(data, 1);
  ASSERT_TRUE(compressed.ok());
  EXPECT_NEAR(compressed->EstimateRangeCount({data.min() - 1, data.max()}),
              5000.0, 1.0);
}

TEST(EdgeCaseTest, NegativeValuesEndToEnd) {
  std::vector<FrequencyEntry> entries;
  for (Value v = -500; v <= -1; ++v) {
    entries.push_back(FrequencyEntry{v, 3});
  }
  FrequencyVector freq(entries);
  const ValueSet data = ValueSet::FromFrequencies(freq);
  auto table = Table::Create(freq, kPage, {.kind = LayoutKind::kRandom});
  ASSERT_TRUE(table.ok());

  const auto stats = BuildStatisticsFullScan(*table, 20);
  ASSERT_TRUE(stats.ok());
  EXPECT_NEAR(stats->EstimateRangeCount({-501, -1}), 1500.0, 1.0);
  EXPECT_NEAR(stats->EstimateRangeCount({-250, -1}), 747.0, 10.0);

  std::vector<std::uint8_t> bytes;
  SerializeColumnStatistics(*stats, &bytes);
  const auto restored = DeserializeColumnStatistics(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->histogram().lower_fence(), stats->histogram().lower_fence());
}

TEST(EdgeCaseTest, ExtremeDomainBoundsSurviveSerialization) {
  const Value lo = std::numeric_limits<Value>::min() / 4;
  const Value hi = std::numeric_limits<Value>::max() / 4;
  const auto h = Histogram::Create({0}, {10, 10}, lo, hi);
  ASSERT_TRUE(h.ok());
  std::vector<std::uint8_t> bytes;
  SerializeHistogram(*h, &bytes);
  const auto restored = DeserializeHistogram(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->lower_fence(), lo);
  EXPECT_EQ(restored->upper_fence(), hi);
}

TEST(EdgeCaseTest, QueriesExactlyAtFences) {
  const ValueSet data = ValueSet::FromFrequencies(*MakeAllDistinct(100));
  const auto h = BuildPerfectHistogram(data, 10);
  ASSERT_TRUE(h.ok());
  // (lower_fence, lower_fence + 1] is exactly the smallest value.
  EXPECT_NEAR(EstimateRangeCount(*h, {h->lower_fence(), h->lower_fence() + 1}),
              1.0, 0.5);
  // (upper_fence, anything] is empty.
  EXPECT_DOUBLE_EQ(
      EstimateRangeCount(*h, {h->upper_fence(), h->upper_fence() + 100}), 0.0);
}

TEST(EdgeCaseTest, AllDuplicateColumnThroughTheWholeStack) {
  const auto freq = MakeConstant(10000, 7);
  auto table = Table::Create(*freq, kPage, {.kind = LayoutKind::kRandom});
  ASSERT_TRUE(table.ok());
  const ValueSet data = ValueSet::FromFrequencies(*freq);

  const auto stats = BuildStatisticsFullScan(*table, 10);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->density, 1.0);
  EXPECT_DOUBLE_EQ(stats->distinct_estimate, 1.0);
  EXPECT_DOUBLE_EQ(stats->EstimateEqualityCount(7), 10000.0);
  EXPECT_DOUBLE_EQ(stats->EstimateRangeCount({6, 7}), 10000.0);
  EXPECT_DOUBLE_EQ(stats->EstimateRangeCount({7, 8}), 0.0);

  const auto index = OrderedIndex::Build(*table);
  ASSERT_TRUE(index.ok());
  IoStats io;
  EXPECT_EQ(index->RangeScan(*table, {6, 7}, &io), 10000u);
  EXPECT_EQ(index->RangeScan(*table, {7, 8}, nullptr), 0u);
}

TEST(EdgeCaseTest, ManagerHandlesTinyTables) {
  auto table = Table::CreateFromValues({1, 2, 3}, kPage);
  ASSERT_TRUE(table.ok());
  StatisticsManager manager({.buckets = 10, .f = 0.2});
  const auto stats = manager.GetOrBuild("tiny", *table);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ((*stats)->row_count, 3u);
  manager.RecordModifications("tiny", 100);
  EXPECT_TRUE(manager.IsStale("tiny"));
  EXPECT_TRUE(manager.EnsureFresh("tiny", *table).ok());
}

TEST(EdgeCaseTest, PlannerDegeneratesSafelyOnOnePageTables) {
  auto table = Table::CreateFromValues({1, 2, 3, 4, 5}, kPage);
  ASSERT_TRUE(table.ok());
  const auto stats = BuildStatisticsFullScan(*table, 2);
  ASSERT_TRUE(stats.ok());
  const auto choice = ChooseAccessPath(*stats, {0, 3}, table->page_count(),
                                       table->tuples_per_page());
  // One page: the full scan costs one sequential read and must win.
  EXPECT_EQ(choice.path, AccessPath::kFullScan);
}

TEST(EdgeCaseTest, DesignEffectHandlesRaggedLastPage) {
  // 130 tuples over 128/page: second page holds 2 tuples.
  const auto freq = MakeAllDistinct(130);
  auto table = Table::Create(*freq, kPage, {.kind = LayoutKind::kRandom});
  ASSERT_TRUE(table.ok());
  const auto deff = EstimateDesignEffect(*table, 2, 3);
  ASSERT_TRUE(deff.ok());
  EXPECT_GE(deff->design_effect, 1.0);
}

TEST(EdgeCaseTest, ApportionHandlesDegenerateWeights) {
  // All-zero weights: round-robin fallback still sums exactly.
  const std::vector<double> zeros(5, 0.0);
  const auto counts = ApportionProportionally(zeros, 12);
  std::uint64_t sum = 0;
  for (auto c : counts) sum += c;
  EXPECT_EQ(sum, 12u);

  // Single weight takes everything.
  const std::vector<double> one = {3.5};
  EXPECT_EQ(ApportionProportionally(one, 7),
            (std::vector<std::uint64_t>{7}));

  // Zero total spreads nothing.
  const std::vector<double> w = {1.0, 2.0};
  const auto none = ApportionProportionally(w, 0);
  EXPECT_EQ(none, (std::vector<std::uint64_t>{0, 0}));
}

TEST(EdgeCaseTest, FencesTouchingQueriesOnCompressed) {
  FrequencyVector freq({{10, 500}, {20, 500}});
  const ValueSet data = ValueSet::FromFrequencies(freq);
  const auto ch = CompressedHistogram::BuildPerfect(data, 4);
  ASSERT_TRUE(ch.ok());
  EXPECT_DOUBLE_EQ(ch->EstimateRangeCount({9, 10}), 500.0);
  EXPECT_DOUBLE_EQ(ch->EstimateRangeCount({10, 20}), 500.0);
  EXPECT_DOUBLE_EQ(ch->EstimateRangeCount({20, 30}), 0.0);
  EXPECT_DOUBLE_EQ(ch->EstimateRangeCount({0, 100}), 1000.0);
}

TEST(EdgeCaseTest, CvbMaxIterationsCapIsHonored) {
  const auto freq =
      MakeZipf({.n = 200000, .domain_size = 2000, .skew = 2.0, .seed = 3});
  auto table = Table::Create(*freq, kPage, {.kind = LayoutKind::kSorted});
  ASSERT_TRUE(table.ok());
  CvbOptions options;
  options.k = 100;
  options.f = 0.01;  // unreachable
  options.max_iterations = 2;
  options.schedule.kind = ScheduleKind::kLinear;  // tiny fixed steps
  const auto result = RunCvb(*table, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->converged);
  EXPECT_FALSE(result->exhausted_table);
  EXPECT_EQ(result->iterations, 2u);
}

}  // namespace
}  // namespace equihist
