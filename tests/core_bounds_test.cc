#include "core/bounds.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

namespace equihist {
namespace {

constexpr std::uint64_t kMeg = 1000000;

TEST(DeviationSampleSizeTest, PaperExample3SampleSizes) {
  // Example 3: gamma = 0.01. "For k = 500 and relative error f = 0.2, we
  // require sample size roughly 1Meg for essentially all reasonable n."
  for (std::uint64_t n : {10 * kMeg, 100 * kMeg, 1000 * kMeg}) {
    const auto r = DeviationSampleSize(n, 500, 0.2, 0.01);
    ASSERT_TRUE(r.ok());
    EXPECT_GT(*r, 900000u) << n;
    EXPECT_LT(*r, 1400000u) << n;
  }
  // "For k = 100 and relative error f = 0.1, roughly 800K."
  for (std::uint64_t n : {10 * kMeg, 100 * kMeg, 1000 * kMeg}) {
    const auto r = DeviationSampleSize(n, 100, 0.1, 0.01);
    ASSERT_TRUE(r.ok());
    EXPECT_GT(*r, 700000u) << n;
    EXPECT_LT(*r, 1100000u) << n;
  }
}

TEST(DeviationSampleSizeTest, EssentiallyIndependentOfN) {
  // Growing n by 100x should grow r only logarithmically (< 1.3x here).
  const auto small = DeviationSampleSize(10 * kMeg, 500, 0.2, 0.01);
  const auto large = DeviationSampleSize(1000 * kMeg, 500, 0.2, 0.01);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_LT(static_cast<double>(*large) / static_cast<double>(*small), 1.3);
}

TEST(DeviationSampleSizeTest, LinearInK) {
  const auto k100 = DeviationSampleSize(10 * kMeg, 100, 0.1, 0.01);
  const auto k200 = DeviationSampleSize(10 * kMeg, 200, 0.1, 0.01);
  const auto k400 = DeviationSampleSize(10 * kMeg, 400, 0.1, 0.01);
  ASSERT_TRUE(k100.ok());
  EXPECT_NEAR(static_cast<double>(*k200) / static_cast<double>(*k100), 2.0,
              0.01);
  EXPECT_NEAR(static_cast<double>(*k400) / static_cast<double>(*k100), 4.0,
              0.01);
}

TEST(DeviationSampleSizeTest, InverseSquareInF) {
  const auto f2 = DeviationSampleSize(10 * kMeg, 100, 0.2, 0.01);
  const auto f1 = DeviationSampleSize(10 * kMeg, 100, 0.1, 0.01);
  ASSERT_TRUE(f1.ok());
  EXPECT_NEAR(static_cast<double>(*f1) / static_cast<double>(*f2), 4.0, 0.01);
}

TEST(DeviationSampleSizeTest, AbsoluteFormMatchesRelativeForm) {
  const std::uint64_t n = 10 * kMeg;
  const std::uint64_t k = 200;
  const double f = 0.25;
  const double delta = f * static_cast<double>(n) / static_cast<double>(k);
  const auto rel = DeviationSampleSize(n, k, f, 0.01);
  const auto abs = DeviationSampleSizeAbsolute(n, k, delta, 0.01);
  ASSERT_TRUE(rel.ok());
  ASSERT_TRUE(abs.ok());
  EXPECT_NEAR(static_cast<double>(*rel), static_cast<double>(*abs), 2.0);
}

TEST(DeviationSampleSizeTest, Validation) {
  EXPECT_FALSE(DeviationSampleSize(0, 10, 0.1, 0.01).ok());
  EXPECT_FALSE(DeviationSampleSize(10, 0, 0.1, 0.01).ok());
  EXPECT_FALSE(DeviationSampleSize(10, 10, 0.0, 0.01).ok());
  EXPECT_FALSE(DeviationSampleSize(10, 10, 1.5, 0.01).ok());
  EXPECT_FALSE(DeviationSampleSize(10, 10, 0.1, 0.0).ok());
  EXPECT_FALSE(DeviationSampleSize(10, 10, 0.1, 1.0).ok());
  EXPECT_FALSE(DeviationSampleSizeAbsolute(1000, 10, 0.0, 0.01).ok());
  EXPECT_FALSE(DeviationSampleSizeAbsolute(1000, 10, 200.0, 0.01).ok());
}

TEST(WithoutReplacementTest, NeverExceedsWithReplacementOrTableSize) {
  for (std::uint64_t n : {std::uint64_t{100000}, std::uint64_t{10000000}}) {
    for (std::uint64_t k : {std::uint64_t{50}, std::uint64_t{600}}) {
      const auto wr = DeviationSampleSize(n, k, 0.1, 0.01);
      const auto wor = DeviationSampleSizeWithoutReplacement(n, k, 0.1, 0.01);
      ASSERT_TRUE(wr.ok());
      ASSERT_TRUE(wor.ok());
      EXPECT_LE(*wor, *wr);
      EXPECT_LE(*wor, n);
    }
  }
}

TEST(WithoutReplacementTest, MatchesWithReplacementWhenSampleIsTiny) {
  // r << n: the finite-population correction is negligible.
  const std::uint64_t n = 1ULL << 40;
  const auto wr = DeviationSampleSize(n, 100, 0.2, 0.01);
  const auto wor = DeviationSampleSizeWithoutReplacement(n, 100, 0.2, 0.01);
  ASSERT_TRUE(wr.ok());
  ASSERT_TRUE(wor.ok());
  EXPECT_NEAR(static_cast<double>(*wor), static_cast<double>(*wr),
              static_cast<double>(*wr) * 1e-3);
}

TEST(WithoutReplacementTest, CapsAtTableSize) {
  // Tiny table, demanding target: the WR bound exceeds n, the WOR bound
  // saturates at a full scan.
  const auto wor = DeviationSampleSizeWithoutReplacement(1000, 100, 0.05, 0.01);
  ASSERT_TRUE(wor.ok());
  EXPECT_EQ(*wor, 1000u);
}

TEST(MaxBucketsTest, PaperExample3HistogramSize) {
  // "Sample at most 1Meg from n = 20Meg with f = 0.25: k should not exceed
  // 800." The formula gives ~700; the paper rounds generously.
  const auto k = MaxBucketsForSampleSize(20 * kMeg, 1 * kMeg, 0.25, 0.01);
  ASSERT_TRUE(k.ok());
  EXPECT_GT(*k, 600u);
  EXPECT_LE(*k, 800u);
}

TEST(MaxBucketsTest, TinySampleSupportsNoBuckets) {
  const auto k = MaxBucketsForSampleSize(kMeg, 10, 0.1, 0.01);
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(*k, 0u);
}

TEST(DeviationErrorTest, PaperExample3HistogramError) {
  // "Sample 800K from n = 25Meg with k = 200: f is bounded by 14%."
  const auto f = DeviationErrorForSampleSize(25 * kMeg, 200, 800000, 0.01);
  ASSERT_TRUE(f.ok());
  EXPECT_GT(*f, 0.12);
  EXPECT_LE(*f, 0.15);
}

TEST(DeviationErrorTest, RoundTripsWithSampleSize) {
  const std::uint64_t n = 5 * kMeg;
  const std::uint64_t k = 300;
  const double gamma = 0.05;
  const auto r = DeviationSampleSize(n, k, 0.2, gamma);
  ASSERT_TRUE(r.ok());
  const auto f = DeviationErrorForSampleSize(n, k, *r, gamma);
  ASSERT_TRUE(f.ok());
  EXPECT_NEAR(*f, 0.2, 1e-3);
}

TEST(FailureProbabilityTest, RoundTripsWithSampleSize) {
  const std::uint64_t n = 5 * kMeg;
  const std::uint64_t k = 300;
  const auto r = DeviationSampleSize(n, k, 0.2, 0.01);
  ASSERT_TRUE(r.ok());
  const auto gamma = DeviationFailureProbability(n, k, 0.2, *r);
  ASSERT_TRUE(gamma.ok());
  EXPECT_LE(*gamma, 0.0101);
  EXPECT_GT(*gamma, 0.005);
}

TEST(FailureProbabilityTest, ClampsToOne) {
  const auto gamma = DeviationFailureProbability(kMeg, 1000, 0.01, 10);
  ASSERT_TRUE(gamma.ok());
  EXPECT_EQ(*gamma, 1.0);
}

TEST(SeparationTest, NeedsMoreSamplesThanDeviation) {
  // Theorem 5's bound (k^2-ish) dominates Theorem 4's (k) for fixed f.
  const std::uint64_t n = kMeg;
  const std::uint64_t k = 100;
  const double delta = 0.2 * static_cast<double>(n) / static_cast<double>(k);
  const auto dev = DeviationSampleSizeAbsolute(n, k, delta, 0.01);
  const auto sep = SeparationSampleSize(n, k, delta, 0.01);
  ASSERT_TRUE(dev.ok());
  ASSERT_TRUE(sep.ok());
  EXPECT_GT(*sep, *dev);
}

TEST(SeparationTest, RoundTrip) {
  const std::uint64_t n = kMeg;
  const std::uint64_t k = 100;
  const double delta = 1500.0;
  const auto r = SeparationSampleSize(n, k, delta, 0.01);
  ASSERT_TRUE(r.ok());
  const auto back = SeparationErrorForSampleSize(n, k, *r, 0.01);
  ASSERT_TRUE(back.ok());
  EXPECT_NEAR(*back, delta, 1.0);
}

TEST(SeparationTest, Validation) {
  EXPECT_FALSE(SeparationSampleSize(1000, 10, 0.0, 0.01).ok());
  EXPECT_FALSE(SeparationSampleSize(1000, 10, 150.0, 0.01).ok());
}

TEST(CrossValidationTest, AcceptNeedsMoreThanDetect) {
  // Theorem 7: 16 k ln(k/gamma) vs 4 k ln(1/gamma).
  const auto detect = CrossValidationDetectSize(600, 0.1, 0.01);
  const auto accept = CrossValidationAcceptSize(600, 0.1, 0.01);
  ASSERT_TRUE(detect.ok());
  ASSERT_TRUE(accept.ok());
  EXPECT_GT(*accept, *detect);
}

TEST(CrossValidationTest, KnownValues) {
  // 4 * 100 * ln(100) / 0.01 with gamma = 0.01: ln(1/0.01) = ln(100).
  const auto detect = CrossValidationDetectSize(100, 0.1, 0.01);
  ASSERT_TRUE(detect.ok());
  EXPECT_NEAR(static_cast<double>(*detect),
              4.0 * 100.0 * std::log(100.0) / 0.01, 1.0);
}

TEST(SingleQueryTest, FormulaAndComparisonWithAllQueries) {
  // One bucket-sized query (s = n/k) to +-delta = f*n/k needs
  // 3 k ln(2/gamma)/f^2 samples; the all-queries guarantee needs
  // 4 k ln(2n/gamma)/f^2 — a ~(4/3)ln(2n/gamma)/ln(2/gamma) premium.
  // This is the Piatetsky-Shapiro & Connell single-query regime the paper
  // contrasts itself with (Section 1.1).
  const std::uint64_t n = 10000000;
  const std::uint64_t k = 100;
  const double f = 0.1;
  const double s = static_cast<double>(n) / static_cast<double>(k);
  const double delta = f * s;
  const auto single = SingleQuerySampleSize(n, s, delta, 0.01);
  const auto all = DeviationSampleSize(n, k, f, 0.01);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(all.ok());
  EXPECT_LT(*single, *all);
  const double premium =
      static_cast<double>(*all) / static_cast<double>(*single);
  EXPECT_NEAR(premium,
              (4.0 / 3.0) * std::log(2.0 * static_cast<double>(n) / 0.01) /
                  std::log(2.0 / 0.01),
              0.1);
  // Exact formula check.
  const double expected = 3.0 * s * static_cast<double>(n) *
                          std::log(2.0 / 0.01) / (delta * delta);
  EXPECT_NEAR(static_cast<double>(*single), expected, 2.0);
}

TEST(SingleQueryTest, Validation) {
  EXPECT_FALSE(SingleQuerySampleSize(0, 5.0, 10.0, 0.01).ok());
  EXPECT_FALSE(SingleQuerySampleSize(100, 0.0, 10.0, 0.01).ok());
  EXPECT_FALSE(SingleQuerySampleSize(100, 200.0, 10.0, 0.01).ok());
  EXPECT_FALSE(SingleQuerySampleSize(100, 5.0, 0.0, 0.01).ok());
  EXPECT_FALSE(SingleQuerySampleSize(100, 5.0, 200.0, 0.01).ok());
  EXPECT_FALSE(SingleQuerySampleSize(100, 5.0, 10.0, 0.0).ok());
}

TEST(GmpTheorem6Test, PaperExample4Numbers) {
  // Example 4 item 4: for k = 100 (c = 4) Theorem 6 guarantees f ~= 0.48.
  const auto bound = GmpTheorem6(1000 * kMeg, 100, 4.0);
  ASSERT_TRUE(bound.ok());
  EXPECT_NEAR(bound->f, 0.48, 0.01);
  // r = 4 k ln^2 k ~= 8482.
  EXPECT_NEAR(static_cast<double>(bound->r), 8482.0, 5.0);
  EXPECT_EQ(bound->min_n_theorem, 100ull * 100 * 100);
}

TEST(GmpTheorem6Test, CannotReachSmallF) {
  // Example 4 item 4: f < 0.35 needs k > 100,000 — for any practical k the
  // guaranteed f stays above 0.35.
  for (std::uint64_t k : {100u, 1000u, 10000u, 100000u}) {
    const auto bound = GmpTheorem6(1ULL << 50, k, 4.0);
    ASSERT_TRUE(bound.ok());
    EXPECT_GT(bound->f, 0.33) << k;
  }
}

TEST(GmpTheorem6Test, OursBeatsTheirsOnSampleSize) {
  // Example 4 item 5 (in spirit): at the same failure probability, our
  // Theorem 4 sample size for a *stronger* error metric and smaller f is
  // far below Theorem 6's requirement.
  const std::uint64_t n = 1ULL << 40;
  const std::uint64_t k = 500;
  const auto gmp = GmpTheorem6(n, k, 4.0);
  ASSERT_TRUE(gmp.ok());
  const auto ours = DeviationSampleSize(n, k, /*f=*/0.2, gmp->gamma);
  ASSERT_TRUE(ours.ok());
  // Our f=0.2 beats their f~=0.43, and the paper contrasts our 4Meg with
  // their 77Meg for that setting; at minimum ours must guarantee a smaller
  // f than theirs can ever reach.
  EXPECT_LT(0.2, gmp->f);
}

TEST(GmpTheorem6Test, Validation) {
  EXPECT_FALSE(GmpTheorem6(1000, 2, 4.0).ok());
  EXPECT_FALSE(GmpTheorem6(1000, 10, 3.0).ok());
}

TEST(Theorem8Test, HaasComparisonNumber) {
  // Section 6.1: r = 0.2 n, gamma = 0.5 gives a worst-case ratio error of
  // at least 1.86, matching Haas et al's observed max error 2.86 regime.
  const std::uint64_t n = 10 * kMeg;
  const auto bound = DistinctValueErrorLowerBound(n, n / 5, 0.5);
  ASSERT_TRUE(bound.ok());
  EXPECT_NEAR(*bound, 1.86, 0.01);
}

TEST(Theorem8Test, ShrinksWithSampleSize) {
  const std::uint64_t n = kMeg;
  const auto small = DistinctValueErrorLowerBound(n, n / 100, 0.5);
  const auto large = DistinctValueErrorLowerBound(n, n / 2, 0.5);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(*small, *large);
}

TEST(Theorem8Test, RequiresGammaAboveExpMinusR) {
  EXPECT_FALSE(DistinctValueErrorLowerBound(100, 1, 0.2).ok());
  EXPECT_TRUE(DistinctValueErrorLowerBound(100, 10, 0.2).ok());
}

// Property sweep: sample size must be monotone in each parameter.
class BoundMonotonicityTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(BoundMonotonicityTest, MonotoneInAllParameters) {
  const auto [k, f] = GetParam();
  const std::uint64_t n = 10 * kMeg;
  const auto base = DeviationSampleSize(n, k, f, 0.01);
  ASSERT_TRUE(base.ok());
  EXPECT_LE(*base, *DeviationSampleSize(n * 10, k, f, 0.01));
  EXPECT_LT(*base, *DeviationSampleSize(n, k * 2, f, 0.01));
  EXPECT_LT(*base, *DeviationSampleSize(n, k, f / 2, 0.01));
  EXPECT_LT(*base, *DeviationSampleSize(n, k, f, 0.001));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BoundMonotonicityTest,
    ::testing::Combine(::testing::Values(std::uint64_t{10}, std::uint64_t{100},
                                         std::uint64_t{600}),
                       ::testing::Values(0.05, 0.1, 0.25, 0.5)));

}  // namespace
}  // namespace equihist
