#include "sampling/reservoir.h"

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/math.h"
#include "common/rng.h"

namespace equihist {
namespace {

std::vector<Value> Iota(std::uint64_t n) {
  std::vector<Value> values(n);
  for (std::uint64_t i = 0; i < n; ++i) values[i] = static_cast<Value>(i);
  return values;
}

BackingReservoir Make(std::uint64_t capacity, std::uint64_t seed) {
  auto reservoir = BackingReservoir::Create(capacity, seed);
  EXPECT_TRUE(reservoir.ok());
  return std::move(reservoir).value();
}

// -- Boundaries --------------------------------------------------------------

TEST(BackingReservoirTest, RejectsZeroCapacity) {
  EXPECT_FALSE(BackingReservoir::Create(0, 1).ok());
}

TEST(BackingReservoirTest, EmptyReservoirBaseline) {
  BackingReservoir reservoir = Make(8, 1);
  EXPECT_EQ(reservoir.size(), 0u);
  EXPECT_EQ(reservoir.population(), 0u);
  EXPECT_EQ(reservoir.ops_since_seed(), 0u);
  // No population wants nothing: a reservoir with nothing to hold is full.
  EXPECT_DOUBLE_EQ(reservoir.fill_fraction(), 1.0);
  // A delete against an empty population is pure drift evidence.
  EXPECT_FALSE(reservoir.Delete(42));
  EXPECT_EQ(reservoir.delete_misses(), 1u);
  EXPECT_EQ(reservoir.population(), 0u);
}

TEST(BackingReservoirTest, OneElementLifecycle) {
  BackingReservoir reservoir = Make(4, 7);
  reservoir.Add(11);
  EXPECT_EQ(reservoir.size(), 1u);
  EXPECT_EQ(reservoir.population(), 1u);
  EXPECT_DOUBLE_EQ(reservoir.fill_fraction(), 1.0);
  EXPECT_TRUE(reservoir.Delete(11));
  EXPECT_EQ(reservoir.size(), 0u);
  EXPECT_EQ(reservoir.population(), 0u);
  EXPECT_EQ(reservoir.delete_hits(), 1u);
}

TEST(BackingReservoirTest, ExactCapacityHoldsEverything) {
  BackingReservoir reservoir = Make(16, 3);
  for (Value v = 0; v < 16; ++v) reservoir.Add(v);
  EXPECT_EQ(reservoir.size(), 16u);
  EXPECT_EQ(reservoir.population(), 16u);
  // Under capacity the reservoir IS the population, in arrival order.
  EXPECT_EQ(reservoir.SortedSample(), Iota(16));
}

TEST(BackingReservoirTest, SizeNeverExceedsCapacityOrPopulation) {
  BackingReservoir reservoir = Make(8, 5);
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    if (rng.NextBounded(3) != 0) {
      reservoir.Add(static_cast<Value>(rng.NextBounded(100)));
    } else {
      reservoir.Delete(static_cast<Value>(rng.NextBounded(100)));
    }
    ASSERT_LE(reservoir.size(), reservoir.capacity());
    ASSERT_LE(reservoir.size(), reservoir.population());
  }
}

TEST(BackingReservoirTest, SeedFromSampleRejectsSampleLargerThanPopulation) {
  BackingReservoir reservoir = Make(8, 1);
  const std::vector<Value> sample = Iota(10);
  EXPECT_FALSE(reservoir.SeedFromSample(sample, 5).ok());
}

TEST(BackingReservoirTest, SeedFromSampleDownsamplesToCapacity) {
  BackingReservoir reservoir = Make(8, 1);
  const std::vector<Value> sample = Iota(100);
  ASSERT_TRUE(reservoir.SeedFromSample(sample, 1000).ok());
  EXPECT_EQ(reservoir.size(), 8u);
  EXPECT_EQ(reservoir.population(), 1000u);
  EXPECT_EQ(reservoir.ops_since_seed(), 0u);
  for (Value v : reservoir.sample()) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

// -- Uniformity --------------------------------------------------------------

TEST(BackingReservoirTest, InsertStreamUniformityChiSquare) {
  // Stream 40 distinct values through a 10-slot reservoir: each should be
  // retained with p = 10/40 = 1/4 (Algorithm R's invariant).
  constexpr int kTrials = 4000;
  std::map<Value, std::uint64_t> hits;
  for (int t = 0; t < kTrials; ++t) {
    BackingReservoir reservoir = Make(10, static_cast<std::uint64_t>(t));
    for (Value v = 0; v < 40; ++v) reservoir.Add(v);
    for (Value v : reservoir.sample()) ++hits[v];
  }
  std::vector<std::uint64_t> observed;
  std::vector<double> expected;
  for (Value v = 0; v < 40; ++v) {
    observed.push_back(hits[v]);
    expected.push_back(kTrials * 10.0 / 40.0);
  }
  EXPECT_LT(ChiSquareStatistic(observed, expected),
            ChiSquareCriticalValue(39.0, 0.001));
}

TEST(BackingReservoirTest, InsertDeleteStreamUniformityChiSquare) {
  // Values flow iid-uniform over a 20-value domain through a 2:1 mix of
  // inserts and deletes. The live multiset stays uniform in expectation,
  // so an unbiased reservoir's aggregated contents must be uniform too —
  // counted-replacement deletes may not skew what remains. (Deletes are
  // probabilistic, so individual deleted *rows* can linger; the
  // distributional claim is the one the scheme actually makes.)
  constexpr int kTrials = 1500;
  constexpr Value kDomain = 20;
  std::map<Value, std::uint64_t> hits;
  double total = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    BackingReservoir reservoir = Make(16, static_cast<std::uint64_t>(t));
    Rng rng(1000 + t);
    for (int i = 0; i < 300; ++i) {
      const auto v = static_cast<Value>(rng.NextBounded(kDomain));
      if (i % 3 == 2) {
        reservoir.Delete(v);
      } else {
        reservoir.Add(v);
      }
    }
    for (Value v : reservoir.sample()) {
      ++hits[v];
      total += 1.0;
    }
  }
  std::vector<std::uint64_t> observed;
  std::vector<double> expected;
  for (Value v = 0; v < kDomain; ++v) {
    observed.push_back(hits[v]);
    expected.push_back(total / kDomain);
  }
  EXPECT_LT(ChiSquareStatistic(observed, expected),
            ChiSquareCriticalValue(19.0, 0.001));
}

TEST(BackingReservoirTest, DeleteHitRateMatchesCountedReplacement) {
  // With size/population = 100/10000, each delete should vacate a slot
  // about 1% of the time.
  std::uint64_t hits = 0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    BackingReservoir reservoir = Make(100, static_cast<std::uint64_t>(t));
    ASSERT_TRUE(reservoir.SeedFromSample(Iota(100), 10000).ok());
    for (int d = 0; d < 50; ++d) {
      if (reservoir.Delete(static_cast<Value>(d))) ++hits;
    }
  }
  // 200 * 50 = 10000 deletes at ~1%: expect ~100 vacated slots. A loose
  // 4-sigma band keeps the test deterministic-safe across seed choices.
  EXPECT_GT(hits, 60u);
  EXPECT_LT(hits, 150u);
}

// -- Determinism -------------------------------------------------------------

TEST(BackingReservoirTest, StateIsAPureFunctionOfSeedAndOpSequence) {
  const auto run = [](std::uint64_t seed) {
    BackingReservoir reservoir = Make(16, seed);
    EXPECT_TRUE(reservoir.SeedFromSample(Iota(16), 500).ok());
    Rng ops(123);
    for (int i = 0; i < 500; ++i) {
      if (ops.NextBounded(2) == 0) {
        reservoir.Add(static_cast<Value>(ops.NextBounded(64)));
      } else {
        reservoir.Delete(static_cast<Value>(ops.NextBounded(64)));
      }
    }
    return reservoir;
  };
  const BackingReservoir a = run(42);
  const BackingReservoir b = run(42);
  EXPECT_EQ(a.sample(), b.sample());  // order included
  EXPECT_EQ(a.population(), b.population());
  EXPECT_EQ(a.delete_hits(), b.delete_hits());
  EXPECT_EQ(a.delete_misses(), b.delete_misses());
  // A different seed diverges (the streams are actually seed-addressed).
  const BackingReservoir c = run(43);
  EXPECT_NE(a.sample(), c.sample());
}

TEST(BackingReservoirTest, DeterministicAcrossThreads) {
  // The op-stream addressing must not depend on which thread runs the
  // sequence: replay the same ops on N threads and require bit-equality.
  const auto replay = []() {
    BackingReservoir reservoir = Make(32, 7);
    for (Value v = 0; v < 200; ++v) reservoir.Add(v % 50);
    for (Value v = 0; v < 60; ++v) reservoir.Delete(v % 50);
    return reservoir.sample();
  };
  const std::vector<Value> reference = replay();
  std::vector<std::vector<Value>> results(4);
  std::vector<std::thread> threads;
  threads.reserve(results.size());
  for (auto& out : results) {
    threads.emplace_back([&out, &replay]() { out = replay(); });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& sample : results) EXPECT_EQ(sample, reference);
}

// -- Serialization -----------------------------------------------------------

TEST(BackingReservoirTest, SerializationRoundTripResumesIdentically) {
  BackingReservoir original = Make(16, 9);
  ASSERT_TRUE(original.SeedFromSample(Iota(16), 400).ok());
  for (Value v = 0; v < 100; ++v) original.Add(v);
  for (Value v = 0; v < 30; ++v) original.Delete(v);

  std::vector<std::uint8_t> bytes;
  original.SerializeTo(&bytes);
  std::size_t consumed = 0;
  auto restored = BackingReservoir::Deserialize(bytes, &consumed);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(restored->sample(), original.sample());
  EXPECT_EQ(restored->population(), original.population());
  EXPECT_EQ(restored->ops_since_seed(), original.ops_since_seed());

  // Resume both under the same op tail: identical futures, not just
  // identical presents (the lifetime op counter must round-trip too).
  for (Value v = 0; v < 50; ++v) {
    original.Add(v + 1000);
    restored->Add(v + 1000);
  }
  EXPECT_EQ(restored->sample(), original.sample());
}

TEST(BackingReservoirTest, DeserializeRejectsCorruptPayloads) {
  BackingReservoir original = Make(8, 2);
  ASSERT_TRUE(original.SeedFromSample(Iota(8), 100).ok());
  std::vector<std::uint8_t> bytes;
  original.SerializeTo(&bytes);
  // Truncations at every boundary must fail loudly, never crash.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    auto truncated = BackingReservoir::Deserialize(
        std::span<const std::uint8_t>(bytes.data(), len));
    EXPECT_FALSE(truncated.ok()) << "truncated at " << len;
  }
}

}  // namespace
}  // namespace equihist
