// optimizer_statistics: the full database-side statistics lifecycle —
// auto-create per-column statistics by sampling, persist them within the
// one-page budget (as SQL Server does), answer optimizer questions (range,
// equality, duplicate elimination, join size), and auto-refresh after DML.
//
//   $ ./optimizer_statistics [n]

#include <cstdio>
#include <cstdlib>

#include "equihist/equihist.h"

namespace {

using namespace equihist;

Result<Table> MakeOrdersTable(std::uint64_t n, std::uint64_t seed) {
  // "orders.customer_id": Zipf-skewed — a few big customers.
  EQUIHIST_ASSIGN_OR_RETURN(
      const FrequencyVector freq,
      MakeZipf({.n = n, .domain_size = n / 50, .skew = 1.4, .seed = seed}));
  return Table::Create(freq, PageConfig{8192, 64},
                       {.kind = LayoutKind::kRandom, .seed = seed});
}

Result<Table> MakeCustomersTable(std::uint64_t n, std::uint64_t seed) {
  // "customers.customer_id": nearly unique key with a few duplicates.
  EQUIHIST_ASSIGN_OR_RETURN(const FrequencyVector freq,
                            MakeUniformDup(n, n / 2));
  return Table::Create(freq, PageConfig{8192, 64},
                       {.kind = LayoutKind::kRandom, .seed = seed});
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000000;

  auto orders = MakeOrdersTable(n, 11);
  auto customers = MakeCustomersTable(n / 10, 13);
  if (!orders.ok() || !customers.ok()) {
    std::fprintf(stderr, "table construction failed\n");
    return 1;
  }
  std::printf("orders: %s rows, customers: %s rows\n\n",
              FormatWithThousands(orders->tuple_count()).c_str(),
              FormatWithThousands(customers->tuple_count()).c_str());

  // 1. Auto-create statistics by sampling.
  StatisticsManager manager({.buckets = 200, .f = 0.1});
  const auto orders_stats = manager.GetOrBuild("orders.customer_id", *orders);
  const auto customers_stats =
      manager.GetOrBuild("customers.customer_id", *customers);
  if (!orders_stats.ok() || !customers_stats.ok()) {
    std::fprintf(stderr, "statistics build failed\n");
    return 1;
  }
  std::printf("auto-created statistics (by sampling):\n  %s\n  %s\n",
              (*orders_stats)->ToString().c_str(),
              (*customers_stats)->ToString().c_str());
  std::printf("  total build I/O: %s pages (vs %s pages for full scans)\n\n",
              FormatWithThousands(manager.total_build_cost().pages_read).c_str(),
              FormatWithThousands(orders->page_count() +
                                  customers->page_count())
                  .c_str());

  // 2. Persist within the one-page budget.
  std::vector<std::uint8_t> page;
  SerializeColumnStatistics(**orders_stats, &page);
  std::printf("persistence: orders statistics serialize to %s bytes "
              "(one 8KB page: %s)\n",
              FormatWithThousands(page.size()).c_str(),
              page.size() <= 8192 ? "fits" : "DOES NOT FIT");
  const auto restored = DeserializeColumnStatistics(page);
  std::printf("  round-trip: %s\n\n",
              restored.ok() ? "ok" : restored.status().ToString().c_str());

  // 3. Answer optimizer questions.
  const ColumnStatistics& o = **orders_stats;
  const Value median = o.histogram().separators()[o.histogram().separators().size() / 2];
  std::printf("optimizer estimates on orders.customer_id:\n");
  std::printf("  range (0, %lld]         ~ %s rows\n",
              static_cast<long long>(median),
              FormatCount(o.EstimateRangeCount({0, median})).c_str());
  if (!o.heavy_hitters.empty()) {
    const auto& top = o.heavy_hitters.front();
    std::printf("  equality = %lld (hot)   ~ %s rows (pinned heavy hitter)\n",
                static_cast<long long>(top.value),
                FormatCount(static_cast<double>(top.count)).c_str());
  }
  std::printf("  equality = %lld (cold)  ~ %.1f rows (density fallback)\n",
              static_cast<long long>(o.histogram().upper_fence()),
              o.EstimateEqualityCount(o.histogram().upper_fence()));
  std::printf("  DISTINCT reduction      ~ %.2f%% of rows survive\n",
              100.0 * o.EstimateDistinctFraction());

  const auto classic = SystemRJoinEstimate(o, **customers_stats);
  const auto refined = HistogramJoinEstimate(o, **customers_stats);
  if (classic.ok() && refined.ok()) {
    std::printf("  orders JOIN customers   ~ %s rows (System R) / %s rows "
                "(histogram-refined)\n\n",
                FormatCount(*classic).c_str(), FormatCount(*refined).c_str());
  }

  // 4. DML happens; statistics go stale and auto-refresh.
  manager.RecordModifications("orders.customer_id",
                              orders->tuple_count() / 3);
  std::printf("after modifying 33%% of orders: stale=%s\n",
              manager.IsStale("orders.customer_id") ? "yes" : "no");
  const auto fresh = manager.EnsureFresh("orders.customer_id", *orders);
  if (fresh.ok()) {
    std::printf("auto-refresh rebuilt statistics (%llu builds total): %s\n",
                static_cast<unsigned long long>(manager.rebuild_count()),
                (*fresh)->ToString().c_str());
  }
  return 0;
}
