// sample_size_advisor: the Example 3 calculator. Given any three of
// (n, k, f, gamma, r), solve for the missing quantity using the paper's
// trade-off formulas (Theorem 4 / Corollary 1), plus the comparison
// against Gibbons-Matias-Poosala (Theorem 6) and the distinct-value
// estimation floor (Theorem 8).
//
//   $ ./sample_size_advisor                      # reproduce Example 3
//   $ ./sample_size_advisor r  <n> <k> <f> <g>   # solve sample size
//   $ ./sample_size_advisor f  <n> <k> <r> <g>   # solve error
//   $ ./sample_size_advisor k  <n> <r> <f> <g>   # solve histogram size
//   $ ./sample_size_advisor g  <n> <k> <f> <r>   # solve failure prob.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "equihist/equihist.h"

namespace {

using namespace equihist;

void PrintExample3() {
  std::printf("Reproducing the paper's Example 3 (gamma = 0.01):\n\n");
  const double gamma = 0.01;

  std::printf("Determining sample size:\n");
  for (const auto& [k, f] : {std::pair<std::uint64_t, double>{500, 0.2},
                             std::pair<std::uint64_t, double>{100, 0.1}}) {
    std::printf("  k=%-4llu f=%.1f:", static_cast<unsigned long long>(k), f);
    for (std::uint64_t n : {std::uint64_t{20000000}, std::uint64_t{100000000},
                            std::uint64_t{1000000000}}) {
      const auto r = DeviationSampleSize(n, k, f, gamma);
      std::printf("  n=%-5s -> r=%s", FormatCount(static_cast<double>(n)).c_str(),
                  FormatCount(static_cast<double>(*r)).c_str());
    }
    std::printf("\n");
  }

  std::printf("\nDetermining histogram size:\n");
  const auto kmax = MaxBucketsForSampleSize(20000000, 1000000, 0.25, gamma);
  std::printf("  n=20M, r=1M, f=0.25 -> k <= %llu (paper: ~800)\n",
              static_cast<unsigned long long>(*kmax));

  std::printf("\nDetermining histogram error:\n");
  const auto f = DeviationErrorForSampleSize(25000000, 200, 800000, gamma);
  std::printf("  n=25M, r=800K, k=200 -> f <= %.1f%% (paper: 14%%)\n",
              *f * 100.0);

  std::printf("\nComparison with Gibbons-Matias-Poosala Theorem 6 "
              "(Example 4):\n");
  for (std::uint64_t k : {std::uint64_t{100}, std::uint64_t{500},
                          std::uint64_t{1000}}) {
    const auto gmp = GmpTheorem6(1ULL << 40, k, 4.0);
    const auto ours =
        DeviationSampleSize(1ULL << 40, k, /*f=*/0.1, gmp->gamma);
    std::printf("  k=%-5llu  GMP: f=%.2f r=%-8s (needs n >= %s)   "
                "ours: f=0.10 r=%s\n",
                static_cast<unsigned long long>(k), gmp->f,
                FormatCount(static_cast<double>(gmp->r)).c_str(),
                FormatCount(static_cast<double>(gmp->min_n_theorem)).c_str(),
                FormatCount(static_cast<double>(*ours)).c_str());
  }

  std::printf("\nDistinct-value estimation floor (Theorem 8, gamma=0.5):\n");
  for (double fraction : {0.01, 0.05, 0.2, 0.5}) {
    const std::uint64_t n = 10000000;
    const auto bound = DistinctValueErrorLowerBound(
        n, static_cast<std::uint64_t>(fraction * static_cast<double>(n)), 0.5);
    std::printf("  sample %4.0f%% of n -> no estimator beats ratio error "
                "%.2f\n",
                fraction * 100.0, *bound);
  }
}

template <typename T>
void PrintOrFail(const Result<T>& result, const char* label) {
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  if constexpr (std::is_integral_v<T>) {
    std::printf("%s = %s\n", label,
                FormatWithThousands(static_cast<std::uint64_t>(*result)).c_str());
  } else {
    std::printf("%s = %.6f\n", label, static_cast<double>(*result));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintExample3();
    return 0;
  }
  if (argc != 6) {
    std::fprintf(stderr,
                 "usage: %s [r|f|k|g] <four remaining parameters>\n"
                 "  r <n> <k> <f> <gamma>\n"
                 "  f <n> <k> <r> <gamma>\n"
                 "  k <n> <r> <f> <gamma>\n"
                 "  g <n> <k> <f> <r>\n",
                 argv[0]);
    return 2;
  }
  const char solve = argv[1][0];
  const auto u = [&](int i) { return std::strtoull(argv[i], nullptr, 10); };
  const auto d = [&](int i) { return std::strtod(argv[i], nullptr); };
  switch (solve) {
    case 'r':
      PrintOrFail(DeviationSampleSize(u(2), u(3), d(4), d(5)),
                  "sample size r");
      break;
    case 'f':
      PrintOrFail(DeviationErrorForSampleSize(u(2), u(3), u(4), d(5)),
                  "relative max error f");
      break;
    case 'k':
      PrintOrFail(MaxBucketsForSampleSize(u(2), u(3), d(4), d(5)),
                  "max supportable buckets k");
      break;
    case 'g':
      PrintOrFail(DeviationFailureProbability(u(2), u(3), d(4), u(5)),
                  "failure probability gamma");
      break;
    default:
      std::fprintf(stderr, "unknown solve target '%c'\n", solve);
      return 2;
  }
  return 0;
}
