// analyze_tool: an ANALYZE / UPDATE STATISTICS-style statistics collector —
// the scenario the paper prototyped inside Microsoft SQL Server 7.0.
//
//   $ ./analyze_tool [n] [skew] [layout: random|sorted|clustered] [k] [f]
//
// Builds a paged table with the requested distribution and on-disk layout,
// runs the adaptive CVB algorithm against it, and prints what a database
// would persist: histogram steps, density, distinct-value estimate — plus
// the I/O bill and the per-iteration cross-validation trace.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "equihist/equihist.h"

namespace {

equihist::LayoutSpec ParseLayout(const char* name) {
  using equihist::LayoutKind;
  equihist::LayoutSpec spec;
  if (std::strcmp(name, "sorted") == 0) {
    spec.kind = LayoutKind::kSorted;
  } else if (std::strcmp(name, "clustered") == 0) {
    spec.kind = LayoutKind::kPartiallyClustered;
    spec.clustered_fraction = 0.2;
  } else {
    spec.kind = LayoutKind::kRandom;
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace equihist;

  const std::uint64_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000000;
  const double skew = argc > 2 ? std::strtod(argv[2], nullptr) : 2.0;
  const LayoutSpec layout = ParseLayout(argc > 3 ? argv[3] : "random");
  const std::uint64_t k = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 200;
  const double f = argc > 5 ? std::strtod(argv[5], nullptr) : 0.1;

  std::printf("ANALYZE: n=%s  Z=%.1f  layout=%.*s  k=%llu  f=%.2f\n\n",
              FormatWithThousands(n).c_str(), skew,
              static_cast<int>(LayoutKindToString(layout.kind).size()),
              LayoutKindToString(layout.kind).data(),
              static_cast<unsigned long long>(k), f);

  const auto freq = MakeZipf({.n = n, .domain_size = n / 100, .skew = skew});
  if (!freq.ok()) {
    std::fprintf(stderr, "%s\n", freq.status().ToString().c_str());
    return 1;
  }
  const PageConfig page{8192, 64};
  Timer build_timer;
  auto table = Table::Create(*freq, page, layout);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  std::printf("table: %s pages of %u tuples (built in %.0f ms)\n\n",
              FormatWithThousands(table->page_count()).c_str(),
              table->tuples_per_page(), build_timer.ElapsedMillis());

  CvbOptions options;
  options.k = k;
  options.f = f;
  Timer cvb_timer;
  const auto result = RunCvb(*table, options);
  if (!result.ok()) {
    std::fprintf(stderr, "CVB failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const double ms = cvb_timer.ElapsedMillis();

  std::printf("cross-validation trace:\n");
  std::printf("  %4s %12s %14s %14s %10s\n", "iter", "fresh blocks",
              "fresh tuples", "accum tuples", "error");
  for (const auto& entry : result->log) {
    std::printf("  %4llu %12llu %14llu %14llu %9.4f%s\n",
                static_cast<unsigned long long>(entry.iteration),
                static_cast<unsigned long long>(entry.fresh_blocks),
                static_cast<unsigned long long>(entry.fresh_tuples),
                static_cast<unsigned long long>(entry.accumulated_tuples),
                entry.validation_error, entry.passed ? "  <- pass" : "");
  }

  std::printf("\noutcome: %s after %llu iterations (%.0f ms)\n",
              result->converged       ? "converged"
              : result->exhausted_table ? "table exhausted (exact histogram)"
                                        : "iteration cap hit",
              static_cast<unsigned long long>(result->iterations), ms);
  std::printf("  blocks sampled : %s of %s (%.2f%%)\n",
              FormatWithThousands(result->blocks_sampled).c_str(),
              FormatWithThousands(table->page_count()).c_str(),
              100.0 * static_cast<double>(result->blocks_sampled) /
                  static_cast<double>(table->page_count()));
  std::printf("  tuples sampled : %s (%.2f%% of the table)\n",
              FormatWithThousands(result->tuples_sampled).c_str(),
              100.0 * result->sampling_fraction);

  // What the server would persist.
  std::printf("\npersisted statistics:\n");
  std::printf("  histogram      : %llu steps (showing 6)\n%s",
              static_cast<unsigned long long>(k),
              result->histogram.ToString(6).c_str());
  std::printf("  density        : %.6f\n", result->density_estimate);
  const auto profile_estimate = [&]() -> double {
    // Re-derive the paper's distinct estimate from the sample statistics
    // CVB kept: distinct-in-sample feeds the estimator's tail term.
    return static_cast<double>(result->sample_distinct);
  }();
  std::printf("  distinct seen  : %s in sample\n",
              FormatWithThousands(
                  static_cast<std::uint64_t>(profile_estimate))
                  .c_str());

  // Ground-truth comparison (a real server cannot afford this; we can).
  const ValueSet truth = ValueSet::FromFrequencies(*freq);
  const auto claimed = ComputeClaimedErrors(result->histogram, truth);
  if (claimed.ok()) {
    std::printf("\nground truth check: claimed-count f_max=%.4f (target "
                "%.2f), fractional error=%.4f,\n"
                "  true density=%.6f, true distinct=%s\n",
                claimed->f_max, f,
                FractionalErrorVsPopulation(result->histogram, truth),
                ComputeDensity(truth.sorted_values()),
                FormatWithThousands(truth.DistinctCount()).c_str());
  }
  return 0;
}
