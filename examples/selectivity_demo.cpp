// selectivity_demo: why a query optimizer should insist on the max error
// metric (Sections 2 and Theorems 1/3, live).
//
//   $ ./selectivity_demo [n] [k]
//
// Builds three histograms over the same skewed column — the perfect one, a
// sample-based one with small max error, and an adversarial one that has
// *small average error but one terrible bucket* — then runs the same range
// workload through all three and compares estimation errors.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "equihist/equihist.h"

namespace {

using namespace equihist;

// Builds an adversarial histogram: start from the perfect separators, then
// collapse one interior separator so a single bucket doubles. Average error
// stays ~2n/k^2-small while max error hits ~n/k.
Histogram MakeAdversarial(const Histogram& perfect) {
  std::vector<Value> separators = perfect.separators();
  const std::size_t mid = separators.size() / 2;
  separators[mid] = separators[mid + 1];
  Histogram skewed =
      Histogram::Create(separators, perfect.counts(), perfect.lower_fence(),
                        perfect.upper_fence())
          .value();
  // Claim the ideal n/k in every bucket, as an optimizer would.
  return skewed;
}

void Report(const char* name, const Histogram& histogram,
            const std::vector<RangeQuery>& queries, const ValueSet& truth) {
  const auto errors = ComputeHistogramErrors(histogram, truth);
  const auto report = EvaluateRangeWorkload(histogram, queries, truth);
  if (!errors.ok() || !report.ok()) {
    std::fprintf(stderr, "evaluation failed for %s\n", name);
    return;
  }
  std::printf("%-22s f_avg=%6.4f f_var=%6.4f f_max=%6.4f | "
              "range err: mean=%8.1f max=%8.1f (rel max=%5.2f)\n",
              name, errors->f_avg, errors->f_var, errors->f_max,
              report->mean_absolute_error, report->max_absolute_error,
              report->max_relative_error);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000000;
  const std::uint64_t k = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100;

  std::printf("selectivity demo: n=%s, k=%llu\n",
              FormatWithThousands(n).c_str(),
              static_cast<unsigned long long>(k));
  std::printf("Theorem 1.1 floor (any histogram): alpha >= 2n/k = %.0f\n\n",
              PerfectHistogramAbsoluteErrorBound(n, k));

  // Duplicate-free data: the setting of Theorems 1 and 3 (Section 5 covers
  // duplicates separately; see analyze_tool and the FAM bench for those).
  const auto freq = MakeAllDistinct(n);
  if (!freq.ok()) {
    std::fprintf(stderr, "%s\n", freq.status().ToString().c_str());
    return 1;
  }
  const ValueSet data = ValueSet::FromFrequencies(*freq);

  const auto perfect = BuildPerfectHistogram(data, k);
  if (!perfect.ok()) {
    std::fprintf(stderr, "%s\n", perfect.status().ToString().c_str());
    return 1;
  }

  // Sample-based histogram at f = 0.1.
  const auto r = DeviationSampleSize(n, k, 0.1, 0.01);
  Rng rng(7);
  std::vector<Value> sample =
      SampleRowsWithReplacement(data.sorted_values(), *r, rng);
  std::sort(sample.begin(), sample.end());
  const auto sampled = BuildHistogramFromSample(sample, k, n);
  if (!sampled.ok()) {
    std::fprintf(stderr, "%s\n", sampled.status().ToString().c_str());
    return 1;
  }

  const Histogram adversarial = MakeAdversarial(*perfect);

  // Workload: uniform ranges plus narrow fixed-selectivity ranges (the
  // t*n/k regime of Example 1).
  RangeWorkloadGenerator gen(&data, 13);
  std::vector<RangeQuery> queries = gen.UniformRanges(400);
  const auto narrow = gen.FixedSelectivityRanges(400, 10 * n / k);
  if (narrow.ok()) {
    queries.insert(queries.end(), narrow->begin(), narrow->end());
  }

  std::printf("%zu range queries over duplicate-free data:\n\n", queries.size());
  Report("perfect histogram", *perfect, queries, data);
  Report("sampled (f<=0.1)", *sampled, queries, data);
  Report("adversarial avg-good", adversarial, queries, data);

  std::printf(
      "\nreading: the adversarial histogram matches the others on the\n"
      "average/variance metrics but its one bad bucket leaks straight into\n"
      "worst-case range estimates — exactly the gap Theorems 1 and 3 bound.\n");
  return 0;
}
