// Quickstart: build an approximate equi-height histogram from a random
// sample and see how close it is to the perfect histogram.
//
//   $ ./quickstart [n] [k] [f]
//
// Walks the minimal paper pipeline: Corollary 1 tells us how much to
// sample, we sample that much, build the histogram, and measure the
// achieved max error against the ground truth.

#include <cstdio>
#include <cstdlib>

#include "equihist/equihist.h"

int main(int argc, char** argv) {
  using namespace equihist;

  const std::uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                   : 1000000;
  const std::uint64_t k = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100;
  const double f = argc > 3 ? std::strtod(argv[3], nullptr) : 0.1;
  const double gamma = 0.01;

  std::printf("EquiHist quickstart: n=%s, k=%llu, target f=%.2f, gamma=%.2f\n\n",
              FormatWithThousands(n).c_str(),
              static_cast<unsigned long long>(k), f, gamma);

  // 1. Generate a Zipf(1) column and its ground truth.
  const auto freq = MakeZipf({.n = n, .domain_size = n / 10, .skew = 1.0});
  if (!freq.ok()) {
    std::fprintf(stderr, "data generation failed: %s\n",
                 freq.status().ToString().c_str());
    return 1;
  }
  const ValueSet data = ValueSet::FromFrequencies(*freq);

  // 2. Ask Corollary 1 how much to sample.
  const auto r = DeviationSampleSize(n, k, f, gamma);
  if (!r.ok()) {
    std::fprintf(stderr, "bound computation failed: %s\n",
                 r.status().ToString().c_str());
    return 1;
  }
  std::printf("Corollary 1 sample size: r = %s tuples (%.2f%% of the table)\n",
              FormatWithThousands(*r).c_str(),
              100.0 * static_cast<double>(*r) / static_cast<double>(n));

  // 3. Sample and build.
  Timer timer;
  Rng rng(42);
  std::vector<Value> sample =
      SampleRowsWithReplacement(data.sorted_values(), *r, rng);
  std::sort(sample.begin(), sample.end());
  const auto approx = BuildHistogramFromSample(sample, k, n);
  if (!approx.ok()) {
    std::fprintf(stderr, "histogram build failed: %s\n",
                 approx.status().ToString().c_str());
    return 1;
  }
  std::printf("sampled + built in %.1f ms\n\n", timer.ElapsedMillis());

  // 4. Measure against the truth. The claimed-count error is what
  // Theorem 4 controls; the raw bucket-count error additionally includes
  // the unavoidable granularity of values heavier than n/k (Section 5).
  const auto errors = ComputeHistogramErrors(*approx, data);
  const auto claimed = ComputeClaimedErrors(*approx, data);
  const auto perfect = BuildPerfectHistogram(data, k);
  if (!errors.ok() || !claimed.ok() || !perfect.ok()) {
    std::fprintf(stderr, "measurement failed\n");
    return 1;
  }
  std::printf("achieved errors vs ground truth:\n");
  std::printf("  f_max of claimed counts (Theorem 4's guarantee) = %.4f  "
              "(target %.2f)\n",
              claimed->f_max, f);
  std::printf("  f_max of bucket sizes vs the ideal n/k = %.4f\n"
              "    (includes the irreducible error from values with "
              "multiplicity > n/k)\n",
              errors->f_max);
  std::printf("  f_avg = %.4f, f_var = %.4f\n", errors->f_avg, errors->f_var);
  std::printf("  Theorem 2 check: f_avg <= f_var <= f_max : %s\n\n",
              (errors->f_avg <= errors->f_var + 1e-12 &&
               errors->f_var <= errors->f_max + 1e-12)
                  ? "holds"
                  : "VIOLATED");

  std::printf("first buckets of the approximate histogram:\n%s\n",
              approx->MeasuredAgainst(data).ToString(8).c_str());
  std::printf("first buckets of the perfect histogram:\n%s",
              perfect->ToString(8).c_str());
  return 0;
}
