#!/usr/bin/env bash
# Runs clang-tidy over every src/ translation unit against the curated
# .clang-tidy check set, failing on any diagnostic (the zero-warning
# baseline CI enforces). Also greps for thread-safety-analysis
# suppressions, which are forbidden in src/.
#
# Usage: scripts/run_clang_tidy.sh [build-dir]
#   build-dir: a configured build directory containing
#              compile_commands.json (default: build).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "error: ${BUILD_DIR}/compile_commands.json not found." >&2
  echo "Configure first: cmake -B ${BUILD_DIR} -S . (CMAKE_EXPORT_COMPILE_COMMANDS is on by default)" >&2
  exit 2
fi

# NO_THREAD_SAFETY_ANALYSIS exists for exceptional interop code only and
# nothing in src/ qualifies today; keep it that way. (The definition in
# annotations.h itself is exempt.) Runs before the tool lookup so the
# suppression ban holds even on hosts without clang-tidy.
if grep -rn "NO_THREAD_SAFETY_ANALYSIS" src/ --include='*.h' --include='*.cc' \
    | grep -v "src/common/annotations.h"; then
  echo "error: NO_THREAD_SAFETY_ANALYSIS suppression found in src/ (forbidden)" >&2
  exit 1
fi

# Nondeterminism seams are banned in src/: every randomized decision must
# flow from an explicit seed (common/rng.h) and every clock from an
# injectable source, or the bit-reproducibility contracts (DESIGN.md §7)
# and the deterministic chaos/fault tests silently rot. Likewise naked
# std::mutex / std::shared_mutex outside common/mutex.h: locks must be
# the annotated, lock-ranked wrappers or they are invisible to both the
# thread-safety analysis and the runtime lock-rank checker (§18). These
# also run before the tool lookup, so the bans hold on every host.
ban() {
  local pattern="$1" exempt="$2" message="$3"
  if grep -rnE "${pattern}" src/ --include='*.h' --include='*.cc' \
      | grep -vE "${exempt}"; then
    echo "error: ${message}" >&2
    exit 1
  fi
}
# rand( catches rand/srand/drand48...; word boundary avoids operand(...).
ban '(^|[^_[:alnum:]])s?rand\(' '__never_matches__' \
  "rand()/srand() found in src/ (use common/rng.h with an explicit seed)"
ban 'std::random_device' '__never_matches__' \
  "std::random_device found in src/ (use common/rng.h with an explicit seed)"
ban 'time\(nullptr\)|time\(NULL\)|time\(0\)' '__never_matches__' \
  "time(nullptr) found in src/ (inject a clock; see TransportClient::Options::clock)"
ban 'std::mutex|std::shared_mutex|std::condition_variable' \
  'src/common/mutex\.h' \
  "naked std lock primitive found in src/ (use the annotated wrappers in common/mutex.h)"

CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${CLANG_TIDY}" >/dev/null 2>&1; then
  echo "error: ${CLANG_TIDY} not found (set CLANG_TIDY=/path/to/clang-tidy)" >&2
  exit 2
fi

mapfile -t SOURCES < <(find src -name '*.cc' | sort)
echo "clang-tidy (${CLANG_TIDY}) over ${#SOURCES[@]} translation units..."

# run-clang-tidy parallelizes when available; fall back to a serial loop.
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "${CLANG_TIDY}" -p "${BUILD_DIR}" \
    -quiet "${SOURCES[@]}"
else
  status=0
  for source in "${SOURCES[@]}"; do
    "${CLANG_TIDY}" -p "${BUILD_DIR}" --quiet "${source}" || status=1
  done
  exit "${status}"
fi
