#!/usr/bin/env bash
# Runs every fuzz/ target for a bounded time (DESIGN.md §18).
#
# With clang++ on PATH (or CXX pointing at one), builds the real libFuzzer
# harnesses (-DEQUIHIST_FUZZ=ON) and runs each coverage-guided for
# --time seconds over the checked-in corpus. Otherwise falls back to the
# portable corpus-replay binaries and drives each through a deterministic
# seeded-mutation campaign under whatever sanitizers the build carries.
#
# Usage: scripts/run_fuzzers.sh [--time=SECONDS] [--seed=N] [--build-dir=DIR]
#   --time       per-target budget in seconds (default 60 — the CI smoke
#                setting; local campaigns want 600+)
#   --seed       campaign seed (default: date +%s, printed for replay)
#   --build-dir  build tree to create/reuse (default: build-fuzz)
#
# Any crash artifact (libFuzzer crash-* files, <target>_last_input from
# the mutation driver) is left in the build tree; minimize it, check it
# into fuzz/crashes/<target>/, and it replays forever under `ctest -L fuzz`.
set -euo pipefail

cd "$(dirname "$0")/.."

TIME_BUDGET=60
SEED="$(date +%s)"
BUILD_DIR=build-fuzz
for arg in "$@"; do
  case "${arg}" in
    --time=*) TIME_BUDGET="${arg#--time=}" ;;
    --seed=*) SEED="${arg#--seed=}" ;;
    --build-dir=*) BUILD_DIR="${arg#--build-dir=}" ;;
    *) echo "unknown argument: ${arg}" >&2; exit 2 ;;
  esac
done

TARGETS=(
  fuzz_wire_reader
  fuzz_histogram_deserialize
  fuzz_reservoir
  fuzz_fleet_wire
  fuzz_transport_envelope
  fuzz_estimator_kernels
)

CLANG="${CXX:-clang++}"
if ! command -v "${CLANG}" >/dev/null 2>&1 || \
   ! "${CLANG}" --version 2>/dev/null | grep -qi clang; then
  CLANG=""
fi

if [[ -n "${CLANG}" ]]; then
  echo "== libFuzzer mode (${CLANG}), ${TIME_BUDGET}s per target =="
  cmake -B "${BUILD_DIR}" -S . -DEQUIHIST_FUZZ=ON \
    -DCMAKE_CXX_COMPILER="${CLANG}" \
    -DEQUIHIST_BUILD_TESTS=OFF -DEQUIHIST_BUILD_BENCHMARKS=OFF \
    -DEQUIHIST_BUILD_EXAMPLES=OFF
  cmake --build "${BUILD_DIR}" -j"$(nproc)" --target "${TARGETS[@]}"
  status=0
  for target in "${TARGETS[@]}"; do
    echo "== ${target} =="
    workdir="${BUILD_DIR}/corpus/${target}"
    mkdir -p "${workdir}"
    # Grow a working corpus from the checked-in seeds; crashes land in
    # the build tree for triage.
    if ! "${BUILD_DIR}/fuzz/${target}" \
        -max_total_time="${TIME_BUDGET}" -seed="${SEED}" -print_final_stats=1 \
        -artifact_prefix="${BUILD_DIR}/" \
        "${workdir}" "fuzz/corpus/${target}" "fuzz/crashes/${target}"; then
      status=1
      echo "!! ${target} crashed; artifact under ${BUILD_DIR}/" >&2
    fi
  done
  exit "${status}"
fi

echo "== mutation-fallback mode (no clang), seed ${SEED}, ~${TIME_BUDGET}s per target =="
if [[ ! -x "${BUILD_DIR}/fuzz/${TARGETS[0]}" ]]; then
  cmake -B "${BUILD_DIR}" -S . -DEQUIHIST_SANITIZE=address,undefined \
    -DEQUIHIST_BUILD_TESTS=OFF -DEQUIHIST_BUILD_BENCHMARKS=OFF \
    -DEQUIHIST_BUILD_EXAMPLES=OFF
  cmake --build "${BUILD_DIR}" -j"$(nproc)" --target "${TARGETS[@]}"
fi
status=0
for target in "${TARGETS[@]}"; do
  echo "== ${target} =="
  # Calibrate the iteration count to the time budget: run a fixed probe
  # batch, then scale.
  start="$(date +%s%N)"
  "${BUILD_DIR}/fuzz/${target}" --mutate=2000 --seed="${SEED}" \
    "fuzz/corpus/${target}" "fuzz/crashes/${target}" >/dev/null 2>&1 || {
      status=1
      echo "!! ${target} crashed during the probe batch" >&2
      continue
    }
  elapsed_ms=$((($(date +%s%N) - start) / 1000000))
  [[ "${elapsed_ms}" -lt 1 ]] && elapsed_ms=1
  iterations=$((TIME_BUDGET * 1000 * 2000 / elapsed_ms))
  [[ "${iterations}" -lt 2000 ]] && iterations=2000
  echo "   ${iterations} iterations (probe: 2000 in ${elapsed_ms}ms)"
  if ! "${BUILD_DIR}/fuzz/${target}" --mutate="${iterations}" --seed="${SEED}" \
      "fuzz/corpus/${target}" "fuzz/crashes/${target}"; then
    status=1
    echo "!! ${target} crashed; input at ${BUILD_DIR}/fuzz/${target}_last_input" >&2
  fi
done
exit "${status}"
