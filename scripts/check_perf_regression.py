#!/usr/bin/env python3
"""CI perf-regression gate over the timing benches.

Compares a fresh (usually --smoke) BENCH json against the checked-in
baseline of the same bench and fails when any ns metric regresses beyond
the tolerance band. The extractor dispatches on the report's "bench" tag:
estimator-throughput reports gate serving-path ns/query, incremental-
maintenance reports gate the O(Δ) refresh cost, fleet-serving reports
gate the transport round-trip medians. Cross-machine absolute
timings are noisy, so the band is wide by design: this gate catches "the
serving core got 2x slower" (an accidental O(k) loop, a dropped fast
path), not 5% drift.

Skips (exit 0, reason recorded) when the runner reports fewer cores than
--min-cores: single-core CI runners are typically shared/throttled enough
that even the wide band false-positives, and the parallel sections are
meaningless there.
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def single_thread_metrics(doc):
    """Flattens per-k, per-class ns/query metrics to {name: value}."""
    metrics = {}
    for config in doc.get("configurations", []):
        k = config.get("k")
        for row in config.get("single_thread", []):
            base = f"k={k}/{row.get('class')}"
            if "compiled_ns_per_query" in row:
                metrics[f"{base}/compiled"] = row["compiled_ns_per_query"]
            kernels = row.get("kernels", {})
            for kernel in ("scalar", "eytzinger", "simd"):
                value = kernels.get(f"{kernel}_ns_per_query")
                # simd reports 0 when the CPU lacks AVX2; a 0 on either
                # side makes the ratio meaningless, so callers filter.
                if value:
                    metrics[f"{base}/{kernel}"] = value
        for row in config.get("batch", []):
            if row.get("threads") == 1 and row.get("qps"):
                # Stored inverted (ns/query) so "bigger is worse" holds
                # uniformly for every metric.
                metrics[f"k={k}/batch1_ns_per_query"] = 1e9 / row["qps"]
    return metrics


def incremental_maintenance_metrics(doc):
    """Per-(pattern, churn) refresh cost in ns, incremental runs only.

    The refresh repairs a fixed-capacity reservoir (4096 slots regardless
    of bench scale), so its absolute cost is comparable between a --smoke
    candidate and the checked-in fast-scale baseline. Fallback rows are a
    full rebuild — their cost scales with n, so they are excluded; per-Δ-row
    and speedup metrics are likewise scale-dependent and not gated.
    """
    metrics = {}
    for row in doc.get("runs", []):
        if not row.get("incremental"):
            continue
        refresh_ms = row.get("refresh_ms")
        if refresh_ms:
            name = f"{row.get('pattern')}/churn={row.get('churn')}/refresh_ns"
            metrics[name] = refresh_ms * 1e6
    return metrics


def fleet_serving_metrics(doc):
    """Transport round-trip latency in us, per path (DESIGN.md 17).

    One estimate frame through the in-process Transport and through a
    unix-domain socket: envelope encode + serve + decode (+ syscalls on
    the socket path). A single frame's cost does not scale with bench n,
    so a --smoke candidate is comparable against the checked-in baseline.
    Medians only: p99 on a shared CI runner is scheduler noise. The
    mixed-traffic QPS and scalar-serving ratios are guarded inside the
    bench binary itself and are not re-gated here.
    """
    metrics = {}
    transit = doc.get("transport", {})
    for name in ("in_process_median_us", "unix_socket_median_us"):
        value = transit.get(name)
        if value:
            metrics[f"transport/{name}"] = value
    return metrics


def extract_metrics(doc):
    if doc.get("bench") == "incremental_maintenance":
        return incremental_maintenance_metrics(doc)
    if doc.get("bench") == "fleet_serving":
        return fleet_serving_metrics(doc)
    return single_thread_metrics(doc)


def record(message):
    print(message)
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as f:
            f.write(message + "\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="checked-in BENCH json")
    parser.add_argument("candidate", help="freshly measured BENCH json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="fail when candidate/baseline ns/query exceeds this ratio",
    )
    parser.add_argument(
        "--min-cores",
        type=int,
        default=2,
        help="skip the gate when the runner reports fewer cores",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    candidate = load(args.candidate)

    cores = candidate.get("host", {}).get("hardware_concurrency", 0)
    if cores < args.min_cores:
        record(
            f"PERF GATE SKIPPED: runner reports hardware_concurrency={cores} "
            f"(< {args.min_cores}); shared single-core runners are too noisy "
            "for even the wide tolerance band. No comparison performed."
        )
        return 0

    base_metrics = extract_metrics(baseline)
    cand_metrics = extract_metrics(candidate)
    shared = sorted(set(base_metrics) & set(cand_metrics))
    if not shared:
        record("PERF GATE ERROR: no comparable metrics between the reports")
        return 1

    regressions = []
    print(f"{'metric':40s} {'baseline':>10s} {'candidate':>10s} {'ratio':>7s}")
    for name in shared:
        base_value = base_metrics[name]
        cand_value = cand_metrics[name]
        ratio = cand_value / base_value if base_value > 0 else float("inf")
        flag = " REGRESSION" if ratio > args.tolerance else ""
        print(
            f"{name:40s} {base_value:10.2f} {cand_value:10.2f} "
            f"{ratio:6.2f}x{flag}"
        )
        if ratio > args.tolerance:
            regressions.append((name, ratio))

    if regressions:
        record(
            f"PERF GATE FAILED: {len(regressions)} metric(s) beyond "
            f"{args.tolerance:.1f}x tolerance: "
            + ", ".join(f"{n} ({r:.2f}x)" for n, r in regressions)
        )
        return 1
    record(
        f"PERF GATE OK: {len(shared)} metrics within {args.tolerance:.1f}x "
        f"of baseline (runner cores: {cores})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
