#ifndef EQUIHIST_DISTINCT_FREQUENCY_PROFILE_H_
#define EQUIHIST_DISTINCT_FREQUENCY_PROFILE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/distribution.h"

namespace equihist {

// The frequency-of-frequencies profile of a sample: f_j is the number of
// distinct values occurring exactly j times in the sample (Section 6.2).
// Every distinct-value estimator in this library is a function of this
// profile plus the population size n — a classical fact of the
// species-estimation literature.
class FrequencyProfile {
 public:
  FrequencyProfile() = default;

  // Builds the profile of a sorted sample.
  static FrequencyProfile FromSorted(std::span<const Value> sorted_sample);

  // Builds the profile of an unsorted sample (sorts a copy).
  static FrequencyProfile FromUnsorted(std::vector<Value> sample);

  // Sample size r = sum_j j * f_j.
  std::uint64_t sample_size() const { return sample_size_; }

  // Distinct values in the sample D = sum_j f_j.
  std::uint64_t distinct_in_sample() const { return distinct_; }

  // f_j, i.e. the number of distinct values seen exactly j times; 0 for
  // j = 0 or j beyond the largest observed multiplicity.
  std::uint64_t f(std::uint64_t j) const;

  // Largest j with f_j > 0 (0 for an empty profile).
  std::uint64_t max_multiplicity() const {
    return counts_.empty() ? 0 : counts_.size() - 1;
  }

  // Dense f_1..f_max as a span (index 0 unused, kept 0).
  std::span<const std::uint64_t> dense() const { return counts_; }

 private:
  std::vector<std::uint64_t> counts_;  // counts_[j] = f_j, counts_[0] = 0
  std::uint64_t sample_size_ = 0;
  std::uint64_t distinct_ = 0;
};

}  // namespace equihist

#endif  // EQUIHIST_DISTINCT_FREQUENCY_PROFILE_H_
