#include "distinct/frequency_profile.h"

#include <algorithm>

namespace equihist {

FrequencyProfile FrequencyProfile::FromSorted(
    std::span<const Value> sorted_sample) {
  FrequencyProfile profile;
  profile.sample_size_ = sorted_sample.size();
  for (std::size_t i = 0; i < sorted_sample.size();) {
    std::size_t j = i;
    while (j < sorted_sample.size() && sorted_sample[j] == sorted_sample[i]) {
      ++j;
    }
    const std::uint64_t multiplicity = j - i;
    if (multiplicity >= profile.counts_.size()) {
      profile.counts_.resize(multiplicity + 1, 0);
    }
    ++profile.counts_[multiplicity];
    ++profile.distinct_;
    i = j;
  }
  return profile;
}

FrequencyProfile FrequencyProfile::FromUnsorted(std::vector<Value> sample) {
  std::sort(sample.begin(), sample.end());
  return FromSorted(sample);
}

std::uint64_t FrequencyProfile::f(std::uint64_t j) const {
  if (j == 0 || j >= counts_.size()) return 0;
  return counts_[j];
}

}  // namespace equihist
