#ifndef EQUIHIST_DISTINCT_ERROR_H_
#define EQUIHIST_DISTINCT_ERROR_H_

#include <cstdint>

#include "common/result.h"

namespace equihist {

// Error metrics for distinct-value estimates (Section 6).

// The classical ratio error of Definition 5: max(e/d, d/e), always >= 1.
// Theorem 8 lower-bounds the worst case of this metric. Requires d, e > 0.
Result<double> RatioError(double estimate, std::uint64_t true_distinct);

// The paper's proposed weaker metric rel-error(e) = (d - e) / n: the
// estimation error relative to the table size, which *can* be estimated
// reliably and still tells an optimizer whether d << n. Signed; positive
// means under-estimation.
Result<double> RelError(double estimate, std::uint64_t true_distinct,
                        std::uint64_t n);

// |d - e| / n, the magnitude form used in Figures 11/12.
Result<double> AbsRelError(double estimate, std::uint64_t true_distinct,
                           std::uint64_t n);

}  // namespace equihist

#endif  // EQUIHIST_DISTINCT_ERROR_H_
