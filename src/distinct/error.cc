#include "distinct/error.h"

#include <cmath>

namespace equihist {

Result<double> RatioError(double estimate, std::uint64_t true_distinct) {
  if (true_distinct == 0) {
    return Status::InvalidArgument("true distinct count must be positive");
  }
  if (estimate <= 0.0) {
    return Status::InvalidArgument("estimate must be positive");
  }
  const double d = static_cast<double>(true_distinct);
  return estimate >= d ? estimate / d : d / estimate;
}

Result<double> RelError(double estimate, std::uint64_t true_distinct,
                        std::uint64_t n) {
  if (n == 0) return Status::InvalidArgument("n must be positive");
  return (static_cast<double>(true_distinct) - estimate) /
         static_cast<double>(n);
}

Result<double> AbsRelError(double estimate, std::uint64_t true_distinct,
                           std::uint64_t n) {
  EQUIHIST_ASSIGN_OR_RETURN(const double rel,
                            RelError(estimate, true_distinct, n));
  return std::abs(rel);
}

}  // namespace equihist
