#include "distinct/estimators.h"

#include <algorithm>
#include <cmath>

#include "common/math.h"

namespace equihist {
namespace {

Status ValidateInputs(const FrequencyProfile& profile, std::uint64_t n) {
  if (profile.sample_size() == 0) {
    return Status::InvalidArgument("sample must be non-empty");
  }
  if (n == 0) return Status::InvalidArgument("n must be positive");
  return Status::OK();
}

// Every estimate is clamped into [D, n]: we have certainly seen D distinct
// values, and there cannot be more distinct values than tuples.
double Clamp(double estimate, const FrequencyProfile& profile,
             std::uint64_t n) {
  const double lo = static_cast<double>(profile.distinct_in_sample());
  const double hi = static_cast<double>(n);
  return std::clamp(estimate, lo, hi);
}

}  // namespace

Result<double> PaperEstimator(const FrequencyProfile& profile,
                              std::uint64_t n) {
  EQUIHIST_RETURN_IF_ERROR(ValidateInputs(profile, n));
  const double r = static_cast<double>(profile.sample_size());
  const double f1_plus = std::max<double>(static_cast<double>(profile.f(1)), 1.0);
  const double seen_multiple =
      static_cast<double>(profile.distinct_in_sample() - profile.f(1));
  const double estimate =
      std::sqrt(static_cast<double>(n) / r) * f1_plus + seen_multiple;
  return Clamp(estimate, profile, n);
}

Result<double> SampleDistinctCount(const FrequencyProfile& profile,
                                   std::uint64_t n) {
  EQUIHIST_RETURN_IF_ERROR(ValidateInputs(profile, n));
  return Clamp(static_cast<double>(profile.distinct_in_sample()), profile, n);
}

Result<double> NaiveScaleUp(const FrequencyProfile& profile, std::uint64_t n) {
  EQUIHIST_RETURN_IF_ERROR(ValidateInputs(profile, n));
  const double scale = static_cast<double>(n) /
                       static_cast<double>(profile.sample_size());
  return Clamp(static_cast<double>(profile.distinct_in_sample()) * scale,
               profile, n);
}

Result<double> GoodmanEstimator(const FrequencyProfile& profile,
                                std::uint64_t n) {
  EQUIHIST_RETURN_IF_ERROR(ValidateInputs(profile, n));
  const std::uint64_t r = profile.sample_size();
  const double d_seen = static_cast<double>(profile.distinct_in_sample());
  if (r >= n) return Clamp(d_seen, profile, n);  // full scan: exact

  // Term_j = (-1)^{j+1} * (n-r+j-1)! (r-j)! / [(n-r-1)! r!] * f_j,
  // evaluated in logs. The series alternates with rapidly growing terms;
  // accumulate in compensated summation and bail out to D if it loses
  // finiteness — the behaviour the paper's critique predicts.
  const double lg_base = std::lgamma(static_cast<double>(n - r)) +
                         std::lgamma(static_cast<double>(r) + 1.0);
  KahanSum series;
  for (std::uint64_t j = 1; j <= profile.max_multiplicity(); ++j) {
    const std::uint64_t fj = profile.f(j);
    if (fj == 0) continue;
    const double lg_term =
        std::lgamma(static_cast<double>(n - r + j)) +
        std::lgamma(static_cast<double>(r - j) + 1.0) - lg_base;
    const double magnitude =
        std::exp(lg_term) * static_cast<double>(fj);
    if (!std::isfinite(magnitude)) return Clamp(d_seen, profile, n);
    series.Add((j % 2 == 1) ? magnitude : -magnitude);
  }
  const double estimate = d_seen + series.Value();
  if (!std::isfinite(estimate)) return Clamp(d_seen, profile, n);
  return Clamp(estimate, profile, n);
}

Result<double> ChaoEstimator(const FrequencyProfile& profile,
                             std::uint64_t n) {
  EQUIHIST_RETURN_IF_ERROR(ValidateInputs(profile, n));
  const double d = static_cast<double>(profile.distinct_in_sample());
  const double f1 = static_cast<double>(profile.f(1));
  const double f2 = static_cast<double>(profile.f(2));
  const double estimate = (f2 > 0.0) ? d + f1 * f1 / (2.0 * f2)
                                     : d + f1 * (f1 - 1.0) / 2.0;
  return Clamp(estimate, profile, n);
}

Result<double> ChaoLeeEstimator(const FrequencyProfile& profile,
                                std::uint64_t n) {
  EQUIHIST_RETURN_IF_ERROR(ValidateInputs(profile, n));
  const double r = static_cast<double>(profile.sample_size());
  const double d = static_cast<double>(profile.distinct_in_sample());
  const double f1 = static_cast<double>(profile.f(1));
  // Coverage estimate C-hat = 1 - f1 / r. When everything in the sample is
  // a singleton, coverage is 0 and the estimator degenerates; fall back to
  // the trivial upper bound n (Clamp then applies).
  const double coverage = 1.0 - f1 / r;
  if (coverage <= 0.0) return Clamp(static_cast<double>(n), profile, n);
  const double d0 = d / coverage;
  // Squared coefficient of variation of the (unknown) class sizes,
  // estimated per Chao-Lee from the profile.
  KahanSum sum_j;
  for (std::uint64_t j = 1; j <= profile.max_multiplicity(); ++j) {
    sum_j.Add(static_cast<double>(j) * static_cast<double>(j - 1) *
              static_cast<double>(profile.f(j)));
  }
  double cv2 = d0 * sum_j.Value() / (r * (r - 1.0)) - 1.0;
  if (r <= 1.0 || cv2 < 0.0) cv2 = 0.0;
  const double estimate = d0 + r * (1.0 - coverage) / coverage * cv2;
  return Clamp(estimate, profile, n);
}

Result<double> JackknifeEstimator(const FrequencyProfile& profile,
                                  std::uint64_t n) {
  EQUIHIST_RETURN_IF_ERROR(ValidateInputs(profile, n));
  const double r = static_cast<double>(profile.sample_size());
  const double d = static_cast<double>(profile.distinct_in_sample());
  const double f1 = static_cast<double>(profile.f(1));
  return Clamp(d + f1 * (r - 1.0) / r, profile, n);
}

Result<double> SecondOrderJackknifeEstimator(const FrequencyProfile& profile,
                                             std::uint64_t n) {
  EQUIHIST_RETURN_IF_ERROR(ValidateInputs(profile, n));
  const double r = static_cast<double>(profile.sample_size());
  const double d = static_cast<double>(profile.distinct_in_sample());
  const double f1 = static_cast<double>(profile.f(1));
  const double f2 = static_cast<double>(profile.f(2));
  if (r < 2.0) return JackknifeEstimator(profile, n);
  const double estimate = d + (2.0 * r - 3.0) / r * f1 -
                          (r - 2.0) * (r - 2.0) / (r * (r - 1.0)) * f2;
  return Clamp(estimate, profile, n);
}

Result<double> ShlosserEstimator(const FrequencyProfile& profile,
                                 std::uint64_t n) {
  EQUIHIST_RETURN_IF_ERROR(ValidateInputs(profile, n));
  const double r = static_cast<double>(profile.sample_size());
  const double d = static_cast<double>(profile.distinct_in_sample());
  const double q = std::min(r / static_cast<double>(n), 1.0);
  if (q >= 1.0) return Clamp(d, profile, n);
  KahanSum numerator;    // sum_i (1-q)^i f_i
  KahanSum denominator;  // sum_i i q (1-q)^{i-1} f_i
  double pow_term = 1.0 - q;  // (1-q)^i for i starting at 1
  for (std::uint64_t i = 1; i <= profile.max_multiplicity(); ++i) {
    const double fi = static_cast<double>(profile.f(i));
    numerator.Add(pow_term * fi);
    denominator.Add(static_cast<double>(i) * q * pow_term / (1.0 - q) * fi);
    pow_term *= 1.0 - q;
  }
  if (denominator.Value() <= 0.0) return Clamp(d, profile, n);
  const double f1 = static_cast<double>(profile.f(1));
  return Clamp(d + f1 * numerator.Value() / denominator.Value(), profile, n);
}

Result<double> HybridEstimator(const FrequencyProfile& profile,
                               std::uint64_t n) {
  EQUIHIST_RETURN_IF_ERROR(ValidateInputs(profile, n));
  const double once_seen_fraction =
      static_cast<double>(profile.f(1)) /
      static_cast<double>(profile.sample_size());
  if (once_seen_fraction < 0.1) {
    return ChaoLeeEstimator(profile, n);
  }
  return PaperEstimator(profile, n);
}

std::string_view DistinctEstimatorKindToString(DistinctEstimatorKind kind) {
  switch (kind) {
    case DistinctEstimatorKind::kPaper:
      return "paper-gee";
    case DistinctEstimatorKind::kSampleDistinct:
      return "sample-distinct";
    case DistinctEstimatorKind::kNaiveScaleUp:
      return "naive-scale-up";
    case DistinctEstimatorKind::kGoodman:
      return "goodman";
    case DistinctEstimatorKind::kChao:
      return "chao";
    case DistinctEstimatorKind::kChaoLee:
      return "chao-lee";
    case DistinctEstimatorKind::kJackknife:
      return "jackknife-1";
    case DistinctEstimatorKind::kSecondOrderJackknife:
      return "jackknife-2";
    case DistinctEstimatorKind::kShlosser:
      return "shlosser";
    case DistinctEstimatorKind::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

Result<double> EstimateDistinct(DistinctEstimatorKind kind,
                                const FrequencyProfile& profile,
                                std::uint64_t n) {
  switch (kind) {
    case DistinctEstimatorKind::kPaper:
      return PaperEstimator(profile, n);
    case DistinctEstimatorKind::kSampleDistinct:
      return SampleDistinctCount(profile, n);
    case DistinctEstimatorKind::kNaiveScaleUp:
      return NaiveScaleUp(profile, n);
    case DistinctEstimatorKind::kGoodman:
      return GoodmanEstimator(profile, n);
    case DistinctEstimatorKind::kChao:
      return ChaoEstimator(profile, n);
    case DistinctEstimatorKind::kChaoLee:
      return ChaoLeeEstimator(profile, n);
    case DistinctEstimatorKind::kJackknife:
      return JackknifeEstimator(profile, n);
    case DistinctEstimatorKind::kSecondOrderJackknife:
      return SecondOrderJackknifeEstimator(profile, n);
    case DistinctEstimatorKind::kShlosser:
      return ShlosserEstimator(profile, n);
    case DistinctEstimatorKind::kHybrid:
      return HybridEstimator(profile, n);
  }
  return Status::InvalidArgument("unknown estimator kind");
}

}  // namespace equihist
