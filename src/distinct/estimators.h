#ifndef EQUIHIST_DISTINCT_ESTIMATORS_H_
#define EQUIHIST_DISTINCT_ESTIMATORS_H_

#include <cstdint>
#include <string_view>

#include "common/result.h"
#include "distinct/frequency_profile.h"

namespace equihist {

// Distinct-value estimators (Section 6). Each maps a sample's frequency
// profile plus the population size n to an estimate of d, the number of
// distinct values in the column. All return InvalidArgument for an empty
// sample or n == 0, and clamp results into the feasible interval
// [distinct_in_sample, n]. (r may exceed n under sampling with
// replacement.)

// The paper's estimator (Section 6.2), later known in the literature as
// GEE (Guaranteed-Error Estimator):
//   e = sqrt(n/r) * max(f_1, 1) + sum_{j>=2} f_j .
// Values seen >= 2 times are certainly frequent enough to count once;
// each once-seen value stands for anywhere between 1 and n/r distinct
// values, and sqrt(n/r) is the geometric balance between those extremes —
// which is what makes the estimator worst-case optimal against the
// Theorem 8 lower bound sqrt(n ln(1/gamma) / r).
Result<double> PaperEstimator(const FrequencyProfile& profile, std::uint64_t n);

// The raw number of distinct values in the sample, D. Always an
// underestimate in expectation; shown as "numDVSamp" in Figures 9/10.
Result<double> SampleDistinctCount(const FrequencyProfile& profile,
                                   std::uint64_t n);

// Naive linear scale-up D * n / r; wildly optimistic for duplicated data.
// Included as a strawman baseline.
Result<double> NaiveScaleUp(const FrequencyProfile& profile, std::uint64_t n);

// Goodman (1949): the *unique unbiased* estimator of d under sampling
// without replacement,
//   d-hat = D + sum_{j=1}^{r} (-1)^{j+1} [(n-r+j-1)! (r-j)!] /
//                             [(n-r-1)! r!] * f_j.
// Cited by the paper (Section 6) among the classical estimators that give
// "exceedingly large errors" in practice: the alternating series has
// astronomically large terms, so the variance is enormous and the
// floating-point evaluation overflows for all but small r. Implemented
// with log-gamma arithmetic; the result is clamped into [D, n], and the
// estimator falls back to D when the series is numerically meaningless
// (non-finite). Unbiasedness is verified by simulation in the tests.
Result<double> GoodmanEstimator(const FrequencyProfile& profile,
                                std::uint64_t n);

// Chao (1984): D + f_1^2 / (2 f_2); the bias-corrected form
// D + f_1 (f_1 - 1) / 2 is used when f_2 = 0.
Result<double> ChaoEstimator(const FrequencyProfile& profile, std::uint64_t n);

// Chao & Lee (1992): coverage-based estimator with a squared coefficient
// of variation correction; the classical choice for skewed data.
Result<double> ChaoLeeEstimator(const FrequencyProfile& profile,
                                std::uint64_t n);

// First-order jackknife (Burnham & Overton 1978/79, used in databases by
// Ozsoyoglu et al.): D + f_1 (r-1)/r.
Result<double> JackknifeEstimator(const FrequencyProfile& profile,
                                  std::uint64_t n);

// Second-order jackknife: D + (2r-3)/r f_1 - (r-2)^2 / (r(r-1)) f_2.
Result<double> SecondOrderJackknifeEstimator(const FrequencyProfile& profile,
                                             std::uint64_t n);

// Shlosser (1981): assumes Bernoulli sampling rate q = r/n;
// D + f_1 * sum_i (1-q)^i f_i / sum_i i q (1-q)^{i-1} f_i.
Result<double> ShlosserEstimator(const FrequencyProfile& profile,
                                 std::uint64_t n);

// The hybrid variant the paper sketches (Section 6.2: "a hybrid variant of
// our estimator which is expected to perform even better in practice").
// No formula is given in the conference paper, so this implementation
// follows the stated intuition: when the sample's coverage of the data is
// evidently high (few once-seen values: f_1/r small), low-frequency values
// are no longer ambiguous and a coverage-based correction (Chao-Lee) is
// more accurate; otherwise fall back to the worst-case-safe paper
// estimator. The 10% once-seen threshold is our choice, documented in
// DESIGN.md.
Result<double> HybridEstimator(const FrequencyProfile& profile,
                               std::uint64_t n);

// Dispatch surface so harnesses can sweep estimators uniformly.
enum class DistinctEstimatorKind {
  kPaper,
  kSampleDistinct,
  kNaiveScaleUp,
  kGoodman,
  kChao,
  kChaoLee,
  kJackknife,
  kSecondOrderJackknife,
  kShlosser,
  kHybrid,
};

std::string_view DistinctEstimatorKindToString(DistinctEstimatorKind kind);

Result<double> EstimateDistinct(DistinctEstimatorKind kind,
                                const FrequencyProfile& profile,
                                std::uint64_t n);

}  // namespace equihist

#endif  // EQUIHIST_DISTINCT_ESTIMATORS_H_
