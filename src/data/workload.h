#ifndef EQUIHIST_DATA_WORKLOAD_H_
#define EQUIHIST_DATA_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/distribution.h"
#include "data/value_set.h"

namespace equihist {

// A range predicate "lo < X <= hi" over the attribute domain. The half-open
// convention matches the histogram bucket definition (s_{j-1} < v <= s_j),
// so a query whose endpoints coincide with separators selects whole buckets
// exactly.
struct RangeQuery {
  Value lo = 0;
  Value hi = 0;

  friend bool operator==(const RangeQuery&, const RangeQuery&) = default;
};

// Generators for the range-query workloads used in the Theorem 1/3
// experiments (bench_range_error) and in the selectivity example. All are
// deterministic in their seed.
class RangeWorkloadGenerator {
 public:
  // Queries are generated against this ground-truth value set; the set must
  // outlive the generator.
  RangeWorkloadGenerator(const ValueSet* data, std::uint64_t seed);

  // `count` queries with endpoints uniform over the (slightly padded) value
  // domain, lo < hi. Output sizes vary freely.
  std::vector<RangeQuery> UniformRanges(std::size_t count);

  // `count` queries each selecting (approximately) `target_output` tuples:
  // the paper's "output size s = t*n/k" setting. Endpoints are placed at
  // rank boundaries, so with duplicate-free data the output size is exact.
  Result<std::vector<RangeQuery>> FixedSelectivityRanges(
      std::size_t count, std::uint64_t target_output);

  // `count` one-sided queries "X <= hi" (lo pinned below the domain),
  // exercising prefix estimation.
  std::vector<RangeQuery> PrefixRanges(std::size_t count);

 private:
  const ValueSet* data_;
  Rng rng_;
};

}  // namespace equihist

#endif  // EQUIHIST_DATA_WORKLOAD_H_
