#include "data/generator.h"

#include <utility>

#include "common/rng.h"

namespace equihist {

std::vector<Value> ExpandSorted(const FrequencyVector& frequencies) {
  std::vector<Value> values;
  values.reserve(frequencies.total_count());
  for (const FrequencyEntry& entry : frequencies.entries()) {
    values.insert(values.end(), entry.count, entry.value);
  }
  return values;
}

std::vector<Value> ExpandShuffled(const FrequencyVector& frequencies,
                                  std::uint64_t seed) {
  std::vector<Value> values = ExpandSorted(frequencies);
  Rng rng(seed);
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::uint64_t j = rng.NextBounded(i);
    std::swap(values[i - 1], values[j]);
  }
  return values;
}

}  // namespace equihist
