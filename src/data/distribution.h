#ifndef EQUIHIST_DATA_DISTRIBUTION_H_
#define EQUIHIST_DATA_DISTRIBUTION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace equihist {

// The attribute type under study. The paper's experiments use an integer
// column (600 histogram bins fit one SQL Server page for integers); a
// totally ordered 64-bit domain captures everything the algorithms need.
using Value = std::int64_t;

// One distinct value and its multiplicity in a column.
struct FrequencyEntry {
  Value value = 0;
  std::uint64_t count = 0;

  friend bool operator==(const FrequencyEntry&, const FrequencyEntry&) =
      default;
};

// A column described as (distinct value, multiplicity) pairs, sorted by
// value ascending. This is the compact intermediate form produced by the
// synthetic data distributions of Section 7.1; MaterializeColumn() in
// generator.h expands it into per-tuple values.
class FrequencyVector {
 public:
  FrequencyVector() = default;

  // Takes entries sorted by value with strictly increasing values and
  // positive counts; verified in debug builds.
  explicit FrequencyVector(std::vector<FrequencyEntry> entries);

  const std::vector<FrequencyEntry>& entries() const { return entries_; }
  std::uint64_t total_count() const { return total_count_; }
  std::uint64_t distinct_count() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  std::vector<FrequencyEntry> entries_;
  std::uint64_t total_count_ = 0;
};

// ---------------------------------------------------------------------------
// Distribution specs. Each Make* function deterministically derives a
// FrequencyVector with (approximately) `n` total tuples. All functions
// validate their arguments and return Status on misuse.
// ---------------------------------------------------------------------------

// How frequencies are assigned to points of the ordered value domain.
enum class FrequencyPlacement {
  // Highest multiplicity at the smallest value, descending: the classical
  // textbook picture of a Zipf column.
  kDecreasing,
  // Frequencies assigned to domain values by a seeded random permutation.
  // This is the realistic case (value magnitude uncorrelated with
  // popularity) and the default for experiments.
  kShuffled,
};

struct ZipfSpec {
  std::uint64_t n = 0;           // target number of tuples
  std::uint64_t domain_size = 0; // number of candidate distinct values D
  double skew = 1.0;             // the paper's Z; 0 = uniform, 4 = extreme
  Value value_stride = 1;        // spacing between adjacent domain values
  FrequencyPlacement placement = FrequencyPlacement::kShuffled;
  std::uint64_t seed = 42;       // permutation seed for kShuffled
};

// Zipf(Z) frequencies: count_i proportional to 1/i^Z over i = 1..D,
// rounded to integers summing exactly to n (largest-remainder rounding);
// zero-count values are dropped. Z = 0 degenerates to uniform-with-
// duplicates over D values. Matches the generator of Section 7.1.
Result<FrequencyVector> MakeZipf(const ZipfSpec& spec);

// All n values distinct (each multiplicity 1): the duplicate-free setting
// of Sections 2-3. Values are 1..n scaled by value_stride.
Result<FrequencyVector> MakeAllDistinct(std::uint64_t n, Value value_stride = 1);

// The paper's "Unif/Dup" distribution: exactly `distinct` values, each
// occurring exactly n / distinct times. Requires distinct to divide n.
// (Figure 10/12 uses n = 10M, distinct = 100,000, multiplicity 100.)
Result<FrequencyVector> MakeUniformDup(std::uint64_t n, std::uint64_t distinct,
                                       Value value_stride = 1);

// Every tuple carries the same single value: the degenerate fully-correlated
// column used in failure-injection tests and the block-correlation
// discussion of Section 4.1 (scenario b).
Result<FrequencyVector> MakeConstant(std::uint64_t n, Value value = 1);

// Self-similar (80-20 style) distribution with parameter h in (0.5, 1):
// the first half of the domain receives fraction h of the tuples,
// recursively. A common skewed alternative used for extra coverage beyond
// the paper's Zipf data.
struct SelfSimilarSpec {
  std::uint64_t n = 0;
  std::uint64_t domain_size = 0;
  double h = 0.8;
  Value value_stride = 1;
};
Result<FrequencyVector> MakeSelfSimilar(const SelfSimilarSpec& spec);

// Discretized normal over `domain_size` values centred mid-domain with the
// given coefficient sigma (as a fraction of the domain width). Extra
// coverage distribution.
struct NormalSpec {
  std::uint64_t n = 0;
  std::uint64_t domain_size = 0;
  double sigma_fraction = 0.15;
  Value value_stride = 1;
};
Result<FrequencyVector> MakeNormal(const NormalSpec& spec);

}  // namespace equihist

#endif  // EQUIHIST_DATA_DISTRIBUTION_H_
