#include "data/workload.h"

#include <algorithm>
#include <cassert>

namespace equihist {

RangeWorkloadGenerator::RangeWorkloadGenerator(const ValueSet* data,
                                               std::uint64_t seed)
    : data_(data), rng_(seed) {
  assert(data_ != nullptr);
  assert(!data_->empty());
}

std::vector<RangeQuery> RangeWorkloadGenerator::UniformRanges(
    std::size_t count) {
  // Pad the domain by one stride on each side so queries can under- and
  // over-shoot the data.
  const Value lo_bound = data_->min() - 1;
  const Value hi_bound = data_->max() + 1;
  std::vector<RangeQuery> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Value a = rng_.NextInRange(lo_bound, hi_bound);
    Value b = rng_.NextInRange(lo_bound, hi_bound);
    if (a > b) std::swap(a, b);
    if (a == b) b = b + 1;
    queries.push_back(RangeQuery{a, b});
  }
  return queries;
}

Result<std::vector<RangeQuery>> RangeWorkloadGenerator::FixedSelectivityRanges(
    std::size_t count, std::uint64_t target_output) {
  const std::uint64_t n = data_->size();
  if (target_output == 0 || target_output > n) {
    return Status::InvalidArgument(
        "target_output must be in [1, n] for fixed-selectivity ranges");
  }
  std::vector<RangeQuery> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Window of `target_output` consecutive ranks [start, start + target).
    const std::uint64_t start = rng_.NextBounded(n - target_output + 1);
    // lo: just below the first selected value; hi: the last selected value.
    const Value lo = (start == 0) ? data_->min() - 1
                                  : data_->ValueAtRank(start - 1);
    const Value hi = data_->ValueAtRank(start + target_output - 1);
    queries.push_back(RangeQuery{lo, hi});
  }
  return queries;
}

std::vector<RangeQuery> RangeWorkloadGenerator::PrefixRanges(
    std::size_t count) {
  const Value lo = data_->min() - 1;
  std::vector<RangeQuery> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Value hi = data_->ValueAtRank(rng_.NextBounded(data_->size()));
    queries.push_back(RangeQuery{lo, hi});
  }
  return queries;
}

}  // namespace equihist
