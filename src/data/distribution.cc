#include "data/distribution.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "common/math.h"

namespace equihist {

FrequencyVector::FrequencyVector(std::vector<FrequencyEntry> entries)
    : entries_(std::move(entries)) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    assert(entries_[i].count > 0);
    assert(i == 0 || entries_[i - 1].value < entries_[i].value);
    total_count_ += entries_[i].count;
  }
}

namespace {

// Rounds fractional shares `weights` (arbitrary positive scale) to integer
// counts summing exactly to n, using largest-remainder apportionment.
std::vector<std::uint64_t> ApportionCounts(const std::vector<double>& weights,
                                           std::uint64_t n) {
  return ApportionProportionally(weights, n);
}

// Builds the FrequencyVector from rank-ordered counts. `placement` decides
// which domain position receives which rank's count.
FrequencyVector PlaceCounts(std::vector<std::uint64_t> rank_counts,
                            Value value_stride, FrequencyPlacement placement,
                            std::uint64_t seed) {
  const std::size_t d = rank_counts.size();
  std::vector<std::uint64_t> position_counts(d);
  if (placement == FrequencyPlacement::kDecreasing) {
    position_counts = std::move(rank_counts);
  } else {
    // Random bijection rank -> domain position.
    std::vector<std::uint32_t> perm(d);
    std::iota(perm.begin(), perm.end(), 0);
    Rng rng(seed);
    for (std::size_t i = d; i > 1; --i) {
      const std::uint64_t j = rng.NextBounded(i);
      std::swap(perm[i - 1], perm[j]);
    }
    for (std::size_t rank = 0; rank < d; ++rank) {
      position_counts[perm[rank]] = rank_counts[rank];
    }
  }

  std::vector<FrequencyEntry> entries;
  entries.reserve(d);
  for (std::size_t pos = 0; pos < d; ++pos) {
    if (position_counts[pos] == 0) continue;
    entries.push_back(FrequencyEntry{
        static_cast<Value>(pos + 1) * value_stride, position_counts[pos]});
  }
  return FrequencyVector(std::move(entries));
}

Status ValidateCommon(std::uint64_t n, std::uint64_t domain_size,
                      Value value_stride) {
  if (n == 0) return Status::InvalidArgument("n must be positive");
  if (domain_size == 0) {
    return Status::InvalidArgument("domain_size must be positive");
  }
  if (value_stride <= 0) {
    return Status::InvalidArgument("value_stride must be positive");
  }
  return Status::OK();
}

}  // namespace

Result<FrequencyVector> MakeZipf(const ZipfSpec& spec) {
  EQUIHIST_RETURN_IF_ERROR(
      ValidateCommon(spec.n, spec.domain_size, spec.value_stride));
  if (spec.skew < 0.0) {
    return Status::InvalidArgument("Zipf skew must be non-negative");
  }
  std::vector<double> weights(spec.domain_size);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = std::pow(static_cast<double>(i + 1), -spec.skew);
  }
  return PlaceCounts(ApportionCounts(weights, spec.n), spec.value_stride,
                     spec.placement, spec.seed);
}

Result<FrequencyVector> MakeAllDistinct(std::uint64_t n, Value value_stride) {
  EQUIHIST_RETURN_IF_ERROR(ValidateCommon(n, n, value_stride));
  std::vector<FrequencyEntry> entries;
  entries.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    entries.push_back(
        FrequencyEntry{static_cast<Value>(i + 1) * value_stride, 1});
  }
  return FrequencyVector(std::move(entries));
}

Result<FrequencyVector> MakeUniformDup(std::uint64_t n, std::uint64_t distinct,
                                       Value value_stride) {
  EQUIHIST_RETURN_IF_ERROR(ValidateCommon(n, distinct, value_stride));
  if (n % distinct != 0) {
    return Status::InvalidArgument(
        "Unif/Dup requires distinct to divide n exactly");
  }
  const std::uint64_t multiplicity = n / distinct;
  std::vector<FrequencyEntry> entries;
  entries.reserve(distinct);
  for (std::uint64_t i = 0; i < distinct; ++i) {
    entries.push_back(FrequencyEntry{
        static_cast<Value>(i + 1) * value_stride, multiplicity});
  }
  return FrequencyVector(std::move(entries));
}

Result<FrequencyVector> MakeConstant(std::uint64_t n, Value value) {
  if (n == 0) return Status::InvalidArgument("n must be positive");
  return FrequencyVector({FrequencyEntry{value, n}});
}

Result<FrequencyVector> MakeSelfSimilar(const SelfSimilarSpec& spec) {
  EQUIHIST_RETURN_IF_ERROR(
      ValidateCommon(spec.n, spec.domain_size, spec.value_stride));
  if (spec.h <= 0.5 || spec.h >= 1.0) {
    return Status::InvalidArgument("self-similar h must be in (0.5, 1)");
  }
  // Weight of position i follows the recursive 80-20 split: interpreting the
  // bits of i, each 0-bit multiplies by h, each 1-bit by (1-h), over
  // ceil(log2(D)) levels.
  int levels = 0;
  while ((1ULL << levels) < spec.domain_size) ++levels;
  std::vector<double> weights(spec.domain_size);
  for (std::uint64_t i = 0; i < spec.domain_size; ++i) {
    double w = 1.0;
    for (int b = levels - 1; b >= 0; --b) {
      w *= ((i >> b) & 1ULL) ? (1.0 - spec.h) : spec.h;
    }
    weights[i] = w;
  }
  return PlaceCounts(ApportionCounts(weights, spec.n), spec.value_stride,
                     FrequencyPlacement::kDecreasing, /*seed=*/0);
}

Result<FrequencyVector> MakeNormal(const NormalSpec& spec) {
  EQUIHIST_RETURN_IF_ERROR(
      ValidateCommon(spec.n, spec.domain_size, spec.value_stride));
  if (spec.sigma_fraction <= 0.0) {
    return Status::InvalidArgument("sigma_fraction must be positive");
  }
  const double mu = (static_cast<double>(spec.domain_size) - 1.0) / 2.0;
  const double sigma =
      spec.sigma_fraction * static_cast<double>(spec.domain_size);
  std::vector<double> weights(spec.domain_size);
  for (std::uint64_t i = 0; i < spec.domain_size; ++i) {
    const double z = (static_cast<double>(i) - mu) / sigma;
    weights[i] = std::exp(-0.5 * z * z);
  }
  return PlaceCounts(ApportionCounts(weights, spec.n), spec.value_stride,
                     FrequencyPlacement::kDecreasing, /*seed=*/0);
}

}  // namespace equihist
