#include "data/value_set.h"

#include <algorithm>

namespace equihist {

ValueSet::ValueSet(std::vector<Value> values) : values_(std::move(values)) {
  if (!std::is_sorted(values_.begin(), values_.end())) {
    std::sort(values_.begin(), values_.end());
  }
}

ValueSet ValueSet::FromFrequencies(const FrequencyVector& frequencies) {
  std::vector<Value> values;
  values.reserve(frequencies.total_count());
  for (const FrequencyEntry& entry : frequencies.entries()) {
    values.insert(values.end(), entry.count, entry.value);
  }
  ValueSet set;
  set.values_ = std::move(values);  // already sorted by construction
  return set;
}

std::uint64_t ValueSet::CountLessEqual(Value x) const {
  return static_cast<std::uint64_t>(
      std::upper_bound(values_.begin(), values_.end(), x) - values_.begin());
}

std::uint64_t ValueSet::CountLess(Value x) const {
  return static_cast<std::uint64_t>(
      std::lower_bound(values_.begin(), values_.end(), x) - values_.begin());
}

std::uint64_t ValueSet::CountInRange(Value lo, Value hi) const {
  if (hi <= lo) return 0;
  return CountLessEqual(hi) - CountLessEqual(lo);
}

std::uint64_t ValueSet::DistinctCount() const {
  if (!distinct_cached_) {
    std::uint64_t distinct = 0;
    for (std::size_t i = 0; i < values_.size(); ++i) {
      if (i == 0 || values_[i] != values_[i - 1]) ++distinct;
    }
    cached_distinct_ = distinct;
    distinct_cached_ = true;
  }
  return cached_distinct_;
}

}  // namespace equihist
