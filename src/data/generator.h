#ifndef EQUIHIST_DATA_GENERATOR_H_
#define EQUIHIST_DATA_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "data/distribution.h"

namespace equihist {

// Expands a frequency vector into one value per tuple, in ascending value
// order (duplicates adjacent). Storage-layer layout policies reorder this
// expansion into the on-disk tuple order; see storage/layout.h.
std::vector<Value> ExpandSorted(const FrequencyVector& frequencies);

// Expands and uniformly shuffles: the tuple order of a column inserted in
// random order. Deterministic in `seed`.
std::vector<Value> ExpandShuffled(const FrequencyVector& frequencies,
                                  std::uint64_t seed);

}  // namespace equihist

#endif  // EQUIHIST_DATA_GENERATOR_H_
