#ifndef EQUIHIST_DATA_VALUE_SET_H_
#define EQUIHIST_DATA_VALUE_SET_H_

#include <cstdint>
#include <vector>

#include "data/distribution.h"

namespace equihist {

// The paper's value set V: the multiset of attribute values of all n tuples,
// held sorted. ValueSet is the ground-truth oracle of the library — perfect
// histograms, true range-query counts, true distinct counts and true error
// metrics are all computed against it. O(n) memory, O(log n) rank queries.
class ValueSet {
 public:
  ValueSet() = default;

  // Takes ownership of `values`; sorts them if not already sorted.
  explicit ValueSet(std::vector<Value> values);

  // Builds directly from a frequency vector (avoids a sort).
  static ValueSet FromFrequencies(const FrequencyVector& frequencies);

  std::uint64_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  // The i-th smallest value, 0-based. Precondition: rank < size().
  Value ValueAtRank(std::uint64_t rank) const { return values_[rank]; }

  // Number of values v with v <= x / v < x.
  std::uint64_t CountLessEqual(Value x) const;
  std::uint64_t CountLess(Value x) const;

  // Number of values v with lo < v <= hi — the half-open range semantics
  // used by histogram buckets (s_{j-1} < v <= s_j). Returns 0 if hi <= lo.
  std::uint64_t CountInRange(Value lo, Value hi) const;

  // Exact number of distinct values (the paper's d). Computed lazily once.
  std::uint64_t DistinctCount() const;

  Value min() const { return values_.front(); }
  Value max() const { return values_.back(); }

  // The underlying sorted values (ascending).
  const std::vector<Value>& sorted_values() const { return values_; }

 private:
  std::vector<Value> values_;
  mutable std::uint64_t cached_distinct_ = 0;
  mutable bool distinct_cached_ = false;
};

}  // namespace equihist

#endif  // EQUIHIST_DATA_VALUE_SET_H_
