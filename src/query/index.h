#ifndef EQUIHIST_QUERY_INDEX_H_
#define EQUIHIST_QUERY_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "data/workload.h"
#include "storage/io_stats.h"
#include "storage/table.h"

namespace equihist {

// A dense ordered secondary index over a table's single attribute: sorted
// (value, page, slot) entries packed into fixed-capacity leaf "pages" so
// index I/O can be charged realistically. This is the alternative access
// path the optimizer weighs against a full scan — the decision the paper's
// statistics exist to inform.
class OrderedIndex {
 public:
  struct Entry {
    Value value;
    std::uint32_t page_id;
    std::uint32_t slot;
  };

  // Builds by scanning the table once (the index build is charged to
  // `build_stats` if provided). `entries_per_leaf` models the leaf fan-out
  // (8 KB / 16 B entry = 512 by default). Transient read faults are
  // retried per `policy` (charged to build_stats->transient_retries); a
  // page that stays unreadable fails the build with that page's status —
  // an index over partial data would silently under-count every range.
  static Result<OrderedIndex> Build(const Table& table,
                                    IoStats* build_stats = nullptr,
                                    std::uint32_t entries_per_leaf = 512,
                                    const RetryPolicy& policy = {});

  std::uint64_t entry_count() const { return entries_.size(); }
  std::uint32_t entries_per_leaf() const { return entries_per_leaf_; }
  std::uint64_t leaf_count() const {
    return (entries_.size() + entries_per_leaf_ - 1) / entries_per_leaf_;
  }

  // Executes "lo < X <= hi" through the index against `table`: charges the
  // touched index leaves and the fetched table pages (each distinct
  // matching page once — a block-nested fetch with a page cache) to
  // `stats`, and returns the number of matching tuples.
  //
  // Like FullScan, this overload assumes fault-free storage: a table page
  // that cannot be read aborts (it cannot report a Status). Fault-aware
  // callers go through RangeScanChecked.
  std::uint64_t RangeScan(const Table& table, const RangeQuery& query,
                          IoStats* stats) const;

  // Fault-aware RangeScan: transient read errors are retried per `policy`
  // (charged to stats->transient_retries); a page that stays unreadable
  // fails the scan with that page's kDataLoss/kUnavailable status.
  // Fault-free tables return exactly RangeScan's count and I/O bill.
  Result<std::uint64_t> RangeScanChecked(const Table& table,
                                         const RangeQuery& query,
                                         IoStats* stats,
                                         const RetryPolicy& policy = {}) const;

  // Index-only count (no table fetch): charges only leaf reads. Used when
  // the query needs COUNT rather than tuples.
  std::uint64_t RangeCount(const RangeQuery& query, IoStats* stats) const;

 private:
  OrderedIndex(std::vector<Entry> entries, std::uint32_t entries_per_leaf)
      : entries_(std::move(entries)), entries_per_leaf_(entries_per_leaf) {}

  // [first, last) entry positions matching the query.
  std::pair<std::uint64_t, std::uint64_t> EntryRange(
      const RangeQuery& query) const;

  void ChargeLeaves(std::uint64_t first, std::uint64_t last,
                    IoStats* stats) const;

  std::vector<Entry> entries_;  // sorted by (value, page, slot)
  std::uint32_t entries_per_leaf_;
};

}  // namespace equihist

#endif  // EQUIHIST_QUERY_INDEX_H_
