#include "query/index.h"

#include <algorithm>
#include <unordered_set>

namespace equihist {

Result<OrderedIndex> OrderedIndex::Build(const Table& table,
                                         IoStats* build_stats,
                                         std::uint32_t entries_per_leaf,
                                         const RetryPolicy& policy) {
  if (entries_per_leaf == 0) {
    return Status::InvalidArgument("entries_per_leaf must be positive");
  }
  if (table.tuple_count() == 0) {
    return Status::FailedPrecondition("cannot index an empty table");
  }
  std::vector<Entry> entries;
  entries.reserve(table.tuple_count());
  for (std::uint64_t page_id = 0; page_id < table.page_count(); ++page_id) {
    EQUIHIST_ASSIGN_OR_RETURN(
        const Page* page,
        table.file().ReadPageRetrying(page_id, policy, build_stats));
    for (std::uint32_t slot = 0; slot < page->size(); ++slot) {
      entries.push_back(Entry{page->at(slot),
                              static_cast<std::uint32_t>(page_id), slot});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.value != b.value) return a.value < b.value;
              if (a.page_id != b.page_id) return a.page_id < b.page_id;
              return a.slot < b.slot;
            });
  return OrderedIndex(std::move(entries), entries_per_leaf);
}

std::pair<std::uint64_t, std::uint64_t> OrderedIndex::EntryRange(
    const RangeQuery& query) const {
  const auto first = std::upper_bound(
      entries_.begin(), entries_.end(), query.lo,
      [](Value v, const Entry& e) { return v < e.value; });
  const auto last = std::upper_bound(
      entries_.begin(), entries_.end(), query.hi,
      [](Value v, const Entry& e) { return v < e.value; });
  return {static_cast<std::uint64_t>(first - entries_.begin()),
          static_cast<std::uint64_t>(last - entries_.begin())};
}

void OrderedIndex::ChargeLeaves(std::uint64_t first, std::uint64_t last,
                                IoStats* stats) const {
  if (stats == nullptr || last <= first) return;
  const std::uint64_t first_leaf = first / entries_per_leaf_;
  const std::uint64_t last_leaf = (last - 1) / entries_per_leaf_;
  stats->pages_read += last_leaf - first_leaf + 1;
}

std::uint64_t OrderedIndex::RangeCount(const RangeQuery& query,
                                       IoStats* stats) const {
  const auto [first, last] = EntryRange(query);
  ChargeLeaves(first, last, stats);
  return last - first;
}

std::uint64_t OrderedIndex::RangeScan(const Table& table,
                                      const RangeQuery& query,
                                      IoStats* stats) const {
  Result<std::uint64_t> matches = RangeScanChecked(table, query, stats);
  if (!matches.ok()) {
    AbortOnStatus(matches.status(),
                  "RangeScan on faulty storage (use RangeScanChecked)");
  }
  return *matches;
}

Result<std::uint64_t> OrderedIndex::RangeScanChecked(
    const Table& table, const RangeQuery& query, IoStats* stats,
    const RetryPolicy& policy) const {
  const auto [first, last] = EntryRange(query);
  ChargeLeaves(first, last, stats);
  // Fetch each distinct matching table page once (modelling a page cache
  // large enough for the result's working set).
  std::unordered_set<std::uint32_t> fetched;
  std::uint64_t matches = 0;
  for (std::uint64_t i = first; i < last; ++i) {
    const Entry& entry = entries_[i];
    if (fetched.insert(entry.page_id).second) {
      EQUIHIST_ASSIGN_OR_RETURN(
          const Page* page,
          table.file().ReadPageRetrying(entry.page_id, policy, stats));
      // ReadPage charged the page plus all its tuples; the scan only
      // examines the indexed slot, so adjust tuples_read to one per match.
      if (stats != nullptr) {
        stats->tuples_read -= page->size();
      }
    }
    if (stats != nullptr) stats->tuples_read += 1;
    ++matches;
  }
  return matches;
}

}  // namespace equihist
