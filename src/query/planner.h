#ifndef EQUIHIST_QUERY_PLANNER_H_
#define EQUIHIST_QUERY_PLANNER_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "common/thread_pool.h"
#include "data/workload.h"
#include "query/index.h"
#include "stats/column_statistics.h"
#include "stats/statistics_fleet.h"
#include "stats/statistics_manager.h"
#include "storage/table.h"

namespace equihist {

// The decision the paper's statistics exist to inform: full scan or index
// range scan? ("The ability of an optimizer to make a good decision is
// critically influenced by the availability of statistical information" —
// Section 1.) The planner costs both access paths from ColumnStatistics
// and a classical I/O model; the executor then runs the chosen plan and
// reports the true I/O, so statistics quality translates directly into
// measured plan quality (bench_plan_quality).

enum class AccessPath {
  kFullScan,
  kIndexRangeScan,
};

std::string_view AccessPathToString(AccessPath path);

struct PlanChoice {
  AccessPath path = AccessPath::kFullScan;
  double estimated_rows = 0.0;
  double full_scan_cost = 0.0;   // weighted page cost
  double index_scan_cost = 0.0;  // weighted page cost
};

// I/O cost weights. A full scan reads pages sequentially; index fetches
// are random reads, classically weighted ~4x (PostgreSQL's
// random_page_cost default).
struct CostModel {
  double sequential_page_cost = 1.0;
  double random_page_cost = 4.0;
};

// Yao's formula: expected number of distinct pages touched when `matches`
// tuples are drawn (without replacement) from a table of `pages` pages
// holding `tuples_per_page` tuples each. The classical cost-model
// ingredient for unclustered index scans.
double YaoPagesTouched(std::uint64_t pages, std::uint32_t tuples_per_page,
                       double matches);

// Costs both access paths for "lo < X <= hi" and picks the cheaper one.
// The index cost is (leaves(matches) + Yao(pages, b, matches)) at the
// random-read rate; the full scan cost is the page count at the
// sequential rate. The model overload costs directly through any
// histogram backend; the ColumnStatistics overload forwards to it.
PlanChoice ChooseAccessPath(const HistogramModel& model,
                            const RangeQuery& query,
                            std::uint64_t table_pages,
                            std::uint32_t tuples_per_page,
                            std::uint32_t index_entries_per_leaf = 512,
                            const CostModel& cost_model = CostModel{});
PlanChoice ChooseAccessPath(const ColumnStatistics& stats,
                            const RangeQuery& query,
                            std::uint64_t table_pages,
                            std::uint32_t tuples_per_page,
                            std::uint32_t index_entries_per_leaf = 512,
                            const CostModel& cost_model = CostModel{});

// Batch plan choice: one PlanChoice per query, with all the estimates
// produced by a single call into the model's batch path (the vectorized
// serving core on equi-height; `pool` shards large batches). Choices are
// bitwise what per-query ChooseAccessPath would pick.
std::vector<PlanChoice> ChooseAccessPaths(
    const HistogramModel& model, std::span<const RangeQuery> queries,
    std::uint64_t table_pages, std::uint32_t tuples_per_page,
    std::uint32_t index_entries_per_leaf = 512,
    const CostModel& cost_model = CostModel{}, ThreadPool* pool = nullptr);

// Multi-column batch plan choice: the whole predicate list estimates in
// ONE EstimateBatch call through the lock-free snapshot-cache fast path,
// then costs per predicate. Errors (an unbuildable column) propagate from
// the batch estimate. Takes any shard — including the StatisticsManager
// facade, which *is* a shard.
Result<std::vector<PlanChoice>> ChooseAccessPaths(
    StatisticsShard& shard, const Table& table,
    std::span<const BatchEstimateRequest> requests,
    std::uint32_t tuples_per_page, std::uint32_t index_entries_per_leaf = 512,
    const CostModel& cost_model = CostModel{}, bool use_pool = false);

// Fleet variant: the predicate list routes through the fleet's
// cross-shard batch front-end (counting-sort partition + per-shard
// coalescing), bitwise the single-shard overload's choices.
Result<std::vector<PlanChoice>> ChooseAccessPaths(
    StatisticsFleet& fleet, const Table& table,
    std::span<const BatchEstimateRequest> requests,
    std::uint32_t tuples_per_page, std::uint32_t index_entries_per_leaf = 512,
    const CostModel& cost_model = CostModel{});

struct ExecutionResult {
  AccessPath path = AccessPath::kFullScan;
  std::uint64_t rows = 0;
  IoStats io{};
};

// Executes `query` with the chosen access path and returns the true row
// count and I/O bill. The full-scan arm goes through storage/scan's
// FullScan; with a pool its page reads run concurrently (row count and
// charged I/O are identical for any thread count).
//
// Like FullScan and RangeScan, this overload assumes fault-free storage
// and aborts on an unreadable page. Fault-aware callers go through
// ExecutePlanChecked.
ExecutionResult ExecutePlan(const Table& table, const OrderedIndex& index,
                            const RangeQuery& query, AccessPath path,
                            ThreadPool* pool = nullptr);

// Fault-aware plan execution: both arms retry transient read faults per
// `policy` and propagate a page that stays unreadable as that page's
// kDataLoss/kUnavailable status. Fault-free tables return exactly
// ExecutePlan's result.
Result<ExecutionResult> ExecutePlanChecked(const Table& table,
                                           const OrderedIndex& index,
                                           const RangeQuery& query,
                                           AccessPath path,
                                           ThreadPool* pool = nullptr,
                                           const RetryPolicy& policy = {});

// Batch execution of a range-query list over one chosen access path.
struct BatchExecutionResult {
  AccessPath path = AccessPath::kFullScan;
  std::vector<std::uint64_t> rows;  // rows[i] answers queries[i]
  IoStats io{};                     // the batch's total I/O bill
};

// Executes every query of the batch and returns the true row counts and
// the combined I/O bill. The full-scan arm reads the table ONCE for the
// whole batch — scan, sort, then answer each "lo < X <= hi" with two
// binary searches — so q queries cost one scan instead of q (the
// single-query ExecutePlan* entry points are thin wrappers over this).
// The index arm runs one range scan per query. Transient faults retry per
// `policy`; a permanently unreadable page fails the whole batch with that
// page's status.
Result<BatchExecutionResult> ExecutePlansChecked(
    const Table& table, const OrderedIndex& index,
    std::span<const RangeQuery> queries, AccessPath path,
    ThreadPool* pool = nullptr, const RetryPolicy& policy = {});

}  // namespace equihist

#endif  // EQUIHIST_QUERY_PLANNER_H_
