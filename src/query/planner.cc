#include "query/planner.h"

#include <cmath>
#include <vector>

#include "core/range_estimator.h"
#include "storage/scan.h"

namespace equihist {

std::string_view AccessPathToString(AccessPath path) {
  switch (path) {
    case AccessPath::kFullScan:
      return "full-scan";
    case AccessPath::kIndexRangeScan:
      return "index-range-scan";
  }
  return "unknown";
}

double YaoPagesTouched(std::uint64_t pages, std::uint32_t tuples_per_page,
                       double matches) {
  if (pages == 0 || tuples_per_page == 0 || matches <= 0.0) return 0.0;
  const double n = static_cast<double>(pages) *
                   static_cast<double>(tuples_per_page);
  const double m = std::min(matches, n);
  // Yao's approximation: P * (1 - (1 - m/n)^b). Exact for Bernoulli
  // placement; within a fraction of a page of the hypergeometric form for
  // the sizes a cost model cares about.
  const double miss = std::pow(1.0 - m / n,
                               static_cast<double>(tuples_per_page));
  return static_cast<double>(pages) * (1.0 - miss);
}

namespace {

// The shared cost comparison, fed by whichever estimation surface the
// caller holds.
PlanChoice ChooseFromEstimate(double estimated_rows,
                              std::uint64_t table_pages,
                              std::uint32_t tuples_per_page,
                              std::uint32_t index_entries_per_leaf,
                              const CostModel& cost_model) {
  PlanChoice choice;
  choice.estimated_rows = estimated_rows;
  choice.full_scan_cost =
      static_cast<double>(table_pages) * cost_model.sequential_page_cost;
  const double leaf_cost =
      std::ceil(choice.estimated_rows /
                static_cast<double>(index_entries_per_leaf));
  choice.index_scan_cost =
      (leaf_cost +
       YaoPagesTouched(table_pages, tuples_per_page, choice.estimated_rows)) *
      cost_model.random_page_cost;
  choice.path = (choice.index_scan_cost < choice.full_scan_cost)
                    ? AccessPath::kIndexRangeScan
                    : AccessPath::kFullScan;
  return choice;
}

}  // namespace

PlanChoice ChooseAccessPath(const HistogramModel& model,
                            const RangeQuery& query,
                            std::uint64_t table_pages,
                            std::uint32_t tuples_per_page,
                            std::uint32_t index_entries_per_leaf,
                            const CostModel& cost_model) {
  return ChooseFromEstimate(model.EstimateRangeCount(query), table_pages,
                            tuples_per_page, index_entries_per_leaf,
                            cost_model);
}

PlanChoice ChooseAccessPath(const ColumnStatistics& stats,
                            const RangeQuery& query,
                            std::uint64_t table_pages,
                            std::uint32_t tuples_per_page,
                            std::uint32_t index_entries_per_leaf,
                            const CostModel& cost_model) {
  return ChooseFromEstimate(stats.EstimateRangeCount(query), table_pages,
                            tuples_per_page, index_entries_per_leaf,
                            cost_model);
}

ExecutionResult ExecutePlan(const Table& table, const OrderedIndex& index,
                            const RangeQuery& query, AccessPath path,
                            ThreadPool* pool) {
  Result<ExecutionResult> result =
      ExecutePlanChecked(table, index, query, path, pool);
  if (!result.ok()) {
    AbortOnStatus(result.status(),
                  "ExecutePlan on faulty storage (use ExecutePlanChecked)");
  }
  return std::move(result).value();
}

Result<ExecutionResult> ExecutePlanChecked(const Table& table,
                                           const OrderedIndex& index,
                                           const RangeQuery& query,
                                           AccessPath path, ThreadPool* pool,
                                           const RetryPolicy& policy) {
  ExecutionResult result;
  result.path = path;
  if (path == AccessPath::kIndexRangeScan) {
    EQUIHIST_ASSIGN_OR_RETURN(
        result.rows, index.RangeScanChecked(table, query, &result.io, policy));
    return result;
  }
  // Full scan through the shared storage primitive (parallel page reads
  // with a pool, identical I/O bill either way), then count matches.
  EQUIHIST_ASSIGN_OR_RETURN(
      const std::vector<Value> values,
      FullScanChecked(table, &result.io, pool, policy));
  for (Value v : values) {
    if (query.lo < v && v <= query.hi) ++result.rows;
  }
  return result;
}

}  // namespace equihist
