#include "query/planner.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/range_estimator.h"
#include "storage/scan.h"

namespace equihist {

std::string_view AccessPathToString(AccessPath path) {
  switch (path) {
    case AccessPath::kFullScan:
      return "full-scan";
    case AccessPath::kIndexRangeScan:
      return "index-range-scan";
  }
  return "unknown";
}

double YaoPagesTouched(std::uint64_t pages, std::uint32_t tuples_per_page,
                       double matches) {
  if (pages == 0 || tuples_per_page == 0 || matches <= 0.0) return 0.0;
  const double n = static_cast<double>(pages) *
                   static_cast<double>(tuples_per_page);
  const double m = std::min(matches, n);
  // Yao's approximation: P * (1 - (1 - m/n)^b). Exact for Bernoulli
  // placement; within a fraction of a page of the hypergeometric form for
  // the sizes a cost model cares about.
  const double miss = std::pow(1.0 - m / n,
                               static_cast<double>(tuples_per_page));
  return static_cast<double>(pages) * (1.0 - miss);
}

namespace {

// The shared cost comparison, fed by whichever estimation surface the
// caller holds.
PlanChoice ChooseFromEstimate(double estimated_rows,
                              std::uint64_t table_pages,
                              std::uint32_t tuples_per_page,
                              std::uint32_t index_entries_per_leaf,
                              const CostModel& cost_model) {
  PlanChoice choice;
  choice.estimated_rows = estimated_rows;
  choice.full_scan_cost =
      static_cast<double>(table_pages) * cost_model.sequential_page_cost;
  const double leaf_cost =
      std::ceil(choice.estimated_rows /
                static_cast<double>(index_entries_per_leaf));
  choice.index_scan_cost =
      (leaf_cost +
       YaoPagesTouched(table_pages, tuples_per_page, choice.estimated_rows)) *
      cost_model.random_page_cost;
  choice.path = (choice.index_scan_cost < choice.full_scan_cost)
                    ? AccessPath::kIndexRangeScan
                    : AccessPath::kFullScan;
  return choice;
}

}  // namespace

PlanChoice ChooseAccessPath(const HistogramModel& model,
                            const RangeQuery& query,
                            std::uint64_t table_pages,
                            std::uint32_t tuples_per_page,
                            std::uint32_t index_entries_per_leaf,
                            const CostModel& cost_model) {
  return ChooseFromEstimate(model.EstimateRangeCount(query), table_pages,
                            tuples_per_page, index_entries_per_leaf,
                            cost_model);
}

PlanChoice ChooseAccessPath(const ColumnStatistics& stats,
                            const RangeQuery& query,
                            std::uint64_t table_pages,
                            std::uint32_t tuples_per_page,
                            std::uint32_t index_entries_per_leaf,
                            const CostModel& cost_model) {
  return ChooseFromEstimate(stats.EstimateRangeCount(query), table_pages,
                            tuples_per_page, index_entries_per_leaf,
                            cost_model);
}

std::vector<PlanChoice> ChooseAccessPaths(const HistogramModel& model,
                                          std::span<const RangeQuery> queries,
                                          std::uint64_t table_pages,
                                          std::uint32_t tuples_per_page,
                                          std::uint32_t index_entries_per_leaf,
                                          const CostModel& cost_model,
                                          ThreadPool* pool) {
  // One batch call produces every estimate (bitwise what the per-query
  // path computes), then costing is pure arithmetic per predicate.
  std::vector<double> estimates(queries.size());
  model.EstimateRangeCounts(queries, estimates, pool);
  std::vector<PlanChoice> choices;
  choices.reserve(queries.size());
  for (const double estimate : estimates) {
    choices.push_back(ChooseFromEstimate(estimate, table_pages,
                                         tuples_per_page,
                                         index_entries_per_leaf, cost_model));
  }
  return choices;
}

Result<std::vector<PlanChoice>> ChooseAccessPaths(
    StatisticsShard& shard, const Table& table,
    std::span<const BatchEstimateRequest> requests,
    std::uint32_t tuples_per_page, std::uint32_t index_entries_per_leaf,
    const CostModel& cost_model, bool use_pool) {
  BatchEstimateResult estimates;
  EQUIHIST_RETURN_IF_ERROR(
      shard.EstimateBatch(table, requests, &estimates, use_pool));
  std::vector<PlanChoice> choices;
  choices.reserve(requests.size());
  for (const double estimate : estimates.estimates) {
    choices.push_back(ChooseFromEstimate(estimate, table.page_count(),
                                         tuples_per_page,
                                         index_entries_per_leaf, cost_model));
  }
  return choices;
}

Result<std::vector<PlanChoice>> ChooseAccessPaths(
    StatisticsFleet& fleet, const Table& table,
    std::span<const BatchEstimateRequest> requests,
    std::uint32_t tuples_per_page, std::uint32_t index_entries_per_leaf,
    const CostModel& cost_model) {
  BatchEstimateResult estimates;
  EQUIHIST_RETURN_IF_ERROR(fleet.EstimateBatch(table, requests, &estimates));
  std::vector<PlanChoice> choices;
  choices.reserve(requests.size());
  for (const double estimate : estimates.estimates) {
    choices.push_back(ChooseFromEstimate(estimate, table.page_count(),
                                         tuples_per_page,
                                         index_entries_per_leaf, cost_model));
  }
  return choices;
}

ExecutionResult ExecutePlan(const Table& table, const OrderedIndex& index,
                            const RangeQuery& query, AccessPath path,
                            ThreadPool* pool) {
  Result<ExecutionResult> result =
      ExecutePlanChecked(table, index, query, path, pool);
  if (!result.ok()) {
    AbortOnStatus(result.status(),
                  "ExecutePlan on faulty storage (use ExecutePlanChecked)");
  }
  return std::move(result).value();
}

Result<ExecutionResult> ExecutePlanChecked(const Table& table,
                                           const OrderedIndex& index,
                                           const RangeQuery& query,
                                           AccessPath path, ThreadPool* pool,
                                           const RetryPolicy& policy) {
  // The single-query form is the batch of one; the batch full-scan arm
  // answers it with the same one-pass count the dedicated loop used to.
  EQUIHIST_ASSIGN_OR_RETURN(
      BatchExecutionResult batch,
      ExecutePlansChecked(table, index, std::span<const RangeQuery>(&query, 1),
                          path, pool, policy));
  ExecutionResult result;
  result.path = batch.path;
  result.rows = batch.rows.front();
  result.io = batch.io;
  return result;
}

Result<BatchExecutionResult> ExecutePlansChecked(
    const Table& table, const OrderedIndex& index,
    std::span<const RangeQuery> queries, AccessPath path, ThreadPool* pool,
    const RetryPolicy& policy) {
  BatchExecutionResult result;
  result.path = path;
  result.rows.assign(queries.size(), 0);
  if (queries.empty()) return result;
  if (path == AccessPath::kIndexRangeScan) {
    // One index descent per query; the I/O bill accumulates across the
    // batch just as q separate scans would have charged.
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EQUIHIST_ASSIGN_OR_RETURN(
          result.rows[i],
          index.RangeScanChecked(table, queries[i], &result.io, policy));
    }
    return result;
  }
  // Full-scan arm: ONE scan through the shared storage primitive funds the
  // entire batch (parallel page reads with a pool, identical I/O bill
  // either way). A lone query counts matches in the unsorted scan output;
  // a genuine batch sorts the scan once and answers every "lo < X <= hi"
  // as a difference of two upper bounds — q queries cost one scan plus
  // q * O(log n) instead of q scans.
  EQUIHIST_ASSIGN_OR_RETURN(std::vector<Value> values,
                            FullScanChecked(table, &result.io, pool, policy));
  if (queries.size() == 1) {
    const RangeQuery& query = queries.front();
    std::uint64_t rows = 0;
    for (const Value v : values) {
      if (query.lo < v && v <= query.hi) ++rows;
    }
    result.rows[0] = rows;
    return result;
  }
  std::sort(values.begin(), values.end());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto begin =
        std::upper_bound(values.begin(), values.end(), queries[i].lo);
    const auto end =
        std::upper_bound(values.begin(), values.end(), queries[i].hi);
    // Reversed/empty ranges give end <= begin — zero rows, exactly like
    // the predicate lo < v && v <= hi.
    result.rows[i] =
        end > begin ? static_cast<std::uint64_t>(end - begin) : 0;
  }
  return result;
}

}  // namespace equihist
