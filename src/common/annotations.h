#ifndef EQUIHIST_COMMON_ANNOTATIONS_H_
#define EQUIHIST_COMMON_ANNOTATIONS_H_

// Clang Thread Safety Analysis annotations (DESIGN.md §13).
//
// These macros attach locking contracts to types, data members, and
// functions so the *compiler* checks them on every Clang build
// (-Wthread-safety -Werror in CI): a data member declared
// GUARDED_BY(mu_) cannot be touched without mu_ held, a function
// declared REQUIRES(mu_) cannot be called without it, and a scoped lock
// type declared SCOPED_CAPABILITY is understood to hold its capability
// for its lifetime. Under GCC (and any compiler without the attribute)
// every macro expands to nothing, so annotated code is exactly as
// portable as unannotated code.
//
// Conventions used throughout the codebase:
//   - Every mutex-protected member carries GUARDED_BY(<mutex member>).
//     Data reachable through a pointer guarded by a lock uses
//     PT_GUARDED_BY.
//   - Private helpers called with a lock already held are annotated
//     REQUIRES(mu) / REQUIRES_SHARED(mu) instead of re-locking.
//   - Public entry points that must NOT be called with an internal lock
//     held (they acquire it themselves) may state EXCLUDES(mu).
//   - Suppressions (NO_THREAD_SAFETY_ANALYSIS) are allowed only with a
//     comment justifying why the analysis cannot see the invariant, and
//     are forbidden in src/ by the CI gate.
//
// The raw-attribute spellings below follow the canonical mutex.h from
// the Clang Thread Safety Analysis documentation.

#if defined(__clang__) && defined(__has_attribute)
#define EQUIHIST_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define EQUIHIST_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

// -- Type annotations --------------------------------------------------------

// Marks a type as a lockable capability ("mutex", "shared_mutex", ...).
#define CAPABILITY(x) EQUIHIST_THREAD_ANNOTATION_(capability(x))

// Marks an RAII type that acquires a capability in its constructor and
// releases it in its destructor (MutexLock and friends).
#define SCOPED_CAPABILITY EQUIHIST_THREAD_ANNOTATION_(scoped_lockable)

// -- Data-member annotations -------------------------------------------------

// The member may only be accessed while holding the given capability.
#define GUARDED_BY(x) EQUIHIST_THREAD_ANNOTATION_(guarded_by(x))

// The pointee of this pointer member may only be accessed while holding
// the given capability (the pointer itself is unguarded).
#define PT_GUARDED_BY(x) EQUIHIST_THREAD_ANNOTATION_(pt_guarded_by(x))

// -- Function annotations ----------------------------------------------------

// The caller must hold the capability exclusively / at least shared.
#define REQUIRES(...) \
  EQUIHIST_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  EQUIHIST_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// The function acquires the capability (exclusively / shared) and holds
// it on return.
#define ACQUIRE(...) \
  EQUIHIST_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  EQUIHIST_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

// The function releases the capability (generic / shared) held on entry.
#define RELEASE(...) \
  EQUIHIST_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  EQUIHIST_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

// The function must NOT be called with the capability held (it acquires
// it itself; stating this catches self-deadlock at compile time).
#define EXCLUDES(...) EQUIHIST_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// The function tries to acquire the capability and returns `b` on
// success.
#define TRY_ACQUIRE(...) \
  EQUIHIST_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  EQUIHIST_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

// The function returns a reference to the given capability (accessors
// like Mutex::native()).
#define RETURN_CAPABILITY(x) EQUIHIST_THREAD_ANNOTATION_(lock_returned(x))

// The function asserts that the capability is held (exclusively / at
// least shared): after a call the analysis treats it as held for the
// rest of the scope. Used both for runtime lock assertions and to
// re-bind an aliased capability the analysis cannot prove equal (see
// StatisticsManager::Entry, whose state is guarded by the owning
// manager's lock through a stored pointer).
#define ASSERT_CAPABILITY(x) \
  EQUIHIST_THREAD_ANNOTATION_(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  EQUIHIST_THREAD_ANNOTATION_(assert_shared_capability(x))

// Opt a function out of the analysis entirely. Requires a justifying
// comment; forbidden in src/ by CI (scripts/run_clang_tidy.sh greps).
#define NO_THREAD_SAFETY_ANALYSIS \
  EQUIHIST_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // EQUIHIST_COMMON_ANNOTATIONS_H_
