#include "common/math.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace equihist {

void KahanSum::Add(double x) {
  // Kahan-Babuska (Neumaier) variant: handles terms larger than the
  // running sum correctly.
  const double t = sum_ + x;
  if (std::abs(sum_) >= std::abs(x)) {
    compensation_ += (sum_ - t) + x;
  } else {
    compensation_ += (x - t) + sum_;
  }
  sum_ = t;
}

double StableSum(std::span<const double> values) {
  KahanSum sum;
  for (double v : values) sum.Add(v);
  return sum.Value();
}

double Mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return StableSum(values) / static_cast<double>(values.size());
}

double Variance(std::span<const double> values) {
  if (values.empty()) return 0.0;
  const double mean = Mean(values);
  KahanSum sum;
  for (double v : values) sum.Add((v - mean) * (v - mean));
  return sum.Value() / static_cast<double>(values.size());
}

double GeneralizedHarmonic(std::uint64_t n, double s) {
  KahanSum sum;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum.Add(std::pow(static_cast<double>(i), -s));
  }
  return sum.Value();
}

double LogBinomial(std::uint64_t n, std::uint64_t k) {
  assert(k <= n);
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double HoeffdingTwoSidedTail(double r, double t) {
  if (r <= 0.0) return 1.0;
  const double exponent = -2.0 * t * t / r;
  const double bound = 2.0 * std::exp(exponent);
  return bound < 1.0 ? bound : 1.0;
}

std::int64_t BinarySearchFirstTrue(
    std::int64_t lo, std::int64_t hi,
    const std::function<bool(std::int64_t)>& pred) {
  if (lo > hi) return hi + 1;
  std::int64_t left = lo;
  std::int64_t right = hi;
  std::int64_t result = hi + 1;
  while (left <= right) {
    const std::int64_t mid = left + (right - left) / 2;
    if (pred(mid)) {
      result = mid;
      right = mid - 1;
    } else {
      left = mid + 1;
    }
  }
  return result;
}

std::vector<std::uint64_t> ApportionProportionally(
    std::span<const double> weights, std::uint64_t total) {
  assert(!weights.empty());
  const std::size_t d = weights.size();
  KahanSum weight_sum;
  for (double w : weights) weight_sum.Add(w);
  const double total_weight = weight_sum.Value();

  std::vector<std::uint64_t> counts(d, 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  remainders.reserve(d);
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < d; ++i) {
    const double ideal =
        (total_weight > 0.0)
            ? static_cast<double>(total) * (weights[i] / total_weight)
            : 0.0;
    const double floor_val = std::floor(ideal);
    counts[i] = static_cast<std::uint64_t>(floor_val);
    assigned += counts[i];
    remainders.emplace_back(ideal - floor_val, i);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::uint64_t leftover = (assigned <= total) ? total - assigned : 0;
  for (std::size_t i = 0; i < remainders.size() && leftover > 0; ++i) {
    ++counts[remainders[i].second];
    --leftover;
  }
  for (std::size_t i = 0; leftover > 0; i = (i + 1) % d) {
    ++counts[i];
    --leftover;
  }
  return counts;
}

double ChiSquareStatistic(std::span<const std::uint64_t> observed,
                          std::span<const double> expected) {
  assert(observed.size() == expected.size());
  KahanSum stat;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] <= 0.0) continue;
    const double diff = static_cast<double>(observed[i]) - expected[i];
    stat.Add(diff * diff / expected[i]);
  }
  return stat.Value();
}

double NormalQuantile(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's algorithm.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double plow = 0.02425;
  static constexpr double phigh = 1.0 - plow;

  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > phigh) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double ChiSquareCriticalValue(double dof, double upper_tail_prob) {
  assert(dof > 0.0);
  assert(upper_tail_prob > 0.0 && upper_tail_prob < 1.0);
  // Wilson-Hilferty: X^2_k(alpha) ~= k * (1 - 2/(9k) + z_alpha sqrt(2/(9k)))^3.
  const double z = NormalQuantile(1.0 - upper_tail_prob);
  const double term = 1.0 - 2.0 / (9.0 * dof) + z * std::sqrt(2.0 / (9.0 * dof));
  return dof * term * term * term;
}

}  // namespace equihist
