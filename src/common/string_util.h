#ifndef EQUIHIST_COMMON_STRING_UTIL_H_
#define EQUIHIST_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace equihist {

// Formatting helpers shared by examples and experiment harnesses. The
// library core never formats anything; these exist so that every binary
// prints tables the same way.

// "1234567" -> "1,234,567".
std::string FormatWithThousands(std::uint64_t value);

// Fixed-point with `digits` decimals, e.g. FormatFixed(0.12345, 3) == "0.123".
std::string FormatFixed(double value, int digits);

// Human-readable count with K/M/G suffixes, e.g. 1'048'576 -> "1.05M".
std::string FormatCount(double value);

// Percentage with `digits` decimals: FormatPercent(0.125, 1) == "12.5%".
std::string FormatPercent(double fraction, int digits);

// Renders rows as a monospace table with a header row and column alignment.
// All rows must have the same number of cells as `header`.
std::string RenderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows);

}  // namespace equihist

#endif  // EQUIHIST_COMMON_STRING_UTIL_H_
