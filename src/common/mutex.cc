#include "common/mutex.h"

#if defined(EQUIHIST_LOCK_RANK_CHECK) && EQUIHIST_LOCK_RANK_CHECK

#include <cstdio>
#include <cstdlib>

namespace equihist::lockrank {
namespace {

// Per-thread held-lock stack. A plain-old-data thread_local (fixed array,
// no destructor) so it is safe to consult from any code that runs during
// thread or static teardown — a heap-backed container would reopen the
// destruction-order hazard this checker exists to catch bugs in.
// kMaxHeld is far above the deepest real chain (build_mu -> shard mu_ ->
// registry -> pool -> done_mu is five); overflow aborts loudly rather
// than silently dropping coverage.
constexpr int kMaxHeld = 32;

struct Held {
  const void* mu;
  const Rank* rank;
};

struct HeldStack {
  Held entries[kMaxHeld];
  int size;
};

thread_local HeldStack tls_held;

[[noreturn]] void Die(const Rank* acquiring, const Held& conflicting) {
  std::fprintf(
      stderr,
      "equihist: lock-rank inversion: acquiring \"%s\" (rank %d) while "
      "holding \"%s\" (rank %d%s)\n",
      acquiring->name, acquiring->order, conflicting.rank->name,
      conflicting.rank->order, conflicting.rank->leaf ? ", leaf" : "");
  HeldStack& stack = tls_held;
  std::fprintf(stderr, "equihist: held locks, oldest first:\n");
  for (int i = 0; i < stack.size; ++i) {
    std::fprintf(stderr, "equihist:   [%d] \"%s\" (rank %d%s)\n", i,
                 stack.entries[i].rank->name, stack.entries[i].rank->order,
                 stack.entries[i].rank->leaf ? ", leaf" : "");
  }
  std::abort();
}

void Push(const void* mu, const Rank* rank) {
  HeldStack& stack = tls_held;
  if (stack.size >= kMaxHeld) {
    std::fprintf(stderr,
                 "equihist: lock-rank held stack overflow acquiring \"%s\"\n",
                 rank->name);
    std::abort();
  }
  stack.entries[stack.size++] = Held{mu, rank};
}

}  // namespace

void NoteAcquire(const void* mu, const Rank* rank) {
  if (rank == nullptr) return;
  HeldStack& stack = tls_held;
  // A blocking acquisition must outrank EVERY held ranked lock, and may
  // not happen at all under a held leaf. Checked before the lock call so
  // an inversion aborts with a report instead of deadlocking silently.
  for (int i = 0; i < stack.size; ++i) {
    const Held& held = stack.entries[i];
    if (held.rank->leaf || rank->order <= held.rank->order) {
      Die(rank, held);
    }
  }
  Push(mu, rank);
}

void NoteTryAcquire(const void* mu, const Rank* rank) {
  if (rank == nullptr) return;
  Push(mu, rank);
}

void NoteRelease(const void* mu, const Rank* rank) {
  if (rank == nullptr) return;
  HeldStack& stack = tls_held;
  // Releases are usually LIFO but manual Lock()/Unlock() pairs may
  // interleave; remove the newest record for this mutex wherever it sits.
  for (int i = stack.size - 1; i >= 0; --i) {
    if (stack.entries[i].mu != mu) continue;
    for (int j = i; j + 1 < stack.size; ++j) {
      stack.entries[j] = stack.entries[j + 1];
    }
    --stack.size;
    return;
  }
}

}  // namespace equihist::lockrank

#endif  // EQUIHIST_LOCK_RANK_CHECK
