#ifndef EQUIHIST_COMMON_THREAD_POOL_H_
#define EQUIHIST_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace equihist {

// Resolves a user-facing thread-count knob: 0 means "all hardware threads"
// (at least 1), any other value is taken literally. This is the convention
// of CvbOptions::threads and StatisticsManager::Options::threads.
std::size_t ResolveThreadCount(std::uint64_t threads);

// The build-pipeline variant: same convention, but an explicit request is
// clamped to the hardware thread count. Statistics builds are CPU-bound
// (sorts, separator partitions), so fan-out past the core count only adds
// contention — BENCH_parallel_scaling.json measures a strict regression
// (0.75–0.97x) for threads > cores. The serving/test knob keeps the
// literal behavior of ResolveThreadCount (determinism contracts are
// expressed in shards, so a pinned thread count stays meaningful there).
std::size_t ResolveBuildThreadCount(std::uint64_t threads);

// A fixed-size work-queue thread pool, the execution substrate of the
// parallel histogram-construction engine.
//
// Design notes:
//  - ThreadPool(n) spawns n-1 workers: the thread calling ParallelFor()
//    always participates in executing its own shards, so a pool of size 1
//    runs everything inline on the caller (today's single-threaded
//    behavior, no thread is ever created) and nested ParallelFor() calls
//    from worker threads cannot deadlock — every waiter is also a worker.
//  - Work decomposition is expressed in *shards*, not threads: callers fix
//    the shard layout from the problem size alone, so the set of
//    (shard_begin, shard_end) ranges — and therefore any result assembled
//    per shard — is identical no matter how many threads execute them.
//    This is what makes the sampling pipeline bit-reproducible across
//    thread counts.
class ThreadPool {
 public:
  // `num_threads` is the total parallelism including the calling thread;
  // values < 1 are treated as 1.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total parallelism (workers + the participating caller).
  std::size_t size() const { return workers_.size() + 1; }

  // Enqueues an arbitrary task and returns a future for its result. Tasks
  // submitted from within pool tasks are fine, but waiting on a future from
  // inside a worker can idle that worker; prefer ParallelFor for fork-join
  // work and reserve Submit for top-level fan-out (StatisticsManager::
  // BuildAll).
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    if (workers_.empty()) {
      (*task)();  // size-1 pool: run inline
      return future;
    }
    Enqueue([task]() { (*task)(); });
    return future;
  }

  // Splits [begin, end) into `num_shards` contiguous shards of near-equal
  // size and calls fn(shard_begin, shard_end, shard_index) once per
  // non-empty shard, blocking until all have run. Shard boundaries depend
  // only on (begin, end, num_shards). The calling thread executes shards
  // too, so this is safe to call from inside pool tasks.
  void ParallelFor(
      std::size_t begin, std::size_t end, std::size_t num_shards,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

 private:
  struct ForState;

  void Enqueue(std::function<void()> task);
  void WorkerLoop();
  static void RunShards(const std::shared_ptr<ForState>& state);

  std::vector<std::thread> workers_;
  Mutex mu_{lockrank::kThreadPool};
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
};

}  // namespace equihist

#endif  // EQUIHIST_COMMON_THREAD_POOL_H_
