#ifndef EQUIHIST_COMMON_RESULT_H_
#define EQUIHIST_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace equihist {

// Result<T> holds either a value of type T or a non-OK Status, in the style
// of absl::StatusOr<T> / arrow::Result<T>. It is the return type of every
// fallible library function that produces a value.
//
// Usage:
//   Result<Histogram> r = BuildHistogram(...);
//   if (!r.ok()) return r.status();
//   Histogram h = std::move(r).value();
// [[nodiscard]] for the same reason as Status: discarding a Result drops
// both the value and the error (DESIGN.md §13).
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a value or a status keeps call sites terse
  // ("return histogram;" / "return Status::InvalidArgument(...)"), matching
  // the StatusOr idiom.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  // Preconditions: ok(). The &&-qualified overload moves the value out.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value, or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

// Propagates an error from a Result-returning expression, binding the value
// on success. Usable in functions returning Status or Result<U>.
#define EQUIHIST_ASSIGN_OR_RETURN(lhs, expr)       \
  EQUIHIST_ASSIGN_OR_RETURN_IMPL_(                 \
      EQUIHIST_CONCAT_(_equihist_result, __LINE__), lhs, expr)

#define EQUIHIST_CONCAT_INNER_(a, b) a##b
#define EQUIHIST_CONCAT_(a, b) EQUIHIST_CONCAT_INNER_(a, b)
#define EQUIHIST_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

}  // namespace equihist

#endif  // EQUIHIST_COMMON_RESULT_H_
