#ifndef EQUIHIST_COMMON_METRICS_H_
#define EQUIHIST_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace equihist::metrics {

// A lock-free metrics plane (DESIGN.md §16), after ClickHouse's
// CurrentMetrics / CurrentHistogramMetrics idiom: every metric is one slot
// of a fixed enum-indexed array of relaxed atomics. Recording a sample is
// a single `fetch_add(std::memory_order_relaxed)` — no locks, no
// allocation, no clock reads on counter paths — so the statistics fleet
// leaves the plane on under full serving traffic. Readers take relaxed
// snapshots: values are each individually exact but mutually unordered,
// which is the standard monitoring contract.
//
// Each StatisticsShard owns a MetricsPlane; the fleet's scheduler owns
// another; StatisticsFleet::MetricsJson() exports them all.

// Monotonic event counters.
enum class Counter : std::size_t {
  kEstimateQueries = 0,     // range estimates served (scalar + batch)
  kEstimateBatches,         // EstimateBatch calls
  kServingCacheRefreshes,   // slow-path snapshot resolutions
  kBuildsCompleted,         // full from-table builds published
  kBuildsFailed,            // build attempts that returned an error
  kIncrementalRefreshes,    // O(delta) reservoir-backed publishes
  kFallbackPublishes,       // uniform-fallback snapshots published
  kDmlRecords,              // RecordModifications/Insert/Delete calls
  kCoalescedBatches,        // combined executions covering >1 submission
  kCoalescedRequests,       // requests that rode a combined execution
  kWireFramesServed,        // wire frames dispatched successfully
  kWireFrameErrors,         // wire frames rejected (corrupt or failed)
  kSchedulerEnqueued,       // build requests admitted to the queue
  kSchedulerCoalesced,      // requests merged into an already-queued build
  kSchedulerCompleted,      // scheduled builds that finished OK
  kSchedulerFailed,         // scheduled builds that returned an error
  // Fleet transport client (stats/transport_client.h).
  kTransportRequests,        // Call() invocations (before retries/hedges)
  kTransportRetries,         // retry attempts actually taken
  kTransportHedges,          // hedge attempts launched
  kTransportHedgeWins,       // exchanges where the hedge finished first
  kTransportDeadlineExceeded,  // calls that failed with the budget spent
  kTransportBackpressure,    // typed kResourceExhausted shed rejections seen
  kTransportBreakerOpens,    // per-peer breaker open transitions
  kTransportBreakerFastFails,  // calls rejected with every breaker open
  kTransportErrors,          // calls that returned any non-OK status
  // Fleet transport server (stats/transport.h).
  kServerFramesServed,       // frames admitted, served, and replied to
  kServerRejects,            // typed rejection frames sent (any cause)
  kServerShedDrops,          // queued work shed on overflow (load shedding)
  kServerExpiredDrops,       // work dropped at admission: deadline expired
  kServerConnections,        // connections accepted over the lifetime
  kCount,
};

// Instantaneous levels (set/add; may go up and down).
enum class Gauge : std::size_t {
  kQueueDepth = 0,         // build requests waiting for admission
  kInflightBuilds,         // builds currently running under the budget
  kServerQueueDepth,       // transport work items waiting for a worker
  kServerActiveConnections,  // transport connections currently open
  kCount,
};

// Sample-distribution metrics with power-of-two buckets: bucket i counts
// samples in (2^(i-1), 2^i]; the last bucket is the +inf overflow. Sum and
// count ride along, so mean and coarse percentiles fall out of a snapshot.
enum class Hist : std::size_t {
  kBuildLatencyMicros = 0,  // wall time of one published build
  kEstimateBatchSize,       // requests per EstimateBatch call
  kCoalescedBatchSize,      // requests per combined coalescer execution
  kTransportRoundTripMicros,  // client-observed wall time per exchange
  kServerQueueWaitMicros,     // enqueue-to-dequeue wait per work item
  kCount,
};

inline constexpr std::size_t kHistBuckets = 20;  // 2^0 .. 2^18, +inf

// Stable snake_case names for JSON export and logs.
const char* Name(Counter counter);
const char* Name(Gauge gauge);
const char* Name(Hist hist);

class MetricsPlane {
 public:
  MetricsPlane() = default;
  MetricsPlane(const MetricsPlane&) = delete;
  MetricsPlane& operator=(const MetricsPlane&) = delete;

  void Increment(Counter counter, std::uint64_t delta = 1) noexcept {
    counters_[Index(counter)].fetch_add(delta, std::memory_order_relaxed);
  }

  void GaugeSet(Gauge gauge, std::uint64_t value) noexcept {
    gauges_[Index(gauge)].store(value, std::memory_order_relaxed);
  }

  void GaugeAdd(Gauge gauge, std::int64_t delta) noexcept {
    gauges_[Index(gauge)].fetch_add(static_cast<std::uint64_t>(delta),
                                    std::memory_order_relaxed);
  }

  // Records one sample into the metric's power-of-two bucket. Still a
  // handful of relaxed atomic adds — safe on any hot path that already
  // knows `value` (the caller pays for any clock read).
  void Observe(Hist hist, std::uint64_t value) noexcept {
    HistSlots& slots = hists_[Index(hist)];
    slots.buckets[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    slots.count.fetch_add(1, std::memory_order_relaxed);
    slots.sum.fetch_add(value, std::memory_order_relaxed);
  }

  std::uint64_t counter(Counter c) const noexcept {
    return counters_[Index(c)].load(std::memory_order_relaxed);
  }
  std::uint64_t gauge(Gauge g) const noexcept {
    return gauges_[Index(g)].load(std::memory_order_relaxed);
  }
  std::uint64_t hist_count(Hist h) const noexcept {
    return hists_[Index(h)].count.load(std::memory_order_relaxed);
  }
  std::uint64_t hist_sum(Hist h) const noexcept {
    return hists_[Index(h)].sum.load(std::memory_order_relaxed);
  }
  std::uint64_t hist_bucket(Hist h, std::size_t bucket) const noexcept {
    return hists_[Index(h)].buckets[bucket].load(std::memory_order_relaxed);
  }

  // The exclusive upper bound of bucket `i` (last bucket: +inf, rendered
  // as "inf" in JSON).
  static std::uint64_t BucketUpperBound(std::size_t bucket) {
    return std::uint64_t{1} << bucket;
  }

  static std::size_t BucketOf(std::uint64_t value) noexcept {
    std::size_t bucket = 0;
    while (bucket + 1 < kHistBuckets &&
           value > (std::uint64_t{1} << bucket)) {
      ++bucket;
    }
    return bucket;
  }

  // One relaxed-snapshot JSON object:
  //   {"counters":{...},"gauges":{...},"histograms":{"name":
  //     {"count":..,"sum":..,"buckets":[{"le":..,"count":..},...]}}}
  // Zero-count histogram buckets are elided to keep exports compact.
  std::string ToJson() const;

 private:
  struct HistSlots {
    std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };

  static constexpr std::size_t Index(Counter c) {
    return static_cast<std::size_t>(c);
  }
  static constexpr std::size_t Index(Gauge g) {
    return static_cast<std::size_t>(g);
  }
  static constexpr std::size_t Index(Hist h) {
    return static_cast<std::size_t>(h);
  }

  std::array<std::atomic<std::uint64_t>,
             static_cast<std::size_t>(Counter::kCount)>
      counters_{};
  std::array<std::atomic<std::uint64_t>,
             static_cast<std::size_t>(Gauge::kCount)>
      gauges_{};
  std::array<HistSlots, static_cast<std::size_t>(Hist::kCount)> hists_{};
};

}  // namespace equihist::metrics

#endif  // EQUIHIST_COMMON_METRICS_H_
