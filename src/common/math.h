#ifndef EQUIHIST_COMMON_MATH_H_
#define EQUIHIST_COMMON_MATH_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace equihist {

// Compensated (Kahan-Babuska) summation. Used wherever long series of
// floating point terms are accumulated (error metrics over hundreds of
// buckets, harmonic numbers over millions of terms) so results do not
// drift with the summation order.
class KahanSum {
 public:
  void Add(double x);
  double Value() const { return sum_ + compensation_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

// Sum of `values` using compensated summation.
double StableSum(std::span<const double> values);

// Mean of `values`; returns 0.0 for an empty span.
double Mean(std::span<const double> values);

// Population variance of `values`; returns 0.0 for an empty span.
double Variance(std::span<const double> values);

// Generalized harmonic number H_{n,s} = sum_{i=1..n} 1 / i^s.
// For s = 1 this is the ordinary harmonic number. Exact (compensated)
// summation up to n = 10^8; callers needing larger n should use
// HarmonicApprox. Precondition: n >= 0.
double GeneralizedHarmonic(std::uint64_t n, double s);

// ln(n choose k) via lgamma. Preconditions: 0 <= k <= n.
double LogBinomial(std::uint64_t n, std::uint64_t k);

// Hoeffding upper bound on P[|X - E[X]| >= t] for X a sum of r independent
// [0,1] variables: 2 * exp(-2 t^2 / r). This is the inequality behind the
// paper's Theorem 4 sampling bound; exposed so tests and docs can relate
// the implemented bounds back to first principles.
double HoeffdingTwoSidedTail(double r, double t);

// Finds the smallest integer x in [lo, hi] with pred(x) true, assuming pred
// is monotone (false...false true...true). Returns hi + 1 if pred is false
// on the whole range. Used by the bound calculators to invert closed-form
// trade-offs that are monotone but not analytically invertible.
std::int64_t BinarySearchFirstTrue(std::int64_t lo, std::int64_t hi,
                                   const std::function<bool(std::int64_t)>& pred);

// Rounds fractional shares proportional to `weights` (arbitrary positive
// scale) into integer counts summing exactly to `total`, using
// largest-remainder apportionment with deterministic tie-breaking. The
// workhorse behind synthetic-frequency generation and behind scaling a
// sample's bucket counts up to a population. weights must be non-empty.
std::vector<std::uint64_t> ApportionProportionally(
    std::span<const double> weights, std::uint64_t total);

// Pearson chi-square statistic for observed counts vs. expected counts.
// Terms with expected <= 0 are skipped. Used by the samplers' uniformity
// self-checks and by tests. Preconditions: observed.size() == expected.size().
double ChiSquareStatistic(std::span<const std::uint64_t> observed,
                          std::span<const double> expected);

// Approximate upper critical value of the chi-square distribution with
// `dof` degrees of freedom at the given upper-tail probability, using the
// Wilson-Hilferty cube approximation. Accurate to a few percent for
// dof >= 3, which is ample for the statistical sanity tests that use it.
double ChiSquareCriticalValue(double dof, double upper_tail_prob);

// Inverse of the standard normal CDF (Acklam's rational approximation,
// |error| < 1.2e-8). Used by ChiSquareCriticalValue and by confidence
// interval helpers in the experiment harness.
double NormalQuantile(double p);

}  // namespace equihist

#endif  // EQUIHIST_COMMON_MATH_H_
