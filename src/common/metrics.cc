#include "common/metrics.h"

#include <cstddef>

namespace equihist::metrics {

const char* Name(Counter counter) {
  switch (counter) {
    case Counter::kEstimateQueries:
      return "estimate_queries";
    case Counter::kEstimateBatches:
      return "estimate_batches";
    case Counter::kServingCacheRefreshes:
      return "serving_cache_refreshes";
    case Counter::kBuildsCompleted:
      return "builds_completed";
    case Counter::kBuildsFailed:
      return "builds_failed";
    case Counter::kIncrementalRefreshes:
      return "incremental_refreshes";
    case Counter::kFallbackPublishes:
      return "fallback_publishes";
    case Counter::kDmlRecords:
      return "dml_records";
    case Counter::kCoalescedBatches:
      return "coalesced_batches";
    case Counter::kCoalescedRequests:
      return "coalesced_requests";
    case Counter::kWireFramesServed:
      return "wire_frames_served";
    case Counter::kWireFrameErrors:
      return "wire_frame_errors";
    case Counter::kSchedulerEnqueued:
      return "scheduler_enqueued";
    case Counter::kSchedulerCoalesced:
      return "scheduler_coalesced";
    case Counter::kSchedulerCompleted:
      return "scheduler_completed";
    case Counter::kSchedulerFailed:
      return "scheduler_failed";
    case Counter::kTransportRequests:
      return "transport_requests";
    case Counter::kTransportRetries:
      return "transport_retries";
    case Counter::kTransportHedges:
      return "transport_hedges";
    case Counter::kTransportHedgeWins:
      return "transport_hedge_wins";
    case Counter::kTransportDeadlineExceeded:
      return "transport_deadline_exceeded";
    case Counter::kTransportBackpressure:
      return "transport_backpressure";
    case Counter::kTransportBreakerOpens:
      return "transport_breaker_opens";
    case Counter::kTransportBreakerFastFails:
      return "transport_breaker_fast_fails";
    case Counter::kTransportErrors:
      return "transport_errors";
    case Counter::kServerFramesServed:
      return "server_frames_served";
    case Counter::kServerRejects:
      return "server_rejects";
    case Counter::kServerShedDrops:
      return "server_shed_drops";
    case Counter::kServerExpiredDrops:
      return "server_expired_drops";
    case Counter::kServerConnections:
      return "server_connections";
    case Counter::kCount:
      break;
  }
  return "unknown_counter";
}

const char* Name(Gauge gauge) {
  switch (gauge) {
    case Gauge::kQueueDepth:
      return "queue_depth";
    case Gauge::kInflightBuilds:
      return "inflight_builds";
    case Gauge::kServerQueueDepth:
      return "server_queue_depth";
    case Gauge::kServerActiveConnections:
      return "server_active_connections";
    case Gauge::kCount:
      break;
  }
  return "unknown_gauge";
}

const char* Name(Hist hist) {
  switch (hist) {
    case Hist::kBuildLatencyMicros:
      return "build_latency_micros";
    case Hist::kEstimateBatchSize:
      return "estimate_batch_size";
    case Hist::kCoalescedBatchSize:
      return "coalesced_batch_size";
    case Hist::kTransportRoundTripMicros:
      return "transport_round_trip_micros";
    case Hist::kServerQueueWaitMicros:
      return "server_queue_wait_micros";
    case Hist::kCount:
      break;
  }
  return "unknown_hist";
}

std::string MetricsPlane::ToJson() const {
  std::string out = "{\"counters\":{";
  for (std::size_t i = 0; i < static_cast<std::size_t>(Counter::kCount);
       ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += Name(static_cast<Counter>(i));
    out += "\":";
    out += std::to_string(counter(static_cast<Counter>(i)));
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < static_cast<std::size_t>(Gauge::kCount); ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += Name(static_cast<Gauge>(i));
    out += "\":";
    out += std::to_string(gauge(static_cast<Gauge>(i)));
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < static_cast<std::size_t>(Hist::kCount); ++i) {
    const Hist h = static_cast<Hist>(i);
    if (i != 0) out += ',';
    out += '"';
    out += Name(h);
    out += "\":{\"count\":";
    out += std::to_string(hist_count(h));
    out += ",\"sum\":";
    out += std::to_string(hist_sum(h));
    out += ",\"buckets\":[";
    bool first = true;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      const std::uint64_t n = hist_bucket(h, b);
      if (n == 0) continue;
      if (!first) out += ',';
      first = false;
      out += "{\"le\":";
      if (b + 1 == kHistBuckets) {
        out += "\"inf\"";
      } else {
        out += std::to_string(BucketUpperBound(b));
      }
      out += ",\"count\":";
      out += std::to_string(n);
      out += '}';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace equihist::metrics
