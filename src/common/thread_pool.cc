#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace equihist {

std::size_t ResolveThreadCount(std::uint64_t threads) {
  if (threads != 0) return static_cast<std::size_t>(threads);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t ResolveBuildThreadCount(std::uint64_t threads) {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t cores = hw == 0 ? 1 : static_cast<std::size_t>(hw);
  if (threads == 0) return cores;
  return std::min(static_cast<std::size_t>(threads), cores);
}

// Shared bookkeeping of one ParallelFor call: shards are claimed with a
// fetch_add so each runs exactly once, whichever thread gets there first.
struct ThreadPool::ForState {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t num_shards = 0;
  const std::function<void(std::size_t, std::size_t, std::size_t)>* fn =
      nullptr;
  std::atomic<std::size_t> next_shard{0};
  std::atomic<std::size_t> finished{0};
  Mutex done_mu{lockrank::kThreadPoolDone};
  CondVar done_cv;
};

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t extra = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(extra);
  for (std::size_t i = 0; i < extra; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      cv_.Wait(mu_, [this]() REQUIRES(mu_) {
        return stopping_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::RunShards(const std::shared_ptr<ForState>& state) {
  const std::size_t range = state->end - state->begin;
  const std::size_t shards = state->num_shards;
  std::size_t executed = 0;
  for (;;) {
    const std::size_t s = state->next_shard.fetch_add(1);
    if (s >= shards) break;
    const std::size_t lo = state->begin + range * s / shards;
    const std::size_t hi = state->begin + range * (s + 1) / shards;
    if (lo < hi) (*state->fn)(lo, hi, s);
    ++executed;
  }
  if (executed == 0) return;
  const std::size_t done = state->finished.fetch_add(executed) + executed;
  if (done == shards) {
    // Lock/unlock pairs with the waiter's predicate check so the notify
    // cannot race past a waiter that has not yet slept.
    MutexLock lock(state->done_mu);
    state->done_cv.NotifyAll();
  }
}

void ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end, std::size_t num_shards,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  if (num_shards == 0) num_shards = 1;
  if (workers_.empty() || num_shards == 1) {
    // Inline execution with the same shard layout: bit-identical work
    // decomposition at every thread count.
    const std::size_t range = end - begin;
    for (std::size_t s = 0; s < num_shards; ++s) {
      const std::size_t lo = begin + range * s / num_shards;
      const std::size_t hi = begin + range * (s + 1) / num_shards;
      if (lo < hi) fn(lo, hi, s);
    }
    return;
  }

  auto state = std::make_shared<ForState>();
  state->begin = begin;
  state->end = end;
  state->num_shards = num_shards;
  state->fn = &fn;

  const std::size_t helpers = std::min(workers_.size(), num_shards - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    Enqueue([state]() { RunShards(state); });
  }
  RunShards(state);  // the caller is always a worker

  MutexLock lock(state->done_mu);
  state->done_cv.Wait(state->done_mu, [&state]() {
    return state->finished.load() == state->num_shards;
  });
}

}  // namespace equihist
