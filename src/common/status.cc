#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace equihist {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code_));
  result += ": ";
  result += message_;
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

[[noreturn]] void AbortOnStatus(const Status& status,
                                std::string_view context) {
  std::fprintf(stderr, "%.*s: %s\n", static_cast<int>(context.size()),
               context.data(), status.ToString().c_str());
  std::abort();
}

}  // namespace equihist
