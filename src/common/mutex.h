#ifndef EQUIHIST_COMMON_MUTEX_H_
#define EQUIHIST_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/annotations.h"

namespace equihist {

// Annotated wrappers over the standard mutex types (DESIGN.md §13).
//
// std::mutex and std::shared_mutex carry no thread-safety-analysis
// attributes, so data guarded by them cannot be checked by Clang's
// -Wthread-safety. These zero-overhead wrappers add the CAPABILITY
// annotations; every lock in the library is one of these, and every
// piece of guarded state is declared GUARDED_BY one of them. The
// wrappers also satisfy the standard BasicLockable / Lockable /
// SharedLockable requirements (lock/unlock/try_lock spellings), so they
// remain usable with std facilities where needed.

// Exclusive mutex. Prefer the scoped MutexLock over manual
// Lock()/Unlock() pairs.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Standard Lockable spellings (std interop: std::lock_guard<Mutex>,
  // condition_variable_any). Same contracts as the named methods.
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// Reader/writer mutex: many concurrent shared holders or one exclusive
// holder. Prefer the scoped WriterMutexLock / ReaderMutexLock.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void ReaderLock() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool ReaderTryLock() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

  // Standard SharedLockable spellings.
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

// RAII exclusive lock over a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

// RAII exclusive lock over a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared (reader) lock over a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.ReaderLock();
  }
  // Generic release: the analysis pairs it with the shared acquire above.
  ~ReaderMutexLock() RELEASE() { mu_.ReaderUnlock(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable paired with Mutex. Wait takes the Mutex (not the
// scoped lock) so the REQUIRES contract names the capability the
// analysis tracks; from the analysis's point of view the mutex stays
// held across the wait, which matches what the caller may assume about
// its guarded state before and after.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // The wait adopts the mutex the caller already holds (via MutexLock)
  // and hands ownership back before returning, so the caller's scoped
  // lock stays the sole owner.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status;
  }

  // Predicate form: waits until pred() holds or `timeout` elapses. Returns
  // pred()'s final value — false means the deadline fired with the
  // condition still unmet. The deadline-bounded waits of the fleet
  // transport layer (coalescer followers, hedged exchanges) all go through
  // this: no wait in that stack may ever be unbounded.
  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
               Predicate pred) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_for(lock, timeout, std::move(pred));
    lock.release();
    return satisfied;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // std::condition_variable (not _any): Mutex wraps exactly std::mutex,
  // so the fast native-handle path applies.
  std::condition_variable cv_;
};

}  // namespace equihist

#endif  // EQUIHIST_COMMON_MUTEX_H_
