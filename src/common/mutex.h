#ifndef EQUIHIST_COMMON_MUTEX_H_
#define EQUIHIST_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/annotations.h"

namespace equihist {

// Annotated wrappers over the standard mutex types (DESIGN.md §13).
//
// std::mutex and std::shared_mutex carry no thread-safety-analysis
// attributes, so data guarded by them cannot be checked by Clang's
// -Wthread-safety. These wrappers add the CAPABILITY annotations; every
// lock in the library is one of these, and every piece of guarded state
// is declared GUARDED_BY one of them. The wrappers also satisfy the
// standard BasicLockable / Lockable / SharedLockable requirements
// (lock/unlock/try_lock spellings), so they remain usable with std
// facilities where needed.
//
// On top of the compile-time annotations the wrappers carry an optional
// *lock rank* (DESIGN.md §18): every mutex constructed in src/ names a
// lockrank::Rank, and with EQUIHIST_LOCK_RANK_CHECK on (the default
// outside production builds) a thread-local held-rank stack verifies at
// runtime that blocking acquisitions happen in strictly increasing rank
// order — the classic total-order discipline that makes lock-order
// deadlocks impossible. An inversion aborts immediately with both lock
// names, turning a latent deadlock into a deterministic test failure.

namespace lockrank {

// One level of the lock hierarchy. Blocking acquisitions must be
// strictly increasing in `order`; a `leaf` rank additionally forbids
// acquiring ANY ranked mutex while it is held (both directions of a
// never-nests invariant in one attribute). Instances are constexpr and
// live for the program's lifetime; the full table is below.
struct Rank {
  const char* name;
  int order;
  bool leaf = false;
};

// The rank table — the real lock hierarchy of the library, lowest rank
// acquired first. DESIGN.md §18 documents why each ordered pair that
// occurs in practice occurs. Gaps of 10 leave room for future levels.
inline constexpr Rank kTransportClient{"TransportClient::mu_", 10};
inline constexpr Rank kTransportServer{"SocketTransportServer::mu_", 20};
inline constexpr Rank kSocketTransport{"SocketTransport::mu_", 30};
inline constexpr Rank kExchange{"TransportClient::Exchange::mu", 40};
inline constexpr Rank kConnectionWrite{
    "SocketTransportServer::Connection::write_mu", 50};
inline constexpr Rank kCoalescer{"BatchCoalescer::mu_", 60};
inline constexpr Rank kBuildScheduler{"BuildScheduler::mu_", 70};
inline constexpr Rank kShardBuild{"StatisticsShard::Entry::build_mu", 80};
// Leaf: the PR-7 invariant "maintenance.mu never nests with the shard's
// mu_ in either direction" — enforced, not commented. Holding it, no
// ranked lock may be acquired; rank order forbids the reverse nesting.
inline constexpr Rank kShardMaintenance{
    "StatisticsShard::MaintenanceState::mu", 90, /*leaf=*/true};
inline constexpr Rank kShardState{"StatisticsShard::mu_", 100};
inline constexpr Rank kBackendRegistry{"HistogramBackendRegistry::mu_", 110};
inline constexpr Rank kFaultInjector{"FaultInjector::mu_", 120};
inline constexpr Rank kThreadPool{"ThreadPool::mu_", 130};
inline constexpr Rank kThreadPoolDone{"ThreadPool::ForState::done_mu", 140};

#if defined(EQUIHIST_LOCK_RANK_CHECK) && EQUIHIST_LOCK_RANK_CHECK
// Checks the acquisition against this thread's held stack (aborting with
// both lock names on a rank inversion or a violated leaf), then records
// it. Called before the blocking acquire so an inversion aborts loudly
// instead of deadlocking quietly. A null rank (a default-constructed
// mutex — test-local locks, the documented exemption) is invisible to
// the checker.
void NoteAcquire(const void* mu, const Rank* rank);
// Records a successful try-acquire. No order check: a non-blocking
// acquisition cannot deadlock, but once held it constrains what may be
// acquired next exactly like a blocking one.
void NoteTryAcquire(const void* mu, const Rank* rank);
// Removes the (possibly non-LIFO) newest held record for `mu`.
void NoteRelease(const void* mu, const Rank* rank);
#else
inline void NoteAcquire(const void*, const Rank*) {}
inline void NoteTryAcquire(const void*, const Rank*) {}
inline void NoteRelease(const void*, const Rank*) {}
#endif

}  // namespace lockrank

// Exclusive mutex. Prefer the scoped MutexLock over manual
// Lock()/Unlock() pairs.
class CAPABILITY("mutex") Mutex {
 public:
  // Unranked: exempt from the lock-rank checker. Reserved for locks
  // outside the library's hierarchy (tests, examples); every Mutex
  // constructed in src/ names a rank.
  Mutex() = default;
  explicit Mutex(const lockrank::Rank& rank) : rank_(&rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    lockrank::NoteAcquire(this, rank_);
    mu_.lock();
  }
  void Unlock() RELEASE() {
    mu_.unlock();
    lockrank::NoteRelease(this, rank_);
  }
  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lockrank::NoteTryAcquire(this, rank_);
    return true;
  }

  // Standard Lockable spellings (std interop: std::lock_guard<Mutex>,
  // condition_variable_any). Same contracts as the named methods.
  void lock() ACQUIRE() { Lock(); }
  void unlock() RELEASE() { Unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return TryLock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
  const lockrank::Rank* rank_ = nullptr;
};

// Reader/writer mutex: many concurrent shared holders or one exclusive
// holder. Prefer the scoped WriterMutexLock / ReaderMutexLock. Shared
// acquisitions carry the same rank as exclusive ones — a reader-held
// lock constrains ordering exactly like a writer-held one.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  // Unranked: exempt from the lock-rank checker (see Mutex()).
  SharedMutex() = default;
  explicit SharedMutex(const lockrank::Rank& rank) : rank_(&rank) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
    lockrank::NoteAcquire(this, rank_);
    mu_.lock();
  }
  void Unlock() RELEASE() {
    mu_.unlock();
    lockrank::NoteRelease(this, rank_);
  }
  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lockrank::NoteTryAcquire(this, rank_);
    return true;
  }

  void ReaderLock() ACQUIRE_SHARED() {
    lockrank::NoteAcquire(this, rank_);
    mu_.lock_shared();
  }
  void ReaderUnlock() RELEASE_SHARED() {
    mu_.unlock_shared();
    lockrank::NoteRelease(this, rank_);
  }
  bool ReaderTryLock() TRY_ACQUIRE_SHARED(true) {
    if (!mu_.try_lock_shared()) return false;
    lockrank::NoteTryAcquire(this, rank_);
    return true;
  }

  // Standard SharedLockable spellings.
  void lock() ACQUIRE() { Lock(); }
  void unlock() RELEASE() { Unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return TryLock(); }
  void lock_shared() ACQUIRE_SHARED() { ReaderLock(); }
  void unlock_shared() RELEASE_SHARED() { ReaderUnlock(); }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) { return ReaderTryLock(); }

 private:
  std::shared_mutex mu_;
  const lockrank::Rank* rank_ = nullptr;
};

// RAII exclusive lock over a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

// RAII exclusive lock over a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared (reader) lock over a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.ReaderLock();
  }
  // Generic release: the analysis pairs it with the shared acquire above.
  ~ReaderMutexLock() RELEASE() { mu_.ReaderUnlock(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable paired with Mutex. Wait takes the Mutex (not the
// scoped lock) so the REQUIRES contract names the capability the
// analysis tracks; from the analysis's point of view the mutex stays
// held across the wait, which matches what the caller may assume about
// its guarded state before and after.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // The wait adopts the mutex the caller already holds (via MutexLock)
  // and hands ownership back before returning, so the caller's scoped
  // lock stays the sole owner.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status;
  }

  // Predicate form: waits until pred() holds or `timeout` elapses. Returns
  // pred()'s final value — false means the deadline fired with the
  // condition still unmet. The deadline-bounded waits of the fleet
  // transport layer (coalescer followers, hedged exchanges) all go through
  // this: no wait in that stack may ever be unbounded.
  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
               Predicate pred) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_for(lock, timeout, std::move(pred));
    lock.release();
    return satisfied;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // std::condition_variable (not _any): Mutex wraps exactly std::mutex,
  // so the fast native-handle path applies.
  std::condition_variable cv_;
};

}  // namespace equihist

#endif  // EQUIHIST_COMMON_MUTEX_H_
