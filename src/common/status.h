#ifndef EQUIHIST_COMMON_STATUS_H_
#define EQUIHIST_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace equihist {

// Error categories used across the library. The set is deliberately small:
// this is an algorithms library, so most failures are caller errors.
enum class StatusCode {
  kOk = 0,
  // A caller-supplied argument violates a documented precondition
  // (e.g. k <= 0, f outside (0, 1], sample larger than population).
  kInvalidArgument = 1,
  // The operation is valid but the inputs cannot support it
  // (e.g. building a k-histogram over an empty value set).
  kFailedPrecondition = 2,
  // A resource limit was hit (e.g. an adaptive sampler exhausted the table
  // without converging and exhaustive fallback was disabled).
  kResourceExhausted = 3,
  // The requested entity does not exist (e.g. page id out of range).
  kNotFound = 4,
  // Internal invariant violation: indicates a bug in this library.
  kInternal = 5,
  // A transient failure (e.g. an injected or real intermittent read
  // error). Retrying the same operation may succeed; the retry layer
  // (common/retry.h) treats exactly this code as retryable.
  kUnavailable = 6,
  // Data is permanently gone or failed integrity checks (lost page,
  // checksum mismatch). Retrying cannot help; callers must skip, resample,
  // or degrade.
  kDataLoss = 7,
  // The caller's deadline expired before the operation completed. The
  // fleet transport layer (stats/transport*.h) budgets every remote call
  // with a deadline; expiry is final for that call — the budget is gone,
  // so the retry layer never retries it.
  kDeadlineExceeded = 8,
};

// True for codes a bounded retry can plausibly clear (currently only
// kUnavailable).
inline bool IsTransientError(StatusCode code) {
  return code == StatusCode::kUnavailable;
}

// Returns a stable, human-readable name such as "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

// A cheap, value-semantic success/error carrier, in the style of
// absl::Status / rocksdb::Status. The library does not throw exceptions;
// every fallible public entry point returns Status or Result<T>.
//
// [[nodiscard]]: a dropped Status is a swallowed failure — the compiler
// rejects it on every build (the error-discipline leg of DESIGN.md §13).
// The rare call site that really may ignore an error says so explicitly
// with `std::ignore = ...;` and a comment.
//
// The OK status carries no message and allocates nothing.
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Aborts the process, printing `context` and the status. For the
// documented fault-free-only convenience APIs (FullScan, RangeScan, ...)
// that cannot report a Status: reaching a failure under one of them means
// the caller ran it on faulty storage, and failing loudly beats silently
// returning truncated data. Library code on fallible paths must propagate
// instead (EQUIHIST_RETURN_IF_ERROR / EQUIHIST_ASSIGN_OR_RETURN).
[[noreturn]] void AbortOnStatus(const Status& status, std::string_view context);

// Propagates a non-OK status to the caller. Usable only in functions
// returning Status.
#define EQUIHIST_RETURN_IF_ERROR(expr)                 \
  do {                                                 \
    ::equihist::Status _equihist_status = (expr);      \
    if (!_equihist_status.ok()) return _equihist_status; \
  } while (false)

}  // namespace equihist

#endif  // EQUIHIST_COMMON_STATUS_H_
