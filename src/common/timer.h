#ifndef EQUIHIST_COMMON_TIMER_H_
#define EQUIHIST_COMMON_TIMER_H_

#include <chrono>

namespace equihist {

// Monotonic wall-clock stopwatch used by examples and benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace equihist

#endif  // EQUIHIST_COMMON_TIMER_H_
