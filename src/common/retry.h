#ifndef EQUIHIST_COMMON_RETRY_H_
#define EQUIHIST_COMMON_RETRY_H_

#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "common/status.h"

namespace equihist {

// Bounded retry with deterministic exponential backoff, the policy every
// fault-tolerant read path in the library shares. Only kUnavailable is
// retried: transient faults are the one failure class where repeating the
// identical operation can succeed. kDataLoss / kNotFound and friends fail
// immediately — retrying a lost page only burns the fault budget.
//
// The backoff schedule is a pure function of the attempt number (no
// jitter), so tests can assert the exact delay sequence and two builds
// with the same faults behave identically.
struct RetryPolicy {
  // Total tries including the first. 1 disables retrying entirely; 0 is
  // treated as 1.
  std::uint32_t max_attempts = 3;
  // Backoff before retry i (1-based) is base << (i - 1), capped. The
  // default base of zero makes retries immediate — the simulated storage
  // layer has no congestion to wait out — while real deployments (and the
  // backoff unit tests) set a base.
  std::uint64_t base_backoff_micros = 0;
  std::uint64_t max_backoff_micros = 10'000;

  // Deterministic backoff before retry attempt `retry` (1-based: the delay
  // taken after the retry-th failure). Saturates at max_backoff_micros.
  std::uint64_t BackoffMicros(std::uint32_t retry) const {
    if (base_backoff_micros == 0 || retry == 0) return 0;
    const std::uint32_t shift = retry - 1;
    // 2^shift overflows past 63; everything that large is capped anyway.
    if (shift >= 63) return max_backoff_micros;
    const std::uint64_t factor = std::uint64_t{1} << shift;
    if (base_backoff_micros > max_backoff_micros / factor) {
      return max_backoff_micros;
    }
    return base_backoff_micros * factor;
  }

  std::uint32_t EffectiveAttempts() const {
    return max_attempts == 0 ? 1 : max_attempts;
  }
};

// Jittered variant of RetryPolicy::BackoffMicros for retry layers whose
// failures are *correlated across clients* — the fleet transport
// (stats/transport_client.h). When a peer hiccups, every client backs off
// at once; without jitter they all return at the same instant and stampede
// the recovering peer. The delay is scaled by a factor uniform in
// [1 - jitter, 1 + jitter), derived from `random_bits` (callers draw from
// a seeded Rng stream, so two runs with the same seed take identical
// delays — the determinism contract of the build-path retries carries
// over). jitter <= 0 reproduces the deterministic schedule exactly;
// jitter is clamped to [0, 1]. The result still saturates at
// max_backoff_micros.
inline std::uint64_t JitteredBackoffMicros(const RetryPolicy& policy,
                                           std::uint32_t retry, double jitter,
                                           std::uint64_t random_bits) {
  const std::uint64_t base = policy.BackoffMicros(retry);
  if (jitter <= 0.0 || base == 0) return base;
  if (jitter > 1.0) jitter = 1.0;
  // 53 uniform bits -> double in [0, 1), the common bits-to-double idiom.
  const double u =
      static_cast<double>(random_bits >> 11) * 0x1.0p-53;
  const double factor = (1.0 - jitter) + 2.0 * jitter * u;
  const double scaled = static_cast<double>(base) * factor;
  const auto max_backoff = static_cast<double>(policy.max_backoff_micros);
  return static_cast<std::uint64_t>(scaled < max_backoff ? scaled
                                                         : max_backoff);
}

namespace internal {
// Uniform code access for Status and Result<T>.
inline StatusCode CodeOf(const Status& status) { return status.code(); }
template <typename R>
StatusCode CodeOf(const R& result) {
  return result.status().code();
}
}  // namespace internal

// Runs `fn` (returning Status or Result<T>) up to policy.max_attempts
// times, sleeping the deterministic backoff between tries, retrying only
// while the result is kUnavailable. Returns the last result either way.
// When `retries` is non-null it is incremented once per retry actually
// taken — the hook the I/O accounting (IoStats::transient_retries) uses.
template <typename Fn>
auto RetryTransient(const RetryPolicy& policy, Fn&& fn,
                    std::uint64_t* retries = nullptr) -> decltype(fn()) {
  const std::uint32_t attempts = policy.EffectiveAttempts();
  auto result = fn();
  for (std::uint32_t retry = 1;
       retry < attempts && !result.ok() &&
       IsTransientError(internal::CodeOf(result));
       ++retry) {
    const std::uint64_t backoff = policy.BackoffMicros(retry);
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
    }
    if (retries != nullptr) ++*retries;
    result = fn();
  }
  return result;
}

}  // namespace equihist

#endif  // EQUIHIST_COMMON_RETRY_H_
