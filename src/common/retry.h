#ifndef EQUIHIST_COMMON_RETRY_H_
#define EQUIHIST_COMMON_RETRY_H_

#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "common/status.h"

namespace equihist {

// Bounded retry with deterministic exponential backoff, the policy every
// fault-tolerant read path in the library shares. Only kUnavailable is
// retried: transient faults are the one failure class where repeating the
// identical operation can succeed. kDataLoss / kNotFound and friends fail
// immediately — retrying a lost page only burns the fault budget.
//
// The backoff schedule is a pure function of the attempt number (no
// jitter), so tests can assert the exact delay sequence and two builds
// with the same faults behave identically.
struct RetryPolicy {
  // Total tries including the first. 1 disables retrying entirely; 0 is
  // treated as 1.
  std::uint32_t max_attempts = 3;
  // Backoff before retry i (1-based) is base << (i - 1), capped. The
  // default base of zero makes retries immediate — the simulated storage
  // layer has no congestion to wait out — while real deployments (and the
  // backoff unit tests) set a base.
  std::uint64_t base_backoff_micros = 0;
  std::uint64_t max_backoff_micros = 10'000;

  // Deterministic backoff before retry attempt `retry` (1-based: the delay
  // taken after the retry-th failure). Saturates at max_backoff_micros.
  std::uint64_t BackoffMicros(std::uint32_t retry) const {
    if (base_backoff_micros == 0 || retry == 0) return 0;
    const std::uint32_t shift = retry - 1;
    // 2^shift overflows past 63; everything that large is capped anyway.
    if (shift >= 63) return max_backoff_micros;
    const std::uint64_t factor = std::uint64_t{1} << shift;
    if (base_backoff_micros > max_backoff_micros / factor) {
      return max_backoff_micros;
    }
    return base_backoff_micros * factor;
  }

  std::uint32_t EffectiveAttempts() const {
    return max_attempts == 0 ? 1 : max_attempts;
  }
};

namespace internal {
// Uniform code access for Status and Result<T>.
inline StatusCode CodeOf(const Status& status) { return status.code(); }
template <typename R>
StatusCode CodeOf(const R& result) {
  return result.status().code();
}
}  // namespace internal

// Runs `fn` (returning Status or Result<T>) up to policy.max_attempts
// times, sleeping the deterministic backoff between tries, retrying only
// while the result is kUnavailable. Returns the last result either way.
// When `retries` is non-null it is incremented once per retry actually
// taken — the hook the I/O accounting (IoStats::transient_retries) uses.
template <typename Fn>
auto RetryTransient(const RetryPolicy& policy, Fn&& fn,
                    std::uint64_t* retries = nullptr) -> decltype(fn()) {
  const std::uint32_t attempts = policy.EffectiveAttempts();
  auto result = fn();
  for (std::uint32_t retry = 1;
       retry < attempts && !result.ok() &&
       IsTransientError(internal::CodeOf(result));
       ++retry) {
    const std::uint64_t backoff = policy.BackoffMicros(retry);
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
    }
    if (retries != nullptr) ++*retries;
    result = fn();
  }
  return result;
}

}  // namespace equihist

#endif  // EQUIHIST_COMMON_RETRY_H_
