#include "common/rng.h"

namespace equihist {
namespace {

inline std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: used only for seeding, per the xoshiro reference code.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  s_[0] = SplitMix64(sm);
  s_[1] = SplitMix64(sm);
  s_[2] = SplitMix64(sm);
  s_[3] = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = RotL(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  using u128 = unsigned __int128;
  std::uint64_t x = Next();
  u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<u128>(x) * static_cast<u128>(bound);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const std::uint64_t offset = (span == 0) ? Next() : NextBounded(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + offset);
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) on the 2^-53 grid.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::uint64_t DeriveStreamSeed(std::uint64_t seed, std::uint64_t stream) {
  // Decorrelate the stream index with the golden-ratio increment, then run
  // two SplitMix64 steps so adjacent (seed, stream) pairs land far apart.
  std::uint64_t state = seed ^ (0x9E3779B97F4A7C15ULL * (stream + 1));
  (void)SplitMix64(state);
  return SplitMix64(state);
}

Rng Rng::Split() {
  // Derive the child from fresh output, then advance this stream once more
  // so parent and child do not overlap in practice.
  const std::uint64_t child_seed = Next() ^ 0xA3EC647659359ACDULL;
  Next();
  return Rng(child_seed);
}

}  // namespace equihist
