#ifndef EQUIHIST_COMMON_RNG_H_
#define EQUIHIST_COMMON_RNG_H_

#include <cstdint>
#include <limits>

namespace equihist {

// Fast, reproducible pseudo-random number generator (xoshiro256++ by
// Blackman & Vigna). Used throughout the library instead of std::mt19937_64:
// it is ~2x faster, has a tiny state, and — unlike the standard library
// distributions — all derived quantities (uniform ints, doubles) are
// bit-reproducible across platforms and standard library versions, which the
// test suite and the experiment harnesses rely on.
//
// Satisfies the C++ UniformRandomBitGenerator requirements, so it can also
// be plugged into <random> distributions where exact reproducibility does
// not matter.
class Rng {
 public:
  using result_type = std::uint64_t;

  // Seeds the four 64-bit words of state from `seed` using splitmix64, as
  // recommended by the xoshiro authors. Any seed (including 0) is valid.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  // Next raw 64 random bits.
  std::uint64_t Next();
  result_type operator()() { return Next(); }

  // Uniform integer in [0, bound). Precondition: bound > 0.
  // Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t NextBounded(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  // Returns a new generator whose stream is independent of this one
  // (derived by jumping the state); handy for deterministic parallel or
  // per-component sub-streams.
  Rng Split();

 private:
  std::uint64_t s_[4];
};

// Derives the seed of sub-stream `stream` of `seed` by SplitMix64 mixing,
// without consuming any state from an Rng. Seeding Rng(DeriveStreamSeed(s,
// i)) gives each worker/shard i its own statistically independent stream
// that depends only on (s, i) — the addressing scheme the parallel
// samplers use to stay bit-reproducible across thread counts.
std::uint64_t DeriveStreamSeed(std::uint64_t seed, std::uint64_t stream);

}  // namespace equihist

#endif  // EQUIHIST_COMMON_RNG_H_
