#ifndef EQUIHIST_COMMON_PARALLEL_SORT_H_
#define EQUIHIST_COMMON_PARALLEL_SORT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/thread_pool.h"

namespace equihist {

// Parallel sorting primitives for the sample pipeline. All functions
// produce output identical to their sequential std:: counterparts for any
// thread count (sorting a multiset of scalars has a unique result), so the
// histogram engine stays bit-reproducible however it is scheduled. With a
// null/size-1 pool or small inputs they fall back to the sequential path.

namespace parallel_internal {

// Inputs below this size are sorted/merged sequentially: fork-join overhead
// beats the win on small data.
inline constexpr std::size_t kMinParallelElements = 1u << 14;

// Merge-path split: the number of elements to take from `a` so that the
// first `t` elements of merge(a, b) are a[0..i) and b[0..t-i).
template <typename T>
std::size_t MergeSplit(const T* a, std::size_t na, const T* b, std::size_t nb,
                       std::size_t t) {
  std::size_t lo = t > nb ? t - nb : 0;
  std::size_t hi = std::min(t, na);
  while (lo < hi) {
    const std::size_t i = lo + (hi - lo) / 2;
    const std::size_t j = t - i;
    if (j > 0 && a[i] < b[j - 1]) {
      lo = i + 1;
    } else {
      hi = i;
    }
  }
  return lo;
}

}  // namespace parallel_internal

// Merges two sorted ranges into `out` (which must hold na + nb elements),
// splitting the output into pool-sized chunks along the merge path.
template <typename T>
void ParallelMergeSorted(const T* a, std::size_t na, const T* b,
                         std::size_t nb, T* out, ThreadPool* pool) {
  const std::size_t total = na + nb;
  const std::size_t parts = pool == nullptr ? 1 : pool->size();
  if (parts <= 1 || total < parallel_internal::kMinParallelElements) {
    std::merge(a, a + na, b, b + nb, out);
    return;
  }
  std::vector<std::size_t> ai(parts + 1), bi(parts + 1);
  ai[0] = 0;
  bi[0] = 0;
  ai[parts] = na;
  bi[parts] = nb;
  for (std::size_t p = 1; p < parts; ++p) {
    const std::size_t t = total * p / parts;
    ai[p] = parallel_internal::MergeSplit(a, na, b, nb, t);
    bi[p] = t - ai[p];
  }
  pool->ParallelFor(0, parts, parts,
                    [&](std::size_t lo, std::size_t hi, std::size_t) {
                      for (std::size_t p = lo; p < hi; ++p) {
                        std::merge(a + ai[p], a + ai[p + 1], b + bi[p],
                                   b + bi[p + 1], out + ai[p] + bi[p]);
                      }
                    });
}

// Sorts `v` ascending. Parallel plan: pool-sized sorted runs, then pairwise
// parallel merges (each merge itself split along the merge path).
template <typename T>
void ParallelSort(std::vector<T>& v, ThreadPool* pool) {
  const std::size_t n = v.size();
  const std::size_t width = pool == nullptr ? 1 : pool->size();
  if (width <= 1 || n < parallel_internal::kMinParallelElements) {
    std::sort(v.begin(), v.end());
    return;
  }

  const std::size_t runs = width;
  std::vector<std::size_t> bounds(runs + 1);
  for (std::size_t r = 0; r <= runs; ++r) bounds[r] = n * r / runs;
  pool->ParallelFor(0, runs, runs,
                    [&](std::size_t lo, std::size_t hi, std::size_t) {
                      for (std::size_t r = lo; r < hi; ++r) {
                        std::sort(v.begin() + bounds[r],
                                  v.begin() + bounds[r + 1]);
                      }
                    });

  std::vector<T> scratch(n);
  T* src = v.data();
  T* dst = scratch.data();
  while (bounds.size() > 2) {
    std::vector<std::size_t> next;
    next.reserve(bounds.size() / 2 + 2);
    next.push_back(0);
    const std::size_t num_runs = bounds.size() - 1;
    std::size_t r = 0;
    for (; r + 1 < num_runs; r += 2) {
      const std::size_t a0 = bounds[r], a1 = bounds[r + 1],
                        b1 = bounds[r + 2];
      ParallelMergeSorted(src + a0, a1 - a0, src + a1, b1 - a1, dst + a0,
                          pool);
      next.push_back(b1);
    }
    if (r < num_runs) {  // odd run carries over unmerged
      std::copy(src + bounds[r], src + bounds[r + 1], dst + bounds[r]);
      next.push_back(bounds[r + 1]);
    }
    std::swap(src, dst);
    bounds = std::move(next);
  }
  if (src != v.data()) std::copy(src, src + n, v.data());
}

// Number of distinct values in a sorted range, with per-shard partial
// counts summed in shard order (deterministic).
template <typename T>
std::uint64_t CountDistinctSorted(const T* data, std::size_t n,
                                  ThreadPool* pool) {
  if (n == 0) return 0;
  const std::size_t shards = pool == nullptr ? 1 : pool->size();
  if (shards <= 1 || n < parallel_internal::kMinParallelElements) {
    std::uint64_t distinct = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == 0 || data[i] != data[i - 1]) ++distinct;
    }
    return distinct;
  }
  std::vector<std::uint64_t> partial(shards, 0);
  pool->ParallelFor(0, n, shards,
                    [&](std::size_t lo, std::size_t hi, std::size_t s) {
                      std::uint64_t count = 0;
                      for (std::size_t i = lo; i < hi; ++i) {
                        if (i == 0 || data[i] != data[i - 1]) ++count;
                      }
                      partial[s] = count;
                    });
  std::uint64_t distinct = 0;
  for (std::uint64_t c : partial) distinct += c;
  return distinct;
}

}  // namespace equihist

#endif  // EQUIHIST_COMMON_PARALLEL_SORT_H_
