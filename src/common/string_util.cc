#include "common/string_util.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace equihist {

std::string FormatWithThousands(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string FormatFixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatCount(double value) {
  const double abs = std::abs(value);
  char buf[64];
  if (abs >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", value / 1e9);
  } else if (abs >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", value / 1e6);
  } else if (abs >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fK", value / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  }
  return buf;
}

std::string FormatPercent(double fraction, int digits) {
  return FormatFixed(fraction * 100.0, digits) + "%";
}

std::string RenderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  const std::size_t cols = header.size();
  std::vector<std::size_t> widths(cols);
  for (std::size_t c = 0; c < cols; ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    assert(row.size() == cols);
    for (std::size_t c = 0; c < cols && c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out += "| ";
      out += cell;
      out.append(widths[c] - cell.size() + 1, ' ');
    }
    out += "|\n";
  };

  std::string out;
  emit_row(header, out);
  for (std::size_t c = 0; c < cols; ++c) {
    out += "|";
    out.append(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows) emit_row(row, out);
  return out;
}

}  // namespace equihist
