#ifndef EQUIHIST_EQUIHIST_H_
#define EQUIHIST_EQUIHIST_H_

// Umbrella header for the EquiHist library: random sampling for equi-height
// histogram construction, after Chaudhuri, Motwani & Narasayya, "Random
// Sampling for Histogram Construction: How much is enough?" (SIGMOD 1998).
//
// Typical flow:
//   1. Generate or load a column            data/distribution.h, storage/table.h
//   2. Decide how much to sample            core/bounds.h (Theorem 4 et al.)
//   3. Sample                               sampling/{row,block}_sampler.h
//   4. Build the histogram                  core/histogram_builder.h
//      ... or let CVB adapt for you         core/cvb.h
//   5. Measure its quality                  core/error_metrics.h
//   6. Use it in an optimizer               core/range_estimator.h
//   7. Estimate distinct values / density   distinct/estimators.h, core/density.h

#include "baseline/equi_width.h"        // IWYU pragma: export
#include "baseline/gmp_incremental.h"   // IWYU pragma: export
#include "baseline/serial_histograms.h" // IWYU pragma: export
#include "common/math.h"        // IWYU pragma: export
#include "common/metrics.h"     // IWYU pragma: export
#include "common/result.h"      // IWYU pragma: export
#include "common/rng.h"         // IWYU pragma: export
#include "common/status.h"      // IWYU pragma: export
#include "common/string_util.h" // IWYU pragma: export
#include "common/timer.h"       // IWYU pragma: export
#include "core/bounds.h"        // IWYU pragma: export
#include "core/compiled_estimator.h"    // IWYU pragma: export
#include "core/compressed_histogram.h"  // IWYU pragma: export
#include "core/cvb.h"           // IWYU pragma: export
#include "core/density.h"       // IWYU pragma: export
#include "core/error_metrics.h" // IWYU pragma: export
#include "core/histogram.h"     // IWYU pragma: export
#include "core/histogram_builder.h"     // IWYU pragma: export
#include "core/range_estimator.h"       // IWYU pragma: export
#include "data/distribution.h"  // IWYU pragma: export
#include "data/generator.h"     // IWYU pragma: export
#include "data/value_set.h"     // IWYU pragma: export
#include "data/workload.h"      // IWYU pragma: export
#include "query/index.h"        // IWYU pragma: export
#include "query/planner.h"      // IWYU pragma: export
#include "distinct/error.h"     // IWYU pragma: export
#include "distinct/estimators.h"        // IWYU pragma: export
#include "distinct/frequency_profile.h" // IWYU pragma: export
#include "sampling/block_sampler.h"     // IWYU pragma: export
#include "sampling/design_effect.h"     // IWYU pragma: export
#include "sampling/reservoir.h"         // IWYU pragma: export
#include "stats/column_statistics.h"    // IWYU pragma: export
#include "stats/histogram_backends.h"   // IWYU pragma: export
#include "stats/histogram_model.h"      // IWYU pragma: export
#include "stats/incremental_backend.h"  // IWYU pragma: export
#include "stats/join_estimator.h"       // IWYU pragma: export
#include "stats/serialization.h"        // IWYU pragma: export
#include "stats/build_scheduler.h"      // IWYU pragma: export
#include "stats/fleet_wire.h"           // IWYU pragma: export
#include "stats/statistics_fleet.h"     // IWYU pragma: export
#include "stats/statistics_manager.h"   // IWYU pragma: export
#include "stats/wire_format.h"          // IWYU pragma: export
#include "sampling/row_sampler.h"       // IWYU pragma: export
#include "sampling/sample.h"    // IWYU pragma: export
#include "sampling/schedule.h"  // IWYU pragma: export
#include "storage/heap_file.h"  // IWYU pragma: export
#include "storage/io_stats.h"   // IWYU pragma: export
#include "storage/layout.h"     // IWYU pragma: export
#include "storage/page.h"       // IWYU pragma: export
#include "storage/scan.h"       // IWYU pragma: export
#include "storage/table.h"      // IWYU pragma: export

#endif  // EQUIHIST_EQUIHIST_H_
