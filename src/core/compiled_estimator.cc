#include "core/compiled_estimator.h"

#include <algorithm>
#include <cassert>

namespace equihist {
namespace {

// Queries below this batch size are not worth a fork-join round trip.
constexpr std::size_t kParallelBatchThreshold = 512;

// Branchless binary searches over the separator array. The loop body has
// no data-dependent branch — only a conditional add the compiler lowers to
// cmov — and `len` shrinks by exactly half per iteration regardless of the
// comparison, so the search runs in a fixed ceil(log2 k) steps.
//
// Invariant: the answer (number of qualifying elements) lies in
// [base, base + len]. Probing a[base + half - 1]: if it qualifies, at
// least base + half elements do; otherwise the answer is at most
// base + half - 1 < base + (len - half).
template <bool kStrict>  // kStrict: count elements < x; else elements <= x
std::size_t BranchlessBound(const Value* a, std::size_t n, Value x) {
  std::size_t base = 0;
  std::size_t len = n;
  while (len > 1) {
    const std::size_t half = len >> 1;
    const Value probe = a[base + half - 1];
    const bool right = kStrict ? (probe < x) : (probe <= x);
    base += right ? half : 0;
    len -= half;
  }
  if (n != 0) {
    const bool take = kStrict ? (a[base] < x) : (a[base] <= x);
    base += take ? 1 : 0;
  }
  return base;
}

// Index of the first separator > x (== std::upper_bound).
std::size_t UpperBoundIndex(const std::vector<Value>& seps, Value x) {
  return BranchlessBound<false>(seps.data(), seps.size(), x);
}

// Index of the first separator >= x (== std::lower_bound).
std::size_t LowerBoundIndex(const std::vector<Value>& seps, Value x) {
  return BranchlessBound<true>(seps.data(), seps.size(), x);
}

}  // namespace

CompiledEstimator::CompiledEstimator(const Histogram& histogram)
    : k_(histogram.bucket_count()),
      lower_fence_(histogram.lower_fence()),
      upper_fence_(histogram.upper_fence()),
      separators_(histogram.separators()) {
  const std::vector<std::uint64_t>& counts = histogram.counts();
  bucket_lo_.resize(k_);
  counts_.resize(k_);
  inv_width_.resize(k_);
  cum_.resize(k_ + 1);

  // Prefix sums are accumulated in exact integer arithmetic and converted
  // once, so cum_ carries no summation-order error (exact below 2^53, the
  // same precision envelope as the reference's Kahan accumulation).
  std::uint64_t running = 0;
  for (std::uint64_t j = 0; j < k_; ++j) {
    cum_[j] = static_cast<double>(running);
    running += counts[j];
    const Value lo = histogram.BucketLowerBound(j);
    const Value hi = histogram.BucketUpperBound(j);
    bucket_lo_[j] = lo;
    counts_[j] = static_cast<double>(counts[j]);
    inv_width_[j] = (hi > lo) ? 1.0 / ValueDistance(lo, hi) : 0.0;
  }
  cum_[k_] = static_cast<double>(running);
  total_ = cum_[k_];

  // Duplicated-separator run table: for each separator, the first and last
  // index of its maximal equal-value run. Built in one pass; runs of
  // length one map to themselves.
  const std::size_t s = separators_.size();
  run_first_.resize(s);
  run_last_.resize(s);
  for (std::size_t i = 0; i < s;) {
    std::size_t j = i;
    while (j + 1 < s && separators_[j + 1] == separators_[i]) ++j;
    for (std::size_t r = i; r <= j; ++r) {
      run_first_[r] = static_cast<std::uint32_t>(i);
      run_last_[r] = static_cast<std::uint32_t>(j);
    }
    i = j + 1;
  }
}

double CompiledEstimator::Cdf(Value x) const {
  if (x >= upper_fence_) return total_;
  // x < upper_fence, so the partially covered bucket j satisfies
  // bucket_lo_[j] <= x < bucket_hi(j): it is never a zero-width spike and
  // its inv_width_ is a true inverse. Everything before it — including
  // whole duplicated-separator runs whose value is <= x — is covered by
  // the exact prefix sum.
  const std::size_t j = UpperBoundIndex(separators_, x);
  return cum_[j] +
         counts_[j] * (ValueDistance(bucket_lo_[j], x) * inv_width_[j]);
}

double CompiledEstimator::EstimateRangeCount(const RangeQuery& query) const {
  const Value lo = std::max(query.lo, lower_fence_);
  const Value hi = std::min(query.hi, upper_fence_);
  if (hi <= lo) return 0.0;
  // For astronomically wide buckets (width near 2^63) the interpolation
  // term can round a hair above the bucket count, so the difference of two
  // in-order prefix evaluations is clamped like the reference estimator's
  // term-by-term sum, which is non-negative by construction.
  return std::max(Cdf(hi) - Cdf(lo), 0.0);
}

double CompiledEstimator::EstimateRangeSelectivity(
    const RangeQuery& query) const {
  if (total_ == 0.0) return 0.0;
  return EstimateRangeCount(query) / total_;
}

double CompiledEstimator::EstimateCountAtMost(Value x) const {
  if (x <= lower_fence_) return 0.0;
  return Cdf(std::min(x, upper_fence_));
}

double CompiledEstimator::SpikeMassAt(Value v) const {
  const std::size_t i = LowerBoundIndex(separators_, v);
  if (i >= separators_.size() || separators_[i] != v) return 0.0;
  const std::size_t first = run_first_[i];
  const std::size_t last = run_last_[i];
  // Zero-width buckets pinned at v are first+1..last; bucket `first` keeps
  // the lighter values below v — unless it is itself zero-width because v
  // coincides with its lower bound (e.g. a run starting at the fence).
  const std::size_t begin =
      first + ((inv_width_[first] == 0.0) ? 0 : 1);
  return cum_[last + 1] - cum_[begin];
}

std::uint64_t CompiledEstimator::BucketIndexForValue(Value v) const {
  const std::size_t i = LowerBoundIndex(separators_, v);
  if (i < separators_.size() && separators_[i] == v) return run_last_[i];
  return i;
}

void CompiledEstimator::EstimateRangeCounts(std::span<const RangeQuery> queries,
                                            std::span<double> out,
                                            ThreadPool* pool) const {
  assert(out.size() >= queries.size());
  const std::size_t n = queries.size();
  if (pool == nullptr || pool->size() <= 1 || n < kParallelBatchThreshold) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = EstimateRangeCount(queries[i]);
    }
    return;
  }
  // Over-decompose for load balance; per-query results are independent, so
  // the shard layout cannot affect the output.
  pool->ParallelFor(0, n, pool->size() * 8,
                    [&](std::size_t lo, std::size_t hi, std::size_t) {
                      for (std::size_t i = lo; i < hi; ++i) {
                        out[i] = EstimateRangeCount(queries[i]);
                      }
                    });
}

}  // namespace equihist
