#include "core/compiled_estimator.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>

namespace equihist {
namespace {

// Queries below this batch size are not worth a fork-join round trip.
constexpr std::size_t kParallelBatchThreshold = 512;

// Branchless binary searches over the separator array. The loop body has
// no data-dependent branch — only a conditional add the compiler lowers to
// cmov — and `len` shrinks by exactly half per iteration regardless of the
// comparison, so the search runs in a fixed ceil(log2 k) steps.
//
// Invariant: the answer (number of qualifying elements) lies in
// [base, base + len]. Probing a[base + half - 1]: if it qualifies, at
// least base + half elements do; otherwise the answer is at most
// base + half - 1 < base + (len - half).
template <bool kStrict>  // kStrict: count elements < x; else elements <= x
std::size_t BranchlessBound(const Value* a, std::size_t n, Value x) {
  std::size_t base = 0;
  std::size_t len = n;
  while (len > 1) {
    const std::size_t half = len >> 1;
    const Value probe = a[base + half - 1];
    const bool right = kStrict ? (probe < x) : (probe <= x);
    base += right ? half : 0;
    len -= half;
  }
  if (n != 0) {
    const bool take = kStrict ? (a[base] < x) : (a[base] <= x);
    base += take ? 1 : 0;
  }
  return base;
}

// Index of the first separator > x (== std::upper_bound).
std::size_t UpperBoundIndex(const std::vector<Value>& seps, Value x) {
  return BranchlessBound<false>(seps.data(), seps.size(), x);
}

// Index of the first separator >= x (== std::lower_bound).
std::size_t LowerBoundIndex(const std::vector<Value>& seps, Value x) {
  return BranchlessBound<true>(seps.data(), seps.size(), x);
}

// Fills the 1-indexed Eytzinger array by in-order traversal of the
// implicit tree: descending left-first visits BFS slots in exactly sorted
// order, so slot `slot` receives sorted element `*next` and the rank map
// records the inverse permutation. Depth is ceil(log2 s) — safe to recurse.
void FillEytzinger(const std::vector<Value>& sorted, std::size_t slot,
                   std::size_t* next, std::vector<Value>* eytz,
                   std::vector<std::uint32_t>* rank) {
  if (slot > sorted.size()) return;
  FillEytzinger(sorted, 2 * slot, next, eytz, rank);
  (*eytz)[slot] = sorted[*next];
  (*rank)[slot] = static_cast<std::uint32_t>(*next);
  ++*next;
  FillEytzinger(sorted, 2 * slot + 1, next, eytz, rank);
}

}  // namespace

CompiledEstimator::CompiledEstimator(const Histogram& histogram)
    : k_(histogram.bucket_count()),
      lower_fence_(histogram.lower_fence()),
      upper_fence_(histogram.upper_fence()),
      separators_(histogram.separators()) {
  const std::vector<std::uint64_t>& counts = histogram.counts();
  bucket_lo_.resize(k_);
  counts_.resize(k_);
  inv_width_.resize(k_);
  cum_.resize(k_ + 1);

  // Prefix sums are accumulated in exact integer arithmetic and converted
  // once, so cum_ carries no summation-order error (exact below 2^53, the
  // same precision envelope as the reference's Kahan accumulation).
  std::uint64_t running = 0;
  for (std::uint64_t j = 0; j < k_; ++j) {
    cum_[j] = static_cast<double>(running);
    running += counts[j];
    const Value lo = histogram.BucketLowerBound(j);
    const Value hi = histogram.BucketUpperBound(j);
    bucket_lo_[j] = lo;
    counts_[j] = static_cast<double>(counts[j]);
    inv_width_[j] = (hi > lo) ? 1.0 / ValueDistance(lo, hi) : 0.0;
  }
  cum_[k_] = static_cast<double>(running);
  total_ = cum_[k_];

  // Duplicated-separator run table: for each separator, the first and last
  // index of its maximal equal-value run. Built in one pass; runs of
  // length one map to themselves.
  const std::size_t s = separators_.size();
  run_first_.resize(s);
  run_last_.resize(s);
  for (std::size_t i = 0; i < s;) {
    std::size_t j = i;
    while (j + 1 < s && separators_[j + 1] == separators_[i]) ++j;
    for (std::size_t r = i; r <= j; ++r) {
      run_first_[r] = static_cast<std::uint32_t>(i);
      run_last_[r] = static_cast<std::uint32_t>(j);
    }
    i = j + 1;
  }

  // Eytzinger layout: slots 1..s hold the separators in implicit-BFS
  // order; slot 0 is the descent's "ran off the right edge" terminal, so
  // its rank is the whole-array upper bound s.
  eytz_.assign(s + 1, Value{0});
  eytz_rank_.assign(s + 1, static_cast<std::uint32_t>(s));
  std::size_t next = 0;
  FillEytzinger(separators_, 1, &next, &eytz_, &eytz_rank_);
}

double CompiledEstimator::InterpolateCdf(std::size_t j, Value x) const {
  // The one interpolation expression every kernel funnels through; its FP
  // operation order (mul, mul, add — contraction disabled for this TU)
  // defines the bitwise identity all kernels must reproduce.
  return cum_[j] +
         counts_[j] * (ValueDistance(bucket_lo_[j], x) * inv_width_[j]);
}

double CompiledEstimator::Cdf(Value x) const {
  if (x >= upper_fence_) return total_;
  // x < upper_fence, so the partially covered bucket j satisfies
  // bucket_lo_[j] <= x < bucket_hi(j): it is never a zero-width spike and
  // its inv_width_ is a true inverse. Everything before it — including
  // whole duplicated-separator runs whose value is <= x — is covered by
  // the exact prefix sum.
  return InterpolateCdf(UpperBoundIndex(separators_, x), x);
}

std::size_t CompiledEstimator::EytzingerUpperBound(Value x) const {
  const std::size_t limit = eytz_.size();  // s + 1
  const Value* eytz = eytz_.data();
  const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(eytz);
  std::size_t j = 1;
  while (j < limit) {
    // Pull the great-great-grandchildren's cache line pair in early. The
    // address is computed in integer space so no out-of-bounds pointer is
    // ever formed (prefetch itself is a no-op hint that cannot fault);
    // clamping the index instead costs a dependent cmp+cmov per level and
    // measurably erases the prefetch win on DRAM-resident trees.
    __builtin_prefetch(
        reinterpret_cast<const void*>(base + j * 16 * sizeof(Value)));
    j = 2 * j + static_cast<std::size_t>(eytz[j] <= x);
  }
  // The descent's bit trail encodes the answer: strip the trailing 1s
  // ("went right" steps past qualifying separators) and the final 0 to
  // recover the slot of the last subtree rooted at a separator > x, i.e.
  // the upper bound. j == 0 means every separator was <= x; the rank
  // table's slot 0 carries the sentinel s for exactly that case.
  j >>= (std::countr_one(j) + 1);
  return eytz_rank_[j];
}

double CompiledEstimator::CdfEytzinger(Value x) const {
  if (x >= upper_fence_) return total_;
  return InterpolateCdf(EytzingerUpperBound(x), x);
}

double CompiledEstimator::EstimateRangeCount(const RangeQuery& query) const {
  const Value lo = std::max(query.lo, lower_fence_);
  const Value hi = std::min(query.hi, upper_fence_);
  if (hi <= lo) return 0.0;
  // For astronomically wide buckets (width near 2^63) the interpolation
  // term can round a hair above the bucket count, so the difference of two
  // in-order prefix evaluations is clamped like the reference estimator's
  // term-by-term sum, which is non-negative by construction.
  return std::max(Cdf(hi) - Cdf(lo), 0.0);
}

double CompiledEstimator::EstimateRangeCountEytzinger(
    const RangeQuery& query) const {
  const Value lo = std::max(query.lo, lower_fence_);
  const Value hi = std::min(query.hi, upper_fence_);
  if (hi <= lo) return 0.0;
  return std::max(CdfEytzinger(hi) - CdfEytzinger(lo), 0.0);
}

double CompiledEstimator::EstimateRangeSelectivity(
    const RangeQuery& query) const {
  if (total_ == 0.0) return 0.0;
  return EstimateRangeCount(query) / total_;
}

double CompiledEstimator::EstimateCountAtMost(Value x) const {
  if (x <= lower_fence_) return 0.0;
  return Cdf(std::min(x, upper_fence_));
}

double CompiledEstimator::SpikeMassAt(Value v) const {
  const std::size_t i = LowerBoundIndex(separators_, v);
  if (i >= separators_.size() || separators_[i] != v) return 0.0;
  const std::size_t first = run_first_[i];
  const std::size_t last = run_last_[i];
  // Zero-width buckets pinned at v are first+1..last; bucket `first` keeps
  // the lighter values below v — unless it is itself zero-width because v
  // coincides with its lower bound (e.g. a run starting at the fence).
  const std::size_t begin =
      first + ((inv_width_[first] == 0.0) ? 0 : 1);
  return cum_[last + 1] - cum_[begin];
}

std::uint64_t CompiledEstimator::BucketIndexForValue(Value v) const {
  const std::size_t i = LowerBoundIndex(separators_, v);
  if (i < separators_.size() && separators_[i] == v) return run_last_[i];
  return i;
}

bool CompiledEstimator::SimdAvailable() {
  return internal::SimdKernelAvailable();
}

EstimatorKernel CompiledEstimator::ResolveKernel(
    EstimatorKernel requested) const {
  if (requested == EstimatorKernel::kAuto) {
    // Measured crossover (see DESIGN.md §14): the flat branchless search
    // wins while the separator array is cache-resident — fewer
    // instructions, and the hot top levels stay in L1 either way. Once
    // the array spills past L2 the memory-level parallelism of the SIMD
    // gather kernel (or the Eytzinger layout's deep prefetch without
    // AVX2) overtakes it.
    if (separators_.size() < kAutoVectorThreshold) {
      return EstimatorKernel::kScalar;
    }
    return SimdAvailable() ? EstimatorKernel::kSimd
                           : EstimatorKernel::kEytzinger;
  }
  if (requested == EstimatorKernel::kSimd && !SimdAvailable()) {
    return EstimatorKernel::kEytzinger;
  }
  return requested;
}

internal::EstimatorSoA CompiledEstimator::SoAView() const {
  internal::EstimatorSoA soa;
  soa.separators = separators_.data();
  soa.separator_count = separators_.size();
  soa.bucket_lo = bucket_lo_.data();
  soa.counts = counts_.data();
  soa.inv_width = inv_width_.data();
  soa.cum = cum_.data();
  soa.total = total_;
  soa.lower_fence = lower_fence_;
  soa.upper_fence = upper_fence_;
  return soa;
}

void CompiledEstimator::EstimateRangeCountsWithKernel(
    const RangeQuery* queries, double* out, std::size_t n,
    EstimatorKernel kernel) const {
  switch (kernel) {
    case EstimatorKernel::kScalar:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = EstimateRangeCount(queries[i]);
      }
      return;
    case EstimatorKernel::kSimd: {
      // The vector kernel covers whole 8-query groups; the tail runs on
      // the Eytzinger path. Because kernels are bitwise identical, where
      // the seam falls is unobservable in the output.
      const std::size_t done =
          internal::EstimateRangeCountsSimd(SoAView(), queries, out, n);
      for (std::size_t i = done; i < n; ++i) {
        out[i] = EstimateRangeCountEytzinger(queries[i]);
      }
      return;
    }
    case EstimatorKernel::kAuto:  // resolved by the caller; treat as the
    case EstimatorKernel::kEytzinger:  // default layout if it leaks through
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = EstimateRangeCountEytzinger(queries[i]);
      }
      return;
  }
}

void CompiledEstimator::EstimateRangeCounts(std::span<const RangeQuery> queries,
                                            std::span<double> out,
                                            ThreadPool* pool,
                                            EstimatorKernel kernel) const {
  assert(out.size() >= queries.size());
  const std::size_t n = queries.size();
  const EstimatorKernel resolved = ResolveKernel(kernel);
  if (pool == nullptr || pool->size() <= 1 || n < kParallelBatchThreshold) {
    EstimateRangeCountsWithKernel(queries.data(), out.data(), n, resolved);
    return;
  }
  // Over-decompose for load balance; per-query results are independent and
  // kernels are bitwise identical, so neither the shard layout nor where a
  // shard's SIMD/scalar seam falls can affect the output.
  pool->ParallelFor(0, n, pool->size() * 8,
                    [&](std::size_t lo, std::size_t hi, std::size_t) {
                      EstimateRangeCountsWithKernel(queries.data() + lo,
                                                    out.data() + lo, hi - lo,
                                                    resolved);
                    });
}

std::size_t CompiledEstimator::MemoryBytes() const {
  return separators_.size() * sizeof(Value) +
         bucket_lo_.size() * sizeof(Value) +
         counts_.size() * sizeof(double) +
         inv_width_.size() * sizeof(double) + cum_.size() * sizeof(double) +
         run_first_.size() * sizeof(std::uint32_t) +
         run_last_.size() * sizeof(std::uint32_t) +
         eytz_.size() * sizeof(Value) +
         eytz_rank_.size() * sizeof(std::uint32_t);
}

}  // namespace equihist
