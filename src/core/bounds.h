#ifndef EQUIHIST_CORE_BOUNDS_H_
#define EQUIHIST_CORE_BOUNDS_H_

#include <cstdint>

#include "common/result.h"

namespace equihist {

// The paper's analytical sampling bounds (Sections 3, 4.3 and 6.1),
// implemented as a calculator that can be solved for any of the free
// parameters — the "multi-functionality" of Example 3. All formulas are
// the paper's; functions validate parameter ranges and return Status on
// misuse.
//
// Notation: n = table size, k = buckets, r = sample size (tuples),
// delta = absolute max-error bound, f = delta / (n/k) the relative error,
// gamma = failure probability.

// -- Theorem 4 / Corollary 1: delta-deviation ------------------------------

// Smallest r with r >= 4 k ln(2n/gamma) / f^2 (Corollary 1).
// Requires n,k >= 1, f in (0,1], gamma in (0,1).
Result<std::uint64_t> DeviationSampleSize(std::uint64_t n, std::uint64_t k,
                                          double f, double gamma);

// Smallest r for an absolute deviation bound delta <= n/k (Theorem 4 form:
// r >= 4 n^2 ln(2n/gamma) / (k delta^2)).
Result<std::uint64_t> DeviationSampleSizeAbsolute(std::uint64_t n,
                                                  std::uint64_t k, double delta,
                                                  double gamma);

// The guaranteed relative error f = sqrt(4 k ln(2n/gamma) / r) for a given
// sample size (Corollary 1, solved for f). May exceed 1, meaning the sample
// is too small for any guarantee at this k.
Result<double> DeviationErrorForSampleSize(std::uint64_t n, std::uint64_t k,
                                           std::uint64_t r, double gamma);

// The largest k supportable by a sample of size r at relative error f:
// k <= r f^2 / (4 ln(2n/gamma)) (Example 3, "Determining Histogram Size").
// Returns 0 if even k = 1 is not supportable.
Result<std::uint64_t> MaxBucketsForSampleSize(std::uint64_t n, std::uint64_t r,
                                              double f, double gamma);

// The failure probability guaranteed by (n, k, f, r):
// gamma = 2 n exp(-r f^2 / (4k)), clamped to (0, 1].
Result<double> DeviationFailureProbability(std::uint64_t n, std::uint64_t k,
                                           double f, std::uint64_t r);

// Corollary 1 adjusted for sampling *without* replacement. The with-
// replacement bound is already valid verbatim for without-replacement
// sampling (Hoeffding 1963, Section 6: sums drawn without replacement are
// more concentrated), so this is a refinement, not a correction: the
// hypergeometric variance carries the finite-population factor
// (n - r)/(n - 1), which shrinks the required sample to
//   r_wor = r_wr * n / (n - 1 + r_wr),
// capped at n. Noticeable exactly when the bound approaches the table
// size — the regime where record-level sampling stops being attractive.
Result<std::uint64_t> DeviationSampleSizeWithoutReplacement(std::uint64_t n,
                                                            std::uint64_t k,
                                                            double f,
                                                            double gamma);

// -- Theorem 5: delta-separation -------------------------------------------

// Smallest r with r >= 12 n^2 ln(2k/gamma) / delta^2.
Result<std::uint64_t> SeparationSampleSize(std::uint64_t n, std::uint64_t k,
                                           double delta, double gamma);

// The guaranteed separation delta = sqrt(12 n^2 ln(2k/gamma) / r).
Result<double> SeparationErrorForSampleSize(std::uint64_t n, std::uint64_t k,
                                            std::uint64_t r, double gamma);

// -- Theorem 7: cross-validation sample sizes ------------------------------

// Part 1: s >= 4 k ln(1/gamma) / f^2 suffices for a validation sample to
// expose a histogram whose true deviation exceeds 2 f n / k.
Result<std::uint64_t> CrossValidationDetectSize(std::uint64_t k, double f,
                                                double gamma);

// Part 2: s >= 16 k ln(k/gamma) / f^2 suffices for a validation sample to
// pass a histogram whose true deviation is below f n / (2k).
Result<std::uint64_t> CrossValidationAcceptSize(std::uint64_t k, double f,
                                                double gamma);

// -- Single-query adequacy (Piatetsky-Shapiro & Connell, Section 1.1) ------

// Sample size sufficient to estimate the output size of ONE fixed range
// query with expected output `s` within +-delta tuples with probability
// 1-gamma, by a Chernoff bound on the binomial count:
// r >= 3 s n ln(2/gamma) / delta^2. This is the regime of the earliest
// sampling-for-histograms work the paper contrasts itself with
// (Piatetsky-Shapiro & Connell: adequate "given a particular query"),
// whereas DeviationSampleSize certifies *every* range query at once; the
// gap between the two — a factor ~(4/3)ln(2n/gamma)/ln(2/gamma) at
// s = n/k, delta = f n/k — is what the all-queries guarantee costs.
Result<std::uint64_t> SingleQuerySampleSize(std::uint64_t n, double s,
                                            double delta, double gamma);

// -- Theorem 6 (Gibbons-Matias-Poosala), for comparison (Example 4) --------

struct GmpBound {
  std::uint64_t r = 0;   // required sample size c k ln^2 k
  double f = 0.0;        // guaranteed variance-error fraction (c ln^2 k)^(-1/6)
  double gamma = 0.0;    // failure probability k^(1-sqrt(c)) + n^(-1/3)
  std::uint64_t min_n_theorem = 0;  // applicability: n >= k^3 (theorem statement)
  double min_n_example = 0.0;       // n >= r^3 (Example 4's stricter reading)
};

// Evaluates Theorem 6 for parameters (n, k, c). Requires k >= 3, c >= 4.
Result<GmpBound> GmpTheorem6(std::uint64_t n, std::uint64_t k, double c);

// -- Theorem 8: distinct-value estimation lower bound ----------------------

// Worst-case ratio error floor sqrt(n ln(1/gamma) / r) that *no* estimator
// can beat with probability gamma, for gamma > e^{-r}.
Result<double> DistinctValueErrorLowerBound(std::uint64_t n, std::uint64_t r,
                                            double gamma);

}  // namespace equihist

#endif  // EQUIHIST_CORE_BOUNDS_H_
