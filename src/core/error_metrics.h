#ifndef EQUIHIST_CORE_ERROR_METRICS_H_
#define EQUIHIST_CORE_ERROR_METRICS_H_

#include <cstdint>
#include <span>

#include "common/result.h"
#include "core/histogram.h"
#include "data/value_set.h"

namespace equihist {

// The three bucket-size error metrics of Section 2, all measured against
// the ideal equi-height size n/k:
//   delta_avg = sum_j |b_j - n/k| / k            (average error)
//   delta_var = sqrt( sum_j |b_j - n/k|^2 / k )  (variance error)
//   delta_max = max_j |b_j - n/k|                (the paper's max error)
// Theorem 2: delta_avg <= delta_var <= delta_max (verified by tests).
struct BucketErrorReport {
  double delta_avg = 0.0;
  double delta_var = 0.0;
  double delta_max = 0.0;

  // The metrics as fractions f of the ideal bucket size n/k
  // (delta = f * n/k). The paper reports errors in these units.
  double f_avg = 0.0;
  double f_var = 0.0;
  double f_max = 0.0;
};

// Errors of the given per-bucket sizes against ideal size n/k, where
// n = sum(bucket_sizes) and k = bucket_sizes.size(). k must be positive.
Result<BucketErrorReport> ComputeBucketErrors(
    std::span<const std::uint64_t> bucket_sizes);

// Errors of `histogram`'s separators when used to partition `population`:
// partitions the population and scores the resulting counts. This is the
// quantity the sampling bounds of Section 3 control.
Result<BucketErrorReport> ComputeHistogramErrors(const Histogram& histogram,
                                                 const ValueSet& population);

// delta-separation (Definition 2): the maximum over j of the size of the
// symmetric difference between bucket j of `a` and bucket j of `b`, with
// bucket contents drawn from `population`. Both histograms must have the
// same k. The stronger Theorem 5 bound controls this metric.
Result<std::uint64_t> SeparationError(const Histogram& a, const Histogram& b,
                                      const ValueSet& population);

// Relative deviation delta_S of a histogram with respect to a sample S
// (Definition 3): partition the (sorted) sample with the histogram's
// separators and return max_j | |S_j| - |S|/k |. The cross-validation test
// of the CVB algorithm compares this against f * |S| / k.
double RelativeDeviation(const Histogram& histogram,
                         std::span<const Value> sorted_sample);

// The duplicate-tolerant fractional max error f' (Definition 4).
// `separators` come from the accumulated sample; f_j / p_j are the
// fractions of the accumulated sample / of the validation sample that are
// <= d_j, where d_1..d_m are the *distinct* separator values. Segments are
// the gaps between consecutive distinct separators (including the segment
// above the last separator, whose reference fraction completes to 1).
//
// One refinement over the literal Definition 4: the per-segment
// denominator is floored at 1/k (one ideal bucket's share). A segment can
// claim less than a bucket when a heavy value's run ends just short of a
// quantile boundary; holding such slivers to *relative* accuracy f is pure
// granularity noise, so they are held to the Delta_max-style absolute
// accuracy f * (1/k) instead, consistent with Theorem 4's delta <= n/k
// proviso. Segments at or above a bucket's share are scored exactly as
// Definition 4 prescribes.
//
// `sorted_reference` is the sample that produced the separators (R);
// `sorted_validation` is the fresh sample (R_i). With all-distinct values
// this reduces to RelativeDeviation normalized by |S|/k (tested).
double FractionalMaxError(const Histogram& histogram,
                          std::span<const Value> sorted_reference,
                          std::span<const Value> sorted_validation);

// Deviations of the histogram's *claimed* per-bucket counts from the true
// counts obtained by partitioning `population` with its separators. For a
// sample-built histogram this is the direct empirical form of Theorem 4's
// guarantee that generalizes to duplicated data: the claimed counts carry
// the sample's per-bucket shares, so |claimed_j - true_j| <= delta = f*n/k
// is exactly what the sampling bound promises, with no contribution from
// the unavoidable bucket-granularity of heavy values. The f_* fields are
// still scaled by the ideal bucket size n/k.
Result<BucketErrorReport> ComputeClaimedErrors(const Histogram& histogram,
                                               const ValueSet& population);

// The fractional error of a histogram's *claimed* distribution against the
// true population, in the spirit of Definition 4: for each segment between
// consecutive distinct separator values (plus the final open segment), the
// claimed fraction of mass (from the histogram's bucket counts) is compared
// with the population's true fraction, scaled by the claimed fraction. This
// is the right end-to-end quality measure when duplicates make a true
// equi-height histogram impossible — the raw bucket-count max error is then
// dominated by unavoidable heavy values, whereas this metric measures only
// the part the sampling algorithm can control. Reduces to ~f_max on
// duplicate-free data (claimed counts are all ~n/k and segments are single
// buckets).
double FractionalErrorVsPopulation(const Histogram& histogram,
                                   const ValueSet& population);

}  // namespace equihist

#endif  // EQUIHIST_CORE_ERROR_METRICS_H_
