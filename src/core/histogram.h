#ifndef EQUIHIST_CORE_HISTOGRAM_H_
#define EQUIHIST_CORE_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/distribution.h"
#include "data/value_set.h"

namespace equihist {

// The mathematical distance hi - lo between two domain values, as a
// double. Computed in unsigned arithmetic because the signed subtraction
// overflows (UB) when an interval spans more than half the int64 domain —
// e.g. a bucket fenced at INT64_MIN/INT64_MAX. Precondition: lo <= hi.
inline double ValueDistance(Value lo, Value hi) {
  return static_cast<double>(static_cast<std::uint64_t>(hi) -
                             static_cast<std::uint64_t>(lo));
}

// An equi-height k-histogram (Section 2.1). The domain is partitioned by
// separators s_1 <= s_2 <= ... <= s_{k-1} into buckets
//   B_j = { v : s_{j-1} < v <= s_j },   s_0 = -inf, s_k = +inf.
// Separators may repeat when a value's multiplicity exceeds n/k (Section 5).
//
// For range estimation the histogram additionally keeps finite domain
// fences: lower_fence (exclusive lower end of bucket 1, one below the
// smallest value seen) and upper_fence (inclusive upper end of bucket k).
// These stand in for the +-infinity endpoints when interpolating inside the
// first/last bucket, the way SQL Server stores the column min/max with its
// steps.
//
// `bucket_counts` are the histogram's *claimed* sizes: exactly n/k-ish for
// a perfect histogram, the scaled estimate n/k for a sample-built one.
// True sizes under a population are obtained with PartitionCounts().
class Histogram {
 public:
  // Validates shape: counts.size() == k >= 1, separators.size() == k-1,
  // separators non-decreasing, fences ordered.
  static Result<Histogram> Create(std::vector<Value> separators,
                                  std::vector<std::uint64_t> bucket_counts,
                                  Value lower_fence, Value upper_fence);

  std::uint64_t bucket_count() const { return counts_.size(); }  // k
  std::uint64_t total() const { return total_; }                 // n

  const std::vector<Value>& separators() const { return separators_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  Value lower_fence() const { return lower_fence_; }
  Value upper_fence() const { return upper_fence_; }

  // Index in [0, k) of the bucket containing `v`. Values beyond the last
  // separator fall in bucket k-1, values at or below the lower fence in
  // bucket 0. When v equals a *duplicated* separator (a value heavier than
  // n/k, Section 5), it maps to the last bucket of the run — the
  // zero-width (v, v] spike — so its mass is pinned rather than smeared
  // across the preceding bucket's value range.
  std::uint64_t BucketIndexForValue(Value v) const;

  // Exclusive lower / inclusive upper domain boundary of bucket j, using
  // the finite fences for the outermost buckets. Precondition: j < k.
  Value BucketLowerBound(std::uint64_t j) const;
  Value BucketUpperBound(std::uint64_t j) const;

  // Partitions `population` with this histogram's separators and returns
  // the resulting per-bucket counts — the b_j of the error metrics. O(k log n).
  std::vector<std::uint64_t> PartitionCounts(const ValueSet& population) const;

  // Same for an arbitrary sorted multiset given as a span (used to
  // partition validation samples without building a ValueSet).
  std::vector<std::uint64_t> PartitionSorted(std::span<const Value> sorted) const;

  // Returns a copy of this histogram whose claimed bucket counts are the
  // true counts under `population` (for reporting / estimation with
  // measured frequencies).
  Histogram MeasuredAgainst(const ValueSet& population) const;

  // Multi-line human-readable rendering (for examples and debugging).
  std::string ToString(std::size_t max_buckets = 16) const;

 private:
  Histogram(std::vector<Value> separators, std::vector<std::uint64_t> counts,
            Value lower_fence, Value upper_fence);

  std::vector<Value> separators_;        // size k-1, non-decreasing
  std::vector<std::uint64_t> counts_;    // size k
  std::uint64_t total_ = 0;              // sum of counts_
  Value lower_fence_ = 0;
  Value upper_fence_ = 0;
};

}  // namespace equihist

#endif  // EQUIHIST_CORE_HISTOGRAM_H_
