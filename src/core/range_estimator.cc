#include "core/range_estimator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/math.h"
#include "core/compiled_estimator.h"

namespace equihist {

double EstimateRangeCount(const Histogram& histogram,
                          const RangeQuery& query) {
  // Clamp to the histogram's known domain; nothing lives outside the fences.
  const Value lo = std::max(query.lo, histogram.lower_fence());
  const Value hi = std::min(query.hi, histogram.upper_fence());
  if (hi <= lo) return 0.0;

  const std::uint64_t k = histogram.bucket_count();
  // Buckets that can intersect (lo, hi]: from the first bucket whose upper
  // boundary reaches past lo, through the last bucket whose (exclusive)
  // lower boundary is still <= hi. The upper_bound form matters for
  // duplicated separators: a zero-width spike bucket (v, v] with v == hi
  // must be visited.
  const auto& seps = histogram.separators();
  // First bucket whose upper boundary reaches past lo. (Deliberately NOT
  // BucketIndexForValue: that maps a duplicated-separator value to its
  // run's last bucket, but the earlier buckets of the run — and the light
  // bucket before it — can still intersect the range.)
  const std::uint64_t first = static_cast<std::uint64_t>(
      std::lower_bound(seps.begin(), seps.end(), lo + 1) - seps.begin());
  const std::uint64_t last = static_cast<std::uint64_t>(
      std::upper_bound(seps.begin(), seps.end(), hi) - seps.begin());

  KahanSum estimate;
  for (std::uint64_t j = first; j <= last && j < k; ++j) {
    const Value bucket_lo = histogram.BucketLowerBound(j);
    const Value bucket_hi = histogram.BucketUpperBound(j);
    const double count = static_cast<double>(histogram.counts()[j]);
    if (bucket_hi <= bucket_lo) {
      // Zero-width bucket: a single (repeated) value at bucket_hi.
      if (lo < bucket_hi && bucket_hi <= hi) estimate.Add(count);
      continue;
    }
    const Value cover_lo = std::max(lo, bucket_lo);
    const Value cover_hi = std::min(hi, bucket_hi);
    if (cover_hi <= cover_lo) continue;
    // ValueDistance: the signed subtraction would overflow for buckets
    // spanning more than half the int64 domain (INT64_MIN/MAX fences).
    const double fraction = ValueDistance(cover_lo, cover_hi) /
                            ValueDistance(bucket_lo, bucket_hi);
    estimate.Add(count * fraction);
  }
  return estimate.Value();
}

double EstimateRangeSelectivity(const Histogram& histogram,
                                const RangeQuery& query) {
  const double total = static_cast<double>(histogram.total());
  if (total == 0.0) return 0.0;
  return EstimateRangeCount(histogram, query) / total;
}

double PerfectHistogramAbsoluteErrorBound(std::uint64_t n, std::uint64_t k) {
  return 2.0 * static_cast<double>(n) / static_cast<double>(k);
}

double MaxErrorHistogramAbsoluteErrorBound(std::uint64_t n, std::uint64_t k,
                                           double f) {
  return (1.0 + f) * PerfectHistogramAbsoluteErrorBound(n, k);
}

double AvgErrorHistogramAbsoluteErrorFloor(std::uint64_t n, std::uint64_t k,
                                           double f) {
  return (1.0 + f * static_cast<double>(k) / 4.0) *
         PerfectHistogramAbsoluteErrorBound(n, k);
}

double VarErrorHistogramAbsoluteErrorFloor(std::uint64_t n, std::uint64_t k,
                                           double f, double t) {
  return (1.0 + f * std::sqrt(static_cast<double>(k) * t / 8.0)) *
         PerfectHistogramAbsoluteErrorBound(n, k);
}

Result<RangeWorkloadReport> EvaluateRangeWorkload(
    const Histogram& histogram, std::span<const RangeQuery> queries,
    const ValueSet& truth) {
  if (truth.empty()) {
    return Status::InvalidArgument("truth value set must be non-empty");
  }
  RangeWorkloadReport report;
  report.query_count = queries.size();
  KahanSum abs_sum;
  KahanSum rel_sum;
  // One O(k) compile pass, then the whole workload through the batch
  // serving core in a single call (kAuto: the SIMD kernel where the CPU
  // has one, bitwise-identical to the scalar path either way) — the same
  // trade the serving path makes; workloads are orders of magnitude
  // larger than k.
  const CompiledEstimator compiled(histogram);
  std::vector<double> estimates(queries.size());
  compiled.EstimateRangeCounts(queries, estimates);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const RangeQuery& query = queries[i];
    const double estimate = estimates[i];
    const auto actual =
        static_cast<double>(truth.CountInRange(query.lo, query.hi));
    const double abs_error = std::abs(estimate - actual);
    abs_sum.Add(abs_error);
    report.max_absolute_error = std::max(report.max_absolute_error, abs_error);
    if (actual > 0.0) {
      const double rel_error = abs_error / actual;
      rel_sum.Add(rel_error);
      report.max_relative_error =
          std::max(report.max_relative_error, rel_error);
      ++report.relative_query_count;
    }
  }
  if (report.query_count > 0) {
    report.mean_absolute_error =
        abs_sum.Value() / static_cast<double>(report.query_count);
  }
  if (report.relative_query_count > 0) {
    report.mean_relative_error =
        rel_sum.Value() / static_cast<double>(report.relative_query_count);
  }
  return report;
}

}  // namespace equihist
