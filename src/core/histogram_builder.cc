#include "core/histogram_builder.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/math.h"

namespace equihist {
namespace {

// Separator s_j (1-based j = 1..k-1) sits at sorted rank ceil(j*m/k) - 1.
std::vector<Value> QuantileSeparators(std::span<const Value> sorted,
                                      std::uint64_t k) {
  const std::uint64_t m = sorted.size();
  std::vector<Value> separators;
  separators.reserve(k - 1);
  for (std::uint64_t j = 1; j < k; ++j) {
    // ceil(j*m/k) as integer arithmetic; clamp to [1, m].
    std::uint64_t rank = (j * m + k - 1) / k;
    if (rank == 0) rank = 1;
    if (rank > m) rank = m;
    separators.push_back(sorted[rank - 1]);
  }
  return separators;
}

// Scales the sample's per-bucket counts up to the population size, keeping
// the exact total via largest-remainder rounding. With duplicate-free data
// every sample bucket holds ~m/k values and the claimed counts come out as
// the even n/k split; with duplicates the bucket holding a heavy value
// keeps its true (scaled) share — which is what the estimation quality
// metrics and the range estimator need, and what real systems persist.
std::vector<std::uint64_t> ScaledCounts(
    const std::vector<std::uint64_t>& sample_counts, std::uint64_t sample_size,
    std::uint64_t total) {
  (void)sample_size;  // the proportional shares carry the normalization
  std::vector<double> weights;
  weights.reserve(sample_counts.size());
  for (std::uint64_t c : sample_counts) {
    weights.push_back(static_cast<double>(c));
  }
  return ApportionProportionally(weights, total);
}

// Partitions the sorted values by the separators (same rule as
// Histogram::PartitionSorted: a run of duplicated separators puts the
// repeated value's mass in the run's *last*, zero-width bucket, so the
// spike is never smeared by in-bucket interpolation).
std::vector<std::uint64_t> SamplePartitionCounts(
    std::span<const Value> sorted, const std::vector<Value>& separators) {
  const std::size_t k = separators.size() + 1;
  std::vector<std::uint64_t> counts(k, 0);
  std::uint64_t prev = 0;
  for (std::size_t j = 0; j + 1 < k; ++j) {
    const bool run_continues =
        (j + 1 < separators.size()) && separators[j + 1] == separators[j];
    const auto bound =
        run_continues
            ? std::lower_bound(sorted.begin(), sorted.end(), separators[j])
            : std::upper_bound(sorted.begin(), sorted.end(), separators[j]);
    const auto cum = static_cast<std::uint64_t>(bound - sorted.begin());
    counts[j] = cum - prev;
    prev = cum;
  }
  counts[k - 1] = sorted.size() - prev;
  return counts;
}

Status ValidateInputs(std::uint64_t m, std::uint64_t k) {
  if (k == 0) return Status::InvalidArgument("k must be at least 1");
  if (m == 0) {
    return Status::FailedPrecondition(
        "cannot build a histogram over an empty value set");
  }
  return Status::OK();
}

}  // namespace

Result<Histogram> BuildPerfectHistogram(const ValueSet& population,
                                        std::uint64_t k) {
  EQUIHIST_RETURN_IF_ERROR(ValidateInputs(population.size(), k));
  std::span<const Value> sorted = population.sorted_values();
  std::vector<Value> separators = QuantileSeparators(sorted, k);

  // True counts per bucket, under the run-aware partition rule.
  std::vector<std::uint64_t> counts = SamplePartitionCounts(sorted, separators);

  return Histogram::Create(std::move(separators), std::move(counts),
                           population.min() - 1, population.max());
}

Result<Histogram> BuildHistogramFromSample(std::span<const Value> sorted_sample,
                                           std::uint64_t k,
                                           std::uint64_t population_size) {
  EQUIHIST_RETURN_IF_ERROR(ValidateInputs(sorted_sample.size(), k));
  if (population_size == 0) {
    return Status::InvalidArgument("population_size must be positive");
  }
  std::vector<Value> separators = QuantileSeparators(sorted_sample, k);
  std::vector<std::uint64_t> claimed = ScaledCounts(
      SamplePartitionCounts(sorted_sample, separators), sorted_sample.size(),
      population_size);
  return Histogram::Create(std::move(separators), std::move(claimed),
                           sorted_sample.front() - 1, sorted_sample.back());
}

Result<Histogram> BuildHistogramFromSample(const Sample& sample,
                                           std::uint64_t k,
                                           std::uint64_t population_size) {
  return BuildHistogramFromSample(
      std::span<const Value>(sample.sorted_values()), k, population_size);
}

}  // namespace equihist
