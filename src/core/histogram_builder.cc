#include "core/histogram_builder.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "common/math.h"

namespace equihist {
namespace {

// Separator s_j (1-based j = 1..k-1) sits at sorted rank ceil(j*m/k) - 1.
std::vector<Value> QuantileSeparators(std::span<const Value> sorted,
                                      std::uint64_t k) {
  const std::uint64_t m = sorted.size();
  std::vector<Value> separators;
  separators.reserve(k - 1);
  for (std::uint64_t j = 1; j < k; ++j) {
    // ceil(j*m/k) as integer arithmetic; clamp to [1, m].
    std::uint64_t rank = (j * m + k - 1) / k;
    if (rank == 0) rank = 1;
    if (rank > m) rank = m;
    separators.push_back(sorted[rank - 1]);
  }
  return separators;
}

// Scales the sample's per-bucket counts up to the population size, keeping
// the exact total via largest-remainder rounding. With duplicate-free data
// every sample bucket holds ~m/k values and the claimed counts come out as
// the even n/k split; with duplicates the bucket holding a heavy value
// keeps its true (scaled) share — which is what the estimation quality
// metrics and the range estimator need, and what real systems persist.
std::vector<std::uint64_t> ScaledCounts(
    const std::vector<std::uint64_t>& sample_counts, std::uint64_t sample_size,
    std::uint64_t total) {
  (void)sample_size;  // the proportional shares carry the normalization
  std::vector<double> weights;
  weights.reserve(sample_counts.size());
  for (std::uint64_t c : sample_counts) {
    weights.push_back(static_cast<double>(c));
  }
  return ApportionProportionally(weights, total);
}

// The exclusive lower fence sits one below the smallest value seen,
// saturating at the domain minimum: INT64_MIN - 1 would be signed overflow
// (UB), so a column whose minimum is INT64_MIN keeps the fence at
// INT64_MIN and its smallest value coincides with the fence.
Value LowerFenceFor(Value minimum) {
  return minimum == std::numeric_limits<Value>::min() ? minimum : minimum - 1;
}

Status ValidateInputs(std::uint64_t m, std::uint64_t k) {
  if (k == 0) return Status::InvalidArgument("k must be at least 1");
  if (m == 0) {
    return Status::FailedPrecondition(
        "cannot build a histogram over an empty value set");
  }
  return Status::OK();
}

}  // namespace

std::vector<std::uint64_t> SamplePartitionCounts(
    std::span<const Value> sorted, const std::vector<Value>& separators,
    ThreadPool* pool) {
  const std::size_t k = separators.size() + 1;
  // Cumulative rank at each separator; each entry is an independent binary
  // search, so the separator range shards cleanly.
  std::vector<std::uint64_t> cum(k - 1, 0);
  auto fill_range = [&](std::size_t lo, std::size_t hi, std::size_t) {
    for (std::size_t j = lo; j < hi; ++j) {
      const bool run_continues =
          (j + 1 < separators.size()) && separators[j + 1] == separators[j];
      const auto bound =
          run_continues
              ? std::lower_bound(sorted.begin(), sorted.end(), separators[j])
              : std::upper_bound(sorted.begin(), sorted.end(), separators[j]);
      cum[j] = static_cast<std::uint64_t>(bound - sorted.begin());
    }
  };
  if (pool == nullptr || pool->size() <= 1 || k - 1 < 2) {
    fill_range(0, k - 1, 0);
  } else {
    pool->ParallelFor(0, k - 1, pool->size(), fill_range);
  }
  std::vector<std::uint64_t> counts(k, 0);
  std::uint64_t prev = 0;
  for (std::size_t j = 0; j + 1 < k; ++j) {
    counts[j] = cum[j] - prev;
    prev = cum[j];
  }
  counts[k - 1] = sorted.size() - prev;
  return counts;
}

Result<Histogram> BuildPerfectHistogram(const ValueSet& population,
                                        std::uint64_t k, ThreadPool* pool) {
  EQUIHIST_RETURN_IF_ERROR(ValidateInputs(population.size(), k));
  std::span<const Value> sorted = population.sorted_values();
  std::vector<Value> separators = QuantileSeparators(sorted, k);

  // True counts per bucket, under the run-aware partition rule.
  std::vector<std::uint64_t> counts =
      SamplePartitionCounts(sorted, separators, pool);

  return Histogram::Create(std::move(separators), std::move(counts),
                           LowerFenceFor(population.min()), population.max());
}

Result<Histogram> BuildHistogramFromSample(std::span<const Value> sorted_sample,
                                           std::uint64_t k,
                                           std::uint64_t population_size,
                                           ThreadPool* pool) {
  EQUIHIST_RETURN_IF_ERROR(ValidateInputs(sorted_sample.size(), k));
  if (population_size == 0) {
    return Status::InvalidArgument("population_size must be positive");
  }
  std::vector<Value> separators = QuantileSeparators(sorted_sample, k);
  std::vector<std::uint64_t> claimed = ScaledCounts(
      SamplePartitionCounts(sorted_sample, separators, pool),
      sorted_sample.size(), population_size);
  return Histogram::Create(std::move(separators), std::move(claimed),
                           LowerFenceFor(sorted_sample.front()),
                           sorted_sample.back());
}

Result<Histogram> BuildHistogramFromSample(const Sample& sample,
                                           std::uint64_t k,
                                           std::uint64_t population_size,
                                           ThreadPool* pool) {
  return BuildHistogramFromSample(
      std::span<const Value>(sample.sorted_values()), k, population_size,
      pool);
}

}  // namespace equihist
