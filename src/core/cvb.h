#ifndef EQUIHIST_CORE_CVB_H_
#define EQUIHIST_CORE_CVB_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "common/thread_pool.h"
#include "core/compressed_histogram.h"
#include "core/histogram.h"
#include "distinct/frequency_profile.h"
#include "sampling/schedule.h"
#include "storage/io_stats.h"
#include "storage/table.h"

namespace equihist {

// The paper's CVB algorithm (Cross-Validation based Block sampling,
// Section 4.2): adaptive block-level sampling whose stopping rule is a
// cross-validation test rather than a distributional assumption.
//
//   1. Compute the record-level sample size r from (n, f, k, gamma) via
//      Theorem 4 / Corollary 1, and the initial block budget g0 = r / b.
//   2. Sample g0 random blocks into the accumulated sample R and build an
//      equi-height histogram H0 from R.
//   3. Repeat: draw g_i fresh random blocks R_i (stepping schedule);
//      partition R_i with H_{i-1}'s separators and measure the deviation;
//      then merge R_i into R and rebuild H_i. Stop when the measured
//      deviation is below f * |R_i| / k.
//
// When the data in blocks is uncorrelated, the very first validation
// passes and the cost matches record-level bounds at block prices; when
// blocks are correlated the validation keeps failing and the algorithm
// transparently samples more (Figures 5 and 7).

// Which deviation statistic drives the stopping rule.
enum class CvbValidationMetric {
  // delta_S of Definition 3 compared against f*|S|/k. Exact match with the
  // paper's Step 4(b)/5 but ill-defined under heavy duplication: the bucket
  // holding a value with multiplicity > n/k never stops deviating.
  kRelativeDeviation,
  // The duplicate-tolerant fractional max error f' of Definition 4,
  // compared against f directly — the paper's Section 5 stopping rule and
  // the default. Each separator segment only needs *relative* accuracy f,
  // so heavy values converge as fast as everything else; the cost is that
  // segments claiming very little mass get large relative noise, making
  // the test somewhat conservative.
  kFractionalMaxError,
  // Claimed-count deviation: partition the validation sample with the
  // current separators and compare against the histogram's claimed counts
  // scaled to the sample size, in units of the ideal bucket s/k —
  // max_j |S_j - claimed_j * s/n| < f * s/k. Equivalent to Definition 3 on
  // duplicate-free data (claimed ~ n/k) and uniformly scaled like
  // Delta_max, but it demands a value with population share p be counted
  // to within f*n/k, which needs ~p(1-p) k^2/f^2 samples — impractical for
  // skewed columns. Use on (near-)duplicate-free data only.
  kClaimedDeviation,
};

// Which tuples of each fresh block batch feed the validation statistic
// (the "twists" discussed at the end of Section 4.2). All tuples are
// always merged into R afterwards.
enum class CvbValidationStyle {
  kAllTuples,        // validate with every tuple of R_i (default)
  kOneTuplePerBlock, // validate with one random tuple per fresh block
};

// How the initial block batch g0 is chosen.
enum class CvbInitialBudget {
  // 5 * sqrt(n) tuples, the stepping the paper's SQL Server experiments
  // used (Section 7.1): start small and let cross-validation find the
  // empirical convergence point, which is usually far below the
  // conservative bound. The default.
  kPaperSqrtN,
  // g0 = r / b with r from Theorem 4 / Corollary 1 — the Section 4.2
  // formulation. Conservative: on uncorrelated layouts the first
  // validation passes almost surely, at the price of a much larger
  // up-front sample.
  kTheorem4,
};

struct CvbOptions {
  std::uint64_t k = 600;      // histogram buckets (SQL Server's page holds 600)
  double f = 0.1;             // target relative max error
  double gamma = 0.01;        // failure probability fed to Theorem 4
  CvbInitialBudget initial_budget = CvbInitialBudget::kPaperSqrtN;
  ScheduleSpec schedule;      // batch stepping; kDoubling by default
  // The "more aggressive" adaptation sketched at the end of Section 4.2:
  // when enabled, the next batch size is chosen from the last observed
  // validation error instead of the fixed schedule —
  //   g_{i+1} = accumulated_blocks * clamp((err/f)^2 - 1, 1/4, 2),
  // i.e. fine-grained steps when the error is already near the target and
  // up to 2x-accumulated jumps when it is far above it. The paper gives no
  // formula; this realization is documented in DESIGN.md and compared in
  // bench_ablation_schedule.
  bool error_adaptive_stepping = false;
  CvbValidationMetric metric = CvbValidationMetric::kFractionalMaxError;
  CvbValidationStyle style = CvbValidationStyle::kAllTuples;
  std::uint64_t seed = 1234;
  // Hard cap on iterations; the doubling schedule exhausts any table in
  // O(log(pages)) iterations so this is a safety net, not a tuning knob.
  std::uint64_t max_iterations = 64;
  // Override for the initial block batch g0 (0 = derive from Theorem 4).
  // Used by the schedule-ablation bench to start from 5*sqrt(n) tuples.
  std::uint64_t initial_blocks_override = 0;
  // Worker threads for the build pipeline (block reads, sample sort/merge,
  // separator partitioning): 0 = one per hardware thread, 1 = fully
  // sequential (no pool is created); larger values are clamped to the
  // hardware thread count (the stages are CPU-bound, so over-subscription
  // strictly regresses). Histograms are bit-identical for every setting —
  // the parallel stages shard work by problem size, not thread count, and
  // all RNG streams stay sequential.
  std::uint64_t threads = 0;
  // Fault tolerance (DESIGN.md §11). Transient read faults are retried per
  // `retry`; blocks that stay unreadable are skipped and replaced with
  // fresh uniformly-drawn blocks (the sampler's resample path, which keeps
  // the accumulated sample uniform over the readable pages). The build
  // aborts with kDataLoss once more than `max_skipped_blocks` blocks have
  // been given up on — a budget on how much of the table may silently be
  // missing from the sample.
  RetryPolicy retry{};
  std::uint64_t max_skipped_blocks = 64;
  // When the table is exhausted before the validation passes and *no*
  // blocks were skipped, the accumulated sample is the whole table and the
  // histogram is exact — by default that is returned as a success with
  // exhausted_table set. Set false to demand convergence-by-validation and
  // get kResourceExhausted instead. Exhaustion with skipped blocks always
  // returns kResourceExhausted: the histogram would be silently missing
  // the unreadable pages' tuples.
  bool allow_exhaustive_fallback = true;
};

struct CvbIterationLog {
  std::uint64_t iteration = 0;
  std::uint64_t fresh_blocks = 0;       // blocks drawn this iteration
  std::uint64_t fresh_tuples = 0;
  std::uint64_t accumulated_tuples = 0; // |R| after the merge
  double validation_error = 0.0;        // measured statistic (normalized)
  double threshold = 0.0;               // pass threshold it was compared to
  bool passed = false;
};

struct CvbResult {
  Histogram histogram;            // built from the final accumulated sample
  bool converged = false;         // stopping rule fired (vs. table exhausted)
  bool exhausted_table = false;   // sampled every page (histogram is exact)
  std::uint64_t iterations = 0;
  std::uint64_t blocks_sampled = 0;
  // Blocks permanently unreadable after retry, each replaced by a fresh
  // uniformly-drawn block (also in io.pages_skipped). Zero on healthy
  // storage.
  std::uint64_t blocks_skipped = 0;
  std::uint64_t tuples_sampled = 0;
  double sampling_fraction = 0.0; // tuples_sampled / n
  IoStats io{};
  // Statistics collected from the accumulated sample (Section 7.1 notes
  // 3-4): distinct values seen, estimated density, the sample's
  // frequency-of-frequencies profile (input to the Section 6 distinct-value
  // estimators), and the values whose sample multiplicity exceeded r/k
  // (candidate compressed-histogram singletons, counts scaled to n).
  std::uint64_t sample_distinct = 0;
  double density_estimate = 0.0;
  FrequencyProfile sample_profile{};
  std::vector<CompressedHistogram::Singleton> heavy_hitters{};
  std::vector<CvbIterationLog> log{};
};

// Runs CVB over `table`. Returns InvalidArgument for bad options. If the
// table is exhausted before the validation passes and no blocks were
// skipped, the result carries the exact histogram with exhausted_table =
// true and converged = false (unless options.allow_exhaustive_fallback is
// off — then kResourceExhausted). Exhaustion after skips, or a skip count
// above options.max_skipped_blocks, fails with a typed error whose message
// carries the blocks-read / blocks-skipped accounting.
// When `pool` is non-null it is used for the parallel stages (and
// options.threads is ignored); otherwise a pool is created per
// options.threads when that resolves to more than one thread.
Result<CvbResult> RunCvb(const Table& table, const CvbOptions& options,
                         ThreadPool* pool = nullptr);

}  // namespace equihist

#endif  // EQUIHIST_CORE_CVB_H_
