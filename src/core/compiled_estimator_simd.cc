// The AVX2 batch kernel behind CompiledEstimator::EstimateRangeCounts
// (DESIGN.md section 14). This translation unit compiles on every
// architecture: on x86 the kernel body is compiled with
// __attribute__((target("avx2"))) — no global -mavx2 flag, so the rest of
// the binary stays baseline — and is only ever entered after a runtime
// __builtin_cpu_supports("avx2") check; everywhere else (aarch64/NEON
// etc.) the entry points compile to the guarded scalar fallback ("process
// nothing"), which callers already handle by finishing on the Eytzinger
// path.
//
// Identity contract: every step mirrors the scalar path operation for
// operation. The lane-parallel binary search performs the same comparison
// sequence as BranchlessBound<false> (len halves identically in all lanes,
// so one scalar `len` drives four vector lanes); the interpolation
// evaluates cum + counts * (dist * inv_width) as explicit mul/mul/add
// (matching the scalar TU, which disables FP contraction so the compiler
// cannot fuse it into FMA); and the u64->double conversion is exact up to
// one final rounding, the same as a scalar static_cast. The differential
// tests in tests/core_vectorized_estimator_test.cc enforce bitwise
// equality over the Section-5 spike/fence corpus.

#include "core/compiled_estimator.h"

#include <cstddef>
#include <cstdint>
#include <type_traits>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace equihist {
namespace internal {

// The kernel loads RangeQuery pairs straight from memory with vector
// loads, so pin down the layout it assumes.
static_assert(sizeof(Value) == 8, "SIMD kernel assumes 64-bit values");
static_assert(sizeof(RangeQuery) == 16 && offsetof(RangeQuery, lo) == 0 &&
                  offsetof(RangeQuery, hi) == 8,
              "SIMD kernel assumes RangeQuery is a packed {lo, hi} pair");
static_assert(std::is_trivially_copyable_v<RangeQuery>,
              "SIMD kernel loads RangeQuery bytes directly");

#if defined(__x86_64__) || defined(__i386__)

namespace {

constexpr std::size_t kLanes = 8;  // queries per pass: two 4-wide groups

// Exact u64 -> f64 conversion (only the final add rounds, so the result
// equals scalar static_cast<double>(std::uint64_t) bit for bit): split x
// into high and low 32-bit halves, plant each in the mantissa of a magic
// exponent (2^84 for the high half, 2^52 for the low), then cancel the
// magics. f = (2^84 + hi*2^32) - (2^84 + 2^52) = hi*2^32 - 2^52 exactly,
// and f + (2^52 + lo) = hi*2^32 + lo with a single rounding.
__attribute__((target("avx2"))) inline __m256d Uint64ToDouble(__m256i x) {
  const __m256i k84_bits = _mm256_set1_epi64x(0x4530000000000000LL);
  const __m256i k52_bits = _mm256_set1_epi64x(0x4330000000000000LL);
  const __m256d k84_plus_52 =
      _mm256_set1_pd(19342813118337666422669312.0);  // 2^84 + 2^52
  const __m256i x_hi = _mm256_or_si256(_mm256_srli_epi64(x, 32), k84_bits);
  // Blend mask 0xcc: within each 64-bit element, keep x's low 32 bits and
  // take the 2^52 exponent pattern for the high 32.
  const __m256i x_lo = _mm256_blend_epi16(x, k52_bits, 0xcc);
  const __m256d f =
      _mm256_sub_pd(_mm256_castsi256_pd(x_hi), k84_plus_52);
  return _mm256_add_pd(f, _mm256_castsi256_pd(x_lo));
}

// Four-lane BranchlessBound<false>: index of the first separator > x per
// lane. `len` narrows identically in every lane (the scalar loop's len
// update is comparison-independent), so one scalar len drives the whole
// group; only `base` is per-lane.
__attribute__((target("avx2"))) inline __m256i UpperBound4(
    const long long* separators, std::size_t separator_count, __m256i x) {
  __m256i base = _mm256_setzero_si256();
  std::size_t len = separator_count;
  while (len > 1) {
    const std::size_t half = len >> 1;
    const __m256i idx = _mm256_add_epi64(
        base, _mm256_set1_epi64x(static_cast<long long>(half - 1)));
    const __m256i probe = _mm256_i64gather_epi64(separators, idx, 8);
    // Scalar: base += (probe <= x) ? half : 0. andnot(probe > x, half)
    // is `half` exactly in the lanes where probe <= x.
    const __m256i gt = _mm256_cmpgt_epi64(probe, x);
    base = _mm256_add_epi64(
        base, _mm256_andnot_si256(
                  gt, _mm256_set1_epi64x(static_cast<long long>(half))));
    len -= half;
  }
  if (separator_count != 0) {
    const __m256i probe = _mm256_i64gather_epi64(separators, base, 8);
    const __m256i gt = _mm256_cmpgt_epi64(probe, x);
    base = _mm256_add_epi64(base,
                            _mm256_andnot_si256(gt, _mm256_set1_epi64x(1)));
  }
  return base;
}

// Four-lane Cdf: gather the partially covered bucket's SoA row at the
// upper-bound index and interpolate; lanes at or above the upper fence
// take `total` instead (the scalar early return, as a blend). Gathered
// indices stay in bounds even for those lanes (ub <= separator_count
// always indexes valid rows), so the wasted interpolation is safe.
__attribute__((target("avx2"))) inline __m256d Cdf4(const EstimatorSoA& soa,
                                                    __m256i x) {
  const __m256i j = UpperBound4(
      reinterpret_cast<const long long*>(soa.separators),
      soa.separator_count, x);
  const __m256d cum = _mm256_i64gather_pd(soa.cum, j, 8);
  const __m256d counts = _mm256_i64gather_pd(soa.counts, j, 8);
  const __m256d inv_width = _mm256_i64gather_pd(soa.inv_width, j, 8);
  const __m256i bucket_lo = _mm256_i64gather_epi64(
      reinterpret_cast<const long long*>(soa.bucket_lo), j, 8);
  // ValueDistance: unsigned wraparound subtraction, then exact u64->f64.
  const __m256d dist = Uint64ToDouble(_mm256_sub_epi64(x, bucket_lo));
  // cum + counts * (dist * inv_width): explicit mul/mul/add, matching the
  // contraction-disabled scalar InterpolateCdf.
  const __m256d val = _mm256_add_pd(
      cum, _mm256_mul_pd(counts, _mm256_mul_pd(dist, inv_width)));
  const __m256i below_fence =
      _mm256_cmpgt_epi64(_mm256_set1_epi64x(soa.upper_fence), x);
  return _mm256_blendv_pd(_mm256_set1_pd(soa.total), val,
                          _mm256_castsi256_pd(below_fence));
}

// Four-lane EstimateRangeCount: clamp to the fences (AVX2 has no 64-bit
// min/max, so emulate with cmpgt + blend), Cdf both ends, clamp the
// difference at zero, and zero the lanes whose clamped range is empty
// (the scalar early return 0.0).
//
// Bitwise-identity notes for the tail: on valid lanes the difference of
// two in-order Cdf evaluations is never NaN (both finite) and never -0.0
// (both Cdfs are >= +0.0 and round-to-nearest gives x - x = +0.0), so
// max_pd(diff, 0) matches std::max(diff, 0.0) exactly. Invalid lanes may
// compute garbage (even NaN); the final and_pd zeroes their sign,
// exponent and mantissa outright, producing the scalar's +0.0.
__attribute__((target("avx2"))) inline __m256d Estimate4(
    const EstimatorSoA& soa, __m256i query_lo, __m256i query_hi) {
  const __m256i lf = _mm256_set1_epi64x(soa.lower_fence);
  const __m256i uf = _mm256_set1_epi64x(soa.upper_fence);
  const __m256i lo = _mm256_blendv_epi8(
      lf, query_lo, _mm256_cmpgt_epi64(query_lo, lf));  // max(q.lo, lf)
  const __m256i hi = _mm256_blendv_epi8(
      uf, query_hi, _mm256_cmpgt_epi64(uf, query_hi));  // min(q.hi, uf)
  const __m256i valid = _mm256_cmpgt_epi64(hi, lo);
  const __m256d diff = _mm256_sub_pd(Cdf4(soa, hi), Cdf4(soa, lo));
  const __m256d clamped = _mm256_max_pd(diff, _mm256_setzero_pd());
  return _mm256_and_pd(clamped, _mm256_castsi256_pd(valid));
}

// De-interleave four adjacent {lo, hi} pairs into a lo vector and a hi
// vector: two unpacks give [v0 v2 v1 v3] order per field, one cross-lane
// permute restores query order.
__attribute__((target("avx2"))) inline void LoadQueries4(
    const RangeQuery* queries, __m256i* lo, __m256i* hi) {
  const __m256i q01 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(queries));
  const __m256i q23 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(queries + 2));
  const __m256i lo_scrambled = _mm256_unpacklo_epi64(q01, q23);
  const __m256i hi_scrambled = _mm256_unpackhi_epi64(q01, q23);
  *lo = _mm256_permute4x64_epi64(lo_scrambled, _MM_SHUFFLE(3, 1, 2, 0));
  *hi = _mm256_permute4x64_epi64(hi_scrambled, _MM_SHUFFLE(3, 1, 2, 0));
}

__attribute__((target("avx2"))) void EstimateBatchAvx2(
    const EstimatorSoA& soa, const RangeQuery* queries, double* out,
    std::size_t groups) {
  for (std::size_t g = 0; g < groups; ++g) {
    const RangeQuery* q = queries + g * kLanes;
    __m256i lo0, hi0, lo1, hi1;
    LoadQueries4(q, &lo0, &hi0);
    LoadQueries4(q + 4, &lo1, &hi1);
    _mm256_storeu_pd(out + g * kLanes, Estimate4(soa, lo0, hi0));
    _mm256_storeu_pd(out + g * kLanes + 4, Estimate4(soa, lo1, hi1));
  }
}

}  // namespace

bool SimdKernelAvailable() {
  static const bool available = __builtin_cpu_supports("avx2") != 0;
  return available;
}

std::size_t EstimateRangeCountsSimd(const EstimatorSoA& soa,
                                    const RangeQuery* queries, double* out,
                                    std::size_t n) {
  if (!SimdKernelAvailable()) return 0;
  const std::size_t groups = n / kLanes;
  if (groups == 0) return 0;
  EstimateBatchAvx2(soa, queries, out, groups);
  return groups * kLanes;
}

#else  // !x86: the guarded scalar fallback — report the kernel absent and
       // process nothing; callers finish on the Eytzinger path. A NEON
       // kernel would slot in here behind the same two entry points.

bool SimdKernelAvailable() { return false; }

std::size_t EstimateRangeCountsSimd(const EstimatorSoA& /*soa*/,
                                    const RangeQuery* /*queries*/,
                                    double* /*out*/, std::size_t /*n*/) {
  return 0;
}

#endif

}  // namespace internal
}  // namespace equihist
