#ifndef EQUIHIST_CORE_COMPILED_ESTIMATOR_H_
#define EQUIHIST_CORE_COMPILED_ESTIMATOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "core/histogram.h"
#include "data/value_set.h"
#include "data/workload.h"

namespace equihist {

// Which code path a batch estimate runs through (DESIGN.md section 14).
// Every kernel computes bitwise-identical estimates — the choice is purely
// a throughput knob, like the thread pool — so requests degrade gracefully
// when the hardware lacks a kernel (kSimd on a non-AVX2 host runs the
// Eytzinger path).
enum class EstimatorKernel : std::uint8_t {
  kAuto = 0,       // best available: SIMD when the CPU supports it, else
                   // the Eytzinger layout
  kScalar = 1,     // flat branchless binary search (the portable reference)
  kEytzinger = 2,  // implicit-BFS separator layout with software prefetch
  kSimd = 3,       // AVX2 8-lane batch kernel (runtime CPUID dispatch)
};

namespace internal {

// The flat structure-of-arrays view of a CompiledEstimator, handed to the
// SIMD kernel translation unit (core/compiled_estimator_simd.cc) so the
// vector code needs no access to the class internals. Pointers borrow from
// the estimator and are valid for its lifetime.
struct EstimatorSoA {
  const Value* separators = nullptr;  // k-1, sorted (duplicates allowed)
  std::size_t separator_count = 0;
  const Value* bucket_lo = nullptr;   // k
  const double* counts = nullptr;     // k
  const double* inv_width = nullptr;  // k
  const double* cum = nullptr;        // k+1
  double total = 0.0;
  Value lower_fence = 0;
  Value upper_fence = 0;
};

// True when the runtime CPU can execute the SIMD batch kernel (CPUID
// dispatch; constant after the first call).
bool SimdKernelAvailable();

// Runs the SIMD kernel over the first floor(n / lanes) * lanes queries and
// returns how many were processed; the caller finishes the tail with a
// scalar kernel. Returns 0 when SimdKernelAvailable() is false (the
// guarded fallback), so callers need no separate availability branch.
std::size_t EstimateRangeCountsSimd(const EstimatorSoA& soa,
                                    const RangeQuery* queries, double* out,
                                    std::size_t n);

}  // namespace internal

// A histogram flattened for serving: the read-side companion of the
// parallel construction engine (DESIGN.md section 9).
//
// The reference estimator (core/range_estimator.h) walks every bucket a
// query touches — O(buckets covered) per call, which for the wide ranges
// an optimizer actually plans degenerates to O(k). A CompiledEstimator
// spends O(k) once, flattening the histogram into structure-of-arrays
// form:
//
//   separators[k-1]      the sorted bucket boundaries, contiguous
//   bucket_lo[k]         exclusive lower bound per bucket, fences
//                        substituted for the outermost buckets
//   cum[k+1]             prefix-summed claimed counts (cum[j] = count of
//                        buckets 0..j-1), exact integers
//   counts[k]            per-bucket claimed counts as doubles
//   inv_width[k]         precomputed 1 / (bucket_hi - bucket_lo); 0.0 for
//                        zero-width (duplicated-separator spike) buckets
//   run_first/last[k-1]  per separator, the first/last index of its
//                        maximal equal-value run — the Section 5
//                        duplicated-separator table
//
// plus the vectorized serving core (DESIGN.md section 14):
//
//   eytz[k]              the separators rearranged into Eytzinger
//                        (implicit-BFS) order, 1-indexed — descending the
//                        implicit tree touches log k *consecutive-level*
//                        cache lines instead of log k scattered ones, and
//                        the next line pair is software-prefetched
//   eytz_rank[k]         Eytzinger slot -> sorted separator index, so the
//                        descent's final slot converts back to the same
//                        upper-bound rank the flat search returns
//
// A range estimate then becomes two branchless binary searches, two
// partial-bucket interpolations and one prefix-sum difference:
//
//   estimate(lo, hi] = F(hi) - F(lo),
//   F(x) = cum[ub(x)] + counts[ub(x)] * (x - bucket_lo[ub(x)]) *
//          inv_width[ub(x)],          ub(x) = first separator > x,
//
// O(log k) per query with no data-dependent branches in the search loop.
// Zero-width spike buckets need no special casing on this path: ub(x)
// steps past an entire duplicated-separator run, so a spike's mass enters
// through the prefix sums all-or-nothing exactly as the reference
// estimator counts it, and the partially covered bucket ub(x) is provably
// never degenerate (bucket_lo[ub] <= x < bucket_hi[ub]).
//
// Kernel identity guarantee: the Eytzinger descent and the SIMD kernel
// compute the same upper-bound index as the flat search (they implement
// the same comparison sequence over the same values), and every kernel
// finishes with the same interpolation expression evaluated with the same
// FP operation order (this translation unit and the SIMD one build with
// contraction disabled, so the compiler cannot fuse the scalar path into
// FMA while the vector path stays mul+add). Estimates are therefore
// bitwise identical across kernels — enforced by the differential tests in
// tests/core_vectorized_estimator_test.cc over the Section-5 spike/fence
// corpus.
//
// Numerical contract vs the reference loop: estimates agree with the
// reference estimator bit-for-bit whenever every covered bucket is either
// fully inside or fully outside the range (separator-aligned queries,
// spike lookups, whole-domain queries) and totals stay below 2^53.
// Partially covered end buckets interpolate as count * ((x - lo) *
// inv_width) where the reference computes count * ((x - lo) / width); with
// both endpoints inside one bucket the reference uses a single term where
// the compiled path uses a prefix difference. Each effect is a few ulps of
// the end bucket's count, so results agree within ~8 ulps of the largest
// bucket count involved (documented 1-ulp-class tolerance; the
// differential test enforces it). Results are clamped to be non-negative,
// like the reference's term-by-term accumulation.
//
// Thread safety: immutable after construction; all estimation methods are
// const and safe to call concurrently from any number of threads. This is
// what the StatisticsManager lock-free serving path relies on.
class CompiledEstimator {
 public:
  // Flattens `histogram`. O(k) time and memory; the histogram itself is
  // not retained.
  explicit CompiledEstimator(const Histogram& histogram);

  // Estimated output size of "lo < X <= hi" — same semantics as the
  // reference EstimateRangeCount, in O(log k).
  double EstimateRangeCount(const RangeQuery& query) const;

  // The same estimate computed over the Eytzinger separator layout —
  // bitwise-identical to EstimateRangeCount by construction (same
  // comparison sequence, same interpolation arithmetic), fewer cache
  // misses on large k. Exposed for tests and the kernel breakdown bench;
  // batch callers go through EstimateRangeCounts.
  double EstimateRangeCountEytzinger(const RangeQuery& query) const;

  // Estimated selectivity in [0, 1]: EstimateRangeCount / total.
  double EstimateRangeSelectivity(const RangeQuery& query) const;

  // Estimated count of values <= x: the prefix F(x) both ends of a range
  // estimate are computed from. Clamps x to the fences.
  double EstimateCountAtMost(Value x) const;

  // Mass pinned at exactly `v` by zero-width spike buckets (a duplicated
  // separator's run, Section 5); 0.0 when v is not a duplicated separator.
  // One binary search plus two run-table lookups.
  double SpikeMassAt(Value v) const;

  // Index of the bucket containing `v`, with the duplicated-separator
  // convention of Histogram::BucketIndexForValue (a heavy value maps to
  // the last bucket of its run). One binary search plus one run-table
  // lookup instead of the reference's two binary searches.
  std::uint64_t BucketIndexForValue(Value v) const;

  // Batch estimation: out[i] = EstimateRangeCount(queries[i]) for every i.
  // With a pool, large batches are sharded across it; every shard layout
  // and every kernel produce bitwise-identical output (queries are
  // independent and the kernels share one arithmetic), so both `pool` and
  // `kernel` are purely throughput knobs. kAuto picks the measured-fastest
  // kernel for this histogram's size and this CPU (see ResolveKernel); an
  // unavailable explicit request degrades (kSimd -> kEytzinger). Requires
  // out.size() >= queries.size().
  void EstimateRangeCounts(std::span<const RangeQuery> queries,
                           std::span<double> out, ThreadPool* pool = nullptr,
                           EstimatorKernel kernel =
                               EstimatorKernel::kAuto) const;

  // True when the AVX2 batch kernel can run on this CPU (runtime CPUID
  // dispatch; on other architectures this is the guarded scalar fallback).
  static bool SimdAvailable();

  // kAuto dispatch threshold, in separators: at 8 bytes each this is a
  // 2 MiB array — past per-core L2 on the parts we target. Below it the
  // flat branchless search wins (everything is cache-resident and it runs
  // the fewest instructions); at or above it the cache-optimal kernels
  // pay for themselves (DESIGN.md §14 has the measurements).
  static constexpr std::size_t kAutoVectorThreshold = std::size_t{1} << 18;

  // The kernel a request resolves to on this host for THIS histogram:
  // kAuto -> kScalar below kAutoVectorThreshold separators, else kSimd
  // when available, else kEytzinger; an explicit kSimd without AVX2
  // degrades to kEytzinger; everything else resolves to itself.
  EstimatorKernel ResolveKernel(EstimatorKernel requested) const;

  std::uint64_t bucket_count() const { return k_; }
  double total() const { return total_; }
  Value lower_fence() const { return lower_fence_; }
  Value upper_fence() const { return upper_fence_; }

  // Heap footprint of the flattened arrays, including the Eytzinger
  // layout (for HistogramModel::MemoryBytes accounting).
  std::size_t MemoryBytes() const;

 private:
  // F(x): estimated count in (lower_fence, x]. Precondition:
  // lower_fence_ <= x <= upper_fence_.
  double Cdf(Value x) const;
  // F(x) computed via the Eytzinger descent; bitwise equal to Cdf.
  double CdfEytzinger(Value x) const;
  // The shared interpolation tail of both Cdf forms: one expression, one
  // FP operation order, so the kernels cannot diverge.
  double InterpolateCdf(std::size_t j, Value x) const;
  // Index of the first separator > x via the Eytzinger descent (equals
  // the flat search's upper-bound index).
  std::size_t EytzingerUpperBound(Value x) const;
  // The SoA view handed to the SIMD kernel TU.
  internal::EstimatorSoA SoAView() const;
  // Runs `kernel` over queries[0, n) sequentially (the per-shard body of
  // EstimateRangeCounts).
  void EstimateRangeCountsWithKernel(const RangeQuery* queries, double* out,
                                     std::size_t n,
                                     EstimatorKernel kernel) const;

  std::uint64_t k_ = 1;
  Value lower_fence_ = 0;
  Value upper_fence_ = 0;
  double total_ = 0.0;
  std::vector<Value> separators_;          // k-1
  std::vector<Value> bucket_lo_;           // k
  std::vector<double> counts_;             // k
  std::vector<double> inv_width_;          // k
  std::vector<double> cum_;                // k+1
  std::vector<std::uint32_t> run_first_;   // k-1
  std::vector<std::uint32_t> run_last_;    // k-1
  std::vector<Value> eytz_;                // k (slot 0 unused)
  std::vector<std::uint32_t> eytz_rank_;   // k; [0] = k-1 (the "all
                                           // separators <= x" sentinel)
};

}  // namespace equihist

#endif  // EQUIHIST_CORE_COMPILED_ESTIMATOR_H_
