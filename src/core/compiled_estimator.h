#ifndef EQUIHIST_CORE_COMPILED_ESTIMATOR_H_
#define EQUIHIST_CORE_COMPILED_ESTIMATOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "core/histogram.h"
#include "data/value_set.h"
#include "data/workload.h"

namespace equihist {

// A histogram flattened for serving: the read-side companion of the
// parallel construction engine (DESIGN.md section 9).
//
// The reference estimator (core/range_estimator.h) walks every bucket a
// query touches — O(buckets covered) per call, which for the wide ranges
// an optimizer actually plans degenerates to O(k). A CompiledEstimator
// spends O(k) once, flattening the histogram into structure-of-arrays
// form:
//
//   separators[k-1]      the sorted bucket boundaries, contiguous
//   bucket_lo[k]         exclusive lower bound per bucket, fences
//                        substituted for the outermost buckets
//   cum[k+1]             prefix-summed claimed counts (cum[j] = count of
//                        buckets 0..j-1), exact integers
//   counts[k]            per-bucket claimed counts as doubles
//   inv_width[k]         precomputed 1 / (bucket_hi - bucket_lo); 0.0 for
//                        zero-width (duplicated-separator spike) buckets
//   run_first/last[k-1]  per separator, the first/last index of its
//                        maximal equal-value run — the Section 5
//                        duplicated-separator table
//
// A range estimate then becomes two branchless binary searches, two
// partial-bucket interpolations and one prefix-sum difference:
//
//   estimate(lo, hi] = F(hi) - F(lo),
//   F(x) = cum[ub(x)] + counts[ub(x)] * (x - bucket_lo[ub(x)]) *
//          inv_width[ub(x)],          ub(x) = first separator > x,
//
// O(log k) per query with no data-dependent branches in the search loop.
// Zero-width spike buckets need no special casing on this path: ub(x)
// steps past an entire duplicated-separator run, so a spike's mass enters
// through the prefix sums all-or-nothing exactly as the reference
// estimator counts it, and the partially covered bucket ub(x) is provably
// never degenerate (bucket_lo[ub] <= x < bucket_hi[ub]).
//
// Numerical contract: estimates agree with the reference estimator
// bit-for-bit whenever every covered bucket is either fully inside or
// fully outside the range (separator-aligned queries, spike lookups,
// whole-domain queries) and totals stay below 2^53. Partially covered end
// buckets interpolate as count * ((x - lo) * inv_width) where the
// reference computes count * ((x - lo) / width); with both endpoints
// inside one bucket the reference uses a single term where the compiled
// path uses a prefix difference. Each effect is a few ulps of the end
// bucket's count, so results agree within ~8 ulps of the largest bucket
// count involved (documented 1-ulp-class tolerance; the differential test
// enforces it). Results are clamped to be non-negative, like the
// reference's term-by-term accumulation.
//
// Thread safety: immutable after construction; all estimation methods are
// const and safe to call concurrently from any number of threads. This is
// what the StatisticsManager lock-free serving path relies on.
class CompiledEstimator {
 public:
  // Flattens `histogram`. O(k) time and memory; the histogram itself is
  // not retained.
  explicit CompiledEstimator(const Histogram& histogram);

  // Estimated output size of "lo < X <= hi" — same semantics as the
  // reference EstimateRangeCount, in O(log k).
  double EstimateRangeCount(const RangeQuery& query) const;

  // Estimated selectivity in [0, 1]: EstimateRangeCount / total.
  double EstimateRangeSelectivity(const RangeQuery& query) const;

  // Estimated count of values <= x: the prefix F(x) both ends of a range
  // estimate are computed from. Clamps x to the fences.
  double EstimateCountAtMost(Value x) const;

  // Mass pinned at exactly `v` by zero-width spike buckets (a duplicated
  // separator's run, Section 5); 0.0 when v is not a duplicated separator.
  // One binary search plus two run-table lookups.
  double SpikeMassAt(Value v) const;

  // Index of the bucket containing `v`, with the duplicated-separator
  // convention of Histogram::BucketIndexForValue (a heavy value maps to
  // the last bucket of its run). One binary search plus one run-table
  // lookup instead of the reference's two binary searches.
  std::uint64_t BucketIndexForValue(Value v) const;

  // Batch estimation: out[i] = EstimateRangeCount(queries[i]) for every i.
  // With a pool, large batches are sharded across it; every shard layout
  // produces bitwise-identical output because queries are independent, so
  // `pool` is purely a throughput knob. Requires out.size() >=
  // queries.size().
  void EstimateRangeCounts(std::span<const RangeQuery> queries,
                           std::span<double> out,
                           ThreadPool* pool = nullptr) const;

  std::uint64_t bucket_count() const { return k_; }
  double total() const { return total_; }
  Value lower_fence() const { return lower_fence_; }
  Value upper_fence() const { return upper_fence_; }

 private:
  // F(x): estimated count in (lower_fence, x]. Precondition:
  // lower_fence_ <= x <= upper_fence_.
  double Cdf(Value x) const;

  std::uint64_t k_ = 1;
  Value lower_fence_ = 0;
  Value upper_fence_ = 0;
  double total_ = 0.0;
  std::vector<Value> separators_;          // k-1
  std::vector<Value> bucket_lo_;           // k
  std::vector<double> counts_;             // k
  std::vector<double> inv_width_;          // k
  std::vector<double> cum_;                // k+1
  std::vector<std::uint32_t> run_first_;   // k-1
  std::vector<std::uint32_t> run_last_;    // k-1
};

}  // namespace equihist

#endif  // EQUIHIST_CORE_COMPILED_ESTIMATOR_H_
