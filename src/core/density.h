#ifndef EQUIHIST_CORE_DENSITY_H_
#define EQUIHIST_CORE_DENSITY_H_

#include <cstdint>
#include <span>

#include "data/distribution.h"

namespace equihist {

// The SQL Server "density" statistic collected alongside histograms
// (Section 7.1, implementation note 4): a measure of average duplication,
// 0.0 when all column values are distinct and 1.0 when they are all
// identical. We use the standard definition: the probability that two
// tuples drawn without replacement have equal values,
//   density = (sum_i c_i^2 - n) / (n^2 - n)
// over the distinct-value multiplicities c_i. Returns 0 for n <= 1.
//
// Both overloads take the multiset sorted ascending.
double ComputeDensity(std::span<const Value> sorted_values);

// Density estimated from a sorted sample: the same formula applied to the
// sample multiplicities. The paper notes this estimate "was extremely
// accurate whenever the CVB algorithm converges".
double EstimateDensityFromSample(std::span<const Value> sorted_sample);

}  // namespace equihist

#endif  // EQUIHIST_CORE_DENSITY_H_
