#include "core/compressed_histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/math.h"
#include "common/string_util.h"
#include "core/error_metrics.h"
#include "core/histogram_builder.h"
#include "core/range_estimator.h"

namespace equihist {
namespace {

struct Run {
  Value value;
  std::uint64_t count;
};

std::vector<Run> RunsOfSorted(std::span<const Value> sorted) {
  std::vector<Run> runs;
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    runs.push_back(Run{sorted[i], j - i});
    i = j;
  }
  return runs;
}

}  // namespace

Result<CompressedHistogram> CompressedHistogram::Build(
    std::span<const Value> sorted, std::uint64_t k,
    std::uint64_t population_size, double scale) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (sorted.empty()) {
    return Status::FailedPrecondition(
        "cannot build a compressed histogram over an empty value set");
  }
  const std::uint64_t m = sorted.size();
  const double threshold = static_cast<double>(m) / static_cast<double>(k);

  std::vector<Run> runs = RunsOfSorted(sorted);
  // Candidate singletons: multiplicity strictly above the ideal bucket
  // size. At most k-1 are kept (most frequent first) so the equi-height
  // part always has a bucket if any residual values exist.
  std::vector<Run> candidates;
  for (const Run& run : runs) {
    if (static_cast<double>(run.count) > threshold) candidates.push_back(run);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Run& a, const Run& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.value < b.value;
            });
  std::uint64_t residual_size = m;
  for (const Run& c : candidates) residual_size -= c.count;
  const std::uint64_t max_singletons = (residual_size > 0) ? k - 1 : k;
  if (candidates.size() > max_singletons) {
    for (std::size_t i = max_singletons; i < candidates.size(); ++i) {
      residual_size += candidates[i].count;
    }
    candidates.resize(max_singletons);
  }

  CompressedHistogram result;
  result.k_ = k;
  result.total_ = population_size;
  result.singletons_.reserve(candidates.size());
  for (const Run& c : candidates) {
    const auto scaled = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(c.count) * scale));
    result.singletons_.push_back(Singleton{c.value, std::max<std::uint64_t>(
                                                        scaled, 1)});
  }
  std::sort(result.singletons_.begin(), result.singletons_.end(),
            [](const Singleton& a, const Singleton& b) {
              return a.value < b.value;
            });

  if (residual_size > 0) {
    std::vector<Value> residual;
    residual.reserve(residual_size);
    auto is_singleton = [&](Value v) {
      return std::binary_search(
          result.singletons_.begin(), result.singletons_.end(),
          Singleton{v, 0}, [](const Singleton& a, const Singleton& b) {
            return a.value < b.value;
          });
    };
    for (const Run& run : runs) {
      if (!is_singleton(run.value)) {
        residual.insert(residual.end(), run.count, run.value);
      }
    }
    const std::uint64_t k_eq = k - result.singletons_.size();
    const auto claimed_residual_total = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(residual.size()) * scale));
    EQUIHIST_ASSIGN_OR_RETURN(
        result.equi_part_,
        BuildHistogramFromSample(residual, k_eq,
                                 std::max<std::uint64_t>(claimed_residual_total,
                                                         1)));
    result.has_equi_part_ = true;
  }
  return result;
}

Result<CompressedHistogram> CompressedHistogram::FromParts(
    std::vector<Singleton> singletons, std::optional<Histogram> equi_part,
    std::uint64_t bucket_budget, std::uint64_t total) {
  if (bucket_budget == 0) {
    return Status::InvalidArgument("bucket budget must be positive");
  }
  if (singletons.empty() && !equi_part.has_value()) {
    return Status::InvalidArgument(
        "a compressed histogram needs singletons or an equi-height part");
  }
  for (std::size_t i = 0; i < singletons.size(); ++i) {
    if (singletons[i].count == 0) {
      return Status::InvalidArgument("singleton counts must be positive");
    }
    if (i > 0 && singletons[i - 1].value >= singletons[i].value) {
      return Status::InvalidArgument(
          "singletons must be sorted by value, strictly increasing");
    }
  }
  const std::uint64_t max_singletons =
      equi_part.has_value() ? bucket_budget - 1 : bucket_budget;
  if (singletons.size() > max_singletons) {
    return Status::InvalidArgument(
        "singletons exceed the bucket budget");
  }
  CompressedHistogram result;
  result.k_ = bucket_budget;
  result.total_ = total;
  result.singletons_ = std::move(singletons);
  if (equi_part.has_value()) {
    result.equi_part_ = std::move(*equi_part);
    result.has_equi_part_ = true;
  }
  return result;
}

Result<CompressedHistogram> CompressedHistogram::BuildPerfect(
    const ValueSet& population, std::uint64_t k) {
  EQUIHIST_ASSIGN_OR_RETURN(
      CompressedHistogram result,
      Build(population.sorted_values(), k, population.size(), /*scale=*/1.0));
  // With scale 1 the equi-height claimed counts are evenly spread; replace
  // them with the true partition counts so the structure is exact.
  if (result.has_equi_part_) {
    std::vector<Value> residual;
    residual.reserve(population.size());
    auto singleton_it = result.singletons_.begin();
    for (Value v : population.sorted_values()) {
      while (singleton_it != result.singletons_.end() &&
             singleton_it->value < v) {
        ++singleton_it;
      }
      if (singleton_it != result.singletons_.end() &&
          singleton_it->value == v) {
        continue;
      }
      residual.push_back(v);
    }
    ValueSet residual_set(std::move(residual));
    if (!residual_set.empty()) {
      EQUIHIST_ASSIGN_OR_RETURN(
          result.equi_part_,
          BuildPerfectHistogram(residual_set, result.k_ -
                                                  result.singletons_.size()));
    }
  }
  return result;
}

Result<CompressedHistogram> CompressedHistogram::BuildFromSample(
    std::span<const Value> sorted_sample, std::uint64_t k,
    std::uint64_t population_size) {
  if (population_size == 0) {
    return Status::InvalidArgument("population_size must be positive");
  }
  if (sorted_sample.empty()) {
    return Status::FailedPrecondition(
        "cannot build a compressed histogram from an empty sample");
  }
  const double scale = static_cast<double>(population_size) /
                       static_cast<double>(sorted_sample.size());
  return Build(sorted_sample, k, population_size, scale);
}

double CompressedHistogram::EstimateRangeCount(const RangeQuery& query) const {
  // Compensated accumulation: a wide range over a histogram with many
  // singletons sums thousands of terms of very different magnitudes, and
  // naive summation drifts with the singleton order.
  KahanSum estimate;
  for (const Singleton& s : singletons_) {
    if (query.lo < s.value && s.value <= query.hi) {
      estimate.Add(static_cast<double>(s.count));
    }
  }
  if (has_equi_part_) {
    estimate.Add(::equihist::EstimateRangeCount(equi_part_, query));
  }
  return estimate.Value();
}

std::string CompressedHistogram::ToString(std::size_t max_entries) const {
  std::ostringstream os;
  os << "CompressedHistogram{k=" << k_
     << ", singletons=" << singletons_.size()
     << ", n=" << FormatWithThousands(total_) << "}\n";
  const std::size_t show = std::min(singletons_.size(), max_entries);
  for (std::size_t i = 0; i < show; ++i) {
    os << "  value " << singletons_[i].value
       << " count=" << singletons_[i].count << "\n";
  }
  if (show < singletons_.size()) {
    os << "  ... (" << singletons_.size() - show << " more singletons)\n";
  }
  if (has_equi_part_) os << equi_part_.ToString(max_entries);
  return os.str();
}

Result<CompressedComparisonReport> CompareCompressed(
    const CompressedHistogram& perfect, const CompressedHistogram& approx,
    const ValueSet& population) {
  if (population.empty()) {
    return Status::InvalidArgument("population must be non-empty");
  }
  CompressedComparisonReport report;
  report.perfect_singletons = perfect.singletons().size();
  report.approx_singletons = approx.singletons().size();

  auto p_it = perfect.singletons().begin();
  for (const auto& a : approx.singletons()) {
    while (p_it != perfect.singletons().end() && p_it->value < a.value) ++p_it;
    if (p_it != perfect.singletons().end() && p_it->value == a.value) {
      ++report.matched_singletons;
      const double truth = static_cast<double>(p_it->count);
      if (truth > 0.0) {
        const double rel =
            std::abs(static_cast<double>(a.count) - truth) / truth;
        report.max_singleton_count_rel_error =
            std::max(report.max_singleton_count_rel_error, rel);
      }
    }
  }

  if (const Histogram* equi = approx.equi_height_part(); equi != nullptr) {
    // Score the approximate equi-height part against the population minus
    // the approximate singleton values.
    std::vector<Value> residual;
    residual.reserve(population.size());
    auto is_singleton = [&](Value v) {
      const auto& s = approx.singletons();
      auto it = std::lower_bound(
          s.begin(), s.end(), v,
          [](const CompressedHistogram::Singleton& a, Value x) {
            return a.value < x;
          });
      return it != s.end() && it->value == v;
    };
    for (Value v : population.sorted_values()) {
      if (!is_singleton(v)) residual.push_back(v);
    }
    if (!residual.empty()) {
      ValueSet residual_set(std::move(residual));
      EQUIHIST_ASSIGN_OR_RETURN(const BucketErrorReport errors,
                                ComputeHistogramErrors(*equi, residual_set));
      report.residual_f_max = errors.f_max;
    }
  }
  return report;
}

}  // namespace equihist
