#include "core/error_metrics.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/math.h"

namespace equihist {

Result<BucketErrorReport> ComputeBucketErrors(
    std::span<const std::uint64_t> bucket_sizes) {
  const std::uint64_t k = bucket_sizes.size();
  if (k == 0) {
    return Status::InvalidArgument("bucket_sizes must be non-empty");
  }
  std::uint64_t n = 0;
  for (std::uint64_t b : bucket_sizes) n += b;
  const double ideal = static_cast<double>(n) / static_cast<double>(k);

  KahanSum abs_sum;
  KahanSum sq_sum;
  double max_dev = 0.0;
  for (std::uint64_t b : bucket_sizes) {
    const double dev = std::abs(static_cast<double>(b) - ideal);
    abs_sum.Add(dev);
    sq_sum.Add(dev * dev);
    max_dev = std::max(max_dev, dev);
  }

  BucketErrorReport report;
  report.delta_avg = abs_sum.Value() / static_cast<double>(k);
  report.delta_var = std::sqrt(sq_sum.Value() / static_cast<double>(k));
  report.delta_max = max_dev;
  if (ideal > 0.0) {
    report.f_avg = report.delta_avg / ideal;
    report.f_var = report.delta_var / ideal;
    report.f_max = report.delta_max / ideal;
  }
  return report;
}

Result<BucketErrorReport> ComputeHistogramErrors(const Histogram& histogram,
                                                 const ValueSet& population) {
  if (population.empty()) {
    return Status::InvalidArgument("population must be non-empty");
  }
  const std::vector<std::uint64_t> counts =
      histogram.PartitionCounts(population);
  return ComputeBucketErrors(counts);
}

Result<std::uint64_t> SeparationError(const Histogram& a, const Histogram& b,
                                      const ValueSet& population) {
  const std::uint64_t k = a.bucket_count();
  if (k != b.bucket_count()) {
    return Status::InvalidArgument(
        "delta-separation requires histograms with equal bucket counts");
  }
  if (population.empty()) {
    return Status::InvalidArgument("population must be non-empty");
  }
  // Effective finite stand-ins for the -inf / +inf bucket ends: nothing in
  // the population lies outside [min, max].
  const Value neg_inf = population.min() - 1;
  const Value pos_inf = population.max();

  auto bucket_bounds = [&](const Histogram& h, std::uint64_t j) {
    const Value lo = (j == 0) ? neg_inf : h.separators()[j - 1];
    const Value hi = (j == k - 1) ? pos_inf : h.separators()[j];
    return std::pair<Value, Value>(std::min(lo, pos_inf),
                                   std::clamp(hi, neg_inf, pos_inf));
  };

  std::uint64_t worst = 0;
  for (std::uint64_t j = 0; j < k; ++j) {
    const auto [lo_a, hi_a] = bucket_bounds(a, j);
    const auto [lo_b, hi_b] = bucket_bounds(b, j);
    const std::uint64_t size_a = population.CountInRange(lo_a, hi_a);
    const std::uint64_t size_b = population.CountInRange(lo_b, hi_b);
    const std::uint64_t inter =
        population.CountInRange(std::max(lo_a, lo_b), std::min(hi_a, hi_b));
    const std::uint64_t sym_diff = size_a + size_b - 2 * inter;
    worst = std::max(worst, sym_diff);
  }
  return worst;
}

double RelativeDeviation(const Histogram& histogram,
                         std::span<const Value> sorted_sample) {
  const std::vector<std::uint64_t> counts =
      histogram.PartitionSorted(sorted_sample);
  const double ideal = static_cast<double>(sorted_sample.size()) /
                       static_cast<double>(counts.size());
  double worst = 0.0;
  for (std::uint64_t c : counts) {
    worst = std::max(worst, std::abs(static_cast<double>(c) - ideal));
  }
  return worst;
}

double FractionalMaxError(const Histogram& histogram,
                          std::span<const Value> sorted_reference,
                          std::span<const Value> sorted_validation) {
  if (sorted_reference.empty() || sorted_validation.empty()) return 0.0;

  // Distinct separator values d_1 < d_2 < ... < d_m.
  std::vector<Value> distinct;
  distinct.reserve(histogram.separators().size());
  for (Value s : histogram.separators()) {
    if (distinct.empty() || distinct.back() != s) distinct.push_back(s);
  }

  auto fraction_leq = [](std::span<const Value> sorted, Value x) {
    const auto cum = static_cast<double>(
        std::upper_bound(sorted.begin(), sorted.end(), x) - sorted.begin());
    return cum / static_cast<double>(sorted.size());
  };

  // Denominator floor: one ideal bucket's share. Definition 4 scales each
  // segment's error by the segment's own reference mass; for segments
  // claiming less than a bucket (a heavy value's run ending just before a
  // quantile boundary) that relative scale is granularity noise, so we
  // require absolute accuracy f * (1/k) there instead — the Delta_max
  // semantics, matching Theorem 4's delta <= n/k proviso.
  const double floor =
      1.0 / static_cast<double>(histogram.bucket_count());

  double worst = 0.0;
  double prev_ref = 0.0;
  double prev_val = 0.0;
  // Segments (d_{j-1}, d_j] for j = 1..m plus the final open segment
  // (d_m, +inf), whose fractions complete to 1.
  for (std::size_t j = 0; j <= distinct.size(); ++j) {
    const double ref_cum =
        (j < distinct.size()) ? fraction_leq(sorted_reference, distinct[j]) : 1.0;
    const double val_cum =
        (j < distinct.size()) ? fraction_leq(sorted_validation, distinct[j]) : 1.0;
    const double ref_frac = ref_cum - prev_ref;
    const double val_frac = val_cum - prev_val;
    prev_ref = ref_cum;
    prev_val = val_cum;
    worst = std::max(worst,
                     std::abs(ref_frac - val_frac) / std::max(ref_frac, floor));
  }
  return worst;
}

Result<BucketErrorReport> ComputeClaimedErrors(const Histogram& histogram,
                                               const ValueSet& population) {
  if (population.empty()) {
    return Status::InvalidArgument("population must be non-empty");
  }
  const std::vector<std::uint64_t> true_counts =
      histogram.PartitionCounts(population);
  const std::uint64_t k = histogram.bucket_count();
  const double ideal = static_cast<double>(population.size()) /
                       static_cast<double>(k);
  KahanSum abs_sum;
  KahanSum sq_sum;
  double max_dev = 0.0;
  for (std::uint64_t j = 0; j < k; ++j) {
    const double dev = std::abs(static_cast<double>(true_counts[j]) -
                                static_cast<double>(histogram.counts()[j]));
    abs_sum.Add(dev);
    sq_sum.Add(dev * dev);
    max_dev = std::max(max_dev, dev);
  }
  BucketErrorReport report;
  report.delta_avg = abs_sum.Value() / static_cast<double>(k);
  report.delta_var = std::sqrt(sq_sum.Value() / static_cast<double>(k));
  report.delta_max = max_dev;
  if (ideal > 0.0) {
    report.f_avg = report.delta_avg / ideal;
    report.f_var = report.delta_var / ideal;
    report.f_max = report.delta_max / ideal;
  }
  return report;
}

double FractionalErrorVsPopulation(const Histogram& histogram,
                                   const ValueSet& population) {
  if (population.empty() || histogram.total() == 0) return 0.0;
  const auto& seps = histogram.separators();
  const auto& counts = histogram.counts();
  const double claimed_total = static_cast<double>(histogram.total());
  const double true_total = static_cast<double>(population.size());

  double worst = 0.0;
  double prev_claimed = 0.0;
  double prev_true = 0.0;
  std::uint64_t claimed_cum = 0;
  std::size_t bucket = 0;
  // Walk distinct separator values; buckets whose upper separator equals the
  // current distinct value all belong to the segment ending there.
  for (std::size_t i = 0; i <= seps.size(); ++i) {
    const bool last_segment = (i == seps.size());
    if (!last_segment && i + 1 < seps.size() && seps[i + 1] == seps[i]) {
      continue;  // fold duplicated separators into one segment boundary
    }
    double claimed_cum_frac;
    double true_cum_frac;
    if (last_segment) {
      claimed_cum_frac = 1.0;
      true_cum_frac = 1.0;
    } else {
      // Buckets up to and including index i end at separator value seps[i].
      while (bucket <= i) claimed_cum += counts[bucket++];
      claimed_cum_frac = static_cast<double>(claimed_cum) / claimed_total;
      true_cum_frac =
          static_cast<double>(population.CountLessEqual(seps[i])) / true_total;
    }
    const double claimed_frac = claimed_cum_frac - prev_claimed;
    const double true_frac = true_cum_frac - prev_true;
    prev_claimed = claimed_cum_frac;
    prev_true = true_cum_frac;
    // Same 1/k denominator floor as FractionalMaxError: segments claiming
    // less than one ideal bucket are held to absolute accuracy f/k.
    const double floor = 1.0 / static_cast<double>(histogram.bucket_count());
    worst = std::max(
        worst, std::abs(claimed_frac - true_frac) / std::max(claimed_frac,
                                                             floor));
  }
  return worst;
}

}  // namespace equihist
