#ifndef EQUIHIST_CORE_RANGE_ESTIMATOR_H_
#define EQUIHIST_CORE_RANGE_ESTIMATOR_H_

#include <cstdint>
#include <span>

#include "common/result.h"
#include "core/histogram.h"
#include "data/value_set.h"
#include "data/workload.h"

namespace equihist {

// Output-size estimation for range queries from a histogram — the typical
// optimizer strategy described in Section 2.2: whole buckets strictly
// inside the range contribute their full (claimed) count, and the two
// partially covered end buckets contribute by linear interpolation over the
// bucket's domain interval (the uniform-spread-within-bucket assumption,
// "the main source of error in the estimation").
//
// Query semantics are lo < X <= hi, consistent with bucket boundaries.
// Degenerate zero-width buckets (duplicated separators, Section 5)
// contribute all-or-nothing.
double EstimateRangeCount(const Histogram& histogram, const RangeQuery& query);

// Estimated selectivity in [0, 1]: EstimateRangeCount / histogram.total().
double EstimateRangeSelectivity(const Histogram& histogram,
                                const RangeQuery& query);

// -- Worst-case guarantees (Theorems 1 and 3) -------------------------------
// Absolute error bounds on range-count estimation, in tuples, for a range
// query of any output size. The relative versions divide by s = t*n/k.

// Theorem 1.1: even a perfect equi-height histogram cannot guarantee
// better than 2n/k absolute error.
double PerfectHistogramAbsoluteErrorBound(std::uint64_t n, std::uint64_t k);

// Theorem 3: a histogram with max error f*n/k guarantees absolute error
// <= (1 + f) * 2n/k for all range queries.
double MaxErrorHistogramAbsoluteErrorBound(std::uint64_t n, std::uint64_t k,
                                           double f);

// Theorem 1.2: a histogram with *average* error f*n/k cannot guarantee
// absolute error below (1 + f*k/4) * 2n/k.
double AvgErrorHistogramAbsoluteErrorFloor(std::uint64_t n, std::uint64_t k,
                                           double f);

// Theorem 1.3: a histogram with *variance* error f*n/k cannot guarantee
// absolute error below (1 + f*sqrt(k*t/8)) * 2n/k for queries of output
// size t*n/k.
double VarErrorHistogramAbsoluteErrorFloor(std::uint64_t n, std::uint64_t k,
                                           double f, double t);

// -- Empirical workload evaluation ------------------------------------------

struct RangeWorkloadReport {
  std::size_t query_count = 0;
  double max_absolute_error = 0.0;
  double mean_absolute_error = 0.0;
  // Relative errors are computed over queries whose true output size is
  // positive (the paper's "output size is not too small" caveat).
  std::size_t relative_query_count = 0;
  double max_relative_error = 0.0;
  double mean_relative_error = 0.0;
};

// Runs every query through the estimator and scores it against the true
// counts from `truth`. Estimation goes through a CompiledEstimator built
// once from `histogram` (O(log k) per query; see core/compiled_estimator.h
// for the documented ulp-level tolerance vs the reference loop above).
Result<RangeWorkloadReport> EvaluateRangeWorkload(
    const Histogram& histogram, std::span<const RangeQuery> queries,
    const ValueSet& truth);

}  // namespace equihist

#endif  // EQUIHIST_CORE_RANGE_ESTIMATOR_H_
