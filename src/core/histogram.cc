#include "core/histogram.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/string_util.h"

namespace equihist {

Result<Histogram> Histogram::Create(std::vector<Value> separators,
                                    std::vector<std::uint64_t> bucket_counts,
                                    Value lower_fence, Value upper_fence) {
  if (bucket_counts.empty()) {
    return Status::InvalidArgument("histogram needs at least one bucket");
  }
  if (separators.size() != bucket_counts.size() - 1) {
    return Status::InvalidArgument(
        "histogram needs exactly k-1 separators for k buckets");
  }
  if (!std::is_sorted(separators.begin(), separators.end())) {
    return Status::InvalidArgument("separators must be non-decreasing");
  }
  if (lower_fence > upper_fence) {
    return Status::InvalidArgument("lower fence must not exceed upper fence");
  }
  if (!separators.empty()) {
    if (separators.front() < lower_fence || separators.back() > upper_fence) {
      return Status::InvalidArgument("separators must lie within the fences");
    }
  }
  return Histogram(std::move(separators), std::move(bucket_counts),
                   lower_fence, upper_fence);
}

Histogram::Histogram(std::vector<Value> separators,
                     std::vector<std::uint64_t> counts, Value lower_fence,
                     Value upper_fence)
    : separators_(std::move(separators)),
      counts_(std::move(counts)),
      lower_fence_(lower_fence),
      upper_fence_(upper_fence) {
  total_ = std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
}

std::uint64_t Histogram::BucketIndexForValue(Value v) const {
  // First separator >= v; bucket j is bounded above by separator j (0-based).
  const auto it = std::lower_bound(separators_.begin(), separators_.end(), v);
  if (it != separators_.end() && *it == v) {
    // v coincides with a separator. If the separator is duplicated
    // (Section 5: a value heavier than n/k), v's mass belongs to the run's
    // *last* bucket — the zero-width (v, v] spike — so its count is not
    // smeared across the preceding bucket's value range by interpolation.
    const auto last = std::upper_bound(it, separators_.end(), v) - 1;
    return static_cast<std::uint64_t>(last - separators_.begin());
  }
  return static_cast<std::uint64_t>(it - separators_.begin());
}

Value Histogram::BucketLowerBound(std::uint64_t j) const {
  return j == 0 ? lower_fence_ : separators_[j - 1];
}

Value Histogram::BucketUpperBound(std::uint64_t j) const {
  return j == counts_.size() - 1 ? upper_fence_ : separators_[j];
}

std::vector<std::uint64_t> Histogram::PartitionCounts(
    const ValueSet& population) const {
  const std::uint64_t k = bucket_count();
  std::vector<std::uint64_t> result(k, 0);
  std::uint64_t prev = 0;
  for (std::uint64_t j = 0; j + 1 < k; ++j) {
    // A separator's own value counts into bucket j only if j is the last
    // bucket of its (possibly duplicated) run — see BucketIndexForValue.
    const bool run_continues =
        (j + 1 < separators_.size()) && separators_[j + 1] == separators_[j];
    const std::uint64_t cum = run_continues
                                  ? population.CountLess(separators_[j])
                                  : population.CountLessEqual(separators_[j]);
    result[j] = cum - prev;
    prev = cum;
  }
  result[k - 1] = population.size() - prev;
  return result;
}

std::vector<std::uint64_t> Histogram::PartitionSorted(
    std::span<const Value> sorted) const {
  const std::uint64_t k = bucket_count();
  std::vector<std::uint64_t> result(k, 0);
  std::uint64_t prev = 0;
  for (std::uint64_t j = 0; j + 1 < k; ++j) {
    const bool run_continues =
        (j + 1 < separators_.size()) && separators_[j + 1] == separators_[j];
    const auto bound =
        run_continues
            ? std::lower_bound(sorted.begin(), sorted.end(), separators_[j])
            : std::upper_bound(sorted.begin(), sorted.end(), separators_[j]);
    const auto cum = static_cast<std::uint64_t>(bound - sorted.begin());
    result[j] = cum - prev;
    prev = cum;
  }
  result[k - 1] = sorted.size() - prev;
  return result;
}

Histogram Histogram::MeasuredAgainst(const ValueSet& population) const {
  Histogram measured = *this;
  measured.counts_ = PartitionCounts(population);
  measured.total_ = population.size();
  if (!population.empty()) {
    measured.lower_fence_ = std::min(lower_fence_, population.min() - 1);
    measured.upper_fence_ = std::max(upper_fence_, population.max());
  }
  return measured;
}

std::string Histogram::ToString(std::size_t max_buckets) const {
  std::ostringstream os;
  const std::uint64_t k = bucket_count();
  os << "EquiHeightHistogram{k=" << k << ", n=" << FormatWithThousands(total_)
     << ", fences=(" << lower_fence_ << ", " << upper_fence_ << "]}\n";
  const std::uint64_t show = std::min<std::uint64_t>(k, max_buckets);
  for (std::uint64_t j = 0; j < show; ++j) {
    os << "  B" << j + 1 << ": (" << BucketLowerBound(j) << ", "
       << BucketUpperBound(j) << "]  count=" << counts_[j] << "\n";
  }
  if (show < k) os << "  ... (" << k - show << " more buckets)\n";
  return os.str();
}

}  // namespace equihist
