#include "core/cvb.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "common/parallel_sort.h"
#include "common/rng.h"
#include "core/bounds.h"
#include "core/density.h"
#include "core/error_metrics.h"
#include "core/histogram_builder.h"
#include "sampling/block_sampler.h"
#include "sampling/sample.h"

namespace equihist {
namespace {

Status ValidateOptions(const Table& table, const CvbOptions& options) {
  if (options.k == 0) return Status::InvalidArgument("k must be positive");
  if (!(options.f > 0.0 && options.f <= 1.0)) {
    return Status::InvalidArgument("f must be in (0, 1]");
  }
  if (!(options.gamma > 0.0 && options.gamma < 1.0)) {
    return Status::InvalidArgument("gamma must be in (0, 1)");
  }
  if (options.max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  if (table.tuple_count() == 0) {
    return Status::FailedPrecondition("cannot run CVB over an empty table");
  }
  return Status::OK();
}

// Extracts the validation subset of a fresh batch per the configured style:
// either all tuples or one uniformly chosen tuple per sampled block. The
// result is sorted.
std::vector<Value> ValidationSubset(const std::vector<Value>& batch,
                                    const std::vector<std::size_t>& offsets,
                                    CvbValidationStyle style, Rng& rng,
                                    ThreadPool* pool) {
  std::vector<Value> subset;
  if (style == CvbValidationStyle::kAllTuples) {
    subset = batch;
  } else {
    // The per-block picks consume the sequential rng stream regardless of
    // the pool, keeping the subset thread-count independent.
    subset.reserve(offsets.size());
    for (std::size_t p = 0; p < offsets.size(); ++p) {
      const std::size_t begin = offsets[p];
      const std::size_t end =
          (p + 1 < offsets.size()) ? offsets[p + 1] : batch.size();
      if (end <= begin) continue;
      subset.push_back(batch[begin + rng.NextBounded(end - begin)]);
    }
  }
  ParallelSort(subset, pool);
  return subset;
}

}  // namespace

Result<CvbResult> RunCvb(const Table& table, const CvbOptions& options,
                         ThreadPool* pool) {
  EQUIHIST_RETURN_IF_ERROR(ValidateOptions(table, options));

  // Use the caller's pool when given; otherwise spin one up per
  // options.threads, clamped to the core count — the build stages are
  // CPU-bound and over-subscription strictly regresses. threads == 1
  // keeps everything on this thread.
  std::unique_ptr<ThreadPool> owned_pool;
  if (pool == nullptr) {
    const std::size_t threads = ResolveBuildThreadCount(options.threads);
    if (threads > 1) {
      owned_pool = std::make_unique<ThreadPool>(threads);
      pool = owned_pool.get();
    }
  }

  const std::uint64_t n = table.tuple_count();
  const std::uint64_t b = table.tuples_per_page();

  // Step 1: initial block budget — the paper's experimental 5*sqrt(n)
  // tuples, or the conservative Theorem 4 record-level budget in blocks.
  std::uint64_t g0 = options.initial_blocks_override;
  if (g0 == 0) {
    if (options.initial_budget == CvbInitialBudget::kTheorem4) {
      EQUIHIST_ASSIGN_OR_RETURN(
          const std::uint64_t r,
          DeviationSampleSize(n, options.k, options.f, options.gamma));
      g0 = (r + b - 1) / b;
    } else {
      g0 = PaperSqrtNInitialBatchBlocks(n, b);
    }
  }
  g0 = std::clamp<std::uint64_t>(g0, 1, table.page_count());
  EQUIHIST_ASSIGN_OR_RETURN(const StepSchedule schedule,
                            StepSchedule::Create(options.schedule, g0));

  Rng rng(options.seed);
  IncrementalBlockSampler sampler(&table, rng.Next(), pool);
  sampler.set_retry_policy(options.retry);

  CvbResult result{
      .histogram = Histogram::Create({}, {1}, 0, 1).value()  // placeholder
  };

  // Per-build fault budget: every block the sampler gives up on (after
  // retry) was replaced by a fresh uniform draw, but past the budget the
  // sample is suspect and the build fails loudly instead.
  auto check_fault_budget = [&]() -> Status {
    if (sampler.pages_skipped() > options.max_skipped_blocks) {
      return Status::DataLoss(
          "CVB fault budget exhausted: " +
          std::to_string(sampler.pages_skipped()) +
          " blocks permanently unreadable (budget " +
          std::to_string(options.max_skipped_blocks) + ") after reading " +
          std::to_string(result.io.pages_read) + " blocks");
    }
    return Status::OK();
  };
  auto exhausted_error = [&]() -> Status {
    return Status::ResourceExhausted(
        "table exhausted before CVB validation passed: read " +
        std::to_string(result.io.pages_read) + " blocks, skipped " +
        std::to_string(sampler.pages_skipped()) + " unreadable blocks");
  };

  // Step 2/3: initial sample and histogram H0.
  std::vector<Value> batch = sampler.NextBatch(g0, &result.io);
  EQUIHIST_RETURN_IF_ERROR(check_fault_budget());
  if (batch.empty()) {
    // g0 >= 1, so an empty initial batch means every page the sampler
    // touched was permanently unreadable — nothing to build from.
    return exhausted_error();
  }
  Sample accumulated(std::move(batch), pool);
  EQUIHIST_ASSIGN_OR_RETURN(
      Histogram current,
      BuildHistogramFromSample(accumulated, options.k, n, pool));

  // Step 4: iterate cross-validation rounds.
  std::vector<std::size_t> offsets;
  std::uint64_t accumulated_blocks = result.io.pages_read;
  double last_error = -1.0;  // < 0 until the first validation ran
  for (std::uint64_t i = 1; i <= options.max_iterations; ++i) {
    std::uint64_t want_blocks = schedule.BatchSize(i);
    if (options.error_adaptive_stepping && last_error >= 0.0) {
      const double ratio = last_error / options.f;
      const double factor = std::clamp(ratio * ratio - 1.0, 0.25, 2.0);
      want_blocks = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(
                 std::llround(static_cast<double>(accumulated_blocks) *
                              factor)));
    }
    IoStats batch_io;
    batch = sampler.NextBatch(want_blocks, &batch_io, &offsets);
    result.io += batch_io;
    EQUIHIST_RETURN_IF_ERROR(check_fault_budget());
    if (batch.empty()) {
      // Table exhausted before convergence: the accumulated sample is the
      // whole *readable* table — exact when nothing was skipped.
      result.exhausted_table = true;
      break;
    }

    CvbIterationLog entry;
    entry.iteration = i;
    entry.fresh_blocks = batch_io.pages_read;
    entry.fresh_tuples = batch.size();

    const std::vector<Value> validation =
        ValidationSubset(batch, offsets, options.style, rng, pool);

    // Stopping statistic, normalized so the pass threshold is f itself.
    switch (options.metric) {
      case CvbValidationMetric::kFractionalMaxError:
        entry.validation_error = FractionalMaxError(
            current, accumulated.sorted_values(), validation);
        break;
      case CvbValidationMetric::kRelativeDeviation: {
        const double ideal = static_cast<double>(validation.size()) /
                             static_cast<double>(options.k);
        const double deviation = RelativeDeviation(current, validation);
        entry.validation_error = (ideal > 0.0) ? deviation / ideal : 0.0;
        break;
      }
      case CvbValidationMetric::kClaimedDeviation: {
        // Validation counts vs claimed counts scaled to the validation
        // sample, in units of the ideal bucket size s/k.
        const std::vector<std::uint64_t> val_counts =
            current.PartitionSorted(validation);
        const double scale = static_cast<double>(validation.size()) /
                             static_cast<double>(current.total());
        const double ideal = static_cast<double>(validation.size()) /
                             static_cast<double>(options.k);
        double worst = 0.0;
        for (std::uint64_t j = 0; j < options.k; ++j) {
          const double expected =
              static_cast<double>(current.counts()[j]) * scale;
          worst = std::max(
              worst, std::abs(static_cast<double>(val_counts[j]) - expected));
        }
        entry.validation_error = (ideal > 0.0) ? worst / ideal : 0.0;
        break;
      }
    }
    entry.threshold = options.f;
    entry.passed = entry.validation_error < options.f;

    // Step 4(c): merge and rebuild regardless of the outcome — the fresh
    // sample improves the histogram either way, and the paper's output is
    // H_i (post-merge).
    accumulated.Merge(std::move(batch), pool);
    EQUIHIST_ASSIGN_OR_RETURN(
        current, BuildHistogramFromSample(accumulated, options.k, n, pool));

    entry.accumulated_tuples = accumulated.size();
    result.log.push_back(entry);
    result.iterations = i;
    accumulated_blocks += batch_io.pages_read;
    last_error = entry.validation_error;

    if (entry.passed) {
      result.converged = true;
      break;
    }
    if (sampler.pages_remaining() == 0) {
      result.exhausted_table = true;
      break;
    }
  }

  result.blocks_skipped = sampler.pages_skipped();
  if (result.exhausted_table && !result.converged) {
    if (result.blocks_skipped > 0 || !options.allow_exhaustive_fallback) {
      // With skips, the "whole table" sample is silently missing the
      // unreadable pages — not exact, so don't pretend it is. Without the
      // fallback, the caller demanded convergence-by-validation.
      return exhausted_error();
    }
    // Fold in whatever was read; with the whole file sampled the
    // accumulated sample equals the column and the histogram is perfect.
    EQUIHIST_ASSIGN_OR_RETURN(
        current, BuildHistogramFromSample(accumulated, options.k, n, pool));
  }

  result.histogram = std::move(current);
  result.blocks_sampled = result.io.pages_read;
  result.tuples_sampled = result.io.tuples_read;
  result.sampling_fraction =
      static_cast<double>(result.tuples_sampled) / static_cast<double>(n);
  result.sample_distinct = accumulated.DistinctCount();
  result.density_estimate =
      EstimateDensityFromSample(accumulated.sorted_values());
  result.sample_profile =
      FrequencyProfile::FromSorted(accumulated.sorted_values());

  // Heavy hitters: values with sample multiplicity above one ideal sample
  // bucket r/k, with counts scaled to the table (Section 5's compressed-
  // histogram candidates).
  const double sample_bucket = static_cast<double>(accumulated.size()) /
                               static_cast<double>(options.k);
  const double scale =
      static_cast<double>(n) / static_cast<double>(accumulated.size());
  const auto& sorted = accumulated.sorted_values();
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    const auto multiplicity = static_cast<double>(j - i);
    if (multiplicity > sample_bucket) {
      result.heavy_hitters.push_back(CompressedHistogram::Singleton{
          sorted[i], static_cast<std::uint64_t>(
                         std::llround(multiplicity * scale))});
    }
    i = j;
  }
  return result;
}

}  // namespace equihist
