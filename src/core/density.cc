#include "core/density.h"

#include "common/math.h"

namespace equihist {

double ComputeDensity(std::span<const Value> sorted_values) {
  const std::uint64_t n = sorted_values.size();
  if (n <= 1) return 0.0;
  KahanSum sq_sum;
  std::uint64_t run = 0;
  for (std::size_t i = 0; i < sorted_values.size(); ++i) {
    ++run;
    const bool run_ends = (i + 1 == sorted_values.size()) ||
                          (sorted_values[i + 1] != sorted_values[i]);
    if (run_ends) {
      sq_sum.Add(static_cast<double>(run) * static_cast<double>(run));
      run = 0;
    }
  }
  const double nd = static_cast<double>(n);
  return (sq_sum.Value() - nd) / (nd * nd - nd);
}

double EstimateDensityFromSample(std::span<const Value> sorted_sample) {
  return ComputeDensity(sorted_sample);
}

}  // namespace equihist
