#ifndef EQUIHIST_CORE_HISTOGRAM_BUILDER_H_
#define EQUIHIST_CORE_HISTOGRAM_BUILDER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/histogram.h"
#include "data/value_set.h"
#include "sampling/sample.h"

namespace equihist {

// Builders for equi-height histograms.
//
// Both builders place separator s_j at the ceil(j * m / k)-th smallest value
// of the m values they see (1-based), i.e. the j-th k-quantile, which makes
// each bucket's size as close to m/k as duplicate values permit. When a
// value's multiplicity exceeds m/k, adjacent separators coincide — the
// duplicated-separator representation of Section 5.
//
// All builders accept an optional ThreadPool; the separator partition is
// then computed over separator shards concurrently, with output identical
// to the sequential path.

// Partitions the sorted values by the separators (same rule as
// Histogram::PartitionSorted: a run of duplicated separators puts the
// repeated value's mass in the run's *last*, zero-width bucket, so the
// spike is never smeared by in-bucket interpolation). Returns
// separators.size() + 1 counts summing to sorted.size(). Each separator's
// cumulative rank is an independent binary search, so shards of the
// separator range run concurrently.
std::vector<std::uint64_t> SamplePartitionCounts(
    std::span<const Value> sorted, const std::vector<Value>& separators,
    ThreadPool* pool = nullptr);

// The perfect histogram: separators from the full sorted value set, claimed
// counts equal to the true partition counts. Requires k >= 1 and a
// non-empty population; k may exceed n (trailing buckets are then empty).
Result<Histogram> BuildPerfectHistogram(const ValueSet& population,
                                        std::uint64_t k,
                                        ThreadPool* pool = nullptr);

// The approximate histogram of Section 3.1: separators from a sorted random
// sample; claimed counts are the sample's per-bucket counts scaled to
// population_size (summing to it exactly). On duplicate-free data the
// separators make every sample bucket hold ~r/k values, so the claims come
// out as the even population_size/k split of the paper's definition; under
// heavy duplication (Section 5) the bucket holding a repeated value keeps
// its true scaled share instead of a fictitious n/k. The claimed counts are
// what an optimizer would use; measure true counts with
// Histogram::PartitionCounts / MeasuredAgainst.
Result<Histogram> BuildHistogramFromSample(std::span<const Value> sorted_sample,
                                           std::uint64_t k,
                                           std::uint64_t population_size,
                                           ThreadPool* pool = nullptr);

// Convenience overload for an accumulated Sample.
Result<Histogram> BuildHistogramFromSample(const Sample& sample,
                                           std::uint64_t k,
                                           std::uint64_t population_size,
                                           ThreadPool* pool = nullptr);

}  // namespace equihist

#endif  // EQUIHIST_CORE_HISTOGRAM_BUILDER_H_
