#include "core/bounds.h"

#include <cmath>
#include <limits>

namespace equihist {
namespace {

Status ValidateGamma(double gamma) {
  if (!(gamma > 0.0 && gamma < 1.0)) {
    return Status::InvalidArgument("gamma must be in (0, 1)");
  }
  return Status::OK();
}

Status ValidateF(double f) {
  if (!(f > 0.0 && f <= 1.0)) {
    return Status::InvalidArgument("f must be in (0, 1]");
  }
  return Status::OK();
}

Status ValidatePositive(std::uint64_t v, const char* name) {
  if (v == 0) {
    return Status::InvalidArgument(std::string(name) + " must be positive");
  }
  return Status::OK();
}

// ceil of a non-negative double as uint64, saturating.
std::uint64_t CeilToU64(double x) {
  if (x <= 0.0) return 0;
  const double c = std::ceil(x);
  if (c >= static_cast<double>(std::numeric_limits<std::uint64_t>::max())) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return static_cast<std::uint64_t>(c);
}

}  // namespace

Result<std::uint64_t> DeviationSampleSize(std::uint64_t n, std::uint64_t k,
                                          double f, double gamma) {
  EQUIHIST_RETURN_IF_ERROR(ValidatePositive(n, "n"));
  EQUIHIST_RETURN_IF_ERROR(ValidatePositive(k, "k"));
  EQUIHIST_RETURN_IF_ERROR(ValidateF(f));
  EQUIHIST_RETURN_IF_ERROR(ValidateGamma(gamma));
  const double r = 4.0 * static_cast<double>(k) *
                   std::log(2.0 * static_cast<double>(n) / gamma) / (f * f);
  return CeilToU64(r);
}

Result<std::uint64_t> DeviationSampleSizeAbsolute(std::uint64_t n,
                                                  std::uint64_t k, double delta,
                                                  double gamma) {
  EQUIHIST_RETURN_IF_ERROR(ValidatePositive(n, "n"));
  EQUIHIST_RETURN_IF_ERROR(ValidatePositive(k, "k"));
  EQUIHIST_RETURN_IF_ERROR(ValidateGamma(gamma));
  const double ideal = static_cast<double>(n) / static_cast<double>(k);
  if (!(delta > 0.0 && delta <= ideal)) {
    return Status::InvalidArgument("delta must be in (0, n/k]");
  }
  const double nd = static_cast<double>(n);
  const double r = 4.0 * nd * nd * std::log(2.0 * nd / gamma) /
                   (static_cast<double>(k) * delta * delta);
  return CeilToU64(r);
}

Result<double> DeviationErrorForSampleSize(std::uint64_t n, std::uint64_t k,
                                           std::uint64_t r, double gamma) {
  EQUIHIST_RETURN_IF_ERROR(ValidatePositive(n, "n"));
  EQUIHIST_RETURN_IF_ERROR(ValidatePositive(k, "k"));
  EQUIHIST_RETURN_IF_ERROR(ValidatePositive(r, "r"));
  EQUIHIST_RETURN_IF_ERROR(ValidateGamma(gamma));
  return std::sqrt(4.0 * static_cast<double>(k) *
                   std::log(2.0 * static_cast<double>(n) / gamma) /
                   static_cast<double>(r));
}

Result<std::uint64_t> MaxBucketsForSampleSize(std::uint64_t n, std::uint64_t r,
                                              double f, double gamma) {
  EQUIHIST_RETURN_IF_ERROR(ValidatePositive(n, "n"));
  EQUIHIST_RETURN_IF_ERROR(ValidatePositive(r, "r"));
  EQUIHIST_RETURN_IF_ERROR(ValidateF(f));
  EQUIHIST_RETURN_IF_ERROR(ValidateGamma(gamma));
  const double k = static_cast<double>(r) * f * f /
                   (4.0 * std::log(2.0 * static_cast<double>(n) / gamma));
  if (k < 1.0) return std::uint64_t{0};
  return static_cast<std::uint64_t>(std::floor(k));
}

Result<double> DeviationFailureProbability(std::uint64_t n, std::uint64_t k,
                                           double f, std::uint64_t r) {
  EQUIHIST_RETURN_IF_ERROR(ValidatePositive(n, "n"));
  EQUIHIST_RETURN_IF_ERROR(ValidatePositive(k, "k"));
  EQUIHIST_RETURN_IF_ERROR(ValidatePositive(r, "r"));
  EQUIHIST_RETURN_IF_ERROR(ValidateF(f));
  const double gamma =
      2.0 * static_cast<double>(n) *
      std::exp(-static_cast<double>(r) * f * f / (4.0 * static_cast<double>(k)));
  return gamma > 1.0 ? 1.0 : gamma;
}

Result<std::uint64_t> DeviationSampleSizeWithoutReplacement(std::uint64_t n,
                                                            std::uint64_t k,
                                                            double f,
                                                            double gamma) {
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t r_wr,
                            DeviationSampleSize(n, k, f, gamma));
  const double nd = static_cast<double>(n);
  const double adjusted = static_cast<double>(r_wr) * nd /
                          (nd - 1.0 + static_cast<double>(r_wr));
  const std::uint64_t r_wor = CeilToU64(adjusted);
  return r_wor > n ? n : r_wor;
}

Result<std::uint64_t> SeparationSampleSize(std::uint64_t n, std::uint64_t k,
                                           double delta, double gamma) {
  EQUIHIST_RETURN_IF_ERROR(ValidatePositive(n, "n"));
  EQUIHIST_RETURN_IF_ERROR(ValidatePositive(k, "k"));
  EQUIHIST_RETURN_IF_ERROR(ValidateGamma(gamma));
  const double ideal = static_cast<double>(n) / static_cast<double>(k);
  if (!(delta > 0.0 && delta <= ideal)) {
    return Status::InvalidArgument("delta must be in (0, n/k]");
  }
  const double nd = static_cast<double>(n);
  const double r = 12.0 * nd * nd *
                   std::log(2.0 * static_cast<double>(k) / gamma) /
                   (delta * delta);
  return CeilToU64(r);
}

Result<double> SeparationErrorForSampleSize(std::uint64_t n, std::uint64_t k,
                                            std::uint64_t r, double gamma) {
  EQUIHIST_RETURN_IF_ERROR(ValidatePositive(n, "n"));
  EQUIHIST_RETURN_IF_ERROR(ValidatePositive(k, "k"));
  EQUIHIST_RETURN_IF_ERROR(ValidatePositive(r, "r"));
  EQUIHIST_RETURN_IF_ERROR(ValidateGamma(gamma));
  const double nd = static_cast<double>(n);
  return std::sqrt(12.0 * nd * nd *
                   std::log(2.0 * static_cast<double>(k) / gamma) /
                   static_cast<double>(r));
}

Result<std::uint64_t> CrossValidationDetectSize(std::uint64_t k, double f,
                                                double gamma) {
  EQUIHIST_RETURN_IF_ERROR(ValidatePositive(k, "k"));
  EQUIHIST_RETURN_IF_ERROR(ValidateF(f));
  EQUIHIST_RETURN_IF_ERROR(ValidateGamma(gamma));
  return CeilToU64(4.0 * static_cast<double>(k) * std::log(1.0 / gamma) /
                   (f * f));
}

Result<std::uint64_t> CrossValidationAcceptSize(std::uint64_t k, double f,
                                                double gamma) {
  EQUIHIST_RETURN_IF_ERROR(ValidatePositive(k, "k"));
  EQUIHIST_RETURN_IF_ERROR(ValidateF(f));
  EQUIHIST_RETURN_IF_ERROR(ValidateGamma(gamma));
  return CeilToU64(16.0 * static_cast<double>(k) *
                   std::log(static_cast<double>(k) / gamma) / (f * f));
}

Result<std::uint64_t> SingleQuerySampleSize(std::uint64_t n, double s,
                                            double delta, double gamma) {
  EQUIHIST_RETURN_IF_ERROR(ValidatePositive(n, "n"));
  EQUIHIST_RETURN_IF_ERROR(ValidateGamma(gamma));
  const double nd = static_cast<double>(n);
  if (!(s > 0.0 && s <= nd)) {
    return Status::InvalidArgument("expected output s must be in (0, n]");
  }
  if (!(delta > 0.0 && delta <= nd)) {
    return Status::InvalidArgument("delta must be in (0, n]");
  }
  const double r = 3.0 * s * nd * std::log(2.0 / gamma) / (delta * delta);
  return CeilToU64(r);
}

Result<GmpBound> GmpTheorem6(std::uint64_t n, std::uint64_t k, double c) {
  EQUIHIST_RETURN_IF_ERROR(ValidatePositive(n, "n"));
  if (k < 3) return Status::InvalidArgument("Theorem 6 requires k >= 3");
  if (c < 4.0) return Status::InvalidArgument("Theorem 6 requires c >= 4");
  const double kd = static_cast<double>(k);
  const double ln_k = std::log(kd);
  GmpBound bound;
  bound.r = CeilToU64(c * kd * ln_k * ln_k);
  bound.f = std::pow(c * ln_k * ln_k, -1.0 / 6.0);
  bound.gamma = std::pow(kd, 1.0 - std::sqrt(c)) +
                std::pow(static_cast<double>(n), -1.0 / 3.0);
  bound.min_n_theorem = (k >= (1ULL << 21))
                            ? std::numeric_limits<std::uint64_t>::max()
                            : k * k * k;
  bound.min_n_example = std::pow(static_cast<double>(bound.r), 3.0);
  return bound;
}

Result<double> DistinctValueErrorLowerBound(std::uint64_t n, std::uint64_t r,
                                            double gamma) {
  EQUIHIST_RETURN_IF_ERROR(ValidatePositive(n, "n"));
  EQUIHIST_RETURN_IF_ERROR(ValidatePositive(r, "r"));
  EQUIHIST_RETURN_IF_ERROR(ValidateGamma(gamma));
  if (gamma <= std::exp(-static_cast<double>(r))) {
    return Status::InvalidArgument("Theorem 8 requires gamma > e^{-r}");
  }
  return std::sqrt(static_cast<double>(n) * std::log(1.0 / gamma) /
                   static_cast<double>(r));
}

}  // namespace equihist
