#ifndef EQUIHIST_CORE_COMPRESSED_HISTOGRAM_H_
#define EQUIHIST_CORE_COMPRESSED_HISTOGRAM_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/histogram.h"
#include "data/value_set.h"
#include "data/workload.h"

namespace equihist {

// Compressed histograms (Section 5 / the full paper's alternative for
// heavily duplicated columns): values whose multiplicity exceeds the ideal
// bucket size n/k are pulled out into exact singleton buckets, and the
// remaining values are summarized by an equi-height histogram over the
// leftover bucket budget. SQL Server, DB2 and Oracle all ship variants of
// this structure.
class CompressedHistogram {
 public:
  struct Singleton {
    Value value = 0;
    std::uint64_t count = 0;

    friend bool operator==(const Singleton&, const Singleton&) = default;
  };

  // Builds the perfect compressed k-histogram for `population`: every value
  // with multiplicity > n/k becomes a singleton (up to k-1 of them, most
  // frequent first); the rest of the data fills the remaining buckets
  // equi-height. Requires k >= 1 and a non-empty population.
  static Result<CompressedHistogram> BuildPerfect(const ValueSet& population,
                                                  std::uint64_t k);

  // Builds an approximate compressed histogram from a sorted random sample
  // of `population_size` tuples: values whose *sample* multiplicity exceeds
  // r/k become singletons with counts scaled by n/r; the rest of the sample
  // drives the equi-height part.
  static Result<CompressedHistogram> BuildFromSample(
      std::span<const Value> sorted_sample, std::uint64_t k,
      std::uint64_t population_size);

  // Reassembles a compressed histogram from its parts (used by
  // deserialization and the HistogramModel backend adapter). Singletons
  // must be sorted by value, strictly increasing, with positive counts, and
  // must fit the bucket budget (k-1 of them when an equi-height part is
  // present, k otherwise). `total` is the claimed population size.
  static Result<CompressedHistogram> FromParts(
      std::vector<Singleton> singletons, std::optional<Histogram> equi_part,
      std::uint64_t bucket_budget, std::uint64_t total);

  // High-multiplicity values, sorted by value ascending.
  const std::vector<Singleton>& singletons() const { return singletons_; }

  // The equi-height part over non-singleton values; null when every bucket
  // went to singletons or no residual values exist.
  const Histogram* equi_height_part() const {
    return has_equi_part_ ? &equi_part_ : nullptr;
  }

  std::uint64_t bucket_budget() const { return k_; }
  std::uint64_t total() const { return total_; }

  // Range estimation lo < X <= hi: singletons contribute exactly, the
  // equi-height part by interpolation (Section 2.2 strategy).
  double EstimateRangeCount(const RangeQuery& query) const;

  std::string ToString(std::size_t max_entries = 8) const;

 private:
  CompressedHistogram() : equi_part_(Histogram::Create({}, {0}, 0, 0).value()) {}

  static Result<CompressedHistogram> Build(std::span<const Value> sorted,
                                           std::uint64_t k,
                                           std::uint64_t population_size,
                                           double scale);

  std::vector<Singleton> singletons_;
  Histogram equi_part_;
  bool has_equi_part_ = false;
  std::uint64_t k_ = 0;
  std::uint64_t total_ = 0;
};

// How faithfully an approximate compressed histogram reproduces the perfect
// one: singleton-set agreement plus count errors on the matched singletons
// and the f_max of the equi-height parts measured against the residual
// population.
struct CompressedComparisonReport {
  std::size_t perfect_singletons = 0;
  std::size_t approx_singletons = 0;
  std::size_t matched_singletons = 0;  // same value in both
  double max_singleton_count_rel_error = 0.0;
  double residual_f_max = 0.0;  // approx equi-part vs residual population
};

Result<CompressedComparisonReport> CompareCompressed(
    const CompressedHistogram& perfect, const CompressedHistogram& approx,
    const ValueSet& population);

}  // namespace equihist

#endif  // EQUIHIST_CORE_COMPRESSED_HISTOGRAM_H_
