#include "sampling/design_effect.h"

#include <algorithm>
#include <vector>

#include "common/math.h"
#include "common/rng.h"
#include "sampling/block_sampler.h"

namespace equihist {

Result<DesignEffect> EstimateDesignEffect(const Table& table,
                                          std::uint64_t blocks_to_probe,
                                          std::uint64_t seed, IoStats* stats) {
  if (table.tuple_count() == 0) {
    return Status::FailedPrecondition("cannot probe an empty table");
  }
  const std::uint64_t blocks = std::clamp<std::uint64_t>(
      blocks_to_probe, 2, table.page_count());
  if (table.page_count() < 2) {
    return Status::FailedPrecondition(
        "design effect needs at least two pages");
  }

  IncrementalBlockSampler sampler(&table, seed);
  std::vector<std::size_t> offsets;
  const std::vector<Value> pooled = sampler.NextBatch(blocks, stats, &offsets);
  if (pooled.size() < 2) {
    return Status::FailedPrecondition("probe sample too small");
  }

  // Empirical CDF positions (mid-rank for duplicates), in [0, 1].
  std::vector<Value> sorted = pooled;
  std::sort(sorted.begin(), sorted.end());
  const double m = static_cast<double>(sorted.size());
  auto position = [&](Value v) {
    const auto lo = std::lower_bound(sorted.begin(), sorted.end(), v);
    const auto hi = std::upper_bound(lo, sorted.end(), v);
    const double mid = 0.5 * (static_cast<double>(lo - sorted.begin()) +
                              static_cast<double>(hi - sorted.begin()));
    return mid / m;
  };

  std::vector<double> positions;
  positions.reserve(pooled.size());
  for (Value v : pooled) positions.push_back(position(v));
  const double total_variance = Variance(positions);

  DesignEffect result;
  result.blocks_probed = offsets.size();
  result.tuples_probed = pooled.size();
  const double avg_block = m / static_cast<double>(offsets.size());

  if (total_variance <= 1e-12) {
    // Degenerate (e.g. constant column): any block is representative.
    result.rho = 0.0;
    result.design_effect = 1.0;
    return result;
  }

  // Mean within-block variance of the CDF positions.
  KahanSum within_sum;
  std::size_t groups = 0;
  for (std::size_t g = 0; g < offsets.size(); ++g) {
    const std::size_t begin = offsets[g];
    const std::size_t end =
        (g + 1 < offsets.size()) ? offsets[g + 1] : pooled.size();
    if (end - begin < 2) continue;
    within_sum.Add(Variance(
        std::span<const double>(positions.data() + begin, end - begin)));
    ++groups;
  }
  if (groups == 0) {
    result.rho = 0.0;
    result.design_effect = 1.0;
    return result;
  }
  const double within = within_sum.Value() / static_cast<double>(groups);
  result.rho = std::clamp(1.0 - within / total_variance, 0.0, 1.0);
  result.design_effect = 1.0 + (avg_block - 1.0) * result.rho;
  return result;
}

}  // namespace equihist
