#include "sampling/sample.h"

#include <algorithm>

namespace equihist {

Sample::Sample(std::vector<Value> values) : values_(std::move(values)) {
  std::sort(values_.begin(), values_.end());
}

void Sample::Merge(std::vector<Value> batch) {
  std::sort(batch.begin(), batch.end());
  std::vector<Value> merged;
  merged.reserve(values_.size() + batch.size());
  std::merge(values_.begin(), values_.end(), batch.begin(), batch.end(),
             std::back_inserter(merged));
  values_ = std::move(merged);
}

std::uint64_t Sample::CountLessEqual(Value x) const {
  return static_cast<std::uint64_t>(
      std::upper_bound(values_.begin(), values_.end(), x) - values_.begin());
}

std::uint64_t Sample::DistinctCount() const {
  std::uint64_t distinct = 0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i == 0 || values_[i] != values_[i - 1]) ++distinct;
  }
  return distinct;
}

}  // namespace equihist
