#include "sampling/sample.h"

#include <algorithm>

#include "common/parallel_sort.h"

namespace equihist {

Sample::Sample(std::vector<Value> values, ThreadPool* pool)
    : values_(std::move(values)) {
  ParallelSort(values_, pool);
  distinct_ = CountDistinctSorted(values_.data(), values_.size(), pool);
}

void Sample::Merge(std::vector<Value> batch, ThreadPool* pool) {
  if (batch.empty()) return;
  ParallelSort(batch, pool);
  std::vector<Value> merged(values_.size() + batch.size());
  ParallelMergeSorted(values_.data(), values_.size(), batch.data(),
                      batch.size(), merged.data(), pool);
  values_ = std::move(merged);
  distinct_ = CountDistinctSorted(values_.data(), values_.size(), pool);
}

std::uint64_t Sample::CountLessEqual(Value x) const {
  return static_cast<std::uint64_t>(
      std::upper_bound(values_.begin(), values_.end(), x) - values_.begin());
}

}  // namespace equihist
