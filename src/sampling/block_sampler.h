#ifndef EQUIHIST_SAMPLING_BLOCK_SAMPLER_H_
#define EQUIHIST_SAMPLING_BLOCK_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/distribution.h"
#include "storage/io_stats.h"
#include "storage/table.h"

namespace equihist {

// Block-level (page-level) sampling: the Section 4 model. A sampled page
// contributes *all* of its tuples, so g sampled pages yield ~g*b tuples for
// the cost of g page reads — the efficiency the CVB algorithm exploits.

// Draws `num_blocks` distinct pages uniformly at random (without
// replacement) and returns all their tuples. Page reads are charged to
// `stats`. Returns InvalidArgument if num_blocks exceeds the page count.
Result<std::vector<Value>> SampleBlocksWithoutReplacement(const Table& table,
                                                          std::uint64_t num_blocks,
                                                          Rng& rng,
                                                          IoStats* stats);

// Same but with replacement (a page may be drawn twice and then contributes
// its tuples twice). Matches the with-replacement analysis model.
Result<std::vector<Value>> SampleBlocksWithReplacement(const Table& table,
                                                       std::uint64_t num_blocks,
                                                       Rng& rng, IoStats* stats);

// Incremental without-replacement page sampler: hands out random page ids
// in batches such that no page is ever repeated across batches. This is
// what the CVB algorithm's iterations use — iteration i's fresh blocks R_i
// must be disjoint from the accumulated sample R.
class IncrementalBlockSampler {
 public:
  // Table must outlive the sampler.
  IncrementalBlockSampler(const Table* table, std::uint64_t seed);

  std::uint64_t pages_remaining() const {
    return permutation_.size() - next_;
  }
  std::uint64_t pages_consumed() const { return next_; }

  // Returns the tuples of the next min(num_blocks, pages_remaining()) fresh
  // pages, charging I/O to `stats`. Returns an empty vector once the file
  // is exhausted. If `page_offsets` is non-null it receives the start
  // offset of each page's tuples within the returned vector (so callers
  // can stratify by block, e.g. CVB's one-tuple-per-block validation).
  std::vector<Value> NextBatch(std::uint64_t num_blocks, IoStats* stats,
                               std::vector<std::size_t>* page_offsets = nullptr);

 private:
  const Table* table_;
  std::vector<std::uint64_t> permutation_;  // random order of all page ids
  std::uint64_t next_ = 0;
};

}  // namespace equihist

#endif  // EQUIHIST_SAMPLING_BLOCK_SAMPLER_H_
