#ifndef EQUIHIST_SAMPLING_DESIGN_EFFECT_H_
#define EQUIHIST_SAMPLING_DESIGN_EFFECT_H_

#include <cstdint>

#include "common/result.h"
#include "storage/io_stats.h"
#include "storage/table.h"

namespace equihist {

// Quantifies Section 4.1's block-correlation scenarios. Block-level
// sampling treats each page as a cluster; survey statistics measures the
// penalty of cluster sampling with the *design effect*
//
//   deff = 1 + (b - 1) * rho,
//
// where b is the cluster (block) size and rho the intraclass correlation
// of the studied quantity within blocks. For histogram construction the
// relevant quantity is a tuple's position in the value CDF:
//   scenario (a), random layout:    rho ~ 0,  deff ~ 1  (g = r/b blocks)
//   scenario (b), sorted layout:    rho ~ 1,  deff ~ b  (g = r blocks)
//   scenario (c), partial cluster:  in between, deff = the paper's "x".
//
// The estimator probes a handful of random blocks, pools their tuples into
// an empirical CDF, and compares within-block variance of CDF positions
// against the total variance (ANOVA on clusters). The paper's adaptive
// algorithm discovers this factor implicitly by cross-validation; this
// estimator measures it explicitly, which is useful for predicting the
// block budget up front (see bench_fig7_clustering) and for diagnosing
// layouts.
struct DesignEffect {
  double rho = 0.0;            // intraclass correlation, clamped to [0, 1]
  double design_effect = 1.0;  // 1 + (b-1) rho, in [1, b]
  std::uint64_t blocks_probed = 0;
  std::uint64_t tuples_probed = 0;

  // Multiply the record-level block budget r/b by this factor to get the
  // block-sampling budget the layout actually needs.
  double BlockBudgetMultiplier() const { return design_effect; }
};

// Probes `blocks_to_probe` random blocks of `table` (without replacement,
// capped at the page count, minimum 2) and estimates the design effect.
// I/O is charged to `stats` if provided.
Result<DesignEffect> EstimateDesignEffect(const Table& table,
                                          std::uint64_t blocks_to_probe,
                                          std::uint64_t seed,
                                          IoStats* stats = nullptr);

}  // namespace equihist

#endif  // EQUIHIST_SAMPLING_DESIGN_EFFECT_H_
