#ifndef EQUIHIST_SAMPLING_SCHEDULE_H_
#define EQUIHIST_SAMPLING_SCHEDULE_H_

#include <cstdint>
#include <string_view>

#include "common/result.h"

namespace equihist {

// Stepping functions for the adaptive (CVB) algorithm: how many fresh
// blocks iteration i draws. The paper's analysis (Section 4.2) recommends
// doubling — g_i equals everything sampled so far, so cross-validation is
// always performed with a sample as large as the one being validated and
// total over-sampling is at most 2x. Its SQL Server experiments (Section
// 7.1) instead used linear steps of 5*sqrt(n) tuples to bound the cost of
// each merge. Both are provided, plus a geometric family interpolating
// between them; bench_ablation_schedule compares them.
enum class ScheduleKind {
  // g_0 = g, g_1 = g, g_i = 2^(i-1) * g: each batch equals the accumulated
  // sample size (the paper's analyzed schedule).
  kDoubling,
  // g_i = g for all i (the paper's experimental 5i*sqrt(n) stepping: equal
  // increments).
  kLinear,
  // g_i = g * ratio^i for a configurable ratio > 1.
  kGeometric,
};

std::string_view ScheduleKindToString(ScheduleKind kind);

struct ScheduleSpec {
  ScheduleKind kind = ScheduleKind::kDoubling;
  double geometric_ratio = 1.5;  // only for kGeometric
};

// Produces batch sizes for successive iterations. Batch sizes are in
// whatever unit the initial batch is in (blocks for CVB).
class StepSchedule {
 public:
  // initial_batch must be positive; geometric_ratio must be > 1 for
  // kGeometric.
  static Result<StepSchedule> Create(const ScheduleSpec& spec,
                                     std::uint64_t initial_batch);

  // Size of the iteration-th batch (iteration 0 is the initial sample).
  // Saturates instead of overflowing for absurd iteration counts.
  std::uint64_t BatchSize(std::uint64_t iteration) const;

  const ScheduleSpec& spec() const { return spec_; }
  std::uint64_t initial_batch() const { return initial_batch_; }

 private:
  StepSchedule(const ScheduleSpec& spec, std::uint64_t initial_batch)
      : spec_(spec), initial_batch_(initial_batch) {}

  ScheduleSpec spec_;
  std::uint64_t initial_batch_;
};

// The initial batch used by the paper's experimental stepping: 5*sqrt(n)
// tuples expressed in blocks, i.e. ceil(5*sqrt(n) / tuples_per_page),
// at least 1.
std::uint64_t PaperSqrtNInitialBatchBlocks(std::uint64_t n,
                                           std::uint32_t tuples_per_page);

}  // namespace equihist

#endif  // EQUIHIST_SAMPLING_SCHEDULE_H_
