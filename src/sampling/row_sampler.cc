#include "sampling/row_sampler.h"

#include <cassert>
#include <unordered_set>

namespace equihist {

std::vector<Value> SampleRowsWithReplacement(std::span<const Value> values,
                                             std::uint64_t r, Rng& rng) {
  assert(!values.empty());
  std::vector<Value> sample;
  sample.reserve(r);
  for (std::uint64_t i = 0; i < r; ++i) {
    sample.push_back(values[rng.NextBounded(values.size())]);
  }
  return sample;
}

Result<std::vector<Value>> SampleRowsWithoutReplacement(
    std::span<const Value> values, std::uint64_t r, Rng& rng) {
  const std::uint64_t n = values.size();
  if (r > n) {
    return Status::InvalidArgument(
        "sample size exceeds population for sampling without replacement");
  }
  std::vector<Value> sample;
  sample.reserve(r);
  if (r == 0) return sample;

  if (r <= n / 64) {
    // Floyd's algorithm: O(r) expected time, O(r) extra space.
    std::unordered_set<std::uint64_t> chosen;
    chosen.reserve(r * 2);
    for (std::uint64_t j = n - r; j < n; ++j) {
      const std::uint64_t t = rng.NextBounded(j + 1);
      const std::uint64_t pick = chosen.insert(t).second ? t : j;
      if (pick != t) chosen.insert(pick);
      sample.push_back(values[pick]);
    }
  } else {
    // Sequential selection: one pass, exact without-replacement semantics.
    std::uint64_t remaining_population = n;
    std::uint64_t remaining_sample = r;
    for (std::uint64_t i = 0; i < n && remaining_sample > 0; ++i) {
      // Include values[i] with probability remaining_sample / remaining_population.
      if (rng.NextBounded(remaining_population) < remaining_sample) {
        sample.push_back(values[i]);
        --remaining_sample;
      }
      --remaining_population;
    }
  }
  return sample;
}

Result<std::vector<Value>> SampleRowsBernoulli(std::span<const Value> values,
                                               double p, Rng& rng) {
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("Bernoulli probability must be in [0, 1]");
  }
  std::vector<Value> sample;
  sample.reserve(static_cast<std::size_t>(p * static_cast<double>(values.size())));
  for (Value v : values) {
    if (rng.NextBernoulli(p)) sample.push_back(v);
  }
  return sample;
}

Result<std::vector<Value>> SampleRowsFromTable(const Table& table,
                                               std::uint64_t r, Rng& rng,
                                               IoStats* stats,
                                               const RetryPolicy& retry) {
  std::vector<Value> sample;
  sample.reserve(r);
  const std::uint64_t pages = table.page_count();
  std::uint64_t consecutive_skips = 0;
  for (std::uint64_t i = 0; i < r; ++i) {
    // Uniform over tuples: pick a page weighted by its occupancy via
    // rejection on a uniform (page, slot) pair. All pages except possibly
    // the last are full, so at most one extra draw is ever needed.
    for (;;) {
      const std::uint64_t page_id = rng.NextBounded(pages);
      Result<const Page*> page =
          table.file().ReadPageRetrying(page_id, retry, stats);
      if (!page.ok()) {
        // Permanently unreadable: redraw. Draws are i.i.d. so this keeps
        // the sample uniform over the readable pages' tuples.
        if (stats != nullptr) ++stats->pages_skipped;
        if (++consecutive_skips >= kMaxConsecutiveSkips) {
          return Status::DataLoss(
              "row sampling gave up after " +
              std::to_string(consecutive_skips) +
              " consecutive unreadable pages; last: " +
              page.status().ToString());
        }
        continue;
      }
      consecutive_skips = 0;
      const std::uint32_t capacity = (*page)->capacity();
      const auto slot = static_cast<std::uint32_t>(rng.NextBounded(capacity));
      if (slot < (*page)->size()) {
        sample.push_back((*page)->at(slot));
        break;
      }
    }
  }
  return sample;
}

ReservoirSampler::ReservoirSampler(std::uint64_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  reservoir_.reserve(capacity);
}

void ReservoirSampler::Add(Value value) {
  ++seen_;
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(value);
    return;
  }
  const std::uint64_t j = rng_.NextBounded(seen_);
  if (j < capacity_) reservoir_[j] = value;
}

}  // namespace equihist
