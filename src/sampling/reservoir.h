#ifndef EQUIHIST_SAMPLING_RESERVOIR_H_
#define EQUIHIST_SAMPLING_RESERVOIR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "data/distribution.h"

namespace equihist {

// The persistent per-column backing sample of the incremental maintenance
// subsystem (DESIGN.md §15). Where ReservoirSampler (sampling/row_sampler.h)
// is a one-shot streaming helper, a BackingReservoir is *kept*: seeded from
// the paper-§4 block sample at first build, maintained under the column's
// insert/delete stream, serialized alongside the histogram so a restored
// column resumes warm, and consulted by the incremental equi-depth backend
// for bucket split/merge quantiles.
//
// Uniformity. Inserts follow Vitter's Algorithm R against the *live*
// population count: the arriving row enters a full reservoir with
// probability capacity / population. Deletes use counted replacement (the
// GMP backing-sample rule): the deleted row was in the reservoir with
// probability size / population, so a Bernoulli draw at that rate decides
// whether a slot is vacated; a vacated slot is NOT refilled — refilling
// would need a table read this subsystem exists to avoid — so sustained
// deletes decay the fill fraction, and the caller falls back to a full
// rebuild (reseeding the reservoir) once fill drops below its budget. A
// delete whose value the reservoir cannot supply is counted as a miss:
// evidence that the sample and the table have drifted apart.
//
// Determinism. Every randomized decision draws from a fresh Rng seeded with
// DeriveStreamSeed(seed, op_index) — the same SplitMix addressing scheme
// the parallel samplers use. The reservoir's state is therefore a pure
// function of (seed, operation sequence): independent of thread counts,
// timing, or how many other columns the owning manager maintains, and
// trivially serializable (seed + op counter, no RNG state).
class BackingReservoir {
 public:
  // Capacity must be positive. Any seed is valid.
  static Result<BackingReservoir> Create(std::uint64_t capacity,
                                         std::uint64_t seed);

  // Replaces the current contents with a uniform sample of a population of
  // `population` rows — the first-build seeding path. When the sample is
  // larger than the capacity, a deterministic partial Fisher-Yates pass
  // keeps a uniform capacity-sized subset. InvalidArgument when the sample
  // claims more rows than the population.
  Status SeedFromSample(std::span<const Value> sample,
                        std::uint64_t population);

  // One inserted row (Algorithm R against the live population).
  void Add(Value value);

  // One deleted row with value `value` (counted replacement; see above).
  // Returns true when a reservoir slot was vacated.
  bool Delete(Value value);

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t size() const { return reservoir_.size(); }
  // Live population estimate: rows represented by this reservoir.
  std::uint64_t population() const { return population_; }
  // Rows streamed through Add plus rows represented at seeding.
  std::uint64_t seen() const { return seen_; }
  // Operations applied since seeding (inserts + deletes) — the Δ the
  // repair-budget check compares against the population.
  std::uint64_t ops_since_seed() const { return ops_since_seed_; }
  // Deletes that vacated a slot / that should have but found no matching
  // value (drift evidence).
  std::uint64_t delete_hits() const { return delete_hits_; }
  std::uint64_t delete_misses() const { return delete_misses_; }

  // size() / min(capacity, population): 1.0 for a healthy reservoir,
  // decaying under sustained deletes. 1.0 when the population is empty.
  double fill_fraction() const;

  // The current sample, in reservoir order (the order is load-bearing for
  // determinism of future operations; sort a copy for quantile work).
  const std::vector<Value>& sample() const { return reservoir_; }
  std::vector<Value> SortedSample() const;

  // Wire codec (stats/wire_format.h dialect): varint capacity | varint
  // seed | varint population | varint seen | varint ops | varint
  // delete_hits | varint delete_misses | varint size | size zigzag values.
  // Everything is validated on the way in — corrupted bytes yield Status,
  // never UB.
  void SerializeTo(std::vector<std::uint8_t>* out) const;
  static Result<BackingReservoir> Deserialize(
      std::span<const std::uint8_t> bytes, std::size_t* consumed = nullptr);

 private:
  BackingReservoir(std::uint64_t capacity, std::uint64_t seed)
      : capacity_(capacity), seed_(seed) {}

  // The per-operation RNG stream index, advanced by every Add/Delete.
  std::uint64_t NextOpStream();

  std::uint64_t capacity_;
  std::uint64_t seed_;
  std::uint64_t population_ = 0;
  std::uint64_t seen_ = 0;
  std::uint64_t ops_ = 0;  // lifetime op counter: the RNG stream address
  std::uint64_t ops_since_seed_ = 0;
  std::uint64_t delete_hits_ = 0;
  std::uint64_t delete_misses_ = 0;
  std::vector<Value> reservoir_;
};

}  // namespace equihist

#endif  // EQUIHIST_SAMPLING_RESERVOIR_H_
