#ifndef EQUIHIST_SAMPLING_SAMPLE_H_
#define EQUIHIST_SAMPLING_SAMPLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/distribution.h"

namespace equihist {

// The accumulated sample R of the CVB algorithm: a multiset of sampled
// values kept sorted so that (a) equi-height separators can be read off by
// rank, and (b) a fresh batch R_i can be folded in with a linear merge —
// the "merge algorithm" extension the paper made to SQL Server's block
// sampling (Section 7.1, implementation note 2).
class Sample {
 public:
  Sample() = default;

  // Builds from unsorted values (sorts once).
  explicit Sample(std::vector<Value> values);

  std::uint64_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  // Merges an unsorted batch into the sample: sorts the batch and merges
  // the two sorted runs in linear time.
  void Merge(std::vector<Value> batch);

  // Sorted ascending.
  const std::vector<Value>& sorted_values() const { return values_; }

  // Number of sample values v with v <= x.
  std::uint64_t CountLessEqual(Value x) const;

  // The i-th smallest sampled value, 0-based.
  Value ValueAtRank(std::uint64_t rank) const { return values_[rank]; }

  // Number of distinct values currently in the sample.
  std::uint64_t DistinctCount() const;

 private:
  std::vector<Value> values_;
};

}  // namespace equihist

#endif  // EQUIHIST_SAMPLING_SAMPLE_H_
