#ifndef EQUIHIST_SAMPLING_SAMPLE_H_
#define EQUIHIST_SAMPLING_SAMPLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "data/distribution.h"

namespace equihist {

// The accumulated sample R of the CVB algorithm: a multiset of sampled
// values kept sorted so that (a) equi-height separators can be read off by
// rank, and (b) a fresh batch R_i can be folded in with a linear merge —
// the "merge algorithm" extension the paper made to SQL Server's block
// sampling (Section 7.1, implementation note 2).
//
// All operations accept an optional ThreadPool: sorting and merging then
// run as parallel runs + merge-path merges. The resulting vector is
// identical for every thread count (sorting scalars has a unique result),
// so sample-derived histograms are bit-reproducible across pools.
class Sample {
 public:
  Sample() = default;

  // Builds from unsorted values (sorts once, in parallel when a pool is
  // given).
  explicit Sample(std::vector<Value> values, ThreadPool* pool = nullptr);

  std::uint64_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  // Merges an unsorted batch into the sample: sorts the batch and merges
  // the two sorted runs in linear time (both steps parallel with a pool).
  void Merge(std::vector<Value> batch, ThreadPool* pool = nullptr);

  // Sorted ascending.
  const std::vector<Value>& sorted_values() const { return values_; }

  // Number of sample values v with v <= x.
  std::uint64_t CountLessEqual(Value x) const;

  // The i-th smallest sampled value, 0-based.
  Value ValueAtRank(std::uint64_t rank) const { return values_[rank]; }

  // Number of distinct values currently in the sample. Maintained during
  // sort/merge rather than recomputed per call — this sits inside the CVB
  // iteration loop.
  std::uint64_t DistinctCount() const { return distinct_; }

 private:
  std::vector<Value> values_;
  std::uint64_t distinct_ = 0;  // distinct values in values_, kept in sync
};

}  // namespace equihist

#endif  // EQUIHIST_SAMPLING_SAMPLE_H_
