#include "sampling/reservoir.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/rng.h"
#include "stats/wire_format.h"

namespace equihist {
namespace {

// Domain separator mixed into delete-side draws so an insert and a delete
// at the same op index never share a stream.
constexpr std::uint64_t kDeleteStreamSalt = 0xD417E5A1B2C3D4E5ULL;

// Deserialization plausibility cap: a reservoir is an in-memory sample, so
// a capacity claiming more than 2^26 (~64M) values is corruption, not data.
constexpr std::uint64_t kMaxPlausibleCapacity = 1ULL << 26;

}  // namespace

Result<BackingReservoir> BackingReservoir::Create(std::uint64_t capacity,
                                                  std::uint64_t seed) {
  if (capacity == 0) {
    return Status::InvalidArgument("reservoir capacity must be positive");
  }
  return BackingReservoir(capacity, seed);
}

std::uint64_t BackingReservoir::NextOpStream() { return ops_++; }

Status BackingReservoir::SeedFromSample(std::span<const Value> sample,
                                        std::uint64_t population) {
  if (sample.size() > population) {
    return Status::InvalidArgument(
        "backing sample claims more rows than the population");
  }
  reservoir_.assign(sample.begin(), sample.end());
  if (reservoir_.size() > capacity_) {
    // Deterministic partial Fisher-Yates: after i steps the prefix [0, i)
    // is a uniform without-replacement sample of the input, so keeping the
    // first `capacity_` elements keeps a uniform subset.
    Rng rng(DeriveStreamSeed(seed_, NextOpStream()));
    for (std::size_t i = 0; i < capacity_; ++i) {
      const std::uint64_t j =
          i + rng.NextBounded(reservoir_.size() - i);
      std::swap(reservoir_[i], reservoir_[j]);
    }
    reservoir_.resize(capacity_);
  }
  population_ = population;
  seen_ = population;
  ops_since_seed_ = 0;
  delete_hits_ = 0;
  delete_misses_ = 0;
  return Status::OK();
}

void BackingReservoir::Add(Value value) {
  ++population_;
  ++seen_;
  ++ops_since_seed_;
  const std::uint64_t stream = NextOpStream();
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(value);
    return;
  }
  // Algorithm R against the live population: the arriving row lands in the
  // reservoir with probability size / population.
  Rng rng(DeriveStreamSeed(seed_, stream));
  const std::uint64_t j = rng.NextBounded(population_);
  if (j < reservoir_.size()) reservoir_[j] = value;
}

bool BackingReservoir::Delete(Value value) {
  ++ops_since_seed_;
  const std::uint64_t stream = NextOpStream();
  if (population_ == 0) {
    // A delete against an empty population is drift by definition.
    ++delete_misses_;
    return false;
  }
  const std::uint64_t population_before = population_;
  --population_;
  if (reservoir_.empty()) return false;
  Rng rng(DeriveStreamSeed(seed_ ^ kDeleteStreamSalt, stream));
  // Counted replacement: the deleted row occupied a reservoir slot with
  // probability size / population. When the draw misses, the reservoir is
  // untouched (the deleted row was one of the unsampled rows).
  if (rng.NextBounded(population_before) >= reservoir_.size()) {
    // The invariant size <= population must survive even unsampled
    // deletes near exhaustion.
    if (reservoir_.size() > population_) reservoir_.pop_back();
    return false;
  }
  // The slot held the deleted row, so it held `value`. Vacate one matching
  // slot, chosen uniformly among duplicates so repeated deletes of a heavy
  // value do not always drain the same region of the reservoir.
  std::uint64_t matches = 0;
  for (const Value v : reservoir_) matches += (v == value) ? 1 : 0;
  if (matches == 0) {
    // The sample cannot supply the value: the reservoir has drifted from
    // the table (or the caller reported a delete that never happened).
    ++delete_misses_;
    if (reservoir_.size() > population_) reservoir_.pop_back();
    return false;
  }
  std::uint64_t target = rng.NextBounded(matches);
  for (std::size_t i = 0; i < reservoir_.size(); ++i) {
    if (reservoir_[i] != value) continue;
    if (target-- == 0) {
      reservoir_[i] = reservoir_.back();
      reservoir_.pop_back();
      break;
    }
  }
  ++delete_hits_;
  return true;
}

double BackingReservoir::fill_fraction() const {
  const std::uint64_t want = std::min(capacity_, population_);
  if (want == 0) return 1.0;
  return static_cast<double>(reservoir_.size()) / static_cast<double>(want);
}

std::vector<Value> BackingReservoir::SortedSample() const {
  std::vector<Value> sorted = reservoir_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

void BackingReservoir::SerializeTo(std::vector<std::uint8_t>* out) const {
  wire::PutVarint(capacity_, out);
  wire::PutVarint(seed_, out);
  wire::PutVarint(population_, out);
  wire::PutVarint(seen_, out);
  wire::PutVarint(ops_, out);
  wire::PutVarint(ops_since_seed_, out);
  wire::PutVarint(delete_hits_, out);
  wire::PutVarint(delete_misses_, out);
  wire::PutVarint(reservoir_.size(), out);
  for (const Value v : reservoir_) wire::PutSigned(v, out);
}

Result<BackingReservoir> BackingReservoir::Deserialize(
    std::span<const std::uint8_t> bytes, std::size_t* consumed) {
  wire::Reader reader(bytes);
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t capacity, reader.Varint());
  if (capacity == 0 || capacity > kMaxPlausibleCapacity) {
    return Status::InvalidArgument("implausible reservoir capacity");
  }
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t seed, reader.Varint());
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t population, reader.Varint());
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t seen, reader.Varint());
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t ops, reader.Varint());
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t ops_since_seed,
                            reader.Varint());
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t delete_hits, reader.Varint());
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t delete_misses,
                            reader.Varint());
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t size,
                            reader.LengthPrefixedCount());
  if (size > capacity) {
    return Status::InvalidArgument("reservoir size exceeds its capacity");
  }
  if (size > population) {
    return Status::InvalidArgument("reservoir size exceeds its population");
  }
  if (ops_since_seed > ops) {
    return Status::InvalidArgument(
        "reservoir op counters are mutually inconsistent");
  }
  BackingReservoir reservoir(capacity, seed);
  reservoir.population_ = population;
  reservoir.seen_ = seen;
  reservoir.ops_ = ops;
  reservoir.ops_since_seed_ = ops_since_seed;
  reservoir.delete_hits_ = delete_hits;
  reservoir.delete_misses_ = delete_misses;
  reservoir.reservoir_.reserve(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    EQUIHIST_ASSIGN_OR_RETURN(const std::int64_t v, reader.Signed());
    reservoir.reservoir_.push_back(v);
  }
  if (consumed != nullptr) *consumed = reader.position();
  return reservoir;
}

}  // namespace equihist
