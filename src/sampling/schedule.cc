#include "sampling/schedule.h"

#include <cmath>
#include <limits>

namespace equihist {

std::string_view ScheduleKindToString(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::kDoubling:
      return "doubling";
    case ScheduleKind::kLinear:
      return "linear";
    case ScheduleKind::kGeometric:
      return "geometric";
  }
  return "unknown";
}

Result<StepSchedule> StepSchedule::Create(const ScheduleSpec& spec,
                                          std::uint64_t initial_batch) {
  if (initial_batch == 0) {
    return Status::InvalidArgument("initial batch size must be positive");
  }
  if (spec.kind == ScheduleKind::kGeometric && spec.geometric_ratio <= 1.0) {
    return Status::InvalidArgument("geometric ratio must exceed 1");
  }
  return StepSchedule(spec, initial_batch);
}

std::uint64_t StepSchedule::BatchSize(std::uint64_t iteration) const {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  switch (spec_.kind) {
    case ScheduleKind::kDoubling: {
      if (iteration <= 1) return initial_batch_;
      const std::uint64_t shift = iteration - 1;
      if (shift >= 63) return kMax;
      const std::uint64_t factor = 1ULL << shift;
      if (initial_batch_ > kMax / factor) return kMax;
      return initial_batch_ * factor;
    }
    case ScheduleKind::kLinear:
      return initial_batch_;
    case ScheduleKind::kGeometric: {
      const double size = static_cast<double>(initial_batch_) *
                          std::pow(spec_.geometric_ratio,
                                   static_cast<double>(iteration));
      if (size >= static_cast<double>(kMax)) return kMax;
      const auto rounded = static_cast<std::uint64_t>(std::llround(size));
      return rounded == 0 ? 1 : rounded;
    }
  }
  return initial_batch_;
}

std::uint64_t PaperSqrtNInitialBatchBlocks(std::uint64_t n,
                                           std::uint32_t tuples_per_page) {
  if (tuples_per_page == 0) return 1;
  const double tuples = 5.0 * std::sqrt(static_cast<double>(n));
  const auto blocks = static_cast<std::uint64_t>(
      std::ceil(tuples / static_cast<double>(tuples_per_page)));
  return blocks == 0 ? 1 : blocks;
}

}  // namespace equihist
