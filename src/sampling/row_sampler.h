#ifndef EQUIHIST_SAMPLING_ROW_SAMPLER_H_
#define EQUIHIST_SAMPLING_ROW_SAMPLER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "common/rng.h"
#include "data/distribution.h"
#include "storage/io_stats.h"
#include "storage/table.h"

namespace equihist {

// Record-level (tuple-level) samplers: the Section 3 model. Sampling is
// uniform over tuples, ignoring page boundaries. Over a Table this is the
// "prohibitively expensive" access path the paper warns about — each
// sampled tuple charges a full page read.

// r tuples uniformly with replacement from `values` (the paper's default
// analysis model, binomial tails).
std::vector<Value> SampleRowsWithReplacement(std::span<const Value> values,
                                             std::uint64_t r, Rng& rng);

// r tuples uniformly without replacement (hypergeometric model). Returns
// InvalidArgument if r exceeds values.size(). Uses Floyd's algorithm for
// small r and sequential (Vitter Algorithm S style) selection for large r.
Result<std::vector<Value>> SampleRowsWithoutReplacement(
    std::span<const Value> values, std::uint64_t r, Rng& rng);

// Bernoulli sample: each tuple included independently with probability p in
// [0, 1]. Sample size is binomially distributed around p * n.
Result<std::vector<Value>> SampleRowsBernoulli(std::span<const Value> values,
                                               double p, Rng& rng);

// Record-level sampling against the paged table, charging one page read per
// sampled tuple (no caching — the pessimistic model of Section 4's opening
// argument). With replacement.
//
// Fault handling (DESIGN.md §11): transient read faults are retried per
// `retry`; a page that stays permanently unreadable is simply redrawn —
// with-replacement draws are i.i.d. uniform, so redrawing conditions the
// sample on the readable pages without bias. Skipped draws are charged to
// stats->pages_skipped. Returns kDataLoss if kMaxConsecutiveSkips draws in
// a row land on unreadable pages (the table is effectively gone).
inline constexpr std::uint64_t kMaxConsecutiveSkips = 64;
Result<std::vector<Value>> SampleRowsFromTable(const Table& table,
                                               std::uint64_t r, Rng& rng,
                                               IoStats* stats,
                                               const RetryPolicy& retry = {});

// Streaming reservoir sampler (Vitter's Algorithm R): maintains a uniform
// without-replacement sample of fixed capacity over a stream of unknown
// length. Not used by the paper's algorithms but part of any practical
// ANALYZE substrate; exercised by tests and the quickstart example.
class ReservoirSampler {
 public:
  ReservoirSampler(std::uint64_t capacity, std::uint64_t seed);

  void Add(Value value);

  std::uint64_t seen() const { return seen_; }
  std::uint64_t capacity() const { return capacity_; }

  // The current reservoir (unordered). A uniform without-replacement sample
  // of min(capacity, seen) of the values added so far.
  const std::vector<Value>& sample() const { return reservoir_; }

 private:
  std::uint64_t capacity_;
  std::uint64_t seen_ = 0;
  std::vector<Value> reservoir_;
  Rng rng_;
};

}  // namespace equihist

#endif  // EQUIHIST_SAMPLING_ROW_SAMPLER_H_
