#include "sampling/block_sampler.h"

#include <cassert>
#include <numeric>

namespace equihist {
namespace {

// Reads one page with retry and appends its tuples. Permanent failures
// propagate as the page's typed status.
Status AppendPage(const Table& table, std::uint64_t page_id,
                  const RetryPolicy& retry, IoStats* stats,
                  std::vector<Value>& out) {
  EQUIHIST_ASSIGN_OR_RETURN(
      const Page* page, table.file().ReadPageRetrying(page_id, retry, stats));
  for (Value v : page->values()) out.push_back(v);
  return Status::OK();
}

// Outcome of the parallel read of one page-id list.
struct ParallelReadResult {
  std::vector<Value> values;            // successful pages, in id-list order
  std::vector<std::size_t> offsets;     // per surviving page, into `values`
  std::uint64_t pages_failed = 0;       // permanently unreadable
  std::uint64_t pages_corrupt = 0;      // subset: checksum failures
};

// Reads `page_ids` into a freshly sized vector, fanning the page reads out
// across the pool with per-page transient retry. Each page's destination
// offset is precomputed from the (uncharged) page sizes, so the output is
// byte-identical to a sequential read loop; per-shard IoStats are summed
// in shard order afterwards so the charged totals match too. Pages that
// stay unreadable are dropped: their slots are compacted out afterwards
// (in page-id-list order, so the surviving output is again thread-count
// independent) and counted in the result — the caller charges the skips
// and decides whether to resample or fail.
ParallelReadResult ReadPagesParallel(const Table& table,
                                     const std::vector<std::uint64_t>& page_ids,
                                     const RetryPolicy& retry, IoStats* stats,
                                     ThreadPool* pool) {
  std::vector<std::size_t> offsets(page_ids.size() + 1, 0);
  for (std::size_t p = 0; p < page_ids.size(); ++p) {
    offsets[p + 1] = offsets[p] + table.file().page(page_ids[p]).size();
  }
  std::vector<Value> out(offsets.back());
  const std::size_t shards = pool == nullptr ? 1 : pool->size();
  std::vector<IoStats> shard_stats(shards);
  // 0 = ok, 1 = failed, 2 = failed with checksum mismatch. Written by one
  // shard each, read after the join.
  std::vector<std::uint8_t> failed(page_ids.size(), 0);
  auto read_range = [&](std::size_t lo, std::size_t hi, std::size_t s) {
    IoStats& local = shard_stats[s];
    for (std::size_t p = lo; p < hi; ++p) {
      Result<const Page*> page =
          table.file().ReadPageRetrying(page_ids[p], retry, &local);
      if (!page.ok()) {
        const bool corrupt =
            page.status().code() == StatusCode::kDataLoss &&
            page.status().message().find("checksum") != std::string::npos;
        failed[p] = corrupt ? 2 : 1;
        continue;
      }
      const auto values = (*page)->values();
      std::copy(values.begin(), values.end(), out.begin() + offsets[p]);
    }
  };
  if (pool == nullptr || shards <= 1) {
    read_range(0, page_ids.size(), 0);
  } else {
    pool->ParallelFor(0, page_ids.size(), shards, read_range);
  }
  if (stats != nullptr) {
    for (const IoStats& s : shard_stats) *stats += s;
  }

  ParallelReadResult result;
  result.offsets.reserve(page_ids.size());
  bool any_failed = false;
  for (std::size_t p = 0; p < page_ids.size(); ++p) {
    if (failed[p] != 0) {
      any_failed = true;
      ++result.pages_failed;
      if (failed[p] == 2) ++result.pages_corrupt;
    }
  }
  if (!any_failed) {
    result.values = std::move(out);
    result.offsets.assign(offsets.begin(), offsets.end() - 1);
    return result;
  }
  // Compact the failed pages' slots out, preserving id-list order.
  std::vector<Value> compacted;
  compacted.reserve(out.size());
  for (std::size_t p = 0; p < page_ids.size(); ++p) {
    if (failed[p] != 0) continue;
    result.offsets.push_back(compacted.size());
    compacted.insert(compacted.end(),
                     out.begin() + static_cast<std::ptrdiff_t>(offsets[p]),
                     out.begin() + static_cast<std::ptrdiff_t>(offsets[p + 1]));
  }
  result.values = std::move(compacted);
  return result;
}

}  // namespace

Result<std::vector<Value>> SampleBlocksWithoutReplacement(
    const Table& table, std::uint64_t num_blocks, Rng& rng, IoStats* stats,
    const RetryPolicy& retry) {
  const std::uint64_t pages = table.page_count();
  if (num_blocks > pages) {
    return Status::InvalidArgument(
        "num_blocks exceeds page count for block sampling without "
        "replacement");
  }
  // Partial Fisher-Yates over the page-id array: O(pages) space, O(blocks)
  // time after setup. Page counts are ~n/b, small enough that the id array
  // is cheap relative to the table itself.
  std::vector<std::uint64_t> ids(pages);
  std::iota(ids.begin(), ids.end(), 0);
  std::vector<Value> out;
  out.reserve(num_blocks * table.tuples_per_page());
  for (std::uint64_t i = 0; i < num_blocks; ++i) {
    const std::uint64_t j = i + rng.NextBounded(pages - i);
    std::swap(ids[i], ids[j]);
    EQUIHIST_RETURN_IF_ERROR(AppendPage(table, ids[i], retry, stats, out));
  }
  return out;
}

Result<std::vector<Value>> SampleBlocksWithReplacement(const Table& table,
                                                       std::uint64_t num_blocks,
                                                       Rng& rng,
                                                       IoStats* stats,
                                                       const RetryPolicy& retry) {
  const std::uint64_t pages = table.page_count();
  if (pages == 0) {
    return Status::InvalidArgument("cannot sample from an empty table");
  }
  std::vector<Value> out;
  out.reserve(num_blocks * table.tuples_per_page());
  for (std::uint64_t i = 0; i < num_blocks; ++i) {
    EQUIHIST_RETURN_IF_ERROR(
        AppendPage(table, rng.NextBounded(pages), retry, stats, out));
  }
  return out;
}

Result<std::vector<Value>> SampleBlocksWithReplacement(
    const Table& table, std::uint64_t num_blocks, std::uint64_t seed,
    IoStats* stats, ThreadPool* pool, const RetryPolicy& retry) {
  const std::uint64_t pages = table.page_count();
  if (pages == 0) {
    return Status::InvalidArgument("cannot sample from an empty table");
  }
  // Phase 1: choose page ids. Spans of kDrawsPerStream consecutive draws
  // each come from their own SplitMix-derived stream, so the id vector
  // depends only on (seed, num_blocks) — never on the pool.
  std::vector<std::uint64_t> ids(num_blocks);
  const std::size_t streams = static_cast<std::size_t>(
      (num_blocks + kDrawsPerStream - 1) / kDrawsPerStream);
  auto draw_span = [&](std::size_t s) {
    Rng rng(DeriveStreamSeed(seed, s));
    const std::size_t lo = s * kDrawsPerStream;
    const std::size_t hi =
        std::min<std::size_t>(lo + kDrawsPerStream, num_blocks);
    for (std::size_t i = lo; i < hi; ++i) ids[i] = rng.NextBounded(pages);
  };
  if (pool == nullptr || pool->size() <= 1 || streams <= 1) {
    for (std::size_t s = 0; s < streams; ++s) draw_span(s);
  } else {
    pool->ParallelFor(0, streams, pool->size(),
                      [&](std::size_t lo, std::size_t hi, std::size_t) {
                        for (std::size_t s = lo; s < hi; ++s) draw_span(s);
                      });
  }
  // Phase 2: read the chosen pages concurrently. The seed-addressed
  // contract promises exactly these draws, so unreadable pages fail the
  // sample rather than shrink it.
  ParallelReadResult read =
      ReadPagesParallel(table, ids, retry, stats, pool);
  if (read.pages_failed > 0) {
    if (stats != nullptr) {
      stats->pages_skipped += read.pages_failed;
      stats->pages_corrupt += read.pages_corrupt;
    }
    return Status::DataLoss(
        std::to_string(read.pages_failed) +
        " of the sampled blocks are permanently unreadable (" +
        std::to_string(read.pages_corrupt) + " corrupt)");
  }
  return std::move(read.values);
}

IncrementalBlockSampler::IncrementalBlockSampler(const Table* table,
                                                 std::uint64_t seed,
                                                 ThreadPool* pool)
    : table_(table), pool_(pool), permutation_(table->page_count()) {
  assert(table_ != nullptr);
  std::iota(permutation_.begin(), permutation_.end(), 0);
  Rng rng(seed);
  for (std::size_t i = permutation_.size(); i > 1; --i) {
    const std::uint64_t j = rng.NextBounded(i);
    std::swap(permutation_[i - 1], permutation_[j]);
  }
}

std::vector<Value> IncrementalBlockSampler::NextBatch(
    std::uint64_t num_blocks, IoStats* stats,
    std::vector<std::size_t>* page_offsets) {
  std::vector<Value> values;
  std::vector<std::size_t> offsets;
  std::uint64_t readable = 0;  // pages delivered so far this batch
  // Read, then top the batch back up with the next permutation entries for
  // every skipped page: the permutation is a uniform random order of all
  // pages, so the pages delivered remain a uniform without-replacement
  // sample of the readable ones.
  while (readable < num_blocks && pages_remaining() > 0) {
    const std::uint64_t take =
        std::min<std::uint64_t>(num_blocks - readable, pages_remaining());
    const std::vector<std::uint64_t> ids(
        permutation_.begin() + static_cast<std::ptrdiff_t>(next_),
        permutation_.begin() + static_cast<std::ptrdiff_t>(next_ + take));
    next_ += take;
    ParallelReadResult read =
        ReadPagesParallel(*table_, ids, retry_, stats, pool_);
    if (read.pages_failed > 0) {
      pages_skipped_ += read.pages_failed;
      if (stats != nullptr) {
        stats->pages_skipped += read.pages_failed;
        stats->pages_corrupt += read.pages_corrupt;
      }
    }
    readable += take - read.pages_failed;
    if (values.empty()) {
      values = std::move(read.values);
      offsets = std::move(read.offsets);
    } else {
      const std::size_t base = values.size();
      for (const std::size_t off : read.offsets) offsets.push_back(base + off);
      values.insert(values.end(), read.values.begin(), read.values.end());
    }
  }
  if (page_offsets != nullptr) *page_offsets = std::move(offsets);
  return values;
}

}  // namespace equihist
