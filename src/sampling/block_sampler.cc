#include "sampling/block_sampler.h"

#include <cassert>
#include <numeric>

namespace equihist {
namespace {

void AppendPage(const Table& table, std::uint64_t page_id, IoStats* stats,
                std::vector<Value>& out) {
  Result<const Page*> page = table.file().ReadPage(page_id, stats);
  assert(page.ok());
  for (Value v : (*page)->values()) out.push_back(v);
}

// Reads `page_ids` into a freshly sized vector, fanning the page reads out
// across the pool. Each page's destination offset is precomputed from the
// (uncharged) page sizes, so the output is byte-identical to a sequential
// read loop; per-shard IoStats are summed in shard order afterwards so the
// charged totals match too.
std::vector<Value> ReadPagesParallel(const Table& table,
                                     const std::vector<std::uint64_t>& page_ids,
                                     IoStats* stats, ThreadPool* pool,
                                     std::vector<std::size_t>* page_offsets) {
  std::vector<std::size_t> offsets(page_ids.size() + 1, 0);
  for (std::size_t p = 0; p < page_ids.size(); ++p) {
    offsets[p + 1] = offsets[p] + table.file().page(page_ids[p]).size();
  }
  std::vector<Value> out(offsets.back());
  const std::size_t shards = pool == nullptr ? 1 : pool->size();
  std::vector<IoStats> shard_stats(shards);
  auto read_range = [&](std::size_t lo, std::size_t hi, std::size_t s) {
    IoStats& local = shard_stats[s];
    for (std::size_t p = lo; p < hi; ++p) {
      Result<const Page*> page = table.file().ReadPage(page_ids[p], &local);
      assert(page.ok());
      const auto values = (*page)->values();
      std::copy(values.begin(), values.end(), out.begin() + offsets[p]);
    }
  };
  if (pool == nullptr || shards <= 1) {
    read_range(0, page_ids.size(), 0);
  } else {
    pool->ParallelFor(0, page_ids.size(), shards, read_range);
  }
  if (stats != nullptr) {
    for (const IoStats& s : shard_stats) *stats += s;
  }
  if (page_offsets != nullptr) {
    page_offsets->assign(offsets.begin(), offsets.end() - 1);
  }
  return out;
}

}  // namespace

Result<std::vector<Value>> SampleBlocksWithoutReplacement(
    const Table& table, std::uint64_t num_blocks, Rng& rng, IoStats* stats) {
  const std::uint64_t pages = table.page_count();
  if (num_blocks > pages) {
    return Status::InvalidArgument(
        "num_blocks exceeds page count for block sampling without "
        "replacement");
  }
  // Partial Fisher-Yates over the page-id array: O(pages) space, O(blocks)
  // time after setup. Page counts are ~n/b, small enough that the id array
  // is cheap relative to the table itself.
  std::vector<std::uint64_t> ids(pages);
  std::iota(ids.begin(), ids.end(), 0);
  std::vector<Value> out;
  out.reserve(num_blocks * table.tuples_per_page());
  for (std::uint64_t i = 0; i < num_blocks; ++i) {
    const std::uint64_t j = i + rng.NextBounded(pages - i);
    std::swap(ids[i], ids[j]);
    AppendPage(table, ids[i], stats, out);
  }
  return out;
}

Result<std::vector<Value>> SampleBlocksWithReplacement(const Table& table,
                                                       std::uint64_t num_blocks,
                                                       Rng& rng,
                                                       IoStats* stats) {
  const std::uint64_t pages = table.page_count();
  if (pages == 0) {
    return Status::InvalidArgument("cannot sample from an empty table");
  }
  std::vector<Value> out;
  out.reserve(num_blocks * table.tuples_per_page());
  for (std::uint64_t i = 0; i < num_blocks; ++i) {
    AppendPage(table, rng.NextBounded(pages), stats, out);
  }
  return out;
}

Result<std::vector<Value>> SampleBlocksWithReplacement(
    const Table& table, std::uint64_t num_blocks, std::uint64_t seed,
    IoStats* stats, ThreadPool* pool) {
  const std::uint64_t pages = table.page_count();
  if (pages == 0) {
    return Status::InvalidArgument("cannot sample from an empty table");
  }
  // Phase 1: choose page ids. Spans of kDrawsPerStream consecutive draws
  // each come from their own SplitMix-derived stream, so the id vector
  // depends only on (seed, num_blocks) — never on the pool.
  std::vector<std::uint64_t> ids(num_blocks);
  const std::size_t streams = static_cast<std::size_t>(
      (num_blocks + kDrawsPerStream - 1) / kDrawsPerStream);
  auto draw_span = [&](std::size_t s) {
    Rng rng(DeriveStreamSeed(seed, s));
    const std::size_t lo = s * kDrawsPerStream;
    const std::size_t hi =
        std::min<std::size_t>(lo + kDrawsPerStream, num_blocks);
    for (std::size_t i = lo; i < hi; ++i) ids[i] = rng.NextBounded(pages);
  };
  if (pool == nullptr || pool->size() <= 1 || streams <= 1) {
    for (std::size_t s = 0; s < streams; ++s) draw_span(s);
  } else {
    pool->ParallelFor(0, streams, pool->size(),
                      [&](std::size_t lo, std::size_t hi, std::size_t) {
                        for (std::size_t s = lo; s < hi; ++s) draw_span(s);
                      });
  }
  // Phase 2: read the chosen pages concurrently.
  return ReadPagesParallel(table, ids, stats, pool, nullptr);
}

IncrementalBlockSampler::IncrementalBlockSampler(const Table* table,
                                                 std::uint64_t seed,
                                                 ThreadPool* pool)
    : table_(table), pool_(pool), permutation_(table->page_count()) {
  assert(table_ != nullptr);
  std::iota(permutation_.begin(), permutation_.end(), 0);
  Rng rng(seed);
  for (std::size_t i = permutation_.size(); i > 1; --i) {
    const std::uint64_t j = rng.NextBounded(i);
    std::swap(permutation_[i - 1], permutation_[j]);
  }
}

std::vector<Value> IncrementalBlockSampler::NextBatch(
    std::uint64_t num_blocks, IoStats* stats,
    std::vector<std::size_t>* page_offsets) {
  const std::uint64_t take =
      std::min<std::uint64_t>(num_blocks, pages_remaining());
  const std::vector<std::uint64_t> ids(
      permutation_.begin() + static_cast<std::ptrdiff_t>(next_),
      permutation_.begin() + static_cast<std::ptrdiff_t>(next_ + take));
  next_ += take;
  return ReadPagesParallel(*table_, ids, stats, pool_, page_offsets);
}

}  // namespace equihist
