#include "sampling/block_sampler.h"

#include <cassert>
#include <numeric>

namespace equihist {
namespace {

void AppendPage(const Table& table, std::uint64_t page_id, IoStats* stats,
                std::vector<Value>& out) {
  Result<const Page*> page = table.file().ReadPage(page_id, stats);
  assert(page.ok());
  for (Value v : (*page)->values()) out.push_back(v);
}

}  // namespace

Result<std::vector<Value>> SampleBlocksWithoutReplacement(
    const Table& table, std::uint64_t num_blocks, Rng& rng, IoStats* stats) {
  const std::uint64_t pages = table.page_count();
  if (num_blocks > pages) {
    return Status::InvalidArgument(
        "num_blocks exceeds page count for block sampling without "
        "replacement");
  }
  // Partial Fisher-Yates over the page-id array: O(pages) space, O(blocks)
  // time after setup. Page counts are ~n/b, small enough that the id array
  // is cheap relative to the table itself.
  std::vector<std::uint64_t> ids(pages);
  std::iota(ids.begin(), ids.end(), 0);
  std::vector<Value> out;
  out.reserve(num_blocks * table.tuples_per_page());
  for (std::uint64_t i = 0; i < num_blocks; ++i) {
    const std::uint64_t j = i + rng.NextBounded(pages - i);
    std::swap(ids[i], ids[j]);
    AppendPage(table, ids[i], stats, out);
  }
  return out;
}

Result<std::vector<Value>> SampleBlocksWithReplacement(const Table& table,
                                                       std::uint64_t num_blocks,
                                                       Rng& rng,
                                                       IoStats* stats) {
  const std::uint64_t pages = table.page_count();
  if (pages == 0) {
    return Status::InvalidArgument("cannot sample from an empty table");
  }
  std::vector<Value> out;
  out.reserve(num_blocks * table.tuples_per_page());
  for (std::uint64_t i = 0; i < num_blocks; ++i) {
    AppendPage(table, rng.NextBounded(pages), stats, out);
  }
  return out;
}

IncrementalBlockSampler::IncrementalBlockSampler(const Table* table,
                                                 std::uint64_t seed)
    : table_(table), permutation_(table->page_count()) {
  assert(table_ != nullptr);
  std::iota(permutation_.begin(), permutation_.end(), 0);
  Rng rng(seed);
  for (std::size_t i = permutation_.size(); i > 1; --i) {
    const std::uint64_t j = rng.NextBounded(i);
    std::swap(permutation_[i - 1], permutation_[j]);
  }
}

std::vector<Value> IncrementalBlockSampler::NextBatch(
    std::uint64_t num_blocks, IoStats* stats,
    std::vector<std::size_t>* page_offsets) {
  std::vector<Value> out;
  if (page_offsets != nullptr) page_offsets->clear();
  const std::uint64_t take =
      std::min<std::uint64_t>(num_blocks, pages_remaining());
  out.reserve(take * table_->tuples_per_page());
  for (std::uint64_t i = 0; i < take; ++i) {
    if (page_offsets != nullptr) page_offsets->push_back(out.size());
    AppendPage(*table_, permutation_[next_++], stats, out);
  }
  return out;
}

}  // namespace equihist
