#include "stats/histogram_backends.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <sstream>
#include <utility>

#include "baseline/gmp_incremental.h"
#include "common/math.h"
#include "common/string_util.h"
#include "core/histogram_builder.h"
#include "stats/incremental_backend.h"
#include "stats/wire_format.h"

namespace equihist {
namespace {

using wire::WrapAdd;
using wire::WrapSub;

Status AccumulateChecked(std::uint64_t c, std::uint64_t* sum) {
  if (c > std::numeric_limits<std::uint64_t>::max() - *sum) {
    return Status::InvalidArgument("bucket counts overflow a 64-bit total");
  }
  *sum += c;
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------- equi-height

EquiHeightModel::EquiHeightModel(Histogram histogram)
    : histogram_(std::move(histogram)), compiled_(histogram_) {}

double EquiHeightModel::EstimateRangeCount(const RangeQuery& query) const {
  return compiled_.EstimateRangeCount(query);
}

void EquiHeightModel::EstimateRangeCounts(std::span<const RangeQuery> queries,
                                          std::span<double> out,
                                          ThreadPool* pool) const {
  compiled_.EstimateRangeCounts(queries, out, pool);
}

std::uint64_t EquiHeightModel::bucket_count() const {
  return histogram_.bucket_count();
}

std::uint64_t EquiHeightModel::total() const { return histogram_.total(); }

Value EquiHeightModel::lower_fence() const { return histogram_.lower_fence(); }

Value EquiHeightModel::upper_fence() const { return histogram_.upper_fence(); }

std::size_t EquiHeightModel::MemoryBytes() const {
  const std::size_t k = histogram_.bucket_count();
  // Histogram: k-1 separators + k counts. The compiled read path reports
  // its own arrays (SoA, run tables, and the Eytzinger serving layout).
  const std::size_t histogram_bytes = (2 * k - 1) * sizeof(std::uint64_t);
  return sizeof(*this) + histogram_bytes + compiled_.MemoryBytes();
}

std::string EquiHeightModel::Describe() const {
  std::ostringstream os;
  os << "equi-height{k=" << histogram_.bucket_count()
     << ", n=" << FormatWithThousands(histogram_.total()) << ", domain=("
     << histogram_.lower_fence() << ", " << histogram_.upper_fence() << "]}";
  return os.str();
}

void EquiHeightModel::SerializePayload(std::vector<std::uint8_t>* out) const {
  SerializeEquiHeightPayload(histogram_, out);
}

void EquiHeightModel::SerializeEquiHeightPayload(
    const Histogram& histogram, std::vector<std::uint8_t>* out) {
  wire::PutVarint(histogram.bucket_count(), out);
  wire::PutVarint(histogram.total(), out);
  wire::PutSigned(histogram.lower_fence(), out);
  wire::PutSigned(histogram.upper_fence(), out);
  Value prev = histogram.lower_fence();
  for (Value s : histogram.separators()) {
    wire::PutSigned(WrapSub(s, prev), out);
    prev = s;
  }
  for (std::uint64_t c : histogram.counts()) wire::PutVarint(c, out);
}

Result<Histogram> EquiHeightModel::DeserializeEquiHeightPayload(
    std::span<const std::uint8_t> payload, std::size_t* consumed) {
  wire::Reader reader(payload);
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t k, reader.Varint());
  if (k == 0 || k > (1ULL << 32)) {
    return Status::InvalidArgument("implausible bucket count");
  }
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t total, reader.Varint());
  EQUIHIST_ASSIGN_OR_RETURN(const std::int64_t lower, reader.Signed());
  EQUIHIST_ASSIGN_OR_RETURN(const std::int64_t upper, reader.Signed());
  // k-1 separators and k counts still to come, each at least one byte: a
  // corrupted k announcing more elements than the buffer can possibly hold
  // is rejected before any allocation is sized from it.
  if (2 * k - 1 > reader.remaining()) {
    return Status::InvalidArgument(
        "bucket count exceeds the remaining buffer");
  }
  std::vector<Value> separators;
  separators.reserve(k - 1);
  Value prev = lower;
  for (std::uint64_t j = 0; j + 1 < k; ++j) {
    EQUIHIST_ASSIGN_OR_RETURN(const std::int64_t delta, reader.Signed());
    prev = WrapAdd(prev, delta);
    separators.push_back(prev);
  }
  std::vector<std::uint64_t> counts;
  counts.reserve(k);
  std::uint64_t sum = 0;
  for (std::uint64_t j = 0; j < k; ++j) {
    EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t c, reader.Varint());
    EQUIHIST_RETURN_IF_ERROR(AccumulateChecked(c, &sum));
    counts.push_back(c);
  }
  if (sum != total) {
    return Status::InvalidArgument("bucket counts do not sum to total");
  }
  EQUIHIST_ASSIGN_OR_RETURN(
      Histogram histogram,
      Histogram::Create(std::move(separators), std::move(counts), lower,
                        upper));
  if (consumed != nullptr) *consumed = reader.position();
  return histogram;
}

// ----------------------------------------------------------- gmp-incremental

std::string GmpSnapshotModel::Describe() const {
  std::ostringstream os;
  os << "gmp-incremental{k=" << bucket_count()
     << ", n=" << FormatWithThousands(total()) << ", domain=(" << lower_fence()
     << ", " << upper_fence() << "]}";
  return os.str();
}

// ----------------------------------------------------------------- equi-width

double EquiWidthModel::EstimateRangeCount(const RangeQuery& query) const {
  return histogram_.EstimateRangeCount(query);
}

std::uint64_t EquiWidthModel::bucket_count() const {
  return histogram_.bucket_count();
}

std::uint64_t EquiWidthModel::total() const { return histogram_.total(); }

Value EquiWidthModel::lower_fence() const { return histogram_.lo(); }

Value EquiWidthModel::upper_fence() const { return histogram_.hi(); }

std::size_t EquiWidthModel::MemoryBytes() const {
  return sizeof(*this) +
         histogram_.counts().capacity() * sizeof(std::uint64_t);
}

std::string EquiWidthModel::Describe() const {
  std::ostringstream os;
  os << "equi-width{k=" << histogram_.bucket_count()
     << ", n=" << FormatWithThousands(histogram_.total()) << ", domain=("
     << histogram_.lo() << ", " << histogram_.hi() << "]}";
  return os.str();
}

void EquiWidthModel::SerializePayload(std::vector<std::uint8_t>* out) const {
  wire::PutVarint(histogram_.bucket_count(), out);
  wire::PutVarint(histogram_.total(), out);
  wire::PutSigned(histogram_.lo(), out);
  wire::PutSigned(histogram_.hi(), out);
  for (std::uint64_t c : histogram_.counts()) wire::PutVarint(c, out);
}

// ----------------------------------------------------------------- compressed

CompressedModel::CompressedModel(CompressedHistogram histogram)
    : histogram_(std::move(histogram)) {
  // The covered domain is the union of the singleton spikes and the
  // equi-height residual's fences. Build/FromParts guarantee at least one
  // of the two parts exists.
  const auto& singletons = histogram_.singletons();
  const Histogram* equi = histogram_.equi_height_part();
  if (singletons.empty()) {
    lower_fence_ = equi->lower_fence();
    upper_fence_ = equi->upper_fence();
  } else {
    lower_fence_ = singletons.front().value - 1;
    upper_fence_ = singletons.back().value;
    if (equi != nullptr) {
      lower_fence_ = std::min(lower_fence_, equi->lower_fence());
      upper_fence_ = std::max(upper_fence_, equi->upper_fence());
    }
  }
}

double CompressedModel::EstimateRangeCount(const RangeQuery& query) const {
  return histogram_.EstimateRangeCount(query);
}

std::uint64_t CompressedModel::bucket_count() const {
  return histogram_.bucket_budget();
}

std::uint64_t CompressedModel::total() const { return histogram_.total(); }

Value CompressedModel::lower_fence() const { return lower_fence_; }

Value CompressedModel::upper_fence() const { return upper_fence_; }

std::size_t CompressedModel::MemoryBytes() const {
  const Histogram* equi = histogram_.equi_height_part();
  const std::size_t equi_bytes =
      equi == nullptr ? 0
                      : (2 * equi->bucket_count() - 1) * sizeof(std::uint64_t);
  return sizeof(*this) +
         histogram_.singletons().capacity() *
             sizeof(CompressedHistogram::Singleton) +
         equi_bytes;
}

std::string CompressedModel::Describe() const {
  std::ostringstream os;
  os << "compressed{k=" << histogram_.bucket_budget()
     << ", singletons=" << histogram_.singletons().size()
     << ", n=" << FormatWithThousands(histogram_.total()) << ", domain=("
     << lower_fence_ << ", " << upper_fence_ << "]}";
  return os.str();
}

void CompressedModel::SerializePayload(std::vector<std::uint8_t>* out) const {
  wire::PutVarint(histogram_.bucket_budget(), out);
  wire::PutVarint(histogram_.total(), out);
  const auto& singletons = histogram_.singletons();
  wire::PutVarint(singletons.size(), out);
  Value prev = 0;
  for (const auto& s : singletons) {
    wire::PutSigned(WrapSub(s.value, prev), out);
    prev = s.value;
    wire::PutVarint(s.count, out);
  }
  const Histogram* equi = histogram_.equi_height_part();
  out->push_back(equi != nullptr ? 1 : 0);
  if (equi != nullptr) {
    EquiHeightModel::SerializeEquiHeightPayload(*equi, out);
  }
}

// ----------------------------------------------------------- fallback-uniform

double FallbackUniformModel::EstimateRangeCount(const RangeQuery& query) const {
  if (query.hi <= query.lo) return 0.0;
  if (!domain_known()) {
    return kMagicRangeSelectivity * static_cast<double>(total_);
  }
  const Value from = std::max(query.lo, lower_fence_);
  const Value to = std::min(query.hi, upper_fence_);
  if (to <= from) return 0.0;
  const double width = static_cast<double>(upper_fence_) -
                       static_cast<double>(lower_fence_);
  const double overlap =
      static_cast<double>(to) - static_cast<double>(from);
  return overlap / width * static_cast<double>(total_);
}

std::string FallbackUniformModel::Describe() const {
  std::ostringstream os;
  os << "fallback-uniform{n=" << FormatWithThousands(total_) << ", domain=";
  if (domain_known()) {
    os << "(" << lower_fence_ << ", " << upper_fence_ << "]}";
  } else {
    os << "unknown}";
  }
  return os.str();
}

void FallbackUniformModel::SerializePayload(
    std::vector<std::uint8_t>* out) const {
  wire::PutVarint(total_, out);
  wire::PutSigned(lower_fence_, out);
  wire::PutSigned(upper_fence_, out);
}

// --------------------------------------------------- registry registrations

namespace {

Result<HistogramModelPtr> BuildEquiHeightFromSample(
    std::span<const Value> sorted_sample, std::uint64_t buckets,
    std::uint64_t population_size) {
  EQUIHIST_ASSIGN_OR_RETURN(
      Histogram histogram,
      BuildHistogramFromSample(sorted_sample, buckets, population_size));
  return HistogramModelPtr(
      std::make_shared<EquiHeightModel>(std::move(histogram)));
}

Result<HistogramModelPtr> DeserializeEquiHeight(
    std::span<const std::uint8_t> payload, std::size_t* consumed) {
  EQUIHIST_ASSIGN_OR_RETURN(
      Histogram histogram,
      EquiHeightModel::DeserializeEquiHeightPayload(payload, consumed));
  return HistogramModelPtr(
      std::make_shared<EquiHeightModel>(std::move(histogram)));
}

Result<HistogramModelPtr> BuildGmpFromSample(
    std::span<const Value> sorted_sample, std::uint64_t buckets,
    std::uint64_t population_size) {
  if (population_size == 0) {
    return Status::InvalidArgument("population_size must be positive");
  }
  if (sorted_sample.empty()) {
    return Status::FailedPrecondition(
        "cannot build a GMP snapshot from an empty sample");
  }
  GmpOptions options;
  options.buckets = buckets;
  options.gamma = 0.5;
  // Hold the whole sample so the snapshot separators come from the exact
  // sample quantiles; a fixed seed keeps the build deterministic in the
  // sample (the registry contract).
  options.reservoir_capacity =
      std::max<std::uint64_t>(sorted_sample.size(), buckets);
  options.seed = 1;
  EQUIHIST_ASSIGN_OR_RETURN(IncrementalEquiDepth gmp,
                            IncrementalEquiDepth::Create(options));
  for (Value v : sorted_sample) gmp.Insert(v);
  EQUIHIST_ASSIGN_OR_RETURN(const Histogram snapshot, gmp.Snapshot());
  // The snapshot counts the sample; scale the claims to the population.
  std::vector<double> weights;
  weights.reserve(snapshot.counts().size());
  for (std::uint64_t c : snapshot.counts()) {
    weights.push_back(static_cast<double>(c));
  }
  std::vector<std::uint64_t> scaled =
      ApportionProportionally(weights, population_size);
  EQUIHIST_ASSIGN_OR_RETURN(
      Histogram histogram,
      Histogram::Create(snapshot.separators(), std::move(scaled),
                        snapshot.lower_fence(), snapshot.upper_fence()));
  return HistogramModelPtr(
      std::make_shared<GmpSnapshotModel>(std::move(histogram)));
}

Result<HistogramModelPtr> DeserializeGmp(std::span<const std::uint8_t> payload,
                                         std::size_t* consumed) {
  EQUIHIST_ASSIGN_OR_RETURN(
      Histogram histogram,
      EquiHeightModel::DeserializeEquiHeightPayload(payload, consumed));
  return HistogramModelPtr(
      std::make_shared<GmpSnapshotModel>(std::move(histogram)));
}

Result<HistogramModelPtr> BuildEquiWidthFromSample(
    std::span<const Value> sorted_sample, std::uint64_t buckets,
    std::uint64_t population_size) {
  EQUIHIST_ASSIGN_OR_RETURN(EquiWidthHistogram histogram,
                            EquiWidthHistogram::BuildFromSample(
                                sorted_sample, buckets, population_size));
  return HistogramModelPtr(
      std::make_shared<EquiWidthModel>(std::move(histogram)));
}

Result<HistogramModelPtr> DeserializeEquiWidth(
    std::span<const std::uint8_t> payload, std::size_t* consumed) {
  wire::Reader reader(payload);
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t k, reader.Varint());
  if (k == 0 || k > (1ULL << 32)) {
    return Status::InvalidArgument("implausible bucket count");
  }
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t total, reader.Varint());
  EQUIHIST_ASSIGN_OR_RETURN(const std::int64_t lo, reader.Signed());
  EQUIHIST_ASSIGN_OR_RETURN(const std::int64_t hi, reader.Signed());
  if (k > reader.remaining()) {
    return Status::InvalidArgument(
        "bucket count exceeds the remaining buffer");
  }
  std::vector<std::uint64_t> counts;
  counts.reserve(k);
  std::uint64_t sum = 0;
  for (std::uint64_t j = 0; j < k; ++j) {
    EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t c, reader.Varint());
    EQUIHIST_RETURN_IF_ERROR(AccumulateChecked(c, &sum));
    counts.push_back(c);
  }
  if (sum != total) {
    return Status::InvalidArgument("bucket counts do not sum to total");
  }
  EQUIHIST_ASSIGN_OR_RETURN(
      EquiWidthHistogram histogram,
      EquiWidthHistogram::FromParts(std::move(counts), lo, hi));
  if (consumed != nullptr) *consumed = reader.position();
  return HistogramModelPtr(
      std::make_shared<EquiWidthModel>(std::move(histogram)));
}

Result<HistogramModelPtr> BuildCompressedFromSample(
    std::span<const Value> sorted_sample, std::uint64_t buckets,
    std::uint64_t population_size) {
  EQUIHIST_ASSIGN_OR_RETURN(CompressedHistogram histogram,
                            CompressedHistogram::BuildFromSample(
                                sorted_sample, buckets, population_size));
  return HistogramModelPtr(
      std::make_shared<CompressedModel>(std::move(histogram)));
}

Result<HistogramModelPtr> DeserializeCompressed(
    std::span<const std::uint8_t> payload, std::size_t* consumed) {
  wire::Reader reader(payload);
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t budget, reader.Varint());
  if (budget == 0 || budget > (1ULL << 32)) {
    return Status::InvalidArgument("implausible bucket budget");
  }
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t total, reader.Varint());
  // Each singleton is at least two bytes (value delta + count).
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t singleton_count,
                            reader.LengthPrefixedCount(2));
  std::vector<CompressedHistogram::Singleton> singletons;
  singletons.reserve(singleton_count);
  Value prev = 0;
  for (std::uint64_t i = 0; i < singleton_count; ++i) {
    EQUIHIST_ASSIGN_OR_RETURN(const std::int64_t delta, reader.Signed());
    prev = WrapAdd(prev, delta);
    EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t count, reader.Varint());
    singletons.push_back(CompressedHistogram::Singleton{prev, count});
  }
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint8_t has_equi, reader.Byte());
  if (has_equi > 1) {
    return Status::InvalidArgument("bad equi-part flag");
  }
  std::size_t used = reader.position();
  std::optional<Histogram> equi_part;
  if (has_equi == 1) {
    std::size_t sub_consumed = 0;
    EQUIHIST_ASSIGN_OR_RETURN(Histogram equi,
                              EquiHeightModel::DeserializeEquiHeightPayload(
                                  payload.subspan(used), &sub_consumed));
    equi_part = std::move(equi);
    used += sub_consumed;
  }
  EQUIHIST_ASSIGN_OR_RETURN(
      CompressedHistogram histogram,
      CompressedHistogram::FromParts(std::move(singletons),
                                     std::move(equi_part), budget, total));
  if (consumed != nullptr) *consumed = used;
  return HistogramModelPtr(
      std::make_shared<CompressedModel>(std::move(histogram)));
}

Result<HistogramModelPtr> BuildFallbackUniformFromSample(
    std::span<const Value> sorted_sample, std::uint64_t /*buckets*/,
    std::uint64_t population_size) {
  if (population_size == 0) {
    return Status::InvalidArgument("population_size must be positive");
  }
  if (sorted_sample.empty()) {
    // No data at all: the unknown-domain shape the degraded-serving path
    // publishes from bare metadata.
    return HistogramModelPtr(
        std::make_shared<FallbackUniformModel>(population_size, 0, 0));
  }
  return HistogramModelPtr(std::make_shared<FallbackUniformModel>(
      population_size, sorted_sample.front() - 1, sorted_sample.back()));
}

Result<HistogramModelPtr> DeserializeFallbackUniform(
    std::span<const std::uint8_t> payload, std::size_t* consumed) {
  wire::Reader reader(payload);
  EQUIHIST_ASSIGN_OR_RETURN(const std::uint64_t total, reader.Varint());
  EQUIHIST_ASSIGN_OR_RETURN(const std::int64_t lower, reader.Signed());
  EQUIHIST_ASSIGN_OR_RETURN(const std::int64_t upper, reader.Signed());
  if (upper < lower) {
    return Status::InvalidArgument("fallback-uniform fences are inverted");
  }
  if (consumed != nullptr) *consumed = reader.position();
  return HistogramModelPtr(
      std::make_shared<FallbackUniformModel>(total, lower, upper));
}

}  // namespace

namespace internal {

void RegisterBuiltinHistogramBackends(HistogramBackendRegistry& registry) {
  // A fresh registry cannot collide with itself; the Status results are
  // asserted in debug builds only.
  const Status s0 = registry.Register(
      HistogramBackendId::kEquiHeight,
      {.name = "equi-height",
       .build_from_sample = BuildEquiHeightFromSample,
       .deserialize_payload = DeserializeEquiHeight});
  const Status s1 = registry.Register(
      HistogramBackendId::kEquiWidth,
      {.name = "equi-width",
       .build_from_sample = BuildEquiWidthFromSample,
       .deserialize_payload = DeserializeEquiWidth});
  const Status s2 = registry.Register(
      HistogramBackendId::kCompressed,
      {.name = "compressed",
       .build_from_sample = BuildCompressedFromSample,
       .deserialize_payload = DeserializeCompressed});
  const Status s3 = registry.Register(
      HistogramBackendId::kGmpIncremental,
      {.name = "gmp-incremental",
       .build_from_sample = BuildGmpFromSample,
       .deserialize_payload = DeserializeGmp});
  const Status s4 = registry.Register(
      HistogramBackendId::kFallbackUniform,
      {.name = "fallback-uniform",
       .build_from_sample = BuildFallbackUniformFromSample,
       .deserialize_payload = DeserializeFallbackUniform});
  const Status s5 = registry.Register(
      HistogramBackendId::kIncrementalEquiDepth,
      {.name = "incremental-equi-depth",
       .build_from_sample = BuildIncrementalEquiDepthFromSample,
       .deserialize_payload = DeserializeIncrementalEquiDepth});
  (void)s0;
  (void)s1;
  (void)s2;
  (void)s3;
  (void)s4;
  (void)s5;
}

}  // namespace internal
}  // namespace equihist
