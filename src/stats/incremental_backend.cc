#include "stats/incremental_backend.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/string_util.h"
#include "core/histogram_builder.h"

namespace equihist {

std::size_t IncrementalEquiDepthModel::MemoryBytes() const {
  return EquiHeightModel::MemoryBytes() + sizeof(BackingReservoir) +
         reservoir_.sample().capacity() * sizeof(Value);
}

std::string IncrementalEquiDepthModel::Describe() const {
  std::ostringstream os;
  os << "incremental-equi-depth{k=" << bucket_count()
     << ", n=" << FormatWithThousands(total()) << ", domain=(" << lower_fence()
     << ", " << upper_fence() << "], reservoir=" << reservoir_.size() << "/"
     << reservoir_.capacity() << ", dml=" << reservoir_.ops_since_seed()
     << "}";
  return os.str();
}

void IncrementalEquiDepthModel::SerializePayload(
    std::vector<std::uint8_t>* out) const {
  SerializeEquiHeightPayload(histogram(), out);
  reservoir_.SerializeTo(out);
}

Result<HistogramModelPtr> MakeIncrementalModelFromReservoir(
    BackingReservoir reservoir, std::uint64_t buckets) {
  if (reservoir.size() == 0) {
    return Status::FailedPrecondition(
        "cannot build a histogram from an empty reservoir");
  }
  EQUIHIST_ASSIGN_OR_RETURN(
      Histogram histogram,
      BuildHistogramFromSample(reservoir.SortedSample(), buckets,
                               reservoir.population()));
  return HistogramModelPtr(std::make_shared<IncrementalEquiDepthModel>(
      std::move(histogram), std::move(reservoir)));
}

Result<HistogramModelPtr> BuildIncrementalEquiDepthFromSample(
    std::span<const Value> sorted_sample, std::uint64_t buckets,
    std::uint64_t population_size) {
  if (population_size == 0) {
    return Status::InvalidArgument("population_size must be positive");
  }
  if (sorted_sample.empty()) {
    return Status::FailedPrecondition(
        "cannot seed a reservoir from an empty sample");
  }
  EQUIHIST_ASSIGN_OR_RETURN(
      BackingReservoir reservoir,
      BackingReservoir::Create(
          std::max<std::uint64_t>(sorted_sample.size(), buckets),
          /*seed=*/1));
  EQUIHIST_RETURN_IF_ERROR(
      reservoir.SeedFromSample(sorted_sample, population_size));
  EQUIHIST_ASSIGN_OR_RETURN(
      Histogram histogram,
      BuildHistogramFromSample(sorted_sample, buckets, population_size));
  return HistogramModelPtr(std::make_shared<IncrementalEquiDepthModel>(
      std::move(histogram), std::move(reservoir)));
}

Result<HistogramModelPtr> DeserializeIncrementalEquiDepth(
    std::span<const std::uint8_t> payload, std::size_t* consumed) {
  std::size_t histogram_bytes = 0;
  EQUIHIST_ASSIGN_OR_RETURN(Histogram histogram,
                            EquiHeightModel::DeserializeEquiHeightPayload(
                                payload, &histogram_bytes));
  std::size_t reservoir_bytes = 0;
  EQUIHIST_ASSIGN_OR_RETURN(
      BackingReservoir reservoir,
      BackingReservoir::Deserialize(payload.subspan(histogram_bytes),
                                    &reservoir_bytes));
  if (consumed != nullptr) *consumed = histogram_bytes + reservoir_bytes;
  return HistogramModelPtr(std::make_shared<IncrementalEquiDepthModel>(
      std::move(histogram), std::move(reservoir)));
}

}  // namespace equihist
