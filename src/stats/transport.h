#ifndef EQUIHIST_STATS_TRANSPORT_H_
#define EQUIHIST_STATS_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/result.h"
#include "stats/link_fault_injection.h"
#include "stats/statistics_fleet.h"
#include "storage/table.h"

namespace equihist::transport {

// The fleet transport layer (DESIGN.md §17): how fleetwire frames travel
// between a client and a StatisticsFleet. Two implementations of one
// Transport interface:
//
//   InProcessTransport — the PR-8 direct path (ServeFrame behind the
//     interface), bitwise-identical to calling the fleet, with optional
//     link faults for tests.
//   SocketTransport    — a real localhost link (Unix domain socket or
//     TCP), speaking the length-prefixed envelope below, served by a
//     SocketTransportServer with bounded queues and load shedding.
//
// -- Envelope ---------------------------------------------------------------
//
// A fleetwire frame is a self-describing byte string but carries no
// length, no integrity check, and no correlation id — all three are
// transport concerns. Each message on a link is therefore wrapped:
//
//   varint total_len            — length of everything that follows
//   varint request_id           — correlates responses to requests; lets
//                                 a client discard duplicated or stale
//                                 responses deterministically
//   varint deadline_budget_us   — request direction only: how much of the
//                                 client's budget remains, propagated
//                                 into the server's admission check
//   varint checksum             — FNV-1a 64 of the frame bytes; separates
//                                 wire damage (retryable kUnavailable)
//                                 from genuinely malformed frames
//   frame bytes                 — the fleetwire frame, verbatim
//
// Every decode runs through the bounds-checked wire::Reader, and
// total_len is capped (Options::max_frame_bytes) so a hostile or
// corrupted length prefix can neither over-allocate nor stall a reader.
//
// -- Deadlines --------------------------------------------------------------
//
// Every RoundTrip carries a budget in microseconds. The budget bounds
// EVERY wait in the implementation (connect, poll, queue, serve): no
// fault class — drop, partition, wedged peer — can block a caller past
// its deadline. An exhausted budget surfaces as kDeadlineExceeded.

// FNV-1a 64 over a byte span — the envelope checksum.
std::uint64_t ChecksumBytes(std::span<const std::uint8_t> bytes);

// -- Envelope codec ---------------------------------------------------------
//
// The framing functions the client and server both speak, public so the
// transport tests and the fuzz/ harnesses (fuzz_transport_envelope) can
// drive the exact production decode path with hostile bytes.

// payload := request_id [budget] checksum frame; message := len payload.
std::vector<std::uint8_t> EncodeEnvelope(std::uint64_t request_id,
                                         std::uint64_t budget_micros,
                                         bool include_budget,
                                         std::span<const std::uint8_t> frame);

struct DecodedEnvelope {
  std::uint64_t request_id = 0;
  std::uint64_t budget_micros = 0;  // request direction only
  bool checksum_ok = false;
  std::vector<std::uint8_t> frame;
};

// Parses an envelope payload (everything after the length prefix). A
// checksum mismatch is NOT a parse error: the framing is intact and the
// stream stays usable, so the caller can answer with a typed rejection
// instead of tearing the connection down.
Result<DecodedEnvelope> DecodeEnvelopePayload(
    std::span<const std::uint8_t> payload, bool expect_budget);

// Reads one whole envelope payload off `fd` — the length-prefix leg of
// the server reader loop and the client receive path (prefix consumed
// and validated against `max_frame_bytes` before any allocation).
Result<std::vector<std::uint8_t>> RecvEnvelopePayload(
    int fd, std::size_t max_frame_bytes, std::uint64_t deadline_micros,
    const std::atomic<bool>* stop);

// Where a SocketTransport connects / a SocketTransportServer listens.
struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;         // kUnix: filesystem path of the socket
  std::uint16_t port = 0;   // kTcp: localhost port; 0 = ephemeral (the
                            // server resolves and reports the real one)
};

// One logical link to a fleet server. Implementations are NOT required to
// be thread-safe; the client layer (stats/transport_client.h) serializes
// use per connection.
class Transport {
 public:
  virtual ~Transport() = default;

  // Sends `frame` and returns the peer's response frame. `budget_micros`
  // bounds the whole exchange; 0 means the budget is already exhausted
  // and the call fails immediately with kDeadlineExceeded. A returned
  // kRejection frame is NOT an error at this layer — callers decode it.
  virtual Result<std::vector<std::uint8_t>> RoundTrip(
      std::span<const std::uint8_t> frame, std::uint64_t budget_micros) = 0;

  // True once the link is unusable (peer hung up, framing desynced,
  // timed out mid-message). Broken transports are discarded, never
  // reused: after a timeout the link may still deliver the stale
  // response, which a fresh exchange must not misread.
  virtual bool Broken() const { return false; }
};

// -- In-process transport ---------------------------------------------------

// ServeFrame behind the Transport interface. Fault-free, the returned
// bytes are the exact ServeFrame output (bitwise — pinned by the
// transport tests). An attached LinkFaultInjector mangles the send and
// receive legs exactly like the socket path does, except that a dropped
// frame fails fast with kUnavailable: with no wire to wait on, "the
// peer never answered" and "the link errored" are indistinguishable, so
// the in-process link reports the cheaper one.
class InProcessTransport final : public Transport {
 public:
  // `fleet` and `table` must outlive the transport. `injector` (optional)
  // must outlive it too; `connection_id` keys its decisions.
  InProcessTransport(StatisticsFleet* fleet, const Table* table,
                     LinkFaultInjector* injector = nullptr,
                     std::uint64_t connection_id = 0);

  Result<std::vector<std::uint8_t>> RoundTrip(
      std::span<const std::uint8_t> frame,
      std::uint64_t budget_micros) override;
  // Only a partition breaks the in-process link (it never heals); other
  // faults are per-frame and the next frame may sail through.
  bool Broken() const override { return broken_; }

 private:
  StatisticsFleet* fleet_;
  const Table* table_;
  LinkFaultInjector* injector_;
  std::uint64_t connection_id_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
  bool broken_ = false;
};

// -- Socket transport (client side) -----------------------------------------

// A connected localhost socket speaking the envelope. One outstanding
// request at a time (the client layer pools connections for
// parallelism). Every socket operation is non-blocking and poll()-bounded
// by the caller's budget.
class SocketTransport final : public Transport {
 public:
  // Connects within `budget_micros`. `injector` (optional, must outlive
  // the transport) mangles this connection's frames under
  // `connection_id`.
  static Result<std::unique_ptr<SocketTransport>> Connect(
      const Endpoint& endpoint, std::uint64_t budget_micros,
      LinkFaultInjector* injector = nullptr, std::uint64_t connection_id = 0);

  ~SocketTransport() override;
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  Result<std::vector<std::uint8_t>> RoundTrip(
      std::span<const std::uint8_t> frame,
      std::uint64_t budget_micros) override;
  bool Broken() const override {
    return broken_.load(std::memory_order_relaxed);
  }

 private:
  SocketTransport(int fd, LinkFaultInjector* injector,
                  std::uint64_t connection_id);

  Result<std::vector<std::uint8_t>> RoundTripLocked(
      std::span<const std::uint8_t> frame, std::uint64_t budget_micros)
      REQUIRES(mu_);

  // Serializes RoundTrip; the wire protocol is one-at-a-time.
  Mutex mu_{lockrank::kSocketTransport};
  int fd_;
  LinkFaultInjector* injector_;
  std::uint64_t connection_id_;
  std::uint64_t next_request_id_ GUARDED_BY(mu_) = 1;
  std::uint64_t send_index_ GUARDED_BY(mu_) = 0;     // frames sent
  std::uint64_t receive_index_ GUARDED_BY(mu_) = 0;  // frames received
  std::atomic<bool> broken_{false};
};

// -- Socket transport server ------------------------------------------------

// Serves a StatisticsFleet over an Endpoint with explicit overload
// behavior:
//
//   - accept thread + one reader thread per connection, capped by
//     `max_connections` (excess connections are accepted and immediately
//     closed — cheaper than a SYN backlog of unknowable depth);
//   - a bounded work queue between readers and `workers` serving
//     threads. On overflow the queue sheds the entry with the OLDEST
//     remaining deadline (the request most likely to be dead on arrival
//     anyway) and answers it with a typed kResourceExhausted rejection —
//     explicit backpressure clients must not retry;
//   - admission check at dequeue: a request whose propagated deadline
//     already expired is answered with a kDeadlineExceeded rejection
//     instead of burning serve time on an answer nobody is waiting for.
//
// An attached LinkFaultInjector adds server-side chaos: kServe-direction
// delay stalls the handler, kServe drop wedges it silently (the client's
// deadline machinery must save it — the satellite deadline-propagation
// test drives exactly this), and kReceive/kSend faults mangle the wire
// legs.
class SocketTransportServer {
 public:
  struct Options {
    Endpoint endpoint{};
    // Serving threads draining the work queue.
    std::size_t workers = 2;
    // Work items admitted before shedding starts.
    std::size_t queue_capacity = 64;
    // Concurrent connections before new ones are turned away.
    std::size_t max_connections = 32;
    // Envelope size cap (both directions).
    std::size_t max_frame_bytes = 1 << 20;
    // Optional chaos hooks; must outlive the server.
    LinkFaultInjector* injector = nullptr;
    // Optional transport metrics plane; must outlive the server.
    metrics::MetricsPlane* metrics = nullptr;
  };

  // `fleet` and `table` must outlive the server.
  SocketTransportServer(StatisticsFleet* fleet, const Table* table,
                        Options options);
  ~SocketTransportServer();
  SocketTransportServer(const SocketTransportServer&) = delete;
  SocketTransportServer& operator=(const SocketTransportServer&) = delete;

  // Binds, listens, and spawns the accept/worker threads. On success
  // endpoint() reports the bound address (with any ephemeral TCP port
  // resolved).
  Status Start();
  // Stops accepting, closes every connection, drains the threads. Safe to
  // call twice; the destructor calls it.
  void Stop();

  const Endpoint& endpoint() const { return options_.endpoint; }

 private:
  struct Connection;
  struct WorkItem {
    std::shared_ptr<Connection> connection;
    std::vector<std::uint8_t> frame;
    std::uint64_t request_id = 0;
    // Absolute steady-clock micros when the client gives up; admission
    // drops anything already past this.
    std::uint64_t deadline_micros = 0;
    std::uint64_t enqueued_micros = 0;
    // Per-connection arrival index, the frame_index key of the
    // serve-direction chaos decision (request ids restart per connection
    // and cannot key it).
    std::uint64_t serve_index = 0;
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> connection);
  void WorkerLoop();
  // Enqueue with oldest-deadline-first shedding; shed items get a typed
  // rejection reply.
  void EnqueueWork(WorkItem item) EXCLUDES(mu_);
  void Reply(const std::shared_ptr<Connection>& connection,
             std::uint64_t request_id, std::span<const std::uint8_t> frame);
  void RejectWith(const std::shared_ptr<Connection>& connection,
                  std::uint64_t request_id, const Status& error,
                  metrics::Counter counter);

  StatisticsFleet* fleet_;
  const Table* table_;
  Options options_;

  Mutex mu_{lockrank::kTransportServer};
  CondVar work_cv_;
  std::deque<WorkItem> queue_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
  std::vector<std::shared_ptr<Connection>> connections_ GUARDED_BY(mu_);
  std::uint64_t next_connection_id_ GUARDED_BY(mu_) = 1;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: unblocks the accept poll
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> started_{false};
};

}  // namespace equihist::transport

#endif  // EQUIHIST_STATS_TRANSPORT_H_
