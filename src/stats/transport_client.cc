#include "stats/transport_client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace equihist::transport {
namespace {

std::uint64_t SteadyMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t RemainingMicros(std::uint64_t deadline_micros) {
  const std::uint64_t now = SteadyMicros();
  return now >= deadline_micros ? 0 : deadline_micros - now;
}

}  // namespace

// Per-peer mutable state, all guarded by the client mutex.
struct TransportClient::PeerState {
  Peer peer;
  // Idle pooled links; broken ones are discarded, never pooled.
  std::vector<std::unique_ptr<Transport>> pool;
  // -- Breaker (PR-4 semantics: see StatisticsShard::Options) --------------
  std::uint64_t consecutive_failures = 0;
  std::uint64_t open_until = 0;  // breaker-clock micros; 0 = closed
};

// Shared state of one hedged exchange. The caller and up to two pool
// tasks touch it; the shared_ptr keeps it alive past an abandoning
// caller, so a late attempt completes into memory nobody reads.
struct TransportClient::Exchange {
  Mutex mu{lockrank::kExchange};
  CondVar cv;
  bool done GUARDED_BY(mu) = false;
  bool winner_is_hedge GUARDED_BY(mu) = false;
  int outstanding GUARDED_BY(mu) = 0;
  Result<std::vector<std::uint8_t>> result GUARDED_BY(mu){
      Status::Internal("exchange unresolved")};
};

TransportClient::TransportClient(Options options)
    : options_(std::move(options)),
      jitter_rng_(DeriveStreamSeed(options_.jitter_seed, 0x7261775F6C6B74ULL)) {
  if (options_.retry_jitter < 0.0) options_.retry_jitter = 0.0;
  if (options_.retry_jitter > 1.0) options_.retry_jitter = 1.0;
  if (options_.latency_window == 0) options_.latency_window = 1;
  if (options_.enable_hedging) {
    // 2 real workers + the caller: the hedge must be able to run while
    // the primary blocks (a size-1 pool would run Submit inline and
    // serialize them, defeating the hedge entirely).
    hedge_pool_ = std::make_unique<ThreadPool>(3);
  }
}

TransportClient::~TransportClient() = default;

void TransportClient::AddPeer(Peer peer) {
  MutexLock lock(mu_);
  auto state = std::make_unique<PeerState>();
  state->peer = std::move(peer);
  peers_.push_back(std::move(state));
}

std::size_t TransportClient::peer_count() const {
  MutexLock lock(mu_);
  return peers_.size();
}

std::uint64_t TransportClient::NowMicros() const { return SteadyMicros(); }

bool TransportClient::BreakerAdmits(PeerState& peer) {
  if (peer.open_until == 0) return true;
  const std::uint64_t clock =
      options_.clock ? options_.clock() : SteadyMicros();
  // Cooldown passed: let a probe through (half-open). Success closes the
  // breaker; failure re-opens it for another cooldown.
  return clock >= peer.open_until;
}

void TransportClient::RecordBreakerSuccess(PeerState& peer) {
  peer.consecutive_failures = 0;
  peer.open_until = 0;
}

void TransportClient::RecordBreakerFailure(PeerState& peer) {
  ++peer.consecutive_failures;
  if (peer.consecutive_failures < options_.breaker_failure_threshold) return;
  const std::uint64_t clock =
      options_.clock ? options_.clock() : SteadyMicros();
  const bool was_open = peer.open_until != 0 && clock < peer.open_until;
  peer.open_until = clock + options_.breaker_cooldown_micros;
  if (!was_open && options_.metrics != nullptr) {
    options_.metrics->Increment(metrics::Counter::kTransportBreakerOpens);
  }
}

std::uint64_t TransportClient::HedgeDelayMicros() {
  // Before the window warms up there is no percentile worth trusting.
  std::vector<std::uint64_t> samples;
  samples.reserve(latency_window_.size());
  for (const std::uint64_t sample : latency_window_) {
    if (sample != 0) samples.push_back(sample);
  }
  std::uint64_t delay = options_.hedge_initial_delay_micros;
  if (samples.size() >= 8) {
    std::sort(samples.begin(), samples.end());
    double p = options_.hedge_percentile;
    if (p < 0.0) p = 0.0;
    if (p > 1.0) p = 1.0;
    std::size_t index = static_cast<std::size_t>(
        p * static_cast<double>(samples.size()));
    if (index >= samples.size()) index = samples.size() - 1;
    delay = samples[index];
  }
  return std::max(delay, options_.hedge_min_delay_micros);
}

void TransportClient::RecordLatency(std::uint64_t micros) {
  if (latency_window_.size() < options_.latency_window) {
    latency_window_.push_back(micros == 0 ? 1 : micros);
    return;
  }
  latency_window_[latency_next_] = micros == 0 ? 1 : micros;
  latency_next_ = (latency_next_ + 1) % latency_window_.size();
}

Result<std::vector<std::uint8_t>> TransportClient::SingleExchange(
    std::size_t peer_index, std::span<const std::uint8_t> frame,
    std::uint64_t deadline_abs) {
  std::unique_ptr<Transport> link;
  std::function<Result<std::unique_ptr<Transport>>(std::uint64_t)> connect;
  {
    MutexLock lock(mu_);
    PeerState& peer = *peers_[peer_index];
    if (!peer.pool.empty()) {
      link = std::move(peer.pool.back());
      peer.pool.pop_back();
    } else {
      connect = peer.peer.connect;
    }
  }
  if (link == nullptr) {
    const std::uint64_t remaining = RemainingMicros(deadline_abs);
    if (remaining == 0) {
      return Status::DeadlineExceeded("call budget exhausted");
    }
    EQUIHIST_ASSIGN_OR_RETURN(link, connect(remaining));
  }
  Result<std::vector<std::uint8_t>> response =
      link->RoundTrip(frame, RemainingMicros(deadline_abs));
  if (!link->Broken()) {
    MutexLock lock(mu_);
    peers_[peer_index]->pool.push_back(std::move(link));
  }
  return response;
}

Result<std::vector<std::uint8_t>> TransportClient::HedgedAttempt(
    std::span<const std::uint8_t> frame, bool idempotent,
    std::uint64_t deadline_abs) {
  std::size_t primary = static_cast<std::size_t>(-1);
  std::size_t hedge_peer = static_cast<std::size_t>(-1);
  std::uint64_t hedge_delay = 0;
  bool hedging = false;
  {
    MutexLock lock(mu_);
    const std::size_t n = peers_.size();
    if (n == 0) {
      return Status::FailedPrecondition("transport client has no peers");
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t candidate = (next_peer_ + i) % n;
      if (BreakerAdmits(*peers_[candidate])) {
        primary = candidate;
        break;
      }
    }
    next_peer_ = (next_peer_ + 1) % n;
    if (primary == static_cast<std::size_t>(-1)) {
      if (options_.metrics != nullptr) {
        options_.metrics->Increment(
            metrics::Counter::kTransportBreakerFastFails);
      }
      return Status::Unavailable("every peer's circuit breaker is open");
    }
    hedging = options_.enable_hedging && idempotent && hedge_pool_ != nullptr;
    if (hedging) {
      hedge_delay = HedgeDelayMicros();
      // Prefer a different peer; with one peer, race two links to it.
      hedge_peer = primary;
      for (std::size_t i = 1; i < n; ++i) {
        const std::size_t candidate = (primary + i) % n;
        if (BreakerAdmits(*peers_[candidate])) {
          hedge_peer = candidate;
          break;
        }
      }
    }
  }

  const std::uint64_t attempt_start = SteadyMicros();
  // Settles one wire exchange: breaker bookkeeping, then completion of
  // the shared state (first success wins; the last failure wins when
  // nothing succeeds).
  auto settle = [this](std::size_t peer_index,
                       const Result<std::vector<std::uint8_t>>& result) {
    MutexLock lock(mu_);
    PeerState& peer = *peers_[peer_index];
    if (result.ok()) {
      RecordBreakerSuccess(peer);
    } else if (result.status().code() == StatusCode::kUnavailable ||
               result.status().code() == StatusCode::kDeadlineExceeded) {
      RecordBreakerFailure(peer);
    }
  };

  if (!hedging) {
    Result<std::vector<std::uint8_t>> result =
        SingleExchange(primary, frame, deadline_abs);
    settle(primary, result);
    if (result.ok()) {
      const std::uint64_t elapsed = SteadyMicros() - attempt_start;
      MutexLock lock(mu_);
      RecordLatency(elapsed);
      if (options_.metrics != nullptr) {
        options_.metrics->Observe(metrics::Hist::kTransportRoundTripMicros,
                                  elapsed);
      }
    }
    return result;
  }

  auto state = std::make_shared<Exchange>();
  auto frame_copy = std::make_shared<std::vector<std::uint8_t>>(frame.begin(),
                                                                frame.end());
  auto run = [this, state, frame_copy, deadline_abs, settle](
                 std::size_t peer_index, bool is_hedge) {
    Result<std::vector<std::uint8_t>> result =
        SingleExchange(peer_index, *frame_copy, deadline_abs);
    settle(peer_index, result);
    MutexLock lock(state->mu);
    --state->outstanding;
    if (state->done) return;  // a winner already finished; discard
    if (result.ok() || state->outstanding == 0) {
      state->done = true;
      state->winner_is_hedge = is_hedge;
      state->result = std::move(result);
      state->cv.NotifyAll();
    }
  };

  {
    MutexLock lock(state->mu);
    state->outstanding = 1;
  }
  std::ignore = hedge_pool_->Submit([run, primary]() { run(primary, false); });

  // Wait out the hedge delay; launch the hedge only if the primary has
  // neither answered nor failed by then.
  bool launch_hedge = false;
  {
    MutexLock lock(state->mu);
    const std::uint64_t wait =
        std::min(hedge_delay, RemainingMicros(deadline_abs));
    const bool finished =
        state->cv.WaitFor(state->mu, std::chrono::microseconds(wait),
                          [&state]() REQUIRES(state->mu) {
                            return state->done;
                          });
    if (!finished && RemainingMicros(deadline_abs) > 0) {
      launch_hedge = true;
      ++state->outstanding;
    }
  }
  if (launch_hedge) {
    if (options_.metrics != nullptr) {
      options_.metrics->Increment(metrics::Counter::kTransportHedges);
    }
    std::ignore =
        hedge_pool_->Submit([run, hedge_peer]() { run(hedge_peer, true); });
  }

  bool winner_is_hedge = false;
  Result<std::vector<std::uint8_t>> result{
      Status::DeadlineExceeded("call budget exhausted")};
  {
    MutexLock lock(state->mu);
    const bool finished = state->cv.WaitFor(
        state->mu, std::chrono::microseconds(RemainingMicros(deadline_abs) + 1),
        [&state]() REQUIRES(state->mu) { return state->done; });
    if (finished) {
      result = std::move(state->result);
      winner_is_hedge = state->winner_is_hedge;
      // Late attempts must not resurrect the moved-from result.
      state->result = Status::Internal("exchange already claimed");
    } else {
      // Abandon: the deadline fired with attempts still in flight. They
      // complete into `state` (kept alive by their shared_ptr copies)
      // and their links are pooled or discarded as usual.
      state->done = true;
    }
  }
  if (result.ok()) {
    const std::uint64_t elapsed = SteadyMicros() - attempt_start;
    MutexLock lock(mu_);
    RecordLatency(elapsed);
    if (options_.metrics != nullptr) {
      options_.metrics->Observe(metrics::Hist::kTransportRoundTripMicros,
                                elapsed);
      if (winner_is_hedge) {
        options_.metrics->Increment(metrics::Counter::kTransportHedgeWins);
      }
    }
  }
  return result;
}

Result<std::vector<std::uint8_t>> TransportClient::Call(
    std::span<const std::uint8_t> frame, bool idempotent,
    std::uint64_t deadline_micros) {
  if (options_.metrics != nullptr) {
    options_.metrics->Increment(metrics::Counter::kTransportRequests);
  }
  const std::uint64_t budget = deadline_micros != 0
                                   ? deadline_micros
                                   : options_.default_deadline_micros;
  const std::uint64_t deadline_abs = SteadyMicros() + budget;
  const std::uint32_t attempts =
      idempotent ? options_.retry.EffectiveAttempts() : 1;
  Status last = Status::Internal("no attempt ran");
  auto fail = [this](Status status) -> Status {
    if (options_.metrics != nullptr) {
      options_.metrics->Increment(metrics::Counter::kTransportErrors);
      if (status.code() == StatusCode::kDeadlineExceeded) {
        options_.metrics->Increment(
            metrics::Counter::kTransportDeadlineExceeded);
      }
    }
    return status;
  };
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::uint64_t bits = 0;
      {
        MutexLock lock(mu_);
        bits = jitter_rng_.Next();
      }
      const std::uint64_t backoff = std::min(
          JitteredBackoffMicros(options_.retry, attempt,
                                options_.retry_jitter, bits),
          RemainingMicros(deadline_abs));
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff));
      }
      if (options_.metrics != nullptr) {
        options_.metrics->Increment(metrics::Counter::kTransportRetries);
      }
    }
    if (RemainingMicros(deadline_abs) == 0) {
      return fail(Status::DeadlineExceeded("call budget exhausted"));
    }
    std::uint64_t attempt_deadline = deadline_abs;
    if (options_.attempt_timeout_micros > 0) {
      attempt_deadline = std::min(
          deadline_abs, SteadyMicros() + options_.attempt_timeout_micros);
    }
    Result<std::vector<std::uint8_t>> result =
        HedgedAttempt(frame, idempotent, attempt_deadline);
    if (result.ok()) {
      const Result<fleetwire::FrameType> type = fleetwire::PeekType(*result);
      if (!type.ok()) {
        // The peer answered with bytes no frame decoder accepts: wire
        // damage the in-process transport cannot checksum away.
        last = Status::Unavailable("undecodable response frame");
      } else if (*type == fleetwire::FrameType::kRejection) {
        const Result<fleetwire::RejectionFrame> rejection =
            fleetwire::DecodeRejection(*result);
        if (!rejection.ok()) {
          last = Status::Unavailable("malformed rejection frame");
        } else {
          last = Status(rejection->code, rejection->message);
          if (last.code() == StatusCode::kResourceExhausted) {
            // Load-shed backpressure: typed, counted, never retried —
            // retrying into an overloaded server deepens the overload.
            if (options_.metrics != nullptr) {
              options_.metrics->Increment(
                  metrics::Counter::kTransportBackpressure);
            }
            return fail(std::move(last));
          }
        }
      } else {
        return result;
      }
    } else {
      last = result.status();
    }
    // An attempt-scoped timeout with overall budget left is transient:
    // the next attempt may land on a healthier link. A spent overall
    // budget stays kDeadlineExceeded — final, and never worth a retry.
    if (last.code() == StatusCode::kDeadlineExceeded &&
        RemainingMicros(deadline_abs) > 0) {
      last = Status::Unavailable("attempt timed out (budget remains)");
    }
    if (!IsTransientError(last.code())) break;
  }
  return fail(std::move(last));
}

Result<std::vector<double>> TransportClient::EstimateBatch(
    const std::vector<BatchEstimateRequest>& requests,
    std::uint64_t deadline_micros) {
  const std::vector<std::uint8_t> frame =
      fleetwire::Encode(fleetwire::EstimateBatchRequestFrame{requests});
  EQUIHIST_ASSIGN_OR_RETURN(
      const std::vector<std::uint8_t> reply,
      Call(frame, /*idempotent=*/true, deadline_micros));
  EQUIHIST_ASSIGN_OR_RETURN(fleetwire::EstimateBatchResponseFrame response,
                            fleetwire::DecodeEstimateBatchResponse(reply));
  if (response.estimates.size() != requests.size()) {
    return Status::Unavailable("estimate count does not match the request");
  }
  return std::move(response.estimates);
}

Status TransportClient::BuildControl(fleetwire::BuildOp op,
                                     const std::string& column,
                                     std::uint64_t count,
                                     std::uint64_t deadline_micros) {
  fleetwire::BuildControlRequestFrame request;
  request.op = op;
  request.column = column;
  request.count = count;
  const std::vector<std::uint8_t> frame = fleetwire::Encode(request);
  Result<std::vector<std::uint8_t>> reply =
      Call(frame, /*idempotent=*/false, deadline_micros);
  if (!reply.ok()) return reply.status();
  Result<fleetwire::BuildControlResponseFrame> response =
      fleetwire::DecodeBuildControlResponse(*reply);
  if (!response.ok()) {
    return Status::Unavailable("undecodable build-control response");
  }
  if (response->code == StatusCode::kOk) return Status::OK();
  return Status(response->code, response->message);
}

Result<std::string> TransportClient::FetchMetricsJson(
    std::uint64_t deadline_micros) {
  const std::vector<std::uint8_t> frame = fleetwire::EncodeMetricsRequest();
  EQUIHIST_ASSIGN_OR_RETURN(
      const std::vector<std::uint8_t> reply,
      Call(frame, /*idempotent=*/true, deadline_micros));
  EQUIHIST_ASSIGN_OR_RETURN(fleetwire::MetricsResponseFrame response,
                            fleetwire::DecodeMetricsResponse(reply));
  return std::move(response.json);
}

}  // namespace equihist::transport
