#include "stats/statistics_manager.h"

namespace equihist {

Result<ColumnStatistics> StatisticsManager::Build(const Table& table) {
  if (options_.prefer_sampling) {
    CvbOptions cvb;
    cvb.k = options_.buckets;
    cvb.f = options_.f;
    cvb.gamma = options_.gamma;
    cvb.seed = options_.seed + rebuilds_;  // fresh randomness per rebuild
    return BuildStatisticsSampled(table, cvb);
  }
  return BuildStatisticsFullScan(table, options_.buckets);
}

Result<const ColumnStatistics*> StatisticsManager::GetOrBuild(
    const std::string& column, const Table& table) {
  auto it = entries_.find(column);
  if (it != entries_.end()) return &it->second.stats;
  EQUIHIST_ASSIGN_OR_RETURN(ColumnStatistics stats, Build(table));
  total_build_cost_ += stats.build_cost;
  ++rebuilds_;
  auto [inserted, ok] = entries_.emplace(column, Entry{std::move(stats), 0});
  (void)ok;
  return &inserted->second.stats;
}

void StatisticsManager::RecordModifications(const std::string& column,
                                            std::uint64_t count) {
  auto it = entries_.find(column);
  if (it != entries_.end()) it->second.modifications_since_build += count;
}

bool StatisticsManager::IsStale(const std::string& column) const {
  const auto it = entries_.find(column);
  if (it == entries_.end()) return false;
  const auto& entry = it->second;
  if (entry.stats.row_count == 0) return true;
  const double modified_fraction =
      static_cast<double>(entry.modifications_since_build) /
      static_cast<double>(entry.stats.row_count);
  return modified_fraction > options_.staleness_threshold;
}

Result<const ColumnStatistics*> StatisticsManager::EnsureFresh(
    const std::string& column, const Table& table) {
  if (!Has(column)) return GetOrBuild(column, table);
  if (!IsStale(column)) return &entries_.at(column).stats;
  EQUIHIST_ASSIGN_OR_RETURN(ColumnStatistics stats, Build(table));
  total_build_cost_ += stats.build_cost;
  ++rebuilds_;
  Entry& entry = entries_.at(column);
  entry.stats = std::move(stats);
  entry.modifications_since_build = 0;
  return &entry.stats;
}

bool StatisticsManager::Drop(const std::string& column) {
  return entries_.erase(column) > 0;
}

}  // namespace equihist
