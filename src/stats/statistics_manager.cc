#include "stats/statistics_manager.h"

#include <utility>

#include "common/rng.h"

namespace equihist {
namespace {

// FNV-1a: a platform-stable column-name hash, so per-column seed streams
// are reproducible everywhere (std::hash is implementation-defined).
std::uint64_t HashColumnName(const std::string& column) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : column) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

StatisticsManager::StatisticsManager(const Options& options)
    : options_(options) {}

ThreadPool* StatisticsManager::pool() {
  std::call_once(pool_once_, [this]() {
    const std::size_t threads = ResolveThreadCount(options_.threads);
    if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  });
  return pool_.get();
}

Result<ColumnStatistics> StatisticsManager::Build(const Table& table,
                                                  std::uint64_t seed,
                                                  ThreadPool* build_pool) {
  if (options_.prefer_sampling) {
    CvbOptions cvb;
    cvb.k = options_.buckets;
    cvb.f = options_.f;
    cvb.gamma = options_.gamma;
    cvb.seed = seed;
    cvb.threads = 1;  // the manager's pool is passed in explicitly
    return BuildStatisticsSampled(table, cvb, build_pool);
  }
  return BuildStatisticsFullScan(table, options_.buckets, build_pool);
}

std::shared_ptr<StatisticsManager::Entry> StatisticsManager::GetEntry(
    const std::string& column) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = entries_.find(column);
    if (it != entries_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(column);
  if (inserted) it->second = std::make_shared<Entry>();
  return it->second;
}

bool StatisticsManager::IsStaleLocked(const Entry& entry) const {
  if (entry.stats == nullptr) return false;
  if (entry.stats->row_count == 0) return true;
  const double modified_fraction =
      static_cast<double>(
          entry.modifications_since_build.load(std::memory_order_relaxed)) /
      static_cast<double>(entry.stats->row_count);
  return modified_fraction > options_.staleness_threshold;
}

Result<std::shared_ptr<const ColumnStatistics>>
StatisticsManager::BuildAndPublish(const std::string& column, Entry* entry,
                                   const Table& table, bool require_fresh) {
  // One build per column at a time: a second thread arriving here blocks
  // until the first publishes, then takes the fresh snapshot below.
  std::lock_guard<std::mutex> build_lock(entry->build_mu);
  std::uint64_t generation = 0;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (entry->stats != nullptr &&
        (!require_fresh || !IsStaleLocked(*entry))) {
      return entry->stats;
    }
    generation = entry->generation;
  }
  // Seed addressed by (manager seed, column, generation): independent of
  // the order in which threads or BuildAll shards reach this column.
  const std::uint64_t seed =
      DeriveStreamSeed(options_.seed ^ HashColumnName(column), generation);
  EQUIHIST_ASSIGN_OR_RETURN(ColumnStatistics stats,
                            Build(table, seed, pool()));
  auto snapshot = std::make_shared<const ColumnStatistics>(std::move(stats));
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    total_build_cost_ += snapshot->build_cost;
    entry->stats = snapshot;
    entry->generation = generation + 1;
  }
  entry->modifications_since_build.store(0, std::memory_order_relaxed);
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
  return snapshot;
}

Result<std::shared_ptr<const ColumnStatistics>>
StatisticsManager::GetOrBuildShared(const std::string& column,
                                    const Table& table) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = entries_.find(column);
    if (it != entries_.end() && it->second->stats != nullptr) {
      return it->second->stats;
    }
  }
  const std::shared_ptr<Entry> entry = GetEntry(column);
  return BuildAndPublish(column, entry.get(), table, /*require_fresh=*/false);
}

Result<const ColumnStatistics*> StatisticsManager::GetOrBuild(
    const std::string& column, const Table& table) {
  EQUIHIST_ASSIGN_OR_RETURN(const std::shared_ptr<const ColumnStatistics> s,
                            GetOrBuildShared(column, table));
  // The entry keeps a reference; the raw pointer stays valid until the
  // column is rebuilt or dropped, as before.
  return s.get();
}

void StatisticsManager::RecordModifications(const std::string& column,
                                            std::uint64_t count) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = entries_.find(column);
  if (it != entries_.end()) {
    it->second->modifications_since_build.fetch_add(
        count, std::memory_order_relaxed);
  }
}

bool StatisticsManager::IsStale(const std::string& column) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = entries_.find(column);
  if (it == entries_.end()) return false;
  return IsStaleLocked(*it->second);
}

Result<std::shared_ptr<const ColumnStatistics>>
StatisticsManager::EnsureFreshShared(const std::string& column,
                                     const Table& table) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = entries_.find(column);
    if (it != entries_.end() && it->second->stats != nullptr &&
        !IsStaleLocked(*it->second)) {
      return it->second->stats;
    }
  }
  const std::shared_ptr<Entry> entry = GetEntry(column);
  return BuildAndPublish(column, entry.get(), table, /*require_fresh=*/true);
}

Result<const ColumnStatistics*> StatisticsManager::EnsureFresh(
    const std::string& column, const Table& table) {
  EQUIHIST_ASSIGN_OR_RETURN(const std::shared_ptr<const ColumnStatistics> s,
                            EnsureFreshShared(column, table));
  return s.get();
}

Status StatisticsManager::BuildAll(const std::vector<std::string>& columns,
                                   const Table& table) {
  ThreadPool* fan_out = pool();
  if (fan_out == nullptr) {
    for (const std::string& column : columns) {
      EQUIHIST_ASSIGN_OR_RETURN(const auto ignored,
                                EnsureFreshShared(column, table));
      (void)ignored;
    }
    return Status::OK();
  }
  // Each column is one pool task; its build then uses the same pool for
  // its internal stages (ParallelFor callers participate, so the nesting
  // cannot starve).
  std::vector<std::future<Status>> pending;
  pending.reserve(columns.size());
  for (const std::string& column : columns) {
    pending.push_back(fan_out->Submit([this, column, &table]() -> Status {
      return EnsureFreshShared(column, table).status();
    }));
  }
  Status first_error = Status::OK();
  for (std::future<Status>& f : pending) {
    const Status status = f.get();
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

bool StatisticsManager::Drop(const std::string& column) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto it = entries_.find(column);
  if (it == entries_.end()) return false;
  // A placeholder whose first build failed never became visible.
  const bool existed = it->second->stats != nullptr;
  entries_.erase(it);
  return existed;
}

bool StatisticsManager::Has(const std::string& column) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = entries_.find(column);
  return it != entries_.end() && it->second->stats != nullptr;
}

std::size_t StatisticsManager::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::size_t count = 0;
  for (const auto& [name, entry] : entries_) {
    if (entry->stats != nullptr) ++count;
  }
  return count;
}

IoStats StatisticsManager::total_build_cost() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return total_build_cost_;
}

}  // namespace equihist
