#include "stats/statistics_manager.h"

#include <utility>

#include "common/rng.h"

namespace equihist {
namespace {

// FNV-1a: a platform-stable column-name hash, so per-column seed streams
// are reproducible everywhere (std::hash is implementation-defined).
std::uint64_t HashColumnName(const std::string& column) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : column) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

// Serving-cache slots kept per thread; old slots are evicted FIFO. The
// cache is a linear-scan vector: with realistically few hot (manager,
// column) pairs per thread this beats any hashed structure.
constexpr std::size_t kMaxServingSlots = 64;

std::uint64_t NextManagerId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

StatisticsManager::StatisticsManager(const Options& options)
    : options_(options), manager_id_(NextManagerId()) {}

ThreadPool* StatisticsManager::pool() {
  std::call_once(pool_once_, [this]() {
    const std::size_t threads = ResolveThreadCount(options_.threads);
    if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  });
  return pool_.get();
}

Result<ColumnStatistics> StatisticsManager::Build(const std::string& column,
                                                  const Table& table,
                                                  std::uint64_t seed,
                                                  ThreadPool* build_pool) {
  BackendBuildOptions build;
  build.backend = options_.default_backend;
  const auto it = options_.column_backends.find(column);
  if (it != options_.column_backends.end()) build.backend = it->second;
  build.buckets = options_.buckets;
  build.f = options_.f;
  build.gamma = options_.gamma;
  build.prefer_sampling = options_.prefer_sampling;
  build.seed = seed;
  // The equi-height default routes through the CVB / full-scan pipelines
  // exactly as before; other backends sample once and build through the
  // registry.
  return BuildStatisticsWithBackend(table, build, build_pool);
}

std::shared_ptr<StatisticsManager::Entry> StatisticsManager::GetEntry(
    const std::string& column) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = entries_.find(column);
    if (it != entries_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(column);
  if (inserted) it->second = std::make_shared<Entry>();
  return it->second;
}

bool StatisticsManager::IsStaleLocked(const Entry& entry) const {
  if (entry.stats == nullptr) return false;
  if (entry.stats->row_count == 0) return true;
  const double modified_fraction =
      static_cast<double>(
          entry.modifications_since_build.load(std::memory_order_relaxed)) /
      static_cast<double>(entry.stats->row_count);
  return modified_fraction > options_.staleness_threshold;
}

Result<std::shared_ptr<const ColumnStatistics>>
StatisticsManager::BuildAndPublish(const std::string& column, Entry* entry,
                                   const Table& table, bool require_fresh) {
  // One build per column at a time: a second thread arriving here blocks
  // until the first publishes, then takes the fresh snapshot below.
  std::lock_guard<std::mutex> build_lock(entry->build_mu);
  std::uint64_t generation = 0;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (entry->stats != nullptr &&
        (!require_fresh || !IsStaleLocked(*entry))) {
      return entry->stats;
    }
    generation = entry->generation;
  }
  // Seed addressed by (manager seed, column, generation): independent of
  // the order in which threads or BuildAll shards reach this column.
  const std::uint64_t seed =
      DeriveStreamSeed(options_.seed ^ HashColumnName(column), generation);
  EQUIHIST_ASSIGN_OR_RETURN(ColumnStatistics stats,
                            Build(column, table, seed, pool()));
  auto snapshot = std::make_shared<const ColumnStatistics>(std::move(stats));
  // The build factories produce the model (with any compiled read-path
  // state) outside any manager lock; the serving path shares it. A
  // model-less snapshot must never publish — the serving path would have
  // nothing to estimate with.
  if (snapshot->model == nullptr) {
    return Status::Internal("built statistics carry no histogram model");
  }
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    total_build_cost_ += snapshot->build_cost;
    entry->stats = snapshot;
    entry->model = snapshot->model;
    entry->generation = generation + 1;
    // Release-publish so a serving thread that observes the new counter
    // also observes the snapshot it validates.
    entry->published.fetch_add(1, std::memory_order_release);
  }
  entry->modifications_since_build.store(0, std::memory_order_relaxed);
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
  return snapshot;
}

Result<std::shared_ptr<const ColumnStatistics>>
StatisticsManager::GetOrBuildShared(const std::string& column,
                                    const Table& table) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = entries_.find(column);
    if (it != entries_.end() && it->second->stats != nullptr) {
      return it->second->stats;
    }
  }
  const std::shared_ptr<Entry> entry = GetEntry(column);
  return BuildAndPublish(column, entry.get(), table, /*require_fresh=*/false);
}

Result<const ColumnStatistics*> StatisticsManager::GetOrBuild(
    const std::string& column, const Table& table) {
  EQUIHIST_ASSIGN_OR_RETURN(const std::shared_ptr<const ColumnStatistics> s,
                            GetOrBuildShared(column, table));
  // The entry keeps a reference; the raw pointer stays valid until the
  // column is rebuilt or dropped, as before.
  return s.get();
}

void StatisticsManager::RecordModifications(const std::string& column,
                                            std::uint64_t count) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = entries_.find(column);
  if (it != entries_.end()) {
    it->second->modifications_since_build.fetch_add(
        count, std::memory_order_relaxed);
  }
}

bool StatisticsManager::IsStale(const std::string& column) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = entries_.find(column);
  if (it == entries_.end()) return false;
  return IsStaleLocked(*it->second);
}

Result<std::shared_ptr<const ColumnStatistics>>
StatisticsManager::EnsureFreshShared(const std::string& column,
                                     const Table& table) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = entries_.find(column);
    if (it != entries_.end() && it->second->stats != nullptr &&
        !IsStaleLocked(*it->second)) {
      return it->second->stats;
    }
  }
  const std::shared_ptr<Entry> entry = GetEntry(column);
  return BuildAndPublish(column, entry.get(), table, /*require_fresh=*/true);
}

Result<const ColumnStatistics*> StatisticsManager::EnsureFresh(
    const std::string& column, const Table& table) {
  EQUIHIST_ASSIGN_OR_RETURN(const std::shared_ptr<const ColumnStatistics> s,
                            EnsureFreshShared(column, table));
  return s.get();
}

Status StatisticsManager::BuildAll(const std::vector<std::string>& columns,
                                   const Table& table) {
  ThreadPool* fan_out = pool();
  if (fan_out == nullptr) {
    for (const std::string& column : columns) {
      EQUIHIST_ASSIGN_OR_RETURN(const auto ignored,
                                EnsureFreshShared(column, table));
      (void)ignored;
    }
    return Status::OK();
  }
  // Each column is one pool task; its build then uses the same pool for
  // its internal stages (ParallelFor callers participate, so the nesting
  // cannot starve).
  std::vector<std::future<Status>> pending;
  pending.reserve(columns.size());
  for (const std::string& column : columns) {
    pending.push_back(fan_out->Submit([this, column, &table]() -> Status {
      return EnsureFreshShared(column, table).status();
    }));
  }
  Status first_error = Status::OK();
  for (std::future<Status>& f : pending) {
    const Status status = f.get();
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

bool StatisticsManager::Drop(const std::string& column) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto it = entries_.find(column);
  if (it == entries_.end()) return false;
  // A placeholder whose first build failed never became visible.
  const bool existed = it->second->stats != nullptr;
  // Invalidate every thread's serving cache: the bump makes any cached
  // publication count stale, and the refresh goes through the map — where
  // the column no longer exists — rather than the detached entry node.
  it->second->published.fetch_add(1, std::memory_order_release);
  entries_.erase(it);
  return existed;
}

// -- Lock-free serving path --------------------------------------------------

std::vector<StatisticsManager::CachedServing>&
StatisticsManager::ServingCache() {
  thread_local std::vector<CachedServing> cache;
  return cache;
}

StatisticsManager::CachedServing* StatisticsManager::FindCachedServing(
    const std::string& column) {
  for (CachedServing& slot : ServingCache()) {
    if (slot.manager_id == manager_id_ && slot.column == column) return &slot;
  }
  return nullptr;
}

Result<StatisticsManager::CachedServing*> StatisticsManager::RefreshServing(
    const std::string& column, const Table& table) {
  // Capture always resolves through the entry map, never through a cached
  // entry pointer: an entry detached by Drop must not be re-validated, or
  // a thread could serve a dropped column forever.
  for (int attempt = 0; attempt < 3; ++attempt) {
    std::shared_ptr<Entry> entry;
    CachedServing fresh;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      const auto it = entries_.find(column);
      if (it != entries_.end() && it->second->stats != nullptr) {
        entry = it->second;
        // Counter and snapshot are mutually consistent here: publishes
        // mutate both under the exclusive lock we are sharing against.
        fresh.published = entry->published.load(std::memory_order_acquire);
        fresh.stats = entry->stats;
        fresh.model = entry->model;
      }
    }
    if (entry != nullptr) {
      fresh.manager_id = manager_id_;
      fresh.column = column;
      fresh.entry = std::move(entry);
      std::vector<CachedServing>& cache = ServingCache();
      CachedServing* slot = FindCachedServing(column);
      if (slot == nullptr) {
        if (cache.size() >= kMaxServingSlots) cache.erase(cache.begin());
        slot = &cache.emplace_back();
      }
      *slot = std::move(fresh);
      return slot;
    }
    // Missing or never-built column: build through the normal path, then
    // re-capture. Another thread may Drop between the build and the
    // capture, hence the (bounded) retry loop.
    const std::shared_ptr<Entry> node = GetEntry(column);
    EQUIHIST_ASSIGN_OR_RETURN(
        const auto built,
        BuildAndPublish(column, node.get(), table, /*require_fresh=*/false));
    (void)built;
  }
  return Status::Internal(
      "statistics were repeatedly dropped while refreshing the serving path");
}

Result<double> StatisticsManager::EstimateRange(const std::string& column,
                                                const Table& table,
                                                const RangeQuery& query) {
  CachedServing* slot = FindCachedServing(column);
  if (slot == nullptr || slot->entry->published.load(
                             std::memory_order_acquire) != slot->published) {
    EQUIHIST_ASSIGN_OR_RETURN(slot, RefreshServing(column, table));
  }
  return slot->model->EstimateRangeCount(query);
}

Status StatisticsManager::EstimateRanges(const std::string& column,
                                         const Table& table,
                                         std::span<const RangeQuery> queries,
                                         std::span<double> out,
                                         bool use_pool) {
  if (out.size() < queries.size()) {
    return Status::InvalidArgument(
        "output span smaller than the query batch");
  }
  CachedServing* slot = FindCachedServing(column);
  if (slot == nullptr || slot->entry->published.load(
                             std::memory_order_acquire) != slot->published) {
    EQUIHIST_ASSIGN_OR_RETURN(slot, RefreshServing(column, table));
  }
  slot->model->EstimateRangeCounts(queries, out,
                                   use_pool ? pool() : nullptr);
  return Status::OK();
}

bool StatisticsManager::Has(const std::string& column) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = entries_.find(column);
  return it != entries_.end() && it->second->stats != nullptr;
}

std::size_t StatisticsManager::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::size_t count = 0;
  for (const auto& [name, entry] : entries_) {
    if (entry->stats != nullptr) ++count;
  }
  return count;
}

IoStats StatisticsManager::total_build_cost() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return total_build_cost_;
}

}  // namespace equihist
