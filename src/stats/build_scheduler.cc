#include "stats/build_scheduler.h"

#include <algorithm>
#include <cstddef>
#include <utility>

namespace equihist {

BuildScheduler::BuildScheduler(const Options& options,
                               metrics::MetricsPlane* metrics)
    : options_(options), metrics_(metrics) {
  const std::size_t threads = ResolveThreadCount(options.threads);
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  MutexLock lock(mu_);
  paused_ = options.start_paused;
}

BuildScheduler::~BuildScheduler() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
    // Inflight builds must finish (their closures reference live shards);
    // a concurrent Pump() must fully exit before `this` goes away. Queued
    // requests are simply discarded.
    idle_cv_.Wait(mu_, [this]() REQUIRES(mu_) {
      return inflight_ == 0 && !pumping_;
    });
    for (ClassQueue& cq : classes_) {
      cq.table_turns.clear();
      cq.by_table.clear();
    }
    UpdateGaugesLocked();
  }
  pool_.reset();  // joins workers; no tasks remain by this point
}

void BuildScheduler::Enqueue(Request request) {
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    ++enqueued_;
    if (metrics_ != nullptr) {
      metrics_->Increment(metrics::Counter::kSchedulerEnqueued);
    }
    if (TryCoalesceLocked(request)) {
      ++coalesced_;
      if (metrics_ != nullptr) {
        metrics_->Increment(metrics::Counter::kSchedulerCoalesced);
      }
    } else {
      InsertLocked(std::move(request));
    }
    UpdateGaugesLocked();
  }
  Pump();
}

void BuildScheduler::Pause() {
  MutexLock lock(mu_);
  paused_ = true;
}

void BuildScheduler::Resume() {
  {
    MutexLock lock(mu_);
    paused_ = false;
  }
  Pump();
}

void BuildScheduler::Drain() {
  MutexLock lock(mu_);
  idle_cv_.Wait(mu_, [this]() REQUIRES(mu_) {
    return QueueEmptyLocked() && inflight_ == 0;
  });
}

BuildScheduler::Counts BuildScheduler::counts() const {
  MutexLock lock(mu_);
  return Counts{enqueued_, coalesced_,      completed_,
                failed_,   QueuedLocked(),  inflight_};
}

std::vector<std::pair<std::string, Status>> BuildScheduler::TakeFailures() {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, Status>> out;
  out.swap(failures_);
  return out;
}

bool BuildScheduler::QueueEmptyLocked() const {
  for (const ClassQueue& cq : classes_) {
    if (!cq.by_table.empty()) return false;
  }
  return true;
}

std::uint64_t BuildScheduler::QueuedLocked() const {
  std::uint64_t n = 0;
  for (const ClassQueue& cq : classes_) {
    for (const auto& [table, dq] : cq.by_table) n += dq.size();
  }
  return n;
}

void BuildScheduler::InsertLocked(Request request) {
  ClassQueue& cq = classes_[ClassOf(request.health)];
  std::deque<Request>& dq = cq.by_table[request.table];
  if (dq.empty()) cq.table_turns.push_back(request.table);
  // Descending pressure, stable: equal pressure keeps arrival order.
  auto pos = std::find_if(dq.begin(), dq.end(), [&](const Request& queued) {
    return queued.pressure < request.pressure;
  });
  dq.insert(pos, std::move(request));
}

bool BuildScheduler::TryCoalesceLocked(Request& request) {
  for (ClassQueue& cq : classes_) {
    auto it = cq.by_table.find(request.table);
    if (it == cq.by_table.end()) continue;
    std::deque<Request>& dq = it->second;
    auto pos = std::find_if(dq.begin(), dq.end(), [&](const Request& queued) {
      return queued.column == request.column;
    });
    if (pos == dq.end()) continue;
    Request merged = std::move(*pos);
    dq.erase(pos);
    if (dq.empty()) {
      cq.by_table.erase(it);
      auto turn = std::find(cq.table_turns.begin(), cq.table_turns.end(),
                            request.table);
      if (turn != cq.table_turns.end()) cq.table_turns.erase(turn);
    }
    // Severity and pressure are raised to the max of the two; the newest
    // closure wins (it was bound against the most recent shard state).
    if (ClassOf(request.health) < ClassOf(merged.health)) {
      merged.health = request.health;
    }
    merged.pressure = std::max(merged.pressure, request.pressure);
    merged.build = std::move(request.build);
    InsertLocked(std::move(merged));
    return true;
  }
  return false;
}

BuildScheduler::Request BuildScheduler::PopNextLocked() {
  for (ClassQueue& cq : classes_) {
    while (!cq.table_turns.empty()) {
      const std::string table = std::move(cq.table_turns.front());
      cq.table_turns.pop_front();
      auto it = cq.by_table.find(table);
      if (it == cq.by_table.end() || it->second.empty()) {
        if (it != cq.by_table.end()) cq.by_table.erase(it);
        continue;  // stale turn left by coalescing
      }
      Request out = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) {
        cq.by_table.erase(it);
      } else {
        cq.table_turns.push_back(table);  // rotate to the back of the class
      }
      return out;
    }
  }
  return Request{};  // unreachable: callers check QueueEmptyLocked() first
}

void BuildScheduler::UpdateGaugesLocked() {
  if (metrics_ == nullptr) return;
  metrics_->GaugeSet(metrics::Gauge::kQueueDepth, QueuedLocked());
  metrics_->GaugeSet(metrics::Gauge::kInflightBuilds, inflight_);
}

void BuildScheduler::Pump() {
  const std::uint64_t max_inflight = std::max<std::uint64_t>(
      options_.max_inflight, 1);
  {
    MutexLock lock(mu_);
    if (pumping_) return;  // the active pumper will see any new work
    pumping_ = true;
  }
  for (;;) {
    Request next;
    {
      MutexLock lock(mu_);
      if (stopping_ || paused_ || inflight_ >= max_inflight ||
          QueueEmptyLocked()) {
        pumping_ = false;
        idle_cv_.NotifyAll();  // the destructor may be waiting on !pumping_
        return;
      }
      next = PopNextLocked();
      ++inflight_;
      UpdateGaugesLocked();
    }
    auto task = [this, table = std::move(next.table),
                 column = std::move(next.column),
                 build = std::move(next.build)]() mutable {
      Status status = build ? build() : Status::OK();
      OnBuildDone(table, column, std::move(status));
    };
    if (pool_ != nullptr) {
      pool_->Submit(std::move(task));
    } else {
      // Inline mode: the build runs here, and its OnBuildDone → Pump()
      // re-entry bounces off `pumping_` — this loop is the sole admitter.
      task();
    }
  }
}

void BuildScheduler::OnBuildDone(const std::string& table,
                                 const std::string& column, Status status) {
  {
    MutexLock lock(mu_);
    --inflight_;
    if (status.ok()) {
      ++completed_;
      if (metrics_ != nullptr) {
        metrics_->Increment(metrics::Counter::kSchedulerCompleted);
      }
    } else {
      ++failed_;
      failures_.emplace_back(table + "." + column, std::move(status));
      if (metrics_ != nullptr) {
        metrics_->Increment(metrics::Counter::kSchedulerFailed);
      }
    }
    UpdateGaugesLocked();
    idle_cv_.NotifyAll();
  }
  Pump();  // a slot just freed; admit the next request
}

}  // namespace equihist
