#ifndef EQUIHIST_STATS_HISTOGRAM_BACKENDS_H_
#define EQUIHIST_STATS_HISTOGRAM_BACKENDS_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "baseline/equi_width.h"
#include "common/result.h"
#include "core/compiled_estimator.h"
#include "core/compressed_histogram.h"
#include "core/histogram.h"
#include "stats/histogram_model.h"

namespace equihist {

// The built-in HistogramModel adapters: one per histogram family the
// repository implements. Consumers never name these types — they hold a
// HistogramModelPtr and the registry hooks construct the right adapter —
// but equi-height-specific code (CVB cross-validation, spike diagnostics)
// can downcast via ColumnStatistics' typed accessors, so the adapters are
// public.

// Equi-height (core/histogram): the paper's main structure. Serves through
// the O(log k) CompiledEstimator read path, so estimates are the compiled
// path's, bit-for-bit.
class EquiHeightModel : public HistogramModel {
 public:
  explicit EquiHeightModel(Histogram histogram);

  HistogramBackendId backend_id() const override {
    return HistogramBackendId::kEquiHeight;
  }
  double EstimateRangeCount(const RangeQuery& query) const override;
  void EstimateRangeCounts(std::span<const RangeQuery> queries,
                           std::span<double> out,
                           ThreadPool* pool = nullptr) const override;
  std::uint64_t bucket_count() const override;
  std::uint64_t total() const override;
  Value lower_fence() const override;
  Value upper_fence() const override;
  std::size_t MemoryBytes() const override;
  std::string Describe() const override;
  void SerializePayload(std::vector<std::uint8_t>* out) const override;

  // The wrapped structures, for equi-height-only consumers (CVB
  // cross-validation, bucket diagnostics, the page-budget check).
  const Histogram& histogram() const { return histogram_; }
  const CompiledEstimator& compiled() const { return compiled_; }

  // The equi-height payload codec: exactly the body of serialization
  // format version 1 (varint k | varint n | zigzag fences | k-1 zigzag
  // separator deltas | k varint counts). Shared by the GMP snapshot
  // backend (identical layout) and by the v1-compatibility path of the
  // container reader.
  static void SerializeEquiHeightPayload(const Histogram& histogram,
                                         std::vector<std::uint8_t>* out);
  static Result<Histogram> DeserializeEquiHeightPayload(
      std::span<const std::uint8_t> payload, std::size_t* consumed);

 private:
  Histogram histogram_;
  CompiledEstimator compiled_;
};

// GMP incremental equi-depth snapshot (baseline/gmp_incremental, Section
// 3.4): structurally an equi-height histogram — Snapshot() returns one —
// so it reuses the whole adapter; only the wire tag and description
// differ. Built from a sample by replaying it through the incremental
// maintenance algorithm and scaling the snapshot to the population.
class GmpSnapshotModel : public EquiHeightModel {
 public:
  explicit GmpSnapshotModel(Histogram snapshot)
      : EquiHeightModel(std::move(snapshot)) {}

  HistogramBackendId backend_id() const override {
    return HistogramBackendId::kGmpIncremental;
  }
  std::string Describe() const override;
};

// Equi-width baseline (baseline/equi_width).
class EquiWidthModel : public HistogramModel {
 public:
  explicit EquiWidthModel(EquiWidthHistogram histogram)
      : histogram_(std::move(histogram)) {}

  HistogramBackendId backend_id() const override {
    return HistogramBackendId::kEquiWidth;
  }
  double EstimateRangeCount(const RangeQuery& query) const override;
  std::uint64_t bucket_count() const override;
  std::uint64_t total() const override;
  Value lower_fence() const override;
  Value upper_fence() const override;
  std::size_t MemoryBytes() const override;
  std::string Describe() const override;
  void SerializePayload(std::vector<std::uint8_t>* out) const override;

  const EquiWidthHistogram& histogram() const { return histogram_; }

 private:
  EquiWidthHistogram histogram_;
};

// Compressed histogram (core/compressed_histogram, Section 5): exact
// singletons plus an equi-height residual.
class CompressedModel : public HistogramModel {
 public:
  explicit CompressedModel(CompressedHistogram histogram);

  HistogramBackendId backend_id() const override {
    return HistogramBackendId::kCompressed;
  }
  double EstimateRangeCount(const RangeQuery& query) const override;
  std::uint64_t bucket_count() const override;
  std::uint64_t total() const override;
  Value lower_fence() const override;
  Value upper_fence() const override;
  std::size_t MemoryBytes() const override;
  std::string Describe() const override;
  void SerializePayload(std::vector<std::uint8_t>* out) const override;

  const CompressedHistogram& histogram() const { return histogram_; }

 private:
  CompressedHistogram histogram_;
  Value lower_fence_ = 0;
  Value upper_fence_ = 0;
};

// Uniform fallback (DESIGN.md §11): the metadata-only model the
// StatisticsManager publishes when a column has no trustworthy histogram —
// every build has failed on storage faults and nothing was ever served.
// With a known domain it interpolates uniformly over (lower, upper]; with
// the unknown-domain sentinel (lower_fence == upper_fence, the shape the
// manager builds from a bare row count) it answers any non-degenerate
// range with the classical System-R magic selectivity of 1/3.
class FallbackUniformModel : public HistogramModel {
 public:
  static constexpr double kMagicRangeSelectivity = 1.0 / 3.0;

  // Requires upper_fence >= lower_fence; equal fences mean "domain
  // unknown".
  FallbackUniformModel(std::uint64_t total, Value lower_fence,
                       Value upper_fence)
      : total_(total), lower_fence_(lower_fence), upper_fence_(upper_fence) {}

  HistogramBackendId backend_id() const override {
    return HistogramBackendId::kFallbackUniform;
  }
  double EstimateRangeCount(const RangeQuery& query) const override;
  std::uint64_t bucket_count() const override { return 1; }
  std::uint64_t total() const override { return total_; }
  Value lower_fence() const override { return lower_fence_; }
  Value upper_fence() const override { return upper_fence_; }
  std::size_t MemoryBytes() const override { return sizeof(*this); }
  std::string Describe() const override;
  void SerializePayload(std::vector<std::uint8_t>* out) const override;

  bool domain_known() const { return upper_fence_ > lower_fence_; }

 private:
  std::uint64_t total_;
  Value lower_fence_;
  Value upper_fence_;
};

}  // namespace equihist

#endif  // EQUIHIST_STATS_HISTOGRAM_BACKENDS_H_
