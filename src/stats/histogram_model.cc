#include "stats/histogram_model.h"

#include <algorithm>
#include <cmath>

#include "common/math.h"

namespace equihist {

void HistogramModel::EstimateRangeCounts(std::span<const RangeQuery> queries,
                                         std::span<double> out,
                                         ThreadPool* pool) const {
  (void)pool;  // sequential default; per-query results are order-independent
  for (std::size_t i = 0; i < queries.size(); ++i) {
    out[i] = EstimateRangeCount(queries[i]);
  }
}

double HistogramModel::EstimateSelectivity(const RangeQuery& query) const {
  const double n = static_cast<double>(total());
  if (n == 0.0) return 0.0;
  return EstimateRangeCount(query) / n;
}

HistogramBackendRegistry& HistogramBackendRegistry::Global() {
  static HistogramBackendRegistry* instance = []() {
    auto* registry = new HistogramBackendRegistry();
    internal::RegisterBuiltinHistogramBackends(*registry);
    return registry;
  }();
  return *instance;
}

Status HistogramBackendRegistry::Register(HistogramBackendId id,
                                          Backend backend) {
  if (!backend.build_from_sample || !backend.deserialize_payload) {
    return Status::InvalidArgument(
        "a backend needs both build_from_sample and deserialize_payload");
  }
  if (backend.name.empty()) {
    return Status::InvalidArgument("a backend needs a name");
  }
  MutexLock lock(mu_);
  for (const auto& [existing_id, existing] : backends_) {
    if (existing.name == backend.name && existing_id != id) {
      return Status::FailedPrecondition("backend name '" + backend.name +
                                        "' is already registered");
    }
  }
  const auto [it, inserted] = backends_.emplace(id, std::move(backend));
  if (!inserted) {
    return Status::FailedPrecondition(
        "backend id " + std::to_string(static_cast<unsigned>(id)) +
        " is already registered");
  }
  return Status::OK();
}

Result<HistogramBackendRegistry::Backend> HistogramBackendRegistry::Find(
    HistogramBackendId id) const {
  MutexLock lock(mu_);
  const auto it = backends_.find(id);
  if (it == backends_.end()) {
    return Status::NotFound("no histogram backend with id " +
                            std::to_string(static_cast<unsigned>(id)));
  }
  return it->second;
}

Result<HistogramBackendId> HistogramBackendRegistry::IdForName(
    std::string_view name) const {
  MutexLock lock(mu_);
  for (const auto& [id, backend] : backends_) {
    if (backend.name == name) return id;
  }
  return Status::NotFound("no histogram backend named '" + std::string(name) +
                          "'");
}

bool HistogramBackendRegistry::Has(HistogramBackendId id) const {
  MutexLock lock(mu_);
  return backends_.find(id) != backends_.end();
}

std::vector<HistogramBackendId> HistogramBackendRegistry::Ids() const {
  MutexLock lock(mu_);
  std::vector<HistogramBackendId> ids;
  ids.reserve(backends_.size());
  for (const auto& [id, backend] : backends_) ids.push_back(id);
  return ids;
}

Result<RangeWorkloadReport> EvaluateRangeWorkload(
    const HistogramModel& model, std::span<const RangeQuery> queries,
    const ValueSet& truth) {
  if (truth.empty()) {
    return Status::InvalidArgument("truth value set must be non-empty");
  }
  RangeWorkloadReport report;
  report.query_count = queries.size();
  KahanSum abs_sum;
  KahanSum rel_sum;
  // The whole workload estimates through the backend's batch path in one
  // call (the compiled vectorized core on equi-height, the scalar batched
  // form elsewhere) — bitwise what the per-query loop produced.
  std::vector<double> estimates(queries.size());
  model.EstimateRangeCounts(queries, estimates);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const RangeQuery& query = queries[i];
    const double estimate = estimates[i];
    const auto actual =
        static_cast<double>(truth.CountInRange(query.lo, query.hi));
    const double abs_error = std::abs(estimate - actual);
    abs_sum.Add(abs_error);
    report.max_absolute_error = std::max(report.max_absolute_error, abs_error);
    if (actual > 0.0) {
      const double rel_error = abs_error / actual;
      rel_sum.Add(rel_error);
      report.max_relative_error =
          std::max(report.max_relative_error, rel_error);
      ++report.relative_query_count;
    }
  }
  if (report.query_count > 0) {
    report.mean_absolute_error =
        abs_sum.Value() / static_cast<double>(report.query_count);
  }
  if (report.relative_query_count > 0) {
    report.mean_relative_error =
        rel_sum.Value() / static_cast<double>(report.relative_query_count);
  }
  return report;
}

}  // namespace equihist
