#ifndef EQUIHIST_STATS_STATISTICS_MANAGER_H_
#define EQUIHIST_STATS_STATISTICS_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "stats/column_statistics.h"
#include "storage/table.h"

namespace equihist {

// A small auto-statistics facility in the style of SQL Server's
// auto-create/auto-update statistics (the production context of the
// paper): owns per-column ColumnStatistics, tracks modification counters,
// and rebuilds stale statistics via the sampling pipeline on demand.
//
// Tables in this library are immutable, so mutation is reported by the
// caller through RecordModifications() — the same contract a storage
// engine's DML layer would fulfil.
//
// Concurrency: the manager is safe for concurrent use from many threads.
// The read-mostly paths (GetOrBuild/EnsureFresh on warm entries, IsStale,
// Has) take a shared lock; builds serialize per column on the entry's own
// mutex (concurrent first accesses to the same column run one build, not
// two) and publish under the exclusive lock. Modification counters are
// atomics, so RecordModifications never blocks a reader. Statistics
// objects are immutable once published and handed out via shared_ptr —
// a reader holding *Shared() results keeps its snapshot alive across
// concurrent rebuilds. The raw-pointer getters keep the historical
// single-threaded contract (valid until the entry is rebuilt or dropped).
//
// Every build's RNG seed is derived from (options.seed, column name,
// per-column generation) via SplitMix, so results do not depend on the
// order in which threads reach the manager — BuildAll over a pool yields
// the same statistics as a serial loop.
class StatisticsManager {
 public:
  struct Options {
    std::uint64_t buckets = 200;
    double f = 0.1;            // CVB target error for sampled builds
    double gamma = 0.01;
    // Rebuild when modifications since the last build exceed this fraction
    // of the row count (SQL Server's classical 20% rule).
    double staleness_threshold = 0.2;
    // Build by sampling (CVB) rather than by full scan.
    bool prefer_sampling = true;
    std::uint64_t seed = 99;
    // Worker threads shared by every build issued through this manager
    // (block reads, sample sorting, BuildAll fan-out): 0 = one per
    // hardware thread, 1 = fully sequential (no pool is ever created).
    std::uint64_t threads = 0;
  };

  explicit StatisticsManager(const Options& options);

  // Returns the statistics for `column`, building them on first access.
  // The pointer stays valid until the entry is rebuilt or dropped; for
  // concurrent callers prefer GetOrBuildShared.
  Result<const ColumnStatistics*> GetOrBuild(const std::string& column,
                                             const Table& table);

  // Shared-ownership variant: the returned snapshot stays valid for as
  // long as the caller holds it, across rebuilds and drops.
  Result<std::shared_ptr<const ColumnStatistics>> GetOrBuildShared(
      const std::string& column, const Table& table);

  // Reports DML activity against the column's table. Lock-free on the
  // counter; unknown columns are ignored.
  void RecordModifications(const std::string& column, std::uint64_t count);

  // True if statistics exist and the modification counter has crossed the
  // staleness threshold.
  bool IsStale(const std::string& column) const;

  // Returns fresh statistics: rebuilds if stale or missing, otherwise the
  // cached entry.
  Result<const ColumnStatistics*> EnsureFresh(const std::string& column,
                                              const Table& table);
  Result<std::shared_ptr<const ColumnStatistics>> EnsureFreshShared(
      const std::string& column, const Table& table);

  // Builds (or freshens) statistics for every named column of `table`,
  // fanning the builds out across the manager's thread pool — the
  // auto-statistics sweep a server runs after bulk load. Columns already
  // fresh are left untouched. Returns the first build error, if any.
  Status BuildAll(const std::vector<std::string>& columns,
                  const Table& table);

  // Drops a column's statistics (returns true if they existed).
  bool Drop(const std::string& column);

  bool Has(const std::string& column) const;
  std::size_t size() const;
  std::uint64_t rebuild_count() const {
    return rebuilds_.load(std::memory_order_relaxed);
  }

  // Cumulative I/O spent building statistics through this manager.
  IoStats total_build_cost() const;

 private:
  struct Entry {
    // Immutable snapshot, swapped atomically under mu_; null while the
    // first build is in flight.
    std::shared_ptr<const ColumnStatistics> stats;
    std::atomic<std::uint64_t> modifications_since_build{0};
    std::uint64_t generation = 0;  // # builds completed, guarded by mu_
    std::mutex build_mu;           // serializes builds of this column
  };

  Result<ColumnStatistics> Build(const Table& table, std::uint64_t seed,
                                 ThreadPool* pool);
  // Finds or creates the entry node for `column`.
  std::shared_ptr<Entry> GetEntry(const std::string& column);
  // Serializes on entry->build_mu, re-checks whether a build is still
  // needed (`require_fresh` additionally rebuilds stale snapshots), then
  // builds without locks held and publishes under the exclusive lock.
  Result<std::shared_ptr<const ColumnStatistics>> BuildAndPublish(
      const std::string& column, Entry* entry, const Table& table,
      bool require_fresh);
  bool IsStaleLocked(const Entry& entry) const;
  // Lazily created pool per options_.threads (null when sequential).
  ThreadPool* pool();

  const Options options_;
  mutable std::shared_mutex mu_;  // guards entries_ map + snapshot/gen fields
  // shared_ptr nodes: an in-flight build keeps its Entry alive even if the
  // column is concurrently dropped, and Entry addresses stay stable so
  // per-entry mutexes can be held without the map lock.
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  IoStats total_build_cost_{};  // guarded by mu_
  std::atomic<std::uint64_t> rebuilds_{0};
  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace equihist

#endif  // EQUIHIST_STATS_STATISTICS_MANAGER_H_
