#ifndef EQUIHIST_STATS_STATISTICS_MANAGER_H_
#define EQUIHIST_STATS_STATISTICS_MANAGER_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"
#include "stats/column_statistics.h"
#include "storage/table.h"

namespace equihist {

// A small auto-statistics facility in the style of SQL Server's
// auto-create/auto-update statistics (the production context of the
// paper): owns per-column ColumnStatistics, tracks modification counters,
// and rebuilds stale statistics via the sampling pipeline on demand.
//
// Tables in this library are immutable, so mutation is reported by the
// caller through RecordModifications() — the same contract a storage
// engine's DML layer would fulfil.
class StatisticsManager {
 public:
  struct Options {
    std::uint64_t buckets = 200;
    double f = 0.1;            // CVB target error for sampled builds
    double gamma = 0.01;
    // Rebuild when modifications since the last build exceed this fraction
    // of the row count (SQL Server's classical 20% rule).
    double staleness_threshold = 0.2;
    // Build by sampling (CVB) rather than by full scan.
    bool prefer_sampling = true;
    std::uint64_t seed = 99;
  };

  explicit StatisticsManager(const Options& options) : options_(options) {}

  // Returns the statistics for `column`, building them on first access.
  // The pointer stays valid until the entry is rebuilt or dropped.
  Result<const ColumnStatistics*> GetOrBuild(const std::string& column,
                                             const Table& table);

  // Reports DML activity against the column's table.
  void RecordModifications(const std::string& column, std::uint64_t count);

  // True if statistics exist and the modification counter has crossed the
  // staleness threshold.
  bool IsStale(const std::string& column) const;

  // Returns fresh statistics: rebuilds if stale or missing, otherwise the
  // cached entry.
  Result<const ColumnStatistics*> EnsureFresh(const std::string& column,
                                              const Table& table);

  // Drops a column's statistics (returns true if they existed).
  bool Drop(const std::string& column);

  bool Has(const std::string& column) const {
    return entries_.count(column) > 0;
  }
  std::size_t size() const { return entries_.size(); }
  std::uint64_t rebuild_count() const { return rebuilds_; }

  // Cumulative I/O spent building statistics through this manager.
  const IoStats& total_build_cost() const { return total_build_cost_; }

 private:
  struct Entry {
    ColumnStatistics stats;
    std::uint64_t modifications_since_build = 0;
  };

  Result<ColumnStatistics> Build(const Table& table);

  Options options_;
  std::map<std::string, Entry> entries_;
  IoStats total_build_cost_{};
  std::uint64_t rebuilds_ = 0;
};

}  // namespace equihist

#endif  // EQUIHIST_STATS_STATISTICS_MANAGER_H_
