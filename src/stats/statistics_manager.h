#ifndef EQUIHIST_STATS_STATISTICS_MANAGER_H_
#define EQUIHIST_STATS_STATISTICS_MANAGER_H_

#include "stats/statistics_shard.h"

namespace equihist {

// The historical single-process entry point, now a thin single-shard
// facade (DESIGN.md §16): every member — construction, build/refresh,
// DML accounting, the lock-free serving path, degraded serving, install,
// health — is inherited unchanged from StatisticsShard, so existing
// callers and tests see exactly the pre-fleet API and behavior.
//
// New multi-shard deployments should hold a StatisticsFleet
// (stats/statistics_fleet.h), which hash-partitions columns across many
// shards and adds the coalescing batch front-end, the async
// BuildScheduler, and the wire protocol on top of the same shard type.
class StatisticsManager : public StatisticsShard {
 public:
  using StatisticsShard::StatisticsShard;
};

}  // namespace equihist

#endif  // EQUIHIST_STATS_STATISTICS_MANAGER_H_
