#ifndef EQUIHIST_STATS_FLEET_WIRE_H_
#define EQUIHIST_STATS_FLEET_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "stats/statistics_shard.h"

namespace equihist::fleetwire {

// Compact framing for the fleet's estimate and build-control messages
// (DESIGN.md §16). Layout of every frame:
//
//   offset 0: 'F'            — magic
//   offset 1: 'L'
//   offset 2: version (0x01)
//   offset 3: FrameType byte
//   offset 4: type-specific payload (varint/zigzag/F64 primitives from
//             stats/wire_format.h; strings are varint-length-prefixed)
//
// Decoders are built on the bounds-checked wire::Reader: any corruption —
// truncation, bit flips, hostile length prefixes — surfaces as
// Status::InvalidArgument, never as UB (the corruption-matrix test in
// tests/stats_fleet_test.cc walks every byte). A frame must consume its
// buffer exactly; trailing bytes are rejected.

inline constexpr std::uint8_t kMagic0 = 'F';
inline constexpr std::uint8_t kMagic1 = 'L';
inline constexpr std::uint8_t kVersion = 1;

enum class FrameType : std::uint8_t {
  kEstimateBatchRequest = 1,
  kEstimateBatchResponse = 2,
  kBuildControlRequest = 3,
  kBuildControlResponse = 4,
  kMetricsRequest = 5,
  kMetricsResponse = 6,
  // A typed error reply usable in place of ANY response frame: the server
  // could not (or refused to) serve the request. Carries the Status so
  // clients can distinguish load-shedding backpressure
  // (kResourceExhausted, never retried), admission-expired deadlines
  // (kDeadlineExceeded), and transient wire damage (kUnavailable,
  // retryable).
  kRejection = 7,
};

enum class BuildOp : std::uint8_t {
  kEnsureFresh = 0,
  kDrop = 1,
  kRecordModifications = 2,
};

// requests[i] pairs with estimates[i] of the response.
struct EstimateBatchRequestFrame {
  std::vector<BatchEstimateRequest> requests;
};

struct EstimateBatchResponseFrame {
  std::vector<double> estimates;
};

struct BuildControlRequestFrame {
  BuildOp op = BuildOp::kEnsureFresh;
  std::string column;
  std::uint64_t count = 0;  // kRecordModifications only
};

// The remote Status: code + message (OK carries an empty message).
struct BuildControlResponseFrame {
  StatusCode code = StatusCode::kOk;
  std::string message;
};

struct MetricsResponseFrame {
  std::string json;
};

// The server's typed refusal (see FrameType::kRejection). `code` is never
// kOk — a rejection that carries success is malformed.
struct RejectionFrame {
  StatusCode code = StatusCode::kInternal;
  std::string message;
};

std::vector<std::uint8_t> Encode(const EstimateBatchRequestFrame& frame);
std::vector<std::uint8_t> Encode(const EstimateBatchResponseFrame& frame);
std::vector<std::uint8_t> Encode(const BuildControlRequestFrame& frame);
std::vector<std::uint8_t> Encode(const BuildControlResponseFrame& frame);
std::vector<std::uint8_t> EncodeMetricsRequest();
std::vector<std::uint8_t> Encode(const MetricsResponseFrame& frame);
std::vector<std::uint8_t> Encode(const RejectionFrame& frame);

// Validates magic + version and returns the frame type without touching
// the payload — the dispatch step of StatisticsFleet::ServeFrame.
Result<FrameType> PeekType(std::span<const std::uint8_t> bytes);

Result<EstimateBatchRequestFrame> DecodeEstimateBatchRequest(
    std::span<const std::uint8_t> bytes);
Result<EstimateBatchResponseFrame> DecodeEstimateBatchResponse(
    std::span<const std::uint8_t> bytes);
Result<BuildControlRequestFrame> DecodeBuildControlRequest(
    std::span<const std::uint8_t> bytes);
Result<BuildControlResponseFrame> DecodeBuildControlResponse(
    std::span<const std::uint8_t> bytes);
Status DecodeMetricsRequest(std::span<const std::uint8_t> bytes);
Result<MetricsResponseFrame> DecodeMetricsResponse(
    std::span<const std::uint8_t> bytes);
Result<RejectionFrame> DecodeRejection(std::span<const std::uint8_t> bytes);

}  // namespace equihist::fleetwire

#endif  // EQUIHIST_STATS_FLEET_WIRE_H_
