#ifndef EQUIHIST_STATS_JOIN_ESTIMATOR_H_
#define EQUIHIST_STATS_JOIN_ESTIMATOR_H_

#include "common/result.h"
#include "stats/column_statistics.h"

namespace equihist {

// Equi-join output-size estimation from per-column statistics — the
// System R use case the paper cites for distinct-value estimates
// ("estimating relative error in join-selectivity estimation formulas
// used in System R", Section 6).

// The classical System R formula: |R JOIN S| = n_R * n_S / max(d_R, d_S),
// using the statistics' distinct estimates. Requires both row counts and
// distinct estimates to be positive.
Result<double> SystemRJoinEstimate(const ColumnStatistics& left,
                                   const ColumnStatistics& right);

// A refinement exploiting everything the paper's pipeline collects: the
// pinned heavy hitters join exactly (value by value), heavy-vs-light terms
// use the other side's light-value average multiplicity, and the
// light-vs-light remainder falls back to System R over the light masses,
// scaled by the overlap of the two columns' domains. Degrades to the
// System R estimate when no heavy hitters were collected and domains
// coincide.
Result<double> HistogramJoinEstimate(const ColumnStatistics& left,
                                     const ColumnStatistics& right);

}  // namespace equihist

#endif  // EQUIHIST_STATS_JOIN_ESTIMATOR_H_
